# Empty dependencies file for dnsbs_sim.
# This may be replaced when dependencies are built.
