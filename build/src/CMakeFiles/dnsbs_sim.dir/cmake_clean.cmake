file(REMOVE_RECURSE
  "CMakeFiles/dnsbs_sim.dir/sim/address_plan.cpp.o"
  "CMakeFiles/dnsbs_sim.dir/sim/address_plan.cpp.o.d"
  "CMakeFiles/dnsbs_sim.dir/sim/authority.cpp.o"
  "CMakeFiles/dnsbs_sim.dir/sim/authority.cpp.o.d"
  "CMakeFiles/dnsbs_sim.dir/sim/churn.cpp.o"
  "CMakeFiles/dnsbs_sim.dir/sim/churn.cpp.o.d"
  "CMakeFiles/dnsbs_sim.dir/sim/naming.cpp.o"
  "CMakeFiles/dnsbs_sim.dir/sim/naming.cpp.o.d"
  "CMakeFiles/dnsbs_sim.dir/sim/originator.cpp.o"
  "CMakeFiles/dnsbs_sim.dir/sim/originator.cpp.o.d"
  "CMakeFiles/dnsbs_sim.dir/sim/querier_population.cpp.o"
  "CMakeFiles/dnsbs_sim.dir/sim/querier_population.cpp.o.d"
  "CMakeFiles/dnsbs_sim.dir/sim/resolver.cpp.o"
  "CMakeFiles/dnsbs_sim.dir/sim/resolver.cpp.o.d"
  "CMakeFiles/dnsbs_sim.dir/sim/scenario.cpp.o"
  "CMakeFiles/dnsbs_sim.dir/sim/scenario.cpp.o.d"
  "CMakeFiles/dnsbs_sim.dir/sim/traffic_engine.cpp.o"
  "CMakeFiles/dnsbs_sim.dir/sim/traffic_engine.cpp.o.d"
  "libdnsbs_sim.a"
  "libdnsbs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsbs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
