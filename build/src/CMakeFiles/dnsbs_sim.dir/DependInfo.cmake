
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/address_plan.cpp" "src/CMakeFiles/dnsbs_sim.dir/sim/address_plan.cpp.o" "gcc" "src/CMakeFiles/dnsbs_sim.dir/sim/address_plan.cpp.o.d"
  "/root/repo/src/sim/authority.cpp" "src/CMakeFiles/dnsbs_sim.dir/sim/authority.cpp.o" "gcc" "src/CMakeFiles/dnsbs_sim.dir/sim/authority.cpp.o.d"
  "/root/repo/src/sim/churn.cpp" "src/CMakeFiles/dnsbs_sim.dir/sim/churn.cpp.o" "gcc" "src/CMakeFiles/dnsbs_sim.dir/sim/churn.cpp.o.d"
  "/root/repo/src/sim/naming.cpp" "src/CMakeFiles/dnsbs_sim.dir/sim/naming.cpp.o" "gcc" "src/CMakeFiles/dnsbs_sim.dir/sim/naming.cpp.o.d"
  "/root/repo/src/sim/originator.cpp" "src/CMakeFiles/dnsbs_sim.dir/sim/originator.cpp.o" "gcc" "src/CMakeFiles/dnsbs_sim.dir/sim/originator.cpp.o.d"
  "/root/repo/src/sim/querier_population.cpp" "src/CMakeFiles/dnsbs_sim.dir/sim/querier_population.cpp.o" "gcc" "src/CMakeFiles/dnsbs_sim.dir/sim/querier_population.cpp.o.d"
  "/root/repo/src/sim/resolver.cpp" "src/CMakeFiles/dnsbs_sim.dir/sim/resolver.cpp.o" "gcc" "src/CMakeFiles/dnsbs_sim.dir/sim/resolver.cpp.o.d"
  "/root/repo/src/sim/scenario.cpp" "src/CMakeFiles/dnsbs_sim.dir/sim/scenario.cpp.o" "gcc" "src/CMakeFiles/dnsbs_sim.dir/sim/scenario.cpp.o.d"
  "/root/repo/src/sim/traffic_engine.cpp" "src/CMakeFiles/dnsbs_sim.dir/sim/traffic_engine.cpp.o" "gcc" "src/CMakeFiles/dnsbs_sim.dir/sim/traffic_engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dnsbs_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dnsbs_netdb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dnsbs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dnsbs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
