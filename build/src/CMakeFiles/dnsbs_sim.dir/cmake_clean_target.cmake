file(REMOVE_RECURSE
  "libdnsbs_sim.a"
)
