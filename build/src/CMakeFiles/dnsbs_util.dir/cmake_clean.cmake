file(REMOVE_RECURSE
  "CMakeFiles/dnsbs_util.dir/util/log.cpp.o"
  "CMakeFiles/dnsbs_util.dir/util/log.cpp.o.d"
  "CMakeFiles/dnsbs_util.dir/util/rng.cpp.o"
  "CMakeFiles/dnsbs_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/dnsbs_util.dir/util/stats.cpp.o"
  "CMakeFiles/dnsbs_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/dnsbs_util.dir/util/strings.cpp.o"
  "CMakeFiles/dnsbs_util.dir/util/strings.cpp.o.d"
  "CMakeFiles/dnsbs_util.dir/util/table.cpp.o"
  "CMakeFiles/dnsbs_util.dir/util/table.cpp.o.d"
  "CMakeFiles/dnsbs_util.dir/util/time.cpp.o"
  "CMakeFiles/dnsbs_util.dir/util/time.cpp.o.d"
  "libdnsbs_util.a"
  "libdnsbs_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsbs_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
