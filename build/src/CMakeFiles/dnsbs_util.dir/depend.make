# Empty dependencies file for dnsbs_util.
# This may be replaced when dependencies are built.
