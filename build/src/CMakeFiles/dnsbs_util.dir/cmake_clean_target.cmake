file(REMOVE_RECURSE
  "libdnsbs_util.a"
)
