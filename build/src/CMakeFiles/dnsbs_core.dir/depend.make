# Empty dependencies file for dnsbs_core.
# This may be replaced when dependencies are built.
