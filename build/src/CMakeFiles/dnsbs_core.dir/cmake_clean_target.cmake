file(REMOVE_RECURSE
  "libdnsbs_core.a"
)
