file(REMOVE_RECURSE
  "CMakeFiles/dnsbs_core.dir/core/aggregate.cpp.o"
  "CMakeFiles/dnsbs_core.dir/core/aggregate.cpp.o.d"
  "CMakeFiles/dnsbs_core.dir/core/dedup.cpp.o"
  "CMakeFiles/dnsbs_core.dir/core/dedup.cpp.o.d"
  "CMakeFiles/dnsbs_core.dir/core/dynamic_features.cpp.o"
  "CMakeFiles/dnsbs_core.dir/core/dynamic_features.cpp.o.d"
  "CMakeFiles/dnsbs_core.dir/core/feature_vector.cpp.o"
  "CMakeFiles/dnsbs_core.dir/core/feature_vector.cpp.o.d"
  "CMakeFiles/dnsbs_core.dir/core/sensor.cpp.o"
  "CMakeFiles/dnsbs_core.dir/core/sensor.cpp.o.d"
  "CMakeFiles/dnsbs_core.dir/core/static_features.cpp.o"
  "CMakeFiles/dnsbs_core.dir/core/static_features.cpp.o.d"
  "CMakeFiles/dnsbs_core.dir/core/taxonomy.cpp.o"
  "CMakeFiles/dnsbs_core.dir/core/taxonomy.cpp.o.d"
  "libdnsbs_core.a"
  "libdnsbs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsbs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
