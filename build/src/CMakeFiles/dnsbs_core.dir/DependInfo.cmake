
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aggregate.cpp" "src/CMakeFiles/dnsbs_core.dir/core/aggregate.cpp.o" "gcc" "src/CMakeFiles/dnsbs_core.dir/core/aggregate.cpp.o.d"
  "/root/repo/src/core/dedup.cpp" "src/CMakeFiles/dnsbs_core.dir/core/dedup.cpp.o" "gcc" "src/CMakeFiles/dnsbs_core.dir/core/dedup.cpp.o.d"
  "/root/repo/src/core/dynamic_features.cpp" "src/CMakeFiles/dnsbs_core.dir/core/dynamic_features.cpp.o" "gcc" "src/CMakeFiles/dnsbs_core.dir/core/dynamic_features.cpp.o.d"
  "/root/repo/src/core/feature_vector.cpp" "src/CMakeFiles/dnsbs_core.dir/core/feature_vector.cpp.o" "gcc" "src/CMakeFiles/dnsbs_core.dir/core/feature_vector.cpp.o.d"
  "/root/repo/src/core/sensor.cpp" "src/CMakeFiles/dnsbs_core.dir/core/sensor.cpp.o" "gcc" "src/CMakeFiles/dnsbs_core.dir/core/sensor.cpp.o.d"
  "/root/repo/src/core/static_features.cpp" "src/CMakeFiles/dnsbs_core.dir/core/static_features.cpp.o" "gcc" "src/CMakeFiles/dnsbs_core.dir/core/static_features.cpp.o.d"
  "/root/repo/src/core/taxonomy.cpp" "src/CMakeFiles/dnsbs_core.dir/core/taxonomy.cpp.o" "gcc" "src/CMakeFiles/dnsbs_core.dir/core/taxonomy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dnsbs_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dnsbs_netdb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dnsbs_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dnsbs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dnsbs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
