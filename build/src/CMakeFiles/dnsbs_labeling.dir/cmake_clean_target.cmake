file(REMOVE_RECURSE
  "libdnsbs_labeling.a"
)
