
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/labeling/blacklist.cpp" "src/CMakeFiles/dnsbs_labeling.dir/labeling/blacklist.cpp.o" "gcc" "src/CMakeFiles/dnsbs_labeling.dir/labeling/blacklist.cpp.o.d"
  "/root/repo/src/labeling/curator.cpp" "src/CMakeFiles/dnsbs_labeling.dir/labeling/curator.cpp.o" "gcc" "src/CMakeFiles/dnsbs_labeling.dir/labeling/curator.cpp.o.d"
  "/root/repo/src/labeling/darknet.cpp" "src/CMakeFiles/dnsbs_labeling.dir/labeling/darknet.cpp.o" "gcc" "src/CMakeFiles/dnsbs_labeling.dir/labeling/darknet.cpp.o.d"
  "/root/repo/src/labeling/ground_truth.cpp" "src/CMakeFiles/dnsbs_labeling.dir/labeling/ground_truth.cpp.o" "gcc" "src/CMakeFiles/dnsbs_labeling.dir/labeling/ground_truth.cpp.o.d"
  "/root/repo/src/labeling/strategies.cpp" "src/CMakeFiles/dnsbs_labeling.dir/labeling/strategies.cpp.o" "gcc" "src/CMakeFiles/dnsbs_labeling.dir/labeling/strategies.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dnsbs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dnsbs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dnsbs_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dnsbs_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dnsbs_netdb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dnsbs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dnsbs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
