# Empty dependencies file for dnsbs_labeling.
# This may be replaced when dependencies are built.
