file(REMOVE_RECURSE
  "CMakeFiles/dnsbs_labeling.dir/labeling/blacklist.cpp.o"
  "CMakeFiles/dnsbs_labeling.dir/labeling/blacklist.cpp.o.d"
  "CMakeFiles/dnsbs_labeling.dir/labeling/curator.cpp.o"
  "CMakeFiles/dnsbs_labeling.dir/labeling/curator.cpp.o.d"
  "CMakeFiles/dnsbs_labeling.dir/labeling/darknet.cpp.o"
  "CMakeFiles/dnsbs_labeling.dir/labeling/darknet.cpp.o.d"
  "CMakeFiles/dnsbs_labeling.dir/labeling/ground_truth.cpp.o"
  "CMakeFiles/dnsbs_labeling.dir/labeling/ground_truth.cpp.o.d"
  "CMakeFiles/dnsbs_labeling.dir/labeling/strategies.cpp.o"
  "CMakeFiles/dnsbs_labeling.dir/labeling/strategies.cpp.o.d"
  "libdnsbs_labeling.a"
  "libdnsbs_labeling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsbs_labeling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
