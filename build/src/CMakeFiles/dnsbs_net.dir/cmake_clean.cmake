file(REMOVE_RECURSE
  "CMakeFiles/dnsbs_net.dir/net/ipv4.cpp.o"
  "CMakeFiles/dnsbs_net.dir/net/ipv4.cpp.o.d"
  "CMakeFiles/dnsbs_net.dir/net/prefix_trie.cpp.o"
  "CMakeFiles/dnsbs_net.dir/net/prefix_trie.cpp.o.d"
  "libdnsbs_net.a"
  "libdnsbs_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsbs_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
