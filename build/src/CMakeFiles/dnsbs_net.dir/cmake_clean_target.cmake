file(REMOVE_RECURSE
  "libdnsbs_net.a"
)
