# Empty compiler generated dependencies file for dnsbs_net.
# This may be replaced when dependencies are built.
