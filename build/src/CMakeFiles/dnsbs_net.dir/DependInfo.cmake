
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/ipv4.cpp" "src/CMakeFiles/dnsbs_net.dir/net/ipv4.cpp.o" "gcc" "src/CMakeFiles/dnsbs_net.dir/net/ipv4.cpp.o.d"
  "/root/repo/src/net/prefix_trie.cpp" "src/CMakeFiles/dnsbs_net.dir/net/prefix_trie.cpp.o" "gcc" "src/CMakeFiles/dnsbs_net.dir/net/prefix_trie.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dnsbs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
