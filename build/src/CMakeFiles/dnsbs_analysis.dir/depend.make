# Empty dependencies file for dnsbs_analysis.
# This may be replaced when dependencies are built.
