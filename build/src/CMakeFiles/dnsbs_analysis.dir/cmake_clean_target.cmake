file(REMOVE_RECURSE
  "libdnsbs_analysis.a"
)
