file(REMOVE_RECURSE
  "CMakeFiles/dnsbs_analysis.dir/analysis/churn_analysis.cpp.o"
  "CMakeFiles/dnsbs_analysis.dir/analysis/churn_analysis.cpp.o.d"
  "CMakeFiles/dnsbs_analysis.dir/analysis/consistency.cpp.o"
  "CMakeFiles/dnsbs_analysis.dir/analysis/consistency.cpp.o.d"
  "CMakeFiles/dnsbs_analysis.dir/analysis/diurnal.cpp.o"
  "CMakeFiles/dnsbs_analysis.dir/analysis/diurnal.cpp.o.d"
  "CMakeFiles/dnsbs_analysis.dir/analysis/footprint.cpp.o"
  "CMakeFiles/dnsbs_analysis.dir/analysis/footprint.cpp.o.d"
  "CMakeFiles/dnsbs_analysis.dir/analysis/pipeline.cpp.o"
  "CMakeFiles/dnsbs_analysis.dir/analysis/pipeline.cpp.o.d"
  "CMakeFiles/dnsbs_analysis.dir/analysis/teams.cpp.o"
  "CMakeFiles/dnsbs_analysis.dir/analysis/teams.cpp.o.d"
  "CMakeFiles/dnsbs_analysis.dir/analysis/timeseries.cpp.o"
  "CMakeFiles/dnsbs_analysis.dir/analysis/timeseries.cpp.o.d"
  "libdnsbs_analysis.a"
  "libdnsbs_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsbs_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
