
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/churn_analysis.cpp" "src/CMakeFiles/dnsbs_analysis.dir/analysis/churn_analysis.cpp.o" "gcc" "src/CMakeFiles/dnsbs_analysis.dir/analysis/churn_analysis.cpp.o.d"
  "/root/repo/src/analysis/consistency.cpp" "src/CMakeFiles/dnsbs_analysis.dir/analysis/consistency.cpp.o" "gcc" "src/CMakeFiles/dnsbs_analysis.dir/analysis/consistency.cpp.o.d"
  "/root/repo/src/analysis/diurnal.cpp" "src/CMakeFiles/dnsbs_analysis.dir/analysis/diurnal.cpp.o" "gcc" "src/CMakeFiles/dnsbs_analysis.dir/analysis/diurnal.cpp.o.d"
  "/root/repo/src/analysis/footprint.cpp" "src/CMakeFiles/dnsbs_analysis.dir/analysis/footprint.cpp.o" "gcc" "src/CMakeFiles/dnsbs_analysis.dir/analysis/footprint.cpp.o.d"
  "/root/repo/src/analysis/pipeline.cpp" "src/CMakeFiles/dnsbs_analysis.dir/analysis/pipeline.cpp.o" "gcc" "src/CMakeFiles/dnsbs_analysis.dir/analysis/pipeline.cpp.o.d"
  "/root/repo/src/analysis/teams.cpp" "src/CMakeFiles/dnsbs_analysis.dir/analysis/teams.cpp.o" "gcc" "src/CMakeFiles/dnsbs_analysis.dir/analysis/teams.cpp.o.d"
  "/root/repo/src/analysis/timeseries.cpp" "src/CMakeFiles/dnsbs_analysis.dir/analysis/timeseries.cpp.o" "gcc" "src/CMakeFiles/dnsbs_analysis.dir/analysis/timeseries.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dnsbs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dnsbs_labeling.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dnsbs_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dnsbs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dnsbs_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dnsbs_netdb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dnsbs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dnsbs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
