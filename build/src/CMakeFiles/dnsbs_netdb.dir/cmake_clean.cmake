file(REMOVE_RECURSE
  "CMakeFiles/dnsbs_netdb.dir/netdb/as_db.cpp.o"
  "CMakeFiles/dnsbs_netdb.dir/netdb/as_db.cpp.o.d"
  "CMakeFiles/dnsbs_netdb.dir/netdb/geo_db.cpp.o"
  "CMakeFiles/dnsbs_netdb.dir/netdb/geo_db.cpp.o.d"
  "libdnsbs_netdb.a"
  "libdnsbs_netdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsbs_netdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
