file(REMOVE_RECURSE
  "libdnsbs_netdb.a"
)
