# Empty dependencies file for dnsbs_netdb.
# This may be replaced when dependencies are built.
