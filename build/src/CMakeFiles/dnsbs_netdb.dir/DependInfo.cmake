
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netdb/as_db.cpp" "src/CMakeFiles/dnsbs_netdb.dir/netdb/as_db.cpp.o" "gcc" "src/CMakeFiles/dnsbs_netdb.dir/netdb/as_db.cpp.o.d"
  "/root/repo/src/netdb/geo_db.cpp" "src/CMakeFiles/dnsbs_netdb.dir/netdb/geo_db.cpp.o" "gcc" "src/CMakeFiles/dnsbs_netdb.dir/netdb/geo_db.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dnsbs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dnsbs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
