file(REMOVE_RECURSE
  "libdnsbs_ml.a"
)
