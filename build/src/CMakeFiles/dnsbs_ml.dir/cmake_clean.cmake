file(REMOVE_RECURSE
  "CMakeFiles/dnsbs_ml.dir/ml/cart.cpp.o"
  "CMakeFiles/dnsbs_ml.dir/ml/cart.cpp.o.d"
  "CMakeFiles/dnsbs_ml.dir/ml/crossval.cpp.o"
  "CMakeFiles/dnsbs_ml.dir/ml/crossval.cpp.o.d"
  "CMakeFiles/dnsbs_ml.dir/ml/dataset.cpp.o"
  "CMakeFiles/dnsbs_ml.dir/ml/dataset.cpp.o.d"
  "CMakeFiles/dnsbs_ml.dir/ml/forest.cpp.o"
  "CMakeFiles/dnsbs_ml.dir/ml/forest.cpp.o.d"
  "CMakeFiles/dnsbs_ml.dir/ml/metrics.cpp.o"
  "CMakeFiles/dnsbs_ml.dir/ml/metrics.cpp.o.d"
  "CMakeFiles/dnsbs_ml.dir/ml/svm.cpp.o"
  "CMakeFiles/dnsbs_ml.dir/ml/svm.cpp.o.d"
  "libdnsbs_ml.a"
  "libdnsbs_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsbs_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
