
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/cart.cpp" "src/CMakeFiles/dnsbs_ml.dir/ml/cart.cpp.o" "gcc" "src/CMakeFiles/dnsbs_ml.dir/ml/cart.cpp.o.d"
  "/root/repo/src/ml/crossval.cpp" "src/CMakeFiles/dnsbs_ml.dir/ml/crossval.cpp.o" "gcc" "src/CMakeFiles/dnsbs_ml.dir/ml/crossval.cpp.o.d"
  "/root/repo/src/ml/dataset.cpp" "src/CMakeFiles/dnsbs_ml.dir/ml/dataset.cpp.o" "gcc" "src/CMakeFiles/dnsbs_ml.dir/ml/dataset.cpp.o.d"
  "/root/repo/src/ml/forest.cpp" "src/CMakeFiles/dnsbs_ml.dir/ml/forest.cpp.o" "gcc" "src/CMakeFiles/dnsbs_ml.dir/ml/forest.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/CMakeFiles/dnsbs_ml.dir/ml/metrics.cpp.o" "gcc" "src/CMakeFiles/dnsbs_ml.dir/ml/metrics.cpp.o.d"
  "/root/repo/src/ml/svm.cpp" "src/CMakeFiles/dnsbs_ml.dir/ml/svm.cpp.o" "gcc" "src/CMakeFiles/dnsbs_ml.dir/ml/svm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dnsbs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
