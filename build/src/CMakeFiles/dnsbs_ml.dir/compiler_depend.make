# Empty compiler generated dependencies file for dnsbs_ml.
# This may be replaced when dependencies are built.
