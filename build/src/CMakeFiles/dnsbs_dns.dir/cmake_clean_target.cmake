file(REMOVE_RECURSE
  "libdnsbs_dns.a"
)
