file(REMOVE_RECURSE
  "CMakeFiles/dnsbs_dns.dir/dns/cache.cpp.o"
  "CMakeFiles/dnsbs_dns.dir/dns/cache.cpp.o.d"
  "CMakeFiles/dnsbs_dns.dir/dns/capture.cpp.o"
  "CMakeFiles/dnsbs_dns.dir/dns/capture.cpp.o.d"
  "CMakeFiles/dnsbs_dns.dir/dns/json_log.cpp.o"
  "CMakeFiles/dnsbs_dns.dir/dns/json_log.cpp.o.d"
  "CMakeFiles/dnsbs_dns.dir/dns/name.cpp.o"
  "CMakeFiles/dnsbs_dns.dir/dns/name.cpp.o.d"
  "CMakeFiles/dnsbs_dns.dir/dns/query_log.cpp.o"
  "CMakeFiles/dnsbs_dns.dir/dns/query_log.cpp.o.d"
  "CMakeFiles/dnsbs_dns.dir/dns/reverse.cpp.o"
  "CMakeFiles/dnsbs_dns.dir/dns/reverse.cpp.o.d"
  "CMakeFiles/dnsbs_dns.dir/dns/wire.cpp.o"
  "CMakeFiles/dnsbs_dns.dir/dns/wire.cpp.o.d"
  "libdnsbs_dns.a"
  "libdnsbs_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsbs_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
