
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dns/cache.cpp" "src/CMakeFiles/dnsbs_dns.dir/dns/cache.cpp.o" "gcc" "src/CMakeFiles/dnsbs_dns.dir/dns/cache.cpp.o.d"
  "/root/repo/src/dns/capture.cpp" "src/CMakeFiles/dnsbs_dns.dir/dns/capture.cpp.o" "gcc" "src/CMakeFiles/dnsbs_dns.dir/dns/capture.cpp.o.d"
  "/root/repo/src/dns/json_log.cpp" "src/CMakeFiles/dnsbs_dns.dir/dns/json_log.cpp.o" "gcc" "src/CMakeFiles/dnsbs_dns.dir/dns/json_log.cpp.o.d"
  "/root/repo/src/dns/name.cpp" "src/CMakeFiles/dnsbs_dns.dir/dns/name.cpp.o" "gcc" "src/CMakeFiles/dnsbs_dns.dir/dns/name.cpp.o.d"
  "/root/repo/src/dns/query_log.cpp" "src/CMakeFiles/dnsbs_dns.dir/dns/query_log.cpp.o" "gcc" "src/CMakeFiles/dnsbs_dns.dir/dns/query_log.cpp.o.d"
  "/root/repo/src/dns/reverse.cpp" "src/CMakeFiles/dnsbs_dns.dir/dns/reverse.cpp.o" "gcc" "src/CMakeFiles/dnsbs_dns.dir/dns/reverse.cpp.o.d"
  "/root/repo/src/dns/wire.cpp" "src/CMakeFiles/dnsbs_dns.dir/dns/wire.cpp.o" "gcc" "src/CMakeFiles/dnsbs_dns.dir/dns/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dnsbs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dnsbs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
