# Empty compiler generated dependencies file for dnsbs_dns.
# This may be replaced when dependencies are built.
