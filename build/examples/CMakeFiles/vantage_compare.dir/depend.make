# Empty dependencies file for vantage_compare.
# This may be replaced when dependencies are built.
