file(REMOVE_RECURSE
  "CMakeFiles/vantage_compare.dir/vantage_compare.cpp.o"
  "CMakeFiles/vantage_compare.dir/vantage_compare.cpp.o.d"
  "vantage_compare"
  "vantage_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vantage_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
