# Empty compiler generated dependencies file for scan_watch.
# This may be replaced when dependencies are built.
