file(REMOVE_RECURSE
  "CMakeFiles/scan_watch.dir/scan_watch.cpp.o"
  "CMakeFiles/scan_watch.dir/scan_watch.cpp.o.d"
  "scan_watch"
  "scan_watch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scan_watch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
