file(REMOVE_RECURSE
  "CMakeFiles/dns_test.dir/dns_cache_test.cpp.o"
  "CMakeFiles/dns_test.dir/dns_cache_test.cpp.o.d"
  "CMakeFiles/dns_test.dir/dns_capture_test.cpp.o"
  "CMakeFiles/dns_test.dir/dns_capture_test.cpp.o.d"
  "CMakeFiles/dns_test.dir/dns_json_log_test.cpp.o"
  "CMakeFiles/dns_test.dir/dns_json_log_test.cpp.o.d"
  "CMakeFiles/dns_test.dir/dns_name_test.cpp.o"
  "CMakeFiles/dns_test.dir/dns_name_test.cpp.o.d"
  "CMakeFiles/dns_test.dir/dns_query_log_test.cpp.o"
  "CMakeFiles/dns_test.dir/dns_query_log_test.cpp.o.d"
  "CMakeFiles/dns_test.dir/dns_reverse_test.cpp.o"
  "CMakeFiles/dns_test.dir/dns_reverse_test.cpp.o.d"
  "CMakeFiles/dns_test.dir/dns_wire_property_test.cpp.o"
  "CMakeFiles/dns_test.dir/dns_wire_property_test.cpp.o.d"
  "CMakeFiles/dns_test.dir/dns_wire_test.cpp.o"
  "CMakeFiles/dns_test.dir/dns_wire_test.cpp.o.d"
  "dns_test"
  "dns_test.pdb"
  "dns_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dns_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
