# Empty compiler generated dependencies file for bench_tab07_top_jp.
# This may be replaced when dependencies are built.
