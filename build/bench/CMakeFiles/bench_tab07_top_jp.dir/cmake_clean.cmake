file(REMOVE_RECURSE
  "CMakeFiles/bench_tab07_top_jp.dir/bench_tab07_top_jp.cpp.o"
  "CMakeFiles/bench_tab07_top_jp.dir/bench_tab07_top_jp.cpp.o.d"
  "bench_tab07_top_jp"
  "bench_tab07_top_jp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab07_top_jp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
