# Empty dependencies file for bench_fig16_diurnal.
# This may be replaced when dependencies are built.
