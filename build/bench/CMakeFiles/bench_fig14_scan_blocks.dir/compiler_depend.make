# Empty compiler generated dependencies file for bench_fig14_scan_blocks.
# This may be replaced when dependencies are built.
