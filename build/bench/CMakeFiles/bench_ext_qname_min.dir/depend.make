# Empty dependencies file for bench_ext_qname_min.
# This may be replaced when dependencies are built.
