file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_qname_min.dir/bench_ext_qname_min.cpp.o"
  "CMakeFiles/bench_ext_qname_min.dir/bench_ext_qname_min.cpp.o.d"
  "bench_ext_qname_min"
  "bench_ext_qname_min.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_qname_min.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
