# Empty dependencies file for bench_tab02_dynamic_features.
# This may be replaced when dependencies are built.
