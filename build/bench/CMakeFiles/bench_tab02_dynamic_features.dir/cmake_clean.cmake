file(REMOVE_RECURSE
  "CMakeFiles/bench_tab02_dynamic_features.dir/bench_tab02_dynamic_features.cpp.o"
  "CMakeFiles/bench_tab02_dynamic_features.dir/bench_tab02_dynamic_features.cpp.o.d"
  "bench_tab02_dynamic_features"
  "bench_tab02_dynamic_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab02_dynamic_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
