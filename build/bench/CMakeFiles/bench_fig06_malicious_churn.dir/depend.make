# Empty dependencies file for bench_fig06_malicious_churn.
# This may be replaced when dependencies are built.
