file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_malicious_churn.dir/bench_fig06_malicious_churn.cpp.o"
  "CMakeFiles/bench_fig06_malicious_churn.dir/bench_fig06_malicious_churn.cpp.o.d"
  "bench_fig06_malicious_churn"
  "bench_fig06_malicious_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_malicious_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
