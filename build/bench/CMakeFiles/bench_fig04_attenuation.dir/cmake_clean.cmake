file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_attenuation.dir/bench_fig04_attenuation.cpp.o"
  "CMakeFiles/bench_fig04_attenuation.dir/bench_fig04_attenuation.cpp.o.d"
  "bench_fig04_attenuation"
  "bench_fig04_attenuation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_attenuation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
