file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_footprints.dir/bench_fig09_footprints.cpp.o"
  "CMakeFiles/bench_fig09_footprints.dir/bench_fig09_footprints.cpp.o.d"
  "bench_fig09_footprints"
  "bench_fig09_footprints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_footprints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
