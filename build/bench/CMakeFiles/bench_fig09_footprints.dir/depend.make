# Empty dependencies file for bench_fig09_footprints.
# This may be replaced when dependencies are built.
