file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_consistency.dir/bench_fig08_consistency.cpp.o"
  "CMakeFiles/bench_fig08_consistency.dir/bench_fig08_consistency.cpp.o.d"
  "bench_fig08_consistency"
  "bench_fig08_consistency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
