
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig03_static_features.cpp" "bench/CMakeFiles/bench_fig03_static_features.dir/bench_fig03_static_features.cpp.o" "gcc" "bench/CMakeFiles/bench_fig03_static_features.dir/bench_fig03_static_features.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/dnsbs_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dnsbs_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dnsbs_labeling.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dnsbs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dnsbs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dnsbs_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dnsbs_netdb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dnsbs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dnsbs_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dnsbs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
