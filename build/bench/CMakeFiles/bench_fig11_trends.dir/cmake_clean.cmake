file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_trends.dir/bench_fig11_trends.cpp.o"
  "CMakeFiles/bench_fig11_trends.dir/bench_fig11_trends.cpp.o.d"
  "bench_fig11_trends"
  "bench_fig11_trends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_trends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
