file(REMOVE_RECURSE
  "CMakeFiles/bench_tab06_groundtruth.dir/bench_tab06_groundtruth.cpp.o"
  "CMakeFiles/bench_tab06_groundtruth.dir/bench_tab06_groundtruth.cpp.o.d"
  "bench_tab06_groundtruth"
  "bench_tab06_groundtruth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab06_groundtruth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
