# Empty dependencies file for bench_tab06_groundtruth.
# This may be replaced when dependencies are built.
