# Empty dependencies file for bench_tab08_top_m.
# This may be replaced when dependencies are built.
