file(REMOVE_RECURSE
  "CMakeFiles/bench_tab08_top_m.dir/bench_tab08_top_m.cpp.o"
  "CMakeFiles/bench_tab08_top_m.dir/bench_tab08_top_m.cpp.o.d"
  "bench_tab08_top_m"
  "bench_tab08_top_m.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab08_top_m.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
