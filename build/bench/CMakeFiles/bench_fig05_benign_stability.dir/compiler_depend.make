# Empty compiler generated dependencies file for bench_fig05_benign_stability.
# This may be replaced when dependencies are built.
