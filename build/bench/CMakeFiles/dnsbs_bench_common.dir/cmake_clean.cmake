file(REMOVE_RECURSE
  "CMakeFiles/dnsbs_bench_common.dir/common.cpp.o"
  "CMakeFiles/dnsbs_bench_common.dir/common.cpp.o.d"
  "libdnsbs_bench_common.a"
  "libdnsbs_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsbs_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
