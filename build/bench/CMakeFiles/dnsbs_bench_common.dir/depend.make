# Empty dependencies file for dnsbs_bench_common.
# This may be replaced when dependencies are built.
