file(REMOVE_RECURSE
  "libdnsbs_bench_common.a"
)
