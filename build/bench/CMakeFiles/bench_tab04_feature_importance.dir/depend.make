# Empty dependencies file for bench_tab04_feature_importance.
# This may be replaced when dependencies are built.
