file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_footprint_boxplot.dir/bench_fig12_footprint_boxplot.cpp.o"
  "CMakeFiles/bench_fig12_footprint_boxplot.dir/bench_fig12_footprint_boxplot.cpp.o.d"
  "bench_fig12_footprint_boxplot"
  "bench_fig12_footprint_boxplot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_footprint_boxplot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
