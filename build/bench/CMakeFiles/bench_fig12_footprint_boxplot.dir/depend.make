# Empty dependencies file for bench_fig12_footprint_boxplot.
# This may be replaced when dependencies are built.
