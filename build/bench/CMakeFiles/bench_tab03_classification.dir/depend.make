# Empty dependencies file for bench_tab03_classification.
# This may be replaced when dependencies are built.
