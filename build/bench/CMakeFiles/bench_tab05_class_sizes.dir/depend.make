# Empty dependencies file for bench_tab05_class_sizes.
# This may be replaced when dependencies are built.
