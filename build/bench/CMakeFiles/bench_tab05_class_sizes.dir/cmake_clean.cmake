file(REMOVE_RECURSE
  "CMakeFiles/bench_tab05_class_sizes.dir/bench_tab05_class_sizes.cpp.o"
  "CMakeFiles/bench_tab05_class_sizes.dir/bench_tab05_class_sizes.cpp.o.d"
  "bench_tab05_class_sizes"
  "bench_tab05_class_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab05_class_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
