# Empty compiler generated dependencies file for bench_ext_verified_growth.
# This may be replaced when dependencies are built.
