file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_verified_growth.dir/bench_ext_verified_growth.cpp.o"
  "CMakeFiles/bench_ext_verified_growth.dir/bench_ext_verified_growth.cpp.o.d"
  "bench_ext_verified_growth"
  "bench_ext_verified_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_verified_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
