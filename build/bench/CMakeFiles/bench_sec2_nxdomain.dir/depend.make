# Empty dependencies file for bench_sec2_nxdomain.
# This may be replaced when dependencies are built.
