file(REMOVE_RECURSE
  "CMakeFiles/bench_sec2_nxdomain.dir/bench_sec2_nxdomain.cpp.o"
  "CMakeFiles/bench_sec2_nxdomain.dir/bench_sec2_nxdomain.cpp.o.d"
  "bench_sec2_nxdomain"
  "bench_sec2_nxdomain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec2_nxdomain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
