file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_example_scanners.dir/bench_fig13_example_scanners.cpp.o"
  "CMakeFiles/bench_fig13_example_scanners.dir/bench_fig13_example_scanners.cpp.o.d"
  "bench_fig13_example_scanners"
  "bench_fig13_example_scanners.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_example_scanners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
