# Empty dependencies file for bench_fig13_example_scanners.
# This may be replaced when dependencies are built.
