file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_training_strategies.dir/bench_fig07_training_strategies.cpp.o"
  "CMakeFiles/bench_fig07_training_strategies.dir/bench_fig07_training_strategies.cpp.o.d"
  "bench_fig07_training_strategies"
  "bench_fig07_training_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_training_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
