# Empty dependencies file for bench_fig07_training_strategies.
# This may be replaced when dependencies are built.
