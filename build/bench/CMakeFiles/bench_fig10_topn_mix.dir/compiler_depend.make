# Empty compiler generated dependencies file for bench_fig10_topn_mix.
# This may be replaced when dependencies are built.
