file(REMOVE_RECURSE
  "CMakeFiles/dnsbs_cli.dir/dnsbs_cli.cpp.o"
  "CMakeFiles/dnsbs_cli.dir/dnsbs_cli.cpp.o.d"
  "dnsbs_cli"
  "dnsbs_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsbs_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
