# Empty dependencies file for dnsbs_cli.
# This may be replaced when dependencies are built.
