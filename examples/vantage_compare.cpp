// vantage_compare: the same Internet activity seen from three different
// DNS authorities — a national ccTLD server and two root identities.
// Demonstrates the paper's central point about observation position:
// lower authorities see richer, less attenuated backscatter, roots see a
// sampled-but-global view.
//
// Build & run:   ./build/examples/vantage_compare
#include <cstdio>
#include <iostream>
#include <unordered_set>

#include "core/sensor.hpp"
#include "sim/scenario.hpp"
#include "util/table.hpp"

int main() {
  using namespace dnsbs;

  std::printf("one world, 50 hours, three vantage points...\n\n");
  // jp_ditl_config instantiates a national authority *plus* both roots.
  sim::Scenario scenario(sim::jp_ditl_config(/*seed=*/7, /*scale=*/0.2));
  scenario.run();

  util::TableWriter table("the same activity from three authorities");
  table.columns({"authority", "queries seen", "interesting originators",
                 "largest footprint", "median footprint"});

  std::vector<std::unordered_set<net::IPv4Addr>> detected_sets;
  for (auto& authority : scenario.authorities()) {
    core::Sensor sensor({}, scenario.plan().as_db(), scenario.plan().geo_db(),
                        scenario.naming());
    sensor.ingest_all(authority.records());
    const auto features = sensor.extract_features();

    std::unordered_set<net::IPv4Addr> detected;
    for (const auto& fv : features) detected.insert(fv.originator);
    detected_sets.push_back(std::move(detected));

    std::size_t largest = 0, median = 0;
    if (!features.empty()) {
      largest = features.front().footprint;
      median = features[features.size() / 2].footprint;
    }
    table.row({authority.config().name, util::with_commas(authority.records().size()),
               std::to_string(detected_sets.back().size()), util::with_commas(largest),
               util::with_commas(median)});
  }
  table.print(std::cout);

  // How much of the national view do the attenuated roots recover?
  if (detected_sets.size() == 3 && !detected_sets[0].empty()) {
    for (std::size_t root = 1; root < 3; ++root) {
      std::size_t overlap = 0;
      for (const auto& addr : detected_sets[root]) {
        overlap += detected_sets[0].contains(addr);
      }
      std::printf("%s recovered %zu of the national view's %zu originators "
                  "(plus %zu outside it)\n",
                  scenario.authority(root).config().name.c_str(), overlap,
                  detected_sets[0].size(), detected_sets[root].size() - overlap);
    }
  }
  std::printf("\nTakeaway: caching attenuates the signal up the hierarchy, "
              "but large activities remain\nvisible even at the root — the "
              "paper's core observation (Fig. 1, Fig. 4).\n");
  return 0;
}
