// Quickstart: the minimal end-to-end use of the dnsbs public API.
//
//   1. Build a synthetic Internet and generate DNS backscatter at a
//      national reverse-DNS authority (in a real deployment this step is
//      replaced by your authority's query log).
//   2. Feed the query log to the Sensor: dedup, aggregate, select
//      interesting originators, extract feature vectors.
//   3. Label a few examples (here: via the simulated expert curator) and
//      train the Random Forest.
//   4. Classify every detected originator and print the biggest ones.
//
// Build & run:   ./build/examples/quickstart
#include <cstdio>

#include "core/sensor.hpp"
#include "labeling/curator.hpp"
#include "ml/forest.hpp"
#include "sim/scenario.hpp"

int main() {
  using namespace dnsbs;

  // ---- 1. A world and 50 hours of backscatter at a ccTLD authority ----
  std::printf("building synthetic Internet and simulating 50h of traffic...\n");
  sim::Scenario scenario(sim::jp_ditl_config(/*seed=*/2026, /*scale=*/0.15));
  labeling::Darknet darknet(labeling::default_darknet_prefixes());
  scenario.engine().set_traffic_observer(&darknet);
  scenario.run();

  const auto& log = scenario.authority(0).records();
  std::printf("authority %s observed %zu reverse queries\n",
              scenario.authority(0).config().name.c_str(), log.size());

  // ---- 2. The backscatter sensor ----
  core::SensorConfig sensor_config;       // paper defaults: >=20 queriers,
  core::Sensor sensor(sensor_config,      // 30 s dedup, 10 min persistence
                      scenario.plan().as_db(), scenario.plan().geo_db(),
                      scenario.naming());
  sensor.ingest_all(log);
  const auto features = sensor.extract_features();
  std::printf("interesting originators (footprint >= %zu): %zu\n",
              sensor_config.min_queriers, features.size());

  // ---- 3. Labels and training ----
  util::Rng rng(7);
  const auto blacklist =
      labeling::BlacklistSet::build(scenario.population(), {}, rng);
  labeling::Curator curator(scenario, blacklist, darknet, {}, /*seed=*/3);
  const labeling::GroundTruth labels = curator.curate(features);
  const auto [train_data, used] = labels.join(features);
  std::printf("curated %zu labeled examples\n", train_data.size());

  ml::ForestConfig forest_config;
  forest_config.n_trees = 100;
  ml::RandomForest model(forest_config);
  model.fit(train_data);

  // ---- 4. Classify and report ----
  const auto classified = core::classify_all(features, model);
  std::printf("\n%-18s %-10s %-10s\n", "originator", "footprint", "class");
  for (std::size_t i = 0; i < classified.size() && i < 15; ++i) {
    const auto& c = classified[i];
    std::printf("%-18s %-10zu %s\n", c.features.originator.to_string().c_str(),
                c.features.footprint, std::string(core::to_string(c.predicted)).c_str());
  }
  return 0;
}
