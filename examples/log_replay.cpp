// log_replay: operate the sensor the way a DNS operator would — from a
// reverse-query log file on disk, with no simulator in the loop at
// classification time.
//
//   stage 1 (here: simulated; in production: your capture point) writes a
//           tab-separated query log;
//   stage 2 replays the log through the Sensor, prints footprint stats,
//           and emits per-originator feature vectors as CSV for whatever
//           ML tooling you prefer.
//
// Usage:   ./build/examples/log_replay [logfile]
//          (no argument: generates demo.log in the working directory)
#include <cstdio>
#include <fstream>
#include <iostream>

#include "core/sensor.hpp"
#include "sim/scenario.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dnsbs;

  const std::string path = argc > 1 ? argv[1] : "demo.log";

  // The world is needed for querier-name resolution and the AS/geo
  // databases even when replaying from disk; a production deployment
  // wires in a real resolver client and MaxMind/whois here.
  sim::Scenario scenario(sim::jp_ditl_config(/*seed=*/4242, /*scale=*/0.12));

  if (argc <= 1) {
    std::printf("no log given: generating %s from the simulator...\n", path.c_str());
    scenario.run();
    std::ofstream out(path);
    dns::QueryLogWriter writer(out);
    for (const auto& record : scenario.authority(0).records()) writer.write(record);
    std::printf("wrote %zu records\n", writer.count());
  }

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }

  core::Sensor sensor({}, scenario.plan().as_db(), scenario.plan().geo_db(),
                      scenario.naming());
  dns::QueryLogReader reader(in);
  std::size_t records = 0;
  while (auto record = reader.next()) {
    sensor.ingest(*record);
    ++records;
  }
  std::printf("replayed %zu records (%zu malformed lines skipped)\n", records,
              reader.skipped());
  std::printf("dedup: %llu admitted, %llu suppressed\n",
              static_cast<unsigned long long>(sensor.dedup().admitted()),
              static_cast<unsigned long long>(sensor.dedup().suppressed()));

  const auto features = sensor.extract_features();
  std::printf("interesting originators: %zu\n", features.size());
  if (features.empty()) return 0;

  std::vector<double> footprints;
  footprints.reserve(features.size());
  for (const auto& fv : features) {
    footprints.push_back(static_cast<double>(fv.footprint));
  }
  const auto box = util::box_stats(footprints);
  std::printf("footprints: median %.0f, p90 %.0f, max %.0f\n\n", box.p50, box.p90,
              box.max);

  // Feature vectors as CSV on stdout (head only; pipe to a file for all).
  util::TableWriter csv;
  std::vector<std::string> header = {"originator", "footprint"};
  for (const auto& name : core::feature_names()) header.push_back(name);
  csv.columns(header);
  for (std::size_t i = 0; i < features.size() && i < 10; ++i) {
    std::vector<std::string> row = {features[i].originator.to_string(),
                                    std::to_string(features[i].footprint)};
    for (const double v : features[i].row()) row.push_back(util::fixed(v, 4));
    csv.row(std::move(row));
  }
  std::printf("first 10 feature vectors (CSV):\n%s", csv.to_csv().c_str());
  return 0;
}
