// scan_watch: a security-operations scenario from the paper's intro —
// track world-wide scanning over weeks from a root authority's reverse
// query stream, flag scanner bursts after a vulnerability disclosure, and
// surface /24 blocks that look like coordinated scanning teams.
//
// Build & run:   ./build/examples/scan_watch
#include <cstdio>

#include "analysis/churn_analysis.hpp"
#include "analysis/teams.hpp"
#include "analysis/timeseries.hpp"
#include "core/sensor.hpp"
#include "labeling/curator.hpp"
#include "ml/forest.hpp"
#include "sim/scenario.hpp"

int main() {
  using namespace dnsbs;

  constexpr std::size_t kWeeks = 10;
  std::printf("simulating %zu weeks of M-Root-style sampled backscatter...\n",
              kWeeks);
  sim::Scenario scenario(sim::m_sampled_config(/*seed=*/99, kWeeks, /*scale=*/0.05));
  labeling::Darknet darknet(labeling::default_darknet_prefixes());
  scenario.engine().set_traffic_observer(&darknet);

  // Weekly cadence: run a window, extract features, keep the observation.
  core::SensorConfig sensor_config;
  sensor_config.min_queriers = 10;  // sampled root view: compressed floor
  std::vector<std::vector<core::FeatureVector>> weekly_features;
  for (std::size_t w = 0; w < kWeeks; ++w) {
    scenario.run_window(util::SimTime::weeks(w), util::SimTime::weeks(w + 1));
    core::Sensor sensor(sensor_config, scenario.plan().as_db(),
                        scenario.plan().geo_db(), scenario.naming());
    sensor.ingest_all(scenario.authority(0).records());
    scenario.authority(0).clear_records();
    weekly_features.push_back(sensor.extract_features());
    std::printf("  week %zu: %zu interesting originators\n", w,
                weekly_features.back().size());
  }

  // One expert curation early on, then weekly retraining on fresh features
  // (the strategy §V recommends).
  util::Rng rng(1);
  const auto blacklist =
      labeling::BlacklistSet::build(scenario.population(), {}, rng);
  labeling::Curator curator(scenario, blacklist, darknet, {}, 5);
  const auto labels = curator.curate(weekly_features[1]);
  std::printf("curated %zu labeled examples at week 1\n\n", labels.size());

  std::vector<analysis::WindowResult> windows;
  for (std::size_t w = 0; w < kWeeks; ++w) {
    const auto [data, used] = labels.join(weekly_features[w]);
    analysis::WindowResult result;
    result.index = w;
    if (data.size() >= 20) {
      ml::ForestConfig fc;
      fc.n_trees = 80;
      fc.seed = 100 + w;
      ml::RandomForest model(fc);
      model.fit(data);
      for (const auto& fv : weekly_features[w]) {
        result.classes[fv.originator] =
            static_cast<core::AppClass>(model.predict(fv.row()));
        result.footprints[fv.originator] = fv.footprint;
      }
    }
    windows.push_back(std::move(result));
  }

  // Report 1: the scanning trend (Heartbleed-like event fires at week 7).
  std::printf("weekly scanners (disclosure at week 7):\n");
  for (const auto& w : windows) {
    const auto counts = analysis::window_class_counts(w);
    const std::size_t scan = counts[static_cast<std::size_t>(core::AppClass::kScan)];
    std::printf("  week %zu: %3zu scanners  %s\n", w.index, scan,
                std::string(scan, '#').c_str());
  }

  // Report 2: churn — is there a persistent scanning core?
  const auto churn = analysis::weekly_churn(windows, core::AppClass::kScan);
  std::printf("\nmean weekly scanner turnover: %.0f%%\n",
              100.0 * analysis::mean_turnover(churn));

  // Report 3: candidate scanner teams (multiple scan origins per /24).
  const auto teams = analysis::blocks_of_class(windows, core::AppClass::kScan, 2);
  std::printf("\ncandidate coordinated-scanning blocks (>=2 scan origins):\n");
  for (std::size_t i = 0; i < teams.size() && i < 8; ++i) {
    std::printf("  %s/24: %zu originators (%zu class%s seen in block)\n",
                net::IPv4Addr(teams[i].slash24 << 8).to_string().c_str(),
                teams[i].originators, teams[i].distinct_classes,
                teams[i].distinct_classes == 1 ? "" : "es");
  }
  if (teams.empty()) std::printf("  (none at this scale)\n");
  return 0;
}
