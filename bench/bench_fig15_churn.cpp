// Figure 15: week-by-week churn of scan-class originators: new,
// continuing, and departing counts, with a stable scanning core.
#include "common.hpp"

#include <iostream>

#include "analysis/churn_analysis.hpp"

namespace dnsbs::bench {
namespace {

int run(int argc, char** argv) {
  print_header("Figure 15: week-by-week churn for scan originators",
               "Fukuda & Heidemann, IMC'15 / TON'17, Fig. 15 (M-sampled)",
               "New / continuing / departing scanners per week; the paper "
               "reports ~20% weekly turnover over a stable core.");
  const double scale = arg_scale(argc, argv, 0.06);
  const std::uint64_t seed = arg_seed(argc, argv, 47);
  constexpr std::size_t kWeeks = 14;

  core::SensorConfig sensor;
  sensor.min_queriers = 10;
  LongRun run =
      run_weekly_windows(sim::m_sampled_config(seed, kWeeks, scale), kWeeks, sensor);
  labeling::CuratorConfig cc;
  cc.max_per_class = 50;
  const auto labels = curate_window(run, 1, seed ^ 0x11, cc);
  const auto windows = classify_windows(run, labels, seed);

  const auto churn = analysis::weekly_churn(windows, core::AppClass::kScan);
  util::TableWriter table("scan-class churn per week");
  table.columns({"week", "new", "continuing", "departing", "turnover"});
  for (const auto& point : churn) {
    const std::size_t present = point.fresh + point.continuing;
    table.row({std::to_string(point.window), std::to_string(point.fresh),
               std::to_string(point.continuing), std::to_string(point.departing),
               present ? util::fixed(static_cast<double>(point.fresh) / present, 2)
                       : "-"});
  }
  table.print(std::cout);
  std::printf("mean weekly turnover: %.2f\n", analysis::mean_turnover(churn));
  std::printf("Expected shape (paper Fig. 15): scanners come and go every "
              "week, but a continuing\ncore persists week-after-week.\n");
  return 0;
}

}  // namespace
}  // namespace dnsbs::bench

int main(int argc, char** argv) { return dnsbs::bench::run(argc, argv); }
