// Figure 11: number of originators over time per class, with a
// Heartbleed-like vulnerability disclosure driving a scanning burst.
#include "common.hpp"

#include <iostream>

#include "analysis/timeseries.hpp"

namespace dnsbs::bench {
namespace {

int run(int argc, char** argv) {
  print_header("Figure 11: number of originators over time",
               "Fukuda & Heidemann, IMC'15 / TON'17, Fig. 11 (M-sampled)",
               "Weekly originator counts per class; a Heartbleed-like "
               "disclosure fires at week 7.");
  const double scale = arg_scale(argc, argv, 0.06);
  const std::uint64_t seed = arg_seed(argc, argv, 47);
  constexpr std::size_t kWeeks = 14;

  core::SensorConfig sensor;
  sensor.min_queriers = 10;
  LongRun run =
      run_weekly_windows(sim::m_sampled_config(seed, kWeeks, scale), kWeeks, sensor);
  labeling::CuratorConfig cc;
  cc.max_per_class = 50;
  const auto labels = curate_window(run, 1, seed ^ 0x11, cc);
  const auto windows = classify_windows(run, labels, seed);

  util::TableWriter table("weekly originator counts (RF classification)");
  table.columns({"week", "total", "scan", "spam", "mail", "cdn", "other"});
  std::size_t pre_scan = 0, burst_scan = 0;
  for (const auto& w : windows) {
    const auto counts = analysis::window_class_counts(w);
    std::size_t total = 0;
    for (const std::size_t c : counts) total += c;
    const std::size_t scan = counts[static_cast<std::size_t>(core::AppClass::kScan)];
    const std::size_t spam = counts[static_cast<std::size_t>(core::AppClass::kSpam)];
    const std::size_t mail = counts[static_cast<std::size_t>(core::AppClass::kMail)];
    const std::size_t cdn = counts[static_cast<std::size_t>(core::AppClass::kCdn)];
    table.row({std::to_string(w.index), std::to_string(total), std::to_string(scan),
               std::to_string(spam), std::to_string(mail), std::to_string(cdn),
               std::to_string(total - scan - spam - mail - cdn)});
    if (w.index >= 3 && w.index <= 6) pre_scan += scan;
    if (w.index >= 8 && w.index <= 10) burst_scan += scan;
  }
  table.print(std::cout);

  const double pre = static_cast<double>(pre_scan) / 4.0;
  const double burst = static_cast<double>(burst_scan) / 3.0;
  std::printf("mean scanners/week before disclosure (w3-6): %.1f; during "
              "burst (w8-10): %.1f (%+.0f%%)\n",
              pre, burst, pre > 0 ? 100.0 * (burst - pre) / pre : 0.0);
  std::printf("Expected shape (paper Fig. 11): a steady scanning background "
              "with a noticeable (>25%%)\nrise after the disclosure, on top "
              "of week-by-week churn.\n");
  return 0;
}

}  // namespace
}  // namespace dnsbs::bench

int main(int argc, char** argv) { return dnsbs::bench::run(argc, argv); }
