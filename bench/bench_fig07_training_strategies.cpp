// Figure 7: classifier f-score over time under three training strategies:
// train-once, retrain-daily (fresh features, fixed labels), and automatic
// label-set growing.
#include "common.hpp"

#include <iostream>

#include "labeling/strategies.hpp"

namespace dnsbs::bench {
namespace {

int run(int argc, char** argv) {
  print_header("Figure 7: training strategies over time",
               "Fukuda & Heidemann, IMC'15 / TON'17, Fig. 7 (B-multi-year)",
               "Per-window f-score for train-once / retrain-weekly / "
               "auto-grown labels; curation at week 2.");
  const double scale = arg_scale(argc, argv, 0.08);
  const std::uint64_t seed = arg_seed(argc, argv, 29);
  constexpr std::size_t kWeeks = 16;
  constexpr std::size_t kCurationWeek = 2;

  core::SensorConfig sensor;
  sensor.min_queriers = 10;
  LongRun run =
      run_weekly_windows(sim::b_multi_year_config(seed, kWeeks, scale), kWeeks, sensor);
  labeling::CuratorConfig cc;
  cc.max_per_class = 50;
  const auto labels = curate_window(run, kCurationWeek, seed ^ 0x777, cc);
  std::printf("curated %zu labeled examples at week %zu\n\n", labels.size(),
              kCurationWeek);

  labeling::StrategyConfig sc;
  sc.seed = seed;
  const auto once = labeling::evaluate_train_once(run.windows, kCurationWeek, labels, sc);
  const auto daily = labeling::evaluate_train_daily(run.windows, labels, sc);
  const auto grown = labeling::evaluate_auto_grow(run.windows, kCurationWeek, labels, sc,
                                                  &run.scenario->truth());

  util::TableWriter table("f-score per weekly window");
  table.columns({"week", "train-once", "retrain-weekly", "auto-grow",
                 "grown-label error", "examples"});
  const auto cell = [](const labeling::StrategyPoint& p) {
    return p.trained ? util::fixed(p.f1, 3) : std::string("(no model)");
  };
  double once_late = 0, daily_late = 0, grown_late = 0;
  std::size_t late = 0;
  for (std::size_t w = 0; w < run.windows.size(); ++w) {
    table.row({std::to_string(w), cell(once[w]), cell(daily[w]), cell(grown[w]),
               w >= kCurationWeek ? util::fixed(grown[w].label_error, 3) : "-",
               std::to_string(daily[w].examples)});
    if (w >= kCurationWeek + 5) {
      once_late += once[w].f1;
      daily_late += daily[w].f1;
      grown_late += grown[w].f1;
      ++late;
    }
  }
  table.print(std::cout);
  if (late > 0) {
    std::printf("mean f-score 5+ weeks after curation: train-once %.3f, "
                "retrain-weekly %.3f, auto-grow %.3f\n",
                once_late / late, daily_late / late, grown_late / late);
  }
  std::printf("Expected shape (paper Fig. 7): retrain-daily sustains the "
              "highest f-score; train-once\ndecays after curation; auto-grow "
              "degrades as classification error compounds.\n");
  return 0;
}

}  // namespace
}  // namespace dnsbs::bench

int main(int argc, char** argv) { return dnsbs::bench::run(argc, argv); }
