#include "common.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace dnsbs::bench {

namespace {
const char* find_arg(int argc, char** argv, const char* name) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return nullptr;
}
}  // namespace

double arg_scale(int argc, char** argv, double fallback) {
  const char* v = find_arg(argc, argv, "--scale");
  return v ? std::atof(v) : fallback;
}

std::uint64_t arg_seed(int argc, char** argv, std::uint64_t fallback) {
  const char* v = find_arg(argc, argv, "--seed");
  return v ? std::strtoull(v, nullptr, 10) : fallback;
}

bool arg_flag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

std::string arg_str(int argc, char** argv, const char* name, std::string fallback) {
  const char* v = find_arg(argc, argv, name);
  return v ? std::string(v) : fallback;
}

WorldRun run_world(sim::ScenarioConfig config, core::SensorConfig sensor_config) {
  WorldRun world;
  const std::uint64_t seed = config.seed;
  world.scenario = std::make_unique<sim::Scenario>(std::move(config));
  world.darknet =
      std::make_unique<labeling::Darknet>(labeling::default_darknet_prefixes());
  world.scenario->engine().set_traffic_observer(world.darknet.get());
  world.scenario->run();

  util::Rng rng = util::Rng::stream(seed, 0xb1ac);
  world.blacklist =
      labeling::BlacklistSet::build(world.scenario->population(), {}, rng);

  for (auto& authority : world.scenario->authorities()) {
    core::Sensor sensor(sensor_config, world.scenario->plan().as_db(),
                        world.scenario->plan().geo_db(), world.scenario->naming());
    sensor.ingest_all(authority.records());
    world.features.push_back(sensor.extract_features());
  }
  return world;
}

labeling::GroundTruth curate(const WorldRun& world, std::size_t authority_index,
                             std::uint64_t seed, labeling::CuratorConfig config) {
  labeling::Curator curator(*world.scenario, world.blacklist, *world.darknet, config,
                            seed);
  return curator.curate(world.features[authority_index]);
}

std::unique_ptr<ml::Classifier> make_rf(std::uint64_t seed, std::size_t trees) {
  ml::ForestConfig cfg;
  cfg.n_trees = trees;
  cfg.seed = seed;
  return std::make_unique<ml::RandomForest>(cfg);
}

std::vector<core::ClassifiedOriginator> classify_authority(
    const WorldRun& world, std::size_t authority_index,
    const labeling::GroundTruth& labels, std::uint64_t seed) {
  const auto [data, used] = labels.join(world.features[authority_index]);
  auto model = make_rf(seed);
  model->fit(data);
  return core::classify_all(world.features[authority_index], *model);
}

LongRun run_weekly_windows(sim::ScenarioConfig config, std::size_t weeks,
                           core::SensorConfig sensor_config) {
  LongRun run;
  const std::uint64_t seed = config.seed;
  run.scenario = std::make_unique<sim::Scenario>(std::move(config));
  run.darknet =
      std::make_unique<labeling::Darknet>(labeling::default_darknet_prefixes());
  run.scenario->engine().set_traffic_observer(run.darknet.get());

  util::Rng rng = util::Rng::stream(seed, 0xb1ac);
  run.blacklist =
      labeling::BlacklistSet::build(run.scenario->population(), {}, rng);

  for (std::size_t w = 0; w < weeks; ++w) {
    const auto t0 = util::SimTime::weeks(static_cast<std::int64_t>(w));
    const auto t1 = util::SimTime::weeks(static_cast<std::int64_t>(w + 1));
    run.scenario->run_window(t0, t1);
    core::Sensor sensor(sensor_config, run.scenario->plan().as_db(),
                        run.scenario->plan().geo_db(), run.scenario->naming());
    sensor.ingest_all(run.scenario->authority(0).records());
    run.scenario->authority(0).clear_records();
    labeling::WindowObservation obs;
    obs.start = t0;
    obs.end = t1;
    obs.features = sensor.extract_features();
    run.windows.push_back(std::move(obs));
  }
  return run;
}

labeling::GroundTruth curate_window(const LongRun& run, std::size_t window,
                                    std::uint64_t seed,
                                    labeling::CuratorConfig config) {
  labeling::Curator curator(*run.scenario, run.blacklist, *run.darknet, config, seed);
  return curator.curate(run.windows[window].features);
}

std::vector<analysis::WindowResult> classify_windows(const LongRun& run,
                                                     const labeling::GroundTruth& labels,
                                                     std::uint64_t seed) {
  std::vector<analysis::WindowResult> results;
  std::unique_ptr<ml::Classifier> model;
  for (std::size_t w = 0; w < run.windows.size(); ++w) {
    const auto& window = run.windows[w];
    auto [data, used] = labels.join(window.features);
    // Retrain when this window has a usable labeled set; otherwise keep
    // yesterday's boundary (graceful degradation, §V-C).
    std::size_t populated = 0;
    for (const std::size_t c : data.class_counts()) {
      if (c >= 2) ++populated;
    }
    if (populated >= 2) {
      model = make_rf(seed + w);
      model->fit(data);
    }
    analysis::WindowResult result;
    result.index = w;
    result.start = window.start;
    result.end = window.end;
    if (model) {
      for (const auto& fv : window.features) {
        result.classes[fv.originator] =
            static_cast<core::AppClass>(model->predict(fv.row()));
        result.footprints[fv.originator] = fv.footprint;
      }
    }
    results.push_back(std::move(result));
  }
  return results;
}

void print_header(const std::string& experiment, const std::string& paper_ref,
                  const std::string& note) {
  std::printf("==============================================================\n");
  std::printf("dnsbs reproduction bench: %s\n", experiment.c_str());
  std::printf("paper reference: %s\n", paper_ref.c_str());
  if (!note.empty()) std::printf("%s\n", note.c_str());
  std::printf("==============================================================\n\n");
}

}  // namespace dnsbs::bench
