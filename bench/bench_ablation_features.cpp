// Ablation study (design choices called out in DESIGN.md):
//   - static-only vs dynamic-only vs full feature set;
//   - fewer application classes (the paper: "higher accuracy with fewer
//     application classes");
//   - RF tree-count sweep.
#include "common.hpp"

#include <iostream>
#include <numeric>

namespace dnsbs::bench {
namespace {

ml::MetricSummary cv_rf(const ml::Dataset& data, std::size_t trees, std::uint64_t seed) {
  ml::CrossValConfig cv;
  cv.repetitions = 15;
  cv.seed = seed;
  return ml::cross_validate(
      data,
      [trees](std::uint64_t s) {
        ml::ForestConfig cfg;
        cfg.n_trees = trees;
        cfg.seed = s;
        return std::unique_ptr<ml::Classifier>(std::make_unique<ml::RandomForest>(cfg));
      },
      cv);
}

/// Collapses the 12 classes to 4 coarse groups: malicious (scan+spam),
/// mail, web-infrastructure, other.
ml::Dataset coarsen(const ml::Dataset& fine) {
  const std::vector<std::string> coarse_names = {"malicious", "mail", "web-infra",
                                                 "other"};
  ml::Dataset out(fine.feature_names(), coarse_names);
  for (std::size_t i = 0; i < fine.size(); ++i) {
    const auto cls = static_cast<core::AppClass>(fine.label(i));
    std::size_t coarse;
    if (core::is_malicious(cls)) {
      coarse = 0;
    } else if (cls == core::AppClass::kMail) {
      coarse = 1;
    } else if (cls == core::AppClass::kCdn || cls == core::AppClass::kCloud ||
               cls == core::AppClass::kAdTracker || cls == core::AppClass::kCrawler) {
      coarse = 2;
    } else {
      coarse = 3;
    }
    const auto row = fine.row(i);
    out.add(std::vector<double>(row.begin(), row.end()), coarse);
  }
  return out;
}

int run(int argc, char** argv) {
  print_header("Ablation: feature families, class granularity, forest size",
               "design-choice ablations for DESIGN.md (paper §III-C, §IV-C)",
               "All runs on the JP-ditl analogue with the repeated-split "
               "protocol.");
  const double scale = arg_scale(argc, argv, 0.25);
  const std::uint64_t seed = arg_seed(argc, argv, 71);

  WorldRun world = run_world(sim::jp_ditl_config(seed, scale));
  const auto labels = curate(world, 0, seed ^ 0x5);
  auto [full, used] = labels.join(world.features[0]);
  std::printf("labeled examples: %zu\n\n", full.size());

  // Feature-family ablation.
  std::vector<std::size_t> static_cols(core::kQuerierCategoryCount);
  std::iota(static_cols.begin(), static_cols.end(), 0);
  std::vector<std::size_t> dynamic_cols(core::kDynamicFeatureCount);
  std::iota(dynamic_cols.begin(), dynamic_cols.end(), core::kQuerierCategoryCount);

  util::TableWriter features_table("feature-family ablation (RF, 12 classes)");
  features_table.columns({"features", "accuracy", "F1"});
  const auto add_row = [&](const char* name, const ml::Dataset& data) {
    const auto s = cv_rf(data, 100, seed);
    features_table.row({name, util::fixed(s.mean.accuracy, 3), util::fixed(s.mean.f1, 3)});
  };
  add_row("static only (14)", full.with_features(static_cols));
  add_row("dynamic only (8)", full.with_features(dynamic_cols));
  add_row("full (22)", full);
  features_table.print(std::cout);

  // Class-granularity ablation.
  util::TableWriter classes_table("class-granularity ablation (RF, full features)");
  classes_table.columns({"classes", "accuracy", "F1"});
  {
    const auto fine = cv_rf(full, 100, seed + 1);
    classes_table.row({"12 (paper)", util::fixed(fine.mean.accuracy, 3),
                       util::fixed(fine.mean.f1, 3)});
    const auto coarse = cv_rf(coarsen(full), 100, seed + 2);
    classes_table.row({"4 (coarse)", util::fixed(coarse.mean.accuracy, 3),
                       util::fixed(coarse.mean.f1, 3)});
  }
  classes_table.print(std::cout);

  // Forest-size sweep.
  util::TableWriter trees_table("RF tree-count sweep");
  trees_table.columns({"trees", "accuracy", "F1"});
  for (const std::size_t trees : {1UL, 5UL, 20UL, 50UL, 100UL, 200UL}) {
    const auto s = cv_rf(full, trees, seed + trees);
    trees_table.row({std::to_string(trees), util::fixed(s.mean.accuracy, 3),
                     util::fixed(s.mean.f1, 3)});
  }
  trees_table.print(std::cout);

  std::printf("Expected shape: full features beat either family alone; coarse "
              "classes score higher\n(the paper's trade-off); accuracy "
              "saturates by ~100 trees.\n");
  return 0;
}

}  // namespace
}  // namespace dnsbs::bench

int main(int argc, char** argv) { return dnsbs::bench::run(argc, argv); }
