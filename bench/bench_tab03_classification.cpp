// Table III: classification accuracy/precision/recall/F1 for CART, RF,
// and kernel SVM across the four dataset analogues, using the paper's
// repeated 60/40 cross-validation protocol.
#include "common.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <functional>
#include <iostream>
#include <thread>

#include "analysis/pipeline.hpp"
#include "ml/cart.hpp"
#include "ml/svm.hpp"
#include "util/parallel.hpp"

namespace dnsbs::bench {
namespace {

struct DatasetRun {
  std::string name;
  ml::Dataset data;
};

void evaluate(util::TableWriter& table, const DatasetRun& run, std::size_t reps) {
  struct Algo {
    const char* name;
    ml::ModelFactory factory;
  };
  // The paper runs each randomized algorithm 10 times and majority-votes
  // (§III-D); CART is deterministic and runs once.
  const Algo algos[] = {
      {"CART",
       [](std::uint64_t seed) {
         ml::CartConfig cfg;
         cfg.seed = seed;
         return std::unique_ptr<ml::Classifier>(std::make_unique<ml::CartTree>(cfg));
       }},
      {"RF",
       [](std::uint64_t seed) {
         return std::unique_ptr<ml::Classifier>(std::make_unique<ml::VotingClassifier>(
             [](std::uint64_t s) {
               ml::ForestConfig cfg;
               cfg.n_trees = 100;
               cfg.seed = s;
               return std::unique_ptr<ml::Classifier>(
                   std::make_unique<ml::RandomForest>(cfg));
             },
             10, seed));
       }},
      {"SVM",
       [](std::uint64_t seed) {
         return std::unique_ptr<ml::Classifier>(std::make_unique<ml::VotingClassifier>(
             [](std::uint64_t s) {
               ml::SvmConfig cfg;
               cfg.seed = s;
               return std::unique_ptr<ml::Classifier>(
                   std::make_unique<ml::KernelSvm>(cfg));
             },
             10, seed));
       }},
  };
  for (const Algo& algo : algos) {
    ml::CrossValConfig cv;
    cv.repetitions = reps;
    cv.train_fraction = 0.6;
    cv.seed = 20140415;
    const ml::MetricSummary s = ml::cross_validate(run.data, algo.factory, cv);
    const auto cell = [](double mean, double sd) {
      return util::fixed(mean, 2) + " (" + util::fixed(sd, 2) + ")";
    };
    table.row({run.name, algo.name, cell(s.mean.accuracy, s.stddev.accuracy),
               cell(s.mean.precision, s.stddev.precision),
               cell(s.mean.recall, s.stddev.recall), cell(s.mean.f1, s.stddev.f1),
               std::to_string(run.data.size())});
  }
}

DatasetRun build(const char* name, sim::ScenarioConfig config, std::size_t authority,
                 core::SensorConfig sensor_config = {}) {
  const std::uint64_t seed = config.seed;
  WorldRun world = run_world(std::move(config), sensor_config);
  const auto labels = curate(world, authority, seed ^ 0xc0de);
  auto [data, used] = labels.join(world.features[authority]);
  std::printf("%-10s labeled examples: %zu (of %zu detected)\n", name, data.size(),
              world.features[authority].size());
  return DatasetRun{name, std::move(data)};
}

// ---------------------------------------------------------------------------
// `--parallel` mode: the deterministic-parallelism baseline.  Sweeps thread
// counts over (a) Random Forest training on a real curated dataset and
// (b) end-to-end window processing (ingest -> features -> retrain ->
// classify), checks that every thread count reproduces the serial output
// exactly, and emits a machine-readable BENCH_parallel.json so the perf
// trajectory across PRs has a seedable baseline.
// ---------------------------------------------------------------------------

double time_best_of(int reps, const std::function<void()>& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;
    best = std::min(best, dt.count());
  }
  return best;
}

std::vector<std::size_t> sweep_thread_counts() {
  std::vector<std::size_t> counts = {1, 2, 4};
  const std::size_t n = util::configured_thread_count();
  if (n > 4) counts.push_back(n);
  return counts;
}

struct SweepPoint {
  std::size_t threads;
  double seconds;
  double rate;  ///< trees/s or records/s
};

void print_sweep(const char* what, const char* rate_name,
                 const std::vector<SweepPoint>& points, bool identical) {
  std::printf("%s (output identical across thread counts: %s)\n", what,
              identical ? "yes" : "NO - DETERMINISM VIOLATION");
  for (const auto& p : points) {
    std::printf("  threads=%zu  %.3fs  %s=%.0f  speedup=%.2fx\n", p.threads, p.seconds,
                rate_name, p.rate, points.front().seconds / p.seconds);
  }
}

void write_sweep_json(std::ostream& os, const char* name, const char* rate_name,
                      const std::vector<SweepPoint>& points, bool identical) {
  os << "  \"" << name << "\": {\n    \"identical_output\": "
     << (identical ? "true" : "false") << ",\n    \"sweep\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    os << "      {\"threads\": " << p.threads << ", \"seconds\": " << p.seconds
       << ", \"" << rate_name << "\": " << p.rate
       << ", \"speedup\": " << points.front().seconds / p.seconds << "}"
       << (i + 1 < points.size() ? "," : "") << "\n";
  }
  os << "    ]\n  }";
}

int run_parallel_baseline(std::uint64_t seed, double scale, const std::string& json_path) {
  print_header("Parallel execution baseline: RF training + windowed pipeline",
               "perf baseline for the deterministic parallel layer",
               "serial output is the reference; every thread count must "
               "reproduce it byte-for-byte.");
  const auto thread_counts = sweep_thread_counts();

  // --- (a) Random Forest training on a curated backscatter dataset. -------
  WorldRun world = run_world(sim::jp_ditl_config(seed, scale));
  const auto labels = curate(world, 0, seed ^ 0xc0de);
  auto [data, used] = labels.join(world.features[0]);
  std::printf("RF dataset: %zu labeled examples, %zu features\n", data.size(),
              data.feature_count());

  ml::ForestConfig fc;
  fc.n_trees = 200;
  fc.seed = seed;

  util::set_thread_count(1);
  ml::RandomForest reference(fc);
  reference.fit(data);
  const auto reference_pred = reference.predict_all(data);
  const auto reference_imp = reference.gini_importance();

  std::vector<SweepPoint> rf_points;
  bool rf_identical = true;
  for (const std::size_t t : thread_counts) {
    util::set_thread_count(t);
    const double secs = time_best_of(3, [&] {
      ml::RandomForest rf(fc);
      rf.fit(data);
    });
    ml::RandomForest check(fc);
    check.fit(data);
    rf_identical = rf_identical && check.predict_all(data) == reference_pred &&
                   check.gini_importance() == reference_imp;
    rf_points.push_back({t, secs, static_cast<double>(fc.n_trees) / secs});
  }
  print_sweep("RF training", "trees/s", rf_points, rf_identical);

  // --- (b) End-to-end window processing. ----------------------------------
  // Pre-run the simulator once; the timed region is the sensor + ML side.
  const std::size_t weeks = 4;
  sim::Scenario scenario(sim::b_multi_year_config(seed + 1, weeks, scale));
  labeling::Darknet darknet(labeling::default_darknet_prefixes());
  scenario.engine().set_traffic_observer(&darknet);
  std::vector<std::vector<dns::QueryRecord>> window_records;
  std::size_t total_records = 0;
  for (std::size_t w = 0; w < weeks; ++w) {
    scenario.run_window(util::SimTime::weeks(static_cast<std::int64_t>(w)),
                        util::SimTime::weeks(static_cast<std::int64_t>(w + 1)));
    window_records.push_back(scenario.authority(0).records());
    scenario.authority(0).clear_records();
    total_records += window_records.back().size();
  }
  std::printf("\nwindow workload: %zu windows, %zu records\n", weeks, total_records);

  analysis::WindowedPipelineConfig pc;
  pc.sensor.min_queriers = 10;
  pc.forest.n_trees = 100;
  pc.seed = seed;

  // Curate labels once, from a serial sensor pass over window 0.
  util::set_thread_count(1);
  labeling::GroundTruth window_labels;
  {
    core::Sensor sensor(pc.sensor, scenario.plan().as_db(), scenario.plan().geo_db(),
                        scenario.naming());
    sensor.ingest_all(window_records[0]);
    util::Rng rng = util::Rng::stream(seed, 0xb1ac);
    const auto blacklist = labeling::BlacklistSet::build(scenario.population(), {}, rng);
    labeling::Curator curator(scenario, blacklist, darknet, {}, seed ^ 0xc0de);
    window_labels = curator.curate(sensor.extract_features());
  }
  std::printf("window labels: %zu\n", window_labels.size());

  const auto run_windows = [&](bool overlapped) {
    analysis::WindowedPipeline pipeline(pc, scenario.plan().as_db(),
                                        scenario.plan().geo_db(), scenario.naming());
    pipeline.set_labels(window_labels);
    for (std::size_t w = 0; w < weeks; ++w) {
      const auto t0 = util::SimTime::weeks(static_cast<std::int64_t>(w));
      const auto t1 = util::SimTime::weeks(static_cast<std::int64_t>(w + 1));
      if (overlapped) {
        pipeline.enqueue_window(window_records[w], t0, t1);
      } else {
        pipeline.process_window(window_records[w], t0, t1);
      }
    }
    pipeline.finish();
    return pipeline.results();
  };

  util::set_thread_count(1);
  const auto reference_results = run_windows(false);

  std::vector<SweepPoint> win_points;
  bool win_identical = true;
  for (const std::size_t t : thread_counts) {
    util::set_thread_count(t);
    const bool overlapped = t > 1;
    const double secs = time_best_of(2, [&] { run_windows(overlapped); });
    const auto check = run_windows(overlapped);
    bool same = check.size() == reference_results.size();
    for (std::size_t w = 0; same && w < check.size(); ++w) {
      same = check[w].classes == reference_results[w].classes &&
             check[w].footprints == reference_results[w].footprints;
    }
    win_identical = win_identical && same;
    win_points.push_back({t, secs, static_cast<double>(total_records) / secs});
  }
  print_sweep("window pipeline", "records/s", win_points, win_identical);
  util::set_thread_count(0);

  std::ofstream json(json_path);
  json << "{\n  \"bench\": \"parallel_baseline\",\n  \"seed\": " << seed
       << ",\n  \"scale\": " << scale
       << ",\n  \"hardware_threads\": " << std::thread::hardware_concurrency()
       << ",\n  \"rf_examples\": " << data.size()
       << ",\n  \"rf_trees\": " << fc.n_trees
       << ",\n  \"window_count\": " << weeks
       << ",\n  \"window_records\": " << total_records << ",\n";
  write_sweep_json(json, "rf_training", "trees_per_s", rf_points, rf_identical);
  json << ",\n";
  write_sweep_json(json, "window_pipeline", "records_per_s", win_points, win_identical);
  json << "\n}\n";
  std::printf("\nwrote %s\n", json_path.c_str());
  return rf_identical && win_identical ? 0 : 1;
}

int run(int argc, char** argv) {
  if (arg_flag(argc, argv, "--parallel")) {
    return run_parallel_baseline(
        arg_seed(argc, argv, 7), arg_scale(argc, argv, 0.25),
        arg_str(argc, argv, "--json", "BENCH_parallel.json"));
  }
  print_header("Table III: validating classification against labeled ground truth",
               "Fukuda & Heidemann, IMC'15 / TON'17, Table III",
               "mean (stddev) over repeated random 60%/40% splits; RF should "
               "lead, JP (unsampled, low in hierarchy) should score best.");
  const double scale = arg_scale(argc, argv, 0.25);
  const std::uint64_t seed = arg_seed(argc, argv, 7);
  const std::size_t reps = 20;

  // `--querier-state sketch` reruns the whole table with sketched querier
  // cardinalities (plus optional --sketch-threshold), quantifying what the
  // bounded-memory state costs in classification quality — the accuracy
  // half of the federation study in EXPERIMENTS.md.
  core::SensorConfig base_sensor;
  if (arg_str(argc, argv, "--querier-state", "exact") == "sketch") {
    base_sensor.querier_state = core::QuerierStateMode::kSketch;
  }
  base_sensor.sketch_promote_threshold = static_cast<std::uint32_t>(std::max(
      1, std::atoi(arg_str(argc, argv, "--sketch-threshold", "64").c_str())));
  std::printf("querier state: %s\n",
              base_sensor.querier_state == core::QuerierStateMode::kSketch ? "sketch"
                                                                           : "exact");

  std::vector<DatasetRun> runs;
  runs.push_back(build("JP-ditl", sim::jp_ditl_config(seed, scale), 0, base_sensor));
  runs.push_back(
      build("B-post-ditl", sim::b_post_ditl_config(seed + 1, scale), 0, base_sensor));
  runs.push_back(build("M-ditl", sim::m_ditl_config(seed + 2, scale), 0, base_sensor));
  {
    core::SensorConfig sensor = base_sensor;
    sensor.min_queriers = 10;  // compressed sampling floor, see DESIGN.md
    runs.push_back(build("M-sampled", sim::m_sampled_config(seed + 3, 3, scale * 0.5),
                         0, sensor));
  }

  util::TableWriter table("classification metrics (mean over splits, stddev)");
  table.columns({"dataset", "algorithm", "accuracy", "precision", "recall", "F1",
                 "examples"});
  for (const auto& run : runs) evaluate(table, run, reps);
  table.print(std::cout);

  std::printf("Expected shape (paper Tab. III): RF > SVM > CART on every "
              "dataset; accuracies ~0.5-0.8,\nroot views slightly worse than "
              "the national view.\n");
  return 0;
}

}  // namespace
}  // namespace dnsbs::bench

int main(int argc, char** argv) { return dnsbs::bench::run(argc, argv); }
