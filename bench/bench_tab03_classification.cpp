// Table III: classification accuracy/precision/recall/F1 for CART, RF,
// and kernel SVM across the four dataset analogues, using the paper's
// repeated 60/40 cross-validation protocol.
#include "common.hpp"

#include <iostream>

#include "ml/cart.hpp"
#include "ml/svm.hpp"

namespace dnsbs::bench {
namespace {

struct DatasetRun {
  std::string name;
  ml::Dataset data;
};

void evaluate(util::TableWriter& table, const DatasetRun& run, std::size_t reps) {
  struct Algo {
    const char* name;
    ml::ModelFactory factory;
  };
  // The paper runs each randomized algorithm 10 times and majority-votes
  // (§III-D); CART is deterministic and runs once.
  const Algo algos[] = {
      {"CART",
       [](std::uint64_t seed) {
         ml::CartConfig cfg;
         cfg.seed = seed;
         return std::unique_ptr<ml::Classifier>(std::make_unique<ml::CartTree>(cfg));
       }},
      {"RF",
       [](std::uint64_t seed) {
         return std::unique_ptr<ml::Classifier>(std::make_unique<ml::VotingClassifier>(
             [](std::uint64_t s) {
               ml::ForestConfig cfg;
               cfg.n_trees = 100;
               cfg.seed = s;
               return std::unique_ptr<ml::Classifier>(
                   std::make_unique<ml::RandomForest>(cfg));
             },
             10, seed));
       }},
      {"SVM",
       [](std::uint64_t seed) {
         return std::unique_ptr<ml::Classifier>(std::make_unique<ml::VotingClassifier>(
             [](std::uint64_t s) {
               ml::SvmConfig cfg;
               cfg.seed = s;
               return std::unique_ptr<ml::Classifier>(
                   std::make_unique<ml::KernelSvm>(cfg));
             },
             10, seed));
       }},
  };
  for (const Algo& algo : algos) {
    ml::CrossValConfig cv;
    cv.repetitions = reps;
    cv.train_fraction = 0.6;
    cv.seed = 20140415;
    const ml::MetricSummary s = ml::cross_validate(run.data, algo.factory, cv);
    const auto cell = [](double mean, double sd) {
      return util::fixed(mean, 2) + " (" + util::fixed(sd, 2) + ")";
    };
    table.row({run.name, algo.name, cell(s.mean.accuracy, s.stddev.accuracy),
               cell(s.mean.precision, s.stddev.precision),
               cell(s.mean.recall, s.stddev.recall), cell(s.mean.f1, s.stddev.f1),
               std::to_string(run.data.size())});
  }
}

DatasetRun build(const char* name, sim::ScenarioConfig config, std::size_t authority,
                 core::SensorConfig sensor_config = {}) {
  const std::uint64_t seed = config.seed;
  WorldRun world = run_world(std::move(config), sensor_config);
  const auto labels = curate(world, authority, seed ^ 0xc0de);
  auto [data, used] = labels.join(world.features[authority]);
  std::printf("%-10s labeled examples: %zu (of %zu detected)\n", name, data.size(),
              world.features[authority].size());
  return DatasetRun{name, std::move(data)};
}

int run(int argc, char** argv) {
  print_header("Table III: validating classification against labeled ground truth",
               "Fukuda & Heidemann, IMC'15 / TON'17, Table III",
               "mean (stddev) over repeated random 60%/40% splits; RF should "
               "lead, JP (unsampled, low in hierarchy) should score best.");
  const double scale = arg_scale(argc, argv, 0.25);
  const std::uint64_t seed = arg_seed(argc, argv, 7);
  const std::size_t reps = 20;

  std::vector<DatasetRun> runs;
  runs.push_back(build("JP-ditl", sim::jp_ditl_config(seed, scale), 0));
  runs.push_back(build("B-post-ditl", sim::b_post_ditl_config(seed + 1, scale), 0));
  runs.push_back(build("M-ditl", sim::m_ditl_config(seed + 2, scale), 0));
  {
    core::SensorConfig sensor;
    sensor.min_queriers = 10;  // compressed sampling floor, see DESIGN.md
    runs.push_back(build("M-sampled", sim::m_sampled_config(seed + 3, 3, scale * 0.5),
                         0, sensor));
  }

  util::TableWriter table("classification metrics (mean over splits, stddev)");
  table.columns({"dataset", "algorithm", "accuracy", "precision", "recall", "F1",
                 "examples"});
  for (const auto& run : runs) evaluate(table, run, reps);
  table.print(std::cout);

  std::printf("Expected shape (paper Tab. III): RF > SVM > CART on every "
              "dataset; accuracies ~0.5-0.8,\nroot views slightly worse than "
              "the national view.\n");
  return 0;
}

}  // namespace
}  // namespace dnsbs::bench

int main(int argc, char** argv) { return dnsbs::bench::run(argc, argv); }
