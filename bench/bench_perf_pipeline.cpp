// End-to-end throughput benchmark of the hot ingest path (PERF gate).
//
// Measures, on a seeded synthetic workload:
//   * parse_record lines/sec        (text log -> QueryRecord)
//   * ingest_all records/sec        (dedup + per-originator aggregation)
//   * extract_features vectors/sec  (static + dynamic features)
//   * dedup window-state size/bytes and peak RSS
//
// Modes:
//   bench_perf_pipeline --json BENCH_perf.json     write machine-readable results
//   bench_perf_pipeline --check BENCH_perf.json    fail (exit 1) if live throughput
//                                                  drops >10% below the committed
//                                                  numbers (tools/check.sh PERF=1)
//   bench_perf_pipeline --smoke                    tiny world, quick sanity run
//                                                  (ctest label "perf")
//   --baseline OLD.json                            with --json: also record the
//                                                  old numbers and the measured
//                                                  speedup on each axis
//
// Times are best-of --repeat (default 3) so scheduler noise shrinks the
// committed baseline instead of inflating it.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common.hpp"
#include "core/sensor.hpp"
#include "dns/query_log.hpp"
#include "sim/scenario.hpp"
#include "util/metrics.hpp"
#include "util/strings.hpp"

namespace dnsbs::bench {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Peak resident set in kB from /proc/self/status (0 where unsupported).
long peak_rss_kb() {
#ifdef __linux__
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    long kb = 0;
    if (std::sscanf(line.c_str(), "VmHWM: %ld kB", &kb) == 1) return kb;
  }
#endif
  return 0;
}

/// Extracts `"key": <number>` from a JSON text (flat schema, no escapes).
double json_number(const std::string& text, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t pos = text.find(needle);
  if (pos == std::string::npos) return 0.0;
  return std::atof(text.c_str() + pos + needle.size());
}

struct Results {
  std::size_t records = 0;
  std::size_t lines_bytes = 0;
  std::size_t interesting = 0;
  std::size_t dedup_state_entries = 0;
  std::uint64_t admitted = 0;
  double parse_lines_per_s = 0;
  double ingest_records_per_s = 0;
  double features_per_s = 0;
  double end_to_end_records_per_s = 0;
};

template <typename Fn>
double best_of(int repeat, std::size_t items, Fn&& fn) {
  double best = 0.0;
  for (int r = 0; r < repeat; ++r) {
    const auto t0 = Clock::now();
    fn();
    const double rate = static_cast<double>(items) / seconds_since(t0);
    best = std::max(best, rate);
  }
  return best;
}

int run(int argc, char** argv) {
  const bool smoke = arg_flag(argc, argv, "--smoke");
  const double scale = arg_scale(argc, argv, smoke ? 0.02 : 0.25);
  const std::uint64_t seed = arg_seed(argc, argv, 7);
  const int repeat =
      smoke ? 1 : std::max(1, std::atoi(arg_str(argc, argv, "--repeat", "3").c_str()));
  const std::size_t threads = static_cast<std::size_t>(
      std::atoi(arg_str(argc, argv, "--threads", "1").c_str()));
  const std::string json_path = arg_str(argc, argv, "--json", "");
  const std::string check_path = arg_str(argc, argv, "--check", "");
  const std::string baseline_path = arg_str(argc, argv, "--baseline", "");

  print_header("perf_pipeline",
               "§III sensor throughput (parse -> dedup -> aggregate -> features)",
               util::format("scale=%.3f seed=%llu threads=%zu repeat=%d", scale,
                            static_cast<unsigned long long>(seed), threads, repeat));

  sim::Scenario scenario(sim::jp_ditl_config(seed, scale));
  scenario.run();
  const auto& records = scenario.authority(0).records();

  Results res;
  res.records = records.size();

  // --- parse: serialize once, then measure text -> QueryRecord ----------
  std::string log_text;
  log_text.reserve(records.size() * 32);
  for (const auto& r : records) {
    log_text += dns::serialize(r);
    log_text += '\n';
  }
  res.lines_bytes = log_text.size();
  res.parse_lines_per_s = best_of(repeat, records.size(), [&] {
    std::istringstream is(log_text);
    dns::QueryLogReader reader(is);
    std::size_t n = 0;
    while (reader.next()) ++n;
    if (n != records.size()) std::abort();  // parse must be lossless here
  });

  // --- ingest: dedup + aggregation --------------------------------------
  core::SensorConfig cfg;
  cfg.threads = threads;
  const auto make_sensor = [&] {
    return core::Sensor(cfg, scenario.plan().as_db(), scenario.plan().geo_db(),
                        scenario.naming());
  };
  res.ingest_records_per_s = best_of(repeat, records.size(), [&] {
    auto sensor = make_sensor();
    sensor.ingest_all(records);
  });

  // --- features: resolver classification + dynamic features -------------
  auto sensor = make_sensor();
  sensor.ingest_all(records);
  res.dedup_state_entries = sensor.dedup().state_size();
  res.admitted = sensor.dedup().admitted();
  const auto features = sensor.extract_features();
  res.interesting = features.size();
  if (res.interesting != 0) {
    res.features_per_s = best_of(repeat, res.interesting, [&] {
      if (sensor.extract_features().size() != res.interesting) std::abort();
    });
  }

  // --- end to end: fresh sensor, ingest + extract -----------------------
  res.end_to_end_records_per_s = best_of(repeat, records.size(), [&] {
    auto s = make_sensor();
    s.ingest_all(records);
    if (s.extract_features().size() != res.interesting) std::abort();
  });

  const long rss_kb = peak_rss_kb();

  std::printf("records            %zu (%zu interesting originators)\n", res.records,
              res.interesting);
  std::printf("parse              %.0f lines/s\n", res.parse_lines_per_s);
  std::printf("ingest             %.0f records/s\n", res.ingest_records_per_s);
  std::printf("extract_features   %.0f vectors/s\n", res.features_per_s);
  std::printf("end-to-end         %.0f records/s\n", res.end_to_end_records_per_s);
  std::printf("dedup state        %zu entries (admitted %llu)\n", res.dedup_state_entries,
              static_cast<unsigned long long>(res.admitted));
  std::printf("peak RSS           %ld kB\n", rss_kb);

  if (!json_path.empty()) {
    std::ofstream os(json_path);
    os << "{\n"
       << "  \"bench\": \"perf_pipeline\",\n"
       << "  \"seed\": " << seed << ",\n"
       << "  \"scale\": " << scale << ",\n"
       << "  \"threads\": " << threads << ",\n"
       << "  \"records\": " << res.records << ",\n"
       << "  \"interesting\": " << res.interesting << ",\n"
       << "  \"parse_lines_per_s\": " << res.parse_lines_per_s << ",\n"
       << "  \"ingest_records_per_s\": " << res.ingest_records_per_s << ",\n"
       << "  \"features_per_s\": " << res.features_per_s << ",\n"
       << "  \"end_to_end_records_per_s\": " << res.end_to_end_records_per_s << ",\n"
       << "  \"dedup_state_entries\": " << res.dedup_state_entries << ",\n"
       << "  \"peak_rss_kb\": " << rss_kb << ",\n"
       // Full registry snapshot (counters, gauges, span histograms) so a
       // committed bench JSON doubles as an observability fixture.  Empty
       // metrics array under -DDNSBS_METRICS=OFF.
       << "  \"metrics\": " << util::metrics_snapshot().to_json();
    if (!baseline_path.empty()) {
      std::ifstream bis(baseline_path);
      std::stringstream bbuf;
      bbuf << bis.rdbuf();
      const std::string base = bbuf.str();
      const struct {
        const char* key;
        double live;
      } axes[] = {
          {"parse_lines_per_s", res.parse_lines_per_s},
          {"ingest_records_per_s", res.ingest_records_per_s},
          {"features_per_s", res.features_per_s},
          {"end_to_end_records_per_s", res.end_to_end_records_per_s},
      };
      for (const auto& axis : axes) {
        const double before = json_number(base, axis.key);
        os << ",\n  \"baseline_" << axis.key << "\": " << before;
        if (before > 0.0) {
          os << ",\n  \"speedup_" << axis.key << "\": " << axis.live / before;
          std::printf("speedup %-26s %.2fx (%.0f -> %.0f)\n", axis.key,
                      axis.live / before, before, axis.live);
        }
      }
    }
    os << "\n}\n";
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  if (!check_path.empty()) {
    std::ifstream is(check_path);
    if (!is) {
      std::fprintf(stderr, "check: cannot read %s\n", check_path.c_str());
      return 1;
    }
    std::stringstream buffer;
    buffer << is.rdbuf();
    const std::string committed = buffer.str();
    // >10% below the committed number on any throughput axis fails the gate.
    const struct {
      const char* key;
      double live;
    } axes[] = {
        {"parse_lines_per_s", res.parse_lines_per_s},
        {"ingest_records_per_s", res.ingest_records_per_s},
        {"features_per_s", res.features_per_s},
        {"end_to_end_records_per_s", res.end_to_end_records_per_s},
    };
    bool ok = true;
    for (const auto& axis : axes) {
      const double want = json_number(committed, axis.key);
      if (want <= 0.0) continue;
      const double ratio = axis.live / want;
      std::printf("check %-26s %12.0f vs committed %12.0f  (%.2fx)%s\n", axis.key,
                  axis.live, want, ratio, ratio < 0.9 ? "  REGRESSION" : "");
      if (ratio < 0.9) ok = false;
    }
    if (!ok) {
      std::fprintf(stderr, "\nperf check FAILED: >10%% regression vs %s\n",
                   check_path.c_str());
      return 1;
    }
    std::printf("\nperf check passed (within 10%% of %s)\n", check_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace dnsbs::bench

int main(int argc, char** argv) { return dnsbs::bench::run(argc, argv); }
