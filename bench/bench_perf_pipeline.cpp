// End-to-end throughput benchmark of the hot ingest path (PERF gate).
//
// Measures, on a seeded synthetic workload:
//   * parse_record lines/sec        (text log -> QueryRecord)
//   * ingest_all records/sec        (dedup + per-originator aggregation)
//   * extract_features vectors/sec  (static + dynamic features)
//   * dedup window-state size/bytes and peak RSS
//
// Modes:
//   bench_perf_pipeline --json BENCH_perf.json     write machine-readable results
//   bench_perf_pipeline --check BENCH_perf.json    fail (exit 1) if live throughput
//                                                  drops >10% below the committed
//                                                  numbers (tools/check.sh PERF=1)
//   bench_perf_pipeline --smoke                    tiny world, quick sanity run
//                                                  (ctest label "perf")
//   --baseline OLD.json                            with --json: also record the
//                                                  old numbers and the measured
//                                                  speedup on each axis
//   --features                                     feature-extraction scenario
//                                                  instead of the end-to-end one:
//                                                  high-footprint multi-window
//                                                  workload with configurable
//                                                  churn, measuring cold / churn /
//                                                  warm extraction rates against
//                                                  BENCH_perf_features.json
//                                                  (knobs: --originators
//                                                  --queriers --windows --churn)
//   --merge                                        federated N-sensor merge
//                                                  scenario: shard-ingest a
//                                                  1M+-originator synthetic
//                                                  stream, export each shard's
//                                                  state, import+merge into a
//                                                  coordinator — once with
//                                                  exact querier state, once
//                                                  with sketches — comparing
//                                                  merge throughput and peak
//                                                  RSS against
//                                                  BENCH_perf_merge.json
//                                                  (knobs: --light --heavy
//                                                  --heavy-queriers --shards)
//   --stream                                       streaming-sensor scenario:
//                                                  offer a multi-window record
//                                                  stream to the
//                                                  StreamingWindowDriver with
//                                                  --async-windows off and on,
//                                                  comparing sustained intake
//                                                  throughput, boundary-region
//                                                  intake throughput (where
//                                                  the sync driver stalls for
//                                                  the whole window close) and
//                                                  p99/max offer latency
//                                                  against
//                                                  BENCH_perf_stream.json
//                                                  (knobs: --originators
//                                                  --queriers --windows
//                                                  --boundary-span
//                                                  --job-threads)
//
// Times are best-of --repeat (default 3) so scheduler noise shrinks the
// committed baseline instead of inflating it.
#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#ifdef __linux__
#include <unistd.h>
#endif

#include "analysis/pipeline.hpp"
#include "analysis/streaming.hpp"
#include "common.hpp"
#include "core/federation.hpp"
#include "core/sensor.hpp"
#include "dns/query_log.hpp"
#include "sim/scenario.hpp"
#include "util/binio.hpp"
#include "util/jobs.hpp"
#include "util/metrics.hpp"
#include "util/strings.hpp"

namespace dnsbs::bench {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Peak resident set in kB from /proc/self/status (0 where unsupported).
long peak_rss_kb() {
#ifdef __linux__
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    long kb = 0;
    if (std::sscanf(line.c_str(), "VmHWM: %ld kB", &kb) == 1) return kb;
  }
#endif
  return 0;
}

/// Extracts `"key": <number>` from a JSON text (flat schema, no escapes).
double json_number(const std::string& text, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t pos = text.find(needle);
  if (pos == std::string::npos) return 0.0;
  return std::atof(text.c_str() + pos + needle.size());
}

struct Results {
  std::size_t records = 0;
  std::size_t lines_bytes = 0;
  std::size_t interesting = 0;
  std::size_t dedup_state_entries = 0;
  std::uint64_t admitted = 0;
  double parse_lines_per_s = 0;
  double ingest_records_per_s = 0;
  double features_per_s = 0;
  double end_to_end_records_per_s = 0;
};

template <typename Fn>
double best_of(int repeat, std::size_t items, Fn&& fn) {
  double best = 0.0;
  for (int r = 0; r < repeat; ++r) {
    const auto t0 = Clock::now();
    fn();
    const double rate = static_cast<double>(items) / seconds_since(t0);
    best = std::max(best, rate);
  }
  return best;
}

/// One throughput axis: a JSON key and the freshly measured rate.
struct Axis {
  const char* key;
  double live;
};

/// --baseline: appends "baseline_<key>"/"speedup_<key>" entries for each
/// axis to an open JSON object stream (caller closes the object).
void append_baseline(std::ofstream& os, const std::string& baseline_path,
                     std::span<const Axis> axes) {
  std::ifstream bis(baseline_path);
  std::stringstream bbuf;
  bbuf << bis.rdbuf();
  const std::string base = bbuf.str();
  for (const auto& axis : axes) {
    const double before = json_number(base, axis.key);
    os << ",\n  \"baseline_" << axis.key << "\": " << before;
    if (before > 0.0) {
      os << ",\n  \"speedup_" << axis.key << "\": " << axis.live / before;
      std::printf("speedup %-26s %.2fx (%.0f -> %.0f)\n", axis.key, axis.live / before,
                  before, axis.live);
    }
  }
}

/// --check: >10% below the committed number on any axis fails the gate.
/// Axes missing from the committed file (or <= 0) are skipped, so new
/// axes can be introduced before their baseline is refreshed.
int check_axes(const std::string& check_path, std::span<const Axis> axes) {
  std::ifstream is(check_path);
  if (!is) {
    std::fprintf(stderr, "check: cannot read %s\n", check_path.c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << is.rdbuf();
  const std::string committed = buffer.str();
  bool ok = true;
  for (const auto& axis : axes) {
    const double want = json_number(committed, axis.key);
    if (want <= 0.0) continue;
    const double ratio = axis.live / want;
    std::printf("check %-26s %12.0f vs committed %12.0f  (%.2fx)%s\n", axis.key,
                axis.live, want, ratio, ratio < 0.9 ? "  REGRESSION" : "");
    if (ratio < 0.9) ok = false;
  }
  if (!ok) {
    std::fprintf(stderr, "\nperf check FAILED: >10%% regression vs %s\n",
                 check_path.c_str());
    return 1;
  }
  std::printf("\nperf check passed (within 10%% of %s)\n", check_path.c_str());
  return 0;
}

/// Stable per-address resolver for the --features scenario: the querier
/// category cycles with the low octet, and the four QuerierInfo values are
/// prebuilt so resolve() itself is cheap — resolution cost is the
/// interner's (paid once per querier), not the extraction loop's.
class FeatureBenchResolver final : public core::QuerierResolver {
 public:
  FeatureBenchResolver() {
    infos_[0].status = core::ResolveStatus::kOk;
    infos_[0].name = *dns::DnsName::parse("mail.bench.example.com");
    infos_[1].status = core::ResolveStatus::kOk;
    infos_[1].name = *dns::DnsName::parse("ns1.bench.example.com");
    infos_[2].status = core::ResolveStatus::kNxDomain;
    infos_[3].status = core::ResolveStatus::kUnreachable;
  }
  core::QuerierInfo resolve(net::IPv4Addr querier) const override {
    return infos_[querier.octet(3) % 4];
  }

 private:
  std::array<core::QuerierInfo, 4> infos_{};
};

/// --features: the feature-extraction scenario behind the
/// BENCH_perf_features.json gate.  A high-footprint multi-window workload
/// built so the incremental engine's three regimes are each measured in
/// isolation (ingest time is excluded from every timed region):
///
///   * cold:  window 0 seeds every originator, every persistence bucket
///            and every AS/country the run will ever see; the first
///            extraction computes all rows from scratch.
///   * churn: each later window mutates a --churn fraction of originators
///            with new queriers drawn from the existing address space and
///            time range, so interval normalizers hold still and only the
///            dirty rows recompute.
///   * warm:  extraction with no ingest in between — the unchanged-sensor
///            fast path returning the cached rows.
int run_features(int argc, char** argv) {
  const bool smoke = arg_flag(argc, argv, "--smoke");
  const std::uint64_t seed = arg_seed(argc, argv, 7);
  const int repeat =
      smoke ? 1 : std::max(1, std::atoi(arg_str(argc, argv, "--repeat", "3").c_str()));
  const std::size_t threads = static_cast<std::size_t>(
      std::atoi(arg_str(argc, argv, "--threads", "1").c_str()));
  const std::size_t originators = static_cast<std::size_t>(std::atoi(
      arg_str(argc, argv, "--originators", smoke ? "60" : "600").c_str()));
  const std::size_t queriers = static_cast<std::size_t>(
      std::atoi(arg_str(argc, argv, "--queriers", smoke ? "48" : "400").c_str()));
  const std::size_t windows = static_cast<std::size_t>(
      std::atoi(arg_str(argc, argv, "--windows", smoke ? "3" : "6").c_str()));
  const double churn = std::atof(arg_str(argc, argv, "--churn", "0.05").c_str());
  const std::string json_path = arg_str(argc, argv, "--json", "");
  const std::string check_path = arg_str(argc, argv, "--check", "");
  const std::string baseline_path = arg_str(argc, argv, "--baseline", "");

  print_header("perf_features",
               "§III feature extraction (columnar SoA + incremental recompute)",
               util::format("originators=%zu queriers=%zu windows=%zu churn=%.3f "
                            "seed=%llu threads=%zu repeat=%d",
                            originators, queriers, windows, churn,
                            static_cast<unsigned long long>(seed), threads, repeat));

  // Sixteen /16s, one AS and one country each; querier addresses hash into
  // this space so window 0 already exposes every AS/CC the run uses.
  netdb::AsDb as_db;
  netdb::GeoDb geo_db;
  for (int i = 0; i < 16; ++i) {
    const auto prefix = *net::Prefix::parse(util::format("10.%d.0.0/16", i));
    as_db.add(prefix, 100 + i, util::format("bench-as-%d", i));
    geo_db.add(prefix, netdb::CountryCode(static_cast<char>('a' + i), 'q'));
  }
  const FeatureBenchResolver resolver;

  // All timestamps live in [0, horizon) and window 0 sweeps the whole
  // range, so later windows never mint a new persistence bucket (a new
  // bucket would shift the interval normalizer and force every row to
  // recompute — that regime is the cold axis, not the churn axis).
  const std::uint64_t horizon = static_cast<std::uint64_t>(windows) * 3600;
  const std::size_t space =
      std::min<std::size_t>(originators * queriers, std::size_t{16} << 16);
  const auto querier_addr = [&](std::size_t v) {
    return net::IPv4Addr((10u << 24) | static_cast<std::uint32_t>(v % space));
  };
  const auto originator_addr = [](std::size_t o) {
    return net::IPv4Addr((172u << 24) | static_cast<std::uint32_t>(o));
  };
  const auto by_time = [](const dns::QueryRecord& a, const dns::QueryRecord& b) {
    return a.time < b.time;
  };

  std::vector<std::vector<dns::QueryRecord>> window_records(windows);
  window_records[0].reserve(originators * queriers);
  for (std::size_t o = 0; o < originators; ++o) {
    for (std::size_t q = 0; q < queriers; ++q) {
      const std::uint64_t t = (q * horizon) / queriers + (o % 37);
      window_records[0].push_back({util::SimTime::seconds(static_cast<std::int64_t>(t)),
                                   querier_addr(o * queriers + q), originator_addr(o),
                                   dns::RCode::kNoError});
    }
  }
  std::stable_sort(window_records[0].begin(), window_records[0].end(), by_time);
  constexpr std::size_t kChurnQueriers = 8;
  for (std::size_t w = 1; w < windows; ++w) {
    auto& out = window_records[w];
    for (std::size_t o = 0; o < originators; ++o) {
      // Deterministic ~churn fraction per window, varied by the seed.
      const std::uint64_t pick = ((o * 2654435761ull) ^ (w * 40503ull) ^ seed) % 1000;
      if (static_cast<double>(pick) >= churn * 1000.0) continue;
      for (std::size_t j = 0; j < kChurnQueriers; ++j) {
        // A querier from another originator's base range: new to this
        // originator (marking it dirty) yet inside the seen AS/CC space.
        const std::size_t v =
            o * queriers + (w + j + 1) * queriers + (o * 7 + w * 131 + j * 17) % queriers;
        const std::uint64_t t = (o * 97 + j * 131 + w * 53) % horizon;
        out.push_back({util::SimTime::seconds(static_cast<std::int64_t>(t)),
                       querier_addr(v), originator_addr(o), dns::RCode::kNoError});
      }
    }
    std::stable_sort(out.begin(), out.end(), by_time);
  }

  core::SensorConfig cfg;
  cfg.threads = threads;
  cfg.top_n = 0;  // keep every analyzable originator: rows == originators

  double cold_best = 0.0, churn_best = 0.0, warm_best = 0.0;
  std::size_t rows = 0;
  constexpr int kWarmIters = 64;
  for (int r = 0; r < repeat; ++r) {
    core::Sensor sensor(cfg, as_db, geo_db, resolver);
    sensor.ingest_all(window_records[0]);
    auto t0 = Clock::now();
    rows = sensor.extract_features().size();
    cold_best = std::max(cold_best, static_cast<double>(rows) / seconds_since(t0));
    if (rows != originators) std::abort();  // every originator must be analyzable

    double churn_secs = 0.0;
    std::size_t churn_rows = 0;
    for (std::size_t w = 1; w < windows; ++w) {
      sensor.ingest_all(window_records[w]);
      t0 = Clock::now();
      const std::size_t n = sensor.extract_features().size();
      churn_secs += seconds_since(t0);
      churn_rows += n;
      if (n != rows) std::abort();
    }
    if (windows > 1) {
      churn_best =
          std::max(churn_best, static_cast<double>(churn_rows) / churn_secs);
    }

    t0 = Clock::now();
    for (int i = 0; i < kWarmIters; ++i) {
      if (sensor.extract_features().size() != rows) std::abort();
    }
    warm_best = std::max(warm_best, static_cast<double>(rows) * kWarmIters /
                                        seconds_since(t0));
  }

  const long rss_kb = peak_rss_kb();
  const auto snapshot = util::metrics_snapshot();
  const Axis axes[] = {
      {"features_cold_rows_per_s", cold_best},
      {"features_churn_rows_per_s", churn_best},
      {"features_warm_rows_per_s", warm_best},
  };

  std::printf("rows               %zu per extraction (%zu windows)\n", rows, windows);
  std::printf("cold               %.0f rows/s\n", cold_best);
  std::printf("churn              %.0f rows/s\n", churn_best);
  std::printf("warm               %.0f rows/s\n", warm_best);
  std::printf("reused/recomputed  %lld / %lld (queriers interned %lld)\n",
              static_cast<long long>(snapshot.scalar("dnsbs.features.rows_reused")),
              static_cast<long long>(snapshot.scalar("dnsbs.features.rows_recomputed")),
              static_cast<long long>(snapshot.scalar("dnsbs.cache.interner.queriers")));
  std::printf("peak RSS           %ld kB\n", rss_kb);

  if (!json_path.empty()) {
    std::ofstream os(json_path);
    os << "{\n"
       << "  \"bench\": \"perf_features\",\n"
       << "  \"seed\": " << seed << ",\n"
       << "  \"originators\": " << originators << ",\n"
       << "  \"queriers\": " << queriers << ",\n"
       << "  \"windows\": " << windows << ",\n"
       << "  \"churn\": " << churn << ",\n"
       << "  \"threads\": " << threads << ",\n"
       << "  \"rows\": " << rows << ",\n"
       << "  \"features_cold_rows_per_s\": " << cold_best << ",\n"
       << "  \"features_churn_rows_per_s\": " << churn_best << ",\n"
       << "  \"features_warm_rows_per_s\": " << warm_best << ",\n"
       << "  \"peak_rss_kb\": " << rss_kb << ",\n"
       << "  \"metrics\": " << snapshot.to_json();
    if (!baseline_path.empty()) append_baseline(os, baseline_path, axes);
    os << "\n}\n";
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  if (!check_path.empty()) return check_axes(check_path, axes);
  return 0;
}

std::size_t arg_size(int argc, char** argv, const char* name, const char* fallback) {
  return static_cast<std::size_t>(
      std::strtoull(arg_str(argc, argv, name, fallback).c_str(), nullptr, 10));
}

/// One --stream measurement: a full pass of the record stream through a
/// fresh driver+pipeline pair in one execution mode.
struct StreamModeRun {
  double intake_records_per_s = 0;    ///< whole-stream offer() throughput
  double boundary_records_per_s = 0;  ///< throughput across window boundaries
  double p99_offer_us = 0;
  double max_offer_us = 0;
  double wall_s = 0;  ///< including flush (total work is mode-invariant)
  /// Deterministic view of each window's metrics delta — the byte-identity
  /// oracle the two modes are cross-checked against.
  std::vector<std::string> window_metrics;
};

StreamModeRun run_stream_once(bool async, std::size_t job_threads,
                              const std::vector<dns::QueryRecord>& records,
                              std::int64_t window_secs, std::size_t windows,
                              std::size_t per_window, std::size_t span,
                              const netdb::AsDb& as_db, const netdb::GeoDb& geo_db,
                              const core::QuerierResolver& resolver) {
  analysis::WindowedPipelineConfig pcfg;
  pcfg.sensor.threads = 1;
  pcfg.sensor.top_n = 0;
  // No carry-forward: every close pays the full cold extraction — the
  // constant per-window cost a live sensor seeing fresh queriers pays,
  // and the stall the async mode exists to hide.
  pcfg.carry_forward = false;
  if (async) {
    pcfg.jobs = std::make_shared<util::JobSystem>(
        util::JobSystemConfig{.threads = job_threads, .metric_prefix = {}});
  }
  analysis::WindowedPipeline pipeline(pcfg, as_db, geo_db, resolver);
  analysis::StreamingConfig sc;
  sc.window = util::SimTime::seconds(window_secs);
  sc.async_windows = async;
  analysis::StreamingWindowDriver driver(sc, pipeline, as_db, geo_db, resolver);

  std::vector<double> offer_secs(records.size());
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto o0 = Clock::now();
    driver.offer(records[i]);
    offer_secs[i] = seconds_since(o0);
  }
  const double intake_secs = seconds_since(t0);
  driver.flush();

  StreamModeRun run;
  run.wall_s = seconds_since(t0);
  if (driver.windows_closed() != windows) std::abort();
  run.intake_records_per_s = static_cast<double>(records.size()) / intake_secs;

  // Boundary region: the first `span` offers at/after each interior window
  // boundary.  The very first of them is the offer that seals the previous
  // window — in sync mode it carries the entire close.
  double boundary_secs = 0.0;
  std::size_t boundary_count = 0;
  for (std::size_t b = 1; b < windows; ++b) {
    for (std::size_t i = b * per_window; i < b * per_window + span; ++i) {
      boundary_secs += offer_secs[i];
    }
    boundary_count += span;
  }
  run.boundary_records_per_s = static_cast<double>(boundary_count) / boundary_secs;

  std::vector<double> sorted = offer_secs;
  const std::size_t p99 = sorted.size() * 99 / 100;
  std::nth_element(sorted.begin(), sorted.begin() + static_cast<std::ptrdiff_t>(p99),
                   sorted.end());
  run.p99_offer_us = sorted[p99] * 1e6;
  run.max_offer_us =
      *std::max_element(sorted.begin() + static_cast<std::ptrdiff_t>(p99),
                        sorted.end()) *
      1e6;

  for (auto& result : pipeline.results()) {
    run.window_metrics.push_back(result.metrics_delta.deterministic_view().to_json());
  }
  return run;
}

/// --stream: the async-window-pipeline scenario behind the
/// BENCH_perf_stream.json gate (tools/check.sh PERF=1).  A multi-window
/// synthetic stream — every window a fresh cold extraction — is offered
/// record-at-a-time to the StreamingWindowDriver twice, --async-windows
/// off then on, and the two modes' per-window deterministic metric deltas
/// are required to match byte-for-byte (the same oracle the serve tests
/// use).  Gated axes: sync + async sustained intake, async boundary
/// intake, and the async/sync boundary speedup; the non-smoke run also
/// enforces the >= 2x boundary-speedup acceptance floor directly.
int run_stream(int argc, char** argv) {
  const bool smoke = arg_flag(argc, argv, "--smoke");
  const int repeat =
      smoke ? 1 : std::max(1, std::atoi(arg_str(argc, argv, "--repeat", "3").c_str()));
  const std::size_t originators =
      arg_size(argc, argv, "--originators", smoke ? "80" : "600");
  const std::size_t queriers = arg_size(argc, argv, "--queriers", smoke ? "40" : "300");
  const std::size_t windows =
      std::max<std::size_t>(2, arg_size(argc, argv, "--windows", smoke ? "3" : "4"));
  const std::size_t job_threads = arg_size(argc, argv, "--job-threads", "2");
  const std::string json_path = arg_str(argc, argv, "--json", "");
  const std::string check_path = arg_str(argc, argv, "--check", "");
  const std::string baseline_path = arg_str(argc, argv, "--baseline", "");
  constexpr std::int64_t kWindowSecs = 3600;
  const std::size_t per_window = originators * queriers;
  const std::size_t span = std::min(
      per_window, arg_size(argc, argv, "--boundary-span", smoke ? "200" : "2000"));

  print_header("perf_stream",
               "async window pipeline (job-system close vs inline close)",
               util::format("originators=%zu queriers=%zu windows=%zu span=%zu "
                            "job_threads=%zu repeat=%d",
                            originators, queriers, windows, span, job_threads, repeat));

  // Same address plan as --features: sixteen /16s so AS/geo lookups hit.
  netdb::AsDb as_db;
  netdb::GeoDb geo_db;
  for (int i = 0; i < 16; ++i) {
    const auto prefix = *net::Prefix::parse(util::format("10.%d.0.0/16", i));
    as_db.add(prefix, 100 + i, util::format("bench-as-%d", i));
    geo_db.add(prefix, netdb::CountryCode(static_cast<char>('a' + i), 'q'));
  }
  const FeatureBenchResolver resolver;

  // Each window re-ingests the full originator x querier matrix, evenly
  // spread across the window so record times are globally monotone; the
  // first record of window w lands exactly on the boundary and seals
  // window w-1.
  const std::size_t space =
      std::min<std::size_t>(per_window, std::size_t{16} << 16);
  std::vector<dns::QueryRecord> records;
  records.reserve(windows * per_window);
  for (std::size_t w = 0; w < windows; ++w) {
    for (std::size_t s = 0; s < per_window; ++s) {
      const std::int64_t t =
          static_cast<std::int64_t>(w) * kWindowSecs +
          static_cast<std::int64_t>((s * static_cast<std::size_t>(kWindowSecs)) /
                                    per_window);
      records.push_back(
          {util::SimTime::seconds(t),
           net::IPv4Addr((10u << 24) | static_cast<std::uint32_t>(s % space)),
           net::IPv4Addr((172u << 24) | static_cast<std::uint32_t>(s / queriers)),
           dns::RCode::kNoError});
    }
  }

  StreamModeRun best[2];  // [0] = sync, [1] = async
  best[0].p99_offer_us = best[1].p99_offer_us = 1e18;
  best[0].max_offer_us = best[1].max_offer_us = 1e18;
  best[0].wall_s = best[1].wall_s = 1e18;
  for (int r = 0; r < repeat; ++r) {
    for (int m = 0; m < 2; ++m) {
      StreamModeRun run =
          run_stream_once(m == 1, job_threads, records, kWindowSecs, windows,
                          per_window, span, as_db, geo_db, resolver);
      best[m].intake_records_per_s =
          std::max(best[m].intake_records_per_s, run.intake_records_per_s);
      best[m].boundary_records_per_s =
          std::max(best[m].boundary_records_per_s, run.boundary_records_per_s);
      best[m].p99_offer_us = std::min(best[m].p99_offer_us, run.p99_offer_us);
      best[m].max_offer_us = std::min(best[m].max_offer_us, run.max_offer_us);
      best[m].wall_s = std::min(best[m].wall_s, run.wall_s);
      best[m].window_metrics = std::move(run.window_metrics);
    }
    // Byte-identity oracle: both modes must attribute the same
    // deterministic metric deltas to every window, every repeat.
    if (best[0].window_metrics != best[1].window_metrics) {
      std::fprintf(stderr, "stream: async window metrics diverged from sync\n");
      return 1;
    }
  }

  const double boundary_speedup =
      best[1].boundary_records_per_s / best[0].boundary_records_per_s;
  std::printf("records            %zu (%zu windows of %zu)\n", records.size(), windows,
              per_window);
  std::printf("intake             sync %.0f rec/s, async %.0f rec/s\n",
              best[0].intake_records_per_s, best[1].intake_records_per_s);
  std::printf("boundary intake    sync %.0f rec/s, async %.0f rec/s (%.1fx)\n",
              best[0].boundary_records_per_s, best[1].boundary_records_per_s,
              boundary_speedup);
  std::printf("offer p99          sync %.1f us, async %.1f us\n", best[0].p99_offer_us,
              best[1].p99_offer_us);
  std::printf("offer max          sync %.0f us, async %.0f us\n", best[0].max_offer_us,
              best[1].max_offer_us);
  std::printf("wall (incl flush)  sync %.2f s, async %.2f s\n", best[0].wall_s,
              best[1].wall_s);
  std::printf("window metrics     %zu windows byte-identical across modes\n",
              best[0].window_metrics.size());

  if (!smoke && boundary_speedup < 2.0) {
    std::fprintf(stderr,
                 "stream: boundary speedup %.2fx below the 2x acceptance floor\n",
                 boundary_speedup);
    return 1;
  }

  // The speedup ratio is deliberately not a gated axis: it divides two
  // measurements and inherits both runs' noise.  It is recorded in the
  // JSON and enforced by the absolute 2x floor above; the gated axes are
  // the direct throughputs.
  const Axis axes[] = {
      {"stream_sync_intake_records_per_s", best[0].intake_records_per_s},
      {"stream_async_intake_records_per_s", best[1].intake_records_per_s},
      {"stream_async_boundary_records_per_s", best[1].boundary_records_per_s},
  };

  if (!json_path.empty()) {
    std::ofstream os(json_path);
    os << "{\n"
       << "  \"bench\": \"perf_stream\",\n"
       << "  \"originators\": " << originators << ",\n"
       << "  \"queriers\": " << queriers << ",\n"
       << "  \"windows\": " << windows << ",\n"
       << "  \"boundary_span\": " << span << ",\n"
       << "  \"job_threads\": " << job_threads << ",\n"
       << "  \"records\": " << records.size() << ",\n"
       << "  \"stream_sync_intake_records_per_s\": " << best[0].intake_records_per_s
       << ",\n"
       << "  \"stream_async_intake_records_per_s\": " << best[1].intake_records_per_s
       << ",\n"
       << "  \"stream_sync_boundary_records_per_s\": "
       << best[0].boundary_records_per_s << ",\n"
       << "  \"stream_async_boundary_records_per_s\": "
       << best[1].boundary_records_per_s << ",\n"
       << "  \"stream_async_boundary_speedup\": " << boundary_speedup << ",\n"
       << "  \"stream_sync_p99_offer_us\": " << best[0].p99_offer_us << ",\n"
       << "  \"stream_async_p99_offer_us\": " << best[1].p99_offer_us << ",\n"
       << "  \"stream_sync_max_offer_us\": " << best[0].max_offer_us << ",\n"
       << "  \"stream_async_max_offer_us\": " << best[1].max_offer_us << ",\n"
       << "  \"stream_sync_wall_s\": " << best[0].wall_s << ",\n"
       << "  \"stream_async_wall_s\": " << best[1].wall_s;
    if (!baseline_path.empty()) append_baseline(os, baseline_path, axes);
    os << "\n}\n";
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  if (!check_path.empty()) return check_axes(check_path, axes);
  return 0;
}

/// The --merge children never extract features, so the resolver is never
/// consulted; it exists only to satisfy the Sensor constructor.
class NullResolver final : public core::QuerierResolver {
 public:
  core::QuerierInfo resolve(net::IPv4Addr) const override { return {}; }
};

unsigned long bench_pid() {
#ifdef __linux__
  return static_cast<unsigned long>(::getpid());
#else
  return 0;
#endif
}

/// One --merge measurement: peak RSS (VmHWM) is process-monotonic, so the
/// parent re-execs itself once per querier-state mode and each child runs
/// the whole shard-ingest -> export -> destroy -> import+merge cycle in a
/// fresh address space.
///
/// The workload is a bimodal originator population, streamed in time order
/// (no materialized record buffer, so RSS measures sensor state):
///   * --light originators with one querier each — the long tail that
///     stays on exact histograms in both modes and bounds the fixed cost.
///   * --heavy originators with --heavy-queriers distinct queriers each —
///     the scanners whose exact histograms dominate memory and whose
///     sketch form collapses to registers + a frozen sample.
/// Timestamps advance linearly across 24 h so the dedup window prunes
/// itself; every (querier, originator) pair is unique, so merged state is
/// exactly checkable: originator_count == light + heavy and (exact mode)
/// sum(unique_queriers) == light + heavy * heavy_queriers.
int run_merge_child(const std::string& mode, int argc, char** argv) {
  const std::size_t light = arg_size(argc, argv, "--light", "1000000");
  const std::size_t heavy = arg_size(argc, argv, "--heavy", "10000");
  const std::size_t heavy_queriers = arg_size(argc, argv, "--heavy-queriers", "12320");
  const std::size_t shards = std::max<std::size_t>(1, arg_size(argc, argv, "--shards", "4"));
  const int repeat =
      std::max(1, std::atoi(arg_str(argc, argv, "--repeat", "1").c_str()));
  const std::string out_path = arg_str(argc, argv, "--out", "");
  const std::string tmp_dir = arg_str(
      argc, argv, "--tmp", std::filesystem::temp_directory_path().string());

  core::SensorConfig cfg;
  cfg.threads = 1;
  cfg.querier_state =
      mode == "sketch" ? core::QuerierStateMode::kSketch : core::QuerierStateMode::kExact;

  const netdb::AsDb as_db;
  const netdb::GeoDb geo_db;
  const NullResolver resolver;
  std::vector<std::unique_ptr<core::Sensor>> sensors;
  sensors.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    sensors.push_back(std::make_unique<core::Sensor>(cfg, as_db, geo_db, resolver));
  }

  // --- shard ingest (setup, untimed by the gate but reported) ------------
  const std::size_t heavy_records = heavy * heavy_queriers;
  const std::size_t total = light + heavy_records;
  constexpr std::int64_t kHorizonSecs = 86400;
  const auto t_ingest = Clock::now();
  std::size_t li = 0, hj = 0;
  for (std::size_t i = 0; i < total; ++i) {
    dns::QueryRecord r;
    r.time = util::SimTime::seconds(
        static_cast<std::int64_t>(i) * kHorizonSecs / static_cast<std::int64_t>(total));
    // Bresenham interleave: exactly `light` light records, evenly spread
    // through the heavy stream so both populations span the full horizon.
    if (hj >= heavy_records ||
        (li < light && (i + 1) * light / total > i * light / total)) {
      r.originator = net::IPv4Addr(0xC0000000u + static_cast<std::uint32_t>(li));
      r.querier = net::IPv4Addr(0x0A000000u + static_cast<std::uint32_t>(li));
      ++li;
    } else {
      r.originator =
          net::IPv4Addr(0xD0000000u + static_cast<std::uint32_t>(hj / heavy_queriers));
      r.querier = net::IPv4Addr(0x30000000u + static_cast<std::uint32_t>(hj));
      ++hj;
    }
    sensors[core::federation_shard(r.originator, shards)]->ingest(r);
  }
  const double ingest_secs = seconds_since(t_ingest);

  // --- export every shard, then free it before the merge ----------------
  std::vector<std::string> paths;
  std::uintmax_t state_bytes = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    std::string path = tmp_dir + "/dnsbs_merge_" + mode + "_" +
                       std::to_string(bench_pid()) + "_" + std::to_string(s) + ".state";
    {
      std::ofstream os(path, std::ios::binary);
      util::BinaryWriter writer(os);
      core::export_sensor_state(*sensors[s], writer);
      os.flush();
      if (!writer.ok() || !os) {
        std::fprintf(stderr, "merge-child: cannot write %s\n", path.c_str());
        return 1;
      }
    }
    state_bytes += std::filesystem::file_size(path);
    paths.push_back(std::move(path));
    sensors[s].reset();
  }

  // --- timed region: import + merge all shard states --------------------
  double best_rate = 0.0, merge_secs = 0.0;
  std::size_t merged = 0, promoted = 0, sketch_bytes = 0;
  double footprint_sum = 0.0;
  for (int r = 0; r < repeat; ++r) {
    core::Sensor coordinator(cfg, as_db, geo_db, resolver);
    const auto t0 = Clock::now();
    for (const auto& path : paths) {
      std::ifstream is(path, std::ios::binary);
      util::BinaryReader reader(is);
      if (!core::import_sensor_state(reader, coordinator)) {
        std::fprintf(stderr, "merge-child: import failed for %s\n", path.c_str());
        return 1;
      }
    }
    merge_secs = seconds_since(t0);
    merged = coordinator.aggregator().originator_count();
    if (merged != light + heavy) {
      std::fprintf(stderr, "merge-child: merged %zu originators, want %zu\n", merged,
                   light + heavy);
      return 1;
    }
    best_rate = std::max(best_rate, static_cast<double>(merged) / merge_secs);
    footprint_sum = 0.0;
    for (const auto& [originator, agg] : coordinator.aggregator().aggregates()) {
      footprint_sum += static_cast<double>(agg.unique_queriers());
    }
    promoted = coordinator.aggregator().promoted_count();
    sketch_bytes = coordinator.aggregator().sketch_bytes();
  }
  for (const auto& path : paths) std::filesystem::remove(path);

  const long rss_kb = peak_rss_kb();
  std::printf("[%s] ingest             %.0f records/s (%zu records, %zu shards)\n",
              mode.c_str(), static_cast<double>(total) / ingest_secs, total, shards);
  std::printf("[%s] state files        %.1f MB\n", mode.c_str(),
              static_cast<double>(state_bytes) / (1024.0 * 1024.0));
  std::printf("[%s] merge              %.0f originators/s (%zu in %.2fs, %zu promoted)\n",
              mode.c_str(), best_rate, merged, merge_secs, promoted);
  std::printf("[%s] peak RSS           %ld kB\n", mode.c_str(), rss_kb);

  if (!out_path.empty()) {
    std::ofstream os(out_path);
    os << "{\n"
       << "  \"mode\": \"" << mode << "\",\n"
       << "  \"records\": " << total << ",\n"
       << "  \"ingest_records_per_s\": " << static_cast<double>(total) / ingest_secs
       << ",\n"
       << "  \"merge_originators_per_s\": " << best_rate << ",\n"
       << "  \"merged_originators\": " << merged << ",\n"
       << "  \"promoted\": " << promoted << ",\n"
       << "  \"sketch_bytes\": " << sketch_bytes << ",\n"
       << "  \"footprint_sum\": " << footprint_sum << ",\n"
       << "  \"state_file_bytes\": " << state_bytes << ",\n"
       << "  \"peak_rss_kb\": " << rss_kb << "\n"
       << "}\n";
    if (!os) {
      std::fprintf(stderr, "merge-child: cannot write %s\n", out_path.c_str());
      return 1;
    }
  }
  return 0;
}

/// --merge parent: runs the exact and sketch children, cross-checks their
/// merged cardinalities, and gates on merge throughput plus the RSS ratio
/// (the tentpole claim: sketch state >= 4x smaller at 1M+ originators).
int run_merge(int argc, char** argv, const char* self) {
  const bool smoke = arg_flag(argc, argv, "--smoke");
  const std::size_t light =
      arg_size(argc, argv, "--light", smoke ? "30000" : "1000000");
  const std::size_t heavy = arg_size(argc, argv, "--heavy", smoke ? "24" : "10000");
  const std::size_t heavy_queriers =
      arg_size(argc, argv, "--heavy-queriers", smoke ? "512" : "12320");
  const std::size_t shards = arg_size(argc, argv, "--shards", smoke ? "2" : "4");
  const int repeat =
      std::max(1, std::atoi(arg_str(argc, argv, "--repeat", "1").c_str()));
  const std::string json_path = arg_str(argc, argv, "--json", "");
  const std::string check_path = arg_str(argc, argv, "--check", "");
  const std::string baseline_path = arg_str(argc, argv, "--baseline", "");
  const std::string tmp_dir = arg_str(
      argc, argv, "--tmp", std::filesystem::temp_directory_path().string());

  print_header("perf_merge",
               "federated N-sensor merge (exact vs sketch querier state)",
               util::format("light=%zu heavy=%zu heavy_queriers=%zu shards=%zu "
                            "repeat=%d",
                            light, heavy, heavy_queriers, shards, repeat));

  struct ModeResult {
    double rate = 0, rss_kb = 0, footprint_sum = 0, promoted = 0, ingest_rate = 0;
    double state_bytes = 0;
  };
  ModeResult results[2];
  const char* modes[2] = {"exact", "sketch"};
  for (int m = 0; m < 2; ++m) {
    const std::string out = tmp_dir + "/dnsbs_merge_" + modes[m] + "_" +
                            std::to_string(bench_pid()) + ".json";
    const std::string cmd = util::format(
        "\"%s\" --merge-child %s --light %zu --heavy %zu --heavy-queriers %zu "
        "--shards %zu --repeat %d --tmp \"%s\" --out \"%s\"",
        self, modes[m], light, heavy, heavy_queriers, shards, repeat,
        tmp_dir.c_str(), out.c_str());
    std::fflush(stdout);  // children share the terminal; keep output ordered
    if (std::system(cmd.c_str()) != 0) {
      std::fprintf(stderr, "merge: %s child failed\n", modes[m]);
      return 1;
    }
    std::ifstream is(out);
    std::stringstream buffer;
    buffer << is.rdbuf();
    const std::string child = buffer.str();
    std::filesystem::remove(out);
    results[m].rate = json_number(child, "merge_originators_per_s");
    results[m].rss_kb = json_number(child, "peak_rss_kb");
    results[m].footprint_sum = json_number(child, "footprint_sum");
    results[m].promoted = json_number(child, "promoted");
    results[m].ingest_rate = json_number(child, "ingest_records_per_s");
    results[m].state_bytes = json_number(child, "state_file_bytes");
    if (results[m].rate <= 0.0 || results[m].rss_kb <= 0.0) {
      std::fprintf(stderr, "merge: %s child produced no results\n", modes[m]);
      return 1;
    }
  }

  // Cross-checks: exact mode never promotes, sketch mode promotes every
  // heavy originator, and the sketched footprint sum stays within the HLL
  // error envelope of the exact truth.
  bool ok = true;
  if (results[0].promoted != 0.0) {
    std::fprintf(stderr, "merge: exact child promoted %g originators\n",
                 results[0].promoted);
    ok = false;
  }
  if (results[1].promoted != static_cast<double>(heavy)) {
    std::fprintf(stderr, "merge: sketch child promoted %g of %zu heavy originators\n",
                 results[1].promoted, heavy);
    ok = false;
  }
  const double footprint_err =
      std::abs(results[1].footprint_sum - results[0].footprint_sum) /
      results[0].footprint_sum;
  if (footprint_err > 0.025) {
    std::fprintf(stderr, "merge: sketch footprint sum off by %.2f%% (> 2.5%%)\n",
                 footprint_err * 100.0);
    ok = false;
  }
  const double rss_ratio = results[0].rss_kb / results[1].rss_kb;
  std::printf("\nfootprint sum      exact %.0f, sketch %.0f (%.3f%% error)\n",
              results[0].footprint_sum, results[1].footprint_sum,
              footprint_err * 100.0);
  std::printf("peak RSS           exact %.0f kB, sketch %.0f kB (%.2fx)\n",
              results[0].rss_kb, results[1].rss_kb, rss_ratio);
  if (!smoke && rss_ratio < 4.0) {
    std::fprintf(stderr, "merge: RSS ratio %.2fx below the 4x acceptance floor\n",
                 rss_ratio);
    ok = false;
  }
  if (!ok) return 1;

  const Axis axes[] = {
      {"merge_exact_originators_per_s", results[0].rate},
      {"merge_sketch_originators_per_s", results[1].rate},
      {"merge_rss_ratio", rss_ratio},
  };

  if (!json_path.empty()) {
    std::ofstream os(json_path);
    os << "{\n"
       << "  \"bench\": \"perf_merge\",\n"
       << "  \"light\": " << light << ",\n"
       << "  \"heavy\": " << heavy << ",\n"
       << "  \"heavy_queriers\": " << heavy_queriers << ",\n"
       << "  \"shards\": " << shards << ",\n"
       << "  \"merge_exact_originators_per_s\": " << results[0].rate << ",\n"
       << "  \"merge_sketch_originators_per_s\": " << results[1].rate << ",\n"
       << "  \"merge_rss_ratio\": " << rss_ratio << ",\n"
       << "  \"exact_peak_rss_kb\": " << results[0].rss_kb << ",\n"
       << "  \"sketch_peak_rss_kb\": " << results[1].rss_kb << ",\n"
       << "  \"exact_state_file_bytes\": " << results[0].state_bytes << ",\n"
       << "  \"sketch_state_file_bytes\": " << results[1].state_bytes << ",\n"
       << "  \"exact_ingest_records_per_s\": " << results[0].ingest_rate << ",\n"
       << "  \"sketch_ingest_records_per_s\": " << results[1].ingest_rate << ",\n"
       << "  \"footprint_error\": " << footprint_err;
    if (!baseline_path.empty()) append_baseline(os, baseline_path, axes);
    os << "\n}\n";
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  if (!check_path.empty()) return check_axes(check_path, axes);
  return 0;
}

int run(int argc, char** argv) {
  const std::string merge_child = arg_str(argc, argv, "--merge-child", "");
  if (!merge_child.empty()) return run_merge_child(merge_child, argc, argv);
  if (arg_flag(argc, argv, "--merge")) return run_merge(argc, argv, argv[0]);
  if (arg_flag(argc, argv, "--features")) return run_features(argc, argv);
  if (arg_flag(argc, argv, "--stream")) return run_stream(argc, argv);
  const bool smoke = arg_flag(argc, argv, "--smoke");
  const double scale = arg_scale(argc, argv, smoke ? 0.02 : 0.25);
  const std::uint64_t seed = arg_seed(argc, argv, 7);
  const int repeat =
      smoke ? 1 : std::max(1, std::atoi(arg_str(argc, argv, "--repeat", "3").c_str()));
  const std::size_t threads = static_cast<std::size_t>(
      std::atoi(arg_str(argc, argv, "--threads", "1").c_str()));
  const std::string json_path = arg_str(argc, argv, "--json", "");
  const std::string check_path = arg_str(argc, argv, "--check", "");
  const std::string baseline_path = arg_str(argc, argv, "--baseline", "");

  print_header("perf_pipeline",
               "§III sensor throughput (parse -> dedup -> aggregate -> features)",
               util::format("scale=%.3f seed=%llu threads=%zu repeat=%d", scale,
                            static_cast<unsigned long long>(seed), threads, repeat));

  sim::Scenario scenario(sim::jp_ditl_config(seed, scale));
  scenario.run();
  const auto& records = scenario.authority(0).records();

  Results res;
  res.records = records.size();

  // --- parse: serialize once, then measure text -> QueryRecord ----------
  std::string log_text;
  log_text.reserve(records.size() * 32);
  for (const auto& r : records) {
    log_text += dns::serialize(r);
    log_text += '\n';
  }
  res.lines_bytes = log_text.size();
  res.parse_lines_per_s = best_of(repeat, records.size(), [&] {
    std::istringstream is(log_text);
    dns::QueryLogReader reader(is);
    std::size_t n = 0;
    while (reader.next()) ++n;
    if (n != records.size()) std::abort();  // parse must be lossless here
  });

  // --- ingest: dedup + aggregation --------------------------------------
  core::SensorConfig cfg;
  cfg.threads = threads;
  const auto make_sensor = [&] {
    return core::Sensor(cfg, scenario.plan().as_db(), scenario.plan().geo_db(),
                        scenario.naming());
  };
  res.ingest_records_per_s = best_of(repeat, records.size(), [&] {
    auto sensor = make_sensor();
    sensor.ingest_all(records);
  });

  // --- features: resolver classification + dynamic features -------------
  auto sensor = make_sensor();
  sensor.ingest_all(records);
  res.dedup_state_entries = sensor.dedup().state_size();
  res.admitted = sensor.dedup().admitted();
  const auto features = sensor.extract_features();
  res.interesting = features.size();
  if (res.interesting != 0) {
    res.features_per_s = best_of(repeat, res.interesting, [&] {
      if (sensor.extract_features().size() != res.interesting) std::abort();
    });
  }

  // --- end to end: fresh sensor, ingest + extract -----------------------
  res.end_to_end_records_per_s = best_of(repeat, records.size(), [&] {
    auto s = make_sensor();
    s.ingest_all(records);
    if (s.extract_features().size() != res.interesting) std::abort();
  });

  const long rss_kb = peak_rss_kb();
  const Axis axes[] = {
      {"parse_lines_per_s", res.parse_lines_per_s},
      {"ingest_records_per_s", res.ingest_records_per_s},
      {"features_per_s", res.features_per_s},
      {"end_to_end_records_per_s", res.end_to_end_records_per_s},
  };

  std::printf("records            %zu (%zu interesting originators)\n", res.records,
              res.interesting);
  std::printf("parse              %.0f lines/s\n", res.parse_lines_per_s);
  std::printf("ingest             %.0f records/s\n", res.ingest_records_per_s);
  std::printf("extract_features   %.0f vectors/s\n", res.features_per_s);
  std::printf("end-to-end         %.0f records/s\n", res.end_to_end_records_per_s);
  std::printf("dedup state        %zu entries (admitted %llu)\n", res.dedup_state_entries,
              static_cast<unsigned long long>(res.admitted));
  std::printf("peak RSS           %ld kB\n", rss_kb);

  if (!json_path.empty()) {
    std::ofstream os(json_path);
    os << "{\n"
       << "  \"bench\": \"perf_pipeline\",\n"
       << "  \"seed\": " << seed << ",\n"
       << "  \"scale\": " << scale << ",\n"
       << "  \"threads\": " << threads << ",\n"
       << "  \"records\": " << res.records << ",\n"
       << "  \"interesting\": " << res.interesting << ",\n"
       << "  \"parse_lines_per_s\": " << res.parse_lines_per_s << ",\n"
       << "  \"ingest_records_per_s\": " << res.ingest_records_per_s << ",\n"
       << "  \"features_per_s\": " << res.features_per_s << ",\n"
       << "  \"end_to_end_records_per_s\": " << res.end_to_end_records_per_s << ",\n"
       << "  \"dedup_state_entries\": " << res.dedup_state_entries << ",\n"
       << "  \"peak_rss_kb\": " << rss_kb << ",\n"
       // Full registry snapshot (counters, gauges, span histograms) so a
       // committed bench JSON doubles as an observability fixture.  Empty
       // metrics array under -DDNSBS_METRICS=OFF.
       << "  \"metrics\": " << util::metrics_snapshot().to_json();
    if (!baseline_path.empty()) append_baseline(os, baseline_path, axes);
    os << "\n}\n";
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  if (!check_path.empty()) return check_axes(check_path, axes);
  return 0;
}

}  // namespace
}  // namespace dnsbs::bench

int main(int argc, char** argv) { return dnsbs::bench::run(argc, argv); }
