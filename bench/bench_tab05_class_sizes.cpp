// Table V: number of originators classified into each application class,
// per dataset analogue (RF classifier trained on curated labels).
#include "common.hpp"

#include <iostream>

#include "analysis/footprint.hpp"

namespace dnsbs::bench {
namespace {

int run(int argc, char** argv) {
  print_header("Table V: number of originators in each class",
               "Fukuda & Heidemann, IMC'15 / TON'17, Table V",
               "RF classification of every detected originator; counts per "
               "class and dataset.");
  const double scale = arg_scale(argc, argv, 0.25);
  const std::uint64_t seed = arg_seed(argc, argv, 41);

  struct Row {
    std::string name;
    std::array<std::size_t, core::kAppClassCount> counts{};
    std::size_t total = 0;
  };
  std::vector<Row> rows;

  const auto process = [&](const char* name, sim::ScenarioConfig config) {
    const std::uint64_t s = config.seed;
    WorldRun world = run_world(std::move(config));
    const auto labels = curate(world, 0, s ^ 0x5);
    const auto classified = classify_authority(world, 0, labels, s ^ 0x6);
    Row row;
    row.name = name;
    row.counts = analysis::class_counts(classified);
    row.total = classified.size();
    rows.push_back(std::move(row));
  };
  process("JP-ditl", sim::jp_ditl_config(seed, scale));
  process("B-post-ditl", sim::b_post_ditl_config(seed + 1, scale));
  process("M-ditl", sim::m_ditl_config(seed + 2, scale));

  util::TableWriter table("originators per class (RF)");
  std::vector<std::string> header = {"dataset"};
  for (const core::AppClass c : core::all_app_classes()) {
    header.emplace_back(core::to_string(c));
  }
  header.push_back("total");
  table.columns(header);
  for (const auto& row : rows) {
    std::vector<std::string> cells = {row.name};
    for (const std::size_t c : row.counts) cells.push_back(std::to_string(c));
    cells.push_back(std::to_string(row.total));
    table.row(std::move(cells));
  }
  table.print(std::cout);
  std::printf("Expected shape (paper Tab. V): spam largest (with mail and "
              "p2p/scan sizeable) at the\nnational view; mail/spam/cdn lead "
              "at the roots.\n");
  return 0;
}

}  // namespace
}  // namespace dnsbs::bench

int main(int argc, char** argv) { return dnsbs::bench::run(argc, argv); }
