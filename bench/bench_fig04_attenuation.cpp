// Figure 4: controlled attenuation experiment.  A single scanner with a
// zero-TTL PTR record probes growing fractions of the address space; we
// count unique queriers at the scanner's final reverse authority and at
// M-Root, and fit a power law to the final-authority response.
#include "common.hpp"

#include <cmath>
#include <iostream>
#include <unordered_set>

#include "util/stats.hpp"

namespace dnsbs::bench {
namespace {

struct Trial {
  std::uint64_t touches;
  std::size_t final_queriers;
  std::size_t root_queriers;
};

Trial run_trial(const sim::AddressPlan& plan, const sim::NamingModel& naming,
                const sim::QuerierPopulation& qpop, net::IPv4Addr scanner_addr,
                std::uint64_t touches, std::uint64_t seed) {
  // Fresh caches per trial, PTR TTL forced to zero for the scanner
  // (mirroring the paper's disabled-caching controlled setup).
  sim::ResolverSimConfig resolver;
  resolver.ptr_ttl_hint = [scanner_addr](net::IPv4Addr a) -> std::optional<std::uint32_t> {
    if (a == scanner_addr) return 0;
    return std::nullopt;
  };
  sim::TrafficEngine engine(plan, naming, qpop, resolver, seed);

  sim::Authority final_auth(sim::AuthorityConfig{
      .name = "final",
      .level = sim::AuthorityLevel::kFinal,
      .zone = net::Prefix(scanner_addr, 24),
  });
  sim::Authority m_root(sim::m_root_authority());
  engine.add_authority(&final_auth);
  engine.add_authority(&m_root);

  const double hours = 10.0;
  sim::OriginatorSpec spec;
  spec.address = scanner_addr;
  spec.cls = core::AppClass::kScan;
  spec.kind = sim::TrafficKind::kScanProbe;
  spec.strategy = sim::TargetStrategy::kRandomAddress;
  spec.touches_per_hour = static_cast<double>(touches) / hours;
  spec.port = 1;  // ICMP sweep, as the paper's Trinocular-style probing
  const std::vector<sim::OriginatorSpec> population = {spec};
  engine.run(population, util::SimTime::seconds(0),
             util::SimTime::seconds(static_cast<std::int64_t>(hours * 3600)));

  const auto unique_queriers = [](const sim::Authority& a) {
    std::unordered_set<net::IPv4Addr> qs;
    for (const auto& r : a.records()) qs.insert(r.querier);
    return qs.size();
  };
  return Trial{touches, unique_queriers(final_auth), unique_queriers(m_root)};
}

int run(int argc, char** argv) {
  print_header(
      "Figure 4: querier footprint of controlled random scans",
      "Fukuda & Heidemann, IMC'15 / TON'17, Fig. 4 (§IV-D)",
      "Unique queriers at the scanner's final reverse authority and at "
      "M-Root vs scan size;\npower-law fit over the final-authority points "
      "(paper found exponent ~0.71).");
  const double scale = arg_scale(argc, argv, 0.3);
  const std::uint64_t seed = arg_seed(argc, argv, 17);

  sim::AddressPlanConfig plan_cfg;
  plan_cfg.sites = static_cast<std::size_t>(16000 * std::sqrt(scale));
  const auto plan = sim::AddressPlan::generate(plan_cfg, seed);
  const sim::NamingModel naming(plan, {}, seed);
  const sim::QuerierPopulation qpop(naming, {}, seed);
  util::Rng pick_rng(seed);
  const net::IPv4Addr scanner = plan.random_host(pick_rng, sim::SiteType::kHosting);

  const std::uint64_t space = plan.sites().size() * 254ULL;
  const std::uint64_t sizes[] = {300, 1000, 3000, 10000, 30000, 100000};

  util::TableWriter table("controlled scans: queriers vs scan size");
  table.columns({"touches", "% of occupied space", "final-auth queriers",
                 "M-Root queriers"});
  std::vector<double> xs, ys;
  for (const std::uint64_t touches : sizes) {
    const Trial t = run_trial(plan, naming, qpop, scanner, touches, seed + touches);
    table.row({util::with_commas(t.touches),
               util::fixed(100.0 * static_cast<double>(touches) /
                               static_cast<double>(space), 3),
               std::to_string(t.final_queriers), std::to_string(t.root_queriers)});
    if (t.final_queriers > 0) {
      xs.push_back(static_cast<double>(touches));
      ys.push_back(static_cast<double>(t.final_queriers));
    }
  }
  table.print(std::cout);

  const util::PowerLawFit fit = util::power_law_fit(xs, ys);
  std::printf("power-law fit at final authority: queriers ~ %.3g * touches^%.2f "
              "(r^2=%.3f in log-log)\n",
              fit.c, fit.alpha, fit.r2);
  std::printf("Expected shape (paper Fig. 4): near-linear growth in log-log "
              "with exponent < 1;\nroot view attenuated by orders of "
              "magnitude relative to the final authority.\n");
  return 0;
}

}  // namespace
}  // namespace dnsbs::bench

int main(int argc, char** argv) { return dnsbs::bench::run(argc, argv); }
