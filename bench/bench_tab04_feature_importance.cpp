// Table IV: top discriminative features by Random-Forest Gini importance
// for the JP-ditl and M-ditl analogues.
#include "common.hpp"

#include <algorithm>
#include <iostream>

namespace dnsbs::bench {
namespace {

std::vector<std::pair<std::string, double>> top_features(const WorldRun& world,
                                                         std::uint64_t seed,
                                                         std::size_t k) {
  const auto labels = curate(world, 0, seed);
  auto [data, used] = labels.join(world.features[0]);
  ml::ForestConfig cfg;
  cfg.n_trees = 150;
  cfg.seed = seed;
  ml::RandomForest rf(cfg);
  rf.fit(data);
  const auto importance = rf.gini_importance();
  std::vector<std::pair<std::string, double>> ranked;
  const auto& names = core::feature_names();
  for (std::size_t f = 0; f < importance.size(); ++f) {
    const bool is_static = f < core::kQuerierCategoryCount;
    ranked.emplace_back(names[f] + (is_static ? " (S)" : " (D)"), importance[f]);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  ranked.resize(std::min(k, ranked.size()));
  return ranked;
}

int run(int argc, char** argv) {
  print_header("Table IV: top discriminative features (RF Gini importance)",
               "Fukuda & Heidemann, IMC'15 / TON'17, Table IV",
               "(S) static querier-name feature, (D) dynamic feature; "
               "importance normalized to sum 100 over all 22 features.");
  const double scale = arg_scale(argc, argv, 0.3);
  const std::uint64_t seed = arg_seed(argc, argv, 11);

  WorldRun jp = run_world(sim::jp_ditl_config(seed, scale));
  WorldRun m = run_world(sim::m_ditl_config(seed + 1, scale));
  const auto jp_top = top_features(jp, seed ^ 0xfeed, 6);
  const auto m_top = top_features(m, seed ^ 0xbeef, 6);

  util::TableWriter table("top-6 features per dataset");
  table.columns({"rank", "JP-ditl feature", "Gini", "M-ditl feature", "Gini"});
  for (std::size_t r = 0; r < 6; ++r) {
    table.row({std::to_string(r + 1),
               r < jp_top.size() ? jp_top[r].first : "-",
               r < jp_top.size() ? util::fixed(jp_top[r].second, 1) : "-",
               r < m_top.size() ? m_top[r].first : "-",
               r < m_top.size() ? util::fixed(m_top[r].second, 1) : "-"});
  }
  table.print(std::cout);
  std::printf("Expected shape (paper Tab. IV): mail (S) leads both datasets; "
              "home/ns/nxdomain/unreach (S)\nand a rate or entropy dynamic "
              "feature fill the rest.\n");
  return 0;
}

}  // namespace
}  // namespace dnsbs::bench

int main(int argc, char** argv) { return dnsbs::bench::run(argc, argv); }
