// Figure 14 and the §VI-B "teams of scanners" observation: /24 blocks
// originating scanning from multiple addresses.
#include "common.hpp"

#include <iostream>

#include "analysis/teams.hpp"

namespace dnsbs::bench {
namespace {

int run(int argc, char** argv) {
  print_header("Figure 14: /24 blocks originating scanning activity",
               "Fukuda & Heidemann, IMC'15 / TON'17, Fig. 14 + §VI-B teams",
               "Blocks with multiple scan-class originators; per-week counts "
               "for the five busiest blocks.");
  const double scale = arg_scale(argc, argv, 0.06);
  const std::uint64_t seed = arg_seed(argc, argv, 47);
  constexpr std::size_t kWeeks = 14;

  core::SensorConfig sensor;
  sensor.min_queriers = 10;
  LongRun run =
      run_weekly_windows(sim::m_sampled_config(seed, kWeeks, scale), kWeeks, sensor);
  labeling::CuratorConfig cc;
  cc.max_per_class = 50;
  const auto labels = curate_window(run, 1, seed ^ 0x11, cc);
  const auto windows = classify_windows(run, labels, seed);

  const auto team_blocks = analysis::blocks_of_class(windows, core::AppClass::kScan, 2);
  std::size_t aligned = 0;
  for (const auto& block : team_blocks) {
    if (block.distinct_classes == 1) ++aligned;
  }
  std::printf("blocks with >=2 scan originators: %zu (of which single-class: "
              "%zu)\n\n", team_blocks.size(), aligned);

  const std::size_t lines = std::min<std::size_t>(5, team_blocks.size());
  util::TableWriter table("scan originators per week in the busiest blocks");
  std::vector<std::string> header = {"week"};
  for (std::size_t b = 0; b < lines; ++b) {
    const net::IPv4Addr base(team_blocks[b].slash24 << 8);
    header.push_back(base.to_string() + "/24");
  }
  table.columns(header);
  std::vector<std::vector<std::size_t>> series;
  for (std::size_t b = 0; b < lines; ++b) {
    series.push_back(analysis::block_trajectory(windows, team_blocks[b].slash24,
                                                core::AppClass::kScan));
  }
  for (std::size_t w = 0; w < windows.size(); ++w) {
    std::vector<std::string> row = {std::to_string(w)};
    for (std::size_t b = 0; b < lines; ++b) row.push_back(std::to_string(series[b][w]));
    table.row(std::move(row));
  }
  table.print(std::cout);
  std::printf("Expected shape (paper Fig. 14/§VI-B): a minority of blocks "
              "host several concurrent\nscanners (candidate teams); some "
              "persist, others appear during events.\n");
  return 0;
}

}  // namespace
}  // namespace dnsbs::bench

int main(int argc, char** argv) { return dnsbs::bench::run(argc, argv); }
