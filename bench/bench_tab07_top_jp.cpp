// Table VII: the top originators at the national authority, with the
// external evidence columns (darknet address count, blacklist listings)
// and the RF classification.
#include "common.hpp"

#include <iostream>

namespace dnsbs::bench {
namespace {

int run(int argc, char** argv) {
  print_header("Table VII: frequently appearing originators (national view)",
               "Fukuda & Heidemann, IMC'15 / TON'17, Table VII (JP-ditl)",
               "Top-30 by unique queriers with DarkIP / blacklist evidence "
               "and the classifier's verdict.");
  const double scale = arg_scale(argc, argv, 0.3);
  const std::uint64_t seed = arg_seed(argc, argv, 59);

  WorldRun world = run_world(sim::jp_ditl_config(seed, scale));
  const auto labels = curate(world, 0, seed ^ 0x5);
  const auto classified = classify_authority(world, 0, labels, seed ^ 0x6);

  util::TableWriter table("top-30 originators at the national authority");
  table.columns({"rank", "originator", "queriers", "ptr-ttl", "DarkIP", "BLS", "BLO",
                 "class (RF)", "true class"});
  const std::size_t limit = std::min<std::size_t>(30, classified.size());
  std::size_t clean = 0;
  for (std::size_t i = 0; i < limit; ++i) {
    const auto& c = classified[i];
    const auto dark = world.darknet->addresses_hit_by(c.features.originator);
    const auto bls = world.blacklist.spam_listings(c.features.originator);
    const auto blo = world.blacklist.other_listings(c.features.originator);
    if (dark == 0 && bls == 0 && blo == 0) ++clean;
    const auto truth_it = world.scenario->truth().find(c.features.originator);
    table.row({std::to_string(i + 1), c.features.originator.to_string(),
               util::with_commas(c.features.footprint),
               std::to_string(world.scenario->naming().ptr_ttl(c.features.originator)),
               std::to_string(dark), std::to_string(bls), std::to_string(blo),
               std::string(core::to_string(c.predicted)),
               truth_it != world.scenario->truth().end()
                   ? std::string(core::to_string(truth_it->second))
                   : "?"});
  }
  table.print(std::cout);
  std::printf("originators with no external evidence (\"clean\"): %zu of %zu\n",
              clean, limit);
  std::printf("Expected shape (paper Tab. VII): most top originators are "
              "spammers or scanners with\nblacklist/darknet corroboration; a "
              "handful are clean (ads, updates, incidents).\n");
  return 0;
}

}  // namespace
}  // namespace dnsbs::bench

int main(int argc, char** argv) { return dnsbs::bench::run(argc, argv); }
