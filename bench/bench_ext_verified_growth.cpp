// Extension experiment (paper §V-D future work): automatic label growing
// with external verification — newly-identified spammers must appear in a
// blacklist, new scanners in the darknet — compared against plain
// auto-grow and the curated-labels baseline.
#include "common.hpp"

#include <iostream>

namespace dnsbs::bench {
namespace {

int run(int argc, char** argv) {
  print_header("Extension: externally-verified automatic label growing",
               "paper §V-D ('verify candidate additions ... against external "
               "sources')",
               "Auto-grow vs verified auto-grow vs weekly retraining on "
               "curated labels.");
  const double scale = arg_scale(argc, argv, 0.08);
  const std::uint64_t seed = arg_seed(argc, argv, 79);
  constexpr std::size_t kWeeks = 16;
  constexpr std::size_t kCurationWeek = 2;

  core::SensorConfig sensor;
  sensor.min_queriers = 10;
  LongRun run =
      run_weekly_windows(sim::b_multi_year_config(seed, kWeeks, scale), kWeeks, sensor);
  labeling::CuratorConfig cc;
  cc.max_per_class = 50;
  const auto labels = curate_window(run, kCurationWeek, seed ^ 0x9, cc);
  std::printf("curated %zu labeled examples at week %zu\n\n", labels.size(),
              kCurationWeek);

  labeling::StrategyConfig sc;
  sc.seed = seed;
  const auto& truth = run.scenario->truth();
  const auto daily = labeling::evaluate_train_daily(run.windows, labels, sc);
  const auto grown =
      labeling::evaluate_auto_grow(run.windows, kCurationWeek, labels, sc, &truth);
  const auto verified = labeling::evaluate_auto_grow_verified(
      run.windows, kCurationWeek, labels, run.blacklist, *run.darknet, sc, &truth);

  util::TableWriter table("per-week f-score and grown-label error");
  table.columns({"week", "retrain-weekly", "auto-grow", "err", "verified-grow",
                 "err(verified)"});
  double grown_late = 0, verified_late = 0;
  std::size_t late = 0;
  for (std::size_t w = 0; w < run.windows.size(); ++w) {
    table.row({std::to_string(w), util::fixed(daily[w].f1, 3),
               util::fixed(grown[w].f1, 3),
               w >= kCurationWeek ? util::fixed(grown[w].label_error, 3) : "-",
               util::fixed(verified[w].f1, 3),
               w >= kCurationWeek ? util::fixed(verified[w].label_error, 3) : "-"});
    if (w >= kCurationWeek + 5) {
      grown_late += grown[w].f1;
      verified_late += verified[w].f1;
      ++late;
    }
  }
  table.print(std::cout);
  if (late > 0) {
    std::printf("mean late f-score: auto-grow %.3f vs verified %.3f\n",
                grown_late / late, verified_late / late);
  }
  std::printf("Expected shape: verification prunes the mislabeled malicious "
              "examples, keeping the\ngrown-label error lower and the "
              "f-score above plain auto-grow — the fix the paper\nproposes "
              "as future work.\n");
  return 0;
}

}  // namespace
}  // namespace dnsbs::bench

int main(int argc, char** argv) { return dnsbs::bench::run(argc, argv); }
