// Figure 16 (Appendix C): daily variation in querier counts for the six
// case-study originators — user-driven activity is diurnal, automated
// scanning and spam run flat.
#include "common.hpp"

#include <iostream>

#include "analysis/diurnal.hpp"

namespace dnsbs::bench {
namespace {

int run(int argc, char** argv) {
  print_header("Figure 16: diurnal querier-count profiles for case studies",
               "Fukuda & Heidemann, IMC'15 / TON'17, Fig. 16 / Appendix C",
               "Mean unique queriers per minute, bucketed by hour of day, "
               "plus a diurnality score.");
  const double scale = arg_scale(argc, argv, 0.3);
  const std::uint64_t seed = arg_seed(argc, argv, 42);  // Fig. 3's world
  WorldRun world = run_world(sim::jp_ditl_config(seed, scale));
  const auto& records = world.scenario->authority(0).records();
  const auto& truth = world.scenario->truth();

  struct Case {
    const char* name;
    core::AppClass cls;
    int port;
  };
  const Case cases[] = {
      {"scan-icmp", core::AppClass::kScan, 1},
      {"scan-ssh", core::AppClass::kScan, 22},
      {"ad-track", core::AppClass::kAdTracker, -1},
      {"cdn", core::AppClass::kCdn, -1},
      {"mail", core::AppClass::kMail, -1},
      {"spam", core::AppClass::kSpam, -1},
  };

  util::TableWriter table("mean queriers/minute by hour of day");
  std::vector<std::string> header = {"hour"};
  std::vector<std::vector<double>> profiles;
  std::vector<std::string> names;
  for (const Case& c : cases) {
    const core::FeatureVector* found = nullptr;
    for (const auto& fv : world.features[0]) {
      const auto it = truth.find(fv.originator);
      if (it == truth.end() || it->second != c.cls) continue;
      if (c.port >= 0) {
        bool match = false;
        for (const auto& spec : world.scenario->population()) {
          if (spec.address == fv.originator && spec.port == c.port) {
            match = true;
            break;
          }
        }
        if (!match) continue;
      }
      found = &fv;
      break;
    }
    if (!found) continue;
    const auto per_minute = analysis::per_minute_queriers(
        records, found->originator, util::SimTime::seconds(0),
        world.scenario->config().duration);
    profiles.push_back(analysis::hourly_profile(per_minute));
    names.emplace_back(c.name);
    header.emplace_back(c.name);
  }
  table.columns(header);
  for (int hour = 0; hour < 24; ++hour) {
    std::vector<std::string> row = {std::to_string(hour)};
    for (const auto& profile : profiles) row.push_back(util::fixed(profile[hour], 2));
    table.row(std::move(row));
  }
  table.print(std::cout);

  for (std::size_t i = 0; i < profiles.size(); ++i) {
    std::printf("%-10s diurnality score: %.2f\n", names[i].c_str(),
                analysis::diurnality(profiles[i]));
  }
  std::printf("\nExpected shape (paper Fig. 16): ad-tracker/cdn/mail strongly "
              "diurnal; scan-ssh and\nspam close to flat; scan-icmp mildly "
              "diurnal (adaptive outage probing).\n");
  return 0;
}

}  // namespace
}  // namespace dnsbs::bench

int main(int argc, char** argv) { return dnsbs::bench::run(argc, argv); }
