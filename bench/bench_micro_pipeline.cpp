// Microbenchmarks (google-benchmark) of the performance-critical pieces:
// record parsing, dedup, aggregation, feature extraction, trie lookups,
// cache operations, and classifier prediction.
#include <benchmark/benchmark.h>

#include <sstream>

#include "core/sensor.hpp"
#include "ml/forest.hpp"
#include "net/prefix_trie.hpp"
#include "sim/scenario.hpp"
#include "util/fuzz.hpp"
#include "util/parallel.hpp"

namespace dnsbs {
namespace {

// A small shared world so benchmarks measure the pipeline, not setup.
struct MicroWorld {
  MicroWorld() : scenario(sim::jp_ditl_config(5, 0.05)) {
    scenario.run();
    records = scenario.authority(0).records();
  }
  sim::Scenario scenario;
  std::vector<dns::QueryRecord> records;
};

MicroWorld& world() {
  static MicroWorld w;
  return w;
}

void BM_ParseRecord(benchmark::State& state) {
  const std::string line = dns::serialize(world().records.front());
  for (auto _ : state) {
    benchmark::DoNotOptimize(dns::parse_record(line));
  }
}
BENCHMARK(BM_ParseRecord);

void BM_SerializeRecord(benchmark::State& state) {
  const auto& record = world().records.front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dns::serialize(record));
  }
}
BENCHMARK(BM_SerializeRecord);

void BM_ReverseNameCodec(benchmark::State& state) {
  const net::IPv4Addr addr(0x01020304);
  for (auto _ : state) {
    const auto name = dns::reverse_name(addr);
    benchmark::DoNotOptimize(dns::address_from_reverse(name));
  }
}
BENCHMARK(BM_ReverseNameCodec);

void BM_WireEncodeDecode(benchmark::State& state) {
  const auto msg = dns::Message::ptr_query(99, net::IPv4Addr(0x01020304));
  for (auto _ : state) {
    const auto wire = dns::encode(msg);
    benchmark::DoNotOptimize(dns::decode(wire));
  }
}
BENCHMARK(BM_WireEncodeDecode);

void BM_WireDecodeMutated(benchmark::State& state) {
  // Rejection throughput on corrupted traffic: a capture point under a
  // junk flood spends its cycles in decode's failure paths, so malformed
  // packets must be rejected at least as fast as clean ones parse.
  util::ByteMutator mutator(42);
  std::vector<std::vector<std::uint8_t>> corpus;
  for (std::uint32_t i = 0; i < 256; ++i) {
    auto wire = dns::encode(dns::Message::ptr_query(static_cast<std::uint16_t>(i),
                                                    net::IPv4Addr(0x0a000000u + i)));
    mutator.mutate_n(wire, 3);
    corpus.push_back(std::move(wire));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dns::decode(corpus[i++ & 255]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WireDecodeMutated);

void BM_DedupIngest(benchmark::State& state) {
  const auto& records = world().records;
  for (auto _ : state) {
    core::Deduplicator dedup;
    for (const auto& r : records) benchmark::DoNotOptimize(dedup.admit(r));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_DedupIngest);

void BM_SensorIngestAndExtract(benchmark::State& state) {
  auto& w = world();
  for (auto _ : state) {
    core::Sensor sensor({}, w.scenario.plan().as_db(), w.scenario.plan().geo_db(),
                        w.scenario.naming());
    sensor.ingest_all(w.records);
    benchmark::DoNotOptimize(sensor.extract_features());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.records.size()));
}
BENCHMARK(BM_SensorIngestAndExtract);

void BM_TrieLookup(benchmark::State& state) {
  const auto& as_db = world().scenario.plan().as_db();
  util::Rng rng(1);
  std::vector<net::IPv4Addr> probes;
  for (int i = 0; i < 1024; ++i) {
    probes.push_back(world().scenario.plan().random_host(rng));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(as_db.lookup(probes[i++ & 1023]));
  }
}
BENCHMARK(BM_TrieLookup);

void BM_CacheLookupInsert(benchmark::State& state) {
  dns::CacheSim cache;
  const auto name = dns::reverse_name(net::IPv4Addr(0x01020304));
  std::int64_t t = 0;
  for (auto _ : state) {
    const auto now = util::SimTime::seconds(t++);
    if (cache.lookup(name, dns::QType::kPTR, now) == dns::CacheResult::kMiss) {
      cache.insert_positive(name, dns::QType::kPTR, 30, now);
    }
  }
}
BENCHMARK(BM_CacheLookupInsert);

void BM_QuerierNameClassification(benchmark::State& state) {
  const auto name = *dns::DnsName::parse("home1-2-3-4.isp1234.jp");
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::classify_querier_name(name));
  }
}
BENCHMARK(BM_QuerierNameClassification);

void BM_AggregatorIngest(benchmark::State& state) {
  // Aggregation hot loop in isolation (no dedup): exercises the
  // SplitMix64-finalized IPv4 hash and the size-hint reserve.
  const auto& records = world().records;
  for (auto _ : state) {
    core::OriginatorAggregator agg;
    agg.reserve(records.size() / 8);
    for (const auto& r : records) agg.add(r);
    benchmark::DoNotOptimize(agg.originator_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_AggregatorIngest);

void BM_SensorIngestSharded(benchmark::State& state) {
  // Sharded bulk ingest at 1/2/4 threads; identical output per shard count.
  auto& w = world();
  core::SensorConfig cfg;
  cfg.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    core::Sensor sensor(cfg, w.scenario.plan().as_db(), w.scenario.plan().geo_db(),
                        w.scenario.naming());
    sensor.ingest_all(w.records);
    benchmark::DoNotOptimize(sensor.aggregator().originator_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.records.size()));
}
BENCHMARK(BM_SensorIngestSharded)->Arg(1)->Arg(2)->Arg(4);

void BM_ExtractFeaturesThreads(benchmark::State& state) {
  auto& w = world();
  core::SensorConfig cfg;
  cfg.threads = static_cast<std::size_t>(state.range(0));
  core::Sensor sensor(cfg, w.scenario.plan().as_db(), w.scenario.plan().geo_db(),
                      w.scenario.naming());
  sensor.ingest_all(w.records);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sensor.extract_features());
  }
}
BENCHMARK(BM_ExtractFeaturesThreads)->Arg(1)->Arg(2)->Arg(4);

void BM_RandomForestFitThreads(benchmark::State& state) {
  ml::Dataset data = core::make_dataset();
  util::Rng rng(3);
  for (int i = 0; i < 400; ++i) {
    std::vector<double> row(core::kFeatureCount);
    for (auto& v : row) v = rng.uniform();
    data.add(std::move(row), rng.below(core::kAppClassCount));
  }
  util::set_thread_count(static_cast<std::size_t>(state.range(0)));
  ml::ForestConfig cfg;
  cfg.n_trees = 100;
  for (auto _ : state) {
    ml::RandomForest rf(cfg);
    rf.fit(data);
    benchmark::DoNotOptimize(rf.tree_count());
  }
  util::set_thread_count(0);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cfg.n_trees));
}
BENCHMARK(BM_RandomForestFitThreads)->Arg(1)->Arg(2)->Arg(4);

void BM_RandomForestPredict(benchmark::State& state) {
  // Train once on a small synthetic set; measure prediction latency.
  ml::Dataset data = core::make_dataset();
  util::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    std::vector<double> row(core::kFeatureCount);
    for (auto& v : row) v = rng.uniform();
    data.add(std::move(row), rng.below(core::kAppClassCount));
  }
  ml::ForestConfig cfg;
  cfg.n_trees = 100;
  ml::RandomForest rf(cfg);
  rf.fit(data);
  const auto probe = data.row(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rf.predict(probe));
  }
}
BENCHMARK(BM_RandomForestPredict);

void BM_QueryLogRoundTrip(benchmark::State& state) {
  const auto& records = world().records;
  const std::size_t n = std::min<std::size_t>(records.size(), 10000);
  for (auto _ : state) {
    std::stringstream buffer;
    dns::QueryLogWriter writer(buffer);
    for (std::size_t i = 0; i < n; ++i) writer.write(records[i]);
    benchmark::DoNotOptimize(dns::read_all(buffer).size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_QueryLogRoundTrip);

}  // namespace
}  // namespace dnsbs

BENCHMARK_MAIN();
