// Figure 3: static features (querier-name category fractions) for six
// case-study originators: scan-icmp, scan-ssh, ad-tracker, cdn, mail, spam.
// (Dataset: JP-ditl analogue.)
#include "common.hpp"

#include <iostream>

namespace dnsbs::bench {
namespace {

/// Picks the largest-footprint detected originator of a true class
/// (optionally matching a scan port).
const core::FeatureVector* find_case(const WorldRun& world, core::AppClass cls,
                                     int port = -1) {
  const auto& truth = world.scenario->truth();
  for (const auto& fv : world.features[0]) {  // footprint-descending
    const auto it = truth.find(fv.originator);
    if (it == truth.end() || it->second != cls) continue;
    if (port >= 0) {
      bool matches = false;
      for (const auto& spec : world.scenario->population()) {
        if (spec.address == fv.originator && spec.port == port) {
          matches = true;
          break;
        }
      }
      if (!matches) continue;
    }
    return &fv;
  }
  return nullptr;
}

int run(int argc, char** argv) {
  print_header("Figure 3: static features of six case-study originators",
               "Fukuda & Heidemann, IMC'15 / TON'17, Fig. 3 (JP-ditl)",
               "Fractions of queriers whose reverse names fall in each "
               "category, for one exemplar per activity.");
  const double scale = arg_scale(argc, argv, 0.3);
  WorldRun world = run_world(sim::jp_ditl_config(arg_seed(argc, argv, 42), scale));

  struct Case {
    const char* name;
    core::AppClass cls;
    int port;
  };
  const Case cases[] = {
      {"scan-icmp", core::AppClass::kScan, 1},
      {"scan-ssh", core::AppClass::kScan, 22},
      {"ad-track", core::AppClass::kAdTracker, -1},
      {"cdn", core::AppClass::kCdn, -1},
      {"mail", core::AppClass::kMail, -1},
      {"spam", core::AppClass::kSpam, -1},
  };

  util::TableWriter table("static feature fractions per case study");
  std::vector<std::string> header = {"feature"};
  std::vector<const core::FeatureVector*> found;
  for (const Case& c : cases) {
    const auto* fv = find_case(world, c.cls, c.port);
    if (fv) {
      header.push_back(c.name);
      found.push_back(fv);
    } else {
      std::printf("(no detected exemplar for %s at this scale)\n", c.name);
    }
  }
  table.columns(header);
  for (std::size_t f = 0; f < core::kQuerierCategoryCount; ++f) {
    std::vector<std::string> row = {
        std::string(core::to_string(static_cast<core::QuerierCategory>(f)))};
    for (const auto* fv : found) row.push_back(util::fixed(fv->statics[f], 3));
    table.row(std::move(row));
  }
  table.print(std::cout);

  std::printf("Expected shape (paper Fig. 3): scanners dominated by ns/home/"
              "nxdomain; cdn home-heavy;\nmail and spam dominated by the mail "
              "category.\n");
  return 0;
}

}  // namespace
}  // namespace dnsbs::bench

int main(int argc, char** argv) { return dnsbs::bench::run(argc, argv); }
