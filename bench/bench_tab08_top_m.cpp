// Table VIII: the top originators as seen from the root (M-Root analogue):
// CDN-heavy, with scanners and few spammers.
#include "common.hpp"

#include <iostream>

namespace dnsbs::bench {
namespace {

int run(int argc, char** argv) {
  print_header("Table VIII: frequently appearing originators (root view)",
               "Fukuda & Heidemann, IMC'15 / TON'17, Table VIII (M-ditl)",
               "Top-30 by unique queriers at M-Root, with external evidence "
               "and classification.");
  const double scale = arg_scale(argc, argv, 0.3);
  const std::uint64_t seed = arg_seed(argc, argv, 61);

  WorldRun world = run_world(sim::m_ditl_config(seed, scale));
  const auto labels = curate(world, 0, seed ^ 0x5);
  const auto classified = classify_authority(world, 0, labels, seed ^ 0x6);

  util::TableWriter table("top-30 originators at M-Root");
  table.columns({"rank", "originator", "queriers", "DarkIP", "BLS", "BLO",
                 "class (RF)", "true class"});
  const std::size_t limit = std::min<std::size_t>(30, classified.size());
  std::array<std::size_t, core::kAppClassCount> class_tally{};
  for (std::size_t i = 0; i < limit; ++i) {
    const auto& c = classified[i];
    ++class_tally[static_cast<std::size_t>(c.predicted)];
    const auto truth_it = world.scenario->truth().find(c.features.originator);
    table.row({std::to_string(i + 1), c.features.originator.to_string(),
               util::with_commas(c.features.footprint),
               std::to_string(world.darknet->addresses_hit_by(c.features.originator)),
               std::to_string(world.blacklist.spam_listings(c.features.originator)),
               std::to_string(world.blacklist.other_listings(c.features.originator)),
               std::string(core::to_string(c.predicted)),
               truth_it != world.scenario->truth().end()
                   ? std::string(core::to_string(truth_it->second))
                   : "?"});
  }
  table.print(std::cout);

  std::printf("top-30 class tally:");
  for (const core::AppClass c : core::all_app_classes()) {
    const std::size_t n = class_tally[static_cast<std::size_t>(c)];
    if (n > 0) {
      std::printf(" %s=%zu", std::string(core::to_string(c)).c_str(), n);
    }
  }
  std::printf("\nExpected shape (paper Tab. VIII): CDNs prominent (short "
              "TTLs, global clients),\nscanners common, spam rarer than at "
              "the national view.\n");
  return 0;
}

}  // namespace
}  // namespace dnsbs::bench

int main(int argc, char** argv) { return dnsbs::bench::run(argc, argv); }
