// ML training/prediction throughput benchmark (PERF gate companion to
// bench_perf_pipeline).
//
// The paper's §V result — retrain-daily beats train-once by a wide margin
// on multi-year data — makes classifier *training* a recurring hot path,
// not a one-off setup cost.  This bench pins it on seeded synthetic blob
// data (class centers + Gaussian noise, half the columns quantized so the
// split search sees tied feature values like the real fraction features):
//
//   * cart_fit_rows_per_s     single CART fit, all features per node
//   * rf_fit_rows_per_s       Random Forest fit (bootstraps + presort reuse)
//   * rf_predict_rows_per_s   batched forest prediction
//   * svm_fit_rows_per_s      one-vs-one RBF SVM fit (SMO)
//   * svm_predict_rows_per_s  batched SVM prediction
//   * crossval_reps_per_s     repeated-split RF cross-validation (the
//                             §IV-C protocol, via the index-span fast path)
//
// Modes (same contract as bench_perf_pipeline):
//   bench_ml --json BENCH_ml.json      write machine-readable results
//   bench_ml --check BENCH_ml.json     fail (exit 1) on a >10% throughput
//                                      regression vs the committed numbers
//   bench_ml --baseline OLD.json       with --json: record the old numbers
//                                      and the measured speedup per axis
//   bench_ml --smoke                   tiny run (ctest labels perf/ml-perf)
//
// Times are best-of --repeat (default 3) so scheduler noise shrinks the
// committed baseline instead of inflating it.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common.hpp"
#include "ml/crossval.hpp"
#include "ml/forest.hpp"
#include "ml/svm.hpp"
#include "util/metrics.hpp"
#include "util/parallel.hpp"
#include "util/strings.hpp"

namespace dnsbs::bench {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Extracts `"key": <number>` from a JSON text (flat schema, no escapes).
double json_number(const std::string& text, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t pos = text.find(needle);
  if (pos == std::string::npos) return 0.0;
  return std::atof(text.c_str() + pos + needle.size());
}

/// Seeded blob dataset: `classes` random centers in [0,1]^features, rows
/// drawn center + N(0, spread).  Even-indexed columns are quantized to a
/// 1/64 grid so the split search and kernel evaluate tied values, like the
/// keyword-fraction features do.
ml::Dataset blobs(std::size_t rows, std::size_t features, std::size_t classes,
                  double spread, std::uint64_t seed) {
  std::vector<std::string> feature_names, class_names;
  for (std::size_t f = 0; f < features; ++f) feature_names.push_back("f" + std::to_string(f));
  for (std::size_t k = 0; k < classes; ++k) class_names.push_back("c" + std::to_string(k));
  ml::Dataset d(std::move(feature_names), std::move(class_names));

  util::Rng rng(seed);
  std::vector<double> centers(classes * features);
  for (double& c : centers) c = rng.uniform();
  std::vector<double> row(features);
  for (std::size_t i = 0; i < rows; ++i) {
    const std::size_t k = i % classes;
    for (std::size_t f = 0; f < features; ++f) {
      double v = centers[k * features + f] + rng.normal(0.0, spread);
      if ((f & 1) == 0) v = std::round(v * 64.0) / 64.0;
      row[f] = v;
    }
    d.add(row, k);
  }
  return d;
}

struct Results {
  std::size_t rf_rows = 0;
  std::size_t svm_rows = 0;
  double cart_fit_rows_per_s = 0;
  double rf_fit_rows_per_s = 0;
  double rf_predict_rows_per_s = 0;
  double svm_fit_rows_per_s = 0;
  double svm_predict_rows_per_s = 0;
  double crossval_reps_per_s = 0;
};

template <typename Fn>
double best_of(int repeat, std::size_t items, Fn&& fn) {
  double best = 0.0;
  for (int r = 0; r < repeat; ++r) {
    const auto t0 = Clock::now();
    fn();
    const double rate = static_cast<double>(items) / seconds_since(t0);
    best = std::max(best, rate);
  }
  return best;
}

int run(int argc, char** argv) {
  const bool smoke = arg_flag(argc, argv, "--smoke");
  const double scale = arg_scale(argc, argv, smoke ? 0.1 : 1.0);
  const std::uint64_t seed = arg_seed(argc, argv, 13);
  const int repeat =
      smoke ? 1 : std::max(1, std::atoi(arg_str(argc, argv, "--repeat", "3").c_str()));
  const std::size_t threads = static_cast<std::size_t>(
      std::atoi(arg_str(argc, argv, "--threads", "1").c_str()));
  const std::string json_path = arg_str(argc, argv, "--json", "");
  const std::string check_path = arg_str(argc, argv, "--check", "");
  const std::string baseline_path = arg_str(argc, argv, "--baseline", "");
  util::set_thread_count(threads);

  print_header("ml", "§IV-C classifier training throughput (retrain-often hot path)",
               util::format("scale=%.3f seed=%llu threads=%zu repeat=%d", scale,
                            static_cast<unsigned long long>(seed), threads, repeat));

  // Tree-learner workload: wide enough that the per-node split search
  // dominates; SVM workload smaller (SMO is quadratic in rows).
  const std::size_t rf_rows = std::max<std::size_t>(60, static_cast<std::size_t>(2400 * scale));
  const std::size_t svm_rows = std::max<std::size_t>(40, static_cast<std::size_t>(600 * scale));
  const ml::Dataset tree_data = blobs(rf_rows, 24, 6, 0.16, seed);
  const ml::Dataset svm_data = blobs(svm_rows, 16, 4, 0.22, seed + 1);

  Results res;
  res.rf_rows = tree_data.size();
  res.svm_rows = svm_data.size();

  // --- CART: one deep tree, all features per node -----------------------
  ml::CartConfig cart_cfg;
  cart_cfg.seed = seed;
  res.cart_fit_rows_per_s = best_of(repeat, tree_data.size(), [&] {
    ml::CartTree tree(cart_cfg);
    tree.fit(tree_data);
    if (tree.node_count() < 8) std::abort();  // degenerate fit = broken bench
  });

  // --- Random Forest fit + batched predict ------------------------------
  ml::ForestConfig rf_cfg;
  rf_cfg.n_trees = smoke ? 10 : 60;
  rf_cfg.seed = seed;
  res.rf_fit_rows_per_s = best_of(repeat, tree_data.size(), [&] {
    ml::RandomForest rf(rf_cfg);
    rf.fit(tree_data);
    if (rf.tree_count() != rf_cfg.n_trees) std::abort();
  });
  ml::RandomForest rf(rf_cfg);
  rf.fit(tree_data);
  res.rf_predict_rows_per_s = best_of(repeat, tree_data.size(), [&] {
    if (rf.predict_all(tree_data).size() != tree_data.size()) std::abort();
  });

  // --- SVM fit + batched predict ----------------------------------------
  ml::SvmConfig svm_cfg;
  svm_cfg.seed = seed;
  res.svm_fit_rows_per_s = best_of(repeat, svm_data.size(), [&] {
    ml::KernelSvm svm(svm_cfg);
    svm.fit(svm_data);
    if (svm.support_vector_count() == 0) std::abort();
  });
  ml::KernelSvm svm(svm_cfg);
  svm.fit(svm_data);
  res.svm_predict_rows_per_s = best_of(repeat, svm_data.size(), [&] {
    if (svm.predict_all(svm_data).size() != svm_data.size()) std::abort();
  });

  // --- cross-validation: the paper's repeated-split protocol ------------
  ml::CrossValConfig cv;
  cv.repetitions = smoke ? 2 : 8;
  cv.seed = seed;
  res.crossval_reps_per_s = best_of(repeat, cv.repetitions, [&] {
    const ml::MetricSummary s = ml::cross_validate(
        tree_data,
        [&](std::uint64_t model_seed) -> std::unique_ptr<ml::Classifier> {
          ml::ForestConfig fc;
          fc.n_trees = smoke ? 10 : 40;
          fc.seed = model_seed;
          return std::make_unique<ml::RandomForest>(fc);
        },
        cv);
    if (s.mean.accuracy <= 0.5) std::abort();  // blobs are easy; <=50% = broken
  });

  std::printf("tree dataset       %zu rows x %zu features, %zu classes\n", tree_data.size(),
              tree_data.feature_count(), tree_data.class_count());
  std::printf("svm dataset        %zu rows x %zu features, %zu classes\n", svm_data.size(),
              svm_data.feature_count(), svm_data.class_count());
  std::printf("cart fit           %.0f rows/s\n", res.cart_fit_rows_per_s);
  std::printf("rf fit             %.0f rows/s (%zu trees)\n", res.rf_fit_rows_per_s,
              rf_cfg.n_trees);
  std::printf("rf predict_all     %.0f rows/s\n", res.rf_predict_rows_per_s);
  std::printf("svm fit            %.0f rows/s\n", res.svm_fit_rows_per_s);
  std::printf("svm predict_all    %.0f rows/s\n", res.svm_predict_rows_per_s);
  std::printf("crossval           %.2f reps/s (%zu reps)\n", res.crossval_reps_per_s,
              cv.repetitions);

  const struct {
    const char* key;
    double live;
  } axes[] = {
      {"cart_fit_rows_per_s", res.cart_fit_rows_per_s},
      {"rf_fit_rows_per_s", res.rf_fit_rows_per_s},
      {"rf_predict_rows_per_s", res.rf_predict_rows_per_s},
      {"svm_fit_rows_per_s", res.svm_fit_rows_per_s},
      {"svm_predict_rows_per_s", res.svm_predict_rows_per_s},
      {"crossval_reps_per_s", res.crossval_reps_per_s},
  };

  if (!json_path.empty()) {
    std::ofstream os(json_path);
    os << "{\n"
       << "  \"bench\": \"ml\",\n"
       << "  \"seed\": " << seed << ",\n"
       << "  \"scale\": " << scale << ",\n"
       << "  \"threads\": " << threads << ",\n"
       << "  \"rf_rows\": " << res.rf_rows << ",\n"
       << "  \"svm_rows\": " << res.svm_rows << ",\n"
       << "  \"cart_fit_rows_per_s\": " << res.cart_fit_rows_per_s << ",\n"
       << "  \"rf_fit_rows_per_s\": " << res.rf_fit_rows_per_s << ",\n"
       << "  \"rf_predict_rows_per_s\": " << res.rf_predict_rows_per_s << ",\n"
       << "  \"svm_fit_rows_per_s\": " << res.svm_fit_rows_per_s << ",\n"
       << "  \"svm_predict_rows_per_s\": " << res.svm_predict_rows_per_s << ",\n"
       << "  \"crossval_reps_per_s\": " << res.crossval_reps_per_s << ",\n"
       // Registry snapshot: the committed baseline doubles as the fixture
       // proving the dnsbs.ml.* counters move (fits, trees, kernel cache).
       << "  \"metrics\": " << util::metrics_snapshot().to_json();
    if (!baseline_path.empty()) {
      std::ifstream bis(baseline_path);
      std::stringstream bbuf;
      bbuf << bis.rdbuf();
      const std::string base = bbuf.str();
      for (const auto& axis : axes) {
        const double before = json_number(base, axis.key);
        os << ",\n  \"baseline_" << axis.key << "\": " << before;
        if (before > 0.0) {
          os << ",\n  \"speedup_" << axis.key << "\": " << axis.live / before;
          std::printf("speedup %-24s %.2fx (%.0f -> %.0f)\n", axis.key, axis.live / before,
                      before, axis.live);
        }
      }
    }
    os << "\n}\n";
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  if (!check_path.empty()) {
    std::ifstream is(check_path);
    if (!is) {
      std::fprintf(stderr, "check: cannot read %s\n", check_path.c_str());
      return 1;
    }
    std::stringstream buffer;
    buffer << is.rdbuf();
    const std::string committed = buffer.str();
    // >10% below the committed number on any throughput axis fails the gate.
    bool ok = true;
    for (const auto& axis : axes) {
      const double want = json_number(committed, axis.key);
      if (want <= 0.0) continue;
      const double ratio = axis.live / want;
      std::printf("check %-24s %12.0f vs committed %12.0f  (%.2fx)%s\n", axis.key, axis.live,
                  want, ratio, ratio < 0.9 ? "  REGRESSION" : "");
      if (ratio < 0.9) ok = false;
    }
    if (!ok) {
      std::fprintf(stderr, "\nml perf check FAILED: >10%% regression vs %s\n",
                   check_path.c_str());
      return 1;
    }
    std::printf("\nml perf check passed (within 10%% of %s)\n", check_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace dnsbs::bench

int main(int argc, char** argv) { return dnsbs::bench::run(argc, argv); }
