// Extension experiment (paper §VII, DNS privacy): QNAME minimization
// (RFC 7816) constrains backscatter "to only the local authority".  We
// sweep the fraction of minimizing resolvers and measure what the root
// and national vantage points lose.
#include "common.hpp"

#include <iostream>

namespace dnsbs::bench {
namespace {

struct Sweep {
  double fraction;
  std::size_t national_detected;
  std::size_t root_detected;
  std::size_t national_records;
  std::size_t root_records;
};

int run(int argc, char** argv) {
  print_header("Extension: impact of QNAME minimization on the sensor",
               "paper §VII (privacy outlook); RFC 7816",
               "Originators detectable at each vantage as minimizing "
               "resolvers spread; the final authority keeps the full "
               "signal by design.");
  const double scale = arg_scale(argc, argv, 0.2);
  const std::uint64_t seed = arg_seed(argc, argv, 73);

  util::TableWriter table("vantage visibility vs minimization deployment");
  table.columns({"qmin fraction", "national records", "national originators",
                 "M-Root records", "M-Root originators"});
  for (const double fraction : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    sim::ScenarioConfig config = sim::jp_ditl_config(seed, scale);
    config.resolver.qname_min_fraction = fraction;
    WorldRun world = run_world(std::move(config));
    // authorities: 0 = national, 1 = B-Root, 2 = M-Root.
    table.row({util::fixed(fraction, 2),
               util::with_commas(world.scenario->authority(0).records().size()),
               std::to_string(world.features[0].size()),
               util::with_commas(world.scenario->authority(2).records().size()),
               std::to_string(world.features[2].size())});
  }
  table.print(std::cout);
  std::printf("Expected shape: attributable records and detectable "
              "originators above the final\nauthority fall roughly linearly "
              "with deployment, vanishing at 100%% — the paper's\nanticipated "
              "loss of this data source to query minimization.\n");
  return 0;
}

}  // namespace
}  // namespace dnsbs::bench

int main(int argc, char** argv) { return dnsbs::bench::run(argc, argv); }
