// Figure 9: distribution of originator footprint sizes (unique queriers
// per originator) across the dataset analogues — heavy-tailed, hundreds of
// large originators.
#include "common.hpp"

#include <cmath>
#include <iostream>

#include "analysis/footprint.hpp"
#include "util/strings.hpp"

namespace dnsbs::bench {
namespace {

/// CCDF sampled at powers of two for a compact log-log table.
std::vector<double> sampled_ccdf(const std::vector<core::FeatureVector>& features,
                                 const std::vector<double>& xs) {
  const auto points = analysis::footprint_ccdf(features);
  std::vector<double> out;
  for (const double x : xs) {
    double fraction = 0.0;
    for (const auto& [fx, fy] : points) {
      if (fx >= x) {
        fraction = fy;
        break;
      }
    }
    out.push_back(fraction);
  }
  return out;
}

int run(int argc, char** argv) {
  print_header("Figure 9: distribution of originator footprint size",
               "Fukuda & Heidemann, IMC'15 / TON'17, Fig. 9",
               "CCDF (fraction of originators with footprint >= x) per "
               "dataset analogue; log-spaced x.");
  const double scale = arg_scale(argc, argv, 0.25);
  const std::uint64_t seed = arg_seed(argc, argv, 37);

  struct Entry {
    std::string name;
    std::vector<core::FeatureVector> features;
  };
  std::vector<Entry> entries;
  {
    WorldRun jp = run_world(sim::jp_ditl_config(seed, scale));
    entries.push_back({"JP-ditl (d=50h)", std::move(jp.features[0])});
  }
  {
    WorldRun b = run_world(sim::b_post_ditl_config(seed + 1, scale));
    entries.push_back({"B-post-ditl (d=36h)", std::move(b.features[0])});
  }
  {
    WorldRun m = run_world(sim::m_ditl_config(seed + 2, scale));
    entries.push_back({"M-ditl (d=50h)", std::move(m.features[0])});
  }

  std::vector<double> xs;
  for (double x = 20; x <= 20000; x *= 2) xs.push_back(x);

  util::TableWriter table("footprint CCDF per dataset");
  std::vector<std::string> header = {"footprint >="};
  for (const auto& e : entries) header.push_back(e.name);
  table.columns(header);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    std::vector<std::string> row = {util::with_commas(static_cast<std::uint64_t>(xs[i]))};
    for (const auto& e : entries) {
      const auto ccdf = sampled_ccdf(e.features, xs);
      row.push_back(util::format("%.2e", ccdf[i]));
    }
    table.row(std::move(row));
  }
  table.print(std::cout);

  for (const auto& e : entries) {
    std::size_t big = 0;
    for (const auto& fv : e.features) {
      if (fv.footprint > 100) ++big;
    }
    std::printf("%-22s detected=%zu, footprint>100: %zu, max=%zu\n", e.name.c_str(),
                e.features.size(), big,
                e.features.empty() ? 0 : e.features.front().footprint);
  }
  std::printf("\nExpected shape (paper Fig. 9): heavy tail spanning orders of "
              "magnitude; hundreds of\noriginators above 100 queriers; root "
              "views shifted left of the national view.\n");
  return 0;
}

}  // namespace
}  // namespace dnsbs::bench

int main(int argc, char** argv) { return dnsbs::bench::run(argc, argv); }
