// Shared plumbing for the reproduction benches: build a world, run it,
// extract features at each authority, curate labels, train the classifier.
// Every bench binary prints one paper table/figure (see DESIGN.md).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "analysis/window_result.hpp"
#include "core/sensor.hpp"
#include "labeling/blacklist.hpp"
#include "labeling/strategies.hpp"
#include "labeling/curator.hpp"
#include "labeling/darknet.hpp"
#include "ml/crossval.hpp"
#include "ml/forest.hpp"
#include "sim/scenario.hpp"
#include "util/table.hpp"

namespace dnsbs::bench {

/// Command-line override: `--scale 0.5` shrinks or grows the world.
/// Benches choose defaults that run in tens of seconds on one core.
double arg_scale(int argc, char** argv, double fallback);

/// Optional `--seed N`.
std::uint64_t arg_seed(int argc, char** argv, std::uint64_t fallback);

/// True when the bare flag (e.g. `--parallel`) is present.
bool arg_flag(int argc, char** argv, const char* name);

/// Optional string argument (e.g. `--json PATH`).
std::string arg_str(int argc, char** argv, const char* name, std::string fallback);

/// A fully-run scenario with per-authority sensor output.
struct WorldRun {
  std::unique_ptr<sim::Scenario> scenario;
  std::unique_ptr<labeling::Darknet> darknet;
  labeling::BlacklistSet blacklist;
  /// features[i] = extracted feature vectors at authority i, sorted by
  /// footprint descending.
  std::vector<std::vector<core::FeatureVector>> features;
};

/// Builds the world, attaches a darknet, runs the full duration, and runs
/// the sensor over every authority's log.
WorldRun run_world(sim::ScenarioConfig config, core::SensorConfig sensor_config = {});

/// Curates a labeled set from authority `authority_index`'s detections.
labeling::GroundTruth curate(const WorldRun& world, std::size_t authority_index,
                             std::uint64_t seed,
                             labeling::CuratorConfig config = {});

/// The paper's preferred classifier: Random Forest, freshly seeded.
std::unique_ptr<ml::Classifier> make_rf(std::uint64_t seed, std::size_t trees = 100);

/// Trains an RF on curated labels joined with this authority's features
/// and classifies every detected originator.
std::vector<core::ClassifiedOriginator> classify_authority(
    const WorldRun& world, std::size_t authority_index,
    const labeling::GroundTruth& labels, std::uint64_t seed);

/// Prints a standard bench header so outputs are self-describing.
void print_header(const std::string& experiment, const std::string& paper_ref,
                  const std::string& note);

/// A long-horizon run sliced into weekly observation windows at the first
/// authority: the machinery behind the §V / §VI longitudinal figures.
struct LongRun {
  std::unique_ptr<sim::Scenario> scenario;
  std::unique_ptr<labeling::Darknet> darknet;
  labeling::BlacklistSet blacklist;
  std::vector<labeling::WindowObservation> windows;
};

LongRun run_weekly_windows(sim::ScenarioConfig config, std::size_t weeks,
                           core::SensorConfig sensor_config = {});

/// Curates labels from one window of a long run.
labeling::GroundTruth curate_window(const LongRun& run, std::size_t window,
                                    std::uint64_t seed,
                                    labeling::CuratorConfig config = {});

/// Classifies every window: retrains an RF per window on the labeled
/// examples' fresh features (the paper's recommended strategy) and labels
/// every detected originator, producing the WindowResult series the §VI
/// longitudinal analyses consume.  Windows whose training set is too thin
/// reuse the most recent usable model.
std::vector<analysis::WindowResult> classify_windows(const LongRun& run,
                                                     const labeling::GroundTruth& labels,
                                                     std::uint64_t seed);

}  // namespace dnsbs::bench
