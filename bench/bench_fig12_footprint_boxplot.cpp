// Figure 12: distribution (box plot) of scanner footprints per week:
// stable median/quartiles, volatile 90th percentile.
#include "common.hpp"

#include <algorithm>
#include <iostream>

#include "analysis/timeseries.hpp"
#include "util/stats.hpp"

namespace dnsbs::bench {
namespace {

int run(int argc, char** argv) {
  print_header("Figure 12: scanner footprint distribution over time",
               "Fukuda & Heidemann, IMC'15 / TON'17, Fig. 12 (M-sampled)",
               "Per-week box statistics (whiskers 10th/90th percentile) of "
               "queriers per scan-class originator.");
  const double scale = arg_scale(argc, argv, 0.06);
  const std::uint64_t seed = arg_seed(argc, argv, 47);  // same world as Fig. 11
  constexpr std::size_t kWeeks = 14;

  core::SensorConfig sensor;
  sensor.min_queriers = 10;
  LongRun run =
      run_weekly_windows(sim::m_sampled_config(seed, kWeeks, scale), kWeeks, sensor);
  labeling::CuratorConfig cc;
  cc.max_per_class = 50;
  const auto labels = curate_window(run, 1, seed ^ 0x11, cc);
  const auto windows = classify_windows(run, labels, seed);

  util::TableWriter table("scanner footprint box stats per week");
  table.columns({"week", "n", "p10", "p25", "median", "p75", "p90", "max"});
  std::vector<double> medians, p90s;
  for (const auto& w : windows) {
    const auto box = analysis::class_footprint_box(w, core::AppClass::kScan);
    table.row({std::to_string(w.index), std::to_string(box.n), util::fixed(box.p10, 0),
               util::fixed(box.p25, 0), util::fixed(box.p50, 0),
               util::fixed(box.p75, 0), util::fixed(box.p90, 0),
               util::fixed(box.max, 0)});
    if (box.n > 0) {
      medians.push_back(box.p50);
      p90s.push_back(box.p90);
    }
  }
  table.print(std::cout);

  if (medians.size() > 2) {
    const double med_cv = util::stddev(medians) / std::max(1.0, util::mean(medians));
    const double p90_cv = util::stddev(p90s) / std::max(1.0, util::mean(p90s));
    std::printf("coefficient of variation: median %.2f vs p90 %.2f\n", med_cv, p90_cv);
  }
  std::printf("Expected shape (paper Fig. 12): median and quartiles stable "
              "across weeks while the\n90th percentile varies (a few very "
              "large scanners come and go).\n");
  return 0;
}

}  // namespace
}  // namespace dnsbs::bench

int main(int argc, char** argv) { return dnsbs::bench::run(argc, argv); }
