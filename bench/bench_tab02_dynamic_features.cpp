// Table II: dynamic features for the six case-study originators.
// (Dataset: JP-ditl analogue.)
#include "common.hpp"

#include <iostream>

namespace dnsbs::bench {
namespace {

int run(int argc, char** argv) {
  print_header("Table II: dynamic features for case studies",
               "Fukuda & Heidemann, IMC'15 / TON'17, Table II (JP-ditl)",
               "queries/querier, entropies, and per-querier country diversity "
               "for one exemplar per activity.");
  const double scale = arg_scale(argc, argv, 0.3);
  WorldRun world = run_world(sim::jp_ditl_config(arg_seed(argc, argv, 42), scale));
  const auto& truth = world.scenario->truth();

  struct Case {
    const char* name;
    core::AppClass cls;
    int port;
  };
  const Case cases[] = {
      {"scan-icmp", core::AppClass::kScan, 1},
      {"scan-ssh", core::AppClass::kScan, 22},
      {"ad-track", core::AppClass::kAdTracker, -1},
      {"cdn", core::AppClass::kCdn, -1},
      {"mail", core::AppClass::kMail, -1},
      {"spam", core::AppClass::kSpam, -1},
  };

  util::TableWriter table("dynamic features per case study");
  table.columns({"case", "queries/querier", "global entropy", "local entropy",
                 "queriers/country", "footprint"});
  for (const Case& c : cases) {
    const core::FeatureVector* found = nullptr;
    for (const auto& fv : world.features[0]) {
      const auto it = truth.find(fv.originator);
      if (it == truth.end() || it->second != c.cls) continue;
      if (c.port >= 0) {
        bool port_match = false;
        for (const auto& spec : world.scenario->population()) {
          if (spec.address == fv.originator && spec.port == c.port) {
            port_match = true;
            break;
          }
        }
        if (!port_match) continue;
      }
      found = &fv;
      break;
    }
    if (!found) {
      table.row({c.name, "-", "-", "-", "-", "-"});
      continue;
    }
    const auto& d = found->dynamics;
    table.row({c.name,
               util::fixed(d[static_cast<std::size_t>(
                   core::DynamicFeature::kQueriesPerQuerier)], 2),
               util::fixed(d[static_cast<std::size_t>(
                   core::DynamicFeature::kGlobalEntropy)], 2),
               util::fixed(d[static_cast<std::size_t>(
                   core::DynamicFeature::kLocalEntropy)], 2),
               util::fixed(d[static_cast<std::size_t>(
                   core::DynamicFeature::kQueriersPerCountry)], 3),
               std::to_string(found->footprint)});
  }
  table.print(std::cout);
  std::printf("Expected shape (paper Tab. II): cdn/mail show lower global "
              "entropy (regional clients);\nad-tracker/cdn higher "
              "queriers-per-country; spam/scan near-global entropy.\n");
  return 0;
}

}  // namespace
}  // namespace dnsbs::bench

int main(int argc, char** argv) { return dnsbs::bench::run(argc, argv); }
