// Figure 8: CDF of r, the per-originator fraction of weeks assigned its
// most common class, for querier thresholds q in {20, 50, 75, 100}
// (compressed here to {10, 20, 35, 50}; see DESIGN.md on attenuation
// scaling).
#include "common.hpp"

#include <algorithm>
#include <iostream>

#include "analysis/consistency.hpp"

namespace dnsbs::bench {
namespace {

int run(int argc, char** argv) {
  print_header("Figure 8: classification consistency over weeks",
               "Fukuda & Heidemann, IMC'15 / TON'17, Fig. 8 (M-sampled)",
               "CDF of the majority-class ratio r per originator; larger "
               "querier thresholds q give more consistent classifications.");
  const double scale = arg_scale(argc, argv, 0.06);
  const std::uint64_t seed = arg_seed(argc, argv, 31);
  constexpr std::size_t kWeeks = 12;

  core::SensorConfig sensor;
  sensor.min_queriers = 10;
  LongRun run =
      run_weekly_windows(sim::m_sampled_config(seed, kWeeks, scale), kWeeks, sensor);
  labeling::CuratorConfig cc;
  cc.max_per_class = 50;
  const auto labels = curate_window(run, 1, seed ^ 0x8, cc);
  const auto windows = classify_windows(run, labels, seed);

  const std::size_t thresholds[] = {10, 20, 35, 50};
  util::TableWriter table("CDF of r (fraction of originators with ratio <= r)");
  table.columns({"r", "q=10", "q=20", "q=35", "q=50"});

  std::array<std::vector<double>, 4> ratio_sets;
  for (std::size_t t = 0; t < 4; ++t) {
    analysis::ConsistencyConfig cfg;
    cfg.min_footprint = thresholds[t];
    cfg.min_appearances = 4;
    ratio_sets[t] = analysis::consistency_ratios(windows, cfg);
    std::sort(ratio_sets[t].begin(), ratio_sets[t].end());
  }
  for (double r = 0.2; r <= 1.0001; r += 0.1) {
    std::vector<std::string> row = {util::fixed(r, 1)};
    for (const auto& ratios : ratio_sets) {
      if (ratios.empty()) {
        row.push_back("-");
        continue;
      }
      const auto below = static_cast<std::size_t>(
          std::upper_bound(ratios.begin(), ratios.end(), r + 1e-9) - ratios.begin());
      row.push_back(util::fixed(static_cast<double>(below) /
                                    static_cast<double>(ratios.size()), 2));
    }
    table.row(std::move(row));
  }
  table.print(std::cout);

  for (std::size_t t = 0; t < 4; ++t) {
    std::printf("q=%zu: %zu eligible originators, strict-majority fraction %.2f\n",
                thresholds[t], ratio_sets[t].size(),
                analysis::majority_fraction(ratio_sets[t]));
  }
  std::printf("Expected shape (paper Fig. 8): larger q -> larger consistent "
              "fraction; 85-90%% of\noriginators hold a strict majority class "
              "regardless of q.\n");
  return 0;
}

}  // namespace
}  // namespace dnsbs::bench

int main(int argc, char** argv) { return dnsbs::bench::run(argc, argv); }
