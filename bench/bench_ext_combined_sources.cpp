// Extension experiment (paper §III-F: "applications will benefit from
// combining it with other sources of information (such as small
// darknets)"): augment the 22 backscatter features with a darknet-hit
// feature and measure the classification gain at an attenuated root view.
#include "common.hpp"

#include <cmath>
#include <iostream>

namespace dnsbs::bench {
namespace {

ml::MetricSummary cv(const ml::Dataset& data, std::uint64_t seed) {
  ml::CrossValConfig cfg;
  cfg.repetitions = 20;
  cfg.seed = seed;
  return ml::cross_validate(
      data,
      [](std::uint64_t s) {
        ml::ForestConfig fc;
        fc.n_trees = 100;
        fc.seed = s;
        return std::unique_ptr<ml::Classifier>(std::make_unique<ml::RandomForest>(fc));
      },
      cfg);
}

int run(int argc, char** argv) {
  print_header("Extension: combining backscatter with darknet evidence",
               "paper §III-F (combining data sources)",
               "RF cross-validation with and without a log-scaled "
               "darknet-hit feature, at the M-Root view where backscatter "
               "alone is weakest.");
  const double scale = arg_scale(argc, argv, 0.25);
  const std::uint64_t seed = arg_seed(argc, argv, 83);

  WorldRun world = run_world(sim::m_ditl_config(seed, scale));
  const auto labels = curate(world, 0, seed ^ 0x5);
  auto [base, used] = labels.join(world.features[0]);
  std::printf("labeled examples at M-Root: %zu\n\n", base.size());

  // Augmented dataset: same rows plus log1p(darknet addresses hit).
  std::vector<std::string> names = base.feature_names();
  names.push_back("darknet_hits_log");
  ml::Dataset augmented(names, base.class_names());
  for (std::size_t i = 0; i < base.size(); ++i) {
    const auto row = base.row(i);
    std::vector<double> extended(row.begin(), row.end());
    extended.push_back(std::log1p(
        static_cast<double>(world.darknet->addresses_hit_by(used[i]))));
    augmented.add(std::move(extended), base.label(i));
  }

  const auto without = cv(base, seed);
  const auto with = cv(augmented, seed);

  util::TableWriter table("backscatter-only vs combined features (RF)");
  table.columns({"features", "accuracy", "precision", "recall", "F1"});
  table.row({"backscatter (22)", util::fixed(without.mean.accuracy, 3),
             util::fixed(without.mean.precision, 3), util::fixed(without.mean.recall, 3),
             util::fixed(without.mean.f1, 3)});
  table.row({"+ darknet (23)", util::fixed(with.mean.accuracy, 3),
             util::fixed(with.mean.precision, 3), util::fixed(with.mean.recall, 3),
             util::fixed(with.mean.f1, 3)});
  table.print(std::cout);
  std::printf("Expected shape: the darknet feature sharpens the scan class "
              "(its strongest\ncorroboration) and lifts overall F1 — the "
              "multi-source direction §III-F argues for.\n");
  return 0;
}

}  // namespace
}  // namespace dnsbs::bench

int main(int argc, char** argv) { return dnsbs::bench::run(argc, argv); }
