// Figure 10: fraction of application classes among the top-100, top-1000,
// and top-10000 originators by footprint: the biggest footprints skew
// unsavoury (spam/scan), infrastructure fills in lower down.
#include "common.hpp"

#include <iostream>

#include "analysis/footprint.hpp"

namespace dnsbs::bench {
namespace {

int run(int argc, char** argv) {
  print_header("Figure 10: class mix of top-N originators",
               "Fukuda & Heidemann, IMC'15 / TON'17, Fig. 10",
               "Class fractions among the N largest footprints (top-N sizes "
               "scaled with the world; see DESIGN.md).");
  const double scale = arg_scale(argc, argv, 0.25);
  const std::uint64_t seed = arg_seed(argc, argv, 43);

  struct DatasetMix {
    std::string name;
    std::array<analysis::ClassMix, 3> mixes;  // top 50 / 500 / all
  };
  const std::size_t tops[] = {50, 500, 100000};
  const char* top_names[] = {"top-50", "top-500", "top-all"};

  std::vector<DatasetMix> results;
  const auto process = [&](const char* name, sim::ScenarioConfig config) {
    const std::uint64_t s = config.seed;
    WorldRun world = run_world(std::move(config));
    const auto labels = curate(world, 0, s ^ 0x5);
    const auto classified = classify_authority(world, 0, labels, s ^ 0x6);
    DatasetMix mix;
    mix.name = name;
    for (std::size_t t = 0; t < 3; ++t) {
      mix.mixes[t] = analysis::class_mix_top_n(classified, tops[t]);
    }
    results.push_back(std::move(mix));
  };
  process("JP-ditl", sim::jp_ditl_config(seed, scale));
  process("B-post-ditl", sim::b_post_ditl_config(seed + 1, scale));
  process("M-ditl", sim::m_ditl_config(seed + 2, scale));

  for (std::size_t t = 0; t < 3; ++t) {
    util::TableWriter table(top_names[t]);
    std::vector<std::string> header = {"class"};
    for (const auto& r : results) header.push_back(r.name);
    table.columns(header);
    for (const core::AppClass c : core::all_app_classes()) {
      std::vector<std::string> row = {std::string(core::to_string(c))};
      for (const auto& r : results) {
        row.push_back(
            util::fixed(r.mixes[t].fraction[static_cast<std::size_t>(c)], 3));
      }
      table.row(std::move(row));
    }
    table.print(std::cout);
  }

  // The headline claim: malicious share shrinks from top-50 to top-all.
  for (const auto& r : results) {
    const auto malicious_share = [&](const analysis::ClassMix& mix) {
      return mix.fraction[static_cast<std::size_t>(core::AppClass::kSpam)] +
             mix.fraction[static_cast<std::size_t>(core::AppClass::kScan)];
    };
    std::printf("%-12s spam+scan share: top-50 %.2f -> top-all %.2f\n",
                r.name.c_str(), malicious_share(r.mixes[0]),
                malicious_share(r.mixes[2]));
  }
  std::printf("\nExpected shape (paper Fig. 10): big footprints are unsavoury "
              "(spam/scan/ad dominate\ntop-N); mail/dns/cloud infrastructure "
              "appears as N grows.\n");
  return 0;
}

}  // namespace
}  // namespace dnsbs::bench

int main(int argc, char** argv) { return dnsbs::bench::run(argc, argv); }
