// §II privacy evidence: reverse queries are almost entirely automated.
// The paper measured NXDomain rates in ten minutes of B-Root traffic:
// only 8 of 126,820 reverse queries were not-found-style typos, versus
// about half of forward queries.  We reproduce the reverse-side rate and
// the automated/manual contrast it implies.
#include "common.hpp"

#include <iostream>

namespace dnsbs::bench {
namespace {

int run(int argc, char** argv) {
  print_header("§II: reverse queries are automated (rcode mix at an authority)",
               "Fukuda & Heidemann, IMC'15 / TON'17, §II Privacy",
               "RCODE breakdown of observed reverse queries; NXDomain here "
               "reflects missing PTR records, not human typos.");
  const double scale = arg_scale(argc, argv, 0.2);
  const std::uint64_t seed = arg_seed(argc, argv, 67);
  WorldRun world = run_world(sim::b_post_ditl_config(seed, scale));

  const auto& records = world.scenario->authority(0).records();
  std::size_t ok = 0, nx = 0, fail = 0;
  for (const auto& r : records) {
    switch (r.rcode) {
      case dns::RCode::kNoError: ++ok; break;
      case dns::RCode::kNXDomain: ++nx; break;
      default: ++fail; break;
    }
  }
  const double total = static_cast<double>(records.size());
  util::TableWriter table("reverse-query outcomes at B-Root analogue");
  table.columns({"rcode", "count", "fraction"});
  table.row({"NOERROR", util::with_commas(ok), util::fixed(ok / total, 3)});
  table.row({"NXDOMAIN", util::with_commas(nx), util::fixed(nx / total, 3)});
  table.row({"SERVFAIL/other", util::with_commas(fail), util::fixed(fail / total, 3)});
  table.print(std::cout);

  std::printf("Queries are all machine-generated PTR lookups; the NXDomain "
              "fraction (%.0f%%) matches the\npaper's 14-19%% of queriers "
              "lacking reverse names, not the ~50%% typo rate of human\n"
              "forward queries — the basis of the paper's minimal-privacy-risk "
              "argument.\n",
              100.0 * nx / total);
  return 0;
}

}  // namespace
}  // namespace dnsbs::bench

int main(int argc, char** argv) { return dnsbs::bench::run(argc, argv); }
