// Figure 5: benign labeled examples re-appear for months after curation
// (slow decay), shown as per-class re-appearance counts per week.
#include "common.hpp"

#include <iostream>

#include "labeling/strategies.hpp"

namespace dnsbs::bench {
namespace {

int run(int argc, char** argv) {
  print_header("Figure 5: benign originator activity is relatively stable",
               "Fukuda & Heidemann, IMC'15 / TON'17, Fig. 5 (B-multi-year)",
               "Count of curated benign labeled examples re-appearing in each "
               "weekly window; curation at week 2.");
  const double scale = arg_scale(argc, argv, 0.08);
  const std::uint64_t seed = arg_seed(argc, argv, 23);
  constexpr std::size_t kWeeks = 16;
  constexpr std::size_t kCurationWeek = 2;

  core::SensorConfig sensor;
  sensor.min_queriers = 10;  // compressed-attenuation floor (DESIGN.md)
  LongRun run =
      run_weekly_windows(sim::b_multi_year_config(seed, kWeeks, scale), kWeeks, sensor);
  labeling::CuratorConfig cc;
  cc.max_per_class = 50;
  const auto labels = curate_window(run, kCurationWeek, seed ^ 0xabc, cc);
  std::printf("curated %zu labeled examples at week %zu\n\n", labels.size(),
              kCurationWeek);

  util::TableWriter table("benign labeled-example re-appearance per week");
  std::vector<std::string> header = {"week", "benign total"};
  std::vector<core::AppClass> benign;
  for (const core::AppClass c : core::all_app_classes()) {
    if (!core::is_malicious(c)) {
      benign.push_back(c);
      header.emplace_back(core::to_string(c));
    }
  }
  table.columns(header);

  for (std::size_t w = 0; w < run.windows.size(); ++w) {
    const auto counts = labeling::reappearing_counts(run.windows[w], labels);
    std::size_t total = 0;
    std::vector<std::string> row = {std::to_string(w), ""};
    for (const core::AppClass c : benign) {
      const std::size_t n = counts[static_cast<std::size_t>(c)];
      total += n;
      row.push_back(std::to_string(n));
    }
    row[1] = std::to_string(total);
    table.row(std::move(row));
  }
  table.print(std::cout);
  std::printf("Expected shape (paper Fig. 5): peak at the curation week, then "
              "a slow decay\n(~10%%/month) before and after; stable services "
              "(cloud, dns) barely decay.\n");
  return 0;
}

}  // namespace
}  // namespace dnsbs::bench

int main(int argc, char** argv) { return dnsbs::bench::run(argc, argv); }
