// Figure 6: malicious labeled examples decay quickly around the curation
// date (50% within a month in the paper).
#include "common.hpp"

#include <iostream>

#include "labeling/strategies.hpp"

namespace dnsbs::bench {
namespace {

int run(int argc, char** argv) {
  print_header("Figure 6: malicious originator activity changes quickly",
               "Fukuda & Heidemann, IMC'15 / TON'17, Fig. 6 (B-multi-year)",
               "Count of curated scan/spam labeled examples re-appearing per "
               "weekly window; curation at week 2.");
  const double scale = arg_scale(argc, argv, 0.08);
  const std::uint64_t seed = arg_seed(argc, argv, 23);  // same world as Fig. 5
  constexpr std::size_t kWeeks = 16;
  constexpr std::size_t kCurationWeek = 2;

  core::SensorConfig sensor;
  sensor.min_queriers = 10;
  LongRun run =
      run_weekly_windows(sim::b_multi_year_config(seed, kWeeks, scale), kWeeks, sensor);
  labeling::CuratorConfig cc;
  cc.max_per_class = 50;
  const auto labels = curate_window(run, kCurationWeek, seed ^ 0xabc, cc);

  util::TableWriter table("malicious labeled-example re-appearance per week");
  table.columns({"week", "malicious total", "scan", "spam"});
  std::size_t at_curation = 1;
  for (std::size_t w = 0; w < run.windows.size(); ++w) {
    const auto counts = labeling::reappearing_counts(run.windows[w], labels);
    const std::size_t scan = counts[static_cast<std::size_t>(core::AppClass::kScan)];
    const std::size_t spam = counts[static_cast<std::size_t>(core::AppClass::kSpam)];
    if (w == kCurationWeek) at_curation = std::max<std::size_t>(1, scan + spam);
    table.row({std::to_string(w), std::to_string(scan + spam), std::to_string(scan),
               std::to_string(spam)});
  }
  table.print(std::cout);

  // Quantify the decay: compare curation week to ~4 weeks later.
  const auto tail = labeling::reappearing_counts(
      run.windows[std::min(kCurationWeek + 4, run.windows.size() - 1)], labels);
  const std::size_t tail_mal = tail[static_cast<std::size_t>(core::AppClass::kScan)] +
                               tail[static_cast<std::size_t>(core::AppClass::kSpam)];
  std::printf("malicious re-appearance 4 weeks after curation: %zu/%zu (%.0f%%)\n",
              tail_mal, at_curation, 100.0 * tail_mal / at_curation);
  std::printf("Expected shape (paper Fig. 6): sharp decay to ~50%% within a "
              "month of curation,\nmuch faster than the benign classes of "
              "Fig. 5.\n");
  return 0;
}

}  // namespace
}  // namespace dnsbs::bench

int main(int argc, char** argv) { return dnsbs::bench::run(argc, argv); }
