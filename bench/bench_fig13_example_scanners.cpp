// Figure 13: footprint trajectories of five example scanners that also
// appear in the darknet — long-lived ssh scanners, a seasonal tcp80
// scanner, and short Heartbleed-era tcp443 bursts.
#include "common.hpp"

#include <iostream>

#include "analysis/timeseries.hpp"

namespace dnsbs::bench {
namespace {

int run(int argc, char** argv) {
  print_header("Figure 13: five example scan-class originators",
               "Fukuda & Heidemann, IMC'15 / TON'17, Fig. 13 (M-sampled + darknet)",
               "Weekly querier footprints of individual darknet-confirmed "
               "scanners, annotated with their scanned port.");
  const double scale = arg_scale(argc, argv, 0.06);
  const std::uint64_t seed = arg_seed(argc, argv, 47);
  constexpr std::size_t kWeeks = 14;

  core::SensorConfig sensor;
  sensor.min_queriers = 10;
  LongRun run =
      run_weekly_windows(sim::m_sampled_config(seed, kWeeks, scale), kWeeks, sensor);
  labeling::CuratorConfig cc;
  cc.max_per_class = 50;
  const auto labels = curate_window(run, 1, seed ^ 0x11, cc);
  const auto windows = classify_windows(run, labels, seed);

  // Candidates: persistent scan-class originators confirmed by darknet.
  const auto ranked =
      analysis::persistent_originators(windows, core::AppClass::kScan, 1);
  struct Example {
    net::IPv4Addr addr;
    std::uint16_t port;
    std::vector<std::size_t> series;
  };
  std::vector<Example> examples;
  for (const auto& addr : ranked) {
    if (!run.darknet->confirms_scanner(addr, 4)) continue;
    std::uint16_t port = 0;
    bool found = false;
    for (const auto& spec : run.scenario->population()) {
      if (spec.address == addr && spec.cls == core::AppClass::kScan) {
        port = spec.port;
        found = true;
        break;
      }
    }
    if (!found) continue;
    // Prefer variety of ports across the five lines.
    bool dup = false;
    std::size_t same_port = 0;
    for (const auto& e : examples) same_port += e.port == port;
    dup = same_port >= 2;
    if (dup) continue;
    examples.push_back(
        Example{addr, port, analysis::footprint_trajectory(windows, addr)});
    if (examples.size() == 5) break;
  }

  util::TableWriter table("weekly footprint per example scanner (0 = absent)");
  std::vector<std::string> header = {"week"};
  for (const auto& e : examples) {
    const std::string label = e.port == 1    ? "icmp"
                              : e.port == 0  ? "multi"
                                             : "tcp" + std::to_string(e.port);
    header.push_back(label + " " + e.addr.to_string());
  }
  table.columns(header);
  for (std::size_t w = 0; w < windows.size(); ++w) {
    std::vector<std::string> row = {std::to_string(w)};
    for (const auto& e : examples) row.push_back(std::to_string(e.series[w]));
    table.row(std::move(row));
  }
  table.print(std::cout);

  for (const auto& e : examples) {
    std::printf("scanner %s: darknet addresses hit = %zu\n", e.addr.to_string().c_str(),
                run.darknet->addresses_hit_by(e.addr));
  }
  std::printf("\nExpected shape (paper Fig. 13): some scanners persist across "
              "all weeks (ssh-style),\nothers appear for a few weeks "
              "(tcp443/Heartbleed bursts); darknet evidence corroborates.\n");
  return 0;
}

}  // namespace
}  // namespace dnsbs::bench

int main(int argc, char** argv) { return dnsbs::bench::run(argc, argv); }
