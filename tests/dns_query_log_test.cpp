#include "dns/query_log.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

namespace dnsbs::dns {
namespace {

QueryRecord sample() {
  return QueryRecord{util::SimTime::seconds(12345),
                     *net::IPv4Addr::parse("192.168.0.3"),
                     *net::IPv4Addr::parse("1.2.3.4"), RCode::kNoError};
}

TEST(QueryLog, SerializeFormat) {
  EXPECT_EQ(serialize(sample()), "12345\t192.168.0.3\t1.2.3.4\tNOERROR");
}

TEST(QueryLog, ParseRoundTrip) {
  const QueryRecord r = sample();
  const auto parsed = parse_record(serialize(r));
  ASSERT_TRUE(parsed);
  EXPECT_EQ(*parsed, r);
}

TEST(QueryLog, ParseAllRcodes) {
  for (const RCode rc : {RCode::kNoError, RCode::kNXDomain, RCode::kServFail,
                         RCode::kFormErr, RCode::kNotImp, RCode::kRefused}) {
    QueryRecord r = sample();
    r.rcode = rc;
    const auto parsed = parse_record(serialize(r));
    ASSERT_TRUE(parsed);
    EXPECT_EQ(parsed->rcode, rc);
  }
}

TEST(QueryLog, ParseRejectsMalformed) {
  EXPECT_FALSE(parse_record(""));
  EXPECT_FALSE(parse_record("12345\t192.168.0.3\t1.2.3.4"));          // missing field
  EXPECT_FALSE(parse_record("x\t192.168.0.3\t1.2.3.4\tNOERROR"));     // bad time
  EXPECT_FALSE(parse_record("1\t999.168.0.3\t1.2.3.4\tNOERROR"));     // bad ip
  EXPECT_FALSE(parse_record("1\t192.168.0.3\t1.2.3.4\tWHAT"));        // bad rcode
}

TEST(QueryLog, WriterReaderRoundTrip) {
  std::stringstream buffer;
  QueryLogWriter writer(buffer);
  QueryRecord a = sample();
  QueryRecord b = sample();
  b.time = util::SimTime::seconds(99999);
  b.rcode = RCode::kNXDomain;
  writer.write(a);
  writer.write(b);
  EXPECT_EQ(writer.count(), 2u);

  QueryLogReader reader(buffer);
  const auto ra = reader.next();
  const auto rb = reader.next();
  ASSERT_TRUE(ra && rb);
  EXPECT_EQ(*ra, a);
  EXPECT_EQ(*rb, b);
  EXPECT_FALSE(reader.next());
  EXPECT_EQ(reader.skipped(), 0u);
}

TEST(QueryLog, ReaderSkipsGarbageLines) {
  std::stringstream buffer;
  buffer << "not a record\n"
         << serialize(sample()) << "\n"
         << "\n"
         << "also garbage\tx\ty\tz\n";
  const auto records = read_all(buffer);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], sample());
}

// Regression: timestamps above INT64_MAX used to wrap negative through
// the unchecked u64 -> i64 cast, running the pipeline clock backwards.
TEST(QueryLog, ParseRejectsTimestampPastInt64Max) {
  EXPECT_FALSE(parse_record("18446744073709551615\t10.0.0.1\t1.2.3.4\tNOERROR"));
  EXPECT_FALSE(parse_record("9223372036854775808\t10.0.0.1\t1.2.3.4\tNOERROR"));
  // The greatest representable instant still parses.
  const auto max_ok = parse_record("9223372036854775807\t10.0.0.1\t1.2.3.4\tNOERROR");
  ASSERT_TRUE(max_ok);
  EXPECT_EQ(max_ok->time.secs(), std::numeric_limits<std::int64_t>::max());
}

}  // namespace
}  // namespace dnsbs::dns
