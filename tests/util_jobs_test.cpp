#include "util/jobs.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/metrics.hpp"

namespace dnsbs::util {
namespace {

TEST(JobSystemTest, QueueIsIdempotentByName) {
  JobSystem jobs({.threads = 0, .metric_prefix = {}});
  const auto a = jobs.queue("close");
  const auto b = jobs.queue("export");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, jobs.queue("close"));
  EXPECT_EQ(b, jobs.queue("export"));
}

TEST(JobSystemTest, PerQueueFifoOrder) {
  // With several workers the *per-queue* order must still be submission
  // order: each queue runs at most one job at a time.
  JobSystem jobs({.threads = 4, .metric_prefix = {}});
  const auto q = jobs.queue("ordered");
  std::vector<int> seen;
  std::mutex m;
  for (int i = 0; i < 200; ++i) {
    jobs.submit(q, [i, &seen, &m] {
      std::lock_guard<std::mutex> lock(m);
      seen.push_back(i);
    });
  }
  jobs.drain(q);
  ASSERT_EQ(seen.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(seen[static_cast<std::size_t>(i)], i);
}

TEST(JobSystemTest, QueuesRunConcurrently) {
  // A job blocked on queue A must not prevent queue B from executing.
  JobSystem jobs({.threads = 2, .metric_prefix = {}});
  const auto a = jobs.queue("a");
  const auto b = jobs.queue("b");
  std::atomic<bool> release{false};
  std::atomic<bool> b_ran{false};
  jobs.submit(a, [&] {
    while (!release.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  jobs.submit(b, [&] { b_ran.store(true); });
  jobs.drain(b);
  EXPECT_TRUE(b_ran.load());
  release.store(true);
  jobs.drain(a);
}

TEST(JobSystemTest, ZeroWorkersRunsInlineAtDrain) {
  JobSystem jobs({.threads = 0, .metric_prefix = {}});
  const auto q = jobs.queue("deferred");
  std::atomic<int> ran{0};
  const auto submitter = std::this_thread::get_id();
  std::thread::id ran_on;
  jobs.submit(q, [&] {
    ++ran;
    ran_on = std::this_thread::get_id();
  });
  jobs.submit(q, [&] { ++ran; });
  EXPECT_EQ(ran.load(), 0);  // nothing executes before the barrier
  jobs.drain(q);
  EXPECT_EQ(ran.load(), 2);
  EXPECT_EQ(ran_on, submitter);  // the drainer helped inline
}

TEST(JobSystemTest, DrainAnotherQueueFromInsideAJob) {
  // The windowed pipeline's close job drains the train queue from a
  // worker; with help-while-draining this must not deadlock even when
  // every worker is occupied.
  JobSystem jobs({.threads = 1, .metric_prefix = {}});
  const auto outer = jobs.queue("outer");
  const auto inner = jobs.queue("inner");
  std::atomic<bool> inner_done{false};
  jobs.submit(outer, [&] {
    jobs.submit(inner, [&] { inner_done.store(true); });
    jobs.drain(inner);
  });
  jobs.drain(outer);
  EXPECT_TRUE(inner_done.load());
}

TEST(JobSystemTest, DrainRethrowsFirstErrorAndClears) {
  JobSystem jobs({.threads = 0, .metric_prefix = {}});
  const auto q = jobs.queue("failing");
  std::atomic<int> ran{0};
  jobs.submit(q, [&] {
    ++ran;
    throw std::runtime_error("first");
  });
  jobs.submit(q, [&] {
    ++ran;
    throw std::runtime_error("second");
  });
  jobs.submit(q, [&] { ++ran; });
  try {
    jobs.drain(q);
    FAIL() << "drain should rethrow the first job error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
  // Every job still ran, and the error slot was consumed by the rethrow.
  EXPECT_EQ(ran.load(), 3);
  jobs.drain(q);
}

TEST(JobSystemTest, StatsTrackDepthAndPeak) {
  JobSystem jobs({.threads = 0, .metric_prefix = {}});
  const auto q = jobs.queue("depth");
  (void)jobs.queue("idle");
  for (int i = 0; i < 3; ++i) {
    jobs.submit(q, [] {});
  }
  auto stats = jobs.stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].name, "depth");
  EXPECT_EQ(stats[0].depth, 3u);
  EXPECT_EQ(stats[0].submitted, 3u);
  EXPECT_EQ(stats[0].completed, 0u);
  EXPECT_EQ(stats[0].depth_peak, 3u);
  EXPECT_EQ(stats[1].name, "idle");
  EXPECT_EQ(stats[1].depth, 0u);
  jobs.drain_all();
  stats = jobs.stats();
  EXPECT_EQ(stats[0].depth, 0u);
  EXPECT_EQ(stats[0].completed, 3u);
  EXPECT_EQ(stats[0].depth_peak, 3u);  // peak is a high-water mark
}

TEST(JobSystemTest, MetricPrefixExportsSchedSeries) {
#if !DNSBS_METRICS_ENABLED
  GTEST_SKIP() << "metrics compiled out";
#else
  JobSystem jobs({.threads = 0, .metric_prefix = "dnsbs.test.jobs"});
  const auto q = jobs.queue("unit");
  jobs.submit(q, [] {});
  jobs.submit(q, [] {});
  jobs.drain(q);
  const auto snap = metrics_snapshot();
  const MetricValue* queued = snap.find("dnsbs.test.jobs.unit.queued");
  const MetricValue* completed = snap.find("dnsbs.test.jobs.unit.completed");
  const MetricValue* peak = snap.find("dnsbs.test.jobs.unit.queue_depth_peak");
  ASSERT_NE(queued, nullptr);
  ASSERT_NE(completed, nullptr);
  ASSERT_NE(peak, nullptr);
  // sched-flagged: scheduling-shaped series stay out of the
  // deterministic view.
  EXPECT_TRUE(queued->sched);
  EXPECT_TRUE(completed->sched);
  EXPECT_TRUE(peak->sched);
  EXPECT_GE(queued->count, 2u);
  EXPECT_GE(completed->count, 2u);
  EXPECT_GE(peak->gauge, 1);
#endif
}

TEST(JobSystemTest, DestructorDrainsPendingJobs) {
  std::atomic<int> ran{0};
  {
    JobSystem jobs({.threads = 1, .metric_prefix = {}});
    const auto q = jobs.queue("teardown");
    for (int i = 0; i < 16; ++i) {
      jobs.submit(q, [&] { ++ran; });
    }
  }
  EXPECT_EQ(ran.load(), 16);
}

TEST(JobSystemTest, DrainAllQuiescesEveryQueue) {
  JobSystem jobs({.threads = 2, .metric_prefix = {}});
  std::atomic<int> ran{0};
  for (int q = 0; q < 4; ++q) {
    const auto id = jobs.queue("q" + std::to_string(q));
    for (int i = 0; i < 8; ++i) {
      jobs.submit(id, [&] { ++ran; });
    }
  }
  jobs.drain_all();
  EXPECT_EQ(ran.load(), 32);
}

}  // namespace
}  // namespace dnsbs::util
