// Property tests for the wire codec: random well-formed messages always
// round-trip, and random byte corruption never crashes the decoder.
#include <gtest/gtest.h>

#include "dns/reverse.hpp"
#include "dns/wire.hpp"
#include "util/rng.hpp"

namespace dnsbs::dns {
namespace {

DnsName random_name(util::Rng& rng) {
  static const char* kLabels[] = {"mail", "ns1", "example", "com", "jp", "net",
                                  "a",    "xyz", "host-7",  "_srv"};
  const std::size_t depth = 1 + rng.below(5);
  DnsName name;
  for (std::size_t i = 0; i < depth; ++i) {
    name = DnsName::parse(std::string(kLabels[rng.below(std::size(kLabels))]) +
                          (name.is_root() ? "" : "." + name.to_string()))
               .value_or(name);
  }
  return name.is_root() ? *DnsName::parse("example.com") : name;
}

ResourceRecord random_rr(util::Rng& rng) {
  ResourceRecord rr;
  rr.name = random_name(rng);
  rr.ttl = static_cast<std::uint32_t>(rng.below(86400));
  switch (rng.below(3)) {
    case 0:
      rr.rtype = QType::kA;
      rr.rdata.value = net::IPv4Addr(static_cast<std::uint32_t>(rng.next()));
      break;
    case 1:
      rr.rtype = QType::kPTR;
      rr.rdata.value = random_name(rng);
      break;
    default: {
      rr.rtype = QType::kTXT;
      std::vector<std::uint8_t> raw(rng.below(32));
      for (auto& b : raw) b = static_cast<std::uint8_t>(rng.below(256));
      rr.rdata.value = std::move(raw);
      break;
    }
  }
  return rr;
}

Message random_message(util::Rng& rng) {
  Message m;
  m.id = static_cast<std::uint16_t>(rng.next());
  m.is_response = rng.chance(0.5);
  m.opcode = static_cast<std::uint8_t>(rng.below(3));
  m.authoritative = rng.chance(0.3);
  m.recursion_desired = rng.chance(0.7);
  m.recursion_available = rng.chance(0.5);
  m.rcode = static_cast<RCode>(rng.below(6));
  const std::size_t questions = rng.below(3);
  for (std::size_t i = 0; i < questions; ++i) {
    Question q;
    q.name = random_name(rng);
    q.qtype = rng.chance(0.5) ? QType::kPTR : QType::kA;
    m.questions.push_back(std::move(q));
  }
  const std::size_t answers = rng.below(4);
  for (std::size_t i = 0; i < answers; ++i) m.answers.push_back(random_rr(rng));
  const std::size_t auth = rng.below(2);
  for (std::size_t i = 0; i < auth; ++i) m.authorities.push_back(random_rr(rng));
  return m;
}

class WireRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WireRoundTrip, RandomMessagesEncodeDecodeExactly) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    const Message m = random_message(rng);
    const auto wire = encode(m);
    const auto decoded = decode(wire);
    ASSERT_TRUE(decoded) << "trial " << trial;
    EXPECT_EQ(*decoded, m) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireRoundTrip, ::testing::Values(1u, 2u, 3u, 4u, 5u));

class WireFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WireFuzz, CorruptedBytesNeverCrashAndOftenReject) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 300; ++trial) {
    const Message m = random_message(rng);
    auto wire = encode(m);
    // Mutate 1-4 random bytes.
    const std::size_t mutations = 1 + rng.below(4);
    for (std::size_t k = 0; k < mutations && !wire.empty(); ++k) {
      wire[rng.below(wire.size())] = static_cast<std::uint8_t>(rng.below(256));
    }
    const auto decoded = decode(wire);  // must not crash / UB
    if (decoded) {
      // If it decoded, re-encoding must also succeed (no poisoned state).
      EXPECT_FALSE(encode(*decoded).empty());
    }
  }
}

TEST_P(WireFuzz, RandomGarbageNeverCrashes) {
  util::Rng rng(GetParam() ^ 0xf00d);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<std::uint8_t> junk(rng.below(120));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.below(256));
    (void)decode(junk);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzz, ::testing::Values(11u, 12u, 13u));

// Reverse codec property: every IPv4 value round-trips through the PTR
// name, and the name always sits under in-addr.arpa.
class ReverseRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReverseRoundTrip, RandomAddresses) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 2000; ++trial) {
    const net::IPv4Addr addr(static_cast<std::uint32_t>(rng.next()));
    const DnsName name = reverse_name(addr);
    EXPECT_TRUE(is_reverse_name(name));
    const auto back = address_from_reverse(name);
    ASSERT_TRUE(back);
    EXPECT_EQ(*back, addr);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReverseRoundTrip, ::testing::Values(21u, 22u));

// ---- adversarial corpus: hand-crafted packets the wild actually sends ----

// A name whose first byte is a compression pointer to itself must be
// rejected by the backwards-only rule, not chased forever.
TEST(WireAdversarial, PointerToSelfRejected) {
  const std::vector<std::uint8_t> wire = {0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0,
                                          0xc0, 12,  // pointer to offset 12: itself
                                          0, 12, 0, 1};
  EXPECT_FALSE(decode(wire));
}

// An A record whose rdlength claims 4 bytes while the packet holds 2 must
// be rejected, not read past the buffer.
TEST(WireAdversarial, ARecordRdlengthOverrunRejected) {
  const std::vector<std::uint8_t> wire = {
      0, 1, 0x80, 0, 0, 0, 0, 1, 0, 0, 0, 0,  // header: response, an=1
      0,                                       // RR name: root
      0, 1, 0, 1,                              // type A, class IN
      0, 0, 0, 60,                             // ttl
      0, 4,                                    // rdlength = 4 ...
      1, 2};                                   // ... but only 2 bytes follow
  EXPECT_FALSE(decode(wire));
}

// A CNAME whose compressed rdata name decodes past the record boundary
// (consumed != rdlength) must be rejected.
TEST(WireAdversarial, CompressedNameCrossingCnameBoundaryRejected) {
  const std::vector<std::uint8_t> wire = {
      0, 1, 0x80, 0, 0, 1, 0, 1, 0, 0, 0, 0,  // header: qd=1, an=1
      1, 'a', 0,                               // question name "a" at offset 12
      0, 1, 0, 1,                              // qtype A, qclass IN
      0,                                       // RR name: root
      0, 5, 0, 1,                              // type CNAME, class IN
      0, 0, 0, 60,                             // ttl
      0, 2,                                    // rdlength = 2 ...
      3, 'f', 'o', 'o', 0xc0, 12};             // ... but the name takes 6 bytes
  EXPECT_FALSE(decode(wire));
}

// ---- regressions for the defects fixed in the robustness pass ----
// Each of these fails against the pre-fix codec.

// Labels over 63 bytes used to be silently truncated by the uint8_t cast
// (a 64-byte label emitted length 64 ... which reads as the label bytes
// shifted by one).  They are now rejected at encode time.
TEST(WireRegression, OversizeLabelRejectedAtEncode) {
  Message m;
  m.questions.push_back(Question{
      .name = DnsName::from_labels({std::string(64, 'x'), "example", "com"}),
      .qtype = QType::kA,
      .qclass = QClass::kIN});
  EXPECT_FALSE(try_encode(m));
  EXPECT_TRUE(encode(m).empty());
}

// Names over 255 wire octets are rejected by both codec directions.
TEST(WireRegression, OversizeNameRejectedBothWays) {
  std::vector<std::string> labels(5, std::string(60, 'y'));  // 5*61+1 = 306
  Message m;
  m.questions.push_back(
      Question{.name = DnsName::from_labels(labels), .qtype = QType::kA});
  EXPECT_FALSE(try_encode(m));

  // Decode side: craft a wire name of five 60-byte labels inline.
  std::vector<std::uint8_t> wire = {0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0};
  for (int i = 0; i < 5; ++i) {
    wire.push_back(60);
    for (int j = 0; j < 60; ++j) wire.push_back('y');
  }
  wire.push_back(0);
  wire.insert(wire.end(), {0, 1, 0, 1});  // qtype/qclass
  EXPECT_FALSE(decode(wire));
}

// Empty labels (impossible in wire form: a zero length byte terminates
// the name) used to encode as a premature terminator.
TEST(WireRegression, EmptyLabelRejectedAtEncode) {
  Message m;
  m.questions.push_back(
      Question{.name = DnsName::from_labels({"a", "", "com"}), .qtype = QType::kA});
  EXPECT_FALSE(try_encode(m));
}

// The compression guards were off by one: offset 0x3fff is the *last*
// representable pointer target and must be usable.  Pad the first answer's
// TXT rdata so the second answer's name starts exactly at 0x3fff, then
// repeat that name: the third occurrence must compress to a pointer whose
// wire form is 0xff 0xff, and the whole message must still round-trip.
TEST(WireRegression, CompressionPointerToOffset0x3fffExactly) {
  // Layout: header(12) + RR1[name(1) + fixed(10) + rdata(N)] ; RR2 name
  // starts at 23 + N == 0x3fff  =>  N = 16360.
  Message m;
  m.is_response = true;
  ResourceRecord pad;
  pad.name = DnsName{};  // root: encodes as a single 0x00
  pad.rtype = QType::kTXT;
  pad.rdata.value = std::vector<std::uint8_t>(16360, 0xab);
  m.answers.push_back(std::move(pad));

  ResourceRecord first;
  first.name = *DnsName::parse("tag.example");
  first.rtype = QType::kA;
  first.rdata.value = net::IPv4Addr::from_octets(192, 0, 2, 7);
  m.answers.push_back(first);

  ResourceRecord second = first;  // same owner name: must compress
  second.rdata.value = net::IPv4Addr::from_octets(192, 0, 2, 8);
  m.answers.push_back(std::move(second));

  const auto wire = try_encode(m);
  ASSERT_TRUE(wire);
  // RR2's name was recorded at 0x3fff; RR2 occupies name(13) + 14 bytes,
  // so RR3's name — the pointer — sits at 0x3fff + 27.
  const std::size_t ptr_at = 0x3fff + 27;
  ASSERT_GT(wire->size(), ptr_at + 1);
  EXPECT_EQ((*wire)[ptr_at], 0xff);      // 0xc0 | (0x3fff >> 8)
  EXPECT_EQ((*wire)[ptr_at + 1], 0xff);  // 0x3fff & 0xff
  const auto decoded = decode(*wire);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(*decoded, m);
}

// Section sizes above 65535 used to truncate mod 2^16 in the header,
// producing a silently corrupt message; they are now rejected.
TEST(WireRegression, OversizeSectionRejected) {
  Message m;
  m.is_response = true;
  ResourceRecord rr;
  rr.name = DnsName{};
  rr.rtype = QType::kA;
  rr.rdata.value = net::IPv4Addr(0x01020304);
  m.answers.assign(65536, rr);
  EXPECT_FALSE(try_encode(m));
  EXPECT_TRUE(encode(m).empty());
  m.answers.resize(65535);  // exactly at the cap: fine
  EXPECT_TRUE(try_encode(m));
}

// RDATA over 65535 bytes cannot be described by the u16 RDLENGTH field;
// the old code patched a truncated length in.
TEST(WireRegression, OversizeRdataRejected) {
  Message m;
  m.is_response = true;
  ResourceRecord rr;
  rr.name = DnsName{};
  rr.rtype = QType::kTXT;
  rr.rdata.value = std::vector<std::uint8_t>(65536, 0x42);
  m.answers.push_back(std::move(rr));
  EXPECT_FALSE(try_encode(m));
}

// A label containing a '.' (constructible via from_labels, or arriving
// from a decoded packet — wire labels are arbitrary bytes) used to alias
// the multi-label suffix with the same dotted spelling in the compression
// map, so {"a","b"} could be emitted as a pointer to the single label
// "a.b": a silent mis-encode.  Wire-form keys keep them distinct.
TEST(WireRegression, DottedLabelDoesNotAliasCompressedSuffix) {
  Message m;
  m.is_response = true;
  ResourceRecord rr1;
  rr1.name = DnsName::from_labels({"a", "b"});
  rr1.rtype = QType::kA;
  rr1.rdata.value = net::IPv4Addr(1);
  m.answers.push_back(std::move(rr1));
  ResourceRecord rr2;
  rr2.name = DnsName::from_labels({"a.b"});  // one 3-byte label
  rr2.rtype = QType::kA;
  rr2.rdata.value = net::IPv4Addr(2);
  m.answers.push_back(std::move(rr2));
  const auto decoded = decode(encode(m));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(*decoded, m);
  EXPECT_EQ(decoded->answers[0].name.label_count(), 2u);
  EXPECT_EQ(decoded->answers[1].name.label_count(), 1u);
}

}  // namespace
}  // namespace dnsbs::dns
