// Property tests for the wire codec: random well-formed messages always
// round-trip, and random byte corruption never crashes the decoder.
#include <gtest/gtest.h>

#include "dns/reverse.hpp"
#include "dns/wire.hpp"
#include "util/rng.hpp"

namespace dnsbs::dns {
namespace {

DnsName random_name(util::Rng& rng) {
  static const char* kLabels[] = {"mail", "ns1", "example", "com", "jp", "net",
                                  "a",    "xyz", "host-7",  "_srv"};
  const std::size_t depth = 1 + rng.below(5);
  DnsName name;
  for (std::size_t i = 0; i < depth; ++i) {
    name = DnsName::parse(std::string(kLabels[rng.below(std::size(kLabels))]) +
                          (name.is_root() ? "" : "." + name.to_string()))
               .value_or(name);
  }
  return name.is_root() ? *DnsName::parse("example.com") : name;
}

ResourceRecord random_rr(util::Rng& rng) {
  ResourceRecord rr;
  rr.name = random_name(rng);
  rr.ttl = static_cast<std::uint32_t>(rng.below(86400));
  switch (rng.below(3)) {
    case 0:
      rr.rtype = QType::kA;
      rr.rdata.value = net::IPv4Addr(static_cast<std::uint32_t>(rng.next()));
      break;
    case 1:
      rr.rtype = QType::kPTR;
      rr.rdata.value = random_name(rng);
      break;
    default: {
      rr.rtype = QType::kTXT;
      std::vector<std::uint8_t> raw(rng.below(32));
      for (auto& b : raw) b = static_cast<std::uint8_t>(rng.below(256));
      rr.rdata.value = std::move(raw);
      break;
    }
  }
  return rr;
}

Message random_message(util::Rng& rng) {
  Message m;
  m.id = static_cast<std::uint16_t>(rng.next());
  m.is_response = rng.chance(0.5);
  m.opcode = static_cast<std::uint8_t>(rng.below(3));
  m.authoritative = rng.chance(0.3);
  m.recursion_desired = rng.chance(0.7);
  m.recursion_available = rng.chance(0.5);
  m.rcode = static_cast<RCode>(rng.below(6));
  const std::size_t questions = rng.below(3);
  for (std::size_t i = 0; i < questions; ++i) {
    Question q;
    q.name = random_name(rng);
    q.qtype = rng.chance(0.5) ? QType::kPTR : QType::kA;
    m.questions.push_back(std::move(q));
  }
  const std::size_t answers = rng.below(4);
  for (std::size_t i = 0; i < answers; ++i) m.answers.push_back(random_rr(rng));
  const std::size_t auth = rng.below(2);
  for (std::size_t i = 0; i < auth; ++i) m.authorities.push_back(random_rr(rng));
  return m;
}

class WireRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WireRoundTrip, RandomMessagesEncodeDecodeExactly) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    const Message m = random_message(rng);
    const auto wire = encode(m);
    const auto decoded = decode(wire);
    ASSERT_TRUE(decoded) << "trial " << trial;
    EXPECT_EQ(*decoded, m) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireRoundTrip, ::testing::Values(1u, 2u, 3u, 4u, 5u));

class WireFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WireFuzz, CorruptedBytesNeverCrashAndOftenReject) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 300; ++trial) {
    const Message m = random_message(rng);
    auto wire = encode(m);
    // Mutate 1-4 random bytes.
    const std::size_t mutations = 1 + rng.below(4);
    for (std::size_t k = 0; k < mutations && !wire.empty(); ++k) {
      wire[rng.below(wire.size())] = static_cast<std::uint8_t>(rng.below(256));
    }
    const auto decoded = decode(wire);  // must not crash / UB
    if (decoded) {
      // If it decoded, re-encoding must also succeed (no poisoned state).
      EXPECT_FALSE(encode(*decoded).empty());
    }
  }
}

TEST_P(WireFuzz, RandomGarbageNeverCrashes) {
  util::Rng rng(GetParam() ^ 0xf00d);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<std::uint8_t> junk(rng.below(120));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.below(256));
    (void)decode(junk);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzz, ::testing::Values(11u, 12u, 13u));

// Reverse codec property: every IPv4 value round-trips through the PTR
// name, and the name always sits under in-addr.arpa.
class ReverseRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReverseRoundTrip, RandomAddresses) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 2000; ++trial) {
    const net::IPv4Addr addr(static_cast<std::uint32_t>(rng.next()));
    const DnsName name = reverse_name(addr);
    EXPECT_TRUE(is_reverse_name(name));
    const auto back = address_from_reverse(name);
    ASSERT_TRUE(back);
    EXPECT_EQ(*back, addr);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReverseRoundTrip, ::testing::Values(21u, 22u));

}  // namespace
}  // namespace dnsbs::dns
