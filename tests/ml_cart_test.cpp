#include "ml/cart.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace dnsbs::ml {
namespace {

/// Linearly separable 2-class data with one informative feature.
Dataset separable(std::size_t n_per_class, std::uint64_t seed) {
  Dataset d({"informative", "noise"}, {"neg", "pos"});
  util::Rng rng(seed);
  for (std::size_t i = 0; i < n_per_class; ++i) {
    d.add({rng.uniform(0.0, 0.4), rng.uniform()}, 0);
    d.add({rng.uniform(0.6, 1.0), rng.uniform()}, 1);
  }
  return d;
}

TEST(CartTree, LearnsSeparableData) {
  const Dataset d = separable(50, 1);
  CartTree tree;
  tree.fit(d);
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(tree.predict(d.row(i)), d.label(i));
  }
  const std::vector<double> lo = {0.1, 0.5};
  const std::vector<double> hi = {0.9, 0.5};
  EXPECT_EQ(tree.predict(lo), 0u);
  EXPECT_EQ(tree.predict(hi), 1u);
}

TEST(CartTree, SingleClassPredictsThatClass) {
  Dataset d({"x"}, {"only", "unused"});
  d.add({1.0}, 0);
  d.add({2.0}, 0);
  CartTree tree;
  tree.fit(d);
  EXPECT_EQ(tree.node_count(), 1u);
  const std::vector<double> q = {5.0};
  EXPECT_EQ(tree.predict(q), 0u);
}

TEST(CartTree, EmptyFitIsSafe) {
  Dataset d({"x"}, {"a"});
  CartTree tree;
  tree.fit(d);
  const std::vector<double> q = {0.0};
  EXPECT_EQ(tree.predict(q), 0u);
}

TEST(CartTree, RespectsMaxDepth) {
  const Dataset d = separable(100, 2);
  CartConfig cfg;
  cfg.max_depth = 1;
  CartTree tree(cfg);
  tree.fit(d);
  EXPECT_LE(tree.depth(), 1u);
  EXPECT_LE(tree.node_count(), 3u);
}

TEST(CartTree, MinSamplesLeafLimitsGrowth) {
  const Dataset d = separable(100, 3);
  CartConfig a_cfg;
  a_cfg.min_samples_leaf = 1;
  CartConfig b_cfg;
  b_cfg.min_samples_leaf = 40;
  CartTree a(a_cfg), b(b_cfg);
  a.fit(d);
  b.fit(d);
  EXPECT_GE(a.node_count(), b.node_count());
}

TEST(CartTree, GiniImportanceFindsInformativeFeature) {
  const Dataset d = separable(200, 4);
  CartTree tree;
  tree.fit(d);
  const auto& imp = tree.gini_importance();
  ASSERT_EQ(imp.size(), 2u);
  EXPECT_GT(imp[0], imp[1] * 5.0);
}

TEST(CartTree, BandPatternNeedsTwoSplits) {
  // Class "on" is a band 0.3 < x < 0.7: one threshold cannot separate it,
  // two nested splits on the same feature can.
  Dataset d({"x"}, {"off", "on"});
  for (int i = 0; i < 100; ++i) {
    const double x = i / 100.0;
    d.add({x}, (x > 0.3 && x < 0.7) ? 1u : 0u);
  }
  CartTree tree;
  tree.fit(d);
  EXPECT_GE(tree.depth(), 2u);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (tree.predict(d.row(i)) == d.label(i)) ++correct;
  }
  EXPECT_EQ(correct, d.size());
}

TEST(CartTree, FitIndicesUsesOnlySelectedRows) {
  Dataset d({"x"}, {"a", "b"});
  d.add({0.0}, 0);
  d.add({1.0}, 1);
  d.add({2.0}, 1);
  const std::vector<std::size_t> only_class_a = {0, 0, 0};
  CartTree tree;
  tree.fit_indices(d, only_class_a);
  const std::vector<double> q = {2.0};
  EXPECT_EQ(tree.predict(q), 0u);
}

TEST(CartTree, RefitReplacesModel) {
  Dataset d1({"x"}, {"a", "b"});
  d1.add({0.0}, 0);
  d1.add({1.0}, 1);
  Dataset d2({"x"}, {"a", "b"});
  d2.add({0.0}, 1);
  d2.add({1.0}, 0);
  CartTree tree;
  tree.fit(d1);
  const std::vector<double> q = {0.0};
  EXPECT_EQ(tree.predict(q), 0u);
  tree.fit(d2);
  EXPECT_EQ(tree.predict(q), 1u);
}

TEST(CartTree, DeterministicGivenSeed) {
  const Dataset d = separable(100, 5);
  CartConfig cfg;
  cfg.max_features = 1;
  cfg.seed = 99;
  CartTree a(cfg), b(cfg);
  a.fit(d);
  b.fit(d);
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(a.predict(d.row(i)), b.predict(d.row(i)));
  }
}

}  // namespace
}  // namespace dnsbs::ml
