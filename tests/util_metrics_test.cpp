// util::metrics registry: bucket math, sharded counters, snapshot
// ordering/delta semantics, serializers, spans, and the reworked logger
// (single-string composition + thread names + pluggable sink).
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "util/log.hpp"
#include "util/metrics.hpp"

namespace dnsbs::util {
namespace {

// ---- histogram bucket layout (pure math, valid in OFF builds too) -------

TEST(MetricsHistogramBuckets, BoundaryValues) {
  EXPECT_EQ(histogram_bucket_index(0), 0u);
  EXPECT_EQ(histogram_bucket_index(1), 1u);
  EXPECT_EQ(histogram_bucket_index(2), 2u);
  EXPECT_EQ(histogram_bucket_index(3), 2u);
  EXPECT_EQ(histogram_bucket_index(4), 3u);
  EXPECT_EQ(histogram_bucket_index(1023), 10u);
  EXPECT_EQ(histogram_bucket_index(1024), 11u);
  EXPECT_EQ(histogram_bucket_index(~std::uint64_t{0}), kHistogramBuckets - 1);
}

TEST(MetricsHistogramBuckets, UpperBoundsRoundTrip) {
  EXPECT_EQ(histogram_bucket_upper(0), 0u);
  EXPECT_EQ(histogram_bucket_upper(1), 1u);
  EXPECT_EQ(histogram_bucket_upper(10), 1023u);
  EXPECT_EQ(histogram_bucket_upper(kHistogramBuckets - 1), ~std::uint64_t{0});
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    EXPECT_EQ(histogram_bucket_index(histogram_bucket_upper(i)), i) << "bucket " << i;
  }
  // The first value past a bucket's upper bound lands in the next bucket.
  for (std::size_t i = 0; i + 2 < kHistogramBuckets; ++i) {
    EXPECT_EQ(histogram_bucket_index(histogram_bucket_upper(i) + 1), i + 1)
        << "bucket " << i;
  }
}

// ---- registry primitives (need the instrumentation compiled in) ----------

TEST(MetricsRegistry, CounterSumsAcrossThreads) {
#if !DNSBS_METRICS_ENABLED
  GTEST_SKIP() << "built with -DDNSBS_METRICS=OFF";
#else
  MetricCounter& c = metrics_counter("test.metrics.sharded_counter");
  c.reset();
  constexpr int kThreads = 8;
  constexpr std::uint64_t kAddsPerThread = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kAddsPerThread; ++i) c.inc();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), kThreads * kAddsPerThread);
#endif
}

TEST(MetricsRegistry, SameNameReturnsSameObject) {
  EXPECT_EQ(&metrics_counter("test.metrics.alias"), &metrics_counter("test.metrics.alias"));
  EXPECT_EQ(&metrics_gauge("test.metrics.galias"), &metrics_gauge("test.metrics.galias"));
  EXPECT_EQ(&metrics_histogram("test.metrics.halias"),
            &metrics_histogram("test.metrics.halias"));
}

TEST(MetricsRegistry, GaugeSetAndAdd) {
#if !DNSBS_METRICS_ENABLED
  GTEST_SKIP() << "built with -DDNSBS_METRICS=OFF";
#else
  MetricGauge& g = metrics_gauge("test.metrics.gauge");
  g.set(42);
  EXPECT_EQ(g.value(), 42);
  g.add(-50);
  EXPECT_EQ(g.value(), -8);
  g.reset();
  EXPECT_EQ(g.value(), 0);
#endif
}

TEST(MetricsRegistry, HistogramRecordsCountSumBuckets) {
#if !DNSBS_METRICS_ENABLED
  GTEST_SKIP() << "built with -DDNSBS_METRICS=OFF";
#else
  MetricHistogram& h = metrics_histogram("test.metrics.hist");
  h.reset();
  h.record(0);
  h.record(0);
  h.record(5);     // bit_width 3 -> bucket 3
  h.record(1023);  // bucket 10
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 1028u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.bucket(10), 1u);
  EXPECT_EQ(h.bucket(11), 0u);
#endif
}

TEST(MetricsRegistry, SnapshotIsSortedAndFindable) {
#if !DNSBS_METRICS_ENABLED
  GTEST_SKIP() << "built with -DDNSBS_METRICS=OFF";
#else
  metrics_counter("test.metrics.zz").add(3);
  metrics_counter("test.metrics.aa").add(7);
  const MetricsSnapshot snap = metrics_snapshot();
  ASSERT_GE(snap.values.size(), 2u);
  for (std::size_t i = 1; i < snap.values.size(); ++i) {
    EXPECT_LT(snap.values[i - 1].name, snap.values[i].name);
  }
  const MetricValue* aa = snap.find("test.metrics.aa");
  ASSERT_NE(aa, nullptr);
  EXPECT_EQ(aa->kind, MetricKind::kCounter);
  EXPECT_GE(snap.scalar("test.metrics.aa"), 7);
  EXPECT_EQ(snap.find("test.metrics.never_registered"), nullptr);
  EXPECT_EQ(snap.scalar("test.metrics.never_registered"), 0);
#endif
}

TEST(MetricsRegistry, ResetZeroesInPlace) {
#if !DNSBS_METRICS_ENABLED
  GTEST_SKIP() << "built with -DDNSBS_METRICS=OFF";
#else
  MetricCounter& c = metrics_counter("test.metrics.reset_me");
  c.add(9);
  ASSERT_GT(c.value(), 0u);
  metrics_reset();
  EXPECT_EQ(c.value(), 0u);  // handle stays valid, value zeroed
  c.inc();
  EXPECT_EQ(c.value(), 1u);
#endif
}

TEST(MetricsSpans, NestedSpansRecordSlashJoinedPath) {
#if !DNSBS_METRICS_ENABLED
  GTEST_SKIP() << "built with -DDNSBS_METRICS=OFF";
#else
  metrics_histogram("dnsbs.span.span_outer").reset();
  metrics_histogram("dnsbs.span.span_outer/span_inner").reset();
  {
    DNSBS_SPAN("span_outer");
    DNSBS_SPAN("span_inner");
  }
  const MetricsSnapshot snap = metrics_snapshot();
  const MetricValue* outer = snap.find("dnsbs.span.span_outer");
  const MetricValue* inner = snap.find("dnsbs.span.span_outer/span_inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->kind, MetricKind::kHistogram);
  EXPECT_EQ(outer->count, 1u);
  EXPECT_EQ(inner->count, 1u);
#endif
}

// ---- snapshot algebra & serializers (always compiled) --------------------

MetricValue make_counter(std::string name, std::uint64_t v, bool sched = false) {
  MetricValue m;
  m.name = std::move(name);
  m.kind = MetricKind::kCounter;
  m.sched = sched;
  m.count = v;
  return m;
}

MetricValue make_gauge(std::string name, std::int64_t v) {
  MetricValue m;
  m.name = std::move(name);
  m.kind = MetricKind::kGauge;
  m.gauge = v;
  return m;
}

MetricValue make_histogram(std::string name) {
  MetricValue m;
  m.name = std::move(name);
  m.kind = MetricKind::kHistogram;
  m.buckets.assign(kHistogramBuckets, 0);
  m.buckets[0] = 2;  // two zero-valued samples
  m.buckets[3] = 1;  // one sample in [4, 7]
  m.count = 3;
  m.sum = 5;
  return m;
}

TEST(MetricsSnapshotAlgebra, DeterministicViewDropsSchedAndHistograms) {
  MetricsSnapshot snap;
  snap.values = {make_counter("a.det", 1), make_counter("b.sched", 2, /*sched=*/true),
                 make_gauge("c.gauge", 3), make_histogram("d.hist")};
  const MetricsSnapshot det = snap.deterministic_view();
  ASSERT_EQ(det.values.size(), 2u);
  EXPECT_EQ(det.values[0].name, "a.det");
  EXPECT_EQ(det.values[1].name, "c.gauge");
}

TEST(MetricsSnapshotAlgebra, DeltaSubtractsCountersKeepsGauges) {
  MetricsSnapshot before;
  before.values = {make_counter("a.count", 10), make_gauge("b.gauge", 100)};
  MetricsSnapshot after;
  after.values = {make_counter("a.count", 25), make_gauge("b.gauge", 7),
                  make_counter("c.fresh", 4)};
  const MetricsSnapshot d = MetricsSnapshot::delta(before, after);
  EXPECT_EQ(d.scalar("a.count"), 15);  // counters: after - before
  EXPECT_EQ(d.scalar("b.gauge"), 7);   // gauges are levels: keep `after`
  EXPECT_EQ(d.scalar("c.fresh"), 4);   // new series pass through

  // A reset between snapshots (after < before) clamps at 0, never wraps.
  const MetricsSnapshot clamped = MetricsSnapshot::delta(after, before);
  EXPECT_EQ(clamped.scalar("a.count"), 0);
}

TEST(MetricsSerialization, JsonShape) {
  MetricsSnapshot snap;
  snap.values = {make_counter("a.counter", 7), make_gauge("b.gauge", -3),
                 make_histogram("c.hist")};
  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"name\": \"a.counter\", \"kind\": \"counter\", \"value\": 7"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"name\": \"b.gauge\", \"kind\": \"gauge\", \"value\": -3"),
            std::string::npos)
      << json;
  // Sparse [upper_bound, count] bucket pairs: value 0 -> bound 0, bucket 3
  // covers [4, 7] -> bound 7.
  EXPECT_NE(json.find("\"count\": 3, \"sum\": 5, \"buckets\": [[0, 2], [7, 1]]"),
            std::string::npos)
      << json;
}

TEST(MetricsSerialization, PrometheusShape) {
  MetricsSnapshot snap;
  snap.values = {make_counter("dnsbs.parse.lines", 42), make_histogram("c.hist_ns")};
  const std::string prom = snap.to_prometheus();
  EXPECT_NE(prom.find("# TYPE dnsbs_parse_lines counter\ndnsbs_parse_lines 42\n"),
            std::string::npos)
      << prom;
  // Histogram buckets are cumulative and close with +Inf/_sum/_count.
  EXPECT_NE(prom.find("c_hist_ns_bucket{le=\"0\"} 2\n"), std::string::npos) << prom;
  EXPECT_NE(prom.find("c_hist_ns_bucket{le=\"7\"} 3\n"), std::string::npos) << prom;
  EXPECT_NE(prom.find("c_hist_ns_bucket{le=\"+Inf\"} 3\n"), std::string::npos) << prom;
  EXPECT_NE(prom.find("c_hist_ns_sum 5\n"), std::string::npos) << prom;
  EXPECT_NE(prom.find("c_hist_ns_count 3\n"), std::string::npos) << prom;
}

// ---- logger rework -------------------------------------------------------

TEST(LogSink, ComposedLineCarriesLevelThreadAndTag) {
  std::vector<std::string> lines;
  set_log_sink([&lines](LogLevel, std::string_view line) { lines.emplace_back(line); });
  const LogLevel old_level = log_level();
  set_log_level(LogLevel::kInfo);
  set_thread_name("metrics-test");

  log_info("unit", "hello metrics");
  log_debug("unit", "below threshold");  // kDebug < kInfo: dropped

  set_log_level(old_level);
  set_log_sink(nullptr);
  set_thread_name("");

  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "INFO  [metrics-test] [unit] hello metrics\n");
}

TEST(LogSink, UnnamedThreadsGetStableIds) {
  std::string first;
  std::string second;
  std::thread([&first] { first = thread_name(); }).join();
  std::thread([&second] { second = thread_name(); }).join();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first[0], 't');
  EXPECT_NE(first, second);  // ids are per-thread, never recycled mid-run
}

}  // namespace
}  // namespace dnsbs::util
