// util::metrics registry: bucket math, sharded counters, snapshot
// ordering/delta semantics, serializers, spans, and the reworked logger
// (single-string composition + thread names + pluggable sink).
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace dnsbs::util {
namespace {

// ---- histogram bucket layout (pure math, valid in OFF builds too) -------

TEST(MetricsHistogramBuckets, BoundaryValues) {
  EXPECT_EQ(histogram_bucket_index(0), 0u);
  EXPECT_EQ(histogram_bucket_index(1), 1u);
  EXPECT_EQ(histogram_bucket_index(2), 2u);
  EXPECT_EQ(histogram_bucket_index(3), 2u);
  EXPECT_EQ(histogram_bucket_index(4), 3u);
  EXPECT_EQ(histogram_bucket_index(1023), 10u);
  EXPECT_EQ(histogram_bucket_index(1024), 11u);
  EXPECT_EQ(histogram_bucket_index(~std::uint64_t{0}), kHistogramBuckets - 1);
}

TEST(MetricsHistogramBuckets, UpperBoundsRoundTrip) {
  EXPECT_EQ(histogram_bucket_upper(0), 0u);
  EXPECT_EQ(histogram_bucket_upper(1), 1u);
  EXPECT_EQ(histogram_bucket_upper(10), 1023u);
  EXPECT_EQ(histogram_bucket_upper(kHistogramBuckets - 1), ~std::uint64_t{0});
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    EXPECT_EQ(histogram_bucket_index(histogram_bucket_upper(i)), i) << "bucket " << i;
  }
  // The first value past a bucket's upper bound lands in the next bucket.
  for (std::size_t i = 0; i + 2 < kHistogramBuckets; ++i) {
    EXPECT_EQ(histogram_bucket_index(histogram_bucket_upper(i) + 1), i + 1)
        << "bucket " << i;
  }
}

// ---- registry primitives (need the instrumentation compiled in) ----------

TEST(MetricsRegistry, CounterSumsAcrossThreads) {
#if !DNSBS_METRICS_ENABLED
  GTEST_SKIP() << "built with -DDNSBS_METRICS=OFF";
#else
  MetricCounter& c = metrics_counter("test.metrics.sharded_counter");
  c.reset();
  constexpr int kThreads = 8;
  constexpr std::uint64_t kAddsPerThread = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kAddsPerThread; ++i) c.inc();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), kThreads * kAddsPerThread);
#endif
}

TEST(MetricsRegistry, SameNameReturnsSameObject) {
  EXPECT_EQ(&metrics_counter("test.metrics.alias"), &metrics_counter("test.metrics.alias"));
  EXPECT_EQ(&metrics_gauge("test.metrics.galias"), &metrics_gauge("test.metrics.galias"));
  EXPECT_EQ(&metrics_histogram("test.metrics.halias"),
            &metrics_histogram("test.metrics.halias"));
}

TEST(MetricsRegistry, GaugeSetAndAdd) {
#if !DNSBS_METRICS_ENABLED
  GTEST_SKIP() << "built with -DDNSBS_METRICS=OFF";
#else
  MetricGauge& g = metrics_gauge("test.metrics.gauge");
  g.set(42);
  EXPECT_EQ(g.value(), 42);
  g.add(-50);
  EXPECT_EQ(g.value(), -8);
  g.reset();
  EXPECT_EQ(g.value(), 0);
#endif
}

TEST(MetricsRegistry, HistogramRecordsCountSumBuckets) {
#if !DNSBS_METRICS_ENABLED
  GTEST_SKIP() << "built with -DDNSBS_METRICS=OFF";
#else
  MetricHistogram& h = metrics_histogram("test.metrics.hist");
  h.reset();
  h.record(0);
  h.record(0);
  h.record(5);     // bit_width 3 -> bucket 3
  h.record(1023);  // bucket 10
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 1028u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.bucket(10), 1u);
  EXPECT_EQ(h.bucket(11), 0u);
#endif
}

TEST(MetricsRegistry, SnapshotIsSortedAndFindable) {
#if !DNSBS_METRICS_ENABLED
  GTEST_SKIP() << "built with -DDNSBS_METRICS=OFF";
#else
  metrics_counter("test.metrics.zz").add(3);
  metrics_counter("test.metrics.aa").add(7);
  const MetricsSnapshot snap = metrics_snapshot();
  ASSERT_GE(snap.values.size(), 2u);
  for (std::size_t i = 1; i < snap.values.size(); ++i) {
    EXPECT_LT(snap.values[i - 1].name, snap.values[i].name);
  }
  const MetricValue* aa = snap.find("test.metrics.aa");
  ASSERT_NE(aa, nullptr);
  EXPECT_EQ(aa->kind, MetricKind::kCounter);
  EXPECT_GE(snap.scalar("test.metrics.aa"), 7);
  EXPECT_EQ(snap.find("test.metrics.never_registered"), nullptr);
  EXPECT_EQ(snap.scalar("test.metrics.never_registered"), 0);
#endif
}

TEST(MetricsRegistry, ResetZeroesInPlace) {
#if !DNSBS_METRICS_ENABLED
  GTEST_SKIP() << "built with -DDNSBS_METRICS=OFF";
#else
  MetricCounter& c = metrics_counter("test.metrics.reset_me");
  c.add(9);
  ASSERT_GT(c.value(), 0u);
  metrics_reset();
  EXPECT_EQ(c.value(), 0u);  // handle stays valid, value zeroed
  c.inc();
  EXPECT_EQ(c.value(), 1u);
#endif
}

TEST(MetricsSpans, NestedSpansRecordSlashJoinedPath) {
#if !DNSBS_METRICS_ENABLED
  GTEST_SKIP() << "built with -DDNSBS_METRICS=OFF";
#else
  metrics_histogram("dnsbs.span.span_outer").reset();
  metrics_histogram("dnsbs.span.span_outer/span_inner").reset();
  {
    DNSBS_SPAN("span_outer");
    DNSBS_SPAN("span_inner");
  }
  const MetricsSnapshot snap = metrics_snapshot();
  const MetricValue* outer = snap.find("dnsbs.span.span_outer");
  const MetricValue* inner = snap.find("dnsbs.span.span_outer/span_inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->kind, MetricKind::kHistogram);
  EXPECT_EQ(outer->count, 1u);
  EXPECT_EQ(inner->count, 1u);
#endif
}

void nest_spans(int remaining) {
  if (remaining == 0) return;
  DNSBS_SPAN("deep");
  nest_spans(remaining - 1);
}

TEST(MetricsSpans, OverflowPastMaxDepthCountsDroppedFrames) {
#if !DNSBS_METRICS_ENABLED
  GTEST_SKIP() << "built with -DDNSBS_METRICS=OFF";
#else
  MetricCounter& dropped = metrics_counter("dnsbs.span.dropped", /*sched=*/true);
  const std::uint64_t before = dropped.value();
  nest_spans(20);  // span stack holds 16: the innermost 4 frames overflow
  EXPECT_EQ(dropped.value(), before + 4);
  nest_spans(16);  // exactly at the limit: nothing dropped
  EXPECT_EQ(dropped.value(), before + 4);
#endif
}

// ---- trace timelines -----------------------------------------------------

std::size_t count_all(const std::string& s, const std::string& needle) {
  std::size_t n = 0;
  for (auto p = s.find(needle); p != std::string::npos; p = s.find(needle, p + needle.size())) {
    ++n;
  }
  return n;
}

TEST(TraceTimeline, ExportIsBalancedPerThreadWithMonotoneTs) {
#if !DNSBS_METRICS_ENABLED
  GTEST_SKIP() << "built with -DDNSBS_METRICS=OFF";
#else
  EXPECT_FALSE(trace_enabled());  // capture is strictly opt-in
  trace_start();
  {
    DNSBS_SPAN("outer");
    { DNSBS_SPAN("inner"); }
  }
  std::thread([] { DNSBS_SPAN("worker"); }).join();
  trace_stop();
  const std::string json = trace_export_json();

  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u) << json;
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"thread_name\",\"ph\":\"M\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"outer\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"worker\""), std::string::npos) << json;
  EXPECT_EQ(trace_dropped(), 0u);
  EXPECT_GE(trace_event_count(), 6u);  // 3 spans = 3 B + 3 E

  // One event per line: walk them checking per-tid B/E balance and
  // per-tid timestamp monotonicity (what Perfetto requires to load).
  std::map<int, int> depth;
  std::map<int, double> last_ts;
  std::istringstream lines(json);
  std::string line;
  while (std::getline(lines, line)) {
    const auto ph = line.find("\"ph\":\"");
    if (ph == std::string::npos) continue;
    const char phase = line[ph + 6];
    if (phase == 'M') continue;  // thread_name metadata
    const auto tid_pos = line.find("\"tid\":");
    ASSERT_NE(tid_pos, std::string::npos) << line;
    const int tid = std::atoi(line.c_str() + tid_pos + 6);
    const auto ts_pos = line.find("\"ts\":");
    ASSERT_NE(ts_pos, std::string::npos) << line;
    const double ts = std::atof(line.c_str() + ts_pos + 5);
    if (last_ts.count(tid)) {
      EXPECT_GE(ts, last_ts[tid]) << line;
    }
    last_ts[tid] = ts;
    if (phase == 'B') {
      ++depth[tid];
    } else {
      ASSERT_EQ(phase, 'E') << line;
      --depth[tid];
      EXPECT_GE(depth[tid], 0) << "orphan E on tid " << tid;
    }
  }
  EXPECT_GE(depth.size(), 2u);  // main + worker tracks
  for (const auto& [tid, d] : depth) EXPECT_EQ(d, 0) << "unbalanced tid " << tid;
#endif
}

TEST(TraceTimeline, StopMidSpanStillBalances) {
#if !DNSBS_METRICS_ENABLED
  GTEST_SKIP() << "built with -DDNSBS_METRICS=OFF";
#else
  trace_start();
  {
    DNSBS_SPAN("half_open");
    trace_stop();  // the span's end lands after the stop, yet is recorded
  }
  const std::string json = trace_export_json();
  EXPECT_EQ(count_all(json, "\"ph\":\"B\""), count_all(json, "\"ph\":\"E\"")) << json;
  EXPECT_NE(json.find("\"name\":\"half_open\""), std::string::npos) << json;
#endif
}

TEST(TraceTimeline, DropOnFullKeepsBalancedPrefix) {
#if !DNSBS_METRICS_ENABLED
  GTEST_SKIP() << "built with -DDNSBS_METRICS=OFF";
#else
  // Ring capacity is fixed at ring creation, so exercise the tiny ring on
  // a fresh thread (existing threads keep their original capacity).
  trace_start(4);
  std::thread([] {
    for (int i = 0; i < 8; ++i) {
      DNSBS_SPAN("tiny");
    }
  }).join();
  trace_stop();
  // Two spans fit (B+E each); the other six begins are rejected, and a
  // rejected begin suppresses its end, keeping the capture balanced.
  EXPECT_EQ(trace_dropped(), 6u);
  const std::string json = trace_export_json();
  EXPECT_EQ(count_all(json, "\"ph\":\"B\""), 2u) << json;
  EXPECT_EQ(count_all(json, "\"ph\":\"E\""), 2u) << json;
#endif
}

// ---- snapshot algebra & serializers (always compiled) --------------------

MetricValue make_counter(std::string name, std::uint64_t v, bool sched = false) {
  MetricValue m;
  m.name = std::move(name);
  m.kind = MetricKind::kCounter;
  m.sched = sched;
  m.count = v;
  return m;
}

MetricValue make_gauge(std::string name, std::int64_t v) {
  MetricValue m;
  m.name = std::move(name);
  m.kind = MetricKind::kGauge;
  m.gauge = v;
  return m;
}

MetricValue make_histogram(std::string name) {
  MetricValue m;
  m.name = std::move(name);
  m.kind = MetricKind::kHistogram;
  m.buckets.assign(kHistogramBuckets, 0);
  m.buckets[0] = 2;  // two zero-valued samples
  m.buckets[3] = 1;  // one sample in [4, 7]
  m.count = 3;
  m.sum = 5;
  return m;
}

TEST(MetricsSnapshotAlgebra, DeterministicViewDropsSchedAndHistograms) {
  MetricsSnapshot snap;
  snap.values = {make_counter("a.det", 1), make_counter("b.sched", 2, /*sched=*/true),
                 make_gauge("c.gauge", 3), make_histogram("d.hist")};
  const MetricsSnapshot det = snap.deterministic_view();
  ASSERT_EQ(det.values.size(), 2u);
  EXPECT_EQ(det.values[0].name, "a.det");
  EXPECT_EQ(det.values[1].name, "c.gauge");
}

TEST(MetricsSnapshotAlgebra, DeltaSubtractsCountersKeepsGauges) {
  MetricsSnapshot before;
  before.values = {make_counter("a.count", 10), make_gauge("b.gauge", 100)};
  MetricsSnapshot after;
  after.values = {make_counter("a.count", 25), make_gauge("b.gauge", 7),
                  make_counter("c.fresh", 4)};
  const MetricsSnapshot d = MetricsSnapshot::delta(before, after);
  EXPECT_EQ(d.scalar("a.count"), 15);  // counters: after - before
  EXPECT_EQ(d.scalar("b.gauge"), 7);   // gauges are levels: keep `after`
  EXPECT_EQ(d.scalar("c.fresh"), 4);   // new series pass through

  // A reset between snapshots (after < before) clamps at 0, never wraps.
  const MetricsSnapshot clamped = MetricsSnapshot::delta(after, before);
  EXPECT_EQ(clamped.scalar("a.count"), 0);
}

TEST(MetricsSerialization, JsonShape) {
  MetricsSnapshot snap;
  snap.values = {make_counter("a.counter", 7), make_gauge("b.gauge", -3),
                 make_histogram("c.hist")};
  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"name\": \"a.counter\", \"kind\": \"counter\", \"value\": 7"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"name\": \"b.gauge\", \"kind\": \"gauge\", \"value\": -3"),
            std::string::npos)
      << json;
  // Sparse [upper_bound, count] bucket pairs: value 0 -> bound 0, bucket 3
  // covers [4, 7] -> bound 7.
  EXPECT_NE(json.find("\"count\": 3, \"sum\": 5, \"buckets\": [[0, 2], [7, 1]]"),
            std::string::npos)
      << json;
}

TEST(MetricsSerialization, PrometheusShape) {
  MetricsSnapshot snap;
  snap.values = {make_counter("dnsbs.parse.lines", 42), make_histogram("c.hist_ns")};
  const std::string prom = snap.to_prometheus();
  EXPECT_NE(prom.find("# TYPE dnsbs_parse_lines counter\ndnsbs_parse_lines 42\n"),
            std::string::npos)
      << prom;
  EXPECT_EQ(prom.find("# SCHED"), std::string::npos) << prom;  // nothing sched here
  // Histogram buckets are cumulative and close with +Inf/_sum/_count.
  EXPECT_NE(prom.find("c_hist_ns_bucket{le=\"0\"} 2\n"), std::string::npos) << prom;
  EXPECT_NE(prom.find("c_hist_ns_bucket{le=\"7\"} 3\n"), std::string::npos) << prom;
  EXPECT_NE(prom.find("c_hist_ns_bucket{le=\"+Inf\"} 3\n"), std::string::npos) << prom;
  EXPECT_NE(prom.find("c_hist_ns_sum 5\n"), std::string::npos) << prom;
  EXPECT_NE(prom.find("c_hist_ns_count 3\n"), std::string::npos) << prom;
}

TEST(MetricsSerialization, PrometheusMarksSchedSeries) {
  // The `# SCHED` marker after `# TYPE` is what lets scrape-diff tooling
  // strip thread-count-dependent series without a name allowlist.
  MetricsSnapshot snap;
  snap.values = {make_counter("a.det", 1), make_counter("b.sched", 2, /*sched=*/true)};
  const std::string prom = snap.to_prometheus();
  EXPECT_NE(prom.find("# TYPE b_sched counter\n# SCHED b_sched\nb_sched 2\n"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("# TYPE a_det counter\na_det 1\n"), std::string::npos) << prom;
}

// ---- logger rework -------------------------------------------------------

TEST(LogSink, ComposedLineCarriesLevelTimestampsThreadAndTag) {
  std::vector<std::string> lines;
  set_log_sink([&lines](LogLevel, std::string_view line) { lines.emplace_back(line); });
  // Pin the clocks so the whole line is exact: 2015-05-18T09:30:00.123Z
  // wall time, 12.345678s of uptime.
  set_log_clock([] { return LogTimestamps{1431941400123, 12345678000ULL}; });
  const LogLevel old_level = log_level();
  set_log_level(LogLevel::kInfo);
  set_thread_name("metrics-test");

  log_info("unit", "hello metrics");
  log_debug("unit", "below threshold");  // kDebug < kInfo: dropped

  set_log_level(old_level);
  set_log_sink(nullptr);
  set_log_clock(nullptr);
  set_thread_name("");

  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0],
            "INFO  2015-05-18T09:30:00.123Z +12.345678s "
            "[metrics-test] [unit] hello metrics\n");
}

TEST(LogSink, RealClockProducesPlausibleStamps) {
  std::vector<std::string> lines;
  set_log_sink([&lines](LogLevel, std::string_view line) { lines.emplace_back(line); });
  const LogLevel old_level = log_level();
  set_log_level(LogLevel::kInfo);
  log_info("unit", "real clock");
  set_log_level(old_level);
  set_log_sink(nullptr);
  ASSERT_EQ(lines.size(), 1u);
  // "INFO 20xx-..-..T..Z +N.NNNNNNs [" — wall stamp is this century and the
  // monotonic stamp is a small uptime, not a raw epoch reading.
  EXPECT_NE(lines[0].find("INFO  20"), std::string::npos) << lines[0];
  EXPECT_NE(lines[0].find("Z +"), std::string::npos) << lines[0];
  const auto plus = lines[0].find("Z +");
  const auto s_unit = lines[0].find("s [", plus);
  ASSERT_NE(s_unit, std::string::npos) << lines[0];
  const std::string mono = lines[0].substr(plus + 3, s_unit - plus - 3);
  EXPECT_LT(std::stod(mono), 3600.0) << lines[0];  // test suites run in minutes
}

TEST(LogSink, UnnamedThreadsGetStableIds) {
  std::string first;
  std::string second;
  std::thread([&first] { first = thread_name(); }).join();
  std::thread([&second] { second = thread_name(); }).join();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first[0], 't');
  EXPECT_NE(first, second);  // ids are per-thread, never recycled mid-run
}

}  // namespace
}  // namespace dnsbs::util
