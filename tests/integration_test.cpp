// End-to-end integration: synthetic world -> backscatter -> sensor ->
// curation -> training -> classification, checking the paper's headline
// qualitative results at test scale.
#include <gtest/gtest.h>

#include <sstream>

#include "core/sensor.hpp"
#include "labeling/curator.hpp"
#include "labeling/strategies.hpp"
#include "ml/crossval.hpp"
#include "ml/forest.hpp"
#include "sim/scenario.hpp"

namespace dnsbs {
namespace {

struct Pipeline {
  explicit Pipeline(std::uint64_t seed, double scale = 0.12)
      : scenario(sim::jp_ditl_config(seed, scale)),
        darknet(labeling::default_darknet_prefixes()) {
    scenario.engine().set_traffic_observer(&darknet);
    scenario.run();
    core::Sensor sensor({}, scenario.plan().as_db(), scenario.plan().geo_db(),
                        scenario.naming());
    sensor.ingest_all(scenario.authority(0).records());
    features = sensor.extract_features();
  }

  sim::Scenario scenario;
  labeling::Darknet darknet;
  std::vector<core::FeatureVector> features;
};

TEST(Integration, SensorFindsInjectedActivity) {
  Pipeline p(1001);
  ASSERT_GT(p.features.size(), 50u);
  // Every interesting originator the sensor found must be an activity we
  // injected (no phantom originators).
  for (const auto& fv : p.features) {
    EXPECT_TRUE(p.scenario.truth().contains(fv.originator))
        << fv.originator.to_string();
  }
  // Footprints are sorted descending and all above the floor.
  for (std::size_t i = 1; i < p.features.size(); ++i) {
    EXPECT_GE(p.features[i - 1].footprint, p.features[i].footprint);
  }
  EXPECT_GE(p.features.back().footprint, 20u);
}

TEST(Integration, StaticFeatureShapesMatchPaperFigure3) {
  Pipeline p(1002);
  // Mean static features per true class.
  std::array<core::StaticFeatures, core::kAppClassCount> sums{};
  std::array<std::size_t, core::kAppClassCount> counts{};
  for (const auto& fv : p.features) {
    const auto cls = static_cast<std::size_t>(p.scenario.truth().at(fv.originator));
    for (std::size_t f = 0; f < core::kQuerierCategoryCount; ++f) {
      sums[cls][f] += fv.statics[f];
    }
    ++counts[cls];
  }
  const auto mean_of = [&](core::AppClass cls, core::QuerierCategory cat) {
    const auto c = static_cast<std::size_t>(cls);
    return counts[c] == 0 ? 0.0
                          : sums[c][static_cast<std::size_t>(cat)] / counts[c];
  };
  // Spam and mail backscatter is mail-server dominated (Fig. 3).
  ASSERT_GT(counts[static_cast<std::size_t>(core::AppClass::kSpam)], 0u);
  EXPECT_GT(mean_of(core::AppClass::kSpam, core::QuerierCategory::kMail), 0.4);
  // Scanners trigger resolvers/nxdomain/home, not mail.
  ASSERT_GT(counts[static_cast<std::size_t>(core::AppClass::kScan)], 0u);
  EXPECT_LT(mean_of(core::AppClass::kScan, core::QuerierCategory::kMail), 0.2);
  const double scan_infra =
      mean_of(core::AppClass::kScan, core::QuerierCategory::kNs) +
      mean_of(core::AppClass::kScan, core::QuerierCategory::kHome) +
      mean_of(core::AppClass::kScan, core::QuerierCategory::kNxDomain) +
      mean_of(core::AppClass::kScan, core::QuerierCategory::kUnreach) +
      mean_of(core::AppClass::kScan, core::QuerierCategory::kFw);
  EXPECT_GT(scan_infra, 0.5);
}

TEST(Integration, RandomForestBeatsChanceByFar) {
  Pipeline p(1003);
  util::Rng rng(7);
  const auto blacklist = labeling::BlacklistSet::build(p.scenario.population(), {}, rng);
  labeling::Curator curator(p.scenario, blacklist, p.darknet, {}, 8);
  const auto gt = curator.curate(p.features);
  ASSERT_GT(gt.size(), 80u);

  const auto [data, used] = gt.join(p.features);
  const auto summary = ml::cross_validate(
      data,
      [](std::uint64_t seed) {
        ml::ForestConfig fc;
        fc.n_trees = 50;
        fc.seed = seed;
        return std::unique_ptr<ml::Classifier>(std::make_unique<ml::RandomForest>(fc));
      },
      {.train_fraction = 0.6, .repetitions = 8, .seed = 99});
  // Paper: 0.6-0.8 accuracy over 12 classes (chance ~0.08).  Insist on a
  // comfortable multiple of chance at test scale.
  EXPECT_GT(summary.mean.accuracy, 0.5);
  EXPECT_GT(summary.mean.f1, 0.4);
}

TEST(Integration, DarknetConfirmsDetectedScanners) {
  Pipeline p(1004);
  std::size_t scanners_detected = 0, confirmed = 0;
  for (const auto& fv : p.features) {
    if (p.scenario.truth().at(fv.originator) != core::AppClass::kScan) continue;
    ++scanners_detected;
    confirmed += p.darknet.confirms_scanner(fv.originator, 4);
  }
  ASSERT_GT(scanners_detected, 3u);
  // Random scanning must leave correlated darknet evidence.
  EXPECT_GT(confirmed * 2, scanners_detected);
}

TEST(Integration, QueryLogSerializationRoundTripsThroughSensor) {
  Pipeline p(1005, 0.06);
  // Write the authority log out and re-ingest from text.
  std::stringstream buffer;
  dns::QueryLogWriter writer(buffer);
  for (const auto& r : p.scenario.authority(0).records()) writer.write(r);

  core::Sensor replay({}, p.scenario.plan().as_db(), p.scenario.plan().geo_db(),
                      p.scenario.naming());
  dns::QueryLogReader reader(buffer);
  while (auto record = reader.next()) replay.ingest(*record);
  EXPECT_EQ(reader.skipped(), 0u);

  const auto replayed = replay.extract_features();
  ASSERT_EQ(replayed.size(), p.features.size());
  for (std::size_t i = 0; i < replayed.size(); ++i) {
    EXPECT_EQ(replayed[i].originator, p.features[i].originator);
    EXPECT_EQ(replayed[i].footprint, p.features[i].footprint);
  }
}

TEST(Integration, RootViewIsAttenuatedButConsistent) {
  sim::Scenario scenario(sim::jp_ditl_config(1006, 0.12));
  scenario.run();
  // authority 0 = national, 1 = B-Root, 2 = M-Root.
  const auto national = scenario.authority(0).records().size();
  const auto b_root = scenario.authority(1).records().size();
  const auto m_root = scenario.authority(2).records().size();
  EXPECT_GT(national, b_root * 5);
  EXPECT_GT(national, m_root * 5);
  EXPECT_GT(b_root, 0u);
  EXPECT_GT(m_root, 0u);
}

TEST(Integration, TrainingStrategiesRankAsInPaper) {
  // Multi-window world: daily retraining must beat automatic label
  // growing on later windows (Fig. 7's qualitative ranking).
  sim::ScenarioConfig cfg = sim::b_multi_year_config(1007, 8, 0.08);
  sim::Scenario scenario(std::move(cfg));
  labeling::Darknet darknet(labeling::default_darknet_prefixes());
  scenario.engine().set_traffic_observer(&darknet);

  std::vector<labeling::WindowObservation> windows;
  for (int w = 0; w < 8; ++w) {
    const auto t0 = util::SimTime::weeks(w);
    const auto t1 = util::SimTime::weeks(w + 1);
    scenario.run_window(t0, t1);
    core::Sensor sensor({}, scenario.plan().as_db(), scenario.plan().geo_db(),
                        scenario.naming());
    sensor.ingest_all(scenario.authority(0).records());
    scenario.authority(0).clear_records();
    labeling::WindowObservation obs;
    obs.start = t0;
    obs.end = t1;
    obs.features = sensor.extract_features();
    windows.push_back(std::move(obs));
  }

  util::Rng rng(3);
  const auto blacklist = labeling::BlacklistSet::build(scenario.population(), {}, rng);
  labeling::CuratorConfig cc;
  cc.max_per_class = 40;
  labeling::Curator curator(scenario, blacklist, darknet, cc, 4);
  const auto labels = curator.curate(windows[1].features);
  ASSERT_GT(labels.size(), 30u);

  const auto once = labeling::evaluate_train_once(windows, 1, labels);
  const auto daily = labeling::evaluate_train_daily(windows, labels);
  const auto grown =
      labeling::evaluate_auto_grow(windows, 1, labels, {}, &scenario.truth());
  ASSERT_EQ(daily.size(), windows.size());

  // Claim 1 (Fig. 7 ranking): retraining on fresh features sustains
  // accuracy at least as well as never retraining, on late windows.
  double once_late = 0, daily_late = 0;
  int late_n = 0;
  for (std::size_t w = 5; w < windows.size(); ++w) {
    once_late += once[w].f1;
    daily_late += daily[w].f1;
    ++late_n;
  }
  EXPECT_GE(daily_late / late_n + 0.05, once_late / late_n);

  // Claim 2 (§V-D): the auto-grown label set accumulates error — labels
  // several windows after curation are worse than right after it.
  double early_err = -1, late_err = -1;
  for (const auto& p : grown) {
    if (p.window == 2) early_err = p.label_error;
    if (p.window + 1 == windows.size()) late_err = p.label_error;
  }
  ASSERT_GE(early_err, 0.0);
  EXPECT_GT(late_err, early_err);
}

}  // namespace
}  // namespace dnsbs
