#include <gtest/gtest.h>

#include <sstream>

#include "util/table.hpp"
#include "util/time.hpp"

namespace dnsbs::util {
namespace {

TEST(SimTime, UnitConstructors) {
  EXPECT_EQ(SimTime::minutes(2).secs(), 120);
  EXPECT_EQ(SimTime::hours(1).secs(), 3600);
  EXPECT_EQ(SimTime::days(1).secs(), 86400);
  EXPECT_EQ(SimTime::weeks(1).secs(), 604800);
}

TEST(SimTime, Indices) {
  const SimTime t = SimTime::seconds(86400 + 3600 * 2 + 601);
  EXPECT_EQ(t.day_index(), 1);
  EXPECT_EQ(t.hour_index(), 26);
  EXPECT_EQ(t.ten_minute_index(), (86400 + 7200 + 601) / 600);
  EXPECT_EQ(t.minute_index(), (86400 + 7200 + 601) / 60);
}

TEST(SimTime, HourOfDayWraps) {
  EXPECT_DOUBLE_EQ(SimTime::hours(25).hour_of_day(), 1.0);
  EXPECT_DOUBLE_EQ(SimTime::seconds(0).hour_of_day(), 0.0);
}

TEST(SimTime, Arithmetic) {
  SimTime t = SimTime::hours(1);
  t += SimTime::minutes(30);
  EXPECT_EQ(t.secs(), 5400);
  EXPECT_EQ((t - SimTime::minutes(30)).secs(), 3600);
  EXPECT_LT(SimTime::seconds(1), SimTime::seconds(2));
}

TEST(SimTime, ToString) {
  EXPECT_EQ(SimTime::seconds(86400 + 3725).to_string(), "d1 01:02:05");
}

TEST(TableWriter, AsciiAlignment) {
  TableWriter t("demo");
  t.columns({"name", "value"});
  t.row({"a", "1"});
  t.row({"longer", "22"});
  const std::string out = t.to_ascii();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TableWriter, CsvEscaping) {
  TableWriter t;
  t.columns({"a", "b"});
  t.row({"x,y", "quo\"te"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"quo\"\"te\""), std::string::npos);
}

TEST(TableWriter, PrintsToStream) {
  TableWriter t;
  t.columns({"c"});
  t.row({"v"});
  std::ostringstream os;
  t.print(os);
  EXPECT_FALSE(os.str().empty());
}

TEST(Fixed, Digits) {
  EXPECT_EQ(fixed(0.785, 2), "0.79");
  EXPECT_EQ(fixed(1.0, 3), "1.000");
}

TEST(WithCommas, Grouping) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(47201), "47,201");
  EXPECT_EQ(with_commas(1234567890), "1,234,567,890");
}

}  // namespace
}  // namespace dnsbs::util
