// Unit tests for the training-over-time strategy evaluators on synthetic
// window observations (no simulator in the loop: windows are fabricated,
// so each strategy's mechanics can be checked precisely).
#include <gtest/gtest.h>

#include "labeling/strategies.hpp"
#include "util/rng.hpp"

namespace dnsbs::labeling {
namespace {

using net::IPv4Addr;

/// Builds a window where each labeled originator appears with a feature
/// vector characteristic of its class (class c -> statics[c] high), plus
/// optional feature noise.
WindowObservation make_window(const std::vector<std::pair<std::uint32_t, core::AppClass>>&
                                  members,
                              double noise, std::uint64_t seed) {
  util::Rng rng(seed);
  WindowObservation window;
  for (const auto& [addr, cls] : members) {
    core::FeatureVector fv;
    fv.originator = IPv4Addr(addr);
    fv.footprint = 50;
    // Deterministic per-class signature on two static dims + noise.
    const auto c = static_cast<std::size_t>(cls);
    fv.statics[c % core::kQuerierCategoryCount] = 0.8 + rng.normal(0, noise);
    fv.dynamics[0] = static_cast<double>(c) + rng.normal(0, noise * 4);
    window.features.push_back(std::move(fv));
  }
  return window;
}

std::vector<std::pair<std::uint32_t, core::AppClass>> standard_members() {
  std::vector<std::pair<std::uint32_t, core::AppClass>> members;
  std::uint32_t addr = 1;
  for (const core::AppClass cls :
       {core::AppClass::kSpam, core::AppClass::kScan, core::AppClass::kMail}) {
    for (int i = 0; i < 8; ++i) members.emplace_back(addr++, cls);
  }
  return members;
}

GroundTruth labels_for(const std::vector<std::pair<std::uint32_t, core::AppClass>>&
                           members) {
  GroundTruth gt;
  for (const auto& [addr, cls] : members) gt.add(IPv4Addr(addr), cls);
  return gt;
}

TEST(TrainOnce, PerfectOnStableWorld) {
  const auto members = standard_members();
  const auto labels = labels_for(members);
  std::vector<WindowObservation> windows;
  for (int w = 0; w < 4; ++w) windows.push_back(make_window(members, 0.01, w));
  const auto points = evaluate_train_once(windows, 0, labels);
  ASSERT_EQ(points.size(), 4u);
  for (const auto& p : points) {
    EXPECT_TRUE(p.trained);
    EXPECT_GT(p.f1, 0.95) << "window " << p.window;
    EXPECT_EQ(p.examples, members.size());
  }
}

TEST(TrainOnce, UntrainableWhenLabelsMissing) {
  std::vector<WindowObservation> windows(3);
  const GroundTruth empty;
  const auto points = evaluate_train_once(windows, 0, empty);
  ASSERT_EQ(points.size(), 3u);
  for (const auto& p : points) EXPECT_FALSE(p.trained);
}

TEST(TrainOnce, CurationWindowOutOfRangeIsEmpty) {
  std::vector<WindowObservation> windows(2);
  const auto points = evaluate_train_once(windows, 9, GroundTruth{});
  EXPECT_TRUE(points.empty());
}

TEST(TrainOnce, DegradesWhenFeaturesShift) {
  const auto members = standard_members();
  const auto labels = labels_for(members);
  std::vector<WindowObservation> windows;
  windows.push_back(make_window(members, 0.01, 1));
  // Later window: the class signatures move (features permuted).
  WindowObservation shifted = make_window(members, 0.01, 2);
  for (auto& fv : shifted.features) {
    std::rotate(fv.statics.begin(), fv.statics.begin() + 3, fv.statics.end());
    fv.dynamics[0] += 7.0;
  }
  windows.push_back(std::move(shifted));
  const auto points = evaluate_train_once(windows, 0, labels);
  EXPECT_GT(points[0].f1, 0.95);
  EXPECT_LT(points[1].f1, points[0].f1 - 0.2);
}

TEST(TrainDaily, TracksShiftingFeatures) {
  const auto members = standard_members();
  const auto labels = labels_for(members);
  std::vector<WindowObservation> windows;
  for (int w = 0; w < 3; ++w) {
    WindowObservation window = make_window(members, 0.01, 10 + w);
    // Different shift every window; retraining must absorb it.
    for (auto& fv : window.features) fv.dynamics[0] += w * 5.0;
    windows.push_back(std::move(window));
  }
  const auto points = evaluate_train_daily(windows, labels);
  for (const auto& p : points) {
    EXPECT_TRUE(p.trained);
    EXPECT_GT(p.f1, 0.95) << "window " << p.window;
  }
}

TEST(TrainDaily, UntrainedWindowsReportExamples) {
  const auto members = standard_members();
  const auto labels = labels_for(members);
  std::vector<WindowObservation> windows;
  windows.push_back(make_window(members, 0.01, 5));
  windows.push_back(WindowObservation{});  // nothing re-appears
  const auto points = evaluate_train_daily(windows, labels);
  EXPECT_TRUE(points[0].trained);
  EXPECT_FALSE(points[1].trained);
  EXPECT_EQ(points[1].examples, 0u);
}

TEST(AutoGrow, PerfectClassifierSustains) {
  const auto members = standard_members();
  const auto labels = labels_for(members);
  std::unordered_map<IPv4Addr, core::AppClass> truth;
  for (const auto& [addr, cls] : members) truth[IPv4Addr(addr)] = cls;
  std::vector<WindowObservation> windows;
  for (int w = 0; w < 5; ++w) windows.push_back(make_window(members, 0.01, 20 + w));
  const auto points = evaluate_auto_grow(windows, 0, labels, {}, &truth);
  // With near-zero noise, grown labels stay correct.
  for (std::size_t w = 1; w < points.size(); ++w) {
    EXPECT_LT(points[w].label_error, 0.05) << "window " << w;
    EXPECT_GT(points[w].f1, 0.9) << "window " << w;
  }
}

TEST(AutoGrow, NoisyWorldAccumulatesLabelError) {
  const auto members = standard_members();
  const auto labels = labels_for(members);
  std::unordered_map<IPv4Addr, core::AppClass> truth;
  for (const auto& [addr, cls] : members) truth[IPv4Addr(addr)] = cls;
  std::vector<WindowObservation> windows;
  for (int w = 0; w < 8; ++w) {
    windows.push_back(make_window(members, 0.5, 40 + w));  // heavy feature noise
  }
  const auto points = evaluate_auto_grow(windows, 0, labels, {}, &truth);
  // Error after several growth steps exceeds the first grown window's.
  double early = -1, late = -1;
  for (const auto& p : points) {
    if (p.window == 1) early = p.label_error;
    if (p.window == 7) late = p.label_error;
  }
  ASSERT_GE(early, 0.0);
  EXPECT_GT(late, early);
}

TEST(ReappearingCounts, CountsPerClass) {
  const auto members = standard_members();
  const auto labels = labels_for(members);
  const auto window = make_window(members, 0.01, 3);
  const auto counts = reappearing_counts(window, labels);
  EXPECT_EQ(counts[static_cast<std::size_t>(core::AppClass::kSpam)], 8u);
  EXPECT_EQ(counts[static_cast<std::size_t>(core::AppClass::kScan)], 8u);
  EXPECT_EQ(counts[static_cast<std::size_t>(core::AppClass::kMail)], 8u);
  EXPECT_EQ(counts[static_cast<std::size_t>(core::AppClass::kCdn)], 0u);
}

}  // namespace
}  // namespace dnsbs::labeling
