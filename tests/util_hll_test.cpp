// Mergeable-sketch contract tests: HyperLogLog estimate quality against a
// brute-force oracle, the merge algebra federation depends on
// (commutative, associative, idempotent), serde round-trips in both
// representations, and the exact-until-threshold CardinalityEstimator
// wrapper's promotion semantics.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "util/binio.hpp"
#include "util/hll.hpp"
#include "util/rng.hpp"

namespace dnsbs {
namespace {

using util::BinaryReader;
using util::BinaryWriter;
using util::CardinalityEstimator;
using util::HllSketch;

std::string serialize(const HllSketch& sketch) {
  std::ostringstream out;
  BinaryWriter writer(out);
  sketch.save(writer);
  return out.str();
}

std::string serialize(const CardinalityEstimator& est) {
  std::ostringstream out;
  BinaryWriter writer(out);
  est.save(writer);
  return out.str();
}

/// Distinct pseudo-random keys (deterministic; values are unique with
/// overwhelming probability at these sizes, and the oracle set below
/// verifies that assumption instead of trusting it).
std::vector<std::uint64_t> make_keys(std::uint64_t seed, std::size_t n) {
  util::Rng rng(seed);
  std::vector<std::uint64_t> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) keys.push_back(rng.next());
  return keys;
}

TEST(HllSketch, EmptySketchEstimatesZero) {
  HllSketch sketch;
  EXPECT_TRUE(sketch.empty());
  EXPECT_EQ(sketch.estimate_u64(), 0u);
  EXPECT_EQ(sketch.memory_bytes(), 0u);
}

TEST(HllSketch, SmallCardinalitiesAreNearExact) {
  // Linear counting dominates while most registers are zero; tiny sets
  // should come back essentially exact.
  for (const std::size_t n : {1u, 2u, 10u, 100u}) {
    HllSketch sketch;
    const auto keys = make_keys(0x5eed0 + n, n);
    std::set<std::uint64_t> oracle(keys.begin(), keys.end());
    for (const auto k : keys) sketch.add(k);
    EXPECT_EQ(sketch.estimate_u64(), oracle.size()) << "n=" << n;
  }
}

TEST(HllSketch, RelativeErrorWithinTwoPercentAtDefaultPrecision) {
  // Default precision 12 -> 4096 registers -> ~1.6% standard error.  The
  // key streams are deterministic, so these are fixed draws, not flaky
  // statistics; the 2% bound is the documented accuracy contract for the
  // sketch-mode pipeline.
  for (const std::size_t n : {5'000u, 20'000u, 100'000u, 400'000u}) {
    HllSketch sketch;
    const auto keys = make_keys(0xca58 + n, n);
    std::set<std::uint64_t> oracle(keys.begin(), keys.end());
    for (const auto k : keys) sketch.add(k);
    const double truth = static_cast<double>(oracle.size());
    const double err = std::abs(sketch.estimate() - truth) / truth;
    EXPECT_LE(err, 0.02) << "n=" << n << " estimate=" << sketch.estimate();
  }
}

TEST(HllSketch, AddingDuplicatesIsIdempotent) {
  HllSketch sketch;
  const auto keys = make_keys(7, 1000);
  for (const auto k : keys) sketch.add(k);
  const std::string before = serialize(sketch);
  for (const auto k : keys) sketch.add(k);
  for (const auto k : keys) sketch.add(k);
  EXPECT_EQ(serialize(sketch), before);
}

TEST(HllSketch, MergeIsCommutative) {
  // Both sparse/sparse and dense/sparse pairings must commute, including
  // the representation (serialized bytes), not just the estimate.
  const struct {
    std::size_t na, nb;
  } cases[] = {{50, 80}, {50, 5000}, {5000, 80}, {20000, 30000}};
  for (const auto& c : cases) {
    HllSketch ab, ba, a, b;
    const auto ka = make_keys(11, c.na);
    const auto kb = make_keys(22, c.nb);
    for (const auto k : ka) {
      a.add(k);
      ab.add(k);
    }
    for (const auto k : kb) {
      b.add(k);
      ba.add(k);
    }
    ASSERT_TRUE(ab.merge_from(b));
    ASSERT_TRUE(ba.merge_from(a));
    EXPECT_EQ(serialize(ab), serialize(ba)) << c.na << "/" << c.nb;
    EXPECT_EQ(ab.estimate(), ba.estimate());
  }
}

TEST(HllSketch, MergeIsAssociative) {
  const auto ka = make_keys(31, 900);
  const auto kb = make_keys(32, 4000);
  const auto kc = make_keys(33, 150);
  HllSketch a1, b1, c1, a2, b2, c2;
  for (const auto k : ka) {
    a1.add(k);
    a2.add(k);
  }
  for (const auto k : kb) {
    b1.add(k);
    b2.add(k);
  }
  for (const auto k : kc) {
    c1.add(k);
    c2.add(k);
  }
  // (a ∪ b) ∪ c
  ASSERT_TRUE(a1.merge_from(b1));
  ASSERT_TRUE(a1.merge_from(c1));
  // a ∪ (b ∪ c)
  ASSERT_TRUE(b2.merge_from(c2));
  ASSERT_TRUE(a2.merge_from(b2));
  EXPECT_EQ(serialize(a1), serialize(a2));
}

TEST(HllSketch, MergeIsIdempotent) {
  HllSketch a, b;
  const auto keys = make_keys(44, 3000);
  for (const auto k : keys) {
    a.add(k);
    b.add(k);
  }
  const std::string before = serialize(a);
  ASSERT_TRUE(a.merge_from(b));
  EXPECT_EQ(serialize(a), before);
  ASSERT_TRUE(a.merge_from(a));
  EXPECT_EQ(serialize(a), before);
}

TEST(HllSketch, MergeEqualsUnionSketch) {
  // Registers are a pure function of the key set: merging shard sketches
  // must reproduce exactly the sketch of the union stream.
  const auto ka = make_keys(55, 12000);
  const auto kb = make_keys(56, 7000);
  HllSketch a, b, whole;
  for (const auto k : ka) {
    a.add(k);
    whole.add(k);
  }
  for (const auto k : kb) {
    b.add(k);
    whole.add(k);
  }
  ASSERT_TRUE(a.merge_from(b));
  EXPECT_EQ(serialize(a), serialize(whole));
  EXPECT_EQ(a.estimate(), whole.estimate());
}

TEST(HllSketch, MergeRejectsPrecisionMismatch) {
  HllSketch a(12), b(10);
  b.add(1);
  const std::string before = serialize(a);
  EXPECT_FALSE(a.merge_from(b));
  EXPECT_EQ(serialize(a), before);
}

TEST(HllSketch, SerdeRoundTripsBothForms) {
  for (const std::size_t n : {0u, 1u, 200u, 50'000u}) {
    HllSketch sketch(10);
    for (const auto k : make_keys(0xf0 + n, n)) sketch.add(k);
    const std::string bytes = serialize(sketch);
    std::istringstream in(bytes);
    BinaryReader reader(in);
    HllSketch restored(10);
    ASSERT_TRUE(restored.load(reader)) << "n=" << n;
    EXPECT_EQ(restored.dense(), sketch.dense());
    EXPECT_EQ(restored.estimate(), sketch.estimate());
    // Round-trip is byte-stable: save(load(save(x))) == save(x).
    EXPECT_EQ(serialize(restored), bytes);
  }
}

TEST(HllSketch, LoadRejectsCorruptStreams) {
  HllSketch sketch;
  for (const auto k : make_keys(9, 500)) sketch.add(k);
  const std::string good = serialize(sketch);

  {  // Truncated payload.
    std::istringstream in(good.substr(0, good.size() / 2));
    BinaryReader reader(in);
    HllSketch restored;
    EXPECT_FALSE(restored.load(reader));
  }
  {  // Precision out of range.
    std::string bad = good;
    bad[0] = 3;
    std::istringstream in(bad);
    BinaryReader reader(in);
    HllSketch restored;
    EXPECT_FALSE(restored.load(reader));
  }
  {  // Unknown form byte.
    std::string bad = good;
    bad[1] = 7;
    std::istringstream in(bad);
    BinaryReader reader(in);
    HllSketch restored;
    EXPECT_FALSE(restored.load(reader));
  }
}

TEST(CardinalityEstimator, ExactBelowThreshold) {
  CardinalityEstimator est(/*promote_threshold=*/100);
  for (std::uint64_t k = 0; k < 100; ++k) est.add(k * 7919);
  EXPECT_FALSE(est.promoted());
  EXPECT_EQ(est.count(), 100u);
  // Duplicates never count and never trigger promotion.
  for (std::uint64_t k = 0; k < 100; ++k) est.add(k * 7919);
  EXPECT_FALSE(est.promoted());
  EXPECT_EQ(est.count(), 100u);
}

TEST(CardinalityEstimator, PromotesPastThresholdAndStaysAccurate) {
  CardinalityEstimator est(/*promote_threshold=*/1000);
  const std::size_t n = 50'000;
  const auto keys = make_keys(0xab, n);
  std::set<std::uint64_t> oracle(keys.begin(), keys.end());
  for (const auto k : keys) est.add(k);
  EXPECT_TRUE(est.promoted());
  const double truth = static_cast<double>(oracle.size());
  const double err =
      std::abs(static_cast<double>(est.count()) - truth) / truth;
  EXPECT_LE(err, 0.02);
}

TEST(CardinalityEstimator, PromotionTimingDoesNotChangeRegisters) {
  // Keys folded at promotion and keys added after must land in the same
  // registers as a sketch that saw the whole stream directly.
  const auto keys = make_keys(0xcd, 20'000);
  CardinalityEstimator est(/*promote_threshold=*/64);
  HllSketch direct;
  for (const auto k : keys) {
    est.add(k);
    direct.add(k);
  }
  ASSERT_TRUE(est.promoted());
  EXPECT_EQ(est.count(), direct.estimate_u64());
}

TEST(CardinalityEstimator, MergeCoversAllPromotionCombinations) {
  const auto ka = make_keys(0x111, 30);
  const auto kb = make_keys(0x222, 20'000);
  auto fill = [](CardinalityEstimator& est, const std::vector<std::uint64_t>& keys) {
    for (const auto k : keys) est.add(k);
  };

  {  // exact + exact, no overflow: stays exact with the union count.
    CardinalityEstimator a(100), b(100);
    fill(a, ka);
    for (std::uint64_t k = 0; k < 40; ++k) b.add(k * 104729);
    ASSERT_TRUE(a.merge_from(b));
    EXPECT_FALSE(a.promoted());
    EXPECT_EQ(a.count(), 70u);
  }
  {  // exact + promoted: self promotes, registers merge.
    CardinalityEstimator a(100), b(100);
    fill(a, ka);
    fill(b, kb);
    ASSERT_TRUE(b.promoted());
    ASSERT_TRUE(a.merge_from(b));
    EXPECT_TRUE(a.promoted());
    // Must equal the union sketch exactly (register purity).
    CardinalityEstimator whole(100);
    fill(whole, ka);
    fill(whole, kb);
    EXPECT_EQ(a.count(), whole.count());
  }
  {  // promoted + exact: other's keys fold into registers.
    CardinalityEstimator a(100), b(100);
    fill(a, kb);
    fill(b, ka);
    ASSERT_TRUE(a.merge_from(b));
    CardinalityEstimator whole(100);
    fill(whole, kb);
    fill(whole, ka);
    EXPECT_EQ(a.count(), whole.count());
  }
  {  // knob mismatch refuses.
    CardinalityEstimator a(100), b(200);
    EXPECT_FALSE(a.merge_from(b));
    CardinalityEstimator c(100, 12), d(100, 10);
    EXPECT_FALSE(c.merge_from(d));
  }
}

TEST(CardinalityEstimator, SerdeRoundTripsBothStates) {
  for (const std::size_t n : {50u, 5'000u}) {
    CardinalityEstimator est(/*promote_threshold=*/100);
    for (const auto k : make_keys(0x5e + n, n)) est.add(k);
    const std::string bytes = serialize(est);
    std::istringstream in(bytes);
    BinaryReader reader(in);
    CardinalityEstimator restored(/*promote_threshold=*/100);
    ASSERT_TRUE(restored.load(reader)) << "n=" << n;
    EXPECT_EQ(restored.promoted(), est.promoted());
    EXPECT_EQ(restored.count(), est.count());
    EXPECT_EQ(serialize(restored), bytes);
  }
}

TEST(CardinalityEstimator, LoadRejectsThresholdMismatch) {
  CardinalityEstimator est(/*promote_threshold=*/100);
  est.add(1);
  const std::string bytes = serialize(est);
  std::istringstream in(bytes);
  BinaryReader reader(in);
  CardinalityEstimator other(/*promote_threshold=*/200);
  EXPECT_FALSE(other.load(reader));
}

}  // namespace
}  // namespace dnsbs
