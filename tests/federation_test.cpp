// Federation contract tests: N originator-disjoint sensors merged by a
// coordinator must reproduce the single-sensor run byte-for-byte (exact
// mode) or within the sketch error bound (sketch mode); export/import
// round-trips through the state-file header; config mismatches refuse;
// and the sketch counters stay deterministic across thread counts.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <sstream>
#include <vector>

#include "core/federation.hpp"
#include "sim/scenario.hpp"
#include "util/binio.hpp"
#include "util/metrics.hpp"
#include "util/parallel.hpp"

namespace dnsbs {
namespace {

/// Restores the global thread override even when an assertion fails.
struct ThreadCountGuard {
  ~ThreadCountGuard() { util::set_thread_count(0); }
};

core::SensorConfig sketch_config() {
  core::SensorConfig sc;
  sc.querier_state = core::QuerierStateMode::kSketch;
  return sc;
}

/// Bitwise feature-row equality (doubles compared exactly: the federation
/// contract is byte-identity, not tolerance).
void expect_rows_identical(const std::vector<core::FeatureVector>& a,
                           const std::vector<core::FeatureVector>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].originator, b[i].originator) << "row " << i;
    EXPECT_EQ(a[i].footprint, b[i].footprint) << "row " << i;
    EXPECT_EQ(a[i].row(), b[i].row()) << "row " << i;
  }
}

class FederationTest : public ::testing::Test {
 protected:
  FederationTest() : scenario_(sim::jp_ditl_config(71, 0.05)) {
    scenario_.run();
  }

  core::Sensor make_sensor(const core::SensorConfig& config) {
    return core::Sensor(config, scenario_.plan().as_db(), scenario_.plan().geo_db(),
                        scenario_.naming());
  }

  core::Sensor single_sensor_run(const core::SensorConfig& config) {
    core::Sensor sensor = make_sensor(config);
    sensor.ingest_all(scenario_.authority(0).records());
    return sensor;
  }

  sim::Scenario scenario_;
};

TEST_F(FederationTest, ExactFederatedPoolMatchesSingleSensor) {
  const core::SensorConfig config;
  const core::Sensor single = single_sensor_run(config);
  const auto single_rows = single.extract_features();
  ASSERT_FALSE(single_rows.empty());

  for (const std::size_t shards : {2, 3, 5}) {
    core::FederatedSensorPool pool(shards, config, scenario_.plan().as_db(),
                                   scenario_.plan().geo_db(), scenario_.naming());
    pool.ingest_all(scenario_.authority(0).records());
    core::Sensor coordinator = make_sensor(config);
    pool.merge_into(coordinator);

    EXPECT_EQ(coordinator.dedup().admitted(), single.dedup().admitted());
    EXPECT_EQ(coordinator.dedup().suppressed(), single.dedup().suppressed());
    EXPECT_EQ(coordinator.aggregator().originator_count(),
              single.aggregator().originator_count());
    EXPECT_EQ(coordinator.aggregator().total_periods(),
              single.aggregator().total_periods());
    expect_rows_identical(coordinator.extract_features(), single_rows);
  }
}

TEST_F(FederationTest, SketchFederatedPoolMatchesSingleSensorOnDisjointShards) {
  // Disjoint shards move per-originator state (sample histogram +
  // registers) wholesale, so even sketch mode merges byte-identically —
  // bounded error enters only versus the *exact-mode* truth.
  const core::SensorConfig config = sketch_config();
  const core::Sensor single = single_sensor_run(config);
  ASSERT_GT(single.aggregator().promoted_count(), 0u)
      << "world too small to exercise promotion";

  core::FederatedSensorPool pool(4, config, scenario_.plan().as_db(),
                                 scenario_.plan().geo_db(), scenario_.naming());
  pool.ingest_all(scenario_.authority(0).records());
  core::Sensor coordinator = make_sensor(config);
  pool.merge_into(coordinator);

  EXPECT_EQ(coordinator.aggregator().promoted_count(),
            single.aggregator().promoted_count());
  EXPECT_EQ(coordinator.aggregator().sketch_bytes(),
            single.aggregator().sketch_bytes());
  expect_rows_identical(coordinator.extract_features(), single.extract_features());
}

TEST_F(FederationTest, SketchFootprintsStayNearExactTruth) {
  // The accuracy half of the sketch trade-off: per-originator footprints
  // from a sketch-mode run against the exact run.  Promoted originators
  // carry HLL error (~1.6% std at precision 12); the bounds below are
  // fixed deterministic draws with headroom, not statistical hopes.
  core::SensorConfig exact_config;
  const core::Sensor exact = single_sensor_run(exact_config);
  const core::Sensor sketched = single_sensor_run(sketch_config());
  const auto exact_rows = exact.extract_features();
  const auto sketch_rows = sketched.extract_features();
  ASSERT_EQ(exact_rows.size(), sketch_rows.size());

  // Rows sort by footprint, and estimates perturb that order — compare
  // per-originator, not per-rank.
  std::map<std::uint32_t, double> estimates;
  for (const auto& row : sketch_rows) {
    estimates[row.originator.value()] = static_cast<double>(row.footprint);
  }
  double exact_sum = 0.0, sketch_sum = 0.0;
  for (const auto& row : exact_rows) {
    const auto it = estimates.find(row.originator.value());
    ASSERT_NE(it, estimates.end()) << row.originator.to_string();
    const double truth = static_cast<double>(row.footprint);
    exact_sum += truth;
    sketch_sum += it->second;
    EXPECT_LE(std::abs(it->second - truth) / truth, 0.06)
        << row.originator.to_string() << " truth=" << truth
        << " est=" << it->second;
  }
  EXPECT_LE(std::abs(sketch_sum - exact_sum) / exact_sum, 0.02);
}

TEST_F(FederationTest, ExportImportRoundTripMatchesSingleSensor) {
  const core::SensorConfig config;
  const core::Sensor single = single_sensor_run(config);
  const auto& records = scenario_.authority(0).records();

  // Two sensors over the canonical disjoint split, each exported to a
  // state blob, imported by a coordinator that saw nothing itself.
  std::vector<std::string> blobs;
  for (std::size_t shard = 0; shard < 2; ++shard) {
    core::Sensor sensor = make_sensor(config);
    std::vector<dns::QueryRecord> mine;
    for (const auto& r : records) {
      if (core::federation_shard(r.originator, 2) == shard) mine.push_back(r);
    }
    sensor.ingest_all(mine);
    std::ostringstream out;
    util::BinaryWriter writer(out);
    core::export_sensor_state(sensor, writer);
    ASSERT_TRUE(writer.ok());
    blobs.push_back(out.str());
  }

  core::Sensor coordinator = make_sensor(config);
  for (const auto& blob : blobs) {
    std::istringstream in(blob);
    util::BinaryReader reader(in);
    ASSERT_TRUE(core::import_sensor_state(reader, coordinator));
  }
  EXPECT_EQ(coordinator.dedup().admitted(), single.dedup().admitted());
  expect_rows_identical(coordinator.extract_features(), single.extract_features());
}

TEST_F(FederationTest, ImportRefusesMismatchedConfigAndCorruptStreams) {
  core::Sensor exporter = single_sensor_run(core::SensorConfig{});
  std::ostringstream out;
  util::BinaryWriter writer(out);
  core::export_sensor_state(exporter, writer);
  const std::string blob = out.str();

  {  // Coordinator configured for sketch mode must refuse an exact export.
    core::Sensor coordinator = make_sensor(sketch_config());
    std::istringstream in(blob);
    util::BinaryReader reader(in);
    EXPECT_FALSE(core::import_sensor_state(reader, coordinator));
    EXPECT_EQ(coordinator.aggregator().originator_count(), 0u);
  }
  {  // Bad magic.
    std::string bad = blob;
    bad[0] = static_cast<char>(bad[0] + 1);
    core::Sensor coordinator = make_sensor(core::SensorConfig{});
    std::istringstream in(bad);
    util::BinaryReader reader(in);
    EXPECT_FALSE(core::import_sensor_state(reader, coordinator));
  }
  {  // Truncated payload.
    core::Sensor coordinator = make_sensor(core::SensorConfig{});
    std::istringstream in(blob.substr(0, blob.size() - 16));
    util::BinaryReader reader(in);
    EXPECT_FALSE(core::import_sensor_state(reader, coordinator));
  }
}

TEST_F(FederationTest, OverlappingExactMergeIsContentLossless) {
  // Per-authority federation: both sensors see an overlapping slice of the
  // stream.  Exact mode must end with the union querier set per
  // originator — the same set a single sensor over the full log holds.
  const auto& records = scenario_.authority(0).records();
  const std::size_t third = records.size() / 3;

  const core::SensorConfig config;
  core::Sensor a = make_sensor(config);
  core::Sensor b = make_sensor(config);
  a.ingest_all(std::span(records.data(), 2 * third));
  b.ingest_all(std::span(records.data() + third, records.size() - third));
  a.merge_from(std::move(b));

  const core::Sensor single = single_sensor_run(config);
  ASSERT_EQ(a.aggregator().originator_count(), single.aggregator().originator_count());
  for (const auto& [originator, agg] : single.aggregator().aggregates()) {
    const auto* merged = a.aggregator().aggregates().find(originator);
    ASSERT_NE(merged, nullptr);
    EXPECT_EQ(merged->second.unique_queriers(), agg.unique_queriers())
        << originator.to_string();
    EXPECT_EQ(merged->second.periods, agg.periods) << originator.to_string();
  }
}

TEST_F(FederationTest, SketchCountersDeterministicAcrossThreads) {
#if !DNSBS_METRICS_ENABLED
  GTEST_SKIP() << "built with -DDNSBS_METRICS=OFF";
#else
  // dnsbs.aggregate.sketch_promotions / sketch_merges / sketch_bytes are
  // in the deterministic view: byte-identical for any DNSBS_THREADS.
  ThreadCountGuard guard;
  const auto& records = scenario_.authority(0).records();
  ASSERT_GT(records.size(), 4096u);

  const auto run_with = [&](std::size_t threads) {
    util::set_thread_count(threads);
    util::metrics_reset();
    {
      core::SensorConfig sc = sketch_config();
      sc.threads = threads;
      core::Sensor sensor = make_sensor(sc);
      sensor.ingest_all(records);
      const auto rows = sensor.extract_features();
      EXPECT_FALSE(rows.empty());
      sensor.publish_metrics();
    }
    return util::metrics_snapshot().deterministic_view();
  };

  const util::MetricsSnapshot serial = run_with(1);
  ASSERT_FALSE(serial.values.empty());
  EXPECT_GT(serial.scalar("dnsbs.aggregate.sketch_promotions"), 0);
  EXPECT_GT(serial.scalar("dnsbs.aggregate.sketch_bytes"), 0);

  for (const std::size_t threads : {2, 4}) {
    const util::MetricsSnapshot parallel = run_with(threads);
    ASSERT_EQ(parallel.values.size(), serial.values.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < serial.values.size(); ++i) {
      EXPECT_EQ(parallel.values[i], serial.values[i])
          << serial.values[i].name << " diverged at threads=" << threads;
    }
  }
#endif
}

}  // namespace
}  // namespace dnsbs
