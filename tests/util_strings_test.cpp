#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace dnsbs::util {
namespace {

TEST(Split, BasicAndEmptyFields) {
  const auto parts = split("a.b.c", '.');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");

  const auto with_empty = split("a..b", '.');
  ASSERT_EQ(with_empty.size(), 3u);
  EXPECT_EQ(with_empty[1], "");

  const auto empty = split("", '.');
  ASSERT_EQ(empty.size(), 1u);
  EXPECT_EQ(empty[0], "");
}

TEST(Split, LeadingTrailingSeparators) {
  const auto parts = split(".a.", '.');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "a");
  EXPECT_EQ(parts[2], "");
}

TEST(Join, RoundTripsSplit) {
  const std::string s = "mail.example.com";
  EXPECT_EQ(join(split(s, '.'), '.'), s);
}

TEST(ToLower, MixedCase) {
  EXPECT_EQ(to_lower("MaIl.EXAMPLE.Com"), "mail.example.com");
  EXPECT_EQ(to_lower(""), "");
  EXPECT_EQ(to_lower("123-abc"), "123-abc");
}

TEST(Contains, Basics) {
  EXPECT_TRUE(contains("firewall", "wall"));
  EXPECT_FALSE(contains("wall", "firewall"));
  EXPECT_TRUE(contains("x", ""));
}

TEST(StartsEndsWith, Basics) {
  EXPECT_TRUE(starts_with("sendmail", "send"));
  EXPECT_FALSE(starts_with("resend", "send"));
  EXPECT_TRUE(ends_with("mail.example.com", ".com"));
  EXPECT_FALSE(ends_with("com", ".com"));
}

TEST(Trim, Whitespace) {
  EXPECT_EQ(trim("  abc \t\n"), "abc");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("a b"), "a b");
}

TEST(AllDigits, Cases) {
  EXPECT_TRUE(all_digits("0123"));
  EXPECT_FALSE(all_digits(""));
  EXPECT_FALSE(all_digits("12a"));
  EXPECT_FALSE(all_digits("-1"));
}

TEST(ParseU64, ValidAndInvalid) {
  std::uint64_t v = 0;
  EXPECT_TRUE(parse_u64("0", v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(parse_u64("18446744073709551615", v));
  EXPECT_EQ(v, UINT64_MAX);
  EXPECT_FALSE(parse_u64("18446744073709551616", v));  // overflow
  EXPECT_FALSE(parse_u64("", v));
  EXPECT_FALSE(parse_u64("12x", v));
}

TEST(Format, PrintfStyle) {
  EXPECT_EQ(format("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(format("%.3f", 1.5), "1.500");
  EXPECT_EQ(format("empty"), "empty");
}

}  // namespace
}  // namespace dnsbs::util
