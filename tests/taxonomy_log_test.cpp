#include <gtest/gtest.h>

#include <set>
#include <string_view>

#include "core/taxonomy.hpp"
#include "util/log.hpp"

namespace dnsbs {
namespace {

TEST(Taxonomy, AllClassesRoundTripThroughNames) {
  for (const core::AppClass c : core::all_app_classes()) {
    const auto parsed = core::app_class_from_string(core::to_string(c));
    ASSERT_TRUE(parsed) << core::to_string(c);
    EXPECT_EQ(*parsed, c);
  }
  EXPECT_FALSE(core::app_class_from_string("not-a-class"));
  EXPECT_FALSE(core::app_class_from_string(""));
}

TEST(Taxonomy, EnumOrderMatchesAllClassesTable) {
  const auto& all = core::all_app_classes();
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(static_cast<std::size_t>(all[i]), i);
  }
  EXPECT_EQ(all.size(), core::kAppClassCount);
}

TEST(Taxonomy, MaliciousnessMatchesPaper) {
  EXPECT_TRUE(core::is_malicious(core::AppClass::kScan));
  EXPECT_TRUE(core::is_malicious(core::AppClass::kSpam));
  for (const core::AppClass c : core::all_app_classes()) {
    if (c != core::AppClass::kScan && c != core::AppClass::kSpam) {
      EXPECT_FALSE(core::is_malicious(c)) << core::to_string(c);
    }
  }
}

TEST(Taxonomy, QuerierCategoryNamesDistinct) {
  std::set<std::string_view> names;
  for (std::size_t i = 0; i < core::kQuerierCategoryCount; ++i) {
    names.insert(core::to_string(static_cast<core::QuerierCategory>(i)));
  }
  EXPECT_EQ(names.size(), core::kQuerierCategoryCount);
}

TEST(Log, LevelThresholdRoundTrips) {
  const util::LogLevel before = util::log_level();
  util::set_log_level(util::LogLevel::kDebug);
  EXPECT_EQ(util::log_level(), util::LogLevel::kDebug);
  util::set_log_level(util::LogLevel::kOff);
  EXPECT_EQ(util::log_level(), util::LogLevel::kOff);
  // Logging below threshold must be a no-op (no crash, no output path).
  util::log_debug("test", "suppressed");
  util::log_error("test", "also suppressed at kOff");
  util::set_log_level(before);
}

}  // namespace
}  // namespace dnsbs
