#include "dns/cache.hpp"

#include <gtest/gtest.h>

namespace dnsbs::dns {
namespace {

using util::SimTime;

const DnsName kName = *DnsName::parse("4.3.2.1.in-addr.arpa");

TEST(CacheSim, MissOnEmpty) {
  CacheSim cache;
  EXPECT_EQ(cache.lookup(kName, QType::kPTR, SimTime::seconds(0)), CacheResult::kMiss);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(CacheSim, PositiveHitUntilTtl) {
  CacheSim cache;
  cache.insert_positive(kName, QType::kPTR, 100, SimTime::seconds(0));
  EXPECT_EQ(cache.lookup(kName, QType::kPTR, SimTime::seconds(99)),
            CacheResult::kHitPositive);
  EXPECT_EQ(cache.lookup(kName, QType::kPTR, SimTime::seconds(100)), CacheResult::kMiss);
  // Expired entry was evicted lazily.
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().expired_evictions, 1u);
}

TEST(CacheSim, NegativeCaching) {
  CacheSim cache;
  cache.insert_negative(kName, QType::kPTR, 60, SimTime::seconds(0));
  EXPECT_EQ(cache.lookup(kName, QType::kPTR, SimTime::seconds(30)),
            CacheResult::kHitNegative);
  EXPECT_EQ(cache.lookup(kName, QType::kPTR, SimTime::seconds(61)), CacheResult::kMiss);
}

TEST(CacheSim, ZeroTtlNeverStored) {
  CacheSim cache;
  cache.insert_positive(kName, QType::kPTR, 0, SimTime::seconds(0));
  cache.insert_negative(kName, QType::kPTR, 0, SimTime::seconds(0));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.lookup(kName, QType::kPTR, SimTime::seconds(0)), CacheResult::kMiss);
}

TEST(CacheSim, TypeIsPartOfKey) {
  CacheSim cache;
  cache.insert_positive(kName, QType::kPTR, 100, SimTime::seconds(0));
  EXPECT_EQ(cache.lookup(kName, QType::kNS, SimTime::seconds(1)), CacheResult::kMiss);
  EXPECT_EQ(cache.lookup(kName, QType::kPTR, SimTime::seconds(1)),
            CacheResult::kHitPositive);
}

TEST(CacheSim, ReinsertExtendsLifetime) {
  CacheSim cache;
  cache.insert_positive(kName, QType::kPTR, 10, SimTime::seconds(0));
  cache.insert_positive(kName, QType::kPTR, 100, SimTime::seconds(5));
  EXPECT_EQ(cache.lookup(kName, QType::kPTR, SimTime::seconds(50)),
            CacheResult::kHitPositive);
}

TEST(CacheSim, NegativeOverridesPositive) {
  CacheSim cache;
  cache.insert_positive(kName, QType::kPTR, 100, SimTime::seconds(0));
  cache.insert_negative(kName, QType::kPTR, 100, SimTime::seconds(1));
  EXPECT_EQ(cache.lookup(kName, QType::kPTR, SimTime::seconds(2)),
            CacheResult::kHitNegative);
}

TEST(CacheSim, BoundedEvictsClosestToExpiry) {
  CacheSim cache(2);
  const DnsName n1 = *DnsName::parse("1.example.com");
  const DnsName n2 = *DnsName::parse("2.example.com");
  const DnsName n3 = *DnsName::parse("3.example.com");
  cache.insert_positive(n1, QType::kPTR, 10, SimTime::seconds(0));   // expires 10
  cache.insert_positive(n2, QType::kPTR, 100, SimTime::seconds(0));  // expires 100
  cache.insert_positive(n3, QType::kPTR, 50, SimTime::seconds(0));   // evicts n1
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.lookup(n1, QType::kPTR, SimTime::seconds(1)), CacheResult::kMiss);
  EXPECT_EQ(cache.lookup(n2, QType::kPTR, SimTime::seconds(1)), CacheResult::kHitPositive);
  EXPECT_EQ(cache.lookup(n3, QType::kPTR, SimTime::seconds(1)), CacheResult::kHitPositive);
}

TEST(CacheSim, BoundedPrefersPurgingExpired) {
  CacheSim cache(2);
  const DnsName n1 = *DnsName::parse("1.example.com");
  const DnsName n2 = *DnsName::parse("2.example.com");
  const DnsName n3 = *DnsName::parse("3.example.com");
  cache.insert_positive(n1, QType::kPTR, 5, SimTime::seconds(0));
  cache.insert_positive(n2, QType::kPTR, 1000, SimTime::seconds(0));
  // n1 is already expired at t=10; insertion should purge it, keeping n2.
  cache.insert_positive(n3, QType::kPTR, 1000, SimTime::seconds(10));
  EXPECT_EQ(cache.lookup(n2, QType::kPTR, SimTime::seconds(11)), CacheResult::kHitPositive);
  EXPECT_EQ(cache.lookup(n3, QType::kPTR, SimTime::seconds(11)), CacheResult::kHitPositive);
}

TEST(CacheSim, ClearEmptiesEverything) {
  CacheSim cache;
  cache.insert_positive(kName, QType::kPTR, 100, SimTime::seconds(0));
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.lookup(kName, QType::kPTR, SimTime::seconds(1)), CacheResult::kMiss);
}

TEST(CacheSim, StatsAccumulate) {
  CacheSim cache;
  cache.insert_positive(kName, QType::kPTR, 100, SimTime::seconds(0));
  cache.lookup(kName, QType::kPTR, SimTime::seconds(1));
  cache.lookup(kName, QType::kPTR, SimTime::seconds(2));
  cache.lookup(*DnsName::parse("other.example.com"), QType::kPTR, SimTime::seconds(3));
  const auto& s = cache.stats();
  EXPECT_EQ(s.lookups, 3u);
  EXPECT_EQ(s.hits_positive, 2u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.inserts, 1u);
}

}  // namespace
}  // namespace dnsbs::dns
