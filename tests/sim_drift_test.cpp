// Weekly behavioural drift: deterministic, bounded, and actually varying.
#include <gtest/gtest.h>

#include "sim/originator.hpp"

namespace dnsbs::sim {
namespace {

OriginatorSpec spec_at(std::uint32_t addr) {
  OriginatorSpec spec;
  spec.address = net::IPv4Addr(addr);
  return spec;
}

TEST(WeeklyDrift, DeterministicPerOriginatorWeek) {
  const auto spec = spec_at(0x0a010203);
  for (std::int64_t week = 0; week < 20; ++week) {
    EXPECT_DOUBLE_EQ(weekly_rate_drift(spec, week), weekly_rate_drift(spec, week));
  }
}

TEST(WeeklyDrift, BoundedMultiplicativeFactor) {
  // exp(+-0.5): factors in [0.606, 1.649].
  util::Rng rng(1);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto spec = spec_at(static_cast<std::uint32_t>(rng.next()));
    const double f = weekly_rate_drift(spec, static_cast<std::int64_t>(rng.below(200)));
    EXPECT_GE(f, 0.6065);
    EXPECT_LE(f, 1.6488);
  }
}

TEST(WeeklyDrift, VariesAcrossWeeks) {
  const auto spec = spec_at(0x0a010203);
  double lo = 10, hi = 0;
  for (std::int64_t week = 0; week < 50; ++week) {
    const double f = weekly_rate_drift(spec, week);
    lo = std::min(lo, f);
    hi = std::max(hi, f);
  }
  EXPECT_LT(lo, 0.8);
  EXPECT_GT(hi, 1.25);
}

TEST(WeeklyDrift, VariesAcrossOriginators) {
  double lo = 10, hi = 0;
  for (std::uint32_t addr = 1; addr <= 200; ++addr) {
    const double f = weekly_rate_drift(spec_at(addr << 8), 3);
    lo = std::min(lo, f);
    hi = std::max(hi, f);
  }
  EXPECT_LT(lo, 0.8);
  EXPECT_GT(hi, 1.25);
}

TEST(WeeklyDrift, MeanNearOne) {
  // The drift is a multiplicative perturbation, not a systematic bias.
  util::Rng rng(2);
  double sum = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    const auto spec = spec_at(static_cast<std::uint32_t>(rng.next()));
    sum += weekly_rate_drift(spec, static_cast<std::int64_t>(rng.below(100)));
  }
  EXPECT_NEAR(sum / kDraws, 1.04, 0.05);  // E[exp(U(-.5,.5))] ~ 1.042
}

}  // namespace
}  // namespace dnsbs::sim
