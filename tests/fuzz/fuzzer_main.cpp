// libFuzzer entry point for the DNS wire codec (built only with
// -DDNSBS_FUZZER=ON, which requires Clang).  The seeded gtest harness in
// wire_fuzz_test.cpp is the deterministic CI gate; this target is for
// open-ended coverage-guided exploration:
//
//   cmake -B build-fuzz -DDNSBS_FUZZER=ON \
//         -DCMAKE_CXX_COMPILER=clang++ -DDNSBS_SANITIZE=address,undefined
//   cmake --build build-fuzz --target dns_wire_fuzzer
//   ./build-fuzz/tests/fuzz/dns_wire_fuzzer -max_len=4096 corpus/
//
// The invariant mirrors the gtest harness: decode must not crash, and any
// message it accepts must re-encode and round-trip bit-exactly.
#include <cstddef>
#include <cstdint>

#include "dns/wire.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  const auto msg = dnsbs::dns::decode(data, size);
  if (!msg) return 0;
  const auto wire = dnsbs::dns::try_encode(*msg);
  if (!wire) __builtin_trap();  // decoder emitted an unencodable message
  const auto again = dnsbs::dns::decode(*wire);
  if (!again || !(*again == *msg)) __builtin_trap();  // lost canonical form
  return 0;
}
