// Deterministic fuzz harness for the DNS wire codec (tentpole of the
// robustness pass).  Three invariant families:
//
//  1. Valid corpus: decode(encode(m)) == m for every structure-aware
//     generated message m (compression-heavy names, all RDATA variants,
//     all four sections, boundary-size labels and names).
//  2. Mutated corpus: >= 10k seeded byte mutations per ctest invocation;
//     decode never crashes or reads out of bounds (ASan/UBSan enforce the
//     latter under tools/check.sh), and anything that still decodes is
//     itself re-encodable and round-trips — the decoder never emits a
//     message the encoder cannot represent.
//  3. Capture ingest: mutated packets through record_from_packet never
//     crash and the CaptureStats counters always partition `packets`.
//
// Every failure message carries (seed, trial, mutation trace) so a crash
// replays from the test name alone.
#include <gtest/gtest.h>

#include "dns/capture.hpp"
#include "dns/wire.hpp"
#include "util/fuzz.hpp"
#include "util/rng.hpp"

namespace dnsbs::dns {
namespace {

// ---- structure-aware corpus generator ----
// Richer than the property-test generator: deep names with shared
// suffixes (to exercise the compression map), boundary-size labels,
// every RDATA variant, and occupied authority/additional sections.

std::string random_label(util::Rng& rng) {
  static const char* kStock[] = {"mail", "ns", "example", "com", "net", "jp",
                                 "in-addr", "arpa", "x", "srv-7"};
  if (rng.chance(0.7)) return kStock[rng.below(std::size(kStock))];
  // Random-length label, occasionally at the 63-byte cap.
  const std::size_t len = rng.chance(0.15) ? 63 : 1 + rng.below(16);
  std::string label(len, 'a');
  for (auto& c : label) c = static_cast<char>('a' + rng.below(26));
  return label;
}

DnsName random_name(util::Rng& rng, const std::vector<DnsName>& pool) {
  // Half the time extend a pooled name so suffixes repeat across the
  // message and the encoder's compression map gets real work.
  std::vector<std::string> labels;
  if (!pool.empty() && rng.chance(0.5)) {
    const DnsName& base = pool[rng.below(pool.size())];
    labels = base.labels();
  }
  const std::size_t extra = 1 + rng.below(3);
  for (std::size_t i = 0; i < extra; ++i) {
    labels.insert(labels.begin(), random_label(rng));
  }
  // Respect the 255-octet cap the encoder now enforces.
  std::size_t wire = 1;
  std::vector<std::string> kept;
  for (auto it = labels.rbegin(); it != labels.rend(); ++it) {
    if (wire + 1 + it->size() > 255) break;
    wire += 1 + it->size();
    kept.insert(kept.begin(), *it);
  }
  if (kept.empty()) kept.push_back("a");
  return DnsName::from_labels(std::move(kept));
}

ResourceRecord random_rr(util::Rng& rng, std::vector<DnsName>& pool) {
  ResourceRecord rr;
  rr.name = random_name(rng, pool);
  pool.push_back(rr.name);
  rr.ttl = static_cast<std::uint32_t>(rng.below(1u << 20));
  switch (rng.below(4)) {
    case 0:
      rr.rtype = QType::kA;
      rr.rdata.value = net::IPv4Addr(static_cast<std::uint32_t>(rng.next()));
      break;
    case 1: {
      rr.rtype = rng.chance(0.5) ? QType::kPTR : QType::kCNAME;
      DnsName target = random_name(rng, pool);
      pool.push_back(target);
      rr.rdata.value = std::move(target);
      break;
    }
    case 2:
      rr.rtype = QType::kNS;
      rr.rdata.value = random_name(rng, pool);
      break;
    default: {
      rr.rtype = rng.chance(0.5) ? QType::kTXT : QType::kSOA;
      std::vector<std::uint8_t> raw(rng.below(200));
      for (auto& b : raw) b = static_cast<std::uint8_t>(rng.below(256));
      rr.rdata.value = std::move(raw);
      break;
    }
  }
  return rr;
}

Message random_message(util::Rng& rng) {
  Message m;
  m.id = static_cast<std::uint16_t>(rng.next());
  m.is_response = rng.chance(0.5);
  m.opcode = static_cast<std::uint8_t>(rng.below(3));
  m.authoritative = rng.chance(0.3);
  m.truncated = rng.chance(0.1);
  m.recursion_desired = rng.chance(0.7);
  m.recursion_available = rng.chance(0.5);
  m.rcode = static_cast<RCode>(rng.below(6));
  std::vector<DnsName> pool;
  const std::size_t questions = rng.below(3);
  for (std::size_t i = 0; i < questions; ++i) {
    Question q;
    q.name = random_name(rng, pool);
    pool.push_back(q.name);
    q.qtype = rng.chance(0.5) ? QType::kPTR : QType::kA;
    m.questions.push_back(std::move(q));
  }
  const std::size_t answers = rng.below(5);
  for (std::size_t i = 0; i < answers; ++i) m.answers.push_back(random_rr(rng, pool));
  const std::size_t auth = rng.below(3);
  for (std::size_t i = 0; i < auth; ++i) m.authorities.push_back(random_rr(rng, pool));
  const std::size_t extra = rng.below(2);
  for (std::size_t i = 0; i < extra; ++i) m.additionals.push_back(random_rr(rng, pool));
  return m;
}

class WireFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WireFuzz, ValidCorpusRoundTripsExactly) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 400; ++trial) {
    const Message m = random_message(rng);
    const auto wire = try_encode(m);
    ASSERT_TRUE(wire) << "seed=" << GetParam() << " trial=" << trial;
    const auto decoded = decode(*wire);
    ASSERT_TRUE(decoded) << "seed=" << GetParam() << " trial=" << trial;
    EXPECT_EQ(*decoded, m) << "seed=" << GetParam() << " trial=" << trial;
  }
}

// The headline budget: 5 seed instantiations x 500 base messages x 6
// mutations = 15k mutations per ctest invocation, each followed by a
// decode and (when it still parses) a canonicalization round-trip.
TEST_P(WireFuzz, MutatedWireNeverCrashesAndStaysCanonical) {
  util::Rng rng(GetParam() ^ 0xf0c22edULL);
  util::ByteMutator mutator(GetParam() * 0x9e3779b97f4a7c15ULL + 1);
  for (int trial = 0; trial < 500; ++trial) {
    const Message m = random_message(rng);
    auto wire = encode(m);
    const auto trace = mutator.mutate_n(wire, 6);
    const auto decoded = decode(wire);  // must not crash / read OOB
    if (!decoded) continue;
    // Whatever decodes is within wire limits by construction, so the
    // encoder must accept it and the result must round-trip: the decoder
    // never produces a message outside the encodable domain.
    const auto re = try_encode(*decoded);
    ASSERT_TRUE(re) << "seed=" << GetParam() << " trial=" << trial
                    << " trace=" << util::describe(trace);
    const auto again = decode(*re);
    ASSERT_TRUE(again) << "seed=" << GetParam() << " trial=" << trial
                       << " trace=" << util::describe(trace);
    EXPECT_EQ(*again, *decoded) << "seed=" << GetParam() << " trial=" << trial
                                << " trace=" << util::describe(trace);
  }
}

TEST_P(WireFuzz, PureGarbageNeverCrashes) {
  util::Rng rng(GetParam() ^ 0xdeadULL);
  for (int trial = 0; trial < 400; ++trial) {
    std::vector<std::uint8_t> junk(rng.below(300));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.below(256));
    (void)decode(junk);
  }
}

// Ingest front door: mutated packets through the capture classifier.
TEST_P(WireFuzz, CaptureClassifiesEveryMutatedPacketExactlyOnce) {
  util::Rng rng(GetParam() ^ 0xcafeULL);
  util::ByteMutator mutator(GetParam() ^ 0xf001ULL);
  CaptureStats stats;
  const net::IPv4Addr source = net::IPv4Addr::from_octets(192, 0, 2, 53);
  for (int trial = 0; trial < 500; ++trial) {
    auto wire = make_ptr_query_packet(static_cast<std::uint16_t>(rng.next()),
                                      net::IPv4Addr(static_cast<std::uint32_t>(rng.next())));
    mutator.mutate_n(wire, 1 + rng.below(4));
    (void)record_from_packet(wire, util::SimTime::seconds(trial), source, stats);
    ASSERT_TRUE(stats.consistent()) << "seed=" << GetParam() << " trial=" << trial;
  }
  EXPECT_EQ(stats.packets, 500u);
  // Spell the six-way partition out (consistent() must agree with it):
  // decodable-but-rejected queries have their own bucket, distinct from
  // undecodable `malformed` bytes.
  EXPECT_EQ(stats.packets, stats.malformed + stats.responses + stats.rejected_query +
                               stats.non_ptr + stats.non_reverse_name + stats.accepted);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzz,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u));

}  // namespace
}  // namespace dnsbs::dns
