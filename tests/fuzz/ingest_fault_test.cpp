// Ingest-level fault injection (tentpole, second half): the decode->ingest
// pipeline must converge to identical Sensor state when the query stream
// suffers the faults the paper's capture points see in practice —
// duplicated records (queriers ignoring DNS timeout rules), dropped
// records that deduplication would have suppressed anyway, and local
// reordering of unrelated records.  Also: text-level log corruption must
// be skipped line-for-line, never poisoning neighbouring records.
//
// All faults are seeded through util::Rng so failures replay exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/sensor.hpp"
#include "dns/query_log.hpp"
#include "util/fuzz.hpp"

namespace dnsbs::core {
namespace {

using dns::QueryRecord;
using dns::RCode;
using net::IPv4Addr;
using util::SimTime;

class NullResolver final : public QuerierResolver {
 public:
  QuerierInfo resolve(net::IPv4Addr querier) const override {
    QuerierInfo info;
    if (querier.octet(3) % 2 == 0) {
      info.status = ResolveStatus::kOk;
      info.name = *dns::DnsName::parse("host.example.com");
    } else {
      info.status = ResolveStatus::kNxDomain;
    }
    return info;
  }
};

/// Deterministic base stream: `originators` targets, each probed by a
/// querier population over a few hours, time-ordered, with some natural
/// within-window duplicates baked in (marked in `is_window_dup`).
struct Stream {
  std::vector<QueryRecord> records;
  std::vector<bool> is_window_dup;  ///< dedup would suppress records[i]
};

Stream make_stream(std::uint64_t seed, std::size_t originators, std::size_t queriers) {
  util::Rng rng(seed);
  Stream s;
  std::int64_t t = 0;
  for (int round = 0; round < 40; ++round) {
    for (std::size_t o = 0; o < originators; ++o) {
      for (std::size_t q = 0; q < queriers; ++q) {
        if (!rng.chance(0.35)) continue;
        // Advance the clock only half the time so plenty of adjacent
        // records share a timestamp (the reorder test swaps those).  The
        // stream stays monotone: dedup's convergence guarantees — and
        // therefore these tests' strict-identity assertions — are scoped
        // to time-ordered streams.
        if (rng.chance(0.5)) t += 1 + static_cast<std::int64_t>(rng.below(4));
        const QueryRecord r{SimTime::seconds(t),
                            IPv4Addr::from_octets(10, 0, static_cast<std::uint8_t>(q / 256),
                                                  static_cast<std::uint8_t>(q % 256)),
                            IPv4Addr::from_octets(192, 168, 0, static_cast<std::uint8_t>(o)),
                            RCode::kNoError};
        s.records.push_back(r);
        s.is_window_dup.push_back(false);
        // Sometimes the querier immediately retries: a true window dup
        // (well inside the 30 s suppression window).
        if (rng.chance(0.2)) {
          QueryRecord dup = r;
          dup.time = dup.time + SimTime::seconds(static_cast<std::int64_t>(rng.below(10)));
          s.records.push_back(dup);
          s.is_window_dup.push_back(true);
          t = dup.time.secs();  // keep the stream monotone past the retry
        }
      }
    }
  }
  return s;
}

/// Canonical view of everything ingestion-derived state feeds downstream:
/// per-originator footprint, totals, activity span, and persistence
/// periods, sorted for comparison.
struct AggSnapshot {
  struct Row {
    std::uint32_t originator;
    std::size_t footprint;
    std::uint64_t total;
    std::int64_t first, last;
    std::size_t periods;
    auto operator<=>(const Row&) const = default;
  };
  std::vector<Row> rows;
  std::size_t total_periods = 0;
  bool operator==(const AggSnapshot&) const = default;
};

AggSnapshot snapshot(const Sensor& sensor) {
  AggSnapshot snap;
  for (const auto& [addr, agg] : sensor.aggregator().aggregates()) {
    snap.rows.push_back({addr.value(), agg.unique_queriers(), agg.total_queries,
                         agg.first_seen.secs(), agg.last_seen.secs(),
                         agg.periods.size()});
  }
  std::sort(snap.rows.begin(), snap.rows.end());
  snap.total_periods = sensor.aggregator().total_periods();
  return snap;
}

SensorConfig small_config() {
  SensorConfig cfg;
  cfg.min_queriers = 5;
  cfg.top_n = 0;
  return cfg;
}

Sensor ingest(const std::vector<QueryRecord>& records, const netdb::AsDb& as_db,
              const netdb::GeoDb& geo_db, const QuerierResolver& resolver) {
  Sensor sensor(small_config(), as_db, geo_db, resolver);
  for (const auto& r : records) sensor.ingest(r);
  return sensor;
}

class IngestFault : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  netdb::AsDb as_db_;
  netdb::GeoDb geo_db_;
  NullResolver resolver_;
};

TEST_P(IngestFault, DuplicatedRecordsConvergeIdentically) {
  const Stream s = make_stream(GetParam(), 12, 40);
  util::Rng rng(GetParam() ^ 1);
  // Every injected copy lands at the same timestamp as its original, so
  // dedup must absorb all of them.
  const auto faulted = util::duplicate_some(s.records, 0.3, rng);
  ASSERT_GT(faulted.size(), s.records.size());
  const Sensor clean = ingest(s.records, as_db_, geo_db_, resolver_);
  const Sensor dirty = ingest(faulted, as_db_, geo_db_, resolver_);
  EXPECT_EQ(snapshot(clean), snapshot(dirty));
}

TEST_P(IngestFault, DroppingWindowDuplicatesConvergesIdentically) {
  const Stream s = make_stream(GetParam(), 12, 40);
  util::Rng rng(GetParam() ^ 2);
  const auto faulted = util::drop_if(
      s.records, [&](std::size_t i) { return s.is_window_dup[i]; }, 0.5, rng);
  ASSERT_LT(faulted.size(), s.records.size());
  const Sensor clean = ingest(s.records, as_db_, geo_db_, resolver_);
  const Sensor dirty = ingest(faulted, as_db_, geo_db_, resolver_);
  EXPECT_EQ(snapshot(clean), snapshot(dirty));
}

TEST_P(IngestFault, ReorderingUnrelatedRecordsConvergesIdentically) {
  const Stream s = make_stream(GetParam(), 12, 40);
  util::Rng rng(GetParam() ^ 3);
  // Swapping same-timestamp adjacent records of *different* (querier,
  // originator) pairs models capture-point jitter; dedup decisions are
  // per-pair and the virtual clock is unchanged, so state must converge.
  // Same-pair swaps are excluded (reordering a pair's own retries
  // legitimately changes which copy wins), as are cross-time swaps (they
  // would break the time-ordering the dedup contract requires).
  const auto swappable = [&](std::size_t i) {
    return s.records[i].time == s.records[i + 1].time &&
           (s.records[i].querier != s.records[i + 1].querier ||
            s.records[i].originator != s.records[i + 1].originator);
  };
  const auto faulted = util::swap_adjacent_if(s.records, swappable, 0.4, rng);
  ASSERT_NE(faulted, s.records);
  const Sensor clean = ingest(s.records, as_db_, geo_db_, resolver_);
  const Sensor dirty = ingest(faulted, as_db_, geo_db_, resolver_);
  EXPECT_EQ(snapshot(clean), snapshot(dirty));
}

TEST_P(IngestFault, AllFaultsCombinedStillConverge) {
  const Stream s = make_stream(GetParam(), 10, 30);
  util::Rng rng(GetParam() ^ 4);
  auto faulted = util::duplicate_some(s.records, 0.2, rng);
  const auto swappable = [&](std::size_t i) {
    return faulted[i].time == faulted[i + 1].time &&
           (faulted[i].querier != faulted[i + 1].querier ||
            faulted[i].originator != faulted[i + 1].originator);
  };
  faulted = util::swap_adjacent_if(faulted, swappable, 0.3, rng);
  const Sensor clean = ingest(s.records, as_db_, geo_db_, resolver_);
  const Sensor dirty = ingest(faulted, as_db_, geo_db_, resolver_);
  EXPECT_EQ(snapshot(clean), snapshot(dirty));

  // And the sharded bulk path over the faulted stream matches too.
  Sensor bulk(small_config(), as_db_, geo_db_, resolver_);
  bulk.ingest_all(faulted);
  EXPECT_EQ(snapshot(clean), snapshot(bulk));
}

TEST_P(IngestFault, CorruptedLogLinesAreSkippedLineForLine) {
  const Stream s = make_stream(GetParam(), 8, 25);
  std::ostringstream os;
  dns::QueryLogWriter writer(os);
  for (const auto& r : s.records) writer.write(r);

  // Replace a deterministic subset of lines with tab-free garbage; every
  // other line must parse untouched.
  util::Rng rng(GetParam() ^ 5);
  std::istringstream split(os.str());
  std::ostringstream corrupted;
  std::string line;
  std::size_t kept = 0, smashed = 0;
  std::vector<QueryRecord> surviving;
  std::size_t index = 0;
  while (std::getline(split, line)) {
    if (rng.chance(0.15)) {
      corrupted << "@@corrupt-" << index << "@@\n";
      ++smashed;
    } else {
      corrupted << line << '\n';
      surviving.push_back(s.records[index]);
      ++kept;
    }
    ++index;
  }
  ASSERT_GT(smashed, 0u);

  std::istringstream is(corrupted.str());
  dns::QueryLogReader reader(is);
  std::vector<QueryRecord> parsed;
  while (auto r = reader.next()) parsed.push_back(*r);
  EXPECT_EQ(reader.skipped(), smashed);
  ASSERT_EQ(parsed.size(), kept);
  EXPECT_EQ(parsed, surviving);

  const Sensor from_log = ingest(parsed, as_db_, geo_db_, resolver_);
  const Sensor direct = ingest(surviving, as_db_, geo_db_, resolver_);
  EXPECT_EQ(snapshot(from_log), snapshot(direct));
}

INSTANTIATE_TEST_SUITE_P(Seeds, IngestFault, ::testing::Values(7u, 8u, 9u));

}  // namespace
}  // namespace dnsbs::core
