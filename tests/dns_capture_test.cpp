// Packet-capture ingestion: only well-formed reverse queries become
// backscatter records.
#include "dns/capture.hpp"

#include <gtest/gtest.h>

#include "dns/reverse.hpp"

namespace dnsbs::dns {
namespace {

using net::IPv4Addr;

const IPv4Addr kSource = *IPv4Addr::parse("192.0.2.53");
const IPv4Addr kOriginator = *IPv4Addr::parse("1.2.3.4");

TEST(Capture, AcceptsWellFormedPtrQuery) {
  CaptureStats stats;
  const auto wire = make_ptr_query_packet(7, kOriginator);
  const auto record =
      record_from_packet(wire, util::SimTime::seconds(100), kSource, stats);
  ASSERT_TRUE(record);
  EXPECT_EQ(record->originator, kOriginator);
  EXPECT_EQ(record->querier, kSource);
  EXPECT_EQ(record->time.secs(), 100);
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.packets, 1u);
}

TEST(Capture, RejectsResponses) {
  CaptureStats stats;
  const Message query = Message::ptr_query(7, kOriginator);
  const auto wire = encode(Message::response_to(query, RCode::kNoError));
  EXPECT_FALSE(record_from_packet(wire, util::SimTime::seconds(0), kSource, stats));
  EXPECT_EQ(stats.responses, 1u);
}

TEST(Capture, RejectsForwardQueries) {
  CaptureStats stats;
  Message m;
  m.id = 9;
  m.recursion_desired = true;
  m.questions.push_back(Question{*DnsName::parse("www.example.com"), QType::kA,
                                 QClass::kIN});
  EXPECT_FALSE(
      record_from_packet(encode(m), util::SimTime::seconds(0), kSource, stats));
  EXPECT_EQ(stats.non_ptr, 1u);
}

TEST(Capture, RejectsPtrOutsideReverseTree) {
  CaptureStats stats;
  Message m;
  m.questions.push_back(Question{*DnsName::parse("4.3.2.1.ip6.arpa"), QType::kPTR,
                                 QClass::kIN});
  EXPECT_FALSE(
      record_from_packet(encode(m), util::SimTime::seconds(0), kSource, stats));
  EXPECT_EQ(stats.non_reverse_name, 1u);
}

TEST(Capture, RejectsZoneLevelPtrQueries) {
  // A QNAME-minimized query for the /24 zone has no originator.
  CaptureStats stats;
  Message m;
  m.questions.push_back(Question{*DnsName::parse("3.2.1.in-addr.arpa"), QType::kPTR,
                                 QClass::kIN});
  EXPECT_FALSE(
      record_from_packet(encode(m), util::SimTime::seconds(0), kSource, stats));
  EXPECT_EQ(stats.non_reverse_name, 1u);
}

TEST(Capture, RejectsMalformedBytes) {
  CaptureStats stats;
  const std::vector<std::uint8_t> junk = {0xde, 0xad, 0xbe, 0xef};
  EXPECT_FALSE(record_from_packet(junk, util::SimTime::seconds(0), kSource, stats));
  EXPECT_EQ(stats.malformed, 1u);
}

TEST(Capture, RejectsMultiQuestionPackets) {
  // Decodes fine, so the policy bucket takes it — `malformed` stays
  // reserved for undecodable wire data.
  CaptureStats stats;
  Message m = Message::ptr_query(1, kOriginator);
  m.questions.push_back(m.questions.front());
  EXPECT_FALSE(
      record_from_packet(encode(m), util::SimTime::seconds(0), kSource, stats));
  EXPECT_EQ(stats.rejected_query, 1u);
  EXPECT_EQ(stats.malformed, 0u);
  EXPECT_TRUE(stats.consistent());
}

TEST(Capture, RejectsNonQueryOpcodes) {
  CaptureStats stats;
  Message m = Message::ptr_query(1, kOriginator);
  m.opcode = 2;  // STATUS: decodable, but not a plain query
  EXPECT_FALSE(
      record_from_packet(encode(m), util::SimTime::seconds(0), kSource, stats));
  EXPECT_EQ(stats.rejected_query, 1u);
  EXPECT_EQ(stats.malformed, 0u);
  EXPECT_TRUE(stats.consistent());
}

TEST(Capture, StatsAccumulateAcrossPackets) {
  CaptureStats stats;
  const auto good = make_ptr_query_packet(1, kOriginator);
  for (int i = 0; i < 3; ++i) {
    record_from_packet(good, util::SimTime::seconds(i), kSource, stats);
  }
  const std::vector<std::uint8_t> junk = {1};
  record_from_packet(junk, util::SimTime::seconds(9), kSource, stats);
  EXPECT_EQ(stats.packets, 4u);
  EXPECT_EQ(stats.accepted, 3u);
  EXPECT_EQ(stats.malformed, 1u);
}

// Property: capture(encode(ptr_query(x))) recovers x for arbitrary
// addresses.
TEST(Capture, RoundTripsArbitraryAddresses) {
  CaptureStats stats;
  for (std::uint32_t v : {0u, 1u, 0x01020304u, 0x7f000001u, 0xfffffffeu, 0xffffffffu}) {
    const IPv4Addr addr(v);
    const auto record = record_from_packet(make_ptr_query_packet(2, addr),
                                           util::SimTime::seconds(0), kSource, stats);
    ASSERT_TRUE(record) << addr.to_string();
    EXPECT_EQ(record->originator, addr);
  }
}

}  // namespace
}  // namespace dnsbs::dns
