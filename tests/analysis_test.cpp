// Footprint, time-series, churn, teams, consistency, and diurnal analyses.
#include <gtest/gtest.h>

#include "analysis/churn_analysis.hpp"
#include "analysis/consistency.hpp"
#include "analysis/diurnal.hpp"
#include "analysis/footprint.hpp"
#include "analysis/teams.hpp"
#include "analysis/timeseries.hpp"

namespace dnsbs::analysis {
namespace {

using net::IPv4Addr;

IPv4Addr ip(std::uint32_t v) { return IPv4Addr(v); }

TEST(Footprint, CcdfFromFeatures) {
  std::vector<core::FeatureVector> features(4);
  features[0].footprint = 100;
  features[1].footprint = 50;
  features[2].footprint = 50;
  features[3].footprint = 20;
  const auto points = footprint_ccdf(features);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_DOUBLE_EQ(points[0].first, 20.0);
  EXPECT_DOUBLE_EQ(points[0].second, 1.0);
  EXPECT_DOUBLE_EQ(points[2].first, 100.0);
  EXPECT_DOUBLE_EQ(points[2].second, 0.25);
}

std::vector<core::ClassifiedOriginator> classified_fixture() {
  std::vector<core::ClassifiedOriginator> out(6);
  const core::AppClass classes[] = {core::AppClass::kSpam, core::AppClass::kSpam,
                                    core::AppClass::kScan, core::AppClass::kMail,
                                    core::AppClass::kSpam, core::AppClass::kCdn};
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i].predicted = classes[i];
    out[i].features.footprint = 100 - i;
  }
  return out;
}

TEST(Footprint, TopNMix) {
  const auto classified = classified_fixture();
  const ClassMix top3 = class_mix_top_n(classified, 3);
  EXPECT_EQ(top3.total, 3u);
  EXPECT_NEAR(top3.fraction[static_cast<std::size_t>(core::AppClass::kSpam)], 2.0 / 3, 1e-12);
  EXPECT_NEAR(top3.fraction[static_cast<std::size_t>(core::AppClass::kScan)], 1.0 / 3, 1e-12);
  const ClassMix all = class_mix_top_n(classified, 100);
  EXPECT_EQ(all.total, 6u);
}

TEST(Footprint, ClassCounts) {
  const auto counts = class_counts(classified_fixture());
  EXPECT_EQ(counts[static_cast<std::size_t>(core::AppClass::kSpam)], 3u);
  EXPECT_EQ(counts[static_cast<std::size_t>(core::AppClass::kCdn)], 1u);
}

std::vector<WindowResult> windows_fixture() {
  // Three windows; scanner 1 persists, scanner 2 departs, scanner 3 joins.
  std::vector<WindowResult> windows(3);
  for (std::size_t w = 0; w < 3; ++w) {
    windows[w].index = w;
    windows[w].start = util::SimTime::weeks(static_cast<std::int64_t>(w));
    windows[w].end = util::SimTime::weeks(static_cast<std::int64_t>(w + 1));
  }
  const auto add = [&](std::size_t w, std::uint32_t addr, core::AppClass cls,
                       std::size_t footprint) {
    windows[w].classes[ip(addr)] = cls;
    windows[w].footprints[ip(addr)] = footprint;
  };
  add(0, 1, core::AppClass::kScan, 30);
  add(0, 2, core::AppClass::kScan, 40);
  add(0, 10, core::AppClass::kSpam, 100);
  add(1, 1, core::AppClass::kScan, 35);
  add(1, 10, core::AppClass::kSpam, 90);
  add(2, 1, core::AppClass::kScan, 25);
  add(2, 3, core::AppClass::kScan, 60);
  add(2, 10, core::AppClass::kScan, 80);  // spammer reclassified as scan
  return windows;
}

TEST(TimeSeries, WindowClassCounts) {
  const auto windows = windows_fixture();
  const auto counts = window_class_counts(windows[0]);
  EXPECT_EQ(counts[static_cast<std::size_t>(core::AppClass::kScan)], 2u);
  EXPECT_EQ(counts[static_cast<std::size_t>(core::AppClass::kSpam)], 1u);
}

TEST(TimeSeries, ClassFootprintBox) {
  const auto windows = windows_fixture();
  const auto box = class_footprint_box(windows[0], core::AppClass::kScan);
  EXPECT_EQ(box.n, 2u);
  EXPECT_DOUBLE_EQ(box.min, 30.0);
  EXPECT_DOUBLE_EQ(box.max, 40.0);
}

TEST(TimeSeries, FootprintTrajectory) {
  const auto windows = windows_fixture();
  EXPECT_EQ(footprint_trajectory(windows, ip(1)),
            (std::vector<std::size_t>{30, 35, 25}));
  EXPECT_EQ(footprint_trajectory(windows, ip(2)),
            (std::vector<std::size_t>{40, 0, 0}));
}

TEST(TimeSeries, PersistentOriginatorsRankedByAppearances) {
  const auto windows = windows_fixture();
  const auto ranked = persistent_originators(windows, core::AppClass::kScan, 1);
  ASSERT_GE(ranked.size(), 3u);
  EXPECT_EQ(ranked[0], ip(1));  // appears in all three windows
  const auto strict = persistent_originators(windows, core::AppClass::kScan, 3);
  ASSERT_EQ(strict.size(), 1u);
  EXPECT_EQ(strict[0], ip(1));
}

TEST(ChurnAnalysis, NewContinuingDeparting) {
  const auto windows = windows_fixture();
  const auto churn = weekly_churn(windows, core::AppClass::kScan);
  ASSERT_EQ(churn.size(), 3u);
  EXPECT_EQ(churn[0].fresh, 2u);
  EXPECT_EQ(churn[0].continuing, 0u);
  EXPECT_EQ(churn[1].fresh, 0u);
  EXPECT_EQ(churn[1].continuing, 1u);
  EXPECT_EQ(churn[1].departing, 1u);  // scanner 2 left
  EXPECT_EQ(churn[2].fresh, 2u);      // scanner 3 and reclassified 10
  EXPECT_EQ(churn[2].continuing, 1u);
}

TEST(ChurnAnalysis, MeanTurnover) {
  const auto windows = windows_fixture();
  const auto churn = weekly_churn(windows, core::AppClass::kScan);
  // Window 1: 0/1 fresh; window 2: 2/3 fresh; mean = 1/3.
  EXPECT_NEAR(mean_turnover(churn), (0.0 + 2.0 / 3.0) / 2.0, 1e-12);
}

TEST(Teams, BlocksOfClassAggregatesAcrossWindows) {
  std::vector<WindowResult> windows(1);
  // 5 scanners in 10.0.0.0/24, 2 in 10.0.1.0/24, plus one spam in block 1.
  for (std::uint32_t i = 0; i < 5; ++i) {
    windows[0].classes[ip(0x0a000000u + i)] = core::AppClass::kScan;
  }
  windows[0].classes[ip(0x0a000100u)] = core::AppClass::kScan;
  windows[0].classes[ip(0x0a000101u)] = core::AppClass::kScan;
  windows[0].classes[ip(0x0a000102u)] = core::AppClass::kSpam;

  const auto blocks = blocks_of_class(windows, core::AppClass::kScan, 4);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].originators, 5u);
  EXPECT_EQ(blocks[0].distinct_classes, 1u);

  const auto smaller = blocks_of_class(windows, core::AppClass::kScan, 2);
  ASSERT_EQ(smaller.size(), 2u);
  EXPECT_EQ(smaller[1].distinct_classes, 2u);  // scan + spam in block 1
}

TEST(Teams, BlockTrajectory) {
  auto windows = windows_fixture();
  const auto series =
      block_trajectory(windows, ip(1).slash24(), core::AppClass::kScan);
  ASSERT_EQ(series.size(), 3u);
  EXPECT_EQ(series[0], 2u);  // scanners 1 and 2 share the /24
}

TEST(Consistency, StableOriginatorHasRatioOne) {
  const auto windows = windows_fixture();
  ConsistencyConfig cfg;
  cfg.min_footprint = 20;
  cfg.min_appearances = 3;
  const auto ratios = consistency_ratios(windows, cfg);
  ASSERT_EQ(ratios.size(), 2u);  // originators 1 (3x scan) and 10 (2 spam + 1 scan)
  double lo = std::min(ratios[0], ratios[1]);
  double hi = std::max(ratios[0], ratios[1]);
  EXPECT_NEAR(hi, 1.0, 1e-12);
  EXPECT_NEAR(lo, 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(majority_fraction(ratios), 1.0);
}

TEST(Consistency, FootprintThresholdFilters) {
  const auto windows = windows_fixture();
  ConsistencyConfig cfg;
  cfg.min_footprint = 90;  // only originator 10's first two windows qualify
  cfg.min_appearances = 2;
  const auto ratios = consistency_ratios(windows, cfg);
  ASSERT_EQ(ratios.size(), 1u);
  EXPECT_NEAR(ratios[0], 1.0, 1e-12);  // both qualifying windows say spam
}

TEST(Diurnal, PerMinuteCountsUniqueQueriers) {
  std::vector<dns::QueryRecord> records;
  const auto rec = [](std::int64_t secs, std::uint32_t querier) {
    return dns::QueryRecord{util::SimTime::seconds(secs), ip(querier), ip(0xdead),
                            dns::RCode::kNoError};
  };
  records.push_back(rec(10, 1));
  records.push_back(rec(20, 1));   // same querier, same minute
  records.push_back(rec(30, 2));
  records.push_back(rec(70, 3));   // next minute
  records.push_back(rec(70, 99));  // different originator -> ignored
  records.back().originator = ip(0xbeef);

  const auto series = per_minute_queriers(records, ip(0xdead), util::SimTime::seconds(0),
                                          util::SimTime::seconds(180));
  ASSERT_EQ(series.size(), 3u);
  EXPECT_EQ(series[0], 2u);
  EXPECT_EQ(series[1], 1u);
  EXPECT_EQ(series[2], 0u);
}

TEST(Diurnal, HourlyProfileAndScore) {
  // 48 hours of per-minute data: active 9:00-17:00 only.
  std::vector<std::size_t> per_minute(48 * 60, 0);
  for (std::size_t m = 0; m < per_minute.size(); ++m) {
    const std::size_t hour = (m / 60) % 24;
    if (hour >= 9 && hour < 17) per_minute[m] = 10;
  }
  const auto hourly = hourly_profile(per_minute);
  ASSERT_EQ(hourly.size(), 24u);
  EXPECT_DOUBLE_EQ(hourly[12], 10.0);
  EXPECT_DOUBLE_EQ(hourly[3], 0.0);
  EXPECT_DOUBLE_EQ(diurnality(hourly), 1.0);

  const std::vector<double> flat(24, 5.0);
  EXPECT_DOUBLE_EQ(diurnality(flat), 0.0);
}

}  // namespace
}  // namespace dnsbs::analysis
