#include "dns/json_log.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/rng.hpp"

namespace dnsbs::dns {
namespace {

QueryRecord sample() {
  return QueryRecord{util::SimTime::seconds(12345),
                     *net::IPv4Addr::parse("192.168.0.3"),
                     *net::IPv4Addr::parse("1.2.3.4"), RCode::kNXDomain};
}

TEST(JsonLog, SerializesSchema) {
  EXPECT_EQ(to_json(sample()),
            R"({"t":12345,"q":"192.168.0.3","o":"1.2.3.4","rc":"NXDOMAIN"})");
}

TEST(JsonLog, RoundTrips) {
  const QueryRecord r = sample();
  const auto parsed = from_json(to_json(r));
  ASSERT_TRUE(parsed);
  EXPECT_EQ(*parsed, r);
}

TEST(JsonLog, FieldOrderIrrelevant) {
  const auto parsed =
      from_json(R"({"rc":"NOERROR","o":"1.2.3.4","t":7,"q":"10.0.0.1"})");
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->time.secs(), 7);
  EXPECT_EQ(parsed->rcode, RCode::kNoError);
}

TEST(JsonLog, ToleratesUnknownFieldsAndWhitespace) {
  const auto parsed = from_json(
      R"(  { "t": 9 , "q":"10.0.0.1", "extra": "ignore me", "o":"1.2.3.4", "rc":"SERVFAIL", "n": 42 } )");
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->rcode, RCode::kServFail);
}

TEST(JsonLog, RejectsMalformed) {
  for (const char* bad : {
           "",                                                   // empty
           "not json",                                           // no object
           "{",                                                  // truncated
           R"({"t":1,"q":"10.0.0.1","o":"1.2.3.4"})",            // missing rc
           R"({"t":"x","q":"10.0.0.1","o":"1.2.3.4","rc":"NOERROR"})",  // bad t
           R"({"t":1,"q":"999.0.0.1","o":"1.2.3.4","rc":"NOERROR"})",   // bad ip
           R"({"t":1,"q":"10.0.0.1","o":"1.2.3.4","rc":"WHAT"})",       // bad rc
           R"({"t":1,"q":"10.0.0.1","o":"1.2.3.4","rc":"NOERROR")",     // no close
           R"({"t":1 "q":"10.0.0.1","o":"1.2.3.4","rc":"NOERROR"})",    // no comma
       }) {
    EXPECT_FALSE(from_json(bad)) << bad;
  }
}

TEST(JsonLog, EscapeHandling) {
  // A hand-written line with escapes in an ignored field still parses.
  const auto parsed = from_json(
      R"({"note":"quote \" slash \\ nl \n","t":1,"q":"10.0.0.1","o":"1.2.3.4","rc":"NOERROR"})");
  ASSERT_TRUE(parsed);
}

TEST(JsonLog, WriterReaderRoundTrip) {
  std::stringstream buffer;
  JsonLogWriter writer(buffer);
  util::Rng rng(3);
  std::vector<QueryRecord> records;
  for (int i = 0; i < 200; ++i) {
    QueryRecord r;
    r.time = util::SimTime::seconds(i);
    r.querier = net::IPv4Addr(static_cast<std::uint32_t>(rng.next()));
    r.originator = net::IPv4Addr(static_cast<std::uint32_t>(rng.next()));
    r.rcode = rng.chance(0.2) ? RCode::kNXDomain : RCode::kNoError;
    records.push_back(r);
    writer.write(r);
  }
  EXPECT_EQ(writer.count(), 200u);

  JsonLogReader reader(buffer);
  for (const auto& expected : records) {
    const auto got = reader.next();
    ASSERT_TRUE(got);
    EXPECT_EQ(*got, expected);
  }
  EXPECT_FALSE(reader.next());
  EXPECT_EQ(reader.skipped(), 0u);
}

TEST(JsonLog, ReaderSkipsGarbage) {
  std::stringstream buffer;
  buffer << "garbage\n" << to_json(sample()) << "\n{broken\n";
  JsonLogReader reader(buffer);
  const auto got = reader.next();
  ASSERT_TRUE(got);
  EXPECT_EQ(*got, sample());
  EXPECT_FALSE(reader.next());
  EXPECT_EQ(reader.skipped(), 2u);
}

TEST(JsonLog, InteroperatesWithTextLog) {
  // Same record through both formats yields the same tuple.
  const QueryRecord r = sample();
  const auto via_text = parse_record(serialize(r));
  const auto via_json = from_json(to_json(r));
  ASSERT_TRUE(via_text && via_json);
  EXPECT_EQ(*via_text, *via_json);
}

}  // namespace
}  // namespace dnsbs::dns
