#include <gtest/gtest.h>

#include "ml/cart.hpp"
#include "ml/crossval.hpp"
#include "ml/forest.hpp"
#include "ml/metrics.hpp"
#include "util/rng.hpp"

namespace dnsbs::ml {
namespace {

TEST(ConfusionMatrix, CellsAndDerived) {
  ConfusionMatrix cm(3);
  cm.add(0, 0);
  cm.add(0, 1);
  cm.add(1, 1);
  cm.add(2, 1);
  EXPECT_EQ(cm.total(), 4u);
  EXPECT_EQ(cm.correct(), 2u);
  EXPECT_EQ(cm.true_positives(1), 1u);
  EXPECT_EQ(cm.false_positives(1), 2u);  // 0->1 and 2->1
  EXPECT_EQ(cm.false_negatives(0), 1u);
  EXPECT_EQ(cm.support(0), 2u);
  EXPECT_EQ(cm.support(2), 1u);
}

TEST(ConfusionMatrix, OutOfRangeIgnored) {
  ConfusionMatrix cm(2);
  cm.add(5, 0);
  cm.add(0, 5);
  EXPECT_EQ(cm.total(), 0u);
}

TEST(Metrics, PerfectClassifier) {
  ConfusionMatrix cm(2);
  for (int i = 0; i < 10; ++i) cm.add(i % 2, i % 2);
  const Metrics m = compute_metrics(cm);
  EXPECT_DOUBLE_EQ(m.accuracy, 1.0);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
}

TEST(Metrics, KnownMixedCase) {
  // Class 0: tp=8, fn=2; class 1: tp=6, fn=4; predictions cross over.
  ConfusionMatrix cm(2);
  for (int i = 0; i < 8; ++i) cm.add(0, 0);
  for (int i = 0; i < 2; ++i) cm.add(0, 1);
  for (int i = 0; i < 6; ++i) cm.add(1, 1);
  for (int i = 0; i < 4; ++i) cm.add(1, 0);
  const Metrics m = compute_metrics(cm);
  EXPECT_NEAR(m.accuracy, 14.0 / 20.0, 1e-12);
  // precision_0 = 8/12, precision_1 = 6/8; macro = 0.708333...
  EXPECT_NEAR(m.precision, (8.0 / 12.0 + 6.0 / 8.0) / 2.0, 1e-12);
  EXPECT_NEAR(m.recall, (0.8 + 0.6) / 2.0, 1e-12);
}

TEST(Metrics, AbsentClassesExcludedFromMacro) {
  ConfusionMatrix cm(5);  // classes 2..4 never appear
  cm.add(0, 0);
  cm.add(1, 1);
  const Metrics m = compute_metrics(cm);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
}

TEST(Metrics, EmptyMatrixIsZero) {
  const Metrics m = compute_metrics(ConfusionMatrix(3));
  EXPECT_EQ(m.accuracy, 0.0);
  EXPECT_EQ(m.f1, 0.0);
}

TEST(Metrics, ConfusionHelperBuilds) {
  const std::vector<std::size_t> truth = {0, 1, 1};
  const std::vector<std::size_t> pred = {0, 1, 0};
  const auto cm = confusion(truth, pred, 2);
  EXPECT_EQ(cm.correct(), 2u);
  EXPECT_EQ(cm.total(), 3u);
}

TEST(Metrics, SummarizeMeanAndStddev) {
  std::vector<Metrics> runs(2);
  runs[0].accuracy = 0.6;
  runs[1].accuracy = 0.8;
  const MetricSummary s = summarize(runs);
  EXPECT_EQ(s.runs, 2u);
  EXPECT_NEAR(s.mean.accuracy, 0.7, 1e-12);
  EXPECT_NEAR(s.stddev.accuracy, 0.1, 1e-12);
}

TEST(Metrics, ConfusionToString) {
  ConfusionMatrix cm(2);
  cm.add(0, 1);
  const std::vector<std::string> names = {"aa", "bb"};
  const std::string s = cm.to_string(names);
  EXPECT_NE(s.find("aa"), std::string::npos);
  EXPECT_NE(s.find("bb"), std::string::npos);
}

Dataset easy_data(std::uint64_t seed) {
  Dataset d({"x"}, {"lo", "hi"});
  util::Rng rng(seed);
  for (int i = 0; i < 80; ++i) {
    d.add({rng.uniform(0.0, 0.45)}, 0);
    d.add({rng.uniform(0.55, 1.0)}, 1);
  }
  return d;
}

TEST(CrossVal, HighAccuracyOnEasyData) {
  const Dataset d = easy_data(11);
  CrossValConfig cfg;
  cfg.repetitions = 10;
  const MetricSummary s = cross_validate(
      d,
      [](std::uint64_t seed) {
        CartConfig cc;
        cc.seed = seed;
        return std::unique_ptr<Classifier>(std::make_unique<CartTree>(cc));
      },
      cfg);
  EXPECT_EQ(s.runs, 10u);
  EXPECT_GT(s.mean.accuracy, 0.95);
  EXPECT_LT(s.stddev.accuracy, 0.1);
}

TEST(CrossVal, DeterministicForFixedSeed) {
  const Dataset d = easy_data(12);
  CrossValConfig cfg;
  cfg.repetitions = 5;
  cfg.seed = 321;
  const auto factory = [](std::uint64_t seed) {
    ForestConfig fc;
    fc.n_trees = 10;
    fc.seed = seed;
    return std::unique_ptr<Classifier>(std::make_unique<RandomForest>(fc));
  };
  const MetricSummary a = cross_validate(d, factory, cfg);
  const MetricSummary b = cross_validate(d, factory, cfg);
  EXPECT_DOUBLE_EQ(a.mean.f1, b.mean.f1);
  EXPECT_DOUBLE_EQ(a.stddev.accuracy, b.stddev.accuracy);
}

TEST(VotingClassifier, MajorityWinsAndNameReflectsBase) {
  const Dataset d = easy_data(13);
  VotingClassifier voter(
      [](std::uint64_t seed) {
        ForestConfig fc;
        fc.n_trees = 5;
        fc.seed = seed;
        return std::unique_ptr<Classifier>(std::make_unique<RandomForest>(fc));
      },
      5, 42);
  voter.fit(d);
  EXPECT_EQ(voter.name(), "Voting(RF)");
  const std::vector<double> lo = {0.1};
  const std::vector<double> hi = {0.9};
  EXPECT_EQ(voter.predict(lo), 0u);
  EXPECT_EQ(voter.predict(hi), 1u);
}

}  // namespace
}  // namespace dnsbs::ml
