// WindowedPipeline (the §V-F operational loop) and the balanced-bootstrap
// Random Forest option.
#include <gtest/gtest.h>

#include "analysis/pipeline.hpp"
#include "labeling/curator.hpp"
#include "ml/crossval.hpp"
#include "sim/scenario.hpp"

namespace dnsbs {
namespace {

TEST(WindowedPipeline, RetrainsAndClassifiesPerWindow) {
  sim::ScenarioConfig cfg = sim::b_multi_year_config(421, 5, 0.07);
  sim::Scenario scenario(std::move(cfg));
  labeling::Darknet darknet(labeling::default_darknet_prefixes());
  scenario.engine().set_traffic_observer(&darknet);

  analysis::WindowedPipelineConfig pc;
  pc.sensor.min_queriers = 10;
  pc.forest.n_trees = 40;
  analysis::WindowedPipeline pipeline(pc, scenario.plan().as_db(),
                                      scenario.plan().geo_db(), scenario.naming());

  // Window 0: no labels yet -> no model, empty classification.
  scenario.run_window(util::SimTime::weeks(0), util::SimTime::weeks(1));
  const auto& w0 =
      pipeline.process_window(scenario.authority(0).records(), util::SimTime::weeks(0),
                              util::SimTime::weeks(1));
  scenario.authority(0).clear_records();
  EXPECT_FALSE(pipeline.has_model());
  EXPECT_TRUE(w0.classes.empty());
  ASSERT_FALSE(pipeline.observations().empty());
  EXPECT_FALSE(pipeline.observations()[0].features.empty());

  // Curate from window 0's observation, then process more windows.
  util::Rng rng(5);
  const auto blacklist = labeling::BlacklistSet::build(scenario.population(), {}, rng);
  labeling::Curator curator(scenario, blacklist, darknet, {}, 6);
  pipeline.set_labels(curator.curate(pipeline.observations()[0].features));
  ASSERT_GT(pipeline.labels().size(), 20u);

  for (int w = 1; w < 5; ++w) {
    scenario.run_window(util::SimTime::weeks(w), util::SimTime::weeks(w + 1));
    const auto& result = pipeline.process_window(
        scenario.authority(0).records(), util::SimTime::weeks(w),
        util::SimTime::weeks(w + 1));
    scenario.authority(0).clear_records();
    EXPECT_EQ(result.index, static_cast<std::size_t>(w));
    EXPECT_FALSE(result.classes.empty());
    // Every classified originator carries its footprint.
    for (const auto& [addr, cls] : result.classes) {
      EXPECT_TRUE(result.footprints.contains(addr));
    }
  }
  EXPECT_TRUE(pipeline.has_model());
  EXPECT_EQ(pipeline.results().size(), 5u);

  // Classification quality: most verdicts match injected truth.
  std::size_t checked = 0, correct = 0;
  for (const auto& [addr, cls] : pipeline.results().back().classes) {
    const auto it = scenario.truth().find(addr);
    if (it == scenario.truth().end()) continue;
    ++checked;
    correct += it->second == cls;
  }
  ASSERT_GT(checked, 10u);
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(checked), 0.6);
}

TEST(BalancedForest, LiftsMacroMetricsOnSkewedData) {
  // 2 features, 4 classes; class 0 has 200 examples, the rest 6 each.
  ml::Dataset data({"x", "y"}, {"big", "s1", "s2", "s3"});
  util::Rng rng(7);
  const double centers[4][2] = {{0.2, 0.2}, {0.8, 0.25}, {0.5, 0.8}, {0.85, 0.8}};
  const std::size_t counts[4] = {200, 6, 6, 6};
  for (std::size_t c = 0; c < 4; ++c) {
    for (std::size_t i = 0; i < counts[c]; ++i) {
      data.add({centers[c][0] + rng.normal(0, 0.13), centers[c][1] + rng.normal(0, 0.13)},
               c);
    }
  }
  const auto macro_f1 = [&](bool balanced) {
    ml::CrossValConfig cv;
    cv.repetitions = 10;
    cv.seed = 99;
    const auto summary = ml::cross_validate(
        data,
        [balanced](std::uint64_t seed) {
          ml::ForestConfig fc;
          fc.n_trees = 60;
          fc.seed = seed;
          fc.balanced_bootstrap = balanced;
          return std::unique_ptr<ml::Classifier>(
              std::make_unique<ml::RandomForest>(fc));
        },
        cv);
    return summary.mean.f1;
  };
  const double plain = macro_f1(false);
  const double balanced = macro_f1(true);
  EXPECT_GT(balanced + 0.02, plain);  // at least comparable, usually better
}

TEST(BalancedForest, StillDeterministicAndValid) {
  ml::Dataset data({"x"}, {"a", "b"});
  util::Rng rng(8);
  for (int i = 0; i < 40; ++i) {
    data.add({rng.uniform(0.0, 0.45)}, 0);
    data.add({rng.uniform(0.55, 1.0)}, 1);
  }
  ml::ForestConfig fc;
  fc.n_trees = 20;
  fc.seed = 5;
  fc.balanced_bootstrap = true;
  ml::RandomForest a(fc), b(fc);
  a.fit(data);
  b.fit(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(a.predict(data.row(i)), b.predict(data.row(i)));
    EXPECT_LT(a.predict(data.row(i)), 2u);
  }
}

TEST(ScanTeams, PopulationContainsSameBlockScanners) {
  const sim::AddressPlan plan =
      sim::AddressPlan::generate({.total_slash8 = 40, .sites = 1000}, 17);
  util::Rng rng(18);
  sim::OriginatorPopulationConfig cfg;
  cfg.classes[static_cast<std::size_t>(core::AppClass::kScan)].count = 80;
  const auto population = sim::make_population(plan, cfg, rng);
  ASSERT_GE(population.size(), 80u);

  std::unordered_map<std::uint32_t, std::size_t> per_block;
  for (const auto& spec : population) ++per_block[spec.address.slash24()];
  std::size_t team_blocks = 0;
  for (const auto& [block, members] : per_block) {
    if (members >= 3) ++team_blocks;
  }
  EXPECT_GT(team_blocks, 3u);  // ~18% of 80 seeds spawn teams

  // Team members share the seed's port.
  for (const auto& [block, members] : per_block) {
    if (members < 3) continue;
    std::uint16_t port = 0xffff;
    for (const auto& spec : population) {
      if (spec.address.slash24() != block) continue;
      if (port == 0xffff) {
        port = spec.port;
      } else {
        EXPECT_EQ(spec.port, port);
      }
    }
  }
}

}  // namespace
}  // namespace dnsbs
