#include "ml/dataset.hpp"

#include <gtest/gtest.h>

#include <set>

namespace dnsbs::ml {
namespace {

Dataset two_feature_dataset() {
  Dataset d({"f0", "f1"}, {"a", "b", "c"});
  d.add({0.0, 1.0}, 0);
  d.add({1.0, 2.0}, 1);
  d.add({2.0, 3.0}, 1);
  d.add({3.0, 4.0}, 2);
  return d;
}

TEST(Dataset, BasicAccessors) {
  const Dataset d = two_feature_dataset();
  EXPECT_EQ(d.size(), 4u);
  EXPECT_EQ(d.feature_count(), 2u);
  EXPECT_EQ(d.class_count(), 3u);
  EXPECT_EQ(d.label(1), 1u);
  EXPECT_DOUBLE_EQ(d.row(2)[0], 2.0);
  EXPECT_DOUBLE_EQ(d.row(2)[1], 3.0);
}

TEST(Dataset, AddValidatesShape) {
  Dataset d({"f0"}, {"a"});
  EXPECT_THROW(d.add({1.0, 2.0}, 0), std::invalid_argument);
  EXPECT_THROW(d.add({1.0}, 5), std::invalid_argument);
}

TEST(Dataset, ClassCounts) {
  const auto counts = two_feature_dataset().class_counts();
  EXPECT_EQ(counts, (std::vector<std::size_t>{1, 2, 1}));
}

TEST(Dataset, SubsetPreservesRows) {
  const Dataset d = two_feature_dataset();
  const std::vector<std::size_t> idx = {3, 0};
  const Dataset s = d.subset(idx);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.label(0), 2u);
  EXPECT_DOUBLE_EQ(s.row(0)[1], 4.0);
  EXPECT_EQ(s.label(1), 0u);
}

TEST(Dataset, StratifiedSplitCoversAllRows) {
  Dataset d({"x"}, {"a", "b"});
  for (int i = 0; i < 50; ++i) d.add({static_cast<double>(i)}, i % 2);
  util::Rng rng(3);
  const auto [train, test] = d.stratified_split(rng, 0.6);
  EXPECT_EQ(train.size() + test.size(), d.size());
  std::set<std::size_t> all(train.begin(), train.end());
  all.insert(test.begin(), test.end());
  EXPECT_EQ(all.size(), d.size());
}

TEST(Dataset, StratifiedSplitKeepsClassShares) {
  Dataset d({"x"}, {"a", "b"});
  for (int i = 0; i < 100; ++i) d.add({0.0}, i < 80 ? 0 : 1);
  util::Rng rng(5);
  const auto [train, test] = d.stratified_split(rng, 0.6);
  std::size_t train_b = 0;
  for (const auto i : train) {
    if (d.label(i) == 1) ++train_b;
  }
  EXPECT_EQ(train_b, 12u);  // 60% of 20
}

TEST(Dataset, StratifiedSplitSmallClassesOnBothSides) {
  Dataset d({"x"}, {"a", "b"});
  d.add({0.0}, 0);
  d.add({1.0}, 0);
  d.add({2.0}, 1);
  d.add({3.0}, 1);
  util::Rng rng(7);
  const auto [train, test] = d.stratified_split(rng, 0.9);
  // With 2 examples per class, both sides must get one of each.
  EXPECT_EQ(train.size(), 2u);
  EXPECT_EQ(test.size(), 2u);
}

TEST(Dataset, WithFeaturesProjects) {
  const Dataset d = two_feature_dataset();
  const std::vector<std::size_t> cols = {1};
  const Dataset p = d.with_features(cols);
  EXPECT_EQ(p.feature_count(), 1u);
  EXPECT_EQ(p.feature_names()[0], "f1");
  EXPECT_EQ(p.size(), d.size());
  EXPECT_DOUBLE_EQ(p.row(3)[0], 4.0);
  EXPECT_EQ(p.label(3), 2u);
}

}  // namespace
}  // namespace dnsbs::ml
