// Descriptive statistics: moments, quantiles, entropy, fits, CCDF.
#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace dnsbs::util {
namespace {

TEST(Moments, EmptyInputIsZero) {
  EXPECT_EQ(mean({}), 0.0);
  EXPECT_EQ(variance({}), 0.0);
  EXPECT_EQ(stddev({}), 0.0);
}

TEST(Moments, KnownValues) {
  const std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_DOUBLE_EQ(variance(xs), 4.0);
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
}

TEST(Quantile, EdgesAndMedian) {
  const std::vector<double> xs = {5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
}

TEST(Quantile, Interpolates) {
  const std::vector<double> xs = {0, 10};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.75), 7.5);
}

TEST(Quantile, EmptyIsZero) { EXPECT_EQ(quantile({}, 0.5), 0.0); }

TEST(BoxStats, OrderedFields) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(i);
  const BoxStats b = box_stats(xs);
  EXPECT_EQ(b.n, 100u);
  EXPECT_DOUBLE_EQ(b.min, 1.0);
  EXPECT_DOUBLE_EQ(b.max, 100.0);
  EXPECT_LT(b.p10, b.p25);
  EXPECT_LT(b.p25, b.p50);
  EXPECT_LT(b.p50, b.p75);
  EXPECT_LT(b.p75, b.p90);
  EXPECT_NEAR(b.p50, 50.5, 0.01);
}

TEST(Entropy, UniformIsLogN) {
  const std::vector<std::size_t> counts = {10, 10, 10, 10};
  EXPECT_NEAR(shannon_entropy(counts), 2.0, 1e-12);
  EXPECT_NEAR(normalized_entropy(counts), 1.0, 1e-12);
}

TEST(Entropy, SingleBucketIsZero) {
  const std::vector<std::size_t> counts = {42};
  EXPECT_EQ(shannon_entropy(counts), 0.0);
  EXPECT_EQ(normalized_entropy(counts), 0.0);
}

TEST(Entropy, ZeroCountsIgnored) {
  const std::vector<std::size_t> a = {5, 0, 5, 0};
  const std::vector<std::size_t> b = {5, 5};
  EXPECT_DOUBLE_EQ(shannon_entropy(a), shannon_entropy(b));
  EXPECT_DOUBLE_EQ(normalized_entropy(a), normalized_entropy(b));
}

TEST(Entropy, SkewLowersNormalizedEntropy) {
  const std::vector<std::size_t> skewed = {97, 1, 1, 1};
  EXPECT_LT(normalized_entropy(skewed), 0.5);
  EXPECT_GT(normalized_entropy(skewed), 0.0);
}

TEST(Counter, CountsAndTotals) {
  Counter<int> c;
  c.add(1);
  c.add(1);
  c.add(2, 3);
  EXPECT_EQ(c.distinct(), 2u);
  EXPECT_EQ(c.total(), 5u);
  auto values = c.values();
  std::sort(values.begin(), values.end());
  EXPECT_EQ(values, (std::vector<std::size_t>{2, 3}));
}

TEST(LinearFit, ExactLine) {
  const std::vector<double> xs = {1, 2, 3, 4};
  const std::vector<double> ys = {3, 5, 7, 9};  // y = 1 + 2x
  const LinearFit f = linear_fit(xs, ys);
  EXPECT_NEAR(f.intercept, 1.0, 1e-9);
  EXPECT_NEAR(f.slope, 2.0, 1e-9);
  EXPECT_NEAR(f.r2, 1.0, 1e-9);
}

TEST(LinearFit, DegenerateInputs) {
  EXPECT_EQ(linear_fit({}, {}).slope, 0.0);
  const std::vector<double> one = {1.0};
  EXPECT_EQ(linear_fit(one, one).slope, 0.0);
}

TEST(PowerLawFit, RecoversExponent) {
  std::vector<double> xs, ys;
  for (double x = 1; x <= 1000; x *= 2) {
    xs.push_back(x);
    ys.push_back(2.5 * std::pow(x, 0.71));
  }
  const PowerLawFit f = power_law_fit(xs, ys);
  EXPECT_NEAR(f.alpha, 0.71, 1e-6);
  EXPECT_NEAR(f.c, 2.5, 1e-6);
  EXPECT_NEAR(f.r2, 1.0, 1e-9);
}

TEST(PowerLawFit, IgnoresNonPositive) {
  const std::vector<double> xs = {0, -1, 1, 10, 100};
  const std::vector<double> ys = {5, 5, 1, 10, 100};
  const PowerLawFit f = power_law_fit(xs, ys);
  EXPECT_NEAR(f.alpha, 1.0, 1e-9);
}

TEST(Ccdf, StepsAtDistinctValues) {
  const auto points = ccdf({1, 1, 2, 4});
  ASSERT_EQ(points.size(), 3u);
  EXPECT_DOUBLE_EQ(points[0].first, 1.0);
  EXPECT_DOUBLE_EQ(points[0].second, 1.0);
  EXPECT_DOUBLE_EQ(points[1].first, 2.0);
  EXPECT_DOUBLE_EQ(points[1].second, 0.5);
  EXPECT_DOUBLE_EQ(points[2].first, 4.0);
  EXPECT_DOUBLE_EQ(points[2].second, 0.25);
}

TEST(Ccdf, EmptyInput) { EXPECT_TRUE(ccdf({}).empty()); }

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);    // bucket 0
  h.add(9.9);    // bucket 4
  h.add(-3.0);   // clamps to 0
  h.add(100.0);  // clamps to 4
  h.add(4.0);    // bucket 2
  EXPECT_EQ(h.bucket_count(), 5u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_DOUBLE_EQ(h.bucket_low(2), 4.0);
}

}  // namespace
}  // namespace dnsbs::util
