// End-to-end packet-capture path: authority records rendered as raw DNS
// query packets, re-ingested via dns::record_from_packet, must drive the
// sensor to the identical result as direct log ingestion (paper §III-A:
// packet capture and server logging are interchangeable collection paths).
#include <gtest/gtest.h>

#include "core/sensor.hpp"
#include "dns/capture.hpp"
#include "sim/scenario.hpp"

namespace dnsbs {
namespace {

TEST(CaptureIntegration, PacketPathMatchesLogPath) {
  sim::Scenario scenario(sim::jp_ditl_config(2211, 0.06));
  scenario.run();
  const auto& records = scenario.authority(0).records();
  ASSERT_GT(records.size(), 1000u);

  // Path A: direct ingestion.
  core::Sensor direct({}, scenario.plan().as_db(), scenario.plan().geo_db(),
                      scenario.naming());
  direct.ingest_all(records);
  const auto direct_features = direct.extract_features();

  // Path B: render each record as the wire packet the querier sent, then
  // recover it through the capture filter.
  core::Sensor captured({}, scenario.plan().as_db(), scenario.plan().geo_db(),
                        scenario.naming());
  dns::CaptureStats stats;
  std::uint16_t id = 0;
  for (const auto& r : records) {
    const auto wire = dns::make_ptr_query_packet(++id, r.originator);
    auto recovered = dns::record_from_packet(wire, r.time, r.querier, stats);
    ASSERT_TRUE(recovered);
    // The capture layer cannot know the eventual rcode; carry it over as
    // a fuller capture stack (matching responses) would.
    recovered->rcode = r.rcode;
    captured.ingest(*recovered);
  }
  EXPECT_EQ(stats.accepted, records.size());
  EXPECT_EQ(stats.malformed + stats.responses + stats.rejected_query + stats.non_ptr +
                stats.non_reverse_name,
            0u);

  const auto captured_features = captured.extract_features();
  ASSERT_EQ(captured_features.size(), direct_features.size());
  for (std::size_t i = 0; i < direct_features.size(); ++i) {
    EXPECT_EQ(captured_features[i].originator, direct_features[i].originator);
    EXPECT_EQ(captured_features[i].footprint, direct_features[i].footprint);
    for (std::size_t f = 0; f < core::kQuerierCategoryCount; ++f) {
      EXPECT_DOUBLE_EQ(captured_features[i].statics[f], direct_features[i].statics[f]);
    }
  }
}

TEST(CaptureIntegration, MixedTrafficIsFiltered) {
  // A capture point sees forward queries and responses too; only the
  // reverse queries must reach the sensor.
  dns::CaptureStats stats;
  std::vector<dns::QueryRecord> accepted;
  const net::IPv4Addr source = *net::IPv4Addr::parse("10.0.0.1");

  const auto offer = [&](const std::vector<std::uint8_t>& wire) {
    if (auto r = dns::record_from_packet(wire, util::SimTime::seconds(0), source, stats)) {
      accepted.push_back(*r);
    }
  };

  offer(dns::make_ptr_query_packet(1, *net::IPv4Addr::parse("1.2.3.4")));
  {
    dns::Message forward;
    forward.questions.push_back(dns::Question{*dns::DnsName::parse("www.example.com"),
                                              dns::QType::kA, dns::QClass::kIN});
    offer(dns::encode(forward));
  }
  {
    const auto q = dns::Message::ptr_query(2, *net::IPv4Addr::parse("5.6.7.8"));
    offer(dns::encode(dns::Message::response_to(q, dns::RCode::kNoError)));
  }
  offer(dns::make_ptr_query_packet(3, *net::IPv4Addr::parse("9.9.9.9")));

  ASSERT_EQ(accepted.size(), 2u);
  EXPECT_EQ(accepted[0].originator, *net::IPv4Addr::parse("1.2.3.4"));
  EXPECT_EQ(accepted[1].originator, *net::IPv4Addr::parse("9.9.9.9"));
  EXPECT_EQ(stats.non_ptr, 1u);
  EXPECT_EQ(stats.responses, 1u);
}

}  // namespace
}  // namespace dnsbs
