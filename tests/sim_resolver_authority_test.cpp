// Resolver cache hierarchy and authority observation rules.
#include <gtest/gtest.h>

#include "sim/authority.hpp"
#include "sim/scenario.hpp"

namespace dnsbs::sim {
namespace {

class ResolverTest : public ::testing::Test {
 protected:
  ResolverTest()
      : plan_(AddressPlan::generate(plan_config(), 1)),
        naming_(plan_, NamingConfig{}, 1) {}

  static AddressPlanConfig plan_config() {
    AddressPlanConfig cfg;
    cfg.total_slash8 = 40;
    cfg.sites = 800;
    return cfg;
  }

  /// A querier that is an ISP resolver (busy, warm upper cache).
  net::IPv4Addr busy_resolver() const {
    for (const std::size_t idx : plan_.sites_of_type(SiteType::kResidential)) {
      return plan_.sites()[idx].prefix.at(1);
    }
    return plan_.sites()[0].prefix.at(1);
  }

  /// An originator address that has a PTR record.
  net::IPv4Addr named_originator() const {
    util::Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
      const net::IPv4Addr a = plan_.random_host(rng);
      if (naming_.has_reverse(a)) return a;
    }
    return plan_.sites()[0].prefix.at(2);
  }

  net::IPv4Addr nameless_originator() const {
    util::Rng rng(6);
    for (int i = 0; i < 5000; ++i) {
      const net::IPv4Addr a = plan_.random_host(rng);
      if (!naming_.has_reverse(a) &&
          naming_.resolve(a).status == core::ResolveStatus::kNxDomain) {
        return a;
      }
    }
    ADD_FAILURE() << "no nameless host found";
    return plan_.sites()[0].prefix.at(3);
  }

  AddressPlan plan_;
  NamingModel naming_;
};

TEST_F(ResolverTest, PtrCachingSuppressesRepeatLookups) {
  ResolverSim sim(naming_, ResolverSimConfig{}, 1);
  const net::IPv4Addr querier = busy_resolver();
  const net::IPv4Addr originator = named_originator();

  const auto first = sim.resolve(querier, originator, util::SimTime::seconds(0));
  EXPECT_FALSE(first.served_from_cache);
  EXPECT_TRUE(first.reached_final);
  EXPECT_EQ(first.rcode, dns::RCode::kNoError);

  const auto second = sim.resolve(querier, originator, util::SimTime::seconds(5));
  EXPECT_TRUE(second.served_from_cache);
  EXPECT_FALSE(second.reached_final);

  // After the PTR TTL passes, the resolver must re-query.
  const auto later = sim.resolve(
      querier, originator,
      util::SimTime::seconds(naming_.ptr_ttl(originator) + 10));
  EXPECT_FALSE(later.served_from_cache);
}

TEST_F(ResolverTest, NegativeCachingForNamelessOriginators) {
  ResolverSim sim(naming_, ResolverSimConfig{}, 2);
  const net::IPv4Addr querier = busy_resolver();
  const net::IPv4Addr originator = nameless_originator();

  const auto first = sim.resolve(querier, originator, util::SimTime::seconds(0));
  EXPECT_EQ(first.rcode, dns::RCode::kNXDomain);
  const auto second = sim.resolve(querier, originator, util::SimTime::seconds(3));
  EXPECT_TRUE(second.served_from_cache);
  EXPECT_EQ(second.rcode, dns::RCode::kNXDomain);
}

TEST_F(ResolverTest, NationalSeenOncePerSlash24PerTtl) {
  ResolverSimConfig cfg;
  ResolverSim sim(naming_, cfg, 3);
  const net::IPv4Addr querier = busy_resolver();
  const net::IPv4Addr o1 = named_originator();
  // Another originator in the same /24.
  const net::IPv4Addr o2(o1.value() ^ 1);

  const auto first = sim.resolve(querier, o1, util::SimTime::seconds(0));
  EXPECT_TRUE(first.reached_national);
  // Same /24 zone NS is now cached: the national server is skipped.
  const auto sibling = sim.resolve(querier, o2, util::SimTime::seconds(10));
  EXPECT_FALSE(sibling.reached_national);
  EXPECT_TRUE(sibling.reached_final);
}

TEST_F(ResolverTest, HierarchyOrderingOverManyLookups) {
  ResolverSim sim(naming_, ResolverSimConfig{}, 4);
  util::Rng rng(7);
  std::size_t finals = 0, nationals = 0, roots = 0;
  for (int i = 0; i < 3000; ++i) {
    const net::IPv4Addr querier = plan_.random_host(rng);
    const net::IPv4Addr originator = plan_.random_host(rng);
    const auto outcome = sim.resolve(querier, originator, util::SimTime::seconds(i));
    finals += outcome.reached_final;
    nationals += outcome.reached_national;
    roots += outcome.reached_root;
  }
  EXPECT_GT(finals, 0u);
  EXPECT_GE(finals, nationals);
  EXPECT_GT(nationals, roots);  // caching attenuates up the hierarchy
  EXPECT_GT(roots, 0u);
}

TEST_F(ResolverTest, BusynessDependsOnRole) {
  ResolverSim sim(naming_, ResolverSimConfig{}, 5);
  EXPECT_EQ(sim.busyness_of(busy_resolver()), ResolverBusyness::kBusy);
}

TEST_F(ResolverTest, StatsAggregate) {
  ResolverSim sim(naming_, ResolverSimConfig{}, 6);
  const net::IPv4Addr querier = busy_resolver();
  const net::IPv4Addr originator = named_originator();
  sim.resolve(querier, originator, util::SimTime::seconds(0));
  sim.resolve(querier, originator, util::SimTime::seconds(1));
  const auto stats = sim.total_stats();
  EXPECT_GT(stats.lookups, 0u);
  EXPECT_GT(stats.hits_positive + stats.hits_negative, 0u);
  EXPECT_EQ(sim.resolver_count(), 1u);
}

// ---- Authority ----

dns::QueryRecord record_for(net::IPv4Addr querier, net::IPv4Addr originator) {
  return dns::QueryRecord{util::SimTime::seconds(0), querier, originator,
                          dns::RCode::kNoError};
}

TEST(Authority, NationalCoversOnlyItsCountry) {
  netdb::GeoDb geo;
  geo.add(*net::Prefix::parse("10.0.0.0/8"), netdb::CountryCode('j', 'p'));
  geo.add(*net::Prefix::parse("20.0.0.0/8"), netdb::CountryCode('u', 's'));

  Authority national(national_authority(netdb::CountryCode('j', 'p')));
  ResolveOutcome outcome;
  outcome.reached_final = true;
  outcome.reached_national = true;

  double roll = 0.0;
  national.offer(record_for(*net::IPv4Addr::parse("20.1.1.1"),
                            *net::IPv4Addr::parse("10.1.1.1")),
                 outcome, netdb::Region::kAsia, geo, roll);
  EXPECT_EQ(national.records().size(), 1u);

  roll = 0.0;
  national.offer(record_for(*net::IPv4Addr::parse("10.1.1.1"),
                            *net::IPv4Addr::parse("20.1.1.1")),
                 outcome, netdb::Region::kAsia, geo, roll);
  EXPECT_EQ(national.records().size(), 1u);  // us originator filtered out
}

TEST(Authority, NationalIgnoresCachedPaths) {
  netdb::GeoDb geo;
  geo.add(*net::Prefix::parse("10.0.0.0/8"), netdb::CountryCode('j', 'p'));
  Authority national(national_authority(netdb::CountryCode('j', 'p')));
  ResolveOutcome outcome;
  outcome.reached_final = true;
  outcome.reached_national = false;  // /24 NS was cached
  double roll = 0.0;
  national.offer(record_for(*net::IPv4Addr::parse("10.2.2.2"),
                            *net::IPv4Addr::parse("10.1.1.1")),
                 outcome, netdb::Region::kAsia, geo, roll);
  EXPECT_TRUE(national.records().empty());
}

TEST(Authority, FinalZoneFilter) {
  netdb::GeoDb geo;
  AuthorityConfig cfg;
  cfg.name = "final";
  cfg.level = AuthorityLevel::kFinal;
  cfg.zone = *net::Prefix::parse("10.1.2.0/24");
  Authority final_auth(cfg);
  ResolveOutcome outcome;
  outcome.reached_final = true;
  double roll = 0.0;
  final_auth.offer(record_for(*net::IPv4Addr::parse("20.0.0.1"),
                              *net::IPv4Addr::parse("10.1.2.3")),
                   outcome, netdb::Region::kEurope, geo, roll);
  final_auth.offer(record_for(*net::IPv4Addr::parse("20.0.0.1"),
                              *net::IPv4Addr::parse("10.1.3.3")),
                   outcome, netdb::Region::kEurope, geo, roll);
  EXPECT_EQ(final_auth.records().size(), 1u);
}

TEST(Authority, RootSelectionConsumesSharedRoll) {
  netdb::GeoDb geo;
  Authority b(b_root_authority());
  Authority m(m_root_authority());
  ResolveOutcome outcome;
  outcome.reached_final = true;
  outcome.reached_root = true;
  const auto record = record_for(*net::IPv4Addr::parse("20.0.0.1"),
                                 *net::IPv4Addr::parse("10.1.2.3"));
  // Roll inside B's NA band: B observes, M must not.
  double roll = 0.05;
  b.offer(record, outcome, netdb::Region::kNorthAmerica, geo, roll);
  m.offer(record, outcome, netdb::Region::kNorthAmerica, geo, roll);
  EXPECT_EQ(b.records().size(), 1u);
  EXPECT_EQ(m.records().size(), 0u);

  // Roll past both bands: neither observes (one of the other 11 roots).
  roll = 0.99;
  b.offer(record, outcome, netdb::Region::kNorthAmerica, geo, roll);
  m.offer(record, outcome, netdb::Region::kNorthAmerica, geo, roll);
  EXPECT_EQ(b.records().size(), 1u);
  EXPECT_EQ(m.records().size(), 0u);
}

TEST(Authority, RootIgnoresNonRootPaths) {
  netdb::GeoDb geo;
  Authority m(m_root_authority());
  ResolveOutcome outcome;
  outcome.reached_final = true;
  outcome.reached_root = false;
  double roll = 0.0;
  m.offer(record_for(*net::IPv4Addr::parse("20.0.0.1"),
                     *net::IPv4Addr::parse("10.1.2.3")),
          outcome, netdb::Region::kAsia, geo, roll);
  EXPECT_TRUE(m.records().empty());
}

class SamplingTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SamplingTest, DeterministicOneInN) {
  const std::uint32_t n = GetParam();
  netdb::GeoDb geo;
  Authority m(m_root_authority(n));
  ResolveOutcome outcome;
  outcome.reached_final = true;
  outcome.reached_root = true;
  constexpr int kOffers = 1200;
  for (int i = 0; i < kOffers; ++i) {
    double roll = 0.0;  // always inside M's band
    m.offer(record_for(*net::IPv4Addr::parse("20.0.0.1"),
                       *net::IPv4Addr::parse("10.1.2.3")),
            outcome, netdb::Region::kAsia, geo, roll);
  }
  EXPECT_EQ(m.records().size(), static_cast<std::size_t>(kOffers / n));
}

INSTANTIATE_TEST_SUITE_P(SampleRates, SamplingTest, ::testing::Values(1u, 2u, 10u, 100u));

}  // namespace
}  // namespace dnsbs::sim
