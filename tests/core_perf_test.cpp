// Performance-path invariants: the per-interval querier-classification
// cache must resolve each unique querier exactly once per
// extract_features() call, and the amortized (bucketed-expiry) dedup prune
// must keep window state bounded and byte-identical to a full-walk prune
// under long skewed streams.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/querier_cache.hpp"
#include "core/sensor.hpp"

namespace dnsbs::core {
namespace {

using dns::QueryRecord;
using dns::RCode;
using net::IPv4Addr;
using util::SimTime;

QueryRecord rec(std::int64_t secs, IPv4Addr querier, IPv4Addr originator) {
  return QueryRecord{SimTime::seconds(secs), querier, originator, RCode::kNoError};
}

/// Counts resolve() calls per querier; thread-safe because the cache build
/// classifies unique queriers in parallel.
class CountingResolver final : public QuerierResolver {
 public:
  QuerierInfo resolve(IPv4Addr querier) const override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++counts_[querier.value()];
    }
    QuerierInfo info;
    info.status = querier.value() % 2 == 0 ? ResolveStatus::kNxDomain
                                           : ResolveStatus::kUnreachable;
    return info;
  }

  std::map<std::uint32_t, int> counts() const {
    std::lock_guard<std::mutex> lock(mu_);
    return counts_;
  }

 private:
  mutable std::mutex mu_;
  mutable std::map<std::uint32_t, int> counts_;
};

TEST(QuerierCache, ExtractFeaturesResolvesEachQuerierOnce) {
  netdb::AsDb as_db;
  netdb::GeoDb geo_db;
  as_db.add(*net::Prefix::parse("10.0.0.0/8"), 1, "as");
  geo_db.add(*net::Prefix::parse("10.0.0.0/8"), netdb::CountryCode('j', 'p'));

  // 6 originators share a pool of 30 queriers; every originator is queried
  // by every querier, so a per-originator tally without the cache would
  // resolve 180 times.
  std::vector<QueryRecord> records;
  std::int64_t t = 0;
  for (int o = 1; o <= 6; ++o) {
    for (int q = 1; q <= 30; ++q) {
      records.push_back(rec(t++, *IPv4Addr::parse("10.0.0." + std::to_string(q)),
                            *IPv4Addr::parse("1.0.0." + std::to_string(o))));
    }
  }

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    const CountingResolver resolver;
    SensorConfig cfg;
    cfg.min_queriers = 3;
    cfg.threads = threads;
    Sensor sensor(cfg, as_db, geo_db, resolver);
    sensor.ingest_all(records);

    const auto features = sensor.extract_features();
    ASSERT_EQ(features.size(), 6u) << "threads=" << threads;

    const auto counts = resolver.counts();
    EXPECT_EQ(counts.size(), 30u) << "threads=" << threads;
    for (const auto& [querier, count] : counts) {
      EXPECT_EQ(count, 1) << "querier " << querier << " threads=" << threads;
    }
  }
}

TEST(QuerierCache, CacheHitsMatchDirectClassification) {
  const CountingResolver resolver;
  QuerierClassificationCache cache(resolver);

  OriginatorAggregator agg;
  for (int q = 1; q <= 10; ++q) {
    agg.add(rec(q, *IPv4Addr::parse("10.0.0." + std::to_string(q)),
                *IPv4Addr::parse("1.1.1.1")));
  }
  const auto interesting = agg.select_interesting(1, 0);
  cache.build(interesting, 1);
  EXPECT_EQ(cache.size(), 10u);

  for (int q = 1; q <= 10; ++q) {
    const IPv4Addr querier = *IPv4Addr::parse("10.0.0." + std::to_string(q));
    EXPECT_EQ(cache.category(querier), classify_querier(resolver.resolve(querier)));
  }
}

/// Reference deduplicator with the pre-optimization semantics: full-map
/// walk at every 2*window boundary of the virtual clock.  The production
/// bucketed-expiry prune must retain exactly the same entries.
class OracleDedup {
 public:
  explicit OracleDedup(std::int64_t window) : window_(window) {}

  bool admit(const QueryRecord& r) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(r.querier.value()) << 32) | r.originator.value();
    const std::int64_t t = r.time.secs();
    const auto [it, inserted] = last_seen_.try_emplace(key, t);
    bool pass = true;
    if (!inserted) {
      if (t - it->second < window_ && t >= it->second) {
        pass = false;
      } else {
        it->second = t;
      }
    }
    pass ? ++admitted_ : ++suppressed_;
    const std::int64_t stride = 2 * window_;
    const std::int64_t interval = t / stride;
    if (interval > last_interval_) {
      const std::int64_t now = interval * stride;
      for (auto it2 = last_seen_.begin(); it2 != last_seen_.end();) {
        it2 = now - it2->second >= window_ ? last_seen_.erase(it2) : std::next(it2);
      }
      last_interval_ = interval;
    }
    return pass;
  }

  std::size_t state_size() const { return last_seen_.size(); }
  std::uint64_t admitted() const { return admitted_; }
  std::uint64_t suppressed() const { return suppressed_; }
  const std::unordered_map<std::uint64_t, std::int64_t>& state() const {
    return last_seen_;
  }

 private:
  std::int64_t window_;
  std::unordered_map<std::uint64_t, std::int64_t> last_seen_;
  std::int64_t last_interval_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t suppressed_ = 0;
};

TEST(DeduplicatorPrune, LongSkewedStreamStaysBoundedAndMatchesOracle) {
  // Skewed stream: one hot pair every second (constantly refreshed, never
  // expired) plus a cold one-shot pair per second that must age out.  With
  // 100k seconds of traffic the full stream touches ~100k distinct pairs;
  // live state must stay within a couple of windows' worth.
  const std::int64_t kWindow = 30;
  Deduplicator dedup(SimTime::seconds(kWindow));
  OracleDedup oracle(kWindow);

  const IPv4Addr hot_querier = *IPv4Addr::parse("10.0.0.1");
  const IPv4Addr hot_originator = *IPv4Addr::parse("1.1.1.1");
  std::size_t max_state = 0;
  for (std::int64_t t = 0; t < 100000; ++t) {
    const QueryRecord hot = rec(t, hot_querier, hot_originator);
    ASSERT_EQ(dedup.admit(hot), oracle.admit(hot)) << "t=" << t;
    // Cold pair: unique querier per second, one query each.
    const QueryRecord cold =
        rec(t, IPv4Addr(0x0a000000u + static_cast<std::uint32_t>(t % 16384)),
            IPv4Addr(0x02000000u + static_cast<std::uint32_t>(t / 16384)));
    ASSERT_EQ(dedup.admit(cold), oracle.admit(cold)) << "t=" << t;
    if (t % 1000 == 999) {
      ASSERT_EQ(dedup.state_size(), oracle.state_size()) << "t=" << t;
    }
    max_state = std::max(max_state, dedup.state_size());
  }

  EXPECT_EQ(dedup.admitted(), oracle.admitted());
  EXPECT_EQ(dedup.suppressed(), oracle.suppressed());
  EXPECT_EQ(dedup.state_size(), oracle.state_size());
  // Regression bound: the amortized prune keeps live state near the
  // per-2-window churn (~120 pairs), nowhere near the ~100k total pairs.
  EXPECT_LT(max_state, 500u);
}

TEST(DeduplicatorPrune, BackdatedRefreshStillExpires) {
  // A record that runs the clock backwards refreshes the entry; the
  // bucketed expiry must still drop it once the (forward) clock leaves the
  // window, exactly as a full-walk prune would.
  const std::int64_t kWindow = 30;
  Deduplicator dedup(SimTime::seconds(kWindow));
  OracleDedup oracle(kWindow);
  const std::vector<QueryRecord> stream = {
      rec(100, *IPv4Addr::parse("10.0.0.1"), *IPv4Addr::parse("1.1.1.1")),
      rec(10, *IPv4Addr::parse("10.0.0.1"), *IPv4Addr::parse("1.1.1.1")),  // backdated
      rec(101, *IPv4Addr::parse("10.0.0.2"), *IPv4Addr::parse("1.1.1.1")),
      rec(240, *IPv4Addr::parse("10.0.0.3"), *IPv4Addr::parse("1.1.1.1")),
      rec(600, *IPv4Addr::parse("10.0.0.4"), *IPv4Addr::parse("1.1.1.1")),
  };
  for (const auto& r : stream) {
    EXPECT_EQ(dedup.admit(r), oracle.admit(r));
    EXPECT_EQ(dedup.state_size(), oracle.state_size());
  }
}

TEST(DeduplicatorPrune, ShardedMergeMatchesSerialStateUnderChurn) {
  // Same stream ingested serially and via two originator-disjoint shards
  // with a final catch_up_prune: merged state must be identical.
  const std::int64_t kWindow = 30;
  Deduplicator serial(SimTime::seconds(kWindow));
  Deduplicator shard_a(SimTime::seconds(kWindow));
  Deduplicator shard_b(SimTime::seconds(kWindow));

  SimTime batch_end;
  for (std::int64_t t = 0; t < 5000; ++t) {
    // Pairs repeat every 26 s (< 30 s window), so suppression, refresh,
    // and expiry all occur in both the serial and sharded runs.
    const IPv4Addr querier(0x0a000000u + static_cast<std::uint32_t>(t % 13));
    const IPv4Addr originator(0x01000000u + static_cast<std::uint32_t>(t % 2));
    const QueryRecord r = rec(t, querier, originator);
    serial.admit(r);
    (originator.value() % 2 == 0 ? shard_a : shard_b).admit(r);
    batch_end = std::max(batch_end, r.time);
  }
  shard_a.catch_up_prune(batch_end);
  shard_b.catch_up_prune(batch_end);
  serial.catch_up_prune(batch_end);

  Deduplicator merged(SimTime::seconds(kWindow));
  merged.merge_from(std::move(shard_a));
  merged.merge_from(std::move(shard_b));
  EXPECT_EQ(merged.admitted(), serial.admitted());
  EXPECT_EQ(merged.suppressed(), serial.suppressed());
  EXPECT_EQ(merged.state_size(), serial.state_size());
}

}  // namespace
}  // namespace dnsbs::core
