// Ground truth, blacklists, darknets, and curation.
#include <gtest/gtest.h>

#include "labeling/blacklist.hpp"
#include "labeling/curator.hpp"
#include "labeling/darknet.hpp"
#include "labeling/ground_truth.hpp"

namespace dnsbs::labeling {
namespace {

using net::IPv4Addr;

TEST(GroundTruth, AddRemoveLookup) {
  GroundTruth gt;
  const IPv4Addr a = *IPv4Addr::parse("1.2.3.4");
  EXPECT_FALSE(gt.label_of(a));
  gt.add(a, core::AppClass::kSpam);
  ASSERT_TRUE(gt.label_of(a));
  EXPECT_EQ(*gt.label_of(a), core::AppClass::kSpam);
  gt.add(a, core::AppClass::kScan);  // relabel
  EXPECT_EQ(*gt.label_of(a), core::AppClass::kScan);
  gt.remove(a);
  EXPECT_FALSE(gt.label_of(a));
  EXPECT_TRUE(gt.empty());
}

TEST(GroundTruth, ClassCounts) {
  GroundTruth gt;
  gt.add(*IPv4Addr::parse("1.0.0.1"), core::AppClass::kSpam);
  gt.add(*IPv4Addr::parse("1.0.0.2"), core::AppClass::kSpam);
  gt.add(*IPv4Addr::parse("1.0.0.3"), core::AppClass::kMail);
  const auto counts = gt.class_counts();
  EXPECT_EQ(counts[static_cast<std::size_t>(core::AppClass::kSpam)], 2u);
  EXPECT_EQ(counts[static_cast<std::size_t>(core::AppClass::kMail)], 1u);
}

TEST(GroundTruth, JoinFiltersUnlabeled) {
  GroundTruth gt;
  gt.add(*IPv4Addr::parse("1.0.0.1"), core::AppClass::kMail);
  std::vector<core::FeatureVector> features(2);
  features[0].originator = *IPv4Addr::parse("1.0.0.1");
  features[1].originator = *IPv4Addr::parse("9.9.9.9");  // unlabeled
  const auto [data, used] = gt.join(features);
  ASSERT_EQ(data.size(), 1u);
  EXPECT_EQ(data.label(0), static_cast<std::size_t>(core::AppClass::kMail));
  ASSERT_EQ(used.size(), 1u);
  EXPECT_EQ(used[0], *IPv4Addr::parse("1.0.0.1"));
}

std::vector<sim::OriginatorSpec> fake_population() {
  std::vector<sim::OriginatorSpec> population;
  for (int i = 0; i < 300; ++i) {
    sim::OriginatorSpec spec;
    spec.address = IPv4Addr(0x0a000000u + static_cast<std::uint32_t>(i));
    spec.cls = i < 100   ? core::AppClass::kSpam
               : i < 200 ? core::AppClass::kScan
                         : core::AppClass::kMail;
    population.push_back(spec);
  }
  return population;
}

TEST(Blacklist, SpammersListedBenignMostlyNot) {
  util::Rng rng(1);
  const auto population = fake_population();
  const BlacklistSet bl = BlacklistSet::build(population, {}, rng);

  std::size_t spam_listed = 0, mail_listed = 0;
  std::uint64_t spam_listings = 0;
  for (const auto& spec : population) {
    if (spec.cls == core::AppClass::kSpam) {
      spam_listed += bl.listed(spec.address);
      spam_listings += bl.spam_listings(spec.address);
    }
    if (spec.cls == core::AppClass::kMail) mail_listed += bl.listed(spec.address);
  }
  EXPECT_GT(spam_listed, 90u);   // nearly every active spammer is on some list
  EXPECT_LT(mail_listed, 15u);   // benign false listings are rare
  // Average listings per spammer well above zero but below operator count.
  EXPECT_GT(spam_listings, 300u);
  EXPECT_LT(spam_listings, 100u * 9u);
}

TEST(Blacklist, ScannersShowUpInOtherSections) {
  util::Rng rng(2);
  const auto population = fake_population();
  const BlacklistSet bl = BlacklistSet::build(population, {}, rng);
  std::uint64_t scan_other = 0, scan_spam = 0;
  for (const auto& spec : population) {
    if (spec.cls == core::AppClass::kScan) {
      scan_other += bl.other_listings(spec.address);
      scan_spam += bl.spam_listings(spec.address);
    }
  }
  EXPECT_GT(scan_other, 100u);
  EXPECT_EQ(scan_spam, 0u);
}

TEST(Blacklist, UnknownAddressUnlisted) {
  util::Rng rng(3);
  const BlacklistSet bl = BlacklistSet::build({}, {}, rng);
  EXPECT_FALSE(bl.listed(*IPv4Addr::parse("8.8.8.8")));
  EXPECT_EQ(bl.spam_listings(*IPv4Addr::parse("8.8.8.8")), 0u);
}

TEST(Darknet, CountsDistinctAddressesPerSource) {
  Darknet darknet({*net::Prefix::parse("127.0.0.0/10")});
  sim::OriginatorSpec scanner;
  scanner.address = *IPv4Addr::parse("10.0.0.1");
  // 5 hits on 3 distinct darknet addresses + 2 misses outside.
  darknet.on_touch(util::SimTime::seconds(0), scanner, *IPv4Addr::parse("127.0.0.1"));
  darknet.on_touch(util::SimTime::seconds(1), scanner, *IPv4Addr::parse("127.0.0.2"));
  darknet.on_touch(util::SimTime::seconds(2), scanner, *IPv4Addr::parse("127.0.0.2"));
  darknet.on_touch(util::SimTime::seconds(3), scanner, *IPv4Addr::parse("127.1.0.9"));
  darknet.on_touch(util::SimTime::seconds(4), scanner, *IPv4Addr::parse("10.0.0.9"));
  darknet.on_touch(util::SimTime::seconds(5), scanner, *IPv4Addr::parse("128.0.0.1"));
  EXPECT_EQ(darknet.addresses_hit_by(scanner.address), 3u);
  EXPECT_EQ(darknet.packets(), 4u);
  EXPECT_EQ(darknet.sources().size(), 1u);
  EXPECT_FALSE(darknet.confirms_scanner(scanner.address, 16));
  EXPECT_TRUE(darknet.confirms_scanner(scanner.address, 2));
}

TEST(Darknet, DefaultPrefixesAreReservedSpace) {
  for (const auto& prefix : default_darknet_prefixes()) {
    EXPECT_EQ(prefix.address().octet(0), 127);
  }
}

TEST(Curator, LabelsDetectedOriginatorsWithCaps) {
  sim::ScenarioConfig cfg = sim::jp_ditl_config(91, 0.05);
  sim::Scenario scenario(std::move(cfg));
  util::Rng rng(4);
  const BlacklistSet bl = BlacklistSet::build(scenario.population(), {}, rng);
  Darknet darknet(default_darknet_prefixes());

  // Detected features: fabricate one per population member so curation
  // has everything on the table.
  std::vector<core::FeatureVector> detected;
  for (const auto& spec : scenario.population()) {
    core::FeatureVector fv;
    fv.originator = spec.address;
    fv.footprint = 50;
    detected.push_back(fv);
  }

  CuratorConfig cc;
  cc.max_per_class = 10;
  cc.label_accuracy = 1.0;
  cc.require_evidence_for_malicious = true;
  Curator curator(scenario, bl, darknet, cc, 5);
  const GroundTruth gt = curator.curate(detected);

  EXPECT_GT(gt.size(), 0u);
  const auto counts = gt.class_counts();
  for (const auto count : counts) EXPECT_LE(count, 10u);
  // With a perfect expert, labels match scenario truth.
  for (const auto& [addr, cls] : gt.labels()) {
    EXPECT_EQ(scenario.truth().at(addr), cls);
  }
  // Malicious labels need evidence: an empty darknet means scan examples
  // require blacklist listings.
  for (const auto& [addr, cls] : gt.labels()) {
    if (core::is_malicious(cls)) EXPECT_TRUE(bl.listed(addr));
  }
}

TEST(Curator, ImperfectExpertMislabelsSome) {
  sim::ScenarioConfig cfg = sim::jp_ditl_config(92, 0.05);
  sim::Scenario scenario(std::move(cfg));
  util::Rng rng(6);
  const BlacklistSet bl = BlacklistSet::build(scenario.population(), {}, rng);
  Darknet darknet(default_darknet_prefixes());

  std::vector<core::FeatureVector> detected;
  for (const auto& spec : scenario.population()) {
    core::FeatureVector fv;
    fv.originator = spec.address;
    detected.push_back(fv);
  }
  CuratorConfig cc;
  cc.max_per_class = 1000;
  cc.label_accuracy = 0.5;  // exaggerated error for the test
  Curator curator(scenario, bl, darknet, cc, 7);
  const GroundTruth gt = curator.curate(detected);
  std::size_t wrong = 0;
  for (const auto& [addr, cls] : gt.labels()) {
    if (scenario.truth().at(addr) != cls) ++wrong;
  }
  EXPECT_GT(wrong, gt.size() / 5);
}

}  // namespace
}  // namespace dnsbs::labeling
