#include "net/ipv4.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace dnsbs::net {
namespace {

TEST(IPv4Addr, OctetsAndValue) {
  const IPv4Addr a = IPv4Addr::from_octets(192, 168, 1, 42);
  EXPECT_EQ(a.value(), 0xc0a8012au);
  EXPECT_EQ(a.octet(0), 192);
  EXPECT_EQ(a.octet(1), 168);
  EXPECT_EQ(a.octet(2), 1);
  EXPECT_EQ(a.octet(3), 42);
}

TEST(IPv4Addr, PrefixBuckets) {
  const IPv4Addr a = IPv4Addr::from_octets(10, 20, 30, 40);
  EXPECT_EQ(a.slash8(), 10u);
  EXPECT_EQ(a.slash16(), (10u << 8) | 20u);
  EXPECT_EQ(a.slash24(), (10u << 16) | (20u << 8) | 30u);
}

TEST(IPv4Addr, ParseValid) {
  const auto a = IPv4Addr::parse("1.2.3.4");
  ASSERT_TRUE(a);
  EXPECT_EQ(*a, IPv4Addr::from_octets(1, 2, 3, 4));
  EXPECT_EQ(IPv4Addr::parse("0.0.0.0")->value(), 0u);
  EXPECT_EQ(IPv4Addr::parse("255.255.255.255")->value(), 0xffffffffu);
}

TEST(IPv4Addr, ParseRejectsMalformed) {
  for (const char* bad : {"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "1.2.3.4x", "a.b.c.d",
                          "1..2.3", "-1.2.3.4", "0001.2.3.4", "1.2.3.04x"}) {
    EXPECT_FALSE(IPv4Addr::parse(bad)) << bad;
  }
}

TEST(IPv4Addr, RoundTripsToString) {
  const IPv4Addr a = IPv4Addr::from_octets(203, 0, 113, 7);
  EXPECT_EQ(a.to_string(), "203.0.113.7");
  EXPECT_EQ(*IPv4Addr::parse(a.to_string()), a);
}

TEST(IPv4Addr, Ordering) {
  EXPECT_LT(IPv4Addr::from_octets(1, 0, 0, 0), IPv4Addr::from_octets(2, 0, 0, 0));
}

TEST(IPv4Addr, HashDistinguishes) {
  std::unordered_set<IPv4Addr> set;
  for (std::uint32_t i = 0; i < 1000; ++i) set.insert(IPv4Addr(i * 7919));
  EXPECT_EQ(set.size(), 1000u);
}

TEST(Prefix, CanonicalizesHostBits) {
  const Prefix p(IPv4Addr::from_octets(10, 1, 2, 200), 24);
  EXPECT_EQ(p.address(), IPv4Addr::from_octets(10, 1, 2, 0));
  EXPECT_EQ(p.length(), 24);
}

TEST(Prefix, Contains) {
  const Prefix p(IPv4Addr::from_octets(10, 1, 0, 0), 16);
  EXPECT_TRUE(p.contains(IPv4Addr::from_octets(10, 1, 200, 3)));
  EXPECT_FALSE(p.contains(IPv4Addr::from_octets(10, 2, 0, 0)));
}

TEST(Prefix, ContainsPrefix) {
  const Prefix p16(IPv4Addr::from_octets(10, 1, 0, 0), 16);
  const Prefix p24(IPv4Addr::from_octets(10, 1, 7, 0), 24);
  EXPECT_TRUE(p16.contains(p24));
  EXPECT_FALSE(p24.contains(p16));
  EXPECT_TRUE(p16.contains(p16));
}

TEST(Prefix, DefaultRouteContainsEverything) {
  const Prefix any(IPv4Addr(0), 0);
  EXPECT_TRUE(any.contains(IPv4Addr::from_octets(255, 255, 255, 255)));
  EXPECT_TRUE(any.contains(IPv4Addr(0)));
  EXPECT_EQ(any.size(), 1ULL << 32);
}

TEST(Prefix, SizeAndAt) {
  const Prefix p(IPv4Addr::from_octets(192, 0, 2, 0), 24);
  EXPECT_EQ(p.size(), 256u);
  EXPECT_EQ(p.at(0), IPv4Addr::from_octets(192, 0, 2, 0));
  EXPECT_EQ(p.at(255), IPv4Addr::from_octets(192, 0, 2, 255));
}

TEST(Prefix, ParseAndToString) {
  const auto p = Prefix::parse("10.0.0.0/8");
  ASSERT_TRUE(p);
  EXPECT_EQ(p->to_string(), "10.0.0.0/8");
  EXPECT_FALSE(Prefix::parse("10.0.0.0"));
  EXPECT_FALSE(Prefix::parse("10.0.0.0/33"));
  EXPECT_FALSE(Prefix::parse("bad/8"));
  // Host bits canonicalize on parse.
  EXPECT_EQ(Prefix::parse("10.1.2.3/8")->address(), IPv4Addr::from_octets(10, 0, 0, 0));
}

TEST(Prefix, SlashZeroMaskIsZero) {
  const Prefix any(IPv4Addr::from_octets(9, 9, 9, 9), 0);
  EXPECT_EQ(any.mask(), 0u);
  EXPECT_EQ(any.address().value(), 0u);
}

}  // namespace
}  // namespace dnsbs::net
