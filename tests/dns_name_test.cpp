#include "dns/name.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace dnsbs::dns {
namespace {

TEST(DnsName, ParseBasics) {
  const auto n = DnsName::parse("Mail.Example.COM");
  ASSERT_TRUE(n);
  EXPECT_EQ(n->label_count(), 3u);
  EXPECT_EQ(n->label(0), "mail");  // lowercased
  EXPECT_EQ(n->label(2), "com");
  EXPECT_EQ(n->to_string(), "mail.example.com");
  EXPECT_EQ(n->host_label(), "mail");
}

TEST(DnsName, ParseRoot) {
  const auto root = DnsName::parse(".");
  ASSERT_TRUE(root);
  EXPECT_TRUE(root->is_root());
  EXPECT_EQ(root->to_string(), ".");
}

TEST(DnsName, TrailingDotAccepted) {
  const auto n = DnsName::parse("example.com.");
  ASSERT_TRUE(n);
  EXPECT_EQ(n->label_count(), 2u);
}

TEST(DnsName, ParseRejectsMalformed) {
  EXPECT_FALSE(DnsName::parse(""));
  EXPECT_FALSE(DnsName::parse(".."));
  EXPECT_FALSE(DnsName::parse("a..b"));
  EXPECT_FALSE(DnsName::parse("bad name.com"));
  EXPECT_FALSE(DnsName::parse("exa mple"));
  // Label longer than 63 bytes.
  EXPECT_FALSE(DnsName::parse(std::string(64, 'a') + ".com"));
  EXPECT_TRUE(DnsName::parse(std::string(63, 'a') + ".com"));
}

TEST(DnsName, ParseRejectsOversizeName) {
  // Build a name over 255 wire bytes from 60-byte labels.
  std::string big;
  for (int i = 0; i < 5; ++i) {
    if (i) big += '.';
    big += std::string(60, 'x');
  }
  EXPECT_FALSE(DnsName::parse(big));
}

TEST(DnsName, UnderscoreAndHyphenAllowed) {
  EXPECT_TRUE(DnsName::parse("_dmarc.example.com"));
  EXPECT_TRUE(DnsName::parse("home1-2-3-4.isp.jp"));
}

TEST(DnsName, EndsIn) {
  const auto n = *DnsName::parse("a.b.example.com");
  EXPECT_TRUE(n.ends_in(*DnsName::parse("example.com")));
  EXPECT_TRUE(n.ends_in(*DnsName::parse("com")));
  EXPECT_TRUE(n.ends_in(n));
  EXPECT_TRUE(n.ends_in(DnsName{}));  // root suffixes everything
  EXPECT_FALSE(n.ends_in(*DnsName::parse("b.example.org")));
  EXPECT_FALSE(DnsName{}.ends_in(n));
}

TEST(DnsName, ParentAndChild) {
  const auto n = *DnsName::parse("mail.example.com");
  EXPECT_EQ(n.parent().to_string(), "example.com");
  EXPECT_EQ(n.parent().parent().to_string(), "com");
  EXPECT_TRUE(n.parent().parent().parent().is_root());
  EXPECT_TRUE(DnsName{}.parent().is_root());
  EXPECT_EQ(DnsName{}.child("arpa").child("in-addr").to_string(), "in-addr.arpa");
}

TEST(DnsName, WireLength) {
  EXPECT_EQ(DnsName{}.wire_length(), 1u);
  EXPECT_EQ(DnsName::parse("a.bc")->wire_length(), 1u + 2 + 3);
}

TEST(DnsName, CaseInsensitiveEquality) {
  EXPECT_EQ(*DnsName::parse("WWW.Example.COM"), *DnsName::parse("www.example.com"));
}

TEST(DnsName, HashConsistentWithEquality) {
  std::unordered_set<DnsName> set;
  set.insert(*DnsName::parse("a.example.com"));
  set.insert(*DnsName::parse("A.EXAMPLE.COM"));
  EXPECT_EQ(set.size(), 1u);
  set.insert(*DnsName::parse("b.example.com"));
  EXPECT_EQ(set.size(), 2u);
}

TEST(DnsName, HashDistinguishesLabelBoundaries) {
  // "ab.c" and "a.bc" must hash (and compare) differently.
  const auto x = *DnsName::parse("ab.c");
  const auto y = *DnsName::parse("a.bc");
  EXPECT_NE(x, y);
  EXPECT_NE(std::hash<DnsName>{}(x), std::hash<DnsName>{}(y));
}

TEST(DnsName, FromLabelsLowercases) {
  const auto n = DnsName::from_labels({"MAIL", "Example", "com"});
  EXPECT_EQ(n.to_string(), "mail.example.com");
}

}  // namespace
}  // namespace dnsbs::dns
