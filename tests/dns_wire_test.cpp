#include "dns/wire.hpp"

#include <gtest/gtest.h>

#include "dns/reverse.hpp"

namespace dnsbs::dns {
namespace {

using net::IPv4Addr;

Message sample_query() {
  return Message::ptr_query(0x1234, IPv4Addr::from_octets(1, 2, 3, 4));
}

TEST(Wire, PtrQueryShape) {
  const Message q = sample_query();
  EXPECT_EQ(q.id, 0x1234);
  EXPECT_FALSE(q.is_response);
  EXPECT_TRUE(q.recursion_desired);
  ASSERT_EQ(q.questions.size(), 1u);
  EXPECT_EQ(q.questions[0].qtype, QType::kPTR);
  EXPECT_EQ(q.questions[0].name.to_string(), "4.3.2.1.in-addr.arpa");
}

TEST(Wire, QueryRoundTrip) {
  const Message q = sample_query();
  const auto wire = encode(q);
  const auto decoded = decode(wire);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(*decoded, q);
}

TEST(Wire, ResponseRoundTripWithPtrAnswer) {
  const Message q = sample_query();
  ResourceRecord rr;
  rr.name = q.questions[0].name;
  rr.rtype = QType::kPTR;
  rr.ttl = 3600;
  rr.rdata.value = *DnsName::parse("spam.bad.jp");
  const Message r = Message::response_to(q, RCode::kNoError, {rr});
  const auto decoded = decode(encode(r));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(*decoded, r);
  EXPECT_TRUE(decoded->is_response);
  ASSERT_EQ(decoded->answers.size(), 1u);
  EXPECT_EQ(std::get<DnsName>(decoded->answers[0].rdata.value).to_string(), "spam.bad.jp");
}

TEST(Wire, NxDomainResponse) {
  const Message r = Message::response_to(sample_query(), RCode::kNXDomain);
  const auto decoded = decode(encode(r));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->rcode, RCode::kNXDomain);
  EXPECT_TRUE(decoded->answers.empty());
}

TEST(Wire, ARecordRoundTrip) {
  Message m;
  m.id = 7;
  m.is_response = true;
  ResourceRecord rr;
  rr.name = *DnsName::parse("a.example.com");
  rr.rtype = QType::kA;
  rr.ttl = 60;
  rr.rdata.value = IPv4Addr::from_octets(192, 0, 2, 1);
  m.answers.push_back(rr);
  const auto decoded = decode(encode(m));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(std::get<IPv4Addr>(decoded->answers[0].rdata.value),
            IPv4Addr::from_octets(192, 0, 2, 1));
}

TEST(Wire, OpaqueRdataRoundTrip) {
  Message m;
  m.is_response = true;
  ResourceRecord rr;
  rr.name = *DnsName::parse("t.example.com");
  rr.rtype = QType::kTXT;
  rr.ttl = 1;
  rr.rdata.value = std::vector<std::uint8_t>{0x03, 'a', 'b', 'c'};
  m.answers.push_back(rr);
  const auto decoded = decode(encode(m));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(*decoded, m);
}

TEST(Wire, CompressionShrinksRepeatedNames) {
  Message m;
  m.is_response = true;
  Question q;
  q.name = *DnsName::parse("very-long-label-here.example.com");
  q.qtype = QType::kPTR;
  m.questions.push_back(q);
  ResourceRecord rr;
  rr.name = q.name;  // same name again: should compress to a pointer
  rr.rtype = QType::kPTR;
  rr.rdata.value = *DnsName::parse("target.example.com");  // shares suffix
  m.answers.push_back(rr);

  const auto wire = encode(m);
  // Without compression the name would repeat in full (34 bytes); with
  // pointers the second occurrence is 2 bytes.
  EXPECT_LT(wire.size(), 12u + 38u + 4u + 38u + 10u + 20u);
  const auto decoded = decode(wire);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(*decoded, m);
}

TEST(Wire, DecodeRejectsTruncation) {
  const auto wire = encode(sample_query());
  for (std::size_t cut = 1; cut < wire.size(); ++cut) {
    std::vector<std::uint8_t> partial(wire.begin(), wire.begin() + cut);
    EXPECT_FALSE(decode(partial)) << "cut=" << cut;
  }
}

TEST(Wire, DecodeRejectsPointerLoop) {
  // Header + a name that is a pointer to itself at offset 12.
  std::vector<std::uint8_t> wire = {0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0,
                                    0xc0, 12, 0, 12, 0, 1};
  EXPECT_FALSE(decode(wire));
}

TEST(Wire, DecodeRejectsForwardPointer) {
  std::vector<std::uint8_t> wire = {0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0,
                                    0xc0, 20, 0, 12, 0, 1};
  EXPECT_FALSE(decode(wire));
}

TEST(Wire, DecodeEmptyInput) { EXPECT_FALSE(decode(nullptr, 0)); }

TEST(Wire, FlagsRoundTrip) {
  Message m;
  m.id = 0xffff;
  m.is_response = true;
  m.opcode = 2;
  m.authoritative = true;
  m.truncated = true;
  m.recursion_desired = true;
  m.recursion_available = true;
  m.rcode = RCode::kRefused;
  const auto decoded = decode(encode(m));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(*decoded, m);
}

TEST(Wire, ToStringHelpers) {
  EXPECT_STREQ(to_string(QType::kPTR), "PTR");
  EXPECT_STREQ(to_string(RCode::kNXDomain), "NXDOMAIN");
  EXPECT_STREQ(to_string(RCode::kServFail), "SERVFAIL");
}

}  // namespace
}  // namespace dnsbs::dns
