// Address plan, naming model, and querier population invariants.
#include <gtest/gtest.h>

#include "core/static_features.hpp"
#include "sim/querier_population.hpp"

namespace dnsbs::sim {
namespace {

AddressPlanConfig small_plan() {
  AddressPlanConfig cfg;
  cfg.total_slash8 = 48;
  cfg.sites = 1500;
  return cfg;
}

class WorldTest : public ::testing::Test {
 protected:
  WorldTest()
      : plan_(AddressPlan::generate(small_plan(), 42)),
        naming_(plan_, NamingConfig{}, 42),
        qpop_(naming_, QuerierPopulationConfig{}, 42) {}

  AddressPlan plan_;
  NamingModel naming_;
  QuerierPopulation qpop_;
};

TEST_F(WorldTest, PlanHasRequestedShape) {
  EXPECT_EQ(plan_.sites().size(), 1500u);
  EXPECT_GT(plan_.ases().size(), 40u);
  EXPECT_GT(plan_.as_db().prefix_count(), 0u);
  EXPECT_GT(plan_.geo_db().prefix_count(), 0u);
}

TEST_F(WorldTest, EverySiteResolvableInDatabases) {
  for (const Site& site : plan_.sites()) {
    const net::IPv4Addr host = site.prefix.at(10);
    const auto asn = plan_.as_db().lookup(host);
    ASSERT_TRUE(asn) << site.prefix.to_string();
    EXPECT_EQ(*asn, site.asn);
    const auto cc = plan_.geo_db().lookup(host);
    ASSERT_TRUE(cc);
    EXPECT_EQ(*cc, site.country);
  }
}

TEST_F(WorldTest, SitesNeverOverlapDarknet) {
  for (const Site& site : plan_.sites()) {
    for (const auto& dark : darknet_prefixes()) {
      EXPECT_FALSE(dark.contains(site.prefix)) << site.prefix.to_string();
    }
  }
}

TEST_F(WorldTest, SiteOfRoundTrips) {
  util::Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const net::IPv4Addr host = plan_.random_host(rng);
    const Site* site = plan_.site_of(host);
    ASSERT_NE(site, nullptr);
    EXPECT_TRUE(site->prefix.contains(host));
  }
  EXPECT_EQ(plan_.site_of(net::IPv4Addr::from_octets(127, 1, 1, 1)), nullptr);
}

TEST_F(WorldTest, GenerateIsDeterministic) {
  const AddressPlan again = AddressPlan::generate(small_plan(), 42);
  ASSERT_EQ(again.sites().size(), plan_.sites().size());
  for (std::size_t i = 0; i < plan_.sites().size(); ++i) {
    EXPECT_EQ(again.sites()[i].prefix, plan_.sites()[i].prefix);
    EXPECT_EQ(again.sites()[i].asn, plan_.sites()[i].asn);
  }
}

TEST_F(WorldTest, DifferentSeedsDifferentPlans) {
  const AddressPlan other = AddressPlan::generate(small_plan(), 43);
  bool any_diff = other.sites().size() != plan_.sites().size();
  for (std::size_t i = 0; !any_diff && i < plan_.sites().size(); ++i) {
    any_diff = other.sites()[i].prefix != plan_.sites()[i].prefix;
  }
  EXPECT_TRUE(any_diff);
}

TEST_F(WorldTest, CountryFilteringWorks) {
  const auto jp = plan_.sites_in_country(netdb::CountryCode('j', 'p'));
  EXPECT_GT(jp.size(), 0u);
  for (const std::size_t idx : jp) {
    EXPECT_EQ(plan_.sites()[idx].country, netdb::CountryCode('j', 'p'));
  }
}

TEST_F(WorldTest, SiteTypeIndexConsistent) {
  for (std::size_t t = 0; t < kSiteTypeCount; ++t) {
    for (const std::size_t idx : plan_.sites_of_type(static_cast<SiteType>(t))) {
      EXPECT_EQ(plan_.sites()[idx].type, static_cast<SiteType>(t));
    }
  }
}

TEST_F(WorldTest, NamingIsDeterministic) {
  util::Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    const net::IPv4Addr host = plan_.random_host(rng);
    const auto a = naming_.resolve(host);
    const auto b = naming_.resolve(host);
    EXPECT_EQ(a.status, b.status);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(naming_.role_of(host), naming_.role_of(host));
  }
}

TEST_F(WorldTest, RolesYieldExpectedQuerierCategories) {
  using core::QuerierCategory;
  // Walk corporate sites: fixed low-host roles must classify correctly.
  int checked = 0;
  for (const std::size_t idx : plan_.sites_of_type(SiteType::kCorporate)) {
    const Site& site = plan_.sites()[idx];
    const auto check = [&](std::uint64_t host, QuerierCategory expected) {
      const auto info = naming_.resolve(site.prefix.at(host));
      ASSERT_EQ(info.status, core::ResolveStatus::kOk);
      EXPECT_EQ(core::classify_querier(info), expected)
          << info.name.to_string() << " at " << site.prefix.at(host).to_string();
    };
    check(1, QuerierCategory::kFw);
    check(2, QuerierCategory::kMail);
    check(3, QuerierCategory::kAntispam);
    check(5, QuerierCategory::kWww);
    check(6, QuerierCategory::kNtp);
    if (++checked >= 20) break;
  }
  EXPECT_GT(checked, 0);
}

TEST_F(WorldTest, HomeHostsClassifyHomeOrFail) {
  using core::QuerierCategory;
  util::Rng rng(11);
  int named_home = 0, total = 0;
  for (int i = 0; i < 300; ++i) {
    const net::IPv4Addr host = plan_.random_host(rng, SiteType::kResidential);
    if (naming_.role_of(host) != HostRole::kHomeHost) continue;
    ++total;
    const auto category = core::classify_querier(naming_.resolve(host));
    if (category == QuerierCategory::kHome) ++named_home;
    EXPECT_TRUE(category == QuerierCategory::kHome ||
                category == QuerierCategory::kNxDomain ||
                category == QuerierCategory::kUnreach)
        << static_cast<int>(category);
  }
  ASSERT_GT(total, 50);
  EXPECT_GT(named_home, total / 2);
}

TEST_F(WorldTest, NxDomainFractionInPaperRange) {
  // The paper observes 14-19% of queriers lacking reverse names; our pool
  // hosts should land in a band around that.
  util::Rng rng(13);
  int nx = 0, total = 0;
  for (int i = 0; i < 2000; ++i) {
    const net::IPv4Addr host = plan_.random_host(rng);
    ++total;
    if (naming_.resolve(host).status == core::ResolveStatus::kNxDomain) ++nx;
  }
  const double frac = static_cast<double>(nx) / total;
  EXPECT_GT(frac, 0.05);
  EXPECT_LT(frac, 0.30);
}

TEST_F(WorldTest, PtrTtlStablePerSlash24) {
  const net::IPv4Addr a = plan_.sites()[0].prefix.at(10);
  const net::IPv4Addr b = plan_.sites()[0].prefix.at(200);
  EXPECT_EQ(naming_.ptr_ttl(a), naming_.ptr_ttl(b));
  EXPECT_GT(naming_.ptr_ttl(a), 0u);
  EXPECT_GT(naming_.negative_ttl(a), 0u);
}

TEST_F(WorldTest, ServerPopulationsPopulated) {
  EXPECT_GT(qpop_.mail_servers().size(), 100u);
  EXPECT_GT(qpop_.web_servers().size(), 100u);
  EXPECT_GT(qpop_.dns_servers().size(), 50u);
  EXPECT_FALSE(qpop_.open_resolvers().empty());
}

TEST_F(WorldTest, MailServersAreInAllocatedSpace) {
  for (std::size_t i = 0; i < std::min<std::size_t>(qpop_.mail_servers().size(), 100); ++i) {
    EXPECT_NE(plan_.site_of(qpop_.mail_servers()[i]), nullptr);
  }
}

TEST_F(WorldTest, SmtpTouchesTriggerMailLookups) {
  util::Rng rng(17);
  std::size_t lookups = 0, trials = 0;
  for (const net::IPv4Addr target : qpop_.mail_servers()) {
    if (++trials > 300) break;
    lookups += qpop_.lookups_for(target, TrafficKind::kSmtp, rng).size();
  }
  // SMTP nearly always checks the sender (plus occasional antispam box).
  EXPECT_GT(lookups, trials * 8 / 10);
}

TEST_F(WorldTest, ScanLookupsAreRarer) {
  util::Rng rng(19);
  std::size_t lookups = 0;
  constexpr int kTrials = 600;
  for (int i = 0; i < kTrials; ++i) {
    const net::IPv4Addr target = plan_.random_host(rng, SiteType::kResidential);
    lookups += qpop_.lookups_for(target, TrafficKind::kScanProbe, rng).size();
  }
  EXPECT_GT(lookups, 0u);
  EXPECT_LT(lookups, kTrials / 4);  // residential scan logging ~8%
}

TEST_F(WorldTest, LookupsComeFromPlausibleQueriers) {
  util::Rng rng(23);
  for (int i = 0; i < 200; ++i) {
    const net::IPv4Addr target = plan_.random_host(rng);
    for (const auto& lookup :
         qpop_.lookups_for(target, TrafficKind::kScanProbe, rng)) {
      EXPECT_NE(plan_.site_of(lookup.querier), nullptr)
          << lookup.querier.to_string();
    }
  }
}

}  // namespace
}  // namespace dnsbs::sim
