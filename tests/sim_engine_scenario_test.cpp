// Originator population, churn, traffic engine, and scenario presets.
#include <gtest/gtest.h>

#include "sim/scenario.hpp"

namespace dnsbs::sim {
namespace {

OriginatorPopulationConfig tiny_population() {
  OriginatorPopulationConfig cfg;
  cfg.focus_country = netdb::CountryCode('j', 'p');
  for (std::size_t c = 0; c < core::kAppClassCount; ++c) {
    cfg.classes[c].count = 4;
    cfg.classes[c].rate_scale = 1.0;
    cfg.classes[c].in_country_fraction = 0.5;
  }
  return cfg;
}

TEST(Population, MakesRequestedCounts) {
  const AddressPlan plan = AddressPlan::generate({.total_slash8 = 40, .sites = 800}, 2);
  util::Rng rng(3);
  const auto population = make_population(plan, tiny_population(), rng);
  EXPECT_GE(population.size(), 4u * core::kAppClassCount);
  std::array<std::size_t, core::kAppClassCount> per{};
  for (const auto& spec : population) {
    ++per[static_cast<std::size_t>(spec.cls)];
    EXPECT_GT(spec.touches_per_hour, 0.0);
    EXPECT_NE(plan.site_of(spec.address), nullptr);
  }
  for (std::size_t c = 0; c < core::kAppClassCount; ++c) {
    if (c == static_cast<std::size_t>(core::AppClass::kScan)) {
      // Scan teams may add same-/24 siblings beyond the configured count.
      EXPECT_GE(per[c], 4u);
    } else {
      EXPECT_EQ(per[c], 4u);
    }
  }
}

TEST(Population, SpecDefaultsMatchClassBehaviour) {
  const AddressPlan plan = AddressPlan::generate({.total_slash8 = 40, .sites = 800}, 2);
  util::Rng rng(5);
  const auto scan = make_spec(core::AppClass::kScan, plan, rng, 1.0);
  EXPECT_EQ(scan.kind, TrafficKind::kScanProbe);
  EXPECT_EQ(scan.strategy, TargetStrategy::kRandomAddress);
  const auto spam = make_spec(core::AppClass::kSpam, plan, rng, 1.0);
  EXPECT_EQ(spam.kind, TrafficKind::kSmtp);
  EXPECT_EQ(spam.strategy, TargetStrategy::kMailServers);
  const auto push = make_spec(core::AppClass::kPush, plan, rng, 1.0);
  EXPECT_EQ(push.strategy, TargetStrategy::kMobileUsers);
}

TEST(Churn, MaliciousLivesShorterThanBenign) {
  const AddressPlan plan = AddressPlan::generate({.total_slash8 = 40, .sites = 800}, 7);
  util::Rng rng(11);
  std::vector<OriginatorSpec> base;
  for (int i = 0; i < 150; ++i) {
    base.push_back(make_spec(core::AppClass::kSpam, plan, rng, 1.0));
    base.push_back(make_spec(core::AppClass::kMail, plan, rng, 1.0));
  }
  ChurnConfig cfg;
  cfg.horizon = util::SimTime::days(180);
  const auto churned = apply_churn(std::move(base), cfg, plan, {}, rng);

  double spam_life = 0, mail_life = 0;
  std::size_t spam_n = 0, mail_n = 0;
  for (const auto& spec : churned) {
    EXPECT_LE(spec.end, cfg.horizon);
    EXPECT_LT(spec.start, spec.end);
    const double life = (spec.end - spec.start).secs_f();
    if (spec.cls == core::AppClass::kSpam) {
      spam_life += life;
      ++spam_n;
    } else {
      mail_life += life;
      ++mail_n;
    }
  }
  ASSERT_GT(spam_n, 0u);
  ASSERT_GT(mail_n, 0u);
  // Replacements mean more (shorter-lived) spam spec instances.
  EXPECT_GT(spam_n, mail_n);
  EXPECT_LT(spam_life / spam_n, mail_life / mail_n);
}

TEST(Churn, VulnerabilityEventAddsScannersInWindow) {
  const AddressPlan plan = AddressPlan::generate({.total_slash8 = 40, .sites = 800}, 8);
  util::Rng rng(13);
  ChurnConfig cfg;
  cfg.horizon = util::SimTime::days(100);
  VulnerabilityEvent event;
  event.start = util::SimTime::days(40);
  event.ramp_duration = util::SimTime::days(7);
  event.extra_scanners = 25;
  event.port = 443;
  const std::vector<VulnerabilityEvent> events = {event};
  const auto churned = apply_churn({}, cfg, plan, events, rng);
  ASSERT_EQ(churned.size(), 25u);
  for (const auto& spec : churned) {
    EXPECT_EQ(spec.cls, core::AppClass::kScan);
    EXPECT_EQ(spec.port, 443);
    EXPECT_GE(spec.start, event.start);
    EXPECT_LE(spec.start, event.start + event.ramp_duration);
  }
}

TEST(Engine, RunsAndObserves) {
  ScenarioConfig cfg = jp_ditl_config(21, 0.05);
  cfg.duration = util::SimTime::hours(6);
  Scenario scenario(std::move(cfg));
  scenario.run();
  const auto& stats = scenario.engine().stats();
  EXPECT_GT(stats.touches, 1000u);
  EXPECT_GT(stats.lookups, 0u);
  EXPECT_GT(stats.final_queries, 0u);
  EXPECT_GE(stats.final_queries, stats.national_queries);
  EXPECT_GT(stats.national_queries, stats.root_queries);
  // National authority saw real records.
  EXPECT_GT(scenario.authority(0).records().size(), 100u);
}

TEST(Engine, RecordsAreTimeOrderedAndWellFormed) {
  ScenarioConfig cfg = jp_ditl_config(22, 0.05);
  cfg.duration = util::SimTime::hours(4);
  Scenario scenario(std::move(cfg));
  scenario.run();
  const auto& records = scenario.authority(0).records();
  ASSERT_GT(records.size(), 10u);
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_LE(records[i - 1].time, records[i].time);
  }
  for (const auto& r : records) {
    EXPECT_GE(r.time.secs(), 0);
    EXPECT_LT(r.time, util::SimTime::hours(4));
  }
}

TEST(Engine, DeterministicUnderSeed) {
  const auto run_once = [] {
    ScenarioConfig cfg = jp_ditl_config(33, 0.04);
    cfg.duration = util::SimTime::hours(3);
    Scenario scenario(std::move(cfg));
    scenario.run();
    return scenario.authority(0).records().size();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Engine, ObserverSeesRawTouches) {
  class CountingObserver final : public TrafficObserver {
   public:
    void on_touch(util::SimTime, const OriginatorSpec&, net::IPv4Addr) override {
      ++count;
    }
    std::size_t count = 0;
  };
  ScenarioConfig cfg = jp_ditl_config(23, 0.04);
  cfg.duration = util::SimTime::hours(2);
  Scenario scenario(std::move(cfg));
  CountingObserver observer;
  scenario.engine().set_traffic_observer(&observer);
  scenario.run();
  EXPECT_EQ(observer.count, scenario.engine().stats().touches);
}

TEST(Scenario, TruthCoversPopulation) {
  ScenarioConfig cfg = m_ditl_config(24, 0.04);
  Scenario scenario(std::move(cfg));
  EXPECT_FALSE(scenario.truth().empty());
  for (const auto& spec : scenario.population()) {
    EXPECT_TRUE(scenario.truth().contains(spec.address));
  }
}

TEST(Scenario, ActiveInFiltersWindows) {
  ScenarioConfig cfg = m_sampled_config(25, 4, 0.03);
  Scenario scenario(std::move(cfg));
  const auto all = scenario.active_in(util::SimTime::seconds(0), cfg.duration);
  EXPECT_FALSE(all.empty());
  const auto late =
      scenario.active_in(util::SimTime::weeks(3), util::SimTime::weeks(4));
  for (const auto* spec : late) {
    EXPECT_LT(spec->start, util::SimTime::weeks(4));
    EXPECT_GT(spec->end, util::SimTime::weeks(3));
  }
}

// Preset sweep: every preset builds a consistent world.
struct PresetCase {
  const char* name;
  ScenarioConfig (*make)(std::uint64_t, double);
};

class PresetTest : public ::testing::TestWithParam<PresetCase> {};

TEST_P(PresetTest, BuildsAndHasAuthorities) {
  ScenarioConfig cfg = GetParam().make(77, 0.03);
  EXPECT_FALSE(cfg.authorities.empty());
  Scenario scenario(std::move(cfg));
  EXPECT_FALSE(scenario.population().empty());
  EXPECT_GT(scenario.plan().sites().size(), 100u);
  // Spam must be the most numerous class in every preset (Table V shape).
  std::array<std::size_t, core::kAppClassCount> per{};
  for (const auto& spec : scenario.population()) {
    ++per[static_cast<std::size_t>(spec.cls)];
  }
  const std::size_t spam = per[static_cast<std::size_t>(core::AppClass::kSpam)];
  for (std::size_t c = 0; c < core::kAppClassCount; ++c) {
    if (c != static_cast<std::size_t>(core::AppClass::kSpam)) {
      EXPECT_GE(spam, per[c]) << "class " << c;
    }
  }
}

ScenarioConfig m_sampled_8w(std::uint64_t seed, double scale) {
  return m_sampled_config(seed, 8, scale);
}
ScenarioConfig b_year_8w(std::uint64_t seed, double scale) {
  return b_multi_year_config(seed, 8, scale);
}

INSTANTIATE_TEST_SUITE_P(
    Presets, PresetTest,
    ::testing::Values(PresetCase{"jp", &jp_ditl_config},
                      PresetCase{"b", &b_post_ditl_config},
                      PresetCase{"m", &m_ditl_config},
                      PresetCase{"msampled", &m_sampled_8w},
                      PresetCase{"bmulti", &b_year_8w}),
    [](const ::testing::TestParamInfo<PresetCase>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace dnsbs::sim
