// Columnar + incremental feature extraction (core::FeatureEngine): the
// incremental-vs-full-recompute oracle, SoA-vs-map equivalence for all
// eight dynamic features, epoch-scratch reuse, carry-forward across
// sensors and windows, and thread-count determinism of the
// dnsbs.features.* counters.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/pipeline.hpp"
#include "core/feature_engine.hpp"
#include "core/sensor.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"

namespace dnsbs::core {
namespace {

using dns::QueryRecord;
using dns::RCode;
using net::IPv4Addr;
using util::SimTime;

QueryRecord rec(std::int64_t secs, IPv4Addr querier, IPv4Addr originator) {
  return QueryRecord{SimTime::seconds(secs), querier, originator, RCode::kNoError};
}

IPv4Addr addr(int a, int b, int c, int d) {
  return IPv4Addr((std::uint32_t(a) << 24) | (std::uint32_t(b) << 16) |
                  (std::uint32_t(c) << 8) | std::uint32_t(d));
}

/// Deterministic resolver: category cycles with the querier's last octet.
/// Stable per address, as carry-forward requires.
class CyclingResolver final : public QuerierResolver {
 public:
  QuerierInfo resolve(IPv4Addr querier) const override {
    QuerierInfo info;
    switch (querier.octet(3) % 4) {
      case 0:
        info.status = ResolveStatus::kOk;
        info.name = *dns::DnsName::parse("mail.example.com");
        break;
      case 1:
        info.status = ResolveStatus::kOk;
        info.name = *dns::DnsName::parse("ns1.example.com");
        break;
      case 2:
        info.status = ResolveStatus::kNxDomain;
        break;
      default:
        info.status = ResolveStatus::kUnreachable;
        break;
    }
    return info;
  }
};

struct Dbs {
  netdb::AsDb as_db;
  netdb::GeoDb geo_db;
  Dbs() {
    as_db.add(*net::Prefix::parse("10.0.0.0/16"), 100, "as-a");
    as_db.add(*net::Prefix::parse("10.1.0.0/16"), 200, "as-b");
    as_db.add(*net::Prefix::parse("10.2.0.0/16"), 300, "as-c");
    as_db.add(*net::Prefix::parse("10.9.0.0/16"), 900, "as-shift");
    geo_db.add(*net::Prefix::parse("10.0.0.0/16"), netdb::CountryCode('j', 'p'));
    geo_db.add(*net::Prefix::parse("10.1.0.0/16"), netdb::CountryCode('u', 's'));
    geo_db.add(*net::Prefix::parse("10.2.0.0/16"), netdb::CountryCode('d', 'e'));
    geo_db.add(*net::Prefix::parse("10.9.0.0/16"), netdb::CountryCode('f', 'r'));
  }
};

/// Multi-wave stream: wave 0 seeds 12 originators; wave 1 is a
/// normalizer-shift wave (new AS/country/periods via churned originators);
/// wave 2 is pure churn (one originator, already-seen periods, AS and CC).
std::vector<QueryRecord> wave(int which) {
  std::vector<QueryRecord> records;
  if (which == 0) {
    for (int o = 1; o <= 12; ++o) {
      for (int j = 0; j < 6; ++j) {
        records.push_back(
            rec(o * 37 + j, addr(10, j % 3, o % 4, j + 1), addr(1, 0, 0, o)));
      }
    }
  } else if (which == 1) {
    for (int o = 3; o <= 12; o += 3) {
      for (int j = 0; j < 3; ++j) {
        records.push_back(rec(2000 + o + j, addr(10, 9, o, j + 1), addr(1, 0, 0, o)));
      }
    }
  } else {
    for (int j = 0; j < 2; ++j) {
      records.push_back(rec(2100 + j, addr(10, 0, 1, 40 + j), addr(1, 0, 0, 5)));
    }
  }
  return records;
}

void expect_rows_bitwise_equal(const std::vector<FeatureVector>& got,
                               const std::vector<FeatureVector>& want,
                               const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].originator, want[i].originator) << context << " row " << i;
    EXPECT_EQ(got[i].footprint, want[i].footprint) << context << " row " << i;
    // EXPECT_EQ on double vectors is exact equality: the incremental path
    // must be *bitwise* identical to a full recompute, not merely close.
    EXPECT_EQ(got[i].row(), want[i].row()) << context << " row " << i;
  }
}

SensorConfig small_config() {
  SensorConfig cfg;
  cfg.min_queriers = 3;
  cfg.top_n = 0;
  return cfg;
}

TEST(FeatureEngineOracle, IncrementalMatchesFullRecomputeAcrossWaves) {
  const Dbs dbs;
  const CyclingResolver resolver;

  // The incremental sensor extracts after every wave (and twice in a row,
  // exercising the unchanged-interval fast path); the oracle is a fresh
  // sensor over the concatenated stream, recomputing everything.
  Sensor incremental(small_config(), dbs.as_db, dbs.geo_db, resolver);
  std::vector<QueryRecord> all_so_far;
  for (int w = 0; w < 3; ++w) {
    const auto records = wave(w);
    for (const auto& r : records) {
      incremental.ingest(r);
      all_so_far.push_back(r);
    }
    const auto rows = incremental.extract_features();
    const auto rows_again = incremental.extract_features();

    Sensor oracle(small_config(), dbs.as_db, dbs.geo_db, resolver);
    oracle.ingest_all(all_so_far);
    const auto full = oracle.extract_features();

    const std::string context = "wave " + std::to_string(w);
    expect_rows_bitwise_equal(rows, full, context);
    expect_rows_bitwise_equal(rows_again, full, context + " (fast path)");
  }
}

/// Map-based reference for the eight dynamic features, accumulating bucket
/// counts in first-touch order — the order the columnar pass uses — so the
/// comparison is bitwise, not approximate.
DynamicFeatures reference_dynamics(const OriginatorAggregate& agg, const netdb::AsDb& as_db,
                                   const netdb::GeoDb& geo_db, std::size_t norm_periods,
                                   std::size_t norm_as, std::size_t norm_cc) {
  DynamicFeatures f{};
  const std::size_t k = agg.unique_queriers();
  if (k == 0) return f;
  std::vector<std::size_t> c24, c8;
  std::unordered_map<std::uint32_t, std::size_t> pos24, pos8;
  std::unordered_set<std::uint32_t> ases;
  std::unordered_set<std::uint16_t> countries;
  for (const auto& [querier, count] : agg.querier_queries) {
    auto [it24, new24] = pos24.try_emplace(querier.slash24(), c24.size());
    if (new24) {
      c24.push_back(1);
    } else {
      ++c24[it24->second];
    }
    auto [it8, new8] = pos8.try_emplace(querier.slash8(), c8.size());
    if (new8) {
      c8.push_back(1);
    } else {
      ++c8[it8->second];
    }
    if (const auto asn = as_db.lookup(querier)) ases.insert(*asn);
    if (const auto cc = geo_db.lookup(querier)) countries.insert(cc->packed());
  }
  const double queriers = static_cast<double>(k);
  f[static_cast<std::size_t>(DynamicFeature::kQueriesPerQuerier)] =
      static_cast<double>(agg.total_queries) / queriers;
  f[static_cast<std::size_t>(DynamicFeature::kPersistence)] =
      norm_periods == 0 ? 0.0
                        : static_cast<double>(agg.periods.size()) /
                              static_cast<double>(norm_periods);
  f[static_cast<std::size_t>(DynamicFeature::kLocalEntropy)] =
      util::normalized_entropy(std::span<const std::size_t>(c24));
  f[static_cast<std::size_t>(DynamicFeature::kGlobalEntropy)] =
      util::normalized_entropy(std::span<const std::size_t>(c8));
  f[static_cast<std::size_t>(DynamicFeature::kUniqueAs)] =
      norm_as == 0 ? 0.0 : static_cast<double>(ases.size()) / static_cast<double>(norm_as);
  f[static_cast<std::size_t>(DynamicFeature::kUniqueCountries)] =
      norm_cc == 0 ? 0.0
                   : static_cast<double>(countries.size()) / static_cast<double>(norm_cc);
  f[static_cast<std::size_t>(DynamicFeature::kQueriersPerCountry)] =
      static_cast<double>(countries.size()) / queriers;
  f[static_cast<std::size_t>(DynamicFeature::kQueriersPerAs)] =
      static_cast<double>(ases.size()) / queriers;
  return f;
}

TEST(FeatureEngineEquivalence, SoAColumnsMatchMapReference) {
  const Dbs dbs;
  const CyclingResolver resolver;

  OriginatorAggregator agg;
  for (int w = 0; w < 3; ++w) {
    for (const auto& r : wave(w)) agg.add(r);
  }
  const auto interesting = agg.select_interesting(3, 0);
  ASSERT_FALSE(interesting.empty());

  FeatureEngine engine(dbs.as_db, dbs.geo_db, resolver,
                       std::make_shared<FeatureExtractionCache>());
  FeatureExtractionStats stats;
  const auto rows = engine.extract(agg, interesting, 1, &stats);
  ASSERT_EQ(rows.size(), interesting.size());
  EXPECT_EQ(stats.rows_recomputed, rows.size());
  EXPECT_EQ(stats.rows_reused, 0u);

  // Reference extractor for the legacy (map-churn) implementation, for the
  // within-tolerance comparison below.
  const DynamicFeatureExtractor legacy(dbs.as_db, dbs.geo_db, agg);
  EXPECT_EQ(engine.interval_as_count(), legacy.interval_as_count());
  EXPECT_EQ(engine.interval_cc_count(), legacy.interval_country_count());

  for (std::size_t i = 0; i < rows.size(); ++i) {
    const OriginatorAggregate& a = *interesting[i];
    // Statics: bitwise against the per-aggregate resolver path.
    const StaticFeatures statics = compute_static_features(a, resolver);
    for (std::size_t c = 0; c < kQuerierCategoryCount; ++c) {
      EXPECT_EQ(rows[i].statics[c], statics[c]) << "row " << i << " static " << c;
    }
    // Dynamics: bitwise against the first-touch-order map reference...
    const DynamicFeatures want =
        reference_dynamics(a, dbs.as_db, dbs.geo_db, agg.total_periods(),
                           engine.interval_as_count(), engine.interval_cc_count());
    for (std::size_t d = 0; d < kDynamicFeatureCount; ++d) {
      EXPECT_EQ(rows[i].dynamics[d], want[d]) << "row " << i << " dynamic " << d;
    }
    // ...and within float tolerance of the legacy extractor (whose entropy
    // sums in flat-map slot order — same terms, different order).
    const DynamicFeatures old = legacy.extract(a);
    for (std::size_t d = 0; d < kDynamicFeatureCount; ++d) {
      EXPECT_NEAR(rows[i].dynamics[d], old[d], 1e-12) << "row " << i << " dynamic " << d;
    }
  }
}

TEST(FeatureEngineScratch, EpochReuseSurvivesForcedRecomputes) {
  const Dbs dbs;
  const CyclingResolver resolver;

  // One engine extracts three times over a growing aggregator: every
  // extract recomputes rows with the *same* scratch buffers (overlapping
  // /24 and AS universes across rows), so a stale stamp leaking across
  // rows or epochs would corrupt counts.  A fresh sensor per step is the
  // oracle.
  Sensor sensor(small_config(), dbs.as_db, dbs.geo_db, resolver);
  std::vector<QueryRecord> all_so_far;
  for (int w = 0; w < 3; ++w) {
    for (const auto& r : wave(w)) {
      sensor.ingest(r);
      all_so_far.push_back(r);
    }
  }
  (void)sensor.extract_features();

  // Shift a normalizer (new period bucket) via a single originator: every
  // cached row is invalidated and recomputed through the reused scratch.
  const QueryRecord shift = rec(9000, addr(10, 0, 1, 1), addr(1, 0, 0, 1));
  sensor.ingest(shift);
  all_so_far.push_back(shift);
  const auto rows = sensor.extract_features();

  Sensor oracle(small_config(), dbs.as_db, dbs.geo_db, resolver);
  oracle.ingest_all(all_so_far);
  expect_rows_bitwise_equal(rows, oracle.extract_features(), "post-shift");
}

TEST(FeatureEngineCounters, ChurnAndNormalizerShiftsPartitionRows) {
#if !DNSBS_METRICS_ENABLED
  GTEST_SKIP() << "built with -DDNSBS_METRICS=OFF";
#else
  const Dbs dbs;
  const CyclingResolver resolver;
  Sensor sensor(small_config(), dbs.as_db, dbs.geo_db, resolver);
  for (const auto& r : wave(0)) sensor.ingest(r);

  const auto counters = [] {
    const auto s = util::metrics_snapshot();
    struct Vals {
      std::int64_t reused, recomputed, dirty;
    };
    return Vals{s.scalar("dnsbs.features.rows_reused"),
                s.scalar("dnsbs.features.rows_recomputed"),
                s.scalar("dnsbs.features.dirty_originators")};
  };

  const auto before = counters();
  const std::size_t n = sensor.extract_features().size();
  ASSERT_EQ(n, 12u);
  auto after = counters();
  EXPECT_EQ(after.recomputed - before.recomputed, static_cast<std::int64_t>(n));
  EXPECT_EQ(after.reused - before.reused, 0);
  EXPECT_EQ(after.dirty - before.dirty, 12);

  // Unchanged sensor: the fast path reuses every row, touching nothing.
  auto prev = after;
  (void)sensor.extract_features();
  after = counters();
  EXPECT_EQ(after.reused - prev.reused, static_cast<std::int64_t>(n));
  EXPECT_EQ(after.recomputed - prev.recomputed, 0);
  EXPECT_EQ(after.dirty - prev.dirty, 0);

  // Pure churn: one originator gains queriers in an already-counted /16
  // (same AS/CC) within an already-seen period bucket, so only its row
  // recomputes — the normalizers (periods, AS, CC) are unchanged.
  sensor.ingest(rec(400, addr(10, 0, 1, 40), addr(1, 0, 0, 5)));
  sensor.ingest(rec(401, addr(10, 0, 1, 41), addr(1, 0, 0, 5)));
  prev = after;
  (void)sensor.extract_features();
  after = counters();
  EXPECT_EQ(after.dirty - prev.dirty, 1);
  EXPECT_EQ(after.recomputed - prev.recomputed, 1);
  EXPECT_EQ(after.reused - prev.reused, static_cast<std::int64_t>(n) - 1);

  // Normalizer shift (wave 1: new AS, country and periods): only the
  // churned originators are dirty, but every row must recompute.
  for (const auto& r : wave(1)) sensor.ingest(r);
  prev = after;
  (void)sensor.extract_features();
  after = counters();
  EXPECT_EQ(after.dirty - prev.dirty, 4);
  EXPECT_EQ(after.recomputed - prev.recomputed, static_cast<std::int64_t>(n));
  EXPECT_EQ(after.reused - prev.reused, 0);
#endif
}

TEST(FeatureEngineCarryForward, SharedCacheReusesRowsAcrossSensors) {
  const Dbs dbs;
  const CyclingResolver resolver;
  const auto cache = std::make_shared<FeatureExtractionCache>();
  std::vector<QueryRecord> records;
  for (int w = 0; w < 2; ++w) {
    for (const auto& r : wave(w)) records.push_back(r);
  }

  Sensor first(small_config(), dbs.as_db, dbs.geo_db, resolver);
  first.set_feature_cache(cache);
  first.ingest_all(records);
  const auto rows_first = first.extract_features();

  // A second sensor over the same stream shares the cache: its engine has
  // a different interval token, so reuse must go through the
  // column-comparison path — and still match bitwise.
  Sensor second(small_config(), dbs.as_db, dbs.geo_db, resolver);
  second.set_feature_cache(cache);
  second.ingest_all(records);
  const auto rows_second = second.extract_features();
  expect_rows_bitwise_equal(rows_second, rows_first, "shared cache");

  // An independent sensor with a fresh cache agrees too.
  Sensor independent(small_config(), dbs.as_db, dbs.geo_db, resolver);
  independent.ingest_all(records);
  expect_rows_bitwise_equal(rows_second, independent.extract_features(), "fresh cache");
}

TEST(FeatureEngineCarryForward, PipelineMatchesIndependentWindows) {
  const Dbs dbs;
  const CyclingResolver resolver;

  const auto run = [&](bool carry_forward) {
    analysis::WindowedPipelineConfig pc;
    pc.sensor = small_config();
    pc.carry_forward = carry_forward;
    analysis::WindowedPipeline pipeline(pc, dbs.as_db, dbs.geo_db, resolver);
    // Window w re-observes wave 0 (same querier histograms — prime
    // carry-forward candidates) plus its own churn wave.
    for (int w = 0; w < 3; ++w) {
      std::vector<QueryRecord> records = wave(0);
      if (w > 0) {
        for (const auto& r : wave(w)) records.push_back(r);
      }
      pipeline.enqueue_window(records, SimTime::hours(w), SimTime::hours(w + 1));
    }
    pipeline.finish();
    std::vector<std::vector<FeatureVector>> features;
    for (const auto& obs : pipeline.observations()) features.push_back(obs.features);
    return features;
  };

  const auto carried = run(true);
  const auto independent = run(false);
  ASSERT_EQ(carried.size(), independent.size());
  for (std::size_t w = 0; w < carried.size(); ++w) {
    expect_rows_bitwise_equal(carried[w], independent[w],
                              "window " + std::to_string(w));
  }
}

TEST(FeatureEngineDeterminism, CountersMatchSerialAcrossThreadCounts) {
#if !DNSBS_METRICS_ENABLED
  GTEST_SKIP() << "built with -DDNSBS_METRICS=OFF";
#else
  struct ThreadCountGuard {
    ~ThreadCountGuard() { util::set_thread_count(0); }
  } guard;

  const Dbs dbs;
  const CyclingResolver resolver;
  const auto run_with = [&](std::size_t threads) {
    util::set_thread_count(threads);
    util::metrics_reset();
    SensorConfig cfg = small_config();
    cfg.threads = threads;
    Sensor sensor(cfg, dbs.as_db, dbs.geo_db, resolver);
    for (int w = 0; w < 3; ++w) {
      for (const auto& r : wave(w)) sensor.ingest(r);
      (void)sensor.extract_features();
    }
    (void)sensor.extract_features();
    return util::metrics_snapshot().deterministic_view();
  };

  const util::MetricsSnapshot serial = run_with(1);
  EXPECT_GT(serial.scalar("dnsbs.features.rows_reused"), 0);
  EXPECT_GT(serial.scalar("dnsbs.features.rows_recomputed"), 0);
  EXPECT_GT(serial.scalar("dnsbs.features.dirty_originators"), 0);
  EXPECT_GT(serial.scalar("dnsbs.cache.interner.queriers"), 0);

  for (const std::size_t threads : {2, 4}) {
    const util::MetricsSnapshot parallel = run_with(threads);
    ASSERT_EQ(parallel.values.size(), serial.values.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < serial.values.size(); ++i) {
      EXPECT_EQ(parallel.values[i], serial.values[i])
          << serial.values[i].name << " diverged at threads=" << threads;
    }
  }
#endif
}

}  // namespace
}  // namespace dnsbs::core
