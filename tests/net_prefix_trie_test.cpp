#include "net/prefix_trie.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "util/rng.hpp"

namespace dnsbs::net {
namespace {

Prefix pfx(const char* text) { return *Prefix::parse(text); }
IPv4Addr ip(const char* text) { return *IPv4Addr::parse(text); }

TEST(PrefixTrie, EmptyLookupIsNull) {
  PrefixTrie<int> trie;
  EXPECT_EQ(trie.lookup(ip("1.2.3.4")), nullptr);
  EXPECT_TRUE(trie.empty());
}

TEST(PrefixTrie, ExactAndLpm) {
  PrefixTrie<std::string> trie;
  EXPECT_TRUE(trie.insert(pfx("10.0.0.0/8"), "eight"));
  EXPECT_TRUE(trie.insert(pfx("10.1.0.0/16"), "sixteen"));
  EXPECT_TRUE(trie.insert(pfx("10.1.2.0/24"), "twentyfour"));

  EXPECT_EQ(*trie.lookup(ip("10.9.9.9")), "eight");
  EXPECT_EQ(*trie.lookup(ip("10.1.9.9")), "sixteen");
  EXPECT_EQ(*trie.lookup(ip("10.1.2.9")), "twentyfour");
  EXPECT_EQ(trie.lookup(ip("11.0.0.1")), nullptr);
}

TEST(PrefixTrie, InsertReplaceReturnsFalse) {
  PrefixTrie<int> trie;
  EXPECT_TRUE(trie.insert(pfx("10.0.0.0/8"), 1));
  EXPECT_FALSE(trie.insert(pfx("10.0.0.0/8"), 2));
  EXPECT_EQ(*trie.lookup(ip("10.0.0.1")), 2);
  EXPECT_EQ(trie.size(), 1u);
}

TEST(PrefixTrie, DefaultRoute) {
  PrefixTrie<int> trie;
  trie.insert(pfx("0.0.0.0/0"), 7);
  EXPECT_EQ(*trie.lookup(ip("200.1.2.3")), 7);
  trie.insert(pfx("200.0.0.0/8"), 8);
  EXPECT_EQ(*trie.lookup(ip("200.1.2.3")), 8);
  EXPECT_EQ(*trie.lookup(ip("9.9.9.9")), 7);
}

TEST(PrefixTrie, HostRoutes) {
  PrefixTrie<int> trie;
  trie.insert(pfx("1.2.3.4/32"), 99);
  EXPECT_EQ(*trie.lookup(ip("1.2.3.4")), 99);
  EXPECT_EQ(trie.lookup(ip("1.2.3.5")), nullptr);
}

TEST(PrefixTrie, FindExactIgnoresCovering) {
  PrefixTrie<int> trie;
  trie.insert(pfx("10.0.0.0/8"), 1);
  EXPECT_EQ(trie.find_exact(pfx("10.1.0.0/16")), nullptr);
  EXPECT_EQ(*trie.find_exact(pfx("10.0.0.0/8")), 1);
}

TEST(PrefixTrie, EraseExposesShorterPrefix) {
  PrefixTrie<int> trie;
  trie.insert(pfx("10.0.0.0/8"), 1);
  trie.insert(pfx("10.1.0.0/16"), 2);
  EXPECT_TRUE(trie.erase(pfx("10.1.0.0/16")));
  EXPECT_EQ(*trie.lookup(ip("10.1.2.3")), 1);
  EXPECT_FALSE(trie.erase(pfx("10.1.0.0/16")));
  EXPECT_EQ(trie.size(), 1u);
}

TEST(PrefixTrie, ForEachVisitsAllInAddressOrder) {
  PrefixTrie<int> trie;
  trie.insert(pfx("20.0.0.0/8"), 1);
  trie.insert(pfx("10.0.0.0/8"), 2);
  trie.insert(pfx("10.5.0.0/16"), 3);
  std::vector<std::string> seen;
  trie.for_each([&seen](const Prefix& p, int) { seen.push_back(p.to_string()); });
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], "10.0.0.0/8");
  EXPECT_EQ(seen[1], "10.5.0.0/16");
  EXPECT_EQ(seen[2], "20.0.0.0/8");
}

// Property test: trie LPM agrees with a brute-force reference over random
// prefixes and probes.
TEST(PrefixTrie, MatchesBruteForceReference) {
  util::Rng rng(2024);
  PrefixTrie<std::uint32_t> trie;
  std::vector<std::pair<Prefix, std::uint32_t>> reference;
  for (int i = 0; i < 500; ++i) {
    const auto addr = IPv4Addr(static_cast<std::uint32_t>(rng.next()));
    const int len = static_cast<int>(rng.below(33));
    const Prefix p(addr, len);
    const auto value = static_cast<std::uint32_t>(i);
    bool replaced = false;
    for (auto& [rp, rv] : reference) {
      if (rp == p) {
        rv = value;
        replaced = true;
        break;
      }
    }
    if (!replaced) reference.emplace_back(p, value);
    trie.insert(p, value);
  }
  EXPECT_EQ(trie.size(), reference.size());

  for (int probe = 0; probe < 2000; ++probe) {
    const auto addr = IPv4Addr(static_cast<std::uint32_t>(rng.next()));
    const std::uint32_t* got = trie.lookup(addr);
    // Brute force: longest prefix containing addr.
    const std::pair<Prefix, std::uint32_t>* best = nullptr;
    for (const auto& entry : reference) {
      if (entry.first.contains(addr) &&
          (!best || entry.first.length() > best->first.length())) {
        best = &entry;
      }
    }
    if (best == nullptr) {
      EXPECT_EQ(got, nullptr);
    } else {
      ASSERT_NE(got, nullptr);
      EXPECT_EQ(*got, best->second);
    }
  }
}

}  // namespace
}  // namespace dnsbs::net
