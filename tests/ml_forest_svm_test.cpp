// Random Forest and kernel SVM behaviour on controlled data.
#include <gtest/gtest.h>

#include "ml/forest.hpp"
#include "ml/svm.hpp"
#include "util/rng.hpp"

namespace dnsbs::ml {
namespace {

/// Three Gaussian-ish blobs in 2D.
Dataset blobs(std::size_t per_class, std::uint64_t seed, double spread = 0.08) {
  Dataset d({"x", "y"}, {"a", "b", "c"});
  util::Rng rng(seed);
  const double centers[3][2] = {{0.2, 0.2}, {0.8, 0.2}, {0.5, 0.9}};
  for (std::size_t k = 0; k < 3; ++k) {
    for (std::size_t i = 0; i < per_class; ++i) {
      d.add({centers[k][0] + rng.normal(0, spread), centers[k][1] + rng.normal(0, spread)},
            k);
    }
  }
  return d;
}

double accuracy_on(const Classifier& model, const Dataset& d) {
  std::size_t correct = 0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (model.predict(d.row(i)) == d.label(i)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(d.size());
}

TEST(RandomForest, SeparatesBlobs) {
  const Dataset train = blobs(60, 1);
  const Dataset test = blobs(30, 2);
  ForestConfig cfg;
  cfg.n_trees = 40;
  RandomForest rf(cfg);
  rf.fit(train);
  EXPECT_EQ(rf.tree_count(), 40u);
  EXPECT_GT(accuracy_on(rf, test), 0.95);
}

TEST(RandomForest, DeterministicGivenSeed) {
  const Dataset d = blobs(40, 3);
  ForestConfig cfg;
  cfg.n_trees = 15;
  cfg.seed = 77;
  RandomForest a(cfg), b(cfg);
  a.fit(d);
  b.fit(d);
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(a.predict(d.row(i)), b.predict(d.row(i)));
  }
}

TEST(RandomForest, DifferentSeedsDifferSomewhere) {
  const Dataset d = blobs(25, 4, 0.25);  // noisy: boundaries differ
  ForestConfig a_cfg;
  a_cfg.n_trees = 5;
  a_cfg.seed = 1;
  ForestConfig b_cfg = a_cfg;
  b_cfg.seed = 2;
  RandomForest a(a_cfg), b(b_cfg);
  a.fit(d);
  b.fit(d);
  util::Rng rng(5);
  bool any_diff = false;
  for (int probe = 0; probe < 400 && !any_diff; ++probe) {
    const std::vector<double> q = {rng.uniform(), rng.uniform()};
    any_diff = a.predict(q) != b.predict(q);
  }
  EXPECT_TRUE(any_diff);
}

TEST(RandomForest, GiniImportanceSumsTo100) {
  Dataset d({"useful", "junk"}, {"a", "b"});
  util::Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    d.add({rng.uniform(0.0, 0.4), rng.uniform()}, 0);
    d.add({rng.uniform(0.6, 1.0), rng.uniform()}, 1);
  }
  ForestConfig cfg;
  cfg.n_trees = 30;
  RandomForest rf(cfg);
  rf.fit(d);
  const auto imp = rf.gini_importance();
  ASSERT_EQ(imp.size(), 2u);
  EXPECT_NEAR(imp[0] + imp[1], 100.0, 1e-6);
  EXPECT_GT(imp[0], 80.0);
}

TEST(RandomForest, EmptyFitPredictsZero) {
  Dataset d({"x"}, {"a", "b"});
  RandomForest rf;
  rf.fit(d);
  const std::vector<double> q = {0.5};
  EXPECT_EQ(rf.predict(q), 0u);
}

TEST(StandardScaler, CentersAndScales) {
  Dataset d({"x", "y"}, {"a"});
  d.add({10.0, 1.0}, 0);
  d.add({20.0, 1.0}, 0);
  d.add({30.0, 1.0}, 0);
  StandardScaler scaler;
  scaler.fit(d);
  const auto t = scaler.transform(d.row(1));
  EXPECT_NEAR(t[0], 0.0, 1e-9);             // mean row maps to 0
  const auto lo = scaler.transform(d.row(0));
  EXPECT_NEAR(lo[0], -1.224744871, 1e-6);   // (10-20)/std
  // Constant column: no scaling blow-up.
  EXPECT_NEAR(t[1], 0.0, 1e-9);
}

TEST(KernelSvm, SeparatesBlobs) {
  const Dataset train = blobs(40, 7);
  const Dataset test = blobs(20, 8);
  KernelSvm svm;
  svm.fit(train);
  EXPECT_GT(svm.support_vector_count(), 0u);
  EXPECT_GT(accuracy_on(svm, test), 0.9);
}

TEST(KernelSvm, SolvesNonLinearRings) {
  // Inner disc vs outer ring: linearly inseparable, RBF solves it.
  Dataset d({"x", "y"}, {"inner", "outer"});
  util::Rng rng(9);
  for (int i = 0; i < 120; ++i) {
    const double angle = rng.uniform(0.0, 6.28318);
    const double r_in = rng.uniform(0.0, 0.3);
    const double r_out = rng.uniform(0.7, 1.0);
    d.add({r_in * std::cos(angle), r_in * std::sin(angle)}, 0);
    d.add({r_out * std::cos(angle), r_out * std::sin(angle)}, 1);
  }
  KernelSvm svm;
  svm.fit(d);
  EXPECT_GT(accuracy_on(svm, d), 0.95);
}

TEST(KernelSvm, HandlesMissingClasses) {
  // Class "c" has no examples; one-vs-one must skip it gracefully.
  Dataset d({"x"}, {"a", "b", "c"});
  util::Rng rng(10);
  for (int i = 0; i < 30; ++i) {
    d.add({rng.uniform(0.0, 0.4)}, 0);
    d.add({rng.uniform(0.6, 1.0)}, 1);
  }
  KernelSvm svm;
  svm.fit(d);
  const std::vector<double> q = {0.1};
  EXPECT_EQ(svm.predict(q), 0u);
}

TEST(KernelSvm, NamesAreStable) {
  EXPECT_EQ(KernelSvm().name(), "SVM");
  EXPECT_EQ(RandomForest().name(), "RF");
}

}  // namespace
}  // namespace dnsbs::ml
