// Streaming daemon stack: CLI parsing regressions, the bounded intake
// queue, StreamingWindowDriver vs the batch pipeline as an oracle, the
// checkpoint/restore byte-identity contract, and a loopback integration
// run of the full ServeDaemon (sockets, stamped framing, control
// protocol).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/streaming.hpp"
#include "analysis/telemetry.hpp"
#include "cli_options.hpp"
#include "util/jobs.hpp"
#include "dns/capture.hpp"
#include "labeling/ground_truth.hpp"
#include "net/socket.hpp"
#include "serve/daemon.hpp"
#include "serve/intake.hpp"
#include "util/binio.hpp"
#include "util/fuzz.hpp"
#include "util/parallel.hpp"
#include "util/strings.hpp"
#include "util/trace.hpp"

namespace dnsbs {
namespace {

using dns::QueryRecord;
using dns::RCode;
using net::IPv4Addr;
using util::SimTime;

// ---- CLI parsing regressions -------------------------------------------

bool parse_args(std::vector<std::string> args, cli::Options& opt, std::string& error) {
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>("dnsbs"));
  for (std::string& a : args) argv.push_back(a.data());
  return cli::parse(static_cast<int>(argv.size()), argv.data(), opt, error);
}

TEST(CliParse, TrailingFlagWithoutValueIsAnError) {
  // Used to be silently ignored: `dnsbs serve --window` just dropped the
  // flag and ran with the default.
  cli::Options opt;
  std::string error;
  EXPECT_FALSE(parse_args({"serve", "--window"}, opt, error));
  EXPECT_NE(error.find("flag requires a value: --window"), std::string::npos) << error;
}

TEST(CliParse, PartialNumericIsAnError) {
  // Used to be truncated: atof/strtoull turned "12x" into 12.
  cli::Options opt;
  std::string error;
  EXPECT_FALSE(parse_args({"serve", "--window", "12x"}, opt, error));
  EXPECT_NE(error.find("--window"), std::string::npos) << error;
  EXPECT_EQ(opt.window_secs, 86400) << "default must survive a failed parse";

  EXPECT_FALSE(parse_args({"generate", "--scale", "abc"}, opt, error));
  EXPECT_NE(error.find("--scale"), std::string::npos) << error;
}

TEST(CliParse, PortOutOfRangeIsAnError) {
  cli::Options opt;
  std::string error;
  EXPECT_FALSE(parse_args({"serve", "--udp-port", "70000"}, opt, error));
  EXPECT_FALSE(parse_args({"serve", "--udp-port", "-1"}, opt, error));
  EXPECT_EQ(opt.udp_port, 0);
}

TEST(CliParse, UnknownFlagIsAnError) {
  cli::Options opt;
  std::string error;
  EXPECT_FALSE(parse_args({"serve", "--no-such-flag", "1"}, opt, error));
  EXPECT_NE(error.find("unknown flag: --no-such-flag"), std::string::npos) << error;
}

TEST(CliParse, FullServeCommandLine) {
  cli::Options opt;
  std::string error;
  ASSERT_TRUE(parse_args({"serve", "--udp-port", "9000", "--tcp-port", "9001", "--stamped",
                          "--window", "3600", "--hop", "600", "--checkpoint", "/tmp/ck",
                          "--restore", "--queue", "128", "--windows-out", "/tmp/w"},
                         opt, error))
      << error;
  EXPECT_EQ(opt.command, "serve");
  EXPECT_EQ(opt.udp_port, 9000);
  EXPECT_TRUE(opt.tcp) << "--tcp-port implies the TCP listener";
  EXPECT_EQ(opt.tcp_port, 9001);
  EXPECT_TRUE(opt.stamped);
  EXPECT_EQ(opt.window_secs, 3600);
  EXPECT_EQ(opt.hop_secs, 600);
  EXPECT_EQ(opt.checkpoint_path, "/tmp/ck");
  EXPECT_TRUE(opt.restore);
  EXPECT_EQ(opt.queue_capacity, 128u);
  EXPECT_EQ(opt.windows_out, "/tmp/w");
}

TEST(CliParse, MetricsFormatOverrideAndSuffixConflict) {
  cli::Options opt;
  std::string error;
  ASSERT_TRUE(parse_args({"analyze", "--metrics-out", "m.txt", "--metrics-format", "prom"},
                         opt, error))
      << error;
  EXPECT_EQ(opt.metrics_format, "prom");

  EXPECT_FALSE(parse_args({"analyze", "--metrics-format", "xml"}, opt, error));
  EXPECT_NE(error.find("--metrics-format"), std::string::npos) << error;

  // .prom has always meant Prometheus; an explicit json override that
  // contradicts the suffix is ambiguous and must be a hard error.
  EXPECT_FALSE(parse_args(
      {"analyze", "--metrics-out", "m.prom", "--metrics-format", "json"}, opt, error));
  EXPECT_NE(error.find("conflicts"), std::string::npos) << error;

  // Agreeing with the suffix (or overriding a non-.prom path) is fine.
  ASSERT_TRUE(parse_args(
      {"analyze", "--metrics-out", "m.prom", "--metrics-format", "prom"}, opt, error))
      << error;
  ASSERT_TRUE(parse_args(
      {"analyze", "--metrics-out", "m.json", "--metrics-format", "json"}, opt, error))
      << error;
}

TEST(CliParse, TelemetryFlags) {
  cli::Options opt;
  std::string error;
  ASSERT_TRUE(parse_args({"serve", "--trace-out", "/tmp/t.json", "--history-cap", "8"},
                         opt, error))
      << error;
  EXPECT_EQ(opt.trace_out, "/tmp/t.json");
  EXPECT_EQ(opt.history_cap, 8u);
  EXPECT_FALSE(parse_args({"serve", "--history-cap", "many"}, opt, error));
}

TEST(CliParse, AsyncWindowsFlag) {
  cli::Options opt;
  std::string error;
  EXPECT_TRUE(opt.async_windows) << "async pipeline is the serve default";
  ASSERT_TRUE(parse_args({"serve", "--async-windows", "off"}, opt, error)) << error;
  EXPECT_FALSE(opt.async_windows);
  ASSERT_TRUE(parse_args({"serve", "--async-windows", "on"}, opt, error)) << error;
  EXPECT_TRUE(opt.async_windows);
  EXPECT_FALSE(parse_args({"serve", "--async-windows", "maybe"}, opt, error));
  EXPECT_NE(error.find("--async-windows"), std::string::npos) << error;

  ASSERT_TRUE(parse_args({"serve", "--job-threads", "4"}, opt, error)) << error;
  EXPECT_EQ(opt.job_threads, 4u);
  EXPECT_FALSE(parse_args({"serve", "--job-threads", "65"}, opt, error));
  EXPECT_FALSE(parse_args({"serve", "--job-threads", "two"}, opt, error));
}

TEST(CliParse, StrictNumericHelpers) {
  std::uint64_t u = 7;
  std::string why;
  EXPECT_TRUE(util::parse_u64("42", u, &why));
  EXPECT_EQ(u, 42u);
  EXPECT_FALSE(util::parse_u64("42z", u, &why));
  EXPECT_EQ(u, 42u) << "out-parameter untouched on failure";
  EXPECT_FALSE(util::parse_u64("", u, &why));
  EXPECT_FALSE(util::parse_u64("99999999999999999999999", u, &why));

  std::int64_t i = 0;
  EXPECT_TRUE(util::parse_i64("-5", i, &why));
  EXPECT_EQ(i, -5);

  double d = 0;
  EXPECT_TRUE(util::parse_f64("0.25", d, &why));
  EXPECT_EQ(d, 0.25);
  EXPECT_FALSE(util::parse_f64("0.25x", d, &why));
}

// ---- bounded intake queue ----------------------------------------------

TEST(BoundedQueue, TryPushDropsWhenFull) {
  serve::BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // full: UDP-style drop
  std::vector<int> out;
  EXPECT_EQ(q.pop_batch(out, 10, 0), 2u);
  EXPECT_EQ(out, (std::vector<int>{1, 2}));
}

TEST(BoundedQueue, BlockingPushWaitsForSpace) {
  serve::BoundedQueue<int> q(1);
  ASSERT_TRUE(q.try_push(1));
  std::thread producer([&q] { EXPECT_TRUE(q.push(2)); });
  std::vector<int> out;
  // Drain one item; the blocked producer must then complete.
  while (q.pop_batch(out, 1, 100) == 0) {
  }
  producer.join();
  EXPECT_EQ(out.front(), 1);
  out.clear();
  EXPECT_EQ(q.pop_batch(out, 1, 1000), 1u);
  EXPECT_EQ(out.front(), 2);
}

TEST(BoundedQueue, CloseRejectsProducersAndDrains) {
  serve::BoundedQueue<int> q(4);
  ASSERT_TRUE(q.try_push(1));
  std::thread blocked([&q] {
    serve::BoundedQueue<int> full(1);
    EXPECT_TRUE(full.try_push(9));
    full.close();
    EXPECT_FALSE(full.push(10)) << "close() must wake and reject a blocked push";
  });
  blocked.join();
  q.close();
  EXPECT_FALSE(q.try_push(2));
  EXPECT_FALSE(q.push(3));
  std::vector<int> out;
  EXPECT_EQ(q.pop_batch(out, 10, 0), 1u) << "consumer can drain after close";
  EXPECT_EQ(q.pop_batch(out, 10, 0), 0u);
}

// ---- streaming driver fixtures -----------------------------------------

IPv4Addr addr(int a, int b, int c, int d) {
  return IPv4Addr((std::uint32_t(a) << 24) | (std::uint32_t(b) << 16) |
                  (std::uint32_t(c) << 8) | std::uint32_t(d));
}

QueryRecord rec(std::int64_t secs, IPv4Addr querier, IPv4Addr originator) {
  return QueryRecord{SimTime::seconds(secs), querier, originator, RCode::kNoError};
}

/// Category cycles with the querier's last octet; stable per address, as
/// carry-forward requires.
class CategoryResolver final : public core::QuerierResolver {
 public:
  core::QuerierInfo resolve(IPv4Addr querier) const override {
    core::QuerierInfo info;
    switch (querier.octet(3) % 4) {
      case 0:
        info.status = core::ResolveStatus::kOk;
        info.name = *dns::DnsName::parse("mail.example.com");
        break;
      case 1:
        info.status = core::ResolveStatus::kOk;
        info.name = *dns::DnsName::parse("ns1.example.com");
        break;
      case 2:
        info.status = core::ResolveStatus::kNxDomain;
        break;
      default:
        info.status = core::ResolveStatus::kUnreachable;
        break;
    }
    return info;
  }
};

struct Dbs {
  netdb::AsDb as_db;
  netdb::GeoDb geo_db;
  Dbs() {
    as_db.add(*net::Prefix::parse("10.0.0.0/16"), 100, "as-a");
    as_db.add(*net::Prefix::parse("10.1.0.0/16"), 200, "as-b");
    as_db.add(*net::Prefix::parse("10.2.0.0/16"), 300, "as-c");
    geo_db.add(*net::Prefix::parse("10.0.0.0/16"), netdb::CountryCode('j', 'p'));
    geo_db.add(*net::Prefix::parse("10.1.0.0/16"), netdb::CountryCode('u', 's'));
    geo_db.add(*net::Prefix::parse("10.2.0.0/16"), netdb::CountryCode('d', 'e'));
  }
};

analysis::WindowedPipelineConfig pipeline_config() {
  analysis::WindowedPipelineConfig pc;
  pc.sensor.min_queriers = 4;
  pc.forest.n_trees = 8;
  pc.seed = 11;
  return pc;
}

labeling::GroundTruth make_labels() {
  labeling::GroundTruth labels;
  labels.add(addr(192, 0, 2, 0), core::AppClass::kScan);
  labels.add(addr(192, 0, 2, 1), core::AppClass::kScan);
  labels.add(addr(192, 0, 2, 2), core::AppClass::kSpam);
  labels.add(addr(192, 0, 2, 3), core::AppClass::kSpam);
  return labels;
}

/// One 600-second block of traffic: 6 originators, footprints 4..9.
void append_block(std::vector<QueryRecord>& out, std::int64_t start) {
  for (int o = 0; o < 6; ++o) {
    for (int q = 0; q < 4 + o; ++q) {
      out.push_back(rec(start + q * 7 + o, addr(10, o % 3, q, (q * 3 + o) % 8),
                        addr(192, 0, 2, o)));
    }
  }
}

/// Renders one window the way the daemon's --windows-out summaries do
/// (hexfloat rows, address-sorted classes, deterministic metric view), so
/// equality of the rendered strings is the byte-identity claim.
std::string render_window(const analysis::WindowResult& r,
                          const labeling::WindowObservation& obs, bool with_metrics) {
  std::ostringstream out;
  char buf[48];
  out << "window " << r.index << " start=" << r.start.secs() << " end=" << r.end.secs()
      << "\n";
  out << "features " << obs.features.size() << "\n";
  for (const core::FeatureVector& fv : obs.features) {
    out << "row " << fv.originator.to_string() << " footprint=" << fv.footprint;
    for (const double v : fv.statics) {
      std::snprintf(buf, sizeof(buf), " %a", v);
      out << buf;
    }
    for (const double v : fv.dynamics) {
      std::snprintf(buf, sizeof(buf), " %a", v);
      out << buf;
    }
    out << "\n";
  }
  std::vector<std::pair<IPv4Addr, core::AppClass>> classes(r.classes.begin(),
                                                           r.classes.end());
  std::sort(classes.begin(), classes.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  out << "classes " << classes.size() << "\n";
  for (const auto& [originator, cls] : classes) {
    const auto fp = r.footprints.find(originator);
    out << "class " << originator.to_string() << ' ' << static_cast<int>(cls)
        << " footprint=" << (fp != r.footprints.end() ? fp->second : 0) << "\n";
  }
  if (with_metrics) {
    const util::MetricsSnapshot det = r.metrics_delta.deterministic_view();
    for (const util::MetricValue& v : det.values) {
      out << "metric " << v.name << '='
          << (v.kind == util::MetricKind::kGauge ? v.gauge
                                                 : static_cast<double>(v.count))
          << "\n";
    }
  }
  return out.str();
}

std::vector<std::string> render_all(analysis::WindowedPipeline& pipeline,
                                    bool with_metrics) {
  std::vector<std::string> rendered;
  const auto& results = pipeline.results();
  const auto& observations = pipeline.observations();
  for (std::size_t i = 0; i < results.size(); ++i) {
    rendered.push_back(render_window(results[i], observations[i], with_metrics));
  }
  return rendered;
}

// ---- streaming driver vs batch pipeline (oracle) -----------------------

TEST(StreamingDriver, TumblingWindowsMatchBatchPipeline) {
  Dbs dbs;
  const CategoryResolver resolver;
  const SimTime window = SimTime::seconds(600);

  // Traffic in windows 0, 1 and 3; window 2 is a silent gap the driver
  // must still emit (empty) to keep indices and retrain seeds aligned.
  std::vector<QueryRecord> records;
  for (const std::int64_t w : {0, 1, 3}) append_block(records, w * 600);

  analysis::WindowedPipeline batch(pipeline_config(), dbs.as_db, dbs.geo_db, resolver);
  batch.set_labels(make_labels());
  for (int w = 0; w < 4; ++w) {
    std::vector<QueryRecord> in_window;
    for (const QueryRecord& r : records) {
      if (r.time.secs() >= w * 600 && r.time.secs() < (w + 1) * 600) {
        in_window.push_back(r);
      }
    }
    batch.process_window(in_window, SimTime::seconds(w * 600),
                         SimTime::seconds((w + 1) * 600));
  }

  analysis::WindowedPipeline streamed(pipeline_config(), dbs.as_db, dbs.geo_db, resolver);
  streamed.set_labels(make_labels());
  analysis::StreamingConfig sc;
  sc.window = window;
  analysis::StreamingWindowDriver driver(sc, streamed, dbs.as_db, dbs.geo_db, resolver);
  for (const QueryRecord& r : records) driver.offer(r);
  driver.flush();

  EXPECT_EQ(driver.windows_closed(), 4u);
  EXPECT_EQ(driver.open_windows(), 0u);
  EXPECT_EQ(driver.late_records(), 0u);

  // Metric deltas legitimately differ (record-at-a-time vs bulk ingest
  // counters), so the oracle compares windows without them.
  const auto expect = render_all(batch, /*with_metrics=*/false);
  const auto got = render_all(streamed, /*with_metrics=*/false);
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(got[i], expect[i]) << "window " << i;
  }
  EXPECT_EQ(expect[1].find("classes 0\n"), std::string::npos)
      << "model should be trained and classifying by window 1";
}

TEST(StreamingDriver, HoppingWindowsMatchBatchPipeline) {
  Dbs dbs;
  const CategoryResolver resolver;

  std::vector<QueryRecord> records;
  for (const std::int64_t w : {0, 1, 3}) append_block(records, w * 600);

  // Overlapping windows: width 600, hop 300 -> every record lands in two
  // windows, and the 900 and 1500 starts are empty or partial.
  analysis::WindowedPipeline batch(pipeline_config(), dbs.as_db, dbs.geo_db, resolver);
  batch.set_labels(make_labels());
  for (std::int64_t start = 0; start <= 1800; start += 300) {
    std::vector<QueryRecord> in_window;
    for (const QueryRecord& r : records) {
      if (r.time.secs() >= start && r.time.secs() < start + 600) in_window.push_back(r);
    }
    batch.process_window(in_window, SimTime::seconds(start), SimTime::seconds(start + 600));
  }

  analysis::WindowedPipeline streamed(pipeline_config(), dbs.as_db, dbs.geo_db, resolver);
  streamed.set_labels(make_labels());
  analysis::StreamingConfig sc;
  sc.window = SimTime::seconds(600);
  sc.hop = SimTime::seconds(300);
  analysis::StreamingWindowDriver driver(sc, streamed, dbs.as_db, dbs.geo_db, resolver);
  for (const QueryRecord& r : records) driver.offer(r);
  driver.flush();

  EXPECT_EQ(driver.windows_closed(), 7u);
  const auto expect = render_all(batch, /*with_metrics=*/false);
  const auto got = render_all(streamed, /*with_metrics=*/false);
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(got[i], expect[i]) << "window " << i;
  }
}

TEST(StreamingDriver, RecordOlderThanEveryOpenWindowIsLate) {
  Dbs dbs;
  const CategoryResolver resolver;
  analysis::WindowedPipeline pipeline(pipeline_config(), dbs.as_db, dbs.geo_db, resolver);
  analysis::StreamingConfig sc;
  sc.window = SimTime::seconds(100);
  analysis::StreamingWindowDriver driver(sc, pipeline, dbs.as_db, dbs.geo_db, resolver);

  driver.offer(rec(0, addr(10, 0, 0, 1), addr(192, 0, 2, 0)));
  driver.offer(rec(250, addr(10, 0, 0, 1), addr(192, 0, 2, 0)));  // closes w0, w1
  EXPECT_EQ(driver.windows_closed(), 2u);
  driver.offer(rec(50, addr(10, 0, 0, 2), addr(192, 0, 2, 0)));  // before w2's start
  EXPECT_EQ(driver.late_records(), 1u);
  driver.flush();
  EXPECT_EQ(driver.windows_closed(), 3u);
}

// ---- checkpoint / restore ----------------------------------------------

TEST(StreamingDriver, CheckpointRestoreIsByteIdentical) {
  Dbs dbs;
  const CategoryResolver resolver;
  analysis::StreamingConfig sc;
  sc.window = SimTime::seconds(600);

  // Four contiguous windows of traffic; the checkpoint lands mid-window 2
  // so the saved state carries a partially-filled sensor and live dedup
  // entries, not just a window boundary.
  std::vector<QueryRecord> records;
  for (const std::int64_t w : {0, 1, 2, 3}) append_block(records, w * 600);
  std::size_t split = 0;
  while (split < records.size() && records[split].time.secs() < 1300) ++split;
  ASSERT_GT(split, 0u);
  ASSERT_LT(split, records.size());

  // Run A: uninterrupted.
  std::vector<std::string> expect;
  {
    analysis::WindowedPipeline pipeline(pipeline_config(), dbs.as_db, dbs.geo_db,
                                        resolver);
    pipeline.set_labels(make_labels());
    analysis::StreamingWindowDriver driver(sc, pipeline, dbs.as_db, dbs.geo_db, resolver);
    for (const QueryRecord& r : records) driver.offer(r);
    driver.flush();
    expect = render_all(pipeline, /*with_metrics=*/true);
  }
  ASSERT_EQ(expect.size(), 4u);

  // Run B: same stream, killed mid-window-2 and restored into a fresh
  // pipeline + driver pair.
  std::stringstream checkpoint;
  std::vector<std::string> got;
  {
    analysis::WindowedPipeline pipeline(pipeline_config(), dbs.as_db, dbs.geo_db,
                                        resolver);
    pipeline.set_labels(make_labels());
    analysis::StreamingWindowDriver driver(sc, pipeline, dbs.as_db, dbs.geo_db, resolver);
    for (std::size_t i = 0; i < split; ++i) driver.offer(records[i]);
    EXPECT_EQ(driver.open_windows(), 1u) << "checkpoint should land mid-window";
    ASSERT_TRUE(driver.save(checkpoint));
    got = render_all(pipeline, /*with_metrics=*/true);  // windows closed pre-kill
  }
  {
    analysis::WindowedPipeline pipeline(pipeline_config(), dbs.as_db, dbs.geo_db,
                                        resolver);
    pipeline.set_labels(make_labels());
    analysis::StreamingWindowDriver driver(sc, pipeline, dbs.as_db, dbs.geo_db, resolver);
    ASSERT_TRUE(driver.restore(checkpoint));
    EXPECT_EQ(driver.windows_closed(), 2u);
    EXPECT_EQ(driver.open_windows(), 1u);
    for (std::size_t i = split; i < records.size(); ++i) driver.offer(records[i]);
    driver.flush();
    EXPECT_EQ(driver.windows_closed(), 4u);
    for (std::string& s : render_all(pipeline, /*with_metrics=*/true)) {
      got.push_back(std::move(s));
    }
  }

  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(got[i], expect[i]) << "window " << i
                                 << " diverged across the checkpoint restart";
  }
}

TEST(StreamingDriver, CheckpointRestoreIsByteIdenticalInSketchMode) {
  // Same mid-window kill-and-restore contract as the exact-mode test, but
  // with querier state in sketch mode and the promotion threshold set low
  // enough that some originators are promoted (registers + frozen sample)
  // and some are still exact histograms when the checkpoint lands.  The
  // rendered windows include the deterministic metric view, so the
  // dnsbs.aggregate.sketch_* counters must also survive the restart.
  Dbs dbs;
  const CategoryResolver resolver;
  analysis::StreamingConfig sc;
  sc.window = SimTime::seconds(600);

  analysis::WindowedPipelineConfig pc = pipeline_config();
  pc.sensor.querier_state = core::QuerierStateMode::kSketch;
  pc.sensor.sketch_promote_threshold = 6;  // footprints 7..9 promote, 4..6 stay exact

  std::vector<QueryRecord> records;
  for (const std::int64_t w : {0, 1, 2, 3}) append_block(records, w * 600);
  std::size_t split = 0;
  while (split < records.size() && records[split].time.secs() < 1300) ++split;
  ASSERT_GT(split, 0u);
  ASSERT_LT(split, records.size());

  std::vector<std::string> expect;
  {
    analysis::WindowedPipeline pipeline(pc, dbs.as_db, dbs.geo_db, resolver);
    pipeline.set_labels(make_labels());
    analysis::StreamingWindowDriver driver(sc, pipeline, dbs.as_db, dbs.geo_db, resolver);
    for (const QueryRecord& r : records) driver.offer(r);
    driver.flush();
    expect = render_all(pipeline, /*with_metrics=*/true);
  }
  ASSERT_EQ(expect.size(), 4u);
#if DNSBS_METRICS_ENABLED
  bool saw_promotion = false;
  for (const std::string& w : expect) {
    const auto pos = w.find("metric dnsbs.aggregate.sketch_promotions=");
    if (pos != std::string::npos && w.compare(pos + 41, 1, "0") != 0) {
      saw_promotion = true;
    }
  }
  EXPECT_TRUE(saw_promotion) << "threshold too high to exercise promotion";
#endif

  std::stringstream checkpoint;
  std::vector<std::string> got;
  {
    analysis::WindowedPipeline pipeline(pc, dbs.as_db, dbs.geo_db, resolver);
    pipeline.set_labels(make_labels());
    analysis::StreamingWindowDriver driver(sc, pipeline, dbs.as_db, dbs.geo_db, resolver);
    for (std::size_t i = 0; i < split; ++i) driver.offer(records[i]);
    EXPECT_EQ(driver.open_windows(), 1u) << "checkpoint should land mid-window";
    ASSERT_TRUE(driver.save(checkpoint));
    got = render_all(pipeline, /*with_metrics=*/true);
  }
  {
    analysis::WindowedPipeline pipeline(pc, dbs.as_db, dbs.geo_db, resolver);
    pipeline.set_labels(make_labels());
    analysis::StreamingWindowDriver driver(sc, pipeline, dbs.as_db, dbs.geo_db, resolver);
    ASSERT_TRUE(driver.restore(checkpoint));
    for (std::size_t i = split; i < records.size(); ++i) driver.offer(records[i]);
    driver.flush();
    EXPECT_EQ(driver.windows_closed(), 4u);
    for (std::string& s : render_all(pipeline, /*with_metrics=*/true)) {
      got.push_back(std::move(s));
    }
  }

  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(got[i], expect[i]) << "window " << i
                                 << " diverged across the sketch-mode restart";
  }
}

TEST(StreamingDriver, RestoreRejectsMismatchedConfig) {
  Dbs dbs;
  const CategoryResolver resolver;
  analysis::StreamingConfig sc;
  sc.window = SimTime::seconds(600);

  std::stringstream checkpoint;
  {
    analysis::WindowedPipeline pipeline(pipeline_config(), dbs.as_db, dbs.geo_db,
                                        resolver);
    analysis::StreamingWindowDriver driver(sc, pipeline, dbs.as_db, dbs.geo_db, resolver);
    driver.offer(rec(10, addr(10, 0, 0, 1), addr(192, 0, 2, 0)));
    ASSERT_TRUE(driver.save(checkpoint));
  }
  {
    analysis::WindowedPipeline pipeline(pipeline_config(), dbs.as_db, dbs.geo_db,
                                        resolver);
    analysis::StreamingConfig other = sc;
    other.window = SimTime::seconds(300);
    analysis::StreamingWindowDriver driver(other, pipeline, dbs.as_db, dbs.geo_db,
                                           resolver);
    EXPECT_FALSE(driver.restore(checkpoint));
  }
  {
    analysis::WindowedPipeline pipeline(pipeline_config(), dbs.as_db, dbs.geo_db,
                                        resolver);
    analysis::StreamingWindowDriver driver(sc, pipeline, dbs.as_db, dbs.geo_db, resolver);
    std::stringstream garbage("not a checkpoint at all");
    EXPECT_FALSE(driver.restore(garbage));
  }
}

// ---- per-window telemetry history --------------------------------------

TEST(TelemetryHistory, DerivesGaugesAndTrimsToCapacity) {
  analysis::TelemetryHistory h(2);
  analysis::WindowTelemetry e;
  e.index = 0;
  e.dedup_admitted = 3;
  e.dedup_suppressed = 1;
  e.records = 9;
  e.late_records = 1;
  const auto& stored = h.record(e);
  EXPECT_DOUBLE_EQ(stored.dedup_ratio, 0.25);
  EXPECT_DOUBLE_EQ(stored.late_rate, 0.1);
  e.index = 1;
  h.record(e);
  e.index = 2;
  h.record(e);
  EXPECT_EQ(h.size(), 2u);
  EXPECT_EQ(h.entries().front().index, 1u) << "oldest entry must be evicted";
}

TEST(TelemetryHistory, DriftWarnsOnceBaselineIsPopulated) {
  analysis::TelemetryHistory h(16, /*drift_warn_threshold=*/0.5);
  analysis::WindowTelemetry e;
  e.classified = 10;
  e.class_counts[0] = 10;  // all predictions in class 0
  for (std::uint64_t i = 0; i < 3; ++i) {
    e.index = i;
    EXPECT_FALSE(h.record(e).drift_warned) << "baseline not yet populated at " << i;
  }
  analysis::WindowTelemetry shifted;
  shifted.index = 3;
  shifted.classified = 10;
  shifted.class_counts[1] = 10;  // disjoint mix: total variation = 1
  const auto& warned = h.record(shifted);
  EXPECT_DOUBLE_EQ(warned.drift, 1.0);
  EXPECT_TRUE(warned.drift_warned);
  // Identical mix drifts by 0 and never warns.
  e.index = 4;
  const auto& same = h.record(e);
  EXPECT_LT(same.drift, 0.5);
}

TEST(TelemetryHistory, JsonCarriesGoldenKeysOnOneLine) {
  analysis::TelemetryHistory h(4);
  analysis::WindowTelemetry e;
  e.index = 7;
  e.start_secs = 600;
  e.end_secs = 1200;
  e.records = 5;
  e.classified = 2;
  e.class_counts[0] = 2;
  e.retrained = true;
  e.confidence_hist[9] = 2;
  e.queue_depth_peak = 42;
  h.record(e);

  const std::string json = h.to_json();
  EXPECT_EQ(json.rfind("{\"count\":1,\"capacity\":4,\"windows\":[", 0), 0u) << json;
  EXPECT_EQ(json.find('\n'), std::string::npos) << "control replies are one line";
  for (const char* key :
       {"\"index\":7", "\"start\":600", "\"end\":1200", "\"records\":5",
        "\"interesting\":", "\"dedup\":{\"admitted\":", "\"ratio\":",
        "\"late\":{\"records\":", "\"rate\":", "\"classified\":2", "\"retrained\":true",
        "\"confidence\":[0,0,0,0,0,0,0,0,0,2]", "\"class_mix\":{", "\"drift\":",
        "\"drift_warn\":false", "\"sched\":{\"queue_depth_peak\":42}"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " missing in " << json;
  }
  // last_n views report what they contain, newest last.
  h.record(e);
  EXPECT_EQ(h.to_json(1).rfind("{\"count\":1,\"capacity\":4,", 0), 0u);
  EXPECT_EQ(h.to_json(0).rfind("{\"count\":2,\"capacity\":4,", 0), 0u);
}

TEST(TelemetryHistory, BinaryRoundTripIsExact) {
  analysis::TelemetryHistory a(8);
  analysis::WindowTelemetry e;
  e.classified = 4;
  e.class_counts[2] = 4;
  e.dedup_admitted = 10;
  e.dedup_suppressed = 30;
  e.queue_depth_peak = 17;
  for (std::uint64_t i = 0; i < 5; ++i) {
    e.index = i;
    a.record(e);
  }
  std::stringstream state;
  util::BinaryWriter writer(state);
  a.save(writer);
  ASSERT_TRUE(writer.ok());

  analysis::TelemetryHistory b(8);
  util::BinaryReader reader(state);
  ASSERT_TRUE(b.load(reader));
  EXPECT_EQ(a.to_json(), b.to_json());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.entries()[i], b.entries()[i]) << "entry " << i;
  }

  // A ring sized differently is a config mismatch, not a silent resize.
  std::stringstream again;
  util::BinaryWriter w2(again);
  a.save(w2);
  analysis::TelemetryHistory c(4);
  util::BinaryReader r2(again);
  EXPECT_FALSE(c.load(r2));
}

TEST(StreamingDriver, HistorySurvivesCheckpointByteIdentically) {
  Dbs dbs;
  const CategoryResolver resolver;
  analysis::StreamingConfig sc;
  sc.window = SimTime::seconds(600);

  std::vector<QueryRecord> records;
  for (const std::int64_t w : {0, 1, 2, 3}) append_block(records, w * 600);
  std::size_t split = 0;
  while (split < records.size() && records[split].time.secs() < 1300) ++split;

  // Run A: uninterrupted reference history.
  std::string expect_history;
  {
    analysis::WindowedPipeline pipeline(pipeline_config(), dbs.as_db, dbs.geo_db,
                                        resolver);
    pipeline.set_labels(make_labels());
    analysis::StreamingWindowDriver driver(sc, pipeline, dbs.as_db, dbs.geo_db, resolver);
    for (const QueryRecord& r : records) driver.offer(r);
    driver.flush();
    EXPECT_EQ(driver.telemetry().size(), 4u);
    expect_history = driver.history_json();
  }

  // Run B: killed mid-window-2, restored, finished.
  std::stringstream checkpoint;
  std::string at_kill;
  {
    analysis::WindowedPipeline pipeline(pipeline_config(), dbs.as_db, dbs.geo_db,
                                        resolver);
    pipeline.set_labels(make_labels());
    analysis::StreamingWindowDriver driver(sc, pipeline, dbs.as_db, dbs.geo_db, resolver);
    for (std::size_t i = 0; i < split; ++i) driver.offer(records[i]);
    ASSERT_TRUE(driver.save(checkpoint));
    at_kill = driver.history_json();
  }
  {
    analysis::WindowedPipeline pipeline(pipeline_config(), dbs.as_db, dbs.geo_db,
                                        resolver);
    pipeline.set_labels(make_labels());
    analysis::StreamingWindowDriver driver(sc, pipeline, dbs.as_db, dbs.geo_db, resolver);
    ASSERT_TRUE(driver.restore(checkpoint));
    EXPECT_EQ(driver.history_json(), at_kill)
        << "restored daemon must answer HISTORY exactly as the killed one";
    for (std::size_t i = split; i < records.size(); ++i) driver.offer(records[i]);
    driver.flush();
    EXPECT_EQ(driver.history_json(), expect_history)
        << "completed history must match the uninterrupted run";
  }
}

TEST(StreamingDriver, HistoryAndWindowsIdenticalAcrossThreadCounts) {
  // The full observability plane active (trace capture + telemetry ring)
  // must not perturb the determinism contract: windows, metric deltas and
  // the rendered history are byte-identical for 1/2/4 worker threads.
  struct ThreadCountGuard {
    ~ThreadCountGuard() { util::set_thread_count(0); }
  } guard;
  Dbs dbs;
  const CategoryResolver resolver;
  analysis::StreamingConfig sc;
  sc.window = SimTime::seconds(600);

  std::vector<QueryRecord> records;
  for (const std::int64_t w : {0, 1, 2, 3}) append_block(records, w * 600);

  std::vector<std::string> baseline_windows;
  std::string baseline_history;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    util::set_thread_count(threads);
    util::trace_start();
    analysis::WindowedPipeline pipeline(pipeline_config(), dbs.as_db, dbs.geo_db,
                                        resolver);
    pipeline.set_labels(make_labels());
    analysis::StreamingWindowDriver driver(sc, pipeline, dbs.as_db, dbs.geo_db, resolver);
    for (const QueryRecord& r : records) driver.offer(r);
    driver.flush();
    util::trace_stop();
    const auto rendered = render_all(pipeline, /*with_metrics=*/true);
    const std::string history = driver.history_json();
    if (threads == 1) {
      baseline_windows = rendered;
      baseline_history = history;
      continue;
    }
    ASSERT_EQ(rendered.size(), baseline_windows.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < rendered.size(); ++i) {
      EXPECT_EQ(rendered[i], baseline_windows[i])
          << "window " << i << " diverged at threads=" << threads;
    }
    EXPECT_EQ(history, baseline_history) << "history diverged at threads=" << threads;
  }
}

// ---- async window pipeline vs sync (oracle) ----------------------------

TEST(WindowSummarySequencer, ReleasesContiguousRunsInOrder) {
  serve::WindowSummarySequencer seq;
  EXPECT_TRUE(seq.push(1, "b").empty()) << "gap at 0 must buffer";
  EXPECT_TRUE(seq.push(3, "d").empty());
  EXPECT_EQ(seq.buffered(), 2u);
  // Index 0 arrives: 0 and the buffered 1 release together; 3 still waits.
  const auto run = seq.push(0, "a");
  ASSERT_EQ(run.size(), 2u);
  EXPECT_EQ(run[0], "a");
  EXPECT_EQ(run[1], "b");
  EXPECT_EQ(seq.next_index(), 2u);
  const auto rest = seq.push(2, "c");
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_EQ(rest[0], "c");
  EXPECT_EQ(rest[1], "d");
  EXPECT_EQ(seq.buffered(), 0u);
  // Duplicates of already-released indices are dropped (checkpoint replay
  // overlap), and reset() re-bases after a restore.
  EXPECT_TRUE(seq.push(1, "stale").empty());
  EXPECT_EQ(seq.next_index(), 4u);
  seq.reset(7);
  EXPECT_EQ(seq.next_index(), 7u);
  ASSERT_EQ(seq.push(7, "h").size(), 1u);
}

struct StreamRun {
  std::vector<std::string> windows;  ///< rendered with metric deltas
  std::string history;
};

/// Runs the full record stream through a fresh pipeline + driver pair and
/// returns the rendered windows + telemetry history.  `jobs_threads` < 0
/// selects sync mode; >= 0 selects async mode with that many job-system
/// workers (0 = everything runs inline at the quiesce barriers).
StreamRun run_stream(const std::vector<QueryRecord>& records,
                     analysis::StreamingConfig sc, int jobs_threads) {
  Dbs dbs;
  const CategoryResolver resolver;
  analysis::WindowedPipelineConfig pc = pipeline_config();
  sc.async_windows = jobs_threads >= 0;
  if (sc.async_windows) {
    pc.jobs = std::make_shared<util::JobSystem>(util::JobSystemConfig{
        .threads = static_cast<std::size_t>(jobs_threads), .metric_prefix = {}});
  }
  analysis::WindowedPipeline pipeline(pc, dbs.as_db, dbs.geo_db, resolver);
  pipeline.set_labels(make_labels());
  analysis::StreamingWindowDriver driver(sc, pipeline, dbs.as_db, dbs.geo_db, resolver);
  for (const QueryRecord& r : records) driver.offer(r);
  driver.flush();
  return StreamRun{render_all(pipeline, /*with_metrics=*/true), driver.history_json()};
}

TEST(AsyncWindows, TumblingMatchesSyncByteIdentically) {
  // The byte-identity contract of --async-windows: rendered windows
  // (features, classes, deterministic metric deltas) and the HISTORY ring
  // must equal the sync run's bytes for every worker count.
  std::vector<QueryRecord> records;
  for (const std::int64_t w : {0, 1, 3}) append_block(records, w * 600);
  analysis::StreamingConfig sc;
  sc.window = SimTime::seconds(600);

  const StreamRun expect = run_stream(records, sc, /*jobs_threads=*/-1);
  ASSERT_EQ(expect.windows.size(), 4u);
  for (const int threads : {0, 1, 2, 4}) {
    const StreamRun got = run_stream(records, sc, threads);
    ASSERT_EQ(got.windows.size(), expect.windows.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < expect.windows.size(); ++i) {
      EXPECT_EQ(got.windows[i], expect.windows[i])
          << "window " << i << " diverged from sync at jobs threads=" << threads;
    }
    EXPECT_EQ(got.history, expect.history)
        << "HISTORY diverged from sync at jobs threads=" << threads;
  }
}

TEST(AsyncWindows, HoppingMatchesSyncByteIdentically) {
  // Overlapping windows close in bursts (several ends can pass in one
  // offer), so multiple close jobs queue up back-to-back — the serial
  // close queue must still reproduce the sync bytes.
  std::vector<QueryRecord> records;
  for (const std::int64_t w : {0, 1, 3}) append_block(records, w * 600);
  analysis::StreamingConfig sc;
  sc.window = SimTime::seconds(600);
  sc.hop = SimTime::seconds(300);

  const StreamRun expect = run_stream(records, sc, /*jobs_threads=*/-1);
  ASSERT_EQ(expect.windows.size(), 7u);
  for (const int threads : {1, 2, 4}) {
    const StreamRun got = run_stream(records, sc, threads);
    ASSERT_EQ(got.windows.size(), expect.windows.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < expect.windows.size(); ++i) {
      EXPECT_EQ(got.windows[i], expect.windows[i])
          << "window " << i << " diverged from sync at jobs threads=" << threads;
    }
    EXPECT_EQ(got.history, expect.history)
        << "HISTORY diverged from sync at jobs threads=" << threads;
  }
}

TEST(AsyncWindows, MidCloseCheckpointContinuesInEitherMode) {
  // CHECKPOINT while an async close is in flight: save() quiesces, so the
  // snapshot is slot-exact, and the checkpoint restores into EITHER mode
  // (async_windows is an execution strategy, not part of the stream's
  // identity) with byte-identical continuation.
  Dbs dbs;
  const CategoryResolver resolver;
  analysis::StreamingConfig sc;
  sc.window = SimTime::seconds(600);

  std::vector<QueryRecord> records;
  for (const std::int64_t w : {0, 1, 2, 3}) append_block(records, w * 600);
  // Split right after the offer that seals window 1: its close job is
  // still in flight (or queued) when save() runs.
  std::size_t split = 0;
  while (split < records.size() && records[split].time.secs() < 1200) ++split;
  ++split;  // include the boundary-crossing record itself
  ASSERT_LT(split, records.size());

  const StreamRun expect = run_stream(records, sc, /*jobs_threads=*/-1);
  ASSERT_EQ(expect.windows.size(), 4u);

  // Async run, killed right behind the window-1 boundary.
  std::string checkpoint;
  std::vector<std::string> prefix;
  {
    analysis::WindowedPipelineConfig pc = pipeline_config();
    pc.jobs = std::make_shared<util::JobSystem>(
        util::JobSystemConfig{.threads = 2, .metric_prefix = {}});
    analysis::StreamingConfig async_sc = sc;
    async_sc.async_windows = true;
    analysis::WindowedPipeline pipeline(pc, dbs.as_db, dbs.geo_db, resolver);
    pipeline.set_labels(make_labels());
    analysis::StreamingWindowDriver driver(async_sc, pipeline, dbs.as_db, dbs.geo_db,
                                           resolver);
    for (std::size_t i = 0; i < split; ++i) driver.offer(records[i]);
    EXPECT_EQ(driver.windows_closed(), 2u);
    std::stringstream out;
    ASSERT_TRUE(driver.save(out));
    checkpoint = out.str();
    prefix = render_all(pipeline, /*with_metrics=*/true);
  }
  ASSERT_EQ(prefix.size(), 2u);

  // Continue the stream in each mode from the same checkpoint bytes.
  for (const bool resume_async : {false, true}) {
    analysis::WindowedPipelineConfig pc = pipeline_config();
    analysis::StreamingConfig resume_sc = sc;
    resume_sc.async_windows = resume_async;
    if (resume_async) {
      pc.jobs = std::make_shared<util::JobSystem>(
          util::JobSystemConfig{.threads = 2, .metric_prefix = {}});
    }
    analysis::WindowedPipeline pipeline(pc, dbs.as_db, dbs.geo_db, resolver);
    pipeline.set_labels(make_labels());
    analysis::StreamingWindowDriver driver(resume_sc, pipeline, dbs.as_db, dbs.geo_db,
                                           resolver);
    std::istringstream in(checkpoint);
    ASSERT_TRUE(driver.restore(in)) << "resume_async=" << resume_async;
    EXPECT_EQ(driver.windows_closed(), 2u);
    for (std::size_t i = split; i < records.size(); ++i) driver.offer(records[i]);
    driver.flush();

    std::vector<std::string> got = prefix;
    for (std::string& s : render_all(pipeline, /*with_metrics=*/true)) {
      got.push_back(std::move(s));
    }
    ASSERT_EQ(got.size(), expect.windows.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], expect.windows[i])
          << "window " << i << " diverged (resume_async=" << resume_async << ")";
    }
    EXPECT_EQ(driver.history_json(), expect.history)
        << "resume_async=" << resume_async;
  }
}

TEST(AsyncWindows, CloseErrorSurfacesAtQuiesceNotInOffer) {
  // An error thrown by close-side work must not crash the drive thread
  // mid-offer; it surfaces at the next barrier and the driver stays
  // usable afterwards.
  Dbs dbs;
  const CategoryResolver resolver;
  analysis::WindowedPipelineConfig pc = pipeline_config();
  pc.jobs = std::make_shared<util::JobSystem>(
      util::JobSystemConfig{.threads = 1, .metric_prefix = {}});
  analysis::StreamingConfig sc;
  sc.window = SimTime::seconds(100);
  sc.async_windows = true;
  analysis::WindowedPipeline pipeline(pc, dbs.as_db, dbs.geo_db, resolver);
  analysis::StreamingWindowDriver driver(sc, pipeline, dbs.as_db, dbs.geo_db, resolver);
  bool fail_once = true;
  driver.set_window_close_callback(
      [&fail_once](const analysis::WindowResult&, const labeling::WindowObservation&) {
        if (fail_once) {
          fail_once = false;
          throw std::runtime_error("close callback failure");
        }
      });
  driver.offer(rec(10, addr(10, 0, 0, 1), addr(192, 0, 2, 0)));
  driver.offer(rec(150, addr(10, 0, 0, 2), addr(192, 0, 2, 0)));  // seals window 0
  EXPECT_THROW(driver.quiesce(), std::runtime_error);
  driver.offer(rec(250, addr(10, 0, 0, 3), addr(192, 0, 2, 0)));  // seals window 1
  driver.flush();  // second close succeeds; error slot was consumed
  EXPECT_EQ(driver.windows_closed(), 3u);
}

// ---- component state roundtrips ----------------------------------------

TEST(StateRoundtrip, DeduplicatorContinuesIdentically) {
  core::Deduplicator a(SimTime::seconds(30));
  for (int i = 0; i < 40; ++i) {
    a.admit(rec(i * 3, addr(10, 0, 0, i % 5), addr(192, 0, 2, i % 7)));
  }
  std::stringstream state;
  util::BinaryWriter writer(state);
  a.save(writer);
  ASSERT_TRUE(writer.ok());

  core::Deduplicator b(SimTime::seconds(30));
  util::BinaryReader reader(state);
  ASSERT_TRUE(b.load(reader));
  EXPECT_EQ(a.admitted(), b.admitted());
  EXPECT_EQ(a.suppressed(), b.suppressed());
  for (int i = 40; i < 90; ++i) {
    const QueryRecord r = rec(i * 2, addr(10, 0, 0, i % 6), addr(192, 0, 2, i % 7));
    EXPECT_EQ(a.admit(r), b.admit(r)) << "record " << i;
  }
  EXPECT_EQ(a.admitted(), b.admitted());
  EXPECT_EQ(a.suppressed(), b.suppressed());
  EXPECT_EQ(a.state_size(), b.state_size());
}

TEST(StateRoundtrip, AggregatorContinuesIdentically) {
  core::OriginatorAggregator a;
  for (int i = 0; i < 60; ++i) {
    a.add(rec(i * 11, addr(10, 0, 0, i % 9), addr(192, 0, 2, i % 4)));
  }
  std::stringstream state;
  util::BinaryWriter writer(state);
  a.save(writer);
  ASSERT_TRUE(writer.ok());

  core::OriginatorAggregator b;
  util::BinaryReader reader(state);
  ASSERT_TRUE(b.load(reader));
  for (int i = 60; i < 100; ++i) {
    const QueryRecord r = rec(i * 11, addr(10, 0, 0, i % 9), addr(192, 0, 2, i % 4));
    a.add(r);
    b.add(r);
  }
  EXPECT_EQ(a.originator_count(), b.originator_count());
  EXPECT_EQ(a.total_periods(), b.total_periods());
  const auto tops_a = a.select_interesting(10, 0);
  const auto tops_b = b.select_interesting(10, 0);
  ASSERT_EQ(tops_a.size(), tops_b.size());
  for (std::size_t i = 0; i < tops_a.size(); ++i) {
    EXPECT_EQ(tops_a[i]->originator, tops_b[i]->originator);
    EXPECT_EQ(tops_a[i]->unique_queriers(), tops_b[i]->unique_queriers());
    EXPECT_EQ(tops_a[i]->total_queries, tops_b[i]->total_queries);
    EXPECT_EQ(tops_a[i]->periods.size(), tops_b[i]->periods.size());
  }
}

// ---- full daemon over loopback sockets ---------------------------------

void append_be16(std::vector<std::uint8_t>& out, std::size_t v) {
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
}

/// Stamped payload: [8B LE seconds][4B LE querier IPv4][DNS message].
std::vector<std::uint8_t> stamped_payload(std::int64_t secs, IPv4Addr querier,
                                          const std::vector<std::uint8_t>& message) {
  std::vector<std::uint8_t> out;
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>((static_cast<std::uint64_t>(secs) >> (8 * i)) &
                                            0xff));
  }
  const std::uint32_t q = querier.value();
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>((q >> (8 * i)) & 0xff));
  out.insert(out.end(), message.begin(), message.end());
  return out;
}

TEST(ServeDaemon, LoopbackIntakeControlAndCheckpoint) {
  Dbs dbs;
  const CategoryResolver resolver;
  const std::string dir = ::testing::TempDir();
  const std::string windows_out = dir + "serve_windows.txt";
  const std::string checkpoint = dir + "serve_checkpoint.bin";
  std::remove(windows_out.c_str());
  std::remove(checkpoint.c_str());

  serve::ServeConfig cfg;
  cfg.tcp = true;
  cfg.stamped = true;
  cfg.streaming.window = SimTime::seconds(100);
  cfg.pipeline = pipeline_config();
  cfg.pipeline.sensor.min_queriers = 3;
  cfg.checkpoint_path = checkpoint;
  cfg.windows_out = windows_out;

  serve::ServeDaemon daemon(cfg, dbs.as_db, dbs.geo_db, resolver);
  std::string error;
  ASSERT_TRUE(daemon.start(error)) << error;
  ASSERT_NE(daemon.udp_port(), 0);
  ASSERT_NE(daemon.tcp_port(), 0);
  ASSERT_NE(daemon.status_port(), 0);

  // Replay three windows of stamped traffic over TCP (lossless framing).
  std::uint64_t sent = 0;
  {
    auto stream = net::TcpStream::connect("127.0.0.1", daemon.tcp_port());
    ASSERT_TRUE(stream.has_value());
    std::vector<std::uint8_t> wire;
    for (int w = 0; w < 3; ++w) {
      for (int o = 0; o < 3; ++o) {
        for (int q = 0; q < 4; ++q) {
          const auto message = dns::make_ptr_query_packet(
              static_cast<std::uint16_t>(sent & 0xffff), addr(192, 0, 2, o));
          const auto payload =
              stamped_payload(w * 100 + q, addr(10, 0, q, o), message);
          wire.clear();
          append_be16(wire, payload.size());
          wire.insert(wire.end(), payload.begin(), payload.end());
          ASSERT_TRUE(stream->write_all(wire.data(), wire.size()));
          ++sent;
        }
      }
    }
    // Mutated junk with a valid stamp: must be counted, never crash, and
    // never corrupt the partition invariant (fuzz suite covers the
    // decoder; this exercises the live socket path).
    util::ByteMutator mutator(2026);
    for (int i = 0; i < 16; ++i) {
      auto message = dns::make_ptr_query_packet(9999, addr(192, 0, 2, 9));
      mutator.mutate_n(message, 3);
      auto payload = stamped_payload(250 + i % 3, addr(10, 0, 9, 9), message);
      if (payload.size() > 0xffff) payload.resize(0xffff);
      wire.clear();
      append_be16(wire, payload.size());
      wire.insert(wire.end(), payload.begin(), payload.end());
      ASSERT_TRUE(stream->write_all(wire.data(), wire.size()));
    }
  }  // intake connection closes -> FLUSH can quiesce immediately

  // UDP junk: a stampless runt (bad_stamp) — lossy transport, so nothing
  // downstream asserts on its arrival.
  {
    net::UdpSocket udp;
    const std::uint8_t runt[3] = {1, 2, 3};
    udp.send_to("127.0.0.1", daemon.udp_port(), runt, sizeof(runt));
  }

  auto control = net::TcpStream::connect("127.0.0.1", daemon.status_port());
  ASSERT_TRUE(control.has_value());
  const auto command = [&control](const std::string& cmd) -> std::string {
    const std::string line = cmd + "\n";
    EXPECT_TRUE(control->write_all(line.data(), line.size()));
    auto reply = control->read_line(30000, std::size_t{1} << 20);  // STATS is long
    EXPECT_TRUE(reply.has_value()) << cmd;
    return reply.value_or("");
  };

  EXPECT_EQ(command("PING"), "PONG");
  const std::string stats = command("STATS");
  EXPECT_NE(stats.find("\"stream_time\""), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"capture\""), std::string::npos) << stats;
  EXPECT_EQ(command("BOGUS"), "ERR unknown command: BOGUS");

  EXPECT_EQ(command("FLUSH"), "OK flushed");
  const std::string after = command("STATS");
  EXPECT_NE(after.find("\"windows_closed\":3"), std::string::npos) << after;

  EXPECT_EQ(command("CHECKPOINT"), "OK " + checkpoint);
  EXPECT_EQ(command("SHUTDOWN"), "OK shutting down");
  daemon.wait();

  EXPECT_EQ(daemon.driver()->windows_closed(), 3u);
  EXPECT_EQ(daemon.driver()->late_records(), 0u);

  std::ifstream summaries(windows_out);
  ASSERT_TRUE(summaries.good());
  std::size_t window_blocks = 0, end_blocks = 0;
  for (std::string line; std::getline(summaries, line);) {
    if (line.rfind("window ", 0) == 0) ++window_blocks;
    if (line == "end") ++end_blocks;
  }
  EXPECT_EQ(window_blocks, 3u);
  EXPECT_EQ(end_blocks, 3u);

  std::ifstream saved(checkpoint, std::ios::binary);
  ASSERT_TRUE(saved.good());
  saved.seekg(0, std::ios::end);
  EXPECT_GT(saved.tellg(), 8) << "checkpoint file should hold real state";
}

TEST(ServeDaemon, RestoreFromCheckpointResumesNumbering) {
  Dbs dbs;
  const CategoryResolver resolver;
  const std::string dir = ::testing::TempDir();
  const std::string checkpoint = dir + "serve_resume.bin";
  std::remove(checkpoint.c_str());

  serve::ServeConfig cfg;
  cfg.tcp = true;
  cfg.stamped = true;
  cfg.streaming.window = SimTime::seconds(100);
  cfg.pipeline = pipeline_config();
  cfg.pipeline.sensor.min_queriers = 3;
  cfg.checkpoint_path = checkpoint;

  const auto send_window = [&](std::uint16_t port, int w) {
    auto stream = net::TcpStream::connect("127.0.0.1", port);
    ASSERT_TRUE(stream.has_value());
    std::vector<std::uint8_t> wire;
    for (int o = 0; o < 3; ++o) {
      for (int q = 0; q < 4; ++q) {
        const auto message = dns::make_ptr_query_packet(
            static_cast<std::uint16_t>((w * 16 + q) & 0xffff), addr(192, 0, 2, o));
        const auto payload = stamped_payload(w * 100 + q, addr(10, 0, q, o), message);
        wire.clear();
        append_be16(wire, payload.size());
        wire.insert(wire.end(), payload.begin(), payload.end());
        ASSERT_TRUE(stream->write_all(wire.data(), wire.size()));
      }
    }
  };

  {
    serve::ServeDaemon daemon(cfg, dbs.as_db, dbs.geo_db, resolver);
    std::string error;
    ASSERT_TRUE(daemon.start(error)) << error;
    send_window(daemon.tcp_port(), 0);
    send_window(daemon.tcp_port(), 1);
    auto control = net::TcpStream::connect("127.0.0.1", daemon.status_port());
    ASSERT_TRUE(control.has_value());
    std::string line = "CHECKPOINT\n";
    ASSERT_TRUE(control->write_all(line.data(), line.size()));
    auto reply = control->read_line(30000);
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(*reply, "OK " + checkpoint);
    line = "SHUTDOWN\n";
    ASSERT_TRUE(control->write_all(line.data(), line.size()));
    control->read_line(30000);
    daemon.wait();
    // Stream reached t=101..104 -> window 0 closed, window 1 still open.
    EXPECT_EQ(daemon.driver()->windows_closed(), 1u);
  }

  serve::ServeConfig resumed = cfg;
  resumed.restore = true;
  serve::ServeDaemon daemon(resumed, dbs.as_db, dbs.geo_db, resolver);
  std::string error;
  ASSERT_TRUE(daemon.start(error)) << error;
  EXPECT_EQ(daemon.driver()->windows_closed(), 1u);
  EXPECT_EQ(daemon.driver()->open_windows(), 1u);
  send_window(daemon.tcp_port(), 2);
  auto control = net::TcpStream::connect("127.0.0.1", daemon.status_port());
  ASSERT_TRUE(control.has_value());
  std::string line = "FLUSH\n";
  ASSERT_TRUE(control->write_all(line.data(), line.size()));
  auto reply = control->read_line(30000);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(*reply, "OK flushed");
  line = "SHUTDOWN\n";
  ASSERT_TRUE(control->write_all(line.data(), line.size()));
  control->read_line(30000);
  daemon.wait();
  EXPECT_EQ(daemon.driver()->windows_closed(), 3u);
  EXPECT_EQ(daemon.pipeline()->results().back().index, 2u)
      << "window numbering must continue across the restart";
}

TEST(ServeDaemon, AsyncLoopbackSummariesMatchSyncByteForByte) {
  // Full-daemon variant of the oracle: the same stamped replay through
  // --async-windows on and off must leave byte-identical --windows-out
  // files, and STATS must report the job-system queues.
  Dbs dbs;
  const CategoryResolver resolver;
  const std::string dir = ::testing::TempDir();

  const auto run_daemon = [&](bool async, const std::string& windows_out,
                              std::string& stats_out) {
    std::remove(windows_out.c_str());
    serve::ServeConfig cfg;
    cfg.tcp = true;
    cfg.stamped = true;
    cfg.streaming.window = SimTime::seconds(100);
    cfg.streaming.async_windows = async;
    cfg.pipeline = pipeline_config();
    cfg.pipeline.sensor.min_queriers = 3;
    cfg.windows_out = windows_out;

    serve::ServeDaemon daemon(cfg, dbs.as_db, dbs.geo_db, resolver);
    std::string error;
    ASSERT_TRUE(daemon.start(error)) << error;
    {
      auto stream = net::TcpStream::connect("127.0.0.1", daemon.tcp_port());
      ASSERT_TRUE(stream.has_value());
      std::vector<std::uint8_t> wire;
      for (int w = 0; w < 3; ++w) {
        for (int o = 0; o < 3; ++o) {
          for (int q = 0; q < 4; ++q) {
            const auto message = dns::make_ptr_query_packet(
                static_cast<std::uint16_t>((w * 16 + q) & 0xffff), addr(192, 0, 2, o));
            const auto payload = stamped_payload(w * 100 + q, addr(10, 0, q, o), message);
            wire.clear();
            append_be16(wire, payload.size());
            wire.insert(wire.end(), payload.begin(), payload.end());
            ASSERT_TRUE(stream->write_all(wire.data(), wire.size()));
          }
        }
      }
    }
    auto control = net::TcpStream::connect("127.0.0.1", daemon.status_port());
    ASSERT_TRUE(control.has_value());
    const auto command = [&control](const std::string& cmd) -> std::string {
      const std::string line = cmd + "\n";
      EXPECT_TRUE(control->write_all(line.data(), line.size()));
      auto reply = control->read_line(30000, std::size_t{1} << 20);
      EXPECT_TRUE(reply.has_value()) << cmd;
      return reply.value_or("");
    };
    EXPECT_EQ(command("FLUSH"), "OK flushed");
    stats_out = command("STATS");
    EXPECT_EQ(command("SHUTDOWN"), "OK shutting down");
    daemon.wait();
    EXPECT_EQ(daemon.driver()->windows_closed(), 3u);
  };

  const std::string sync_out = dir + "serve_windows_sync.txt";
  const std::string async_out = dir + "serve_windows_async.txt";
  std::string sync_stats;
  std::string async_stats;
  run_daemon(/*async=*/false, sync_out, sync_stats);
  run_daemon(/*async=*/true, async_out, async_stats);

  const auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  };
  const std::string sync_bytes = slurp(sync_out);
  const std::string async_bytes = slurp(async_out);
  EXPECT_FALSE(sync_bytes.empty());
  EXPECT_EQ(async_bytes, sync_bytes)
      << "--windows-out must be byte-identical across --async-windows modes";

  // STATS reports every registered queue; "close" only exists in async.
  for (const std::string* stats : {&sync_stats, &async_stats}) {
    EXPECT_NE(stats->find("\"jobs\":["), std::string::npos) << *stats;
    EXPECT_NE(stats->find("\"queue\":\"export\""), std::string::npos) << *stats;
    EXPECT_NE(stats->find("\"queue\":\"train\""), std::string::npos) << *stats;
  }
  EXPECT_EQ(sync_stats.find("\"queue\":\"close\""), std::string::npos) << sync_stats;
  EXPECT_NE(async_stats.find("\"queue\":\"close\""), std::string::npos) << async_stats;
#if DNSBS_METRICS_ENABLED
  EXPECT_NE(async_stats.find("dnsbs.serve.jobs.close.completed"), std::string::npos)
      << "job queue metrics should ride the registry";
#endif
}

// ---- HTTP scrape surface + HISTORY/TRACE verbs -------------------------

struct HttpResponse {
  std::string status_line;
  std::vector<std::string> headers;
  std::string body;
};

/// One-shot HTTP/1.1 GET (or other method) against the status socket.
std::optional<HttpResponse> http_request(std::uint16_t port, const std::string& method,
                                         const std::string& target) {
  auto stream = net::TcpStream::connect("127.0.0.1", port);
  if (!stream.has_value()) return std::nullopt;
  const std::string request =
      method + " " + target + " HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n";
  if (!stream->write_all(request.data(), request.size())) return std::nullopt;

  HttpResponse response;
  auto status = stream->read_line(30000);
  if (!status.has_value()) return std::nullopt;
  response.status_line = *status;
  std::size_t content_length = 0;
  for (;;) {
    auto header = stream->read_line(30000, std::size_t{1} << 20);
    if (!header.has_value()) return std::nullopt;
    if (header->empty()) break;
    response.headers.push_back(*header);
    const std::string lowered = util::to_lower(*header);
    if (lowered.rfind("content-length:", 0) == 0) {
      std::uint64_t n = 0;
      if (!util::parse_u64(util::trim(lowered.substr(15)), n, nullptr))
        return std::nullopt;
      content_length = static_cast<std::size_t>(n);
    }
  }
  response.body.resize(content_length);
  if (content_length > 0 &&
      !stream->read_exact(response.body.data(), content_length, 30000)) {
    return std::nullopt;
  }
  return response;
}

bool has_header(const HttpResponse& response, const std::string& needle) {
  for (const std::string& header : response.headers) {
    if (util::to_lower(header).find(util::to_lower(needle)) != std::string::npos)
      return true;
  }
  return false;
}

TEST(ServeDaemon, HttpScrapeHistoryAndTrace) {
  Dbs dbs;
  const CategoryResolver resolver;
  const std::string dir = ::testing::TempDir();
  const std::string trace_out = dir + "serve_trace.json";
  std::remove(trace_out.c_str());

  serve::ServeConfig cfg;
  cfg.tcp = true;
  cfg.stamped = true;
  cfg.streaming.window = SimTime::seconds(100);
  cfg.pipeline = pipeline_config();
  cfg.pipeline.sensor.min_queriers = 3;
  cfg.trace_out = trace_out;

  serve::ServeDaemon daemon(cfg, dbs.as_db, dbs.geo_db, resolver);
  std::string error;
  ASSERT_TRUE(daemon.start(error)) << error;

  // One command per connection, like `dnsbs_cli ctl`: the status loop is
  // serial and reclaims idle connections, so don't hold one across the
  // HTTP requests below.
  const auto command = [&daemon](const std::string& cmd) -> std::string {
    auto control = net::TcpStream::connect("127.0.0.1", daemon.status_port());
    EXPECT_TRUE(control.has_value()) << cmd;
    if (!control.has_value()) return "";
    const std::string line = cmd + "\n";
    EXPECT_TRUE(control->write_all(line.data(), line.size()));
    auto reply = control->read_line(30000, std::size_t{1} << 20);
    EXPECT_TRUE(reply.has_value()) << cmd;
    return reply.value_or("");
  };
  // Start a long trace first so the ingest spans below land in it; the
  // daemon dumps the capture on shutdown even if the deadline is not hit.
  EXPECT_EQ(command("TRACE 30"),
            "OK tracing 30s -> " + trace_out);
  EXPECT_EQ(command("TRACE 0"), "ERR bad TRACE seconds (want 1..3600): 0");
  EXPECT_EQ(command("TRACE abc"), "ERR bad TRACE seconds (want 1..3600): abc");

  // Two windows of stamped traffic over TCP.
  {
    auto stream = net::TcpStream::connect("127.0.0.1", daemon.tcp_port());
    ASSERT_TRUE(stream.has_value());
    std::vector<std::uint8_t> wire;
    for (int w = 0; w < 3; ++w) {
      for (int o = 0; o < 3; ++o) {
        for (int q = 0; q < 4; ++q) {
          const auto message = dns::make_ptr_query_packet(
              static_cast<std::uint16_t>((w * 16 + q) & 0xffff), addr(192, 0, 2, o));
          const auto payload = stamped_payload(w * 100 + q, addr(10, 0, q, o), message);
          wire.clear();
          append_be16(wire, payload.size());
          wire.insert(wire.end(), payload.begin(), payload.end());
          ASSERT_TRUE(stream->write_all(wire.data(), wire.size()));
        }
      }
    }
  }
  EXPECT_EQ(command("FLUSH"), "OK flushed");

  // Line-protocol telemetry verbs.
  const std::string stats = command("STATS");
  EXPECT_NE(stats.find("\"history_windows\":3"), std::string::npos) << stats;
  const std::string history = command("HISTORY");
  EXPECT_EQ(history.rfind("{\"count\":3,", 0), 0u) << history;
  EXPECT_NE(history.find("\"sched\":{\"queue_depth_peak\":"), std::string::npos);
  EXPECT_EQ(command("HISTORY 1").rfind("{\"count\":1,", 0), 0u);
  EXPECT_EQ(command("HISTORY nope"), "ERR bad HISTORY count: nope");

  // HTTP endpoints share the same socket; each GET is a fresh one-shot
  // connection while the line-protocol stream above stays usable.
  const auto healthz = http_request(daemon.status_port(), "GET", "/healthz");
  ASSERT_TRUE(healthz.has_value());
  EXPECT_EQ(healthz->status_line, "HTTP/1.1 200 OK");
  EXPECT_TRUE(has_header(*healthz, "content-length: 3"));
  EXPECT_EQ(healthz->body, "ok\n");

  const auto metrics = http_request(daemon.status_port(), "GET", "/metrics");
  ASSERT_TRUE(metrics.has_value());
  EXPECT_EQ(metrics->status_line, "HTTP/1.1 200 OK");
  EXPECT_TRUE(has_header(*metrics, "text/plain; version=0.0.4"));
#if DNSBS_METRICS_ENABLED
  EXPECT_NE(metrics->body.find("# TYPE"), std::string::npos);
  EXPECT_NE(metrics->body.find("dnsbs_sensor_records"), std::string::npos);
  EXPECT_NE(metrics->body.find("# SCHED"), std::string::npos)
      << "sched series must stay strippable in the scrape output";
#endif

  const auto windows = http_request(daemon.status_port(), "GET", "/windows?n=1");
  ASSERT_TRUE(windows.has_value());
  EXPECT_EQ(windows->status_line, "HTTP/1.1 200 OK");
  EXPECT_TRUE(has_header(*windows, "application/json"));
  EXPECT_EQ(windows->body.rfind("{\"count\":1,", 0), 0u) << windows->body;
  EXPECT_EQ(windows->body.back(), '\n');

  const auto missing = http_request(daemon.status_port(), "GET", "/nope");
  ASSERT_TRUE(missing.has_value());
  EXPECT_EQ(missing->status_line, "HTTP/1.1 404 Not Found");
  const auto post = http_request(daemon.status_port(), "POST", "/metrics");
  ASSERT_TRUE(post.has_value());
  EXPECT_EQ(post->status_line, "HTTP/1.1 405 Method Not Allowed");

  EXPECT_EQ(command("SHUTDOWN"), "OK shutting down");
  daemon.wait();

  // The in-flight trace is finished on drive-loop exit: the file must be a
  // structurally valid Chrome trace with balanced B/E pairs.
  std::ifstream trace(trace_out);
  ASSERT_TRUE(trace.good()) << trace_out;
  std::string json((std::istreambuf_iterator<char>(trace)),
                   std::istreambuf_iterator<char>());
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  const auto count_all = [&json](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t at = json.find(needle); at != std::string::npos;
         at = json.find(needle, at + needle.size()))
      ++n;
    return n;
  };
  EXPECT_EQ(count_all("\"ph\":\"B\""), count_all("\"ph\":\"E\""));
#if DNSBS_METRICS_ENABLED
  EXPECT_GT(count_all("\"ph\":\"B\""), 0u) << "pipeline spans should have been captured";
  EXPECT_NE(json.find("\"name\":\"pipeline.window\""), std::string::npos)
      << json.substr(0, 400);
#endif
}

}  // namespace
}  // namespace dnsbs
