// Parameterized/property tests for the ML substrate: training-set-size
// sweeps, config sweeps, and invariants that must hold for any data.
#include <gtest/gtest.h>

#include "ml/cart.hpp"
#include "ml/crossval.hpp"
#include "ml/forest.hpp"
#include "ml/metrics.hpp"
#include "ml/svm.hpp"
#include "util/rng.hpp"

namespace dnsbs::ml {
namespace {

Dataset random_separable(std::size_t per_class, std::size_t classes,
                         std::size_t features, std::uint64_t seed) {
  std::vector<std::string> fnames, cnames;
  for (std::size_t f = 0; f < features; ++f) fnames.push_back("f" + std::to_string(f));
  for (std::size_t c = 0; c < classes; ++c) cnames.push_back("c" + std::to_string(c));
  Dataset d(std::move(fnames), std::move(cnames));
  util::Rng rng(seed);
  for (std::size_t c = 0; c < classes; ++c) {
    for (std::size_t i = 0; i < per_class; ++i) {
      std::vector<double> row(features);
      // Class centre on feature 0, noise elsewhere.
      row[0] = static_cast<double>(c) + rng.normal(0.0, 0.12);
      for (std::size_t f = 1; f < features; ++f) row[f] = rng.uniform();
      d.add(std::move(row), c);
    }
  }
  return d;
}

// Predictions are always valid class indices, whatever the model.
class PredictionRange : public ::testing::TestWithParam<int> {};

TEST_P(PredictionRange, AlwaysWithinClassCount) {
  const Dataset d = random_separable(15, 5, 4, 99);
  std::unique_ptr<Classifier> model;
  switch (GetParam()) {
    case 0: model = std::make_unique<CartTree>(); break;
    case 1: model = std::make_unique<RandomForest>(ForestConfig{.n_trees = 10}); break;
    default: model = std::make_unique<KernelSvm>(); break;
  }
  model->fit(d);
  util::Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    std::vector<double> probe(4);
    for (auto& v : probe) v = rng.uniform(-10.0, 10.0);
    EXPECT_LT(model->predict(probe), d.class_count());
  }
}

std::string model_name(const ::testing::TestParamInfo<int>& info) {
  switch (info.param) {
    case 0: return "CART";
    case 1: return "RF";
    default: return "SVM";
  }
}

INSTANTIATE_TEST_SUITE_P(Models, PredictionRange, ::testing::Values(0, 1, 2),
                         model_name);

// Accuracy grows (weakly) with training data on a fixed noisy problem.
class LearningCurve : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LearningCurve, MoreDataNeverMuchWorse) {
  const Dataset test = random_separable(60, 3, 3, GetParam() ^ 0xaa);
  const auto accuracy_with = [&](std::size_t per_class) {
    const Dataset train = random_separable(per_class, 3, 3, GetParam());
    RandomForest rf(ForestConfig{.n_trees = 30, .seed = GetParam()});
    rf.fit(train);
    std::size_t ok = 0;
    for (std::size_t i = 0; i < test.size(); ++i) {
      ok += rf.predict(test.row(i)) == test.label(i);
    }
    return static_cast<double>(ok) / static_cast<double>(test.size());
  };
  const double small = accuracy_with(4);
  const double big = accuracy_with(80);
  EXPECT_GE(big + 0.05, small);
  EXPECT_GT(big, 0.85);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LearningCurve, ::testing::Values(7u, 8u, 9u));

// Metrics invariants over random confusion matrices.
class MetricsProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MetricsProperty, AllMetricsInUnitIntervalAndF1BetweenPandR) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t classes = 2 + rng.below(10);
    ConfusionMatrix cm(classes);
    const std::size_t entries = 1 + rng.below(300);
    for (std::size_t e = 0; e < entries; ++e) {
      cm.add(rng.below(classes), rng.below(classes));
    }
    const Metrics m = compute_metrics(cm);
    for (const double v : {m.accuracy, m.precision, m.recall, m.f1}) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0 + 1e-12);
    }
    // Macro-F1 cannot exceed the max of macro precision and recall.
    EXPECT_LE(m.f1, std::max(m.precision, m.recall) + 1e-9);
  }
}

TEST_P(MetricsProperty, PerfectDiagonalScoresOne) {
  util::Rng rng(GetParam() ^ 0x5);
  const std::size_t classes = 2 + rng.below(8);
  ConfusionMatrix cm(classes);
  for (std::size_t c = 0; c < classes; ++c) cm.add(c, c);
  const Metrics m = compute_metrics(cm);
  EXPECT_DOUBLE_EQ(m.accuracy, 1.0);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricsProperty, ::testing::Values(41u, 42u));

// Forest size sweep: prediction quality saturates, never collapses.
class ForestSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ForestSizeSweep, ReasonableAccuracyAtEverySize) {
  const Dataset d = random_separable(40, 3, 3, 1234);
  RandomForest rf(ForestConfig{.n_trees = GetParam(), .seed = 7});
  rf.fit(d);
  std::size_t ok = 0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    ok += rf.predict(d.row(i)) == d.label(i);
  }
  EXPECT_GT(static_cast<double>(ok) / static_cast<double>(d.size()), 0.9);
  EXPECT_EQ(rf.tree_count(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Sizes, ForestSizeSweep,
                         ::testing::Values(1u, 3u, 10u, 50u, 150u));

// SVM C/gamma sweep: all configurations learn the easy problem.
struct SvmCase {
  double C;
  double gamma;
};
class SvmConfigSweep : public ::testing::TestWithParam<SvmCase> {};

TEST_P(SvmConfigSweep, LearnsSeparableData) {
  const Dataset d = random_separable(30, 2, 2, 555);
  SvmConfig cfg;
  cfg.C = GetParam().C;
  cfg.gamma = GetParam().gamma;
  KernelSvm svm(cfg);
  svm.fit(d);
  std::size_t ok = 0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    ok += svm.predict(d.row(i)) == d.label(i);
  }
  EXPECT_GT(static_cast<double>(ok) / static_cast<double>(d.size()), 0.9);
}

INSTANTIATE_TEST_SUITE_P(Configs, SvmConfigSweep,
                         ::testing::Values(SvmCase{0.5, 0.0}, SvmCase{1.0, 0.5},
                                           SvmCase{10.0, 1.0}, SvmCase{100.0, 0.1}));

// Cross-validation: metrics bounded, runs counted, stratification keeps
// every class present in training.
TEST(CrossValProperty, BoundsAndRunCounts) {
  const Dataset d = random_separable(25, 4, 3, 777);
  CrossValConfig cfg;
  cfg.repetitions = 12;
  const MetricSummary s = cross_validate(
      d,
      [](std::uint64_t seed) {
        return std::unique_ptr<Classifier>(
            std::make_unique<RandomForest>(ForestConfig{.n_trees = 15, .seed = seed}));
      },
      cfg);
  EXPECT_EQ(s.runs, 12u);
  EXPECT_GE(s.mean.accuracy, 0.0);
  EXPECT_LE(s.mean.accuracy, 1.0);
  EXPECT_GE(s.stddev.f1, 0.0);
}

}  // namespace
}  // namespace dnsbs::ml
