// ThreadPool / parallel_for / parallel_map semantics: ordered results,
// exception propagation, nested-use handling, shutdown, and the thread
// count knobs.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>

#include "util/parallel.hpp"

namespace dnsbs::util {
namespace {

TEST(ThreadCount, ConfiguredIsAtLeastOne) {
  EXPECT_GE(configured_thread_count(), 1u);
}

TEST(ThreadCount, OverrideAndRestore) {
  set_thread_count(3);
  EXPECT_EQ(configured_thread_count(), 3u);
  set_thread_count(0);
  EXPECT_GE(configured_thread_count(), 1u);
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> hits(1000);
  pool.for_each_index(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, UsesMultipleThreads) {
  ThreadPool pool(4);
  std::mutex mu;
  std::set<std::thread::id> ids;
  pool.for_each_index(256, [&](std::size_t) {
    // Enough work per index that workers overlap; collect who ran.
    std::lock_guard<std::mutex> lock(mu);
    ids.insert(std::this_thread::get_id());
  });
  EXPECT_GE(ids.size(), 2u);
}

TEST(ThreadPool, PropagatesWorkerException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.for_each_index(100,
                          [&](std::size_t i) {
                            if (i == 77) throw std::runtime_error("worker boom");
                          }),
      std::runtime_error);
  // The pool survives a throwing job and runs the next one.
  std::atomic<int> count{0};
  pool.for_each_index(10, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, RethrowsLowestChunkExceptionFirst) {
  ThreadPool pool(4);
  try {
    pool.for_each_index(4, [&](std::size_t i) {
      throw std::runtime_error("chunk " + std::to_string(i));
    });
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chunk 0");
  }
}

TEST(ThreadPool, RejectsNestedUseFromOwnWorker) {
  ThreadPool pool(4);
  std::atomic<int> rejections{0};
  pool.for_each_index(4, [&](std::size_t) {
    try {
      pool.for_each_index(2, [](std::size_t) {});
    } catch (const std::logic_error&) {
      ++rejections;
    }
  });
  // Every chunk — including slot 0, which runs in the submitting thread —
  // must have been rejected rather than deadlocking on the submit lock.
  EXPECT_EQ(rejections.load(), 4);
}

TEST(ThreadPool, ZeroItemsIsANoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.for_each_index(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelFor, NestedCallDegradesToSerial) {
  std::atomic<int> inner_total{0};
  parallel_for(
      8,
      [&](std::size_t) {
        EXPECT_TRUE(in_parallel_region());
        // Nested parallel_for must run inline instead of deadlocking or
        // throwing: the library composes (parallel crossval reps call
        // parallel RandomForest::fit).
        parallel_for(4, [&](std::size_t) { ++inner_total; }, 4);
      },
      4);
  EXPECT_EQ(inner_total.load(), 32);
  EXPECT_FALSE(in_parallel_region());
}

TEST(ParallelMap, ResultsAreOrderedByIndex) {
  const auto out = parallel_map(
      5000, [](std::size_t i) { return i * i; }, 4);
  ASSERT_EQ(out.size(), 5000u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelMap, SpanOverloadKeepsOrder) {
  std::vector<int> items(257);
  std::iota(items.begin(), items.end(), 1);
  const auto out = parallel_map(
      std::span<const int>(items), [](const int& v) { return v * 2; }, 3);
  ASSERT_EQ(out.size(), items.size());
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], items[i] * 2);
}

TEST(ParallelMap, IdenticalAcrossThreadCounts) {
  const auto reference = parallel_map(
      1000, [](std::size_t i) { return i * 31 + 7; }, 1);
  for (const std::size_t threads : {2, 3, 4, 8}) {
    EXPECT_EQ(parallel_map(
                  1000, [](std::size_t i) { return i * 31 + 7; }, threads),
              reference)
        << "threads=" << threads;
  }
}

TEST(ParallelFor, SerialWhenOneThread) {
  // With one effective thread nothing should leave the calling thread.
  const auto caller = std::this_thread::get_id();
  parallel_for(
      64, [&](std::size_t) { EXPECT_EQ(std::this_thread::get_id(), caller); }, 1);
}

TEST(ThreadPool, ShutdownJoinsCleanly) {
  // Construction + immediate destruction (idle workers) and destruction
  // right after a job must both join without hanging.
  { ThreadPool pool(4); }
  {
    ThreadPool pool(4);
    std::atomic<int> n{0};
    pool.for_each_index(100, [&](std::size_t) { ++n; });
    EXPECT_EQ(n.load(), 100);
  }
}

}  // namespace
}  // namespace dnsbs::util
