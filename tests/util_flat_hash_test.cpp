// Property tests for the open-addressing flat containers: random operation
// sequences checked against a std::unordered_map/set oracle, growth
// boundaries, backward-shift deletion, merge_from, and the layout
// determinism the parallel ingest path relies on.
#include "util/flat_hash.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/rng.hpp"

namespace dnsbs::util {
namespace {

using Map = FlatMap<std::uint64_t, std::uint64_t>;
using Oracle = std::unordered_map<std::uint64_t, std::uint64_t>;

void expect_matches_oracle(const Map& map, const Oracle& oracle) {
  ASSERT_EQ(map.size(), oracle.size());
  // Every oracle entry is findable with the right value...
  for (const auto& [k, v] : oracle) {
    const auto* slot = map.find(k);
    ASSERT_NE(slot, nullptr) << "missing key " << k;
    EXPECT_EQ(slot->second, v) << "key " << k;
    EXPECT_TRUE(map.contains(k));
    EXPECT_EQ(map.at(k), v);
  }
  // ...and iteration yields exactly the oracle's entries (no ghosts).
  std::size_t seen = 0;
  for (const auto& kv : map) {
    const auto it = oracle.find(kv.first);
    ASSERT_NE(it, oracle.end()) << "ghost key " << kv.first;
    EXPECT_EQ(kv.second, it->second);
    ++seen;
  }
  EXPECT_EQ(seen, oracle.size());
}

TEST(FlatMap, RandomOpsMatchUnorderedMapOracle) {
  for (const std::uint64_t seed : {1ULL, 42ULL, 20150101ULL}) {
    Rng rng(seed);
    Map map;
    Oracle oracle;
    // Small key universe forces frequent hits, erases of present keys, and
    // repeated growth/shrink churn around the same slots.
    const std::uint64_t universe = 257;
    for (int op = 0; op < 20000; ++op) {
      const std::uint64_t key = rng.next() % universe;
      switch (rng.next() % 4) {
        case 0: {  // operator[] upsert
          const std::uint64_t value = rng.next();
          map[key] = value;
          oracle[key] = value;
          break;
        }
        case 1: {  // try_emplace (insert-if-absent)
          const std::uint64_t value = rng.next();
          const auto [slot, inserted] = map.try_emplace(key, value);
          const auto [it, oracle_inserted] = oracle.try_emplace(key, value);
          EXPECT_EQ(inserted, oracle_inserted);
          EXPECT_EQ(slot->second, it->second);
          break;
        }
        case 2: {  // erase
          EXPECT_EQ(map.erase(key), oracle.erase(key) == 1);
          break;
        }
        case 3: {  // lookup of a (maybe absent) key
          const auto* slot = map.find(key);
          const auto it = oracle.find(key);
          ASSERT_EQ(slot != nullptr, it != oracle.end());
          if (slot != nullptr) EXPECT_EQ(slot->second, it->second);
          break;
        }
      }
    }
    expect_matches_oracle(map, oracle);
  }
}

TEST(FlatMap, GrowthBoundariesKeepAllEntries) {
  // Walk straight through several doublings (16 -> 32 -> ... -> 4096 slots)
  // and verify around each 3/4-load boundary.
  Map map;
  Oracle oracle;
  for (std::uint64_t i = 0; i < 3000; ++i) {
    map[i * 0x9e3779b9ULL] = i;
    oracle[i * 0x9e3779b9ULL] = i;
    const bool near_boundary =
        map.capacity() != 0 && (map.size() + 2) * 4 >= map.capacity() * 3;
    if (near_boundary || (i % 512) == 0) expect_matches_oracle(map, oracle);
  }
  expect_matches_oracle(map, oracle);
}

TEST(FlatMap, ReserveAvoidsRehashAndKeepsSemantics) {
  Map map;
  map.reserve(1000);
  const std::size_t cap = map.capacity();
  EXPECT_GE(cap, 1024u);
  for (std::uint64_t i = 0; i < 1000; ++i) map[i] = i * 3;
  EXPECT_EQ(map.capacity(), cap) << "reserve(1000) must absorb 1000 inserts";
  for (std::uint64_t i = 0; i < 1000; ++i) EXPECT_EQ(map.at(i), i * 3);
}

TEST(FlatMap, EraseAllViaBackwardShiftLeavesEmptyMap) {
  Rng rng(7);
  Map map;
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t key = rng.next();
    if (map.try_emplace(key, key).second) keys.push_back(key);
  }
  // Erase in a different order than insertion to exercise gap-closing
  // across probe chains.
  for (std::size_t i = 0; i < keys.size(); i += 2) EXPECT_TRUE(map.erase(keys[i]));
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(map.contains(keys[i]), i % 2 == 1);
  }
  for (std::size_t i = keys.size(); i-- > 0;) {
    if (i % 2 == 1) EXPECT_TRUE(map.erase(keys[i]));
  }
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.begin(), map.end());
}

TEST(FlatMap, MergeFromCombinesCollisionsAndDrainsSource) {
  for (const std::uint64_t seed : {5ULL, 99ULL}) {
    Rng rng(seed);
    Map a, b;
    Oracle oracle;
    for (int i = 0; i < 800; ++i) {
      const std::uint64_t key = rng.next() % 300;  // force overlap
      const std::uint64_t value = rng.next() % 1000;
      if (i % 2 == 0) {
        a[key] = a.contains(key) ? a.at(key) + value : value;
      } else {
        b[key] = b.contains(key) ? b.at(key) + value : value;
      }
      oracle[key] += value;  // the merged expectation: sums per key
    }
    a.merge_from(std::move(b),
                 [](std::uint64_t& mine, std::uint64_t&& theirs) { mine += theirs; });
    EXPECT_TRUE(b.empty());
    expect_matches_oracle(a, oracle);
  }
}

TEST(FlatMap, TryEmplaceDoesNotConsumeArgsOnExistingKey) {
  FlatMap<int, std::vector<int>> map;
  std::vector<int> payload = {1, 2, 3};
  map.try_emplace(1, std::move(payload));
  std::vector<int> second = {9, 9};
  const auto [slot, inserted] = map.try_emplace(1, std::move(second));
  EXPECT_FALSE(inserted);
  EXPECT_EQ(second, (std::vector<int>{9, 9})) << "args consumed without insert";
  EXPECT_EQ(slot->second, (std::vector<int>{1, 2, 3}));
}

TEST(FlatMap, IdenticalOpSequencesIterateIdentically) {
  // The determinism contract: layout is a pure function of the operation
  // sequence, so two independently built maps agree on iteration order.
  // (This is what keeps FP reductions over these containers byte-identical
  // between serial and sharded ingest.)
  const auto build = [] {
    Map map;
    Rng rng(1234);
    for (int i = 0; i < 5000; ++i) {
      const std::uint64_t key = rng.next() % 700;
      if (rng.next() % 3 == 0) {
        map.erase(key);
      } else {
        map[key] += 1;
      }
    }
    return map;
  };
  const Map a = build();
  const Map b = build();
  auto ia = a.begin();
  auto ib = b.begin();
  for (; ia != a.end() && ib != b.end(); ++ia, ++ib) {
    EXPECT_EQ(ia->first, ib->first);
    EXPECT_EQ(ia->second, ib->second);
  }
  EXPECT_EQ(ia == a.end(), ib == b.end());
}

TEST(FlatMap, ForEachSortedVisitsAscending) {
  Rng rng(11);
  Map map;
  for (int i = 0; i < 300; ++i) map[rng.next() % 1000] = i;
  std::vector<std::uint64_t> keys;
  for_each_sorted(map, [&](std::uint64_t k, std::uint64_t) { keys.push_back(k); });
  EXPECT_EQ(keys.size(), map.size());
  for (std::size_t i = 1; i < keys.size(); ++i) EXPECT_LT(keys[i - 1], keys[i]);
}

TEST(FlatSet, RandomOpsMatchUnorderedSetOracle) {
  for (const std::uint64_t seed : {2ULL, 77ULL}) {
    Rng rng(seed);
    FlatSet<std::uint64_t> set;
    std::unordered_set<std::uint64_t> oracle;
    for (int op = 0; op < 10000; ++op) {
      const std::uint64_t key = rng.next() % 200;
      if (rng.next() % 3 == 0) {
        EXPECT_EQ(set.erase(key), oracle.erase(key) == 1);
      } else {
        EXPECT_EQ(set.insert(key), oracle.insert(key).second);
      }
    }
    ASSERT_EQ(set.size(), oracle.size());
    for (const std::uint64_t k : oracle) EXPECT_TRUE(set.contains(k));
    std::size_t seen = 0;
    for (const std::uint64_t k : set) {
      EXPECT_TRUE(oracle.count(k) == 1);
      ++seen;
    }
    EXPECT_EQ(seen, oracle.size());
    const auto sorted = sorted_keys(set);
    EXPECT_EQ(sorted.size(), oracle.size());
    for (std::size_t i = 1; i < sorted.size(); ++i) EXPECT_LT(sorted[i - 1], sorted[i]);
  }
}

TEST(FlatSet, MergeFromKeepsUnion) {
  FlatSet<std::uint64_t> a, b;
  for (std::uint64_t i = 0; i < 100; ++i) a.insert(i);
  for (std::uint64_t i = 50; i < 150; ++i) b.insert(i);
  a.merge_from(std::move(b));
  EXPECT_EQ(a.size(), 150u);
  EXPECT_TRUE(b.empty());
  for (std::uint64_t i = 0; i < 150; ++i) EXPECT_TRUE(a.contains(i));
}

TEST(FlatMap, StringKeysWork) {
  // Non-integral keys go through std::hash then the SplitMix64 finisher.
  FlatMap<std::string, int> map;
  std::unordered_map<std::string, int> oracle;
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const std::string key = "k" + std::to_string(rng.next() % 400);
    map[key] = i;
    oracle[key] = i;
  }
  ASSERT_EQ(map.size(), oracle.size());
  for (const auto& [k, v] : oracle) EXPECT_EQ(map.at(k), v);
}

}  // namespace
}  // namespace dnsbs::util
