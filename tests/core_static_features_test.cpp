// Querier-name classification: the paper's keyword rules, leftmost-label
// precedence, and first-rule-wins tie-breaking (§III-C).
#include "core/static_features.hpp"

#include <gtest/gtest.h>

namespace dnsbs::core {
namespace {

QuerierCategory classify(const char* name) {
  return classify_querier_name(*dns::DnsName::parse(name));
}

TEST(StaticFeatures, PaperExamples) {
  // From §III-C directly.
  EXPECT_EQ(classify("home1-2-3-4.example.com"), QuerierCategory::kHome);
  EXPECT_EQ(classify("mail.example.com"), QuerierCategory::kMail);
  EXPECT_EQ(classify("ns.example.com"), QuerierCategory::kNs);
  EXPECT_EQ(classify("firewall.example.com"), QuerierCategory::kFw);
  EXPECT_EQ(classify("spam.example.com"), QuerierCategory::kAntispam);
  EXPECT_EQ(classify("www.example.com"), QuerierCategory::kWww);
  EXPECT_EQ(classify("ntp.example.com"), QuerierCategory::kNtp);
}

TEST(StaticFeatures, FirstRuleWinsWithinLabel) {
  // "Thus both mail.ns.example.com and mail-ns.example.com are mail."
  EXPECT_EQ(classify("mail.ns.example.com"), QuerierCategory::kMail);
  EXPECT_EQ(classify("mail-ns.example.com"), QuerierCategory::kMail);
}

TEST(StaticFeatures, LeftmostLabelFavored) {
  // mail.google.com is both google and mail; leftmost component wins.
  EXPECT_EQ(classify("mail.google.com"), QuerierCategory::kMail);
  EXPECT_EQ(classify("server1.google.com"), QuerierCategory::kGoogle);
}

TEST(StaticFeatures, HomeKeywords) {
  for (const char* name :
       {"cpe-11-22-33-44.isp.net", "dsl-static-99.example.de", "dynamic-1-2-3-4.big.jp",
        "pool-7-8-9-0.carrier.us", "customer.acme.br", "fiber99.example.fr",
        "flets-a.example.jp", "user-42.example.pl", "host1-2-3-4.example.ru",
        "cable-modem-3.example.ca"}) {
    EXPECT_EQ(classify(name), QuerierCategory::kHome) << name;
  }
}

TEST(StaticFeatures, MailKeywords) {
  for (const char* name :
       {"mx1.example.com", "smtp-out.example.org", "mta7.example.com",
        "zimbra.example.ac.jp", "lists.example.edu", "newsletter.shop.example",
        "imap.example.com", "correo.example.es", "poczta.example.pl"}) {
    EXPECT_EQ(classify(name), QuerierCategory::kMail) << name;
  }
}

TEST(StaticFeatures, SendIsPrefixOnly) {
  EXPECT_EQ(classify("send42.example.com"), QuerierCategory::kMail);
  EXPECT_EQ(classify("sendgrid-like.example.com"), QuerierCategory::kMail);
  // "resend" must NOT match the send* prefix rule.
  EXPECT_EQ(classify("resend.example.com"), QuerierCategory::kOther);
}

TEST(StaticFeatures, NsKeywords) {
  for (const char* name : {"dns1.example.com", "cns.example.jp", "cache3.isp.example",
                           "ns0.example.org", "name.example.com"}) {
    EXPECT_EQ(classify(name), QuerierCategory::kNs) << name;
  }
}

TEST(StaticFeatures, FirewallAndAntispam) {
  EXPECT_EQ(classify("fw1.example.com"), QuerierCategory::kFw);
  EXPECT_EQ(classify("gw-wall.example.com"), QuerierCategory::kFw);
  EXPECT_EQ(classify("ironport.example.com"), QuerierCategory::kAntispam);
  EXPECT_EQ(classify("spam-filter.example.com"), QuerierCategory::kAntispam);
}

TEST(StaticFeatures, ProviderSuffixes) {
  EXPECT_EQ(classify("a23-1.deploy.akamai.com"), QuerierCategory::kCdn);
  EXPECT_EQ(classify("edge7.edgecast.com"), QuerierCategory::kCdn);
  EXPECT_EQ(classify("x.cdnetworks.com"), QuerierCategory::kCdn);
  EXPECT_EQ(classify("ec2-1-2-3-4.compute.amazonaws.com"), QuerierCategory::kAws);
  EXPECT_EQ(classify("vm3.cloudapp.azure.com"), QuerierCategory::kMs);
  EXPECT_EQ(classify("crawl-1-2-3-4.googlebot.com"), QuerierCategory::kGoogle);
}

TEST(StaticFeatures, ComponentBoundariesRespected) {
  // Keywords must be delimited by non-letters: no match inside words.
  EXPECT_EQ(classify("chromecast.example.com"), QuerierCategory::kOther);  // not "home"
  EXPECT_EQ(classify("appliance.example.com"), QuerierCategory::kOther);   // not "ap"
  EXPECT_EQ(classify("imax.example.com"), QuerierCategory::kOther);        // not "imap"
  EXPECT_EQ(classify("answer.example.com"), QuerierCategory::kOther);      // not "ns"
}

TEST(StaticFeatures, DigitsAndHyphensDelimit) {
  EXPECT_EQ(classify("ns3.example.com"), QuerierCategory::kNs);
  EXPECT_EQ(classify("mail2-out.example.com"), QuerierCategory::kMail);
  EXPECT_EQ(classify("ip-10-2-3-4.example.com"), QuerierCategory::kHome);
}

TEST(StaticFeatures, PopPrefersHomeByRuleOrder) {
  // "pop" appears in both the home and mail keyword lists in the paper, but
  // under first-match-wins the mail entry is unreachable, so the table keeps
  // it only under home (pop = point-of-presence).  This pins the precedence:
  // a pop label is home, even in otherwise mail-looking names.
  EXPECT_EQ(classify("pop3.example.com"), QuerierCategory::kHome);
  EXPECT_EQ(classify("pop.example.com"), QuerierCategory::kHome);
  EXPECT_EQ(classify("pop-smtp7.example.com"), QuerierCategory::kHome);
  // Other mail keywords are unaffected by the removal of the dead entry.
  EXPECT_EQ(classify("smtp-pop-gw.example.com"), QuerierCategory::kHome);
  EXPECT_EQ(classify("smtp-gw.example.com"), QuerierCategory::kMail);
}

TEST(StaticFeatures, NoMatchIsOther) {
  EXPECT_EQ(classify("zzz.example.com"), QuerierCategory::kOther);
  EXPECT_EQ(classify("server.example.org"), QuerierCategory::kOther);
}

TEST(StaticFeatures, ClassifyQuerierFoldsFailures) {
  QuerierInfo nx;
  nx.status = ResolveStatus::kNxDomain;
  EXPECT_EQ(classify_querier(nx), QuerierCategory::kNxDomain);
  QuerierInfo un;
  un.status = ResolveStatus::kUnreachable;
  EXPECT_EQ(classify_querier(un), QuerierCategory::kUnreach);
  QuerierInfo ok;
  ok.status = ResolveStatus::kOk;
  ok.name = *dns::DnsName::parse("mail.example.com");
  EXPECT_EQ(classify_querier(ok), QuerierCategory::kMail);
}

TEST(StaticFeatures, NamesTableMatchesEnumOrder) {
  const auto names = static_feature_names();
  EXPECT_EQ(names[0], "home");
  EXPECT_EQ(names[static_cast<std::size_t>(QuerierCategory::kNxDomain)], "nxdomain");
  EXPECT_EQ(names.size(), kQuerierCategoryCount);
}

}  // namespace
}  // namespace dnsbs::core
