// Property and parameterized tests for the sensor pipeline invariants.
#include <gtest/gtest.h>

#include <sstream>

#include "core/sensor.hpp"
#include "util/rng.hpp"

namespace dnsbs::core {
namespace {

using dns::QueryRecord;
using net::IPv4Addr;
using util::SimTime;

// ---- dedup properties over random record streams ----

class DedupProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DedupProperty, AdmittedPlusSuppressedEqualsTotal) {
  util::Rng rng(GetParam());
  Deduplicator dedup;
  const std::size_t n = 5000;
  for (std::size_t i = 0; i < n; ++i) {
    QueryRecord r;
    r.time = SimTime::seconds(static_cast<std::int64_t>(i / 4));
    r.querier = IPv4Addr(static_cast<std::uint32_t>(rng.below(50)));
    r.originator = IPv4Addr(static_cast<std::uint32_t>(rng.below(20)) + 1000);
    dedup.admit(r);
  }
  EXPECT_EQ(dedup.admitted() + dedup.suppressed(), n);
  EXPECT_GT(dedup.suppressed(), 0u);
}

TEST_P(DedupProperty, NoTwoAdmissionsOfSamePairWithinWindow) {
  util::Rng rng(GetParam() ^ 0x77);
  const SimTime window = SimTime::seconds(30);
  Deduplicator dedup(window);
  std::unordered_map<std::uint64_t, std::int64_t> last_admitted;
  for (std::size_t i = 0; i < 5000; ++i) {
    QueryRecord r;
    r.time = SimTime::seconds(static_cast<std::int64_t>(i / 3));
    r.querier = IPv4Addr(static_cast<std::uint32_t>(rng.below(30)));
    r.originator = IPv4Addr(static_cast<std::uint32_t>(rng.below(10)));
    const std::uint64_t key =
        (static_cast<std::uint64_t>(r.querier.value()) << 32) | r.originator.value();
    if (dedup.admit(r)) {
      const auto it = last_admitted.find(key);
      if (it != last_admitted.end()) {
        EXPECT_GE(r.time.secs() - it->second, window.secs());
      }
      last_admitted[key] = r.time.secs();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DedupProperty, ::testing::Values(1u, 2u, 3u));

// ---- aggregation properties ----

class AggregateProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AggregateProperty, TotalsAreConserved) {
  util::Rng rng(GetParam());
  OriginatorAggregator agg;
  std::size_t n = 3000;
  for (std::size_t i = 0; i < n; ++i) {
    QueryRecord r;
    r.time = SimTime::seconds(static_cast<std::int64_t>(rng.below(36000)));
    r.querier = IPv4Addr(static_cast<std::uint32_t>(rng.below(500)));
    r.originator = IPv4Addr(static_cast<std::uint32_t>(rng.below(40)));
    agg.add(r);
  }
  std::size_t total_queries = 0;
  for (const auto& [addr, a] : agg.aggregates()) {
    total_queries += a.total_queries;
    EXPECT_LE(a.unique_queriers(), a.total_queries);
    EXPECT_LE(a.first_seen, a.last_seen);
    EXPECT_GE(a.periods.size(), 1u);
    std::size_t querier_sum = 0;
    for (const auto& [q, c] : a.querier_queries) querier_sum += c;
    EXPECT_EQ(querier_sum, a.total_queries);
  }
  EXPECT_EQ(total_queries, n);
}

TEST_P(AggregateProperty, SelectionIsMonotoneInThreshold) {
  util::Rng rng(GetParam() ^ 0x99);
  OriginatorAggregator agg;
  for (std::size_t i = 0; i < 2000; ++i) {
    QueryRecord r;
    r.time = SimTime::seconds(static_cast<std::int64_t>(i));
    r.querier = IPv4Addr(static_cast<std::uint32_t>(rng.below(300)));
    r.originator = IPv4Addr(static_cast<std::uint32_t>(rng.below(30)));
    agg.add(r);
  }
  std::size_t previous = SIZE_MAX;
  for (const std::size_t threshold : {1UL, 5UL, 20UL, 50UL, 200UL}) {
    const std::size_t count = agg.select_interesting(threshold, 0).size();
    EXPECT_LE(count, previous);
    previous = count;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggregateProperty, ::testing::Values(4u, 5u, 6u));

// ---- sensor config sweep: top_n truncation and threshold behaviour ----

struct SensorSweepCase {
  std::size_t min_queriers;
  std::size_t top_n;
};

class SensorSweep : public ::testing::TestWithParam<SensorSweepCase> {
 protected:
  class NullResolver final : public QuerierResolver {
   public:
    QuerierInfo resolve(net::IPv4Addr) const override {
      QuerierInfo info;
      info.status = ResolveStatus::kNxDomain;
      return info;
    }
  };
};

TEST_P(SensorSweep, RespectsThresholdAndTruncation) {
  const auto param = GetParam();
  netdb::AsDb as_db;
  netdb::GeoDb geo_db;
  NullResolver resolver;
  SensorConfig cfg;
  cfg.min_queriers = param.min_queriers;
  cfg.top_n = param.top_n;
  Sensor sensor(cfg, as_db, geo_db, resolver);

  // 20 originators with footprints 1..20 (distinct queriers, no dups).
  util::Rng rng(9);
  for (std::uint32_t o = 1; o <= 20; ++o) {
    for (std::uint32_t q = 0; q < o; ++q) {
      QueryRecord r;
      r.time = SimTime::seconds(q * 60);
      r.querier = IPv4Addr((o << 16) | q);
      r.originator = IPv4Addr(o);
      sensor.ingest(r);
    }
  }
  const auto features = sensor.extract_features();
  std::size_t expected = 0;
  for (std::uint32_t o = 1; o <= 20; ++o) {
    if (o >= param.min_queriers) ++expected;
  }
  if (param.top_n != 0) expected = std::min(expected, param.top_n);
  EXPECT_EQ(features.size(), expected);
  for (const auto& fv : features) {
    EXPECT_GE(fv.footprint, param.min_queriers);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SensorSweep,
    ::testing::Values(SensorSweepCase{1, 0}, SensorSweepCase{5, 0},
                      SensorSweepCase{5, 3}, SensorSweepCase{20, 0},
                      SensorSweepCase{21, 0}, SensorSweepCase{1, 1}));

// ---- static feature fractions always form a distribution ----

class StaticFractionProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StaticFractionProperty, SumToOneForAnyQuerierMix) {
  util::Rng rng(GetParam());
  class HashResolver final : public QuerierResolver {
   public:
    QuerierInfo resolve(net::IPv4Addr q) const override {
      QuerierInfo info;
      static const char* kNames[] = {
          "mail.example.com", "ns.example.org", "home1-2-3-4.isp.jp",
          "firewall.corp.us", "weird.example.net"};
      switch (q.value() % 7) {
        case 0: info.status = ResolveStatus::kNxDomain; break;
        case 1: info.status = ResolveStatus::kUnreachable; break;
        default:
          info.status = ResolveStatus::kOk;
          info.name = *dns::DnsName::parse(kNames[q.value() % 5]);
      }
      return info;
    }
  };
  HashResolver resolver;
  OriginatorAggregator agg;
  const std::size_t queriers = 1 + rng.below(200);
  for (std::size_t q = 0; q < queriers; ++q) {
    QueryRecord r;
    r.time = SimTime::seconds(static_cast<std::int64_t>(q));
    r.querier = IPv4Addr(static_cast<std::uint32_t>(rng.next()));
    r.originator = IPv4Addr(42);
    agg.add(r);
  }
  const auto f =
      compute_static_features(agg.aggregates().at(IPv4Addr(42)), resolver);
  double sum = 0;
  for (const double v : f) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StaticFractionProperty,
                         ::testing::Values(31u, 32u, 33u, 34u));

}  // namespace
}  // namespace dnsbs::core
