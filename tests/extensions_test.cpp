// Extension features: QNAME minimization and verified label growing.
#include <gtest/gtest.h>

#include "core/sensor.hpp"
#include "labeling/curator.hpp"
#include "labeling/strategies.hpp"
#include "sim/scenario.hpp"

namespace dnsbs {
namespace {

TEST(QnameMin, ZeroFractionChangesNothing) {
  sim::ScenarioConfig a = sim::jp_ditl_config(311, 0.04);
  a.duration = util::SimTime::hours(4);
  a.resolver.qname_min_fraction = 0.0;
  sim::Scenario scenario(std::move(a));
  scenario.run();
  EXPECT_GT(scenario.authority(0).records().size(), 100u);
}

TEST(QnameMin, FullDeploymentBlindsUpperAuthorities) {
  sim::ScenarioConfig cfg = sim::jp_ditl_config(311, 0.04);
  cfg.duration = util::SimTime::hours(4);
  cfg.resolver.qname_min_fraction = 1.0;
  sim::Scenario scenario(std::move(cfg));
  scenario.run();
  // National and roots see nothing attributable...
  EXPECT_EQ(scenario.authority(0).records().size(), 0u);
  EXPECT_EQ(scenario.authority(1).records().size(), 0u);
  EXPECT_EQ(scenario.authority(2).records().size(), 0u);
  // ...even though the resolution traffic still happened.
  EXPECT_GT(scenario.engine().stats().national_queries, 0u);
}

TEST(QnameMin, PartialDeploymentAttenuatesMonotonically) {
  const auto records_at = [](double fraction) {
    sim::ScenarioConfig cfg = sim::jp_ditl_config(313, 0.04);
    cfg.duration = util::SimTime::hours(4);
    cfg.resolver.qname_min_fraction = fraction;
    sim::Scenario scenario(std::move(cfg));
    scenario.run();
    return scenario.authority(0).records().size();
  };
  const auto none = records_at(0.0);
  const auto half = records_at(0.5);
  const auto full = records_at(1.0);
  EXPECT_GT(none, half);
  EXPECT_GT(half, full);
  EXPECT_EQ(full, 0u);
  // Half deployment should be in the rough vicinity of half the signal.
  EXPECT_GT(half, none / 4);
  EXPECT_LT(half, none * 3 / 4);
}

TEST(QnameMin, FinalAuthorityKeepsFullSignal) {
  // A final authority (controlled-experiment style) still sees minimized
  // resolvers: the last query in the chain carries the full QNAME.
  sim::AddressPlanConfig plan_cfg;
  plan_cfg.total_slash8 = 40;
  plan_cfg.sites = 600;
  const auto plan = sim::AddressPlan::generate(plan_cfg, 5);
  const sim::NamingModel naming(plan, {}, 5);
  const sim::QuerierPopulation qpop(naming, {}, 5);

  sim::ResolverSimConfig resolver;
  resolver.qname_min_fraction = 1.0;
  sim::TrafficEngine engine(plan, naming, qpop, resolver, 5);

  util::Rng rng(6);
  const net::IPv4Addr scanner = plan.random_host(rng, sim::SiteType::kHosting);
  sim::Authority final_auth(sim::AuthorityConfig{
      .name = "final",
      .level = sim::AuthorityLevel::kFinal,
      .zone = net::Prefix(scanner, 24),
  });
  engine.add_authority(&final_auth);

  sim::OriginatorSpec spec;
  spec.address = scanner;
  spec.cls = core::AppClass::kScan;
  spec.kind = sim::TrafficKind::kScanProbe;
  spec.strategy = sim::TargetStrategy::kRandomAddress;
  spec.touches_per_hour = 3000;
  const std::vector<sim::OriginatorSpec> population = {spec};
  engine.run(population, util::SimTime::seconds(0), util::SimTime::hours(2));
  EXPECT_GT(final_auth.records().size(), 10u);
}

TEST(VerifiedGrowth, KeepsLabelErrorBelowPlainGrowth) {
  sim::ScenarioConfig cfg = sim::b_multi_year_config(317, 8, 0.07);
  sim::Scenario scenario(std::move(cfg));
  labeling::Darknet darknet(labeling::default_darknet_prefixes());
  scenario.engine().set_traffic_observer(&darknet);

  core::SensorConfig sensor_cfg;
  sensor_cfg.min_queriers = 10;
  std::vector<labeling::WindowObservation> windows;
  for (int w = 0; w < 8; ++w) {
    scenario.run_window(util::SimTime::weeks(w), util::SimTime::weeks(w + 1));
    core::Sensor sensor(sensor_cfg, scenario.plan().as_db(), scenario.plan().geo_db(),
                        scenario.naming());
    sensor.ingest_all(scenario.authority(0).records());
    scenario.authority(0).clear_records();
    labeling::WindowObservation obs;
    obs.features = sensor.extract_features();
    windows.push_back(std::move(obs));
  }

  util::Rng rng(9);
  const auto blacklist = labeling::BlacklistSet::build(scenario.population(), {}, rng);
  labeling::CuratorConfig cc;
  cc.max_per_class = 40;
  labeling::Curator curator(scenario, blacklist, darknet, cc, 10);
  const auto labels = curator.curate(windows[1].features);
  ASSERT_GT(labels.size(), 30u);

  const auto& truth = scenario.truth();
  const auto plain = labeling::evaluate_auto_grow(windows, 1, labels, {}, &truth);
  const auto verified = labeling::evaluate_auto_grow_verified(
      windows, 1, labels, blacklist, darknet, {}, &truth);

  double plain_err = 0, verified_err = 0;
  std::size_t n = 0;
  for (std::size_t w = 3; w < windows.size(); ++w) {
    plain_err += plain[w].label_error;
    verified_err += verified[w].label_error;
    ++n;
  }
  ASSERT_GT(n, 0u);
  EXPECT_LT(verified_err / n, plain_err / n + 1e-9);
}

}  // namespace
}  // namespace dnsbs
