// Dedup, aggregation, dynamic features, and the Sensor facade.
#include <gtest/gtest.h>

#include "core/sensor.hpp"

namespace dnsbs::core {
namespace {

using dns::QueryRecord;
using dns::RCode;
using net::IPv4Addr;
using util::SimTime;

QueryRecord rec(std::int64_t secs, const char* querier, const char* originator) {
  return QueryRecord{SimTime::seconds(secs), *IPv4Addr::parse(querier),
                     *IPv4Addr::parse(originator), RCode::kNoError};
}

TEST(Deduplicator, SuppressesWithinWindow) {
  Deduplicator dedup(SimTime::seconds(30));
  EXPECT_TRUE(dedup.admit(rec(0, "10.0.0.1", "1.1.1.1")));
  EXPECT_FALSE(dedup.admit(rec(10, "10.0.0.1", "1.1.1.1")));
  EXPECT_FALSE(dedup.admit(rec(29, "10.0.0.1", "1.1.1.1")));
  EXPECT_TRUE(dedup.admit(rec(30, "10.0.0.1", "1.1.1.1")));
  EXPECT_EQ(dedup.admitted(), 2u);
  EXPECT_EQ(dedup.suppressed(), 2u);
}

TEST(Deduplicator, DistinctPairsIndependent) {
  Deduplicator dedup;
  EXPECT_TRUE(dedup.admit(rec(0, "10.0.0.1", "1.1.1.1")));
  EXPECT_TRUE(dedup.admit(rec(1, "10.0.0.2", "1.1.1.1")));  // other querier
  EXPECT_TRUE(dedup.admit(rec(2, "10.0.0.1", "2.2.2.2")));  // other originator
}

TEST(Deduplicator, PrunesOldState) {
  Deduplicator dedup(SimTime::seconds(30));
  for (int i = 0; i < 100; ++i) {
    dedup.admit(rec(i * 2, "10.0.0.1", ("1.1.1." + std::to_string(i)).c_str()));
  }
  // After pruning, long-dead entries must be gone (well under 100 live).
  EXPECT_LT(dedup.state_size(), 40u);
}

TEST(Deduplicator, OutOfOrderRecordRefreshes) {
  Deduplicator dedup(SimTime::seconds(30));
  EXPECT_TRUE(dedup.admit(rec(100, "10.0.0.1", "1.1.1.1")));
  // A record from before the stored timestamp is treated as a new sighting
  // (time went backwards; refresh rather than silently suppress).
  EXPECT_TRUE(dedup.admit(rec(10, "10.0.0.1", "1.1.1.1")));
}

TEST(Aggregator, CountsQueriersAndPeriods) {
  OriginatorAggregator agg;
  agg.add(rec(0, "10.0.0.1", "1.1.1.1"));
  agg.add(rec(5, "10.0.0.1", "1.1.1.1"));
  agg.add(rec(700, "10.0.0.2", "1.1.1.1"));
  ASSERT_EQ(agg.originator_count(), 1u);
  const auto& a = agg.aggregates().at(*IPv4Addr::parse("1.1.1.1"));
  EXPECT_EQ(a.unique_queriers(), 2u);
  EXPECT_EQ(a.total_queries, 3u);
  EXPECT_EQ(a.periods.size(), 2u);  // 0-600 and 600-1200
  EXPECT_EQ(a.first_seen.secs(), 0);
  EXPECT_EQ(a.last_seen.secs(), 700);
  EXPECT_EQ(agg.total_periods(), 2u);
}

TEST(Aggregator, SelectInterestingThresholdAndOrder) {
  OriginatorAggregator agg;
  // Originator A: 3 queriers; B: 5 queriers; C: 1 querier.
  for (int q = 0; q < 3; ++q) agg.add(rec(q, ("10.0.1." + std::to_string(q)).c_str(), "1.0.0.1"));
  for (int q = 0; q < 5; ++q) agg.add(rec(q, ("10.0.2." + std::to_string(q)).c_str(), "1.0.0.2"));
  agg.add(rec(0, "10.0.3.1", "1.0.0.3"));

  const auto top = agg.select_interesting(2, 0);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0]->originator, *IPv4Addr::parse("1.0.0.2"));
  EXPECT_EQ(top[1]->originator, *IPv4Addr::parse("1.0.0.1"));

  const auto top1 = agg.select_interesting(2, 1);
  ASSERT_EQ(top1.size(), 1u);
  EXPECT_EQ(top1[0]->originator, *IPv4Addr::parse("1.0.0.2"));
}

TEST(Aggregator, TieBreaksByAddress) {
  OriginatorAggregator agg;
  agg.add(rec(0, "10.0.0.1", "2.0.0.1"));
  agg.add(rec(0, "10.0.0.1", "1.0.0.1"));
  const auto top = agg.select_interesting(1, 0);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0]->originator, *IPv4Addr::parse("1.0.0.1"));
}

/// A resolver stub mapping specific addresses to fixed names.
class StubResolver final : public QuerierResolver {
 public:
  QuerierInfo resolve(net::IPv4Addr querier) const override {
    QuerierInfo info;
    switch (querier.octet(3) % 4) {
      case 0:
        info.status = ResolveStatus::kOk;
        info.name = *dns::DnsName::parse("mail.example.com");
        break;
      case 1:
        info.status = ResolveStatus::kOk;
        info.name = *dns::DnsName::parse("ns1.example.com");
        break;
      case 2:
        info.status = ResolveStatus::kNxDomain;
        break;
      case 3:
        info.status = ResolveStatus::kUnreachable;
        break;
    }
    return info;
  }
};

TEST(StaticFeatureExtraction, FractionsSumToOne) {
  OriginatorAggregator agg;
  for (int q = 0; q < 8; ++q) {
    agg.add(rec(q, ("10.0.0." + std::to_string(q)).c_str(), "1.1.1.1"));
  }
  const StubResolver resolver;
  const auto f =
      compute_static_features(agg.aggregates().at(*IPv4Addr::parse("1.1.1.1")), resolver);
  double sum = 0;
  for (const double v : f) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_NEAR(f[static_cast<std::size_t>(QuerierCategory::kMail)], 0.25, 1e-12);
  EXPECT_NEAR(f[static_cast<std::size_t>(QuerierCategory::kNs)], 0.25, 1e-12);
  EXPECT_NEAR(f[static_cast<std::size_t>(QuerierCategory::kNxDomain)], 0.25, 1e-12);
  EXPECT_NEAR(f[static_cast<std::size_t>(QuerierCategory::kUnreach)], 0.25, 1e-12);
}

TEST(DynamicFeatureExtraction, EntropyAndNormalizers) {
  netdb::AsDb as_db;
  netdb::GeoDb geo_db;
  as_db.add(*net::Prefix::parse("10.0.0.0/16"), 100, "as-a");
  as_db.add(*net::Prefix::parse("10.1.0.0/16"), 200, "as-b");
  geo_db.add(*net::Prefix::parse("10.0.0.0/16"), netdb::CountryCode('j', 'p'));
  geo_db.add(*net::Prefix::parse("10.1.0.0/16"), netdb::CountryCode('u', 's'));

  OriginatorAggregator agg;
  // Originator with queriers spread over two /24s, two ASes, two countries.
  agg.add(rec(0, "10.0.0.1", "1.1.1.1"));
  agg.add(rec(1, "10.0.0.1", "1.1.1.1"));  // repeat query, same querier
  agg.add(rec(2, "10.1.7.1", "1.1.1.1"));

  const DynamicFeatureExtractor extractor(as_db, geo_db, agg);
  EXPECT_EQ(extractor.interval_as_count(), 2u);
  EXPECT_EQ(extractor.interval_country_count(), 2u);

  const auto f = extractor.extract(agg.aggregates().at(*IPv4Addr::parse("1.1.1.1")));
  EXPECT_NEAR(f[static_cast<std::size_t>(DynamicFeature::kQueriesPerQuerier)], 1.5, 1e-12);
  EXPECT_NEAR(f[static_cast<std::size_t>(DynamicFeature::kPersistence)], 1.0, 1e-12);
  // Two queriers in two distinct /24s and /8s: maximal normalized entropy.
  EXPECT_NEAR(f[static_cast<std::size_t>(DynamicFeature::kLocalEntropy)], 1.0, 1e-12);
  EXPECT_NEAR(f[static_cast<std::size_t>(DynamicFeature::kUniqueAs)], 1.0, 1e-12);
  EXPECT_NEAR(f[static_cast<std::size_t>(DynamicFeature::kUniqueCountries)], 1.0, 1e-12);
  EXPECT_NEAR(f[static_cast<std::size_t>(DynamicFeature::kQueriersPerCountry)], 1.0, 1e-12);
}

TEST(FeatureVector, RowLayout) {
  FeatureVector fv;
  fv.statics[0] = 0.5;                         // home
  fv.dynamics[0] = 3.25;                       // queries_per_querier
  const auto row = fv.row();
  ASSERT_EQ(row.size(), kFeatureCount);
  EXPECT_DOUBLE_EQ(row[0], 0.5);
  EXPECT_DOUBLE_EQ(row[kQuerierCategoryCount], 3.25);
  EXPECT_EQ(feature_names().size(), kFeatureCount);
  EXPECT_EQ(feature_names()[0], "home");
  EXPECT_EQ(feature_names()[kQuerierCategoryCount], "queries_per_querier");
}

TEST(Sensor, EndToEndSelectsAndExtracts) {
  netdb::AsDb as_db;
  netdb::GeoDb geo_db;
  as_db.add(*net::Prefix::parse("10.0.0.0/8"), 1, "as");
  geo_db.add(*net::Prefix::parse("10.0.0.0/8"), netdb::CountryCode('j', 'p'));
  const StubResolver resolver;

  SensorConfig cfg;
  cfg.min_queriers = 3;
  cfg.top_n = 10;
  Sensor sensor(cfg, as_db, geo_db, resolver);

  // Originator X gets 4 queriers (and duplicate suppressed queries);
  // originator Y only 2 -> filtered out.
  for (int q = 0; q < 4; ++q) {
    sensor.ingest(rec(q * 40, ("10.0.0." + std::to_string(q)).c_str(), "1.1.1.1"));
    sensor.ingest(rec(q * 40 + 1, ("10.0.0." + std::to_string(q)).c_str(), "1.1.1.1"));
  }
  sensor.ingest(rec(0, "10.0.1.1", "2.2.2.2"));
  sensor.ingest(rec(1, "10.0.1.2", "2.2.2.2"));

  const auto features = sensor.extract_features();
  ASSERT_EQ(features.size(), 1u);
  EXPECT_EQ(features[0].originator, *IPv4Addr::parse("1.1.1.1"));
  EXPECT_EQ(features[0].footprint, 4u);
  EXPECT_GT(sensor.dedup().suppressed(), 0u);
}

TEST(Sensor, ClassifyAllUsesModel) {
  // A trivial "model" that always answers class 3 (crawler).
  class Fixed final : public ml::Classifier {
   public:
    void fit(const ml::Dataset&) override {}
    std::size_t predict(std::span<const double>) const override { return 3; }
    std::string name() const override { return "fixed"; }
  };
  std::vector<FeatureVector> features(2);
  const Fixed model;
  const auto classified = classify_all(features, model);
  ASSERT_EQ(classified.size(), 2u);
  EXPECT_EQ(classified[0].predicted, AppClass::kCrawler);
}

}  // namespace
}  // namespace dnsbs::core
