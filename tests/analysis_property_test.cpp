// Property tests over randomly generated window series: analysis
// invariants that must hold for any classification history.
#include <gtest/gtest.h>

#include "analysis/churn_analysis.hpp"
#include "analysis/consistency.hpp"
#include "analysis/footprint.hpp"
#include "analysis/teams.hpp"
#include "util/rng.hpp"

namespace dnsbs::analysis {
namespace {

std::vector<WindowResult> random_windows(util::Rng& rng, std::size_t n_windows,
                                         std::size_t population) {
  std::vector<WindowResult> windows(n_windows);
  for (std::size_t w = 0; w < n_windows; ++w) {
    windows[w].index = w;
    for (std::size_t o = 0; o < population; ++o) {
      if (!rng.chance(0.6)) continue;  // appears this window?
      const net::IPv4Addr addr(static_cast<std::uint32_t>(o * 7919 + 17));
      windows[w].classes[addr] =
          static_cast<core::AppClass>(rng.below(core::kAppClassCount));
      windows[w].footprints[addr] = 10 + rng.below(200);
    }
  }
  return windows;
}

class ChurnProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChurnProperty, ConservationAcrossConsecutiveWindows) {
  util::Rng rng(GetParam());
  const auto windows = random_windows(rng, 8, 60);
  for (const core::AppClass cls :
       {core::AppClass::kScan, core::AppClass::kSpam, core::AppClass::kMail}) {
    const auto churn = weekly_churn(windows, cls);
    ASSERT_EQ(churn.size(), windows.size());
    for (std::size_t w = 1; w < churn.size(); ++w) {
      // present(w) = fresh + continuing; present(w-1) = continuing + departing.
      const std::size_t prev_present = churn[w - 1].fresh + churn[w - 1].continuing;
      EXPECT_EQ(prev_present, churn[w].continuing + churn[w].departing)
          << "class " << static_cast<int>(cls) << " window " << w;
    }
    const double turnover = mean_turnover(churn);
    EXPECT_GE(turnover, 0.0);
    EXPECT_LE(turnover, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnProperty, ::testing::Values(1u, 2u, 3u, 4u));

class ConsistencyProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConsistencyProperty, RatiosInValidRangeAndThresholdMonotone) {
  util::Rng rng(GetParam());
  const auto windows = random_windows(rng, 10, 80);
  std::size_t previous_eligible = SIZE_MAX;
  for (const std::size_t q : {10UL, 50UL, 120UL}) {
    ConsistencyConfig cfg;
    cfg.min_footprint = q;
    cfg.min_appearances = 3;
    const auto ratios = consistency_ratios(windows, cfg);
    EXPECT_LE(ratios.size(), previous_eligible);
    previous_eligible = ratios.size();
    for (const double r : ratios) {
      // With 12 classes, a plurality over >=3 windows is at least 1/12
      // of the windows but never more than all of them.
      EXPECT_GT(r, 0.0);
      EXPECT_LE(r, 1.0);
    }
    EXPECT_GE(majority_fraction(ratios), 0.0);
    EXPECT_LE(majority_fraction(ratios), 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConsistencyProperty, ::testing::Values(5u, 6u, 7u));

class TeamsProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TeamsProperty, BlockCountsBoundedByMembership) {
  util::Rng rng(GetParam());
  const auto windows = random_windows(rng, 6, 120);
  const auto blocks = blocks_of_class(windows, core::AppClass::kScan, 1);
  for (const auto& block : blocks) {
    EXPECT_GE(block.originators, 1u);
    EXPECT_GE(block.distinct_classes, 1u);
    EXPECT_LE(block.distinct_classes, core::kAppClassCount);
    // Trajectory never exceeds the block's total membership.
    const auto series = block_trajectory(windows, block.slash24, core::AppClass::kScan);
    for (const std::size_t count : series) EXPECT_LE(count, block.originators);
  }
  // Sorted by originator count descending.
  for (std::size_t i = 1; i < blocks.size(); ++i) {
    EXPECT_GE(blocks[i - 1].originators, blocks[i].originators);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TeamsProperty, ::testing::Values(8u, 9u));

TEST(FootprintProperty, CcdfIsMonotoneDecreasing) {
  util::Rng rng(11);
  std::vector<core::FeatureVector> features(300);
  for (auto& fv : features) fv.footprint = 20 + rng.below(5000);
  const auto points = footprint_ccdf(features);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GT(points[i].first, points[i - 1].first);
    EXPECT_LT(points[i].second, points[i - 1].second + 1e-12);
  }
  EXPECT_DOUBLE_EQ(points.front().second, 1.0);
}

TEST(FootprintProperty, MixFractionsSumToOne) {
  util::Rng rng(12);
  std::vector<core::ClassifiedOriginator> classified(200);
  for (auto& c : classified) {
    c.predicted = static_cast<core::AppClass>(rng.below(core::kAppClassCount));
  }
  for (const std::size_t n : {10UL, 100UL, 500UL}) {
    const ClassMix mix = class_mix_top_n(classified, n);
    double sum = 0;
    for (const double f : mix.fraction) sum += f;
    EXPECT_NEAR(sum, 1.0, 1e-9);
    EXPECT_EQ(mix.total, std::min(n, classified.size()));
  }
}

}  // namespace
}  // namespace dnsbs::analysis
