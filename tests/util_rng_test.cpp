// RNG determinism, range, and distribution sanity.
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

namespace dnsbs::util {
namespace {

TEST(SplitMix64, DeterministicSequence) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, StreamsAreIndependent) {
  Rng a = Rng::stream(5, 0);
  Rng b = Rng::stream(5, 1);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kDraws = 100000;
  std::array<int, kBuckets> counts{};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBuckets)];
  for (const int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(19);
  double sum = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(29);
  double sum = 0.0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / kDraws, 0.5, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(31);
  double sum = 0.0, sumsq = 0.0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.normal(10.0, 3.0);
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / kDraws;
  const double var = sumsq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.3);
}

TEST(Rng, PoissonSmallLambdaMean) {
  Rng rng(37);
  std::uint64_t total = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) total += rng.poisson(3.5);
  EXPECT_NEAR(static_cast<double>(total) / kDraws, 3.5, 0.1);
}

TEST(Rng, PoissonLargeLambdaMean) {
  Rng rng(41);
  std::uint64_t total = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) total += rng.poisson(200.0);
  EXPECT_NEAR(static_cast<double>(total) / kDraws, 200.0, 2.0);
}

TEST(Rng, PoissonZeroLambda) {
  Rng rng(43);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, ParetoRespectsScale) {
  Rng rng(47);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.pareto(5.0, 1.5), 5.0);
  }
}

TEST(Rng, ParetoIsHeavyTailed) {
  Rng rng(53);
  int above_10x = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.pareto(1.0, 1.0) > 10.0) ++above_10x;
  }
  // For alpha=1, P(X > 10) = 0.1.
  EXPECT_NEAR(above_10x, kDraws / 10, kDraws / 100);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(59);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng rng(61);
  for (std::size_t n : {5UL, 100UL, 1000UL}) {
    for (std::size_t k : {0UL, 1UL, 3UL, n / 2, n}) {
      const auto sample = rng.sample_indices(n, k);
      EXPECT_EQ(sample.size(), std::min(n, k));
      std::set<std::size_t> distinct(sample.begin(), sample.end());
      EXPECT_EQ(distinct.size(), sample.size());
      for (const auto idx : sample) EXPECT_LT(idx, n);
    }
  }
}

TEST(WeightedPick, HonorsWeights) {
  Rng rng(67);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  std::array<int, 3> counts{};
  constexpr int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) ++counts[weighted_pick(rng, weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[0], kDraws / 4, kDraws / 40);
  EXPECT_NEAR(counts[2], 3 * kDraws / 4, kDraws / 40);
}

TEST(ZipfSampler, RankZeroMostPopular) {
  Rng rng(71);
  ZipfSampler zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[99]);
}

TEST(ZipfSampler, SingleElement) {
  Rng rng(73);
  ZipfSampler zipf(1, 1.2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.sample(rng), 0u);
}

}  // namespace
}  // namespace dnsbs::util
