#include "dns/reverse.hpp"

#include <gtest/gtest.h>

namespace dnsbs::dns {
namespace {

using net::IPv4Addr;

TEST(Reverse, BuildsPtrName) {
  const auto name = reverse_name(IPv4Addr::from_octets(1, 2, 3, 4));
  EXPECT_EQ(name.to_string(), "4.3.2.1.in-addr.arpa");
}

TEST(Reverse, RoundTrips) {
  const IPv4Addr a = IPv4Addr::from_octets(203, 0, 113, 77);
  const auto back = address_from_reverse(reverse_name(a));
  ASSERT_TRUE(back);
  EXPECT_EQ(*back, a);
}

TEST(Reverse, RejectsNonReverseNames) {
  EXPECT_FALSE(address_from_reverse(*DnsName::parse("www.example.com")));
  EXPECT_FALSE(address_from_reverse(*DnsName::parse("4.3.2.1.ip6.arpa")));
  // Too few labels (a zone, not a full PTR name).
  EXPECT_FALSE(address_from_reverse(*DnsName::parse("3.2.1.in-addr.arpa")));
  // Octet out of range.
  EXPECT_FALSE(address_from_reverse(*DnsName::parse("4.3.2.256.in-addr.arpa")));
  EXPECT_FALSE(address_from_reverse(*DnsName::parse("4.3.2.x.in-addr.arpa")));
}

TEST(Reverse, IsReverseName) {
  EXPECT_TRUE(is_reverse_name(*DnsName::parse("1.in-addr.arpa")));
  EXPECT_TRUE(is_reverse_name(reverse_name(IPv4Addr(0))));
  EXPECT_FALSE(is_reverse_name(*DnsName::parse("in-addr.arpa.example.com")));
}

TEST(Reverse, ZoneNamesPerLevel) {
  const IPv4Addr a = IPv4Addr::from_octets(10, 20, 30, 40);
  EXPECT_EQ(reverse_zone(a, ReverseZoneLevel::kRoot).to_string(), "in-addr.arpa");
  EXPECT_EQ(reverse_zone(a, ReverseZoneLevel::kSlash8).to_string(), "10.in-addr.arpa");
  EXPECT_EQ(reverse_zone(a, ReverseZoneLevel::kSlash16).to_string(), "20.10.in-addr.arpa");
  EXPECT_EQ(reverse_zone(a, ReverseZoneLevel::kSlash24).to_string(),
            "30.20.10.in-addr.arpa");
}

TEST(Reverse, ZonePrefixes) {
  const IPv4Addr a = IPv4Addr::from_octets(10, 20, 30, 40);
  EXPECT_EQ(zone_prefix(a, ReverseZoneLevel::kSlash8).to_string(), "10.0.0.0/8");
  EXPECT_EQ(zone_prefix(a, ReverseZoneLevel::kSlash24).to_string(), "10.20.30.0/24");
  EXPECT_EQ(zone_prefix(a, ReverseZoneLevel::kRoot).length(), 0);
}

TEST(Reverse, AllOctetValuesRoundTrip) {
  for (int v : {0, 1, 9, 10, 99, 100, 199, 200, 255}) {
    const IPv4Addr a = IPv4Addr::from_octets(static_cast<std::uint8_t>(v), 0, 255,
                                             static_cast<std::uint8_t>(255 - v));
    EXPECT_EQ(*address_from_reverse(reverse_name(a)), a);
  }
}

}  // namespace
}  // namespace dnsbs::dns
