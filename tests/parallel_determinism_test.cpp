// The determinism contract under parallel execution (DESIGN.md §6):
// serial and N-thread runs of the forest, the sensor, cross-validation,
// and the windowed pipeline must produce byte-identical outputs for a
// fixed seed.
#include <gtest/gtest.h>

#include "analysis/pipeline.hpp"
#include "core/sensor.hpp"
#include "labeling/curator.hpp"
#include "ml/crossval.hpp"
#include "ml/forest.hpp"
#include "sim/scenario.hpp"
#include "util/metrics.hpp"
#include "util/parallel.hpp"

namespace dnsbs {
namespace {

constexpr std::uint64_t kSeeds[] = {3, 71, 20140415};

ml::Dataset noisy_blobs(std::uint64_t seed) {
  ml::Dataset d({"x", "y"}, {"a", "b", "c"});
  util::Rng rng(seed);
  const double centers[3][2] = {{0.2, 0.2}, {0.8, 0.2}, {0.5, 0.9}};
  for (std::size_t k = 0; k < 3; ++k) {
    for (std::size_t i = 0; i < 50; ++i) {
      d.add({centers[k][0] + rng.normal(0, 0.2), centers[k][1] + rng.normal(0, 0.2)}, k);
    }
  }
  return d;
}

/// Restores the global thread override even when an assertion fails.
struct ThreadCountGuard {
  ~ThreadCountGuard() { util::set_thread_count(0); }
};

TEST(ParallelDeterminism, ForestFitAndPredictMatchSerial) {
  ThreadCountGuard guard;
  for (const std::uint64_t seed : kSeeds) {
    const ml::Dataset train = noisy_blobs(seed);
    const ml::Dataset probe = noisy_blobs(seed ^ 0xabcd);

    ml::ForestConfig fc;
    fc.n_trees = 30;
    fc.seed = seed;

    util::set_thread_count(1);
    ml::RandomForest serial(fc);
    serial.fit(train);
    const auto serial_pred = serial.predict_all(probe);
    const auto serial_imp = serial.gini_importance();

    for (const std::size_t threads : {2, 4}) {
      util::set_thread_count(threads);
      ml::RandomForest parallel(fc);
      parallel.fit(train);
      EXPECT_EQ(parallel.predict_all(probe), serial_pred)
          << "seed=" << seed << " threads=" << threads;
      EXPECT_EQ(parallel.gini_importance(), serial_imp)
          << "seed=" << seed << " threads=" << threads;
    }
  }
}

TEST(ParallelDeterminism, CrossValidationMatchesSerial) {
  ThreadCountGuard guard;
  for (const std::uint64_t seed : kSeeds) {
    const ml::Dataset d = noisy_blobs(seed);
    ml::CrossValConfig cv;
    cv.repetitions = 8;
    cv.seed = seed;
    const auto factory = [](std::uint64_t s) {
      ml::ForestConfig fc;
      fc.n_trees = 10;
      fc.seed = s;
      return std::unique_ptr<ml::Classifier>(std::make_unique<ml::RandomForest>(fc));
    };

    util::set_thread_count(1);
    const ml::MetricSummary serial = ml::cross_validate(d, factory, cv);
    util::set_thread_count(4);
    const ml::MetricSummary parallel = ml::cross_validate(d, factory, cv);

    EXPECT_EQ(serial.runs, parallel.runs);
    EXPECT_DOUBLE_EQ(serial.mean.accuracy, parallel.mean.accuracy) << "seed=" << seed;
    EXPECT_DOUBLE_EQ(serial.mean.f1, parallel.mean.f1) << "seed=" << seed;
    EXPECT_DOUBLE_EQ(serial.stddev.accuracy, parallel.stddev.accuracy);
    EXPECT_DOUBLE_EQ(serial.stddev.f1, parallel.stddev.f1);
  }
}

void expect_identical_features(const std::vector<core::FeatureVector>& a,
                               const std::vector<core::FeatureVector>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].originator, b[i].originator) << "row " << i;
    EXPECT_EQ(a[i].footprint, b[i].footprint) << "row " << i;
    // Exact equality, not near: the parallel path must be byte-identical.
    EXPECT_EQ(a[i].row(), b[i].row()) << "row " << i;
  }
}

TEST(ParallelDeterminism, SensorShardedIngestAndExtractMatchSerial) {
  for (const std::uint64_t seed : kSeeds) {
    sim::Scenario scenario(sim::jp_ditl_config(seed, 0.05));
    scenario.run();
    const auto& records = scenario.authority(0).records();
    ASSERT_GT(records.size(), 4096u)
        << "world too small to exercise the sharded ingest path";

    const auto run_with = [&](std::size_t threads) {
      core::SensorConfig sc;
      sc.threads = threads;
      core::Sensor sensor(sc, scenario.plan().as_db(), scenario.plan().geo_db(),
                          scenario.naming());
      sensor.ingest_all(records);
      return sensor;
    };

    const core::Sensor serial = run_with(1);
    const auto serial_features = serial.extract_features();
    ASSERT_FALSE(serial_features.empty());

    for (const std::size_t threads : {2, 4}) {
      const core::Sensor parallel = run_with(threads);
      EXPECT_EQ(parallel.dedup().admitted(), serial.dedup().admitted());
      EXPECT_EQ(parallel.dedup().suppressed(), serial.dedup().suppressed());
      EXPECT_EQ(parallel.aggregator().originator_count(),
                serial.aggregator().originator_count());
      EXPECT_EQ(parallel.aggregator().total_periods(),
                serial.aggregator().total_periods());
      expect_identical_features(serial_features, parallel.extract_features());
    }
  }
}

TEST(ParallelDeterminism, ShardedIngestKeepsFlatMapLayoutIdentical) {
  // Stronger than value equality: the FlatMap slot layout (iteration
  // order) of every originator's querier histogram must match serial,
  // because entropy reductions sum in iteration order and must stay
  // byte-identical.  Each originator's map is built inside exactly one
  // shard from the same record subsequence, then moved wholesale on
  // merge, so the layouts coincide.
  sim::Scenario scenario(sim::jp_ditl_config(71, 0.05));
  scenario.run();
  const auto& records = scenario.authority(0).records();
  ASSERT_GT(records.size(), 4096u);

  const auto run_with = [&](std::size_t threads) {
    core::SensorConfig sc;
    sc.threads = threads;
    core::Sensor sensor(sc, scenario.plan().as_db(), scenario.plan().geo_db(),
                        scenario.naming());
    sensor.ingest_all(records);
    return sensor;
  };

  const core::Sensor serial = run_with(1);
  const core::Sensor sharded = run_with(4);
  const auto& serial_aggs = serial.aggregator().aggregates();
  const auto& sharded_aggs = sharded.aggregator().aggregates();
  ASSERT_EQ(serial_aggs.size(), sharded_aggs.size());

  std::size_t compared = 0;
  for (const auto& [originator, agg] : serial_aggs) {
    const auto* other = sharded_aggs.find(originator);
    ASSERT_NE(other, nullptr) << originator.to_string();
    ASSERT_EQ(agg.querier_queries.size(), other->second.querier_queries.size());
    auto it_a = agg.querier_queries.begin();
    auto it_b = other->second.querier_queries.begin();
    for (; it_a != agg.querier_queries.end(); ++it_a, ++it_b) {
      ASSERT_EQ(it_a->first, it_b->first)
          << "slot order diverged for " << originator.to_string();
      ASSERT_EQ(it_a->second, it_b->second);
    }
    ++compared;
  }
  EXPECT_EQ(compared, serial_aggs.size());
}

TEST(ParallelDeterminism, ShardedIngestKeepsServingLaterSerialIngest) {
  // After a sharded bulk ingest, single-record ingest() must continue from
  // the same dedup window state a serial run would have.
  sim::Scenario scenario(sim::jp_ditl_config(9, 0.05));
  scenario.run();
  const auto& records = scenario.authority(0).records();
  ASSERT_GT(records.size(), 5000u);
  const std::span<const dns::QueryRecord> bulk(records.data(), 5000);

  core::SensorConfig serial_cfg;
  serial_cfg.threads = 1;
  core::Sensor serial(serial_cfg, scenario.plan().as_db(), scenario.plan().geo_db(),
                      scenario.naming());
  core::SensorConfig sharded_cfg;
  sharded_cfg.threads = 4;
  core::Sensor sharded(sharded_cfg, scenario.plan().as_db(), scenario.plan().geo_db(),
                       scenario.naming());

  serial.ingest_all(bulk);
  sharded.ingest_all(bulk);
  // Replay a slice of the bulk records immediately: duplicates within the
  // window must be suppressed identically by both sensors.
  for (std::size_t i = 4000; i < 5000; ++i) {
    serial.ingest(records[i]);
    sharded.ingest(records[i]);
  }
  EXPECT_EQ(serial.dedup().admitted(), sharded.dedup().admitted());
  EXPECT_EQ(serial.dedup().suppressed(), sharded.dedup().suppressed());
  expect_identical_features(serial.extract_features(), sharded.extract_features());
}

TEST(ParallelDeterminism, MetricCountersMatchSerial) {
  // The determinism contract extends to telemetry: every counter and gauge
  // registered without the `sched` flag must read byte-identical for any
  // thread count on the same input (DESIGN.md "Observability").
#if !DNSBS_METRICS_ENABLED
  GTEST_SKIP() << "built with -DDNSBS_METRICS=OFF";
#else
  ThreadCountGuard guard;
  sim::Scenario scenario(sim::jp_ditl_config(71, 0.05));
  scenario.run();
  const auto& records = scenario.authority(0).records();
  ASSERT_GT(records.size(), 4096u);

  const auto run_with = [&](std::size_t threads) {
    util::set_thread_count(threads);
    util::metrics_reset();
    {
      core::SensorConfig sc;
      sc.threads = threads;
      core::Sensor sensor(sc, scenario.plan().as_db(), scenario.plan().geo_db(),
                          scenario.naming());
      sensor.ingest_all(records);
      const auto features = sensor.extract_features();
      EXPECT_FALSE(features.empty());
    }
    return util::metrics_snapshot().deterministic_view();
  };

  const util::MetricsSnapshot serial = run_with(1);
  ASSERT_FALSE(serial.values.empty());
  EXPECT_GT(serial.scalar("dnsbs.dedup.admitted"), 0);
  EXPECT_GT(serial.scalar("dnsbs.features.rows"), 0);

  for (const std::size_t threads : {2, 4}) {
    const util::MetricsSnapshot parallel = run_with(threads);
    ASSERT_EQ(parallel.values.size(), serial.values.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < serial.values.size(); ++i) {
      EXPECT_EQ(parallel.values[i], serial.values[i])
          << serial.values[i].name << " diverged at threads=" << threads;
    }
  }
#endif
}

TEST(ParallelDeterminism, WindowedPipelineOverlapMatchesSequential) {
  const auto run_pipeline = [](bool overlapped) {
    sim::Scenario scenario(sim::b_multi_year_config(421, 4, 0.07));
    labeling::Darknet darknet(labeling::default_darknet_prefixes());
    scenario.engine().set_traffic_observer(&darknet);

    analysis::WindowedPipelineConfig pc;
    pc.sensor.min_queriers = 10;
    pc.forest.n_trees = 30;
    analysis::WindowedPipeline pipeline(pc, scenario.plan().as_db(),
                                        scenario.plan().geo_db(), scenario.naming());

    scenario.run_window(util::SimTime::weeks(0), util::SimTime::weeks(1));
    pipeline.process_window(scenario.authority(0).records(), util::SimTime::weeks(0),
                            util::SimTime::weeks(1));
    scenario.authority(0).clear_records();

    util::Rng rng(5);
    const auto blacklist = labeling::BlacklistSet::build(scenario.population(), {}, rng);
    labeling::Curator curator(scenario, blacklist, darknet, {}, 6);
    pipeline.set_labels(curator.curate(pipeline.observations()[0].features));

    for (int w = 1; w < 4; ++w) {
      scenario.run_window(util::SimTime::weeks(w), util::SimTime::weeks(w + 1));
      if (overlapped) {
        pipeline.enqueue_window(scenario.authority(0).records(), util::SimTime::weeks(w),
                                util::SimTime::weeks(w + 1));
      } else {
        pipeline.process_window(scenario.authority(0).records(), util::SimTime::weeks(w),
                                util::SimTime::weeks(w + 1));
      }
      scenario.authority(0).clear_records();
    }
    pipeline.finish();
    return pipeline.results();
  };

  const auto sequential = run_pipeline(false);
  const auto overlapped = run_pipeline(true);
  ASSERT_EQ(sequential.size(), overlapped.size());
  for (std::size_t w = 0; w < sequential.size(); ++w) {
    EXPECT_EQ(sequential[w].classes, overlapped[w].classes) << "window " << w;
    EXPECT_EQ(sequential[w].footprints, overlapped[w].footprints) << "window " << w;
  }
}

}  // namespace
}  // namespace dnsbs
