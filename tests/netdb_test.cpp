#include <gtest/gtest.h>

#include "netdb/as_db.hpp"
#include "netdb/geo_db.hpp"

namespace dnsbs::netdb {
namespace {

TEST(AsDb, LongestPrefixWins) {
  AsDb db;
  db.add(*net::Prefix::parse("10.0.0.0/8"), 100, "big-isp");
  db.add(*net::Prefix::parse("10.5.0.0/16"), 200, "customer");
  EXPECT_EQ(db.lookup(*net::IPv4Addr::parse("10.5.1.1")), 200u);
  EXPECT_EQ(db.lookup(*net::IPv4Addr::parse("10.6.1.1")), 100u);
  EXPECT_FALSE(db.lookup(*net::IPv4Addr::parse("11.0.0.1")));
  EXPECT_EQ(db.prefix_count(), 2u);
  EXPECT_EQ(db.as_count(), 2u);
}

TEST(AsDb, NameLookup) {
  AsDb db;
  db.add(*net::Prefix::parse("10.0.0.0/8"), 100, "big-isp");
  db.add(*net::Prefix::parse("11.0.0.0/8"), 100);  // no rename on re-add
  ASSERT_NE(db.name_of(100), nullptr);
  EXPECT_EQ(*db.name_of(100), "big-isp");
  EXPECT_EQ(db.name_of(999), nullptr);
}

TEST(GeoDb, LookupAndMiss) {
  GeoDb db;
  db.add(*net::Prefix::parse("10.0.0.0/8"), CountryCode('j', 'p'));
  const auto hit = db.lookup(*net::IPv4Addr::parse("10.1.2.3"));
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit->to_string(), "jp");
  EXPECT_FALSE(db.lookup(*net::IPv4Addr::parse("99.0.0.1")));
}

TEST(CountryCode, ParseAndPack) {
  const auto cc = CountryCode::parse("us");
  ASSERT_TRUE(cc);
  EXPECT_EQ(cc->to_string(), "us");
  EXPECT_FALSE(CountryCode::parse("usa"));
  EXPECT_FALSE(CountryCode::parse(""));
  EXPECT_EQ(CountryCode('a', 'b'), CountryCode('a', 'b'));
  EXPECT_NE(CountryCode('a', 'b').packed(), CountryCode('b', 'a').packed());
}

TEST(WorldCountries, NonEmptyAndWeighted) {
  const auto& countries = world_countries();
  EXPECT_GT(countries.size(), 20u);
  bool has_jp = false;
  for (const auto& c : countries) {
    EXPECT_GT(c.weight, 0.0);
    if (c.code == CountryCode('j', 'p')) {
      has_jp = true;
      EXPECT_EQ(c.region, Region::kAsia);
    }
  }
  EXPECT_TRUE(has_jp);
}

}  // namespace
}  // namespace dnsbs::netdb
