// Equivalence and determinism tests for the ML training fast path
// (DESIGN.md "ML training fast path").  The presorted CART builder, the
// shared-presort forest, the kernel/error-cached SMO, and the index-span
// crossval routing are all performance rewrites that must not move a
// single bit of output; these tests pin each of them against the slow
// formulation they replaced.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <utility>
#include <vector>

#include "ml/cart.hpp"
#include "ml/crossval.hpp"
#include "ml/forest.hpp"
#include "ml/svm.hpp"
#include "util/metrics.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace dnsbs::ml {
namespace {

/// Restores the global thread override even when an assertion fails.
struct ThreadCountGuard {
  ~ThreadCountGuard() { util::set_thread_count(0); }
};

/// Random labeled dataset.  Feature 0 tracks the label (so trees have
/// real structure); even features are quantized onto a coarse grid to
/// force ties — the regime where a presorted builder could diverge from a
/// per-node sort if tie handling were wrong.
Dataset random_data(std::size_t n, std::size_t d, std::size_t classes,
                    std::uint64_t seed) {
  std::vector<std::string> fnames, cnames;
  for (std::size_t f = 0; f < d; ++f) fnames.push_back("f" + std::to_string(f));
  for (std::size_t c = 0; c < classes; ++c) cnames.push_back("c" + std::to_string(c));
  Dataset data(std::move(fnames), std::move(cnames));
  util::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t label = rng.below(classes);
    std::vector<double> row(d);
    for (std::size_t f = 0; f < d; ++f) {
      double v = rng.uniform() + (f == 0 ? static_cast<double>(label) : 0.0);
      if (f % 2 == 0) v = std::floor(v * 8.0) / 8.0;  // coarse grid: many ties
      row[f] = v;
    }
    data.add(std::move(row), label);
  }
  return data;
}

// ---------------------------------------------------------------------------
// Per-node-sort CART oracle: the formulation the presorted builder
// replaced.  Every expression (Gini algebra, threshold midpoint,
// importance accumulation) is written exactly as in src/ml/cart.cpp so
// equality assertions can demand bitwise-identical doubles.
// ---------------------------------------------------------------------------
struct NaiveCart {
  const Dataset& data;
  CartConfig cfg;
  util::Rng rng;
  std::vector<CartTree::Node> nodes;
  std::vector<double> importance;
  std::size_t depth = 0;

  NaiveCart(const Dataset& d, CartConfig c)
      : data(d), cfg(c), rng(c.seed), importance(d.feature_count(), 0.0) {}

  static double gini_from_counts(const std::vector<std::size_t>& counts,
                                 std::size_t total) {
    if (total == 0) return 0.0;
    double sum_sq = 0.0;
    for (const std::size_t c : counts) {
      const double p = static_cast<double>(c) / static_cast<double>(total);
      sum_sq += p * p;
    }
    return 1.0 - sum_sq;
  }

  static std::uint32_t majority(const std::vector<std::size_t>& counts) {
    std::size_t best = 0;
    for (std::size_t k = 1; k < counts.size(); ++k) {
      if (counts[k] > counts[best]) best = k;
    }
    return static_cast<std::uint32_t>(best);
  }

  std::uint32_t build(const std::vector<std::uint32_t>& rows, std::size_t d) {
    depth = std::max(depth, d);
    const std::size_t classes = data.class_count();
    std::vector<std::size_t> counts(classes, 0);
    for (const std::uint32_t r : rows) ++counts[data.label(r)];
    const std::size_t n = rows.size();
    const double node_gini = gini_from_counts(counts, n);

    const auto make_leaf = [&]() {
      CartTree::Node leaf;
      leaf.feature = -1;
      leaf.label = majority(counts);
      nodes.push_back(leaf);
      return static_cast<std::uint32_t>(nodes.size() - 1);
    };
    if (node_gini == 0.0 || n < cfg.min_samples_split || d >= cfg.max_depth) {
      return make_leaf();
    }

    const std::size_t f_total = data.feature_count();
    std::vector<std::size_t> features;
    if (cfg.max_features == 0 || cfg.max_features >= f_total) {
      features.resize(f_total);
      std::iota(features.begin(), features.end(), 0);
    } else {
      features = rng.sample_indices(f_total, cfg.max_features);
    }

    struct Best {
      double decrease = 0.0;
      std::size_t feature = 0;
      double threshold = 0.0;
    } best;
    std::vector<std::size_t> left_counts(classes);

    for (const std::size_t f : features) {
      // The slow path: sort this node's rows by the candidate feature.
      std::vector<std::pair<double, std::uint32_t>> order;
      order.reserve(n);
      for (const std::uint32_t r : rows) order.emplace_back(data.row(r)[f], r);
      std::sort(order.begin(), order.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      if (order.front().first == order.back().first) continue;

      std::fill(left_counts.begin(), left_counts.end(), 0);
      std::size_t n_left = 0;
      double v = order.front().first;
      for (std::size_t i = 0; i + 1 < n; ++i) {
        ++left_counts[data.label(order[i].second)];
        ++n_left;
        const double v_next = order[i + 1].first;
        if (v == v_next) continue;
        const double v_here = v;
        v = v_next;
        const std::size_t n_right = n - n_left;
        if (n_left < cfg.min_samples_leaf || n_right < cfg.min_samples_leaf) continue;

        double left_sq = 0.0, right_sq = 0.0;
        for (std::size_t k = 0; k < classes; ++k) {
          const double cl = static_cast<double>(left_counts[k]);
          const double cr = static_cast<double>(counts[k] - left_counts[k]);
          left_sq += cl * cl;
          right_sq += cr * cr;
        }
        const double gini_left = 1.0 - left_sq / (static_cast<double>(n_left) * n_left);
        const double gini_right =
            1.0 - right_sq / (static_cast<double>(n_right) * n_right);
        const double weighted = (static_cast<double>(n_left) * gini_left +
                                 static_cast<double>(n_right) * gini_right) /
                                static_cast<double>(n);
        const double decrease = node_gini - weighted;
        if (decrease > best.decrease) {
          best = Best{decrease, f, (v_here + v_next) / 2.0};
        }
      }
    }

    if (best.decrease <= 1e-12) return make_leaf();

    std::vector<std::uint32_t> left_rows, right_rows;
    for (const std::uint32_t r : rows) {
      if (data.row(r)[best.feature] <= best.threshold) {
        left_rows.push_back(r);
      } else {
        right_rows.push_back(r);
      }
    }
    importance[best.feature] += static_cast<double>(n) * best.decrease;

    const std::uint32_t self = static_cast<std::uint32_t>(nodes.size());
    nodes.push_back(CartTree::Node{});
    nodes[self].feature = static_cast<std::int32_t>(best.feature);
    nodes[self].threshold = best.threshold;
    const std::uint32_t left = build(left_rows, d + 1);
    const std::uint32_t right = build(right_rows, d + 1);
    nodes[self].left = left;
    nodes[self].right = right;
    return self;
  }
};

void expect_same_tree(const CartTree& tree, const NaiveCart& oracle) {
  ASSERT_EQ(tree.node_count(), oracle.nodes.size());
  EXPECT_EQ(tree.depth(), oracle.depth);
  const auto nodes = tree.tree_nodes();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_EQ(nodes[i].feature, oracle.nodes[i].feature) << "node " << i;
    EXPECT_EQ(nodes[i].threshold, oracle.nodes[i].threshold) << "node " << i;
    EXPECT_EQ(nodes[i].left, oracle.nodes[i].left) << "node " << i;
    EXPECT_EQ(nodes[i].right, oracle.nodes[i].right) << "node " << i;
    EXPECT_EQ(nodes[i].label, oracle.nodes[i].label) << "node " << i;
  }
  const auto& imp = tree.gini_importance();
  ASSERT_EQ(imp.size(), oracle.importance.size());
  for (std::size_t f = 0; f < imp.size(); ++f) {
    EXPECT_EQ(imp[f], oracle.importance[f]) << "importance of feature " << f;
  }
}

TEST(CartOracle, PresortedBuilderMatchesPerNodeSort) {
  for (const std::uint64_t seed : {3u, 17u, 99u}) {
    const Dataset data = random_data(240, 7, 4, seed);

    CartConfig cfg;
    cfg.seed = seed;
    CartTree tree(cfg);
    tree.fit(data);

    NaiveCart oracle(data, cfg);
    std::vector<std::uint32_t> all(data.size());
    std::iota(all.begin(), all.end(), 0);
    oracle.build(all, 0);

    expect_same_tree(tree, oracle);
  }
}

TEST(CartOracle, MatchesUnderFeatureSubsamplingAndLeafLimits) {
  // max_features exercises the RNG stream (the presorted builder must
  // consume it in the same node order); leaf/depth limits exercise every
  // early-out.
  const Dataset data = random_data(300, 9, 5, 7);
  CartConfig cfg;
  cfg.seed = 41;
  cfg.max_features = 3;
  cfg.min_samples_leaf = 4;
  cfg.min_samples_split = 10;
  cfg.max_depth = 9;

  CartTree tree(cfg);
  tree.fit(data);

  NaiveCart oracle(data, cfg);
  std::vector<std::uint32_t> all(data.size());
  std::iota(all.begin(), all.end(), 0);
  oracle.build(all, 0);

  expect_same_tree(tree, oracle);
}

TEST(CartOracle, FitIndicesWithDuplicatesMatchesPerNodeSort) {
  // Bootstrap-style index multiset: the weighted presorted build must
  // treat a row with multiplicity w exactly like w copies of that row.
  const Dataset data = random_data(160, 6, 3, 11);
  util::Rng pick(77);
  std::vector<std::size_t> indices;
  std::vector<std::uint32_t> rows;
  for (std::size_t k = 0; k < data.size(); ++k) {
    const std::size_t r = pick.below(data.size());
    indices.push_back(r);
    rows.push_back(static_cast<std::uint32_t>(r));
  }

  CartConfig cfg;
  cfg.seed = 5;
  cfg.max_features = 2;
  CartTree tree(cfg);
  tree.fit_indices(data, indices);

  NaiveCart oracle(data, cfg);
  oracle.build(rows, 0);

  expect_same_tree(tree, oracle);
}

// ---------------------------------------------------------------------------
// Index-span fast paths vs the copy-the-subset formulation.
// ---------------------------------------------------------------------------

std::vector<std::size_t> half_indices(const Dataset& data, std::uint64_t seed) {
  std::vector<std::size_t> all(data.size());
  std::iota(all.begin(), all.end(), 0);
  util::Rng rng(seed);
  rng.shuffle(all);
  all.resize(data.size() / 2);
  return all;
}

TEST(ForestEquivalence, FitIndicesMatchesSubsetFit) {
  const Dataset data = random_data(260, 8, 4, 23);
  const Dataset probe = random_data(90, 8, 4, 29);
  const auto idx = half_indices(data, 31);

  ForestConfig fc;
  fc.n_trees = 20;
  fc.seed = 9;

  RandomForest by_index(fc);
  by_index.fit_indices(data, idx);
  RandomForest by_copy(fc);
  by_copy.fit(data.subset(idx));

  EXPECT_EQ(by_index.predict_all(probe), by_copy.predict_all(probe));
  const auto imp_a = by_index.gini_importance();
  const auto imp_b = by_copy.gini_importance();
  ASSERT_EQ(imp_a.size(), imp_b.size());
  for (std::size_t f = 0; f < imp_a.size(); ++f) EXPECT_EQ(imp_a[f], imp_b[f]);
}

TEST(SvmEquivalence, FitIndicesMatchesSubsetFit) {
  const Dataset data = random_data(140, 5, 3, 43);
  const Dataset probe = random_data(60, 5, 3, 47);
  const auto idx = half_indices(data, 53);

  SvmConfig sc;
  sc.seed = 3;
  KernelSvm by_index(sc);
  by_index.fit_indices(data, idx);
  KernelSvm by_copy(sc);
  by_copy.fit(data.subset(idx));

  EXPECT_EQ(by_index.support_vector_count(), by_copy.support_vector_count());
  EXPECT_EQ(by_index.predict_all(probe), by_copy.predict_all(probe));
}

TEST(SvmEquivalence, KernelCacheCapacityNeverChangesTheModel) {
  // A 2-row LRU thrashes constantly; capacity 0 caches every row.  Both
  // must produce the same support set and the same predictions — the
  // cache can only change recompute churn, never values.
  const Dataset data = random_data(130, 6, 3, 61);
  const Dataset probe = random_data(70, 6, 3, 67);

  SvmConfig full;
  full.seed = 13;
  full.kernel_cache_rows = 0;
  SvmConfig tiny = full;
  tiny.kernel_cache_rows = 2;

  KernelSvm svm_full(full);
  svm_full.fit(data);
  KernelSvm svm_tiny(tiny);
  svm_tiny.fit(data);

  EXPECT_EQ(svm_full.support_vector_count(), svm_tiny.support_vector_count());
  EXPECT_EQ(svm_full.predict_all(data), svm_tiny.predict_all(data));
  EXPECT_EQ(svm_full.predict_all(probe), svm_tiny.predict_all(probe));
  for (std::size_t i = 0; i < probe.size(); ++i) {
    EXPECT_EQ(svm_full.predict(probe.row(i)), svm_tiny.predict(probe.row(i)));
  }
}

TEST(CrossvalEquivalence, IndexSpanPathMatchesSubsetPath) {
  // A wrapper that deliberately hides the fast-path overrides: crossval
  // then falls back to fit(data.subset(idx)) / per-row predict.  The
  // summary must match the fast path bit for bit.
  class SubsetPathForest final : public Classifier {
   public:
    explicit SubsetPathForest(ForestConfig fc) : inner_(fc) {}
    void fit(const Dataset& train) override { inner_.fit(train); }
    std::size_t predict(std::span<const double> features) const override {
      return inner_.predict(features);
    }
    std::string name() const override { return inner_.name(); }

   private:
    RandomForest inner_;
  };

  const Dataset data = random_data(220, 7, 4, 71);
  CrossValConfig cv;
  cv.repetitions = 6;
  cv.seed = 19;

  const auto make_cfg = [](std::uint64_t seed) {
    ForestConfig fc;
    fc.n_trees = 12;
    fc.seed = seed;
    return fc;
  };
  const MetricSummary fast = cross_validate(
      data,
      [&](std::uint64_t seed) -> std::unique_ptr<Classifier> {
        return std::make_unique<RandomForest>(make_cfg(seed));
      },
      cv);
  const MetricSummary slow = cross_validate(
      data,
      [&](std::uint64_t seed) -> std::unique_ptr<Classifier> {
        return std::make_unique<SubsetPathForest>(make_cfg(seed));
      },
      cv);

  EXPECT_EQ(fast.runs, slow.runs);
  EXPECT_EQ(fast.mean.accuracy, slow.mean.accuracy);
  EXPECT_EQ(fast.mean.precision, slow.mean.precision);
  EXPECT_EQ(fast.mean.recall, slow.mean.recall);
  EXPECT_EQ(fast.mean.f1, slow.mean.f1);
  EXPECT_EQ(fast.stddev.accuracy, slow.stddev.accuracy);
  EXPECT_EQ(fast.stddev.f1, slow.stddev.f1);
}

// ---------------------------------------------------------------------------
// Satellite guards: scaler width check, counter determinism.
// ---------------------------------------------------------------------------

TEST(StandardScalerGuard, TransformRejectsWidthMismatch) {
  const Dataset data = random_data(40, 4, 2, 83);
  StandardScaler scaler;
  scaler.fit(data);
  ASSERT_TRUE(scaler.fitted());
  ASSERT_EQ(scaler.feature_count(), 4u);

  const std::vector<double> narrow = {1.0, 2.0};
  const std::vector<double> wide = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_THROW((void)scaler.transform(narrow), std::invalid_argument);
  EXPECT_THROW((void)scaler.transform(wide), std::invalid_argument);

  std::vector<double> out(3);
  const std::vector<double> exact = {1.0, 2.0, 3.0, 4.0};
  EXPECT_THROW(scaler.transform_into(exact, out), std::invalid_argument);
  EXPECT_NO_THROW((void)scaler.transform(exact));
}

TEST(MlCounters, TrainingCountersMatchSerialAcrossThreadCounts) {
  // dnsbs.ml.split_candidates and the SVM kernel-cache series are
  // registered without the sched flag, so they must read byte-identical
  // for any thread count (DESIGN.md determinism contract).
#if !DNSBS_METRICS_ENABLED
  GTEST_SKIP() << "built with -DDNSBS_METRICS=OFF";
#else
  ThreadCountGuard guard;
  const Dataset tree_data = random_data(200, 6, 3, 91);
  const Dataset svm_data = random_data(90, 5, 3, 97);

  const auto run_with = [&](std::size_t threads) {
    util::set_thread_count(threads);
    util::metrics_reset();
    ForestConfig fc;
    fc.n_trees = 12;
    fc.seed = 2;
    RandomForest rf(fc);
    rf.fit(tree_data);
    (void)rf.predict_all(tree_data);
    SvmConfig sc;
    sc.seed = 2;
    sc.kernel_cache_rows = 8;
    KernelSvm svm(sc);
    svm.fit(svm_data);
    (void)svm.predict_all(svm_data);
    return util::metrics_snapshot().deterministic_view();
  };

  const util::MetricsSnapshot serial = run_with(1);
  EXPECT_GT(serial.scalar("dnsbs.ml.split_candidates"), 0);
  EXPECT_GT(serial.scalar("dnsbs.ml.svm_kernel_cache_hits"), 0);
  EXPECT_GT(serial.scalar("dnsbs.ml.svm_kernel_cache_misses"), 0);

  for (const std::size_t threads : {2, 4}) {
    const util::MetricsSnapshot parallel = run_with(threads);
    ASSERT_EQ(parallel.values.size(), serial.values.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < serial.values.size(); ++i) {
      EXPECT_EQ(parallel.values[i], serial.values[i])
          << serial.values[i].name << " diverged at threads=" << threads;
    }
  }
#endif
}

}  // namespace
}  // namespace dnsbs::ml
