# Runs dnsbs_cli generate + analyze and asserts the pipeline round-trips.
set(LOG ${WORKDIR}/smoke.log)
set(CSV ${WORKDIR}/smoke.csv)
execute_process(
  COMMAND ${CLI} generate --out ${LOG} --scale 0.05 --seed 11
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "generate failed: ${rc}\n${out}\n${err}")
endif()
if(NOT EXISTS ${LOG})
  message(FATAL_ERROR "generate did not write ${LOG}")
endif()
execute_process(
  COMMAND ${CLI} analyze --log ${LOG} --scale 0.05 --seed 11 --csv ${CSV}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "analyze failed: ${rc}\n${out}\n${err}")
endif()
if(NOT out MATCHES "interesting originators total")
  message(FATAL_ERROR "analyze output missing summary:\n${out}")
endif()
if(NOT EXISTS ${CSV})
  message(FATAL_ERROR "analyze did not write ${CSV}")
endif()
file(STRINGS ${CSV} csv_lines LIMIT_COUNT 2)
list(GET csv_lines 0 header)
if(NOT header MATCHES "originator,footprint,home,mail")
  message(FATAL_ERROR "unexpected CSV header: ${header}")
endif()
