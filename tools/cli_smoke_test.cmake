# Runs dnsbs_cli generate + analyze + stats and asserts the pipeline
# round-trips and the observability surfaces emit sane output.
set(LOG ${WORKDIR}/smoke.log)
set(CSV ${WORKDIR}/smoke.csv)
set(METRICS ${WORKDIR}/smoke_metrics.json)
set(PROM ${WORKDIR}/smoke_metrics.prom)
execute_process(
  COMMAND ${CLI} generate --out ${LOG} --scale 0.05 --seed 11
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "generate failed: ${rc}\n${out}\n${err}")
endif()
if(NOT EXISTS ${LOG})
  message(FATAL_ERROR "generate did not write ${LOG}")
endif()
execute_process(
  COMMAND ${CLI} analyze --log ${LOG} --scale 0.05 --seed 11 --csv ${CSV}
          --metrics-out ${METRICS}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "analyze failed: ${rc}\n${out}\n${err}")
endif()
if(NOT out MATCHES "interesting originators total")
  message(FATAL_ERROR "analyze output missing summary:\n${out}")
endif()
if(NOT EXISTS ${CSV})
  message(FATAL_ERROR "analyze did not write ${CSV}")
endif()
file(STRINGS ${CSV} csv_lines LIMIT_COUNT 2)
list(GET csv_lines 0 header)
if(NOT header MATCHES "originator,footprint,home,mail")
  message(FATAL_ERROR "unexpected CSV header: ${header}")
endif()

# Metrics snapshot: valid-looking JSON naming every instrumented layer.
# With -DDNSBS_METRICS=OFF the file is an empty metrics array; the layer
# checks only apply when the build compiled the instrumentation in.
if(NOT EXISTS ${METRICS})
  message(FATAL_ERROR "analyze did not write ${METRICS}")
endif()
file(READ ${METRICS} metrics_json)
if(NOT metrics_json MATCHES "\"metrics\": \\[")
  message(FATAL_ERROR "metrics output is not the expected JSON shape:\n${metrics_json}")
endif()
if(NOT METRICS_OFF)
  foreach(layer parse dedup aggregate cache threadpool ml sensor features)
    if(NOT metrics_json MATCHES "dnsbs\\.${layer}\\.")
      message(FATAL_ERROR "metrics JSON missing layer ${layer}:\n${metrics_json}")
    endif()
  endforeach()
  # At least one parse counter must be non-zero (the log was just read).
  if(NOT metrics_json MATCHES "\"name\": \"dnsbs\\.parse\\.lines\", \"kind\": \"counter\", \"value\": [1-9]")
    message(FATAL_ERROR "dnsbs.parse.lines is zero after a replay:\n${metrics_json}")
  endif()
endif()

# Prometheus exposition via the stats subcommand.
execute_process(
  COMMAND ${CLI} stats --log ${LOG} --scale 0.05 --seed 11 --metrics-out ${PROM}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "stats failed: ${rc}\n${out}\n${err}")
endif()
if(NOT out MATCHES "pipeline metrics")
  message(FATAL_ERROR "stats output missing metrics table:\n${out}")
endif()
if(NOT EXISTS ${PROM})
  message(FATAL_ERROR "stats did not write ${PROM}")
endif()
if(NOT METRICS_OFF)
  file(READ ${PROM} prom_text)
  if(NOT prom_text MATCHES "# TYPE dnsbs_parse_lines counter")
    message(FATAL_ERROR "prometheus output missing TYPE line:\n${prom_text}")
  endif()
endif()
