#!/usr/bin/env bash
# One-command robustness gate: build with ASan+UBSan and run the test
# suite, including the seeded fuzz corpus (ctest label "fuzz").
#
#   tools/check.sh             # full tier-1 suite under ASan+UBSan
#   tools/check.sh -L fuzz     # only the fuzz/fault-injection harness
#   tools/check.sh -L parallel # (use tools/check.sh TSAN=1 ... for TSan)
#   PERF=1 tools/check.sh      # Release build + throughput regression gate
#                              # + metrics-overhead gate (ON within 2% of OFF)
#   METRICS=0 tools/check.sh   # -DDNSBS_METRICS=OFF no-op build + full suite
#   SERVE=1 tools/check.sh     # daemon smoke: replay a generated log into
#                              # dnsbs_cli serve twice — once uninterrupted,
#                              # once checkpoint+kill+restore mid-stream —
#                              # and require byte-identical window summaries
#   FEDERATION=1 tools/check.sh  # federation smoke: 4 export-state shards
#                              # folded by `merge` must match single-sensor
#                              # `analyze` byte-for-byte (exact and sketch
#                              # modes); mismatched configs must refuse
#
# Extra arguments are passed straight to ctest.  Environment knobs:
#   BUILD_DIR  build tree (default: <repo>/build-asan, build-tsan, build-perf)
#   TSAN=1     swap address,undefined for thread (the two are exclusive)
#   PERF=1     skip sanitizers: Release build, run bench_perf_pipeline (the
#              end-to-end and --features scenarios) and bench_ml against the
#              committed BENCH_perf.json / BENCH_perf_features.json /
#              BENCH_ml.json baselines and fail on a >10% throughput
#              regression on any axis; then build with
#              -DDNSBS_METRICS=OFF and fail if the instrumented build's
#              end-to-end throughput is <98% of the no-op build's
#   METRICS=0  build with -DDNSBS_METRICS=OFF (metrics layer compiled to
#              no-ops) and run the full suite; proves call sites need no
#              #ifdefs and the observability tests degrade gracefully
#   JOBS       parallelism (default: nproc)
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="${JOBS:-$(nproc)}"

if [[ "${PERF:-0}" == "1" ]]; then
  BUILD="${BUILD_DIR:-$ROOT/build-perf}"
  GEN=()
  command -v ninja >/dev/null 2>&1 && GEN=(-G Ninja)
  cmake -B "$BUILD" -S "$ROOT" "${GEN[@]}" -DCMAKE_BUILD_TYPE=Release \
    -DDNSBS_METRICS=ON >/dev/null
  cmake --build "$BUILD" -j"$JOBS" --target bench_perf_pipeline --target bench_ml
  # best-of-5 rather than the default 3: the gate compares against a
  # committed baseline, so scheduler noise must shrink, not inflate
  "$BUILD/bench/bench_perf_pipeline" --check "$ROOT/BENCH_perf.json" --repeat 5 "$@"
  # Feature-extraction gate: the columnar + incremental engine's cold /
  # churn / warm axes against BENCH_perf_features.json, same >10% rule.
  "$BUILD/bench/bench_perf_pipeline" --features \
    --check "$ROOT/BENCH_perf_features.json" --repeat 5 "$@"
  # ML training gate: same >10% rule against the committed training/predict
  # throughput baseline (BENCH_ml.json, written by bench_ml --json).
  "$BUILD/bench/bench_ml" --check "$ROOT/BENCH_ml.json" --repeat 5 "$@"
  # Federated-merge gate: exact + sketch self-exec children over the
  # 1M+-originator scenario, checked against BENCH_perf_merge.json (merge
  # throughput both modes, plus the >=4x sketch RSS advantage — the ratio
  # is also a hard floor inside the bench itself).
  "$BUILD/bench/bench_perf_pipeline" --merge --repeat 3 \
    --check "$ROOT/BENCH_perf_merge.json" "$@"

  # Metrics-overhead gate: the instrumented build must stay within 2% of a
  # -DDNSBS_METRICS=OFF no-op build on the end-to-end axis (the budget in
  # DESIGN.md "Observability").  Interleaved best-of runs per build so a
  # noisy-neighbor window hits both sides, not just one.
  BUILD_OFF="$ROOT/build-perf-noop"
  cmake -B "$BUILD_OFF" -S "$ROOT" "${GEN[@]}" -DCMAKE_BUILD_TYPE=Release \
    -DDNSBS_METRICS=OFF >/dev/null
  cmake --build "$BUILD_OFF" -j"$JOBS" --target bench_perf_pipeline
  rate_of() {  # rate_of BINARY JSON_PATH: end-to-end rec/s, best-of-5
    "$1" --json "$2" --repeat 5 >/dev/null
    awk -F': ' '/"end_to_end_records_per_s"/ {gsub(/,/,"",$2); print $2; exit}' "$2"
  }
  on_rate=0 off_rate=0
  for round in 1 2; do
    r=$(rate_of "$BUILD/bench/bench_perf_pipeline" "$BUILD/bench_overhead_on.json")
    on_rate=$(awk -v a="$on_rate" -v b="$r" 'BEGIN { print (b > a) ? b : a }')
    r=$(rate_of "$BUILD_OFF/bench/bench_perf_pipeline" "$BUILD_OFF/bench_overhead_off.json")
    off_rate=$(awk -v a="$off_rate" -v b="$r" 'BEGIN { print (b > a) ? b : a }')
  done
  awk -v on="$on_rate" -v off="$off_rate" 'BEGIN {
    ratio = off > 0 ? on / off : 1;
    printf "metrics overhead: ON %.0f rec/s vs OFF %.0f rec/s (%.3fx)\n", on, off, ratio;
    if (ratio < 0.98) { print "metrics overhead gate FAILED: >2% slowdown"; exit 1 }
    print "metrics overhead gate passed (<2%)";
  }'
  exit 0
fi

if [[ "${METRICS:-1}" == "0" ]]; then
  BUILD="${BUILD_DIR:-$ROOT/build-metrics-off}"
  GEN=()
  command -v ninja >/dev/null 2>&1 && GEN=(-G Ninja)
  cmake -B "$BUILD" -S "$ROOT" "${GEN[@]}" -DDNSBS_METRICS=OFF >/dev/null
  cmake --build "$BUILD" -j"$JOBS"
  exec ctest --test-dir "$BUILD" --output-on-failure -j"$JOBS" "$@"
fi

if [[ "${SERVE:-0}" == "1" ]]; then
  # Daemon smoke: the checkpoint/restart byte-identity contract, end to
  # end through real sockets.  One generated query log is replayed into
  # dnsbs_cli serve twice — run A uninterrupted, run B checkpointed,
  # SHUTDOWN mid-stream, restarted with --restore, then fed the rest —
  # and the per-window summary files must be byte-identical.
  BUILD="${BUILD_DIR:-$ROOT/build-serve}"
  GEN=()
  command -v ninja >/dev/null 2>&1 && GEN=(-G Ninja)
  cmake -B "$BUILD" -S "$ROOT" "${GEN[@]}" -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build "$BUILD" -j"$JOBS" --target dnsbs_cli
  CLI="$BUILD/tools/dnsbs_cli"
  WORK="$(mktemp -d)"
  # `|| true`: with set -e an empty `jobs -p` makes kill fail and abort
  # the trap, which would both skip cleanup and turn a pass into exit 2.
  trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$WORK"' EXIT

  WORLD=(--scenario jp --scale 0.05 --seed 7)
  SERVE_ARGS=("${WORLD[@]}" --stamped --tcp-port 0 --window 3600 --min-queriers 5)
  "$CLI" generate "${WORLD[@]}" --out "$WORK/query.log"
  half=$(( $(wc -l < "$WORK/query.log") / 2 ))
  head -n "$half" "$WORK/query.log" > "$WORK/first.log"
  tail -n "+$((half + 1))" "$WORK/query.log" > "$WORK/second.log"

  start_daemon() {  # start_daemon WINDOWS_OUT EXTRA_ARGS...
    local windows_out="$1"; shift
    rm -f "$WORK/ready"
    "$CLI" serve "${SERVE_ARGS[@]}" --windows-out "$windows_out" \
      --checkpoint "$WORK/ckpt.bin" --ready-file "$WORK/ready" "$@" &
    DAEMON_PID=$!
    for _ in $(seq 300); do [[ -s "$WORK/ready" ]] && break; sleep 0.1; done  # world build takes a while
    [[ -s "$WORK/ready" ]] || { echo "daemon did not come up"; exit 1; }
    TCP_PORT=$(sed 's/.*tcp=\([0-9]*\).*/\1/' "$WORK/ready")
    STATUS_PORT=$(sed 's/.*status=\([0-9]*\).*/\1/' "$WORK/ready")
  }
  ctl() { "$CLI" ctl --to "127.0.0.1:$STATUS_PORT" --cmd "$1" >/dev/null; }

  echo "serve smoke: run A (uninterrupted)"
  start_daemon "$WORK/windows_a.txt"
  "$CLI" sendlog --log "$WORK/query.log" --to "127.0.0.1:$TCP_PORT" --tcp
  ctl flush; ctl shutdown; wait "$DAEMON_PID"

  echo "serve smoke: run B (checkpoint + restart mid-stream)"
  start_daemon "$WORK/windows_b.txt"
  "$CLI" sendlog --log "$WORK/first.log" --to "127.0.0.1:$TCP_PORT" --tcp
  ctl checkpoint; ctl shutdown; wait "$DAEMON_PID"
  start_daemon "$WORK/windows_b.txt" --restore
  "$CLI" sendlog --log "$WORK/second.log" --to "127.0.0.1:$TCP_PORT" --tcp
  ctl flush; ctl shutdown; wait "$DAEMON_PID"

  diff "$WORK/windows_a.txt" "$WORK/windows_b.txt" || {
    echo "serve smoke FAILED: restarted run diverged from uninterrupted run"
    exit 1
  }
  echo "serve smoke passed: $(grep -c '^window ' "$WORK/windows_a.txt") windows byte-identical across restart"
  exit 0
fi

if [[ "${FEDERATION:-0}" == "1" ]]; then
  # Federation smoke: the N-sensor merge contract end to end through the
  # CLI.  Four originator-disjoint export-state shards folded by `merge`
  # must reproduce the single-sensor `analyze` byte-for-byte — in exact
  # mode AND in sketch mode (disjoint shards move per-originator state
  # wholesale) — and a coordinator configured differently must refuse the
  # state files.
  BUILD="${BUILD_DIR:-$ROOT/build-federation}"
  GEN=()
  command -v ninja >/dev/null 2>&1 && GEN=(-G Ninja)
  cmake -B "$BUILD" -S "$ROOT" "${GEN[@]}" -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build "$BUILD" -j"$JOBS" --target dnsbs_cli
  CLI="$BUILD/tools/dnsbs_cli"
  WORK="$(mktemp -d)"
  trap 'rm -rf "$WORK"' EXIT

  WORLD=(--scenario jp --scale 0.05 --seed 7)
  "$CLI" generate "${WORLD[@]}" --out "$WORK/query.log"

  for MODE in exact sketch; do
    KNOBS=(--querier-state "$MODE")
    [[ "$MODE" == "sketch" ]] && KNOBS+=(--sketch-threshold 8)
    echo "federation smoke: $MODE mode, 4 shards"
    "$CLI" analyze "${WORLD[@]}" "${KNOBS[@]}" --log "$WORK/query.log" \
      --csv "$WORK/single_$MODE.csv" > "$WORK/single_$MODE.txt"
    STATES=()
    for i in 0 1 2 3; do
      "$CLI" export-state "${WORLD[@]}" "${KNOBS[@]}" --log "$WORK/query.log" \
        --shards 4 --shard-index "$i" --state-out "$WORK/shard_${MODE}_$i.state"
      STATES+=(--state "$WORK/shard_${MODE}_$i.state")
    done
    "$CLI" merge "${WORLD[@]}" "${KNOBS[@]}" "${STATES[@]}" \
      --csv "$WORK/fed_$MODE.csv" > "$WORK/fed_$MODE.txt"
    diff "$WORK/single_$MODE.txt" "$WORK/fed_$MODE.txt" || {
      echo "federation smoke FAILED: $MODE merge report diverged from single sensor"
      exit 1
    }
    diff "$WORK/single_$MODE.csv" "$WORK/fed_$MODE.csv" || {
      echo "federation smoke FAILED: $MODE merge CSV diverged from single sensor"
      exit 1
    }
  done

  # Config-mismatch refusal: an exact coordinator must reject sketch state.
  if "$CLI" merge "${WORLD[@]}" --state "$WORK/shard_sketch_0.state" \
      > /dev/null 2>&1; then
    echo "federation smoke FAILED: exact coordinator accepted sketch state"
    exit 1
  fi
  echo "federation smoke passed: exact + sketch merges byte-identical, mismatch refused"
  exit 0
fi

if [[ "${TSAN:-0}" == "1" ]]; then
  SANITIZE="thread"
  BUILD="${BUILD_DIR:-$ROOT/build-tsan}"
else
  SANITIZE="address,undefined"
  BUILD="${BUILD_DIR:-$ROOT/build-asan}"
fi

# halt_on_error so a sanitizer report fails the test instead of scrolling
# past; detect_leaks stays on by default under ASan.
export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:strict_string_checks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"

GEN=()
command -v ninja >/dev/null 2>&1 && GEN=(-G Ninja)

cmake -B "$BUILD" -S "$ROOT" "${GEN[@]}" -DDNSBS_SANITIZE="$SANITIZE" >/dev/null
cmake --build "$BUILD" -j"$JOBS"
ctest --test-dir "$BUILD" --output-on-failure -j"$JOBS" "$@"
