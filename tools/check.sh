#!/usr/bin/env bash
# One-command robustness gate: build with ASan+UBSan and run the test
# suite, including the seeded fuzz corpus (ctest label "fuzz").
#
#   tools/check.sh             # full tier-1 suite under ASan+UBSan
#   tools/check.sh -L fuzz     # only the fuzz/fault-injection harness
#   tools/check.sh -L parallel # (use tools/check.sh TSAN=1 ... for TSan)
#   PERF=1 tools/check.sh      # Release build + throughput regression gate
#
# Extra arguments are passed straight to ctest.  Environment knobs:
#   BUILD_DIR  build tree (default: <repo>/build-asan, build-tsan, build-perf)
#   TSAN=1     swap address,undefined for thread (the two are exclusive)
#   PERF=1     skip sanitizers: Release build, run bench_perf_pipeline
#              against the committed BENCH_perf.json baseline and fail on a
#              >10% throughput regression on any axis
#   JOBS       parallelism (default: nproc)
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="${JOBS:-$(nproc)}"

if [[ "${PERF:-0}" == "1" ]]; then
  BUILD="${BUILD_DIR:-$ROOT/build-perf}"
  GEN=()
  command -v ninja >/dev/null 2>&1 && GEN=(-G Ninja)
  cmake -B "$BUILD" -S "$ROOT" "${GEN[@]}" -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build "$BUILD" -j"$JOBS" --target bench_perf_pipeline
  exec "$BUILD/bench/bench_perf_pipeline" --check "$ROOT/BENCH_perf.json" "$@"
fi

if [[ "${TSAN:-0}" == "1" ]]; then
  SANITIZE="thread"
  BUILD="${BUILD_DIR:-$ROOT/build-tsan}"
else
  SANITIZE="address,undefined"
  BUILD="${BUILD_DIR:-$ROOT/build-asan}"
fi

# halt_on_error so a sanitizer report fails the test instead of scrolling
# past; detect_leaks stays on by default under ASan.
export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:strict_string_checks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"

GEN=()
command -v ninja >/dev/null 2>&1 && GEN=(-G Ninja)

cmake -B "$BUILD" -S "$ROOT" "${GEN[@]}" -DDNSBS_SANITIZE="$SANITIZE" >/dev/null
cmake --build "$BUILD" -j"$JOBS"
ctest --test-dir "$BUILD" --output-on-failure -j"$JOBS" "$@"
