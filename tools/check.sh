#!/usr/bin/env bash
# One-command robustness gate: build with ASan+UBSan and run the test
# suite, including the seeded fuzz corpus (ctest label "fuzz").
#
#   tools/check.sh             # full tier-1 suite under ASan+UBSan
#   tools/check.sh -L fuzz     # only the fuzz/fault-injection harness
#   tools/check.sh -L parallel # (use tools/check.sh TSAN=1 ... for TSan)
#   PERF=1 tools/check.sh      # Release build + throughput regression gate
#                              # + metrics-overhead gate (ON within 2% of OFF)
#   METRICS=0 tools/check.sh   # -DDNSBS_METRICS=OFF no-op build + full suite
#   SERVE=1 tools/check.sh     # daemon smoke: replay a generated log into
#                              # dnsbs_cli serve three times — uninterrupted,
#                              # --async-windows off, and checkpoint+kill+
#                              # restore mid-stream — and require
#                              # byte-identical window summaries across all
#                              # three
#   FEDERATION=1 tools/check.sh  # federation smoke: 4 export-state shards
#                              # folded by `merge` must match single-sensor
#                              # `analyze` byte-for-byte (exact and sketch
#                              # modes); mismatched configs must refuse
#   OBS=1 tools/check.sh       # observability smoke: boot the daemon, scrape
#                              # GET /metrics and require the deterministic
#                              # series to match the daemon's --metrics-out
#                              # .prom byte-for-byte, capture + validate a
#                              # Chrome trace, then re-run the metrics
#                              # overhead gate (instrumented >= 98% of no-op)
#
# Extra arguments are passed straight to ctest.  Environment knobs:
#   BUILD_DIR  build tree (default: <repo>/build-asan, build-tsan, build-perf)
#   TSAN=1     swap address,undefined for thread (the two are exclusive)
#   PERF=1     skip sanitizers: Release build, run bench_perf_pipeline (the
#              end-to-end, --features, --merge and --stream scenarios) and
#              bench_ml against the committed BENCH_perf.json /
#              BENCH_perf_features.json / BENCH_perf_merge.json /
#              BENCH_perf_stream.json / BENCH_ml.json baselines and fail on
#              a >10% throughput regression on any axis; then build with
#              -DDNSBS_METRICS=OFF and fail if the instrumented build's
#              end-to-end throughput is <98% of the no-op build's
#   METRICS=0  build with -DDNSBS_METRICS=OFF (metrics layer compiled to
#              no-ops) and run the full suite; proves call sites need no
#              #ifdefs and the observability tests degrade gracefully
#   JOBS       parallelism (default: nproc)
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="${JOBS:-$(nproc)}"

if [[ "${PERF:-0}" == "1" ]]; then
  BUILD="${BUILD_DIR:-$ROOT/build-perf}"
  GEN=()
  command -v ninja >/dev/null 2>&1 && GEN=(-G Ninja)
  cmake -B "$BUILD" -S "$ROOT" "${GEN[@]}" -DCMAKE_BUILD_TYPE=Release \
    -DDNSBS_METRICS=ON >/dev/null
  cmake --build "$BUILD" -j"$JOBS" --target bench_perf_pipeline --target bench_ml
  # best-of-5 rather than the default 3: the gate compares against a
  # committed baseline, so scheduler noise must shrink, not inflate
  "$BUILD/bench/bench_perf_pipeline" --check "$ROOT/BENCH_perf.json" --repeat 5 "$@"
  # Feature-extraction gate: the columnar + incremental engine's cold /
  # churn / warm axes against BENCH_perf_features.json, same >10% rule.
  "$BUILD/bench/bench_perf_pipeline" --features \
    --check "$ROOT/BENCH_perf_features.json" --repeat 5 "$@"
  # ML training gate: same >10% rule against the committed training/predict
  # throughput baseline (BENCH_ml.json, written by bench_ml --json).
  "$BUILD/bench/bench_ml" --check "$ROOT/BENCH_ml.json" --repeat 5 "$@"
  # Federated-merge gate: exact + sketch self-exec children over the
  # 1M+-originator scenario, checked against BENCH_perf_merge.json (merge
  # throughput both modes, plus the >=4x sketch RSS advantage — the ratio
  # is also a hard floor inside the bench itself).
  "$BUILD/bench/bench_perf_pipeline" --merge --repeat 3 \
    --check "$ROOT/BENCH_perf_merge.json" "$@"
  # Async-window-pipeline gate: streaming-driver intake throughput (whole
  # stream + boundary region) sync vs async against BENCH_perf_stream.json;
  # the >=2x async boundary-speedup acceptance floor and the sync/async
  # per-window metric byte-identity check are hard failures inside the
  # bench itself.
  "$BUILD/bench/bench_perf_pipeline" --stream --repeat 3 \
    --check "$ROOT/BENCH_perf_stream.json" "$@"

  # Metrics-overhead gate: the instrumented build must stay within 2% of a
  # -DDNSBS_METRICS=OFF no-op build on the end-to-end axis (the budget in
  # DESIGN.md "Observability").  Interleaved best-of runs per build so a
  # noisy-neighbor window hits both sides, not just one.
  BUILD_OFF="$ROOT/build-perf-noop"
  cmake -B "$BUILD_OFF" -S "$ROOT" "${GEN[@]}" -DCMAKE_BUILD_TYPE=Release \
    -DDNSBS_METRICS=OFF >/dev/null
  cmake --build "$BUILD_OFF" -j"$JOBS" --target bench_perf_pipeline
  rate_of() {  # rate_of BINARY JSON_PATH: end-to-end rec/s, best-of-5
    "$1" --json "$2" --repeat 5 >/dev/null
    awk -F': ' '/"end_to_end_records_per_s"/ {gsub(/,/,"",$2); print $2; exit}' "$2"
  }
  on_rate=0 off_rate=0
  for round in 1 2; do
    r=$(rate_of "$BUILD/bench/bench_perf_pipeline" "$BUILD/bench_overhead_on.json")
    on_rate=$(awk -v a="$on_rate" -v b="$r" 'BEGIN { print (b > a) ? b : a }')
    r=$(rate_of "$BUILD_OFF/bench/bench_perf_pipeline" "$BUILD_OFF/bench_overhead_off.json")
    off_rate=$(awk -v a="$off_rate" -v b="$r" 'BEGIN { print (b > a) ? b : a }')
  done
  awk -v on="$on_rate" -v off="$off_rate" 'BEGIN {
    ratio = off > 0 ? on / off : 1;
    printf "metrics overhead: ON %.0f rec/s vs OFF %.0f rec/s (%.3fx)\n", on, off, ratio;
    if (ratio < 0.98) { print "metrics overhead gate FAILED: >2% slowdown"; exit 1 }
    print "metrics overhead gate passed (<2%)";
  }'
  exit 0
fi

if [[ "${METRICS:-1}" == "0" ]]; then
  BUILD="${BUILD_DIR:-$ROOT/build-metrics-off}"
  GEN=()
  command -v ninja >/dev/null 2>&1 && GEN=(-G Ninja)
  cmake -B "$BUILD" -S "$ROOT" "${GEN[@]}" -DDNSBS_METRICS=OFF >/dev/null
  cmake --build "$BUILD" -j"$JOBS"
  exec ctest --test-dir "$BUILD" --output-on-failure -j"$JOBS" "$@"
fi

if [[ "${SERVE:-0}" == "1" ]]; then
  # Daemon smoke: the checkpoint/restart byte-identity contract, end to
  # end through real sockets.  One generated query log is replayed into
  # dnsbs_cli serve twice — run A uninterrupted, run B checkpointed,
  # SHUTDOWN mid-stream, restarted with --restore, then fed the rest —
  # and the per-window summary files must be byte-identical.
  BUILD="${BUILD_DIR:-$ROOT/build-serve}"
  GEN=()
  command -v ninja >/dev/null 2>&1 && GEN=(-G Ninja)
  cmake -B "$BUILD" -S "$ROOT" "${GEN[@]}" -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build "$BUILD" -j"$JOBS" --target dnsbs_cli
  CLI="$BUILD/tools/dnsbs_cli"
  WORK="$(mktemp -d)"
  # `|| true`: with set -e an empty `jobs -p` makes kill fail and abort
  # the trap, which would both skip cleanup and turn a pass into exit 2.
  trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$WORK"' EXIT

  WORLD=(--scenario jp --scale 0.05 --seed 7)
  SERVE_ARGS=("${WORLD[@]}" --stamped --tcp-port 0 --window 3600 --min-queriers 5)
  "$CLI" generate "${WORLD[@]}" --out "$WORK/query.log"
  half=$(( $(wc -l < "$WORK/query.log") / 2 ))
  head -n "$half" "$WORK/query.log" > "$WORK/first.log"
  tail -n "+$((half + 1))" "$WORK/query.log" > "$WORK/second.log"

  start_daemon() {  # start_daemon WINDOWS_OUT EXTRA_ARGS...
    local windows_out="$1"; shift
    rm -f "$WORK/ready"
    "$CLI" serve "${SERVE_ARGS[@]}" --windows-out "$windows_out" \
      --checkpoint "$WORK/ckpt.bin" --ready-file "$WORK/ready" "$@" &
    DAEMON_PID=$!
    for _ in $(seq 300); do [[ -s "$WORK/ready" ]] && break; sleep 0.1; done  # world build takes a while
    [[ -s "$WORK/ready" ]] || { echo "daemon did not come up"; exit 1; }
    TCP_PORT=$(sed 's/.*tcp=\([0-9]*\).*/\1/' "$WORK/ready")
    STATUS_PORT=$(sed 's/.*status=\([0-9]*\).*/\1/' "$WORK/ready")
  }
  ctl() { "$CLI" ctl --to "127.0.0.1:$STATUS_PORT" --cmd "$1" >/dev/null; }
  ctl_get() { "$CLI" ctl --to "127.0.0.1:$STATUS_PORT" --cmd "$1"; }
  # Drop the sched-shaped objects (intake queue watermarks) that may
  # legitimately differ between an uninterrupted and a restarted run.
  strip_sched() { sed 's/,"sched":{[^}]*}//g'; }

  echo "serve smoke: run A (uninterrupted)"
  start_daemon "$WORK/windows_a.txt"
  "$CLI" sendlog --log "$WORK/query.log" --to "127.0.0.1:$TCP_PORT" --tcp
  ctl flush
  ctl_get history > "$WORK/history_a.json"
  ctl shutdown; wait "$DAEMON_PID"

  echo "serve smoke: run C (--async-windows off: sync close path)"
  start_daemon "$WORK/windows_c.txt" --async-windows off
  "$CLI" sendlog --log "$WORK/query.log" --to "127.0.0.1:$TCP_PORT" --tcp
  ctl flush
  ctl_get history > "$WORK/history_c.json"
  ctl shutdown; wait "$DAEMON_PID"

  echo "serve smoke: run B (checkpoint + restart mid-stream)"
  start_daemon "$WORK/windows_b.txt"
  "$CLI" sendlog --log "$WORK/first.log" --to "127.0.0.1:$TCP_PORT" --tcp
  ctl checkpoint
  ctl_get history > "$WORK/history_prekill.json"
  ctl shutdown; wait "$DAEMON_PID"
  start_daemon "$WORK/windows_b.txt" --restore
  ctl_get history > "$WORK/history_restored.json"
  "$CLI" sendlog --log "$WORK/second.log" --to "127.0.0.1:$TCP_PORT" --tcp
  ctl flush
  ctl_get history > "$WORK/history_b.json"
  ctl shutdown; wait "$DAEMON_PID"

  diff "$WORK/windows_a.txt" "$WORK/windows_b.txt" || {
    echo "serve smoke FAILED: restarted run diverged from uninterrupted run"
    exit 1
  }
  # The async window pipeline is an execution strategy, not an output
  # change: the same replay with --async-windows off must produce the
  # byte-identical summary file and (sched stripped) HISTORY.
  diff "$WORK/windows_a.txt" "$WORK/windows_c.txt" || {
    echo "serve smoke FAILED: --async-windows off diverged from async run"
    exit 1
  }
  diff <(strip_sched < "$WORK/history_a.json") \
       <(strip_sched < "$WORK/history_c.json") || {
    echo "serve smoke FAILED: sync-mode HISTORY diverged from async run"
    exit 1
  }
  # The checkpoint carries the telemetry ring at full fidelity: a restored
  # daemon must answer HISTORY exactly (sched fields included) as the
  # killed one did.
  diff "$WORK/history_prekill.json" "$WORK/history_restored.json" || {
    echo "serve smoke FAILED: HISTORY changed across checkpoint+restore"
    exit 1
  }
  # And the completed histories agree between runs once the
  # scheduling-shaped fields are stripped.
  diff <(strip_sched < "$WORK/history_a.json") \
       <(strip_sched < "$WORK/history_b.json") || {
    echo "serve smoke FAILED: restarted HISTORY diverged from uninterrupted run"
    exit 1
  }
  echo "serve smoke passed: $(grep -c '^window ' "$WORK/windows_a.txt") windows + HISTORY byte-identical across restart"
  exit 0
fi

if [[ "${FEDERATION:-0}" == "1" ]]; then
  # Federation smoke: the N-sensor merge contract end to end through the
  # CLI.  Four originator-disjoint export-state shards folded by `merge`
  # must reproduce the single-sensor `analyze` byte-for-byte — in exact
  # mode AND in sketch mode (disjoint shards move per-originator state
  # wholesale) — and a coordinator configured differently must refuse the
  # state files.
  BUILD="${BUILD_DIR:-$ROOT/build-federation}"
  GEN=()
  command -v ninja >/dev/null 2>&1 && GEN=(-G Ninja)
  cmake -B "$BUILD" -S "$ROOT" "${GEN[@]}" -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build "$BUILD" -j"$JOBS" --target dnsbs_cli
  CLI="$BUILD/tools/dnsbs_cli"
  WORK="$(mktemp -d)"
  trap 'rm -rf "$WORK"' EXIT

  WORLD=(--scenario jp --scale 0.05 --seed 7)
  "$CLI" generate "${WORLD[@]}" --out "$WORK/query.log"

  for MODE in exact sketch; do
    KNOBS=(--querier-state "$MODE")
    [[ "$MODE" == "sketch" ]] && KNOBS+=(--sketch-threshold 8)
    echo "federation smoke: $MODE mode, 4 shards"
    "$CLI" analyze "${WORLD[@]}" "${KNOBS[@]}" --log "$WORK/query.log" \
      --csv "$WORK/single_$MODE.csv" > "$WORK/single_$MODE.txt"
    STATES=()
    for i in 0 1 2 3; do
      "$CLI" export-state "${WORLD[@]}" "${KNOBS[@]}" --log "$WORK/query.log" \
        --shards 4 --shard-index "$i" --state-out "$WORK/shard_${MODE}_$i.state"
      STATES+=(--state "$WORK/shard_${MODE}_$i.state")
    done
    "$CLI" merge "${WORLD[@]}" "${KNOBS[@]}" "${STATES[@]}" \
      --csv "$WORK/fed_$MODE.csv" > "$WORK/fed_$MODE.txt"
    diff "$WORK/single_$MODE.txt" "$WORK/fed_$MODE.txt" || {
      echo "federation smoke FAILED: $MODE merge report diverged from single sensor"
      exit 1
    }
    diff "$WORK/single_$MODE.csv" "$WORK/fed_$MODE.csv" || {
      echo "federation smoke FAILED: $MODE merge CSV diverged from single sensor"
      exit 1
    }
  done

  # Config-mismatch refusal: an exact coordinator must reject sketch state.
  if "$CLI" merge "${WORLD[@]}" --state "$WORK/shard_sketch_0.state" \
      > /dev/null 2>&1; then
    echo "federation smoke FAILED: exact coordinator accepted sketch state"
    exit 1
  fi
  echo "federation smoke passed: exact + sketch merges byte-identical, mismatch refused"
  exit 0
fi

if [[ "${OBS:-0}" == "1" ]]; then
  # Observability smoke: the live telemetry plane end to end.
  #   1. GET /metrics on a running daemon must carry the same deterministic
  #      series (sched-marked and histogram blocks stripped) as the .prom
  #      file the same process writes via --metrics-out at exit.
  #   2. A TRACE capture dumped at shutdown must be a structurally valid
  #      Chrome trace (balanced B/E, loadable JSON when python3 exists).
  #   3. The metrics-overhead budget still holds with the telemetry plane
  #      compiled in: instrumented end-to-end throughput >= 98% of a
  #      -DDNSBS_METRICS=OFF build.
  BUILD="${BUILD_DIR:-$ROOT/build-serve}"
  GEN=()
  command -v ninja >/dev/null 2>&1 && GEN=(-G Ninja)
  cmake -B "$BUILD" -S "$ROOT" "${GEN[@]}" -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build "$BUILD" -j"$JOBS" --target dnsbs_cli
  CLI="$BUILD/tools/dnsbs_cli"
  WORK="$(mktemp -d)"
  trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$WORK"' EXIT

  WORLD=(--scenario jp --scale 0.05 --seed 7)
  "$CLI" generate "${WORLD[@]}" --out "$WORK/query.log"

  rm -f "$WORK/ready"
  "$CLI" serve "${WORLD[@]}" --stamped --tcp-port 0 --window 3600 \
    --min-queriers 5 --windows-out "$WORK/windows.txt" \
    --metrics-out "$WORK/exit.prom" --trace-out "$WORK/trace.json" \
    --ready-file "$WORK/ready" &
  DAEMON_PID=$!
  for _ in $(seq 300); do [[ -s "$WORK/ready" ]] && break; sleep 0.1; done
  [[ -s "$WORK/ready" ]] || { echo "daemon did not come up"; exit 1; }
  TCP_PORT=$(sed 's/.*tcp=\([0-9]*\).*/\1/' "$WORK/ready")
  STATUS_PORT=$(sed 's/.*status=\([0-9]*\).*/\1/' "$WORK/ready")
  ctl() { "$CLI" ctl --to "127.0.0.1:$STATUS_PORT" --cmd "$1" >/dev/null; }

  ctl "trace 3600"  # long deadline: the dump happens at SHUTDOWN
  "$CLI" sendlog --log "$WORK/query.log" --to "127.0.0.1:$TCP_PORT" --tcp
  ctl flush

  # Scrape /metrics over plain HTTP/1.1 (no curl dependency): strip the
  # response headers, normalize CRLF.
  exec 3<>"/dev/tcp/127.0.0.1/$STATUS_PORT"
  printf 'GET /metrics HTTP/1.1\r\nHost: check\r\nConnection: close\r\n\r\n' >&3
  tr -d '\r' <&3 | sed '1,/^$/d' > "$WORK/scrape.prom"
  exec 3>&- 3<&-
  grep -q '^# TYPE ' "$WORK/scrape.prom" || {
    echo "observability smoke FAILED: /metrics scrape looks empty"
    exit 1
  }

  ctl shutdown; wait "$DAEMON_PID"

  # Deterministic view: drop histogram blocks and series flagged with the
  # machine-readable "# SCHED <name>" marker (same stripping rule as
  # MetricsSnapshot::deterministic_view).
  det_view() {
    awk '
      /^# TYPE /  { held = $0; skip = ($4 == "histogram"); next }
      /^# SCHED / { skip = 1; held = ""; next }
      {
        if (skip) next
        if (held != "") { print held; held = "" }
        print
      }' "$1"
  }
  det_view "$WORK/scrape.prom" > "$WORK/scrape_det.prom"
  det_view "$WORK/exit.prom" > "$WORK/exit_det.prom"
  diff "$WORK/scrape_det.prom" "$WORK/exit_det.prom" || {
    echo "observability smoke FAILED: /metrics deterministic series diverged from --metrics-out"
    exit 1
  }

  [[ -s "$WORK/trace.json" ]] || {
    echo "observability smoke FAILED: no trace written at shutdown"
    exit 1
  }
  if command -v python3 >/dev/null 2>&1; then
    python3 - "$WORK/trace.json" <<'PY'
import collections, json, sys
with open(sys.argv[1]) as fh:
    trace = json.load(fh)
depth = collections.Counter()
for event in trace["traceEvents"]:
    if event["ph"] == "B":
        depth[event["tid"]] += 1
    elif event["ph"] == "E":
        depth[event["tid"]] -= 1
        assert depth[event["tid"]] >= 0, f"orphan E on tid {event['tid']}"
assert not any(depth.values()), f"unbalanced spans: {dict(depth)}"
assert trace["traceEvents"], "empty trace"
print(f"trace OK: {len(trace['traceEvents'])} events, "
      f"{len({e['tid'] for e in trace['traceEvents']})} threads")
PY
  else
    b=$(grep -c '"ph":"B"' "$WORK/trace.json")
    e=$(grep -c '"ph":"E"' "$WORK/trace.json")
    [[ "$b" == "$e" && "$b" -gt 0 ]] || {
      echo "observability smoke FAILED: trace B/E unbalanced ($b vs $e)"
      exit 1
    }
    echo "trace OK: $b balanced span pairs (python3 unavailable, grep check)"
  fi
  echo "observability smoke passed: scrape matched --metrics-out, trace valid"

  # Overhead budget with the telemetry plane active, same interleaved
  # best-of discipline as the PERF gate.
  BUILD_ON="$ROOT/build-perf"
  BUILD_OFF="$ROOT/build-perf-noop"
  cmake -B "$BUILD_ON" -S "$ROOT" "${GEN[@]}" -DCMAKE_BUILD_TYPE=Release \
    -DDNSBS_METRICS=ON >/dev/null
  cmake --build "$BUILD_ON" -j"$JOBS" --target bench_perf_pipeline
  cmake -B "$BUILD_OFF" -S "$ROOT" "${GEN[@]}" -DCMAKE_BUILD_TYPE=Release \
    -DDNSBS_METRICS=OFF >/dev/null
  cmake --build "$BUILD_OFF" -j"$JOBS" --target bench_perf_pipeline
  rate_of() {
    "$1" --json "$2" --repeat 5 >/dev/null
    awk -F': ' '/"end_to_end_records_per_s"/ {gsub(/,/,"",$2); print $2; exit}' "$2"
  }
  on_rate=0 off_rate=0
  for round in 1 2; do
    r=$(rate_of "$BUILD_ON/bench/bench_perf_pipeline" "$BUILD_ON/bench_obs_on.json")
    on_rate=$(awk -v a="$on_rate" -v b="$r" 'BEGIN { print (b > a) ? b : a }')
    r=$(rate_of "$BUILD_OFF/bench/bench_perf_pipeline" "$BUILD_OFF/bench_obs_off.json")
    off_rate=$(awk -v a="$off_rate" -v b="$r" 'BEGIN { print (b > a) ? b : a }')
  done
  awk -v on="$on_rate" -v off="$off_rate" 'BEGIN {
    ratio = off > 0 ? on / off : 1;
    printf "telemetry overhead: ON %.0f rec/s vs OFF %.0f rec/s (%.3fx)\n", on, off, ratio;
    if (ratio < 0.98) { print "telemetry overhead gate FAILED: >2% slowdown"; exit 1 }
    print "telemetry overhead gate passed (<2%)";
  }'
  exit 0
fi

if [[ "${TSAN:-0}" == "1" ]]; then
  SANITIZE="thread"
  BUILD="${BUILD_DIR:-$ROOT/build-tsan}"
else
  SANITIZE="address,undefined"
  BUILD="${BUILD_DIR:-$ROOT/build-asan}"
fi

# halt_on_error so a sanitizer report fails the test instead of scrolling
# past; detect_leaks stays on by default under ASan.
export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:strict_string_checks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"

GEN=()
command -v ninja >/dev/null 2>&1 && GEN=(-G Ninja)

cmake -B "$BUILD" -S "$ROOT" "${GEN[@]}" -DDNSBS_SANITIZE="$SANITIZE" >/dev/null
cmake --build "$BUILD" -j"$JOBS"
ctest --test-dir "$BUILD" --output-on-failure -j"$JOBS" "$@"
