// dnsbs_cli — command-line front end for the backscatter sensor.
//
//   dnsbs_cli generate  --out FILE [--scenario jp|b|m] [--scale S] [--seed N]
//       Simulate a world and write the authority's reverse-query log.
//
//   dnsbs_cli analyze   --log FILE [--scenario jp|b|m] [--scale S] [--seed N]
//                       [--min-queriers Q] [--top K] [--csv FILE]
//       Replay a query log through the sensor; print the top originators
//       and optionally dump all feature vectors as CSV.
//
//   dnsbs_cli classify  [--scenario jp|b|m] [--scale S] [--seed N] [--top K]
//       Full pipeline: simulate, curate labels, train RF, classify.
//
//   dnsbs_cli stats     [--log FILE] [--scenario jp|b|m] [--scale S] [--seed N]
//       Run the pipeline (replaying --log, or simulating when absent) and
//       pretty-print the metrics registry: counters, gauges, span times.
//
//   dnsbs_cli serve     [--bind A] [--udp-port P] [--tcp-port P] [--status-port P]
//                       [--stamped] [--window SECS] [--hop SECS] [--queue N]
//                       [--checkpoint FILE] [--restore] [--checkpoint-every SECS]
//                       [--windows-out FILE] [--ready-file FILE]
//                       [--async-windows on|off] [--job-threads N]
//       Long-running daemon: ingest DNS packets from UDP (and TCP with
//       --tcp-port), window the stream, and answer STATS/CHECKPOINT/FLUSH/
//       SHUTDOWN/PING on the status socket.  See DESIGN.md "Streaming
//       intake".
//
//   dnsbs_cli sendlog   --log FILE --to HOST:PORT [--tcp]
//       Replay a query log as stamped packets (the daemon's --stamped
//       framing) over UDP datagrams or one TCP connection.
//
//   dnsbs_cli ctl       --to HOST:PORT [--cmd stats|history|trace|checkpoint|
//                                             flush|shutdown|ping]
//       Send one control command to a running daemon and print the reply.
//       "history [n]" returns the per-window telemetry ring as JSON;
//       "trace [secs]" starts a timed capture into the daemon's
//       --trace-out file.  The same status port also answers plain HTTP
//       GETs: /metrics (Prometheus), /healthz, /windows[?n=K].
//
//   dnsbs_cli export-state --log FILE --state-out FILE
//                       [--shards N --shard-index I] [--querier-state M]
//       Run one federated sensor over (its shard of) a query log and write
//       a transferable state snapshot.  N exports with --shards N tile the
//       log disjointly by originator.
//
//   dnsbs_cli merge     --state FILE [--state FILE ...] [--csv FILE]
//       Coordinator: fold exported state snapshots into one sensor and
//       print the same report `analyze` would.  Merging N disjoint shards
//       reproduces the single-sensor analyze output byte-for-byte (exact
//       mode); sketch-mode merges carry the documented HLL error bound.
//
// Every subcommand accepts --metrics-out FILE to dump the final metrics
// snapshot; a path ending in ".prom" selects Prometheus text exposition,
// anything else gets JSON.  --metrics-format json|prom overrides the
// suffix sniff (json + a .prom path is a hard conflict).  --trace-out FILE
// captures a Chrome trace_event timeline of the run (for serve it only
// arms the TRACE control verb).
//
// `analyze` and `serve` resolve querier names through the synthetic world,
// so the (scenario, scale, seed) triple must match the one used by
// `generate`.  A production build would wire a real resolver client and
// whois/GeoIP databases into the same Sensor constructor.
#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "cli_options.hpp"
#include "core/federation.hpp"
#include "core/sensor.hpp"
#include "dns/capture.hpp"
#include "labeling/curator.hpp"
#include "ml/forest.hpp"
#include "net/socket.hpp"
#include "serve/daemon.hpp"
#include "sim/scenario.hpp"
#include "util/binio.hpp"
#include "util/metrics.hpp"
#include "util/table.hpp"
#include "util/trace.hpp"

namespace {

using namespace dnsbs;

int usage() {
  std::fprintf(
      stderr,
      "usage: dnsbs_cli "
      "<generate|analyze|classify|stats|serve|sendlog|ctl|export-state|merge> "
      "[options]\n"
      "  --scenario jp|b|m   vantage preset (default jp)\n"
      "  --scale S           world scale (default 0.15)\n"
      "  --seed N            world seed (default 1)\n"
      "  --out FILE          (generate) log output path\n"
      "  --log FILE          (analyze/stats/sendlog) log input path\n"
      "  --csv FILE          (analyze) feature-vector CSV output\n"
      "  --metrics-out FILE  metrics snapshot (.prom = Prometheus, else JSON)\n"
      "  --metrics-format F  json|prom; overrides the .prom suffix sniff\n"
      "  --trace-out FILE    Chrome trace JSON of this run (serve: TRACE target)\n"
      "  --min-queriers Q    sensor floor (default 20)\n"
      "  --top K             rows to print (default 20)\n"
      "  --querier-state M   exact|sketch querier cardinality state (default exact)\n"
      "  --sketch-threshold N  exact-to-sketch promotion size (default 64)\n"
      "  --sketch-precision P  HLL precision 4..16 (default 12)\n"
      "federation:\n"
      "  --shards N          (export-state) split the log into N originator shards\n"
      "  --shard-index I     (export-state) which shard this sensor ingests\n"
      "  --state-out FILE    (export-state) state snapshot destination\n"
      "  --state FILE        (merge, repeatable) state snapshots to fold in\n"
      "serve:\n"
      "  --bind A            listen address (default 127.0.0.1)\n"
      "  --udp-port P        UDP intake port (default 0 = ephemeral)\n"
      "  --tcp-port P        also listen for length-prefixed frames on TCP\n"
      "  --status-port P     control socket port (default 0 = ephemeral)\n"
      "  --stamped           payloads carry [8B secs][4B querier] replay stamps\n"
      "  --window SECS       window width (default 86400)\n"
      "  --hop SECS          hop between window starts (default = window)\n"
      "  --queue N           intake queue capacity (default 65536)\n"
      "  --checkpoint FILE   checkpoint target (CHECKPOINT command / cadence)\n"
      "  --restore           load --checkpoint FILE before starting\n"
      "  --checkpoint-every SECS  stream-time checkpoint cadence\n"
      "  --windows-out FILE  append a summary block per closed window\n"
      "  --ready-file FILE   write bound ports once listening\n"
      "  --history-cap N     per-window telemetry ring size (default 256, 0 = off)\n"
      "  --async-windows on|off  run window close/export on the job system so\n"
      "                      intake never stalls at a boundary (default on;\n"
      "                      output is byte-identical in both modes)\n"
      "  --job-threads N     job-system worker threads (default 2)\n"
      "sendlog/ctl:\n"
      "  --to HOST:PORT      target daemon\n"
      "  --tcp               (sendlog) stream frames over TCP instead of UDP\n"
      "  --cmd NAME          (ctl) stats|history [n]|trace [secs]|checkpoint|\n"
      "                      flush|shutdown|ping\n");
  return 2;
}

/// Dumps the end-of-run metrics snapshot for any subcommand.  The format
/// is --metrics-format when given, else sniffed from the path suffix
/// (.prom = Prometheus text, anything else JSON).  Returns false (and
/// complains) when the file cannot be written.
bool write_metrics(const cli::Options& opt) {
  const std::string& path = opt.metrics_out;
  if (path.empty()) return true;
  const util::MetricsSnapshot snapshot = util::metrics_snapshot();
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  const bool prometheus =
      opt.metrics_format.empty()
          ? path.size() >= 5 && path.compare(path.size() - 5, 5, ".prom") == 0
          : opt.metrics_format == "prom";
  out << (prometheus ? snapshot.to_prometheus() : snapshot.to_json());
  std::fprintf(stderr, "wrote %zu metrics to %s\n", snapshot.values.size(), path.c_str());
  return static_cast<bool>(out);
}

/// Ends the process-wide trace capture armed for non-serve subcommands and
/// writes the Chrome trace_event JSON.  Returns false when the file cannot
/// be written.
bool write_trace(const std::string& path) {
  util::trace_stop();
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << util::trace_export_json();
  out.flush();
  std::fprintf(stderr, "wrote trace (%zu events, %llu dropped) to %s\n",
               util::trace_event_count(),
               static_cast<unsigned long long>(util::trace_dropped()), path.c_str());
  return static_cast<bool>(out);
}

/// Splits "host:port"; false (with a complaint) on malformed input.
bool split_target(const std::string& to, std::string& host, std::uint16_t& port) {
  const auto colon = to.rfind(':');
  if (colon == std::string::npos || colon == 0) {
    std::fprintf(stderr, "--to wants HOST:PORT, got '%s'\n", to.c_str());
    return false;
  }
  std::string why;
  if (!util::parse_u16(std::string_view(to).substr(colon + 1), port, &why)) {
    std::fprintf(stderr, "--to port: %s\n", why.c_str());
    return false;
  }
  host = to.substr(0, colon);
  return true;
}

sim::ScenarioConfig config_for(const cli::Options& opt) {
  if (opt.scenario == "b") return sim::b_post_ditl_config(opt.seed, opt.scale);
  if (opt.scenario == "m") return sim::m_ditl_config(opt.seed, opt.scale);
  return sim::jp_ditl_config(opt.seed, opt.scale);
}

/// Sensor knobs shared by every pipeline-running subcommand, including the
/// querier-state mode — export-state and merge must build sensors with the
/// same config or import refuses the state file.
core::SensorConfig sensor_config_for(const cli::Options& opt) {
  core::SensorConfig sc;
  sc.min_queriers = opt.min_queriers;
  if (opt.querier_state == "sketch") sc.querier_state = core::QuerierStateMode::kSketch;
  sc.sketch_promote_threshold = static_cast<std::uint32_t>(opt.sketch_threshold);
  sc.sketch_precision = static_cast<std::uint8_t>(opt.sketch_precision);
  return sc;
}

/// Shared tail of `analyze` and `merge`: extract features, train a forest
/// on the world's ground truth, print the top-originator table and the
/// optional CSV.  One renderer means a federated merge is byte-comparable
/// (stdout and CSV) against a single-sensor analyze of the full log.
int report_analysis(sim::Scenario& scenario, core::Sensor& sensor,
                    const cli::Options& opt) {
  const auto features = sensor.extract_features();

  // Train a forest on the world's ground truth restricted to detected
  // originators (truth is built when the world is constructed, so no
  // traffic run is needed) and attach a predicted class per row.
  labeling::GroundTruth truth;
  for (const auto& fv : features) {
    const auto it = scenario.truth().find(fv.originator);
    if (it != scenario.truth().end()) truth.add(it->first, it->second);
  }
  const auto [train, used] = truth.join(features);
  std::unique_ptr<ml::RandomForest> model;
  if (!train.empty()) {
    ml::ForestConfig fc;
    fc.n_trees = 50;
    fc.seed = opt.seed;
    model = std::make_unique<ml::RandomForest>(fc);
    model->fit(train);
    std::fprintf(stderr, "trained forest on %zu truth-labeled originators\n",
                 train.size());
  }

  util::TableWriter table("top originators by footprint");
  table.columns(
      {"rank", "originator", "queriers", "class", "mail", "ns", "home", "nxdomain"});
  for (std::size_t i = 0; i < features.size() && i < opt.top; ++i) {
    const auto& fv = features[i];
    const auto s = [&fv](core::QuerierCategory c) {
      return util::fixed(fv.statics[static_cast<std::size_t>(c)], 2);
    };
    const std::string predicted =
        model ? std::string(core::to_string(
                    static_cast<core::AppClass>(model->predict(fv.row()))))
              : std::string("-");
    table.row({std::to_string(i + 1), fv.originator.to_string(),
               std::to_string(fv.footprint), predicted,
               s(core::QuerierCategory::kMail), s(core::QuerierCategory::kNs),
               s(core::QuerierCategory::kHome), s(core::QuerierCategory::kNxDomain)});
  }
  table.print(std::cout);
  std::printf("%zu interesting originators total\n", features.size());

  if (!opt.csv_path.empty()) {
    std::ofstream csv(opt.csv_path);
    util::TableWriter all;
    std::vector<std::string> header = {"originator", "footprint"};
    for (const auto& name : core::feature_names()) header.push_back(name);
    all.columns(header);
    for (const auto& fv : features) {
      std::vector<std::string> row = {fv.originator.to_string(),
                                      std::to_string(fv.footprint)};
      for (const double v : fv.row()) row.push_back(util::fixed(v, 6));
      all.row(std::move(row));
    }
    csv << all.to_csv();
    std::fprintf(stderr, "wrote %zu feature vectors to %s\n", features.size(),
                 opt.csv_path.c_str());
  }
  return 0;
}

int cmd_generate(const cli::Options& opt) {
  if (opt.out_path.empty()) {
    std::fprintf(stderr, "generate requires --out FILE\n");
    return 2;
  }
  sim::Scenario scenario(config_for(opt));
  std::fprintf(stderr, "simulating %s (scale %.2f, seed %llu)...\n",
               scenario.config().name.c_str(), opt.scale,
               static_cast<unsigned long long>(opt.seed));
  scenario.run();
  std::ofstream out(opt.out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", opt.out_path.c_str());
    return 1;
  }
  dns::QueryLogWriter writer(out);
  for (const auto& record : scenario.authority(0).records()) writer.write(record);
  std::fprintf(stderr, "wrote %zu records from %s to %s\n", writer.count(),
               scenario.authority(0).config().name.c_str(), opt.out_path.c_str());
  return 0;
}

int cmd_analyze(const cli::Options& opt) {
  if (opt.log_path.empty()) {
    std::fprintf(stderr, "analyze requires --log FILE\n");
    return 2;
  }
  sim::Scenario scenario(config_for(opt));  // world only; no traffic run
  std::ifstream in(opt.log_path);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", opt.log_path.c_str());
    return 1;
  }
  core::Sensor sensor(sensor_config_for(opt), scenario.plan().as_db(),
                      scenario.plan().geo_db(), scenario.naming());
  std::size_t skipped = 0;
  std::vector<dns::QueryRecord> records;
  {
    dns::QueryLogReader reader(in);
    while (auto record = reader.next()) records.push_back(*record);
    skipped = reader.skipped();
  }
  sensor.ingest_all(records);
  std::fprintf(stderr, "replayed %zu records (%zu skipped)\n", records.size(), skipped);
  return report_analysis(scenario, sensor, opt);
}

int cmd_export_state(const cli::Options& opt) {
  if (opt.log_path.empty()) {
    std::fprintf(stderr, "export-state requires --log FILE\n");
    return 2;
  }
  const std::string& out_path = !opt.state_out.empty() ? opt.state_out : opt.out_path;
  if (out_path.empty()) {
    std::fprintf(stderr, "export-state requires --state-out FILE\n");
    return 2;
  }
  if (opt.shards > 1 && opt.shard_index >= opt.shards) {
    std::fprintf(stderr, "--shard-index must be < --shards (%llu)\n",
                 static_cast<unsigned long long>(opt.shards));
    return 2;
  }
  sim::Scenario scenario(config_for(opt));  // world only; no traffic run
  std::ifstream in(opt.log_path);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", opt.log_path.c_str());
    return 1;
  }
  std::vector<dns::QueryRecord> records;
  {
    dns::QueryLogReader reader(in);
    while (auto record = reader.next()) {
      // The canonical federation partition: this sensor keeps only its
      // originator shard, so N exports tile the log disjointly and the
      // merged result is byte-identical to a single-sensor run.
      if (opt.shards > 1 &&
          core::federation_shard(record->originator, opt.shards) != opt.shard_index) {
        continue;
      }
      records.push_back(*record);
    }
  }
  core::Sensor sensor(sensor_config_for(opt), scenario.plan().as_db(),
                      scenario.plan().geo_db(), scenario.naming());
  sensor.ingest_all(records);

  std::ofstream out(out_path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  util::BinaryWriter writer(out);
  core::export_sensor_state(sensor, writer);
  if (!writer.ok()) {
    std::fprintf(stderr, "short write to %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(stderr, "exported shard %llu/%llu: %zu records, %zu originators -> %s\n",
               static_cast<unsigned long long>(opt.shard_index),
               static_cast<unsigned long long>(opt.shards), records.size(),
               sensor.aggregator().originator_count(), out_path.c_str());
  return 0;
}

int cmd_merge(const cli::Options& opt) {
  if (opt.state_paths.empty()) {
    std::fprintf(stderr, "merge requires at least one --state FILE\n");
    return 2;
  }
  sim::Scenario scenario(config_for(opt));  // world only; no traffic run
  core::Sensor sensor(sensor_config_for(opt), scenario.plan().as_db(),
                      scenario.plan().geo_db(), scenario.naming());
  for (const auto& path : opt.state_paths) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", path.c_str());
      return 1;
    }
    util::BinaryReader reader(in);
    if (!core::import_sensor_state(reader, sensor)) {
      std::fprintf(stderr, "merge: %s: config mismatch or corrupt state\n",
                   path.c_str());
      return 1;
    }
  }
  std::fprintf(stderr, "merged %zu state files: %zu originators\n",
               opt.state_paths.size(), sensor.aggregator().originator_count());
  return report_analysis(scenario, sensor, opt);
}

int cmd_classify(const cli::Options& opt) {
  sim::Scenario scenario(config_for(opt));
  labeling::Darknet darknet(labeling::default_darknet_prefixes());
  scenario.engine().set_traffic_observer(&darknet);
  std::fprintf(stderr, "simulating %s...\n", scenario.config().name.c_str());
  scenario.run();

  core::Sensor sensor(sensor_config_for(opt), scenario.plan().as_db(),
                      scenario.plan().geo_db(), scenario.naming());
  sensor.ingest_all(scenario.authority(0).records());
  const auto features = sensor.extract_features();

  util::Rng rng(opt.seed ^ 0xb1ac);
  const auto blacklist = labeling::BlacklistSet::build(scenario.population(), {}, rng);
  labeling::Curator curator(scenario, blacklist, darknet, {}, opt.seed ^ 0xc);
  const auto labels = curator.curate(features);
  const auto [data, used] = labels.join(features);
  std::fprintf(stderr, "trained on %zu curated examples\n", data.size());

  ml::ForestConfig fc;
  fc.n_trees = 100;
  fc.seed = opt.seed;
  ml::RandomForest model(fc);
  model.fit(data);
  const auto classified = core::classify_all(features, model);

  util::TableWriter table("classified originators");
  table.columns({"rank", "originator", "queriers", "class", "darknet", "blacklisted"});
  for (std::size_t i = 0; i < classified.size() && i < opt.top; ++i) {
    const auto& c = classified[i];
    table.row({std::to_string(i + 1), c.features.originator.to_string(),
               std::to_string(c.features.footprint),
               std::string(core::to_string(c.predicted)),
               std::to_string(darknet.addresses_hit_by(c.features.originator)),
               blacklist.listed(c.features.originator) ? "yes" : "no"});
  }
  table.print(std::cout);
  return 0;
}

/// Renders one snapshot as a human table: counters/gauges with raw values,
/// histograms (spans, queue waits) with count + mean.
void print_metrics_table(const util::MetricsSnapshot& snapshot) {
  util::TableWriter table("pipeline metrics");
  table.columns({"metric", "kind", "value", "mean", "det"});
  for (const auto& v : snapshot.values) {
    std::string kind;
    std::string value;
    std::string mean = "-";
    switch (v.kind) {
      case util::MetricKind::kCounter:
        kind = "counter";
        value = util::with_commas(v.count);
        break;
      case util::MetricKind::kGauge:
        kind = "gauge";
        value = std::to_string(v.gauge);
        break;
      case util::MetricKind::kHistogram:
        kind = "histogram";
        value = util::with_commas(v.count);
        if (v.count > 0) {
          mean = util::fixed(static_cast<double>(v.sum) / static_cast<double>(v.count) /
                                 1e6,
                             3) +
                 " ms";
        }
        break;
    }
    // Histograms are duration-valued and sched series depend on the
    // thread count; only the rest is covered by the determinism contract.
    const bool det = v.kind != util::MetricKind::kHistogram && !v.sched;
    table.row({v.name, kind, value, mean, det ? "yes" : "no"});
  }
  table.print(std::cout);
}

int cmd_stats(const cli::Options& opt) {
  sim::Scenario scenario(config_for(opt));
  core::Sensor sensor(sensor_config_for(opt), scenario.plan().as_db(),
                      scenario.plan().geo_db(), scenario.naming());

  if (!opt.log_path.empty()) {
    std::ifstream in(opt.log_path);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", opt.log_path.c_str());
      return 1;
    }
    const auto records = dns::read_all(in);
    sensor.ingest_all(records);
  } else {
    std::fprintf(stderr, "no --log: simulating %s (scale %.2f, seed %llu)...\n",
                 scenario.config().name.c_str(), opt.scale,
                 static_cast<unsigned long long>(opt.seed));
    scenario.run();
    sensor.ingest_all(scenario.authority(0).records());
  }
  const auto features = sensor.extract_features();
  std::fprintf(stderr, "%zu interesting originators\n", features.size());

  print_metrics_table(sensor.snapshot_metrics());
  return 0;
}

int cmd_serve(const cli::Options& opt) {
  // The daemon resolves querier names through the synthetic world (same
  // contract as `analyze`): build the world, skip the traffic run.
  sim::Scenario scenario(config_for(opt));

  serve::ServeConfig cfg;
  cfg.bind = opt.bind;
  cfg.udp_port = opt.udp_port;
  cfg.tcp = opt.tcp;
  cfg.tcp_port = opt.tcp_port;
  cfg.status_port = opt.status_port;
  cfg.stamped = opt.stamped;
  cfg.queue_capacity = opt.queue_capacity;
  cfg.streaming.window = util::SimTime::seconds(opt.window_secs);
  cfg.streaming.hop = util::SimTime::seconds(opt.hop_secs);
  cfg.streaming.async_windows = opt.async_windows;
  cfg.job_threads = static_cast<std::size_t>(opt.job_threads);
  cfg.pipeline.sensor = sensor_config_for(opt);
  cfg.pipeline.seed = opt.seed;
  // Summaries are written at window close; no need to hold history forever.
  cfg.pipeline.history_limit = 64;
  cfg.streaming.telemetry_capacity = static_cast<std::size_t>(opt.history_cap);
  cfg.checkpoint_path = opt.checkpoint_path;
  cfg.restore = opt.restore;
  cfg.checkpoint_every_secs = opt.checkpoint_every_secs;
  cfg.windows_out = opt.windows_out;
  cfg.ready_file = opt.ready_file;
  cfg.trace_out = opt.trace_out;

  serve::ServeDaemon daemon(cfg, scenario.plan().as_db(), scenario.plan().geo_db(),
                            scenario.naming());
  std::string error;
  if (!daemon.start(error)) {
    std::fprintf(stderr, "serve: %s\n", error.c_str());
    return 1;
  }
  daemon.wait();
  std::fprintf(stderr, "serve: shut down after %llu windows\n",
               static_cast<unsigned long long>(daemon.driver()->windows_closed()));
  return 0;
}

int cmd_sendlog(const cli::Options& opt) {
  if (opt.log_path.empty() || opt.to.empty()) {
    std::fprintf(stderr, "sendlog requires --log FILE and --to HOST:PORT\n");
    return 2;
  }
  std::string host;
  std::uint16_t port = 0;
  if (!split_target(opt.to, host, port)) return 2;
  std::ifstream in(opt.log_path);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", opt.log_path.c_str());
    return 1;
  }
  const auto records = dns::read_all(in);

  // Stamped framing (the daemon's --stamped mode): the record's own time
  // and querier ride in front of a synthesized PTR query packet, so the
  // receiver reconstructs the exact QueryRecord stream.
  auto frame_for = [](const dns::QueryRecord& r, std::uint16_t id) {
    std::vector<std::uint8_t> frame;
    const auto packet = dns::make_ptr_query_packet(id, r.originator);
    frame.reserve(12 + packet.size());
    const auto secs = static_cast<std::uint64_t>(r.time.secs());
    for (int i = 0; i < 8; ++i) frame.push_back(static_cast<std::uint8_t>(secs >> (8 * i)));
    const std::uint32_t q = r.querier.value();
    for (int i = 0; i < 4; ++i) frame.push_back(static_cast<std::uint8_t>(q >> (8 * i)));
    frame.insert(frame.end(), packet.begin(), packet.end());
    return frame;
  };

  std::size_t sent = 0;
  if (opt.tcp) {
    auto stream = net::TcpStream::connect(host, port);
    if (!stream) {
      std::fprintf(stderr, "cannot connect to %s\n", opt.to.c_str());
      return 1;
    }
    for (const auto& r : records) {
      const auto frame = frame_for(r, static_cast<std::uint16_t>(sent & 0xffff));
      const std::uint8_t len[2] = {static_cast<std::uint8_t>(frame.size() >> 8),
                                   static_cast<std::uint8_t>(frame.size() & 0xff)};
      if (!stream->write_all(len, 2) || !stream->write_all(frame.data(), frame.size())) {
        std::fprintf(stderr, "send failed after %zu records\n", sent);
        return 1;
      }
      ++sent;
    }
  } else {
    net::UdpSocket sock;
    for (const auto& r : records) {
      const auto frame = frame_for(r, static_cast<std::uint16_t>(sent & 0xffff));
      if (!sock.send_to(host, port, frame.data(), frame.size())) {
        std::fprintf(stderr, "send failed after %zu records: %s\n", sent,
                     sock.last_error().c_str());
        return 1;
      }
      ++sent;
    }
  }
  std::fprintf(stderr, "sent %zu records to %s over %s\n", sent, opt.to.c_str(),
               opt.tcp ? "tcp" : "udp");
  return 0;
}

int cmd_ctl(const cli::Options& opt) {
  if (opt.to.empty()) {
    std::fprintf(stderr, "ctl requires --to HOST:PORT\n");
    return 2;
  }
  std::string host;
  std::uint16_t port = 0;
  if (!split_target(opt.to, host, port)) return 2;
  std::string command = opt.ctl_cmd;
  for (char& c : command) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  auto stream = net::TcpStream::connect(host, port);
  if (!stream) {
    std::fprintf(stderr, "cannot connect to %s\n", opt.to.c_str());
    return 1;
  }
  const std::string line = command + "\n";
  if (!stream->write_all(line.data(), line.size())) {
    std::fprintf(stderr, "send failed\n");
    return 1;
  }
  // STATS replies carry the full metrics snapshot on one line; allow far
  // more than the default line budget.
  const auto reply = stream->read_line(30000, std::size_t{1} << 20);
  if (!reply) {
    std::fprintf(stderr, "no reply\n");
    return 1;
  }
  std::printf("%s\n", reply->c_str());
  return reply->rfind("ERR", 0) == 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  cli::Options opt;
  std::string error;
  if (!cli::parse(argc, argv, opt, error)) {
    if (!error.empty()) std::fprintf(stderr, "dnsbs_cli: %s\n", error.c_str());
    return usage();
  }
  // For serve the trace file is the TRACE control verb's target; every
  // other subcommand traces its whole run.
  const bool trace_run = !opt.trace_out.empty() && opt.command != "serve";
  if (trace_run) util::trace_start();
  int rc = -1;
  if (opt.command == "generate") rc = cmd_generate(opt);
  else if (opt.command == "analyze") rc = cmd_analyze(opt);
  else if (opt.command == "classify") rc = cmd_classify(opt);
  else if (opt.command == "stats") rc = cmd_stats(opt);
  else if (opt.command == "serve") rc = cmd_serve(opt);
  else if (opt.command == "sendlog") rc = cmd_sendlog(opt);
  else if (opt.command == "ctl") rc = cmd_ctl(opt);
  else if (opt.command == "export-state") rc = cmd_export_state(opt);
  else if (opt.command == "merge") rc = cmd_merge(opt);
  else return usage();
  if (trace_run && !write_trace(opt.trace_out) && rc == 0) rc = 1;
  if (rc == 0 && !write_metrics(opt)) rc = 1;
  return rc;
}
