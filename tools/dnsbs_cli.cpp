// dnsbs_cli — command-line front end for the backscatter sensor.
//
//   dnsbs_cli generate  --out FILE [--scenario jp|b|m] [--scale S] [--seed N]
//       Simulate a world and write the authority's reverse-query log.
//
//   dnsbs_cli analyze   --log FILE [--scenario jp|b|m] [--scale S] [--seed N]
//                       [--min-queriers Q] [--top K] [--csv FILE]
//       Replay a query log through the sensor; print the top originators
//       and optionally dump all feature vectors as CSV.
//
//   dnsbs_cli classify  [--scenario jp|b|m] [--scale S] [--seed N] [--top K]
//       Full pipeline: simulate, curate labels, train RF, classify.
//
//   dnsbs_cli stats     [--log FILE] [--scenario jp|b|m] [--scale S] [--seed N]
//       Run the pipeline (replaying --log, or simulating when absent) and
//       pretty-print the metrics registry: counters, gauges, span times.
//
// Every subcommand accepts --metrics-out FILE to dump the final metrics
// snapshot; a path ending in ".prom" selects Prometheus text exposition,
// anything else gets JSON.
//
// `analyze` resolves querier names through the synthetic world, so the
// (scenario, scale, seed) triple must match the one used by `generate`.
// A production build would wire a real resolver client and whois/GeoIP
// databases into the same Sensor constructor.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "core/sensor.hpp"
#include "labeling/curator.hpp"
#include "ml/forest.hpp"
#include "sim/scenario.hpp"
#include "util/metrics.hpp"
#include "util/table.hpp"

namespace {

using namespace dnsbs;

struct Options {
  std::string command;
  std::string scenario = "jp";
  double scale = 0.15;
  std::uint64_t seed = 1;
  std::string log_path;
  std::string out_path;
  std::string csv_path;
  std::string metrics_out;
  std::size_t min_queriers = 20;
  std::size_t top = 20;
};

int usage() {
  std::fprintf(stderr,
               "usage: dnsbs_cli <generate|analyze|classify|stats> [options]\n"
               "  --scenario jp|b|m   vantage preset (default jp)\n"
               "  --scale S           world scale (default 0.15)\n"
               "  --seed N            world seed (default 1)\n"
               "  --out FILE          (generate) log output path\n"
               "  --log FILE          (analyze/stats) log input path\n"
               "  --csv FILE          (analyze) feature-vector CSV output\n"
               "  --metrics-out FILE  metrics snapshot (.prom = Prometheus, else JSON)\n"
               "  --min-queriers Q    sensor floor (default 20)\n"
               "  --top K             rows to print (default 20)\n");
  return 2;
}

/// Dumps the end-of-run metrics snapshot for any subcommand.  Returns
/// false (and complains) when the file cannot be written.
bool write_metrics(const std::string& path) {
  if (path.empty()) return true;
  const util::MetricsSnapshot snapshot = util::metrics_snapshot();
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  const bool prometheus = path.size() >= 5 && path.compare(path.size() - 5, 5, ".prom") == 0;
  out << (prometheus ? snapshot.to_prometheus() : snapshot.to_json());
  std::fprintf(stderr, "wrote %zu metrics to %s\n", snapshot.values.size(), path.c_str());
  return static_cast<bool>(out);
}

bool parse(int argc, char** argv, Options& opt) {
  if (argc < 2) return false;
  opt.command = argv[1];
  for (int i = 2; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const char* value = argv[i + 1];
    if (flag == "--scenario") {
      opt.scenario = value;
    } else if (flag == "--scale") {
      opt.scale = std::atof(value);
    } else if (flag == "--seed") {
      opt.seed = std::strtoull(value, nullptr, 10);
    } else if (flag == "--out") {
      opt.out_path = value;
    } else if (flag == "--log") {
      opt.log_path = value;
    } else if (flag == "--csv") {
      opt.csv_path = value;
    } else if (flag == "--metrics-out") {
      opt.metrics_out = value;
    } else if (flag == "--min-queriers") {
      opt.min_queriers = std::strtoull(value, nullptr, 10);
    } else if (flag == "--top") {
      opt.top = std::strtoull(value, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

sim::ScenarioConfig config_for(const Options& opt) {
  if (opt.scenario == "b") return sim::b_post_ditl_config(opt.seed, opt.scale);
  if (opt.scenario == "m") return sim::m_ditl_config(opt.seed, opt.scale);
  return sim::jp_ditl_config(opt.seed, opt.scale);
}

int cmd_generate(const Options& opt) {
  if (opt.out_path.empty()) {
    std::fprintf(stderr, "generate requires --out FILE\n");
    return 2;
  }
  sim::Scenario scenario(config_for(opt));
  std::fprintf(stderr, "simulating %s (scale %.2f, seed %llu)...\n",
               scenario.config().name.c_str(), opt.scale,
               static_cast<unsigned long long>(opt.seed));
  scenario.run();
  std::ofstream out(opt.out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", opt.out_path.c_str());
    return 1;
  }
  dns::QueryLogWriter writer(out);
  for (const auto& record : scenario.authority(0).records()) writer.write(record);
  std::fprintf(stderr, "wrote %zu records from %s to %s\n", writer.count(),
               scenario.authority(0).config().name.c_str(), opt.out_path.c_str());
  return 0;
}

int cmd_analyze(const Options& opt) {
  if (opt.log_path.empty()) {
    std::fprintf(stderr, "analyze requires --log FILE\n");
    return 2;
  }
  sim::Scenario scenario(config_for(opt));  // world only; no traffic run
  std::ifstream in(opt.log_path);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", opt.log_path.c_str());
    return 1;
  }
  core::SensorConfig sensor_config;
  sensor_config.min_queriers = opt.min_queriers;
  core::Sensor sensor(sensor_config, scenario.plan().as_db(), scenario.plan().geo_db(),
                      scenario.naming());
  std::size_t skipped = 0;
  std::vector<dns::QueryRecord> records;
  {
    dns::QueryLogReader reader(in);
    while (auto record = reader.next()) records.push_back(*record);
    skipped = reader.skipped();
  }
  sensor.ingest_all(records);
  std::fprintf(stderr, "replayed %zu records (%zu skipped)\n", records.size(), skipped);
  const auto features = sensor.extract_features();

  // Train a forest on the world's ground truth restricted to detected
  // originators (truth is built when the world is constructed, so no
  // traffic run is needed) and attach a predicted class per row.
  labeling::GroundTruth truth;
  for (const auto& fv : features) {
    const auto it = scenario.truth().find(fv.originator);
    if (it != scenario.truth().end()) truth.add(it->first, it->second);
  }
  const auto [train, used] = truth.join(features);
  std::unique_ptr<ml::RandomForest> model;
  if (!train.empty()) {
    ml::ForestConfig fc;
    fc.n_trees = 50;
    fc.seed = opt.seed;
    model = std::make_unique<ml::RandomForest>(fc);
    model->fit(train);
    std::fprintf(stderr, "trained forest on %zu truth-labeled originators\n",
                 train.size());
  }

  util::TableWriter table("top originators by footprint");
  table.columns(
      {"rank", "originator", "queriers", "class", "mail", "ns", "home", "nxdomain"});
  for (std::size_t i = 0; i < features.size() && i < opt.top; ++i) {
    const auto& fv = features[i];
    const auto s = [&fv](core::QuerierCategory c) {
      return util::fixed(fv.statics[static_cast<std::size_t>(c)], 2);
    };
    const std::string predicted =
        model ? std::string(core::to_string(
                    static_cast<core::AppClass>(model->predict(fv.row()))))
              : std::string("-");
    table.row({std::to_string(i + 1), fv.originator.to_string(),
               std::to_string(fv.footprint), predicted,
               s(core::QuerierCategory::kMail), s(core::QuerierCategory::kNs),
               s(core::QuerierCategory::kHome), s(core::QuerierCategory::kNxDomain)});
  }
  table.print(std::cout);
  std::printf("%zu interesting originators total\n", features.size());

  if (!opt.csv_path.empty()) {
    std::ofstream csv(opt.csv_path);
    util::TableWriter all;
    std::vector<std::string> header = {"originator", "footprint"};
    for (const auto& name : core::feature_names()) header.push_back(name);
    all.columns(header);
    for (const auto& fv : features) {
      std::vector<std::string> row = {fv.originator.to_string(),
                                      std::to_string(fv.footprint)};
      for (const double v : fv.row()) row.push_back(util::fixed(v, 6));
      all.row(std::move(row));
    }
    csv << all.to_csv();
    std::fprintf(stderr, "wrote %zu feature vectors to %s\n", features.size(),
                 opt.csv_path.c_str());
  }
  return 0;
}

int cmd_classify(const Options& opt) {
  sim::Scenario scenario(config_for(opt));
  labeling::Darknet darknet(labeling::default_darknet_prefixes());
  scenario.engine().set_traffic_observer(&darknet);
  std::fprintf(stderr, "simulating %s...\n", scenario.config().name.c_str());
  scenario.run();

  core::SensorConfig sensor_config;
  sensor_config.min_queriers = opt.min_queriers;
  core::Sensor sensor(sensor_config, scenario.plan().as_db(), scenario.plan().geo_db(),
                      scenario.naming());
  sensor.ingest_all(scenario.authority(0).records());
  const auto features = sensor.extract_features();

  util::Rng rng(opt.seed ^ 0xb1ac);
  const auto blacklist = labeling::BlacklistSet::build(scenario.population(), {}, rng);
  labeling::Curator curator(scenario, blacklist, darknet, {}, opt.seed ^ 0xc);
  const auto labels = curator.curate(features);
  const auto [data, used] = labels.join(features);
  std::fprintf(stderr, "trained on %zu curated examples\n", data.size());

  ml::ForestConfig fc;
  fc.n_trees = 100;
  fc.seed = opt.seed;
  ml::RandomForest model(fc);
  model.fit(data);
  const auto classified = core::classify_all(features, model);

  util::TableWriter table("classified originators");
  table.columns({"rank", "originator", "queriers", "class", "darknet", "blacklisted"});
  for (std::size_t i = 0; i < classified.size() && i < opt.top; ++i) {
    const auto& c = classified[i];
    table.row({std::to_string(i + 1), c.features.originator.to_string(),
               std::to_string(c.features.footprint),
               std::string(core::to_string(c.predicted)),
               std::to_string(darknet.addresses_hit_by(c.features.originator)),
               blacklist.listed(c.features.originator) ? "yes" : "no"});
  }
  table.print(std::cout);
  return 0;
}

/// Renders one snapshot as a human table: counters/gauges with raw values,
/// histograms (spans, queue waits) with count + mean.
void print_metrics_table(const util::MetricsSnapshot& snapshot) {
  util::TableWriter table("pipeline metrics");
  table.columns({"metric", "kind", "value", "mean", "det"});
  for (const auto& v : snapshot.values) {
    std::string kind;
    std::string value;
    std::string mean = "-";
    switch (v.kind) {
      case util::MetricKind::kCounter:
        kind = "counter";
        value = util::with_commas(v.count);
        break;
      case util::MetricKind::kGauge:
        kind = "gauge";
        value = std::to_string(v.gauge);
        break;
      case util::MetricKind::kHistogram:
        kind = "histogram";
        value = util::with_commas(v.count);
        if (v.count > 0) {
          mean = util::fixed(static_cast<double>(v.sum) / static_cast<double>(v.count) /
                                 1e6,
                             3) +
                 " ms";
        }
        break;
    }
    // Histograms are duration-valued and sched series depend on the
    // thread count; only the rest is covered by the determinism contract.
    const bool det = v.kind != util::MetricKind::kHistogram && !v.sched;
    table.row({v.name, kind, value, mean, det ? "yes" : "no"});
  }
  table.print(std::cout);
}

int cmd_stats(const Options& opt) {
  sim::Scenario scenario(config_for(opt));
  core::SensorConfig sensor_config;
  sensor_config.min_queriers = opt.min_queriers;
  core::Sensor sensor(sensor_config, scenario.plan().as_db(), scenario.plan().geo_db(),
                      scenario.naming());

  if (!opt.log_path.empty()) {
    std::ifstream in(opt.log_path);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", opt.log_path.c_str());
      return 1;
    }
    const auto records = dns::read_all(in);
    sensor.ingest_all(records);
  } else {
    std::fprintf(stderr, "no --log: simulating %s (scale %.2f, seed %llu)...\n",
                 scenario.config().name.c_str(), opt.scale,
                 static_cast<unsigned long long>(opt.seed));
    scenario.run();
    sensor.ingest_all(scenario.authority(0).records());
  }
  const auto features = sensor.extract_features();
  std::fprintf(stderr, "%zu interesting originators\n", features.size());

  print_metrics_table(sensor.snapshot_metrics());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) return usage();
  int rc = -1;
  if (opt.command == "generate") rc = cmd_generate(opt);
  else if (opt.command == "analyze") rc = cmd_analyze(opt);
  else if (opt.command == "classify") rc = cmd_classify(opt);
  else if (opt.command == "stats") rc = cmd_stats(opt);
  else return usage();
  if (rc == 0 && !write_metrics(opt.metrics_out)) rc = 1;
  return rc;
}
