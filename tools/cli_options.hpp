// dnsbs_cli option table and parser, split out of the binary so the test
// suite can run regression tests against the real parse() (trailing flags
// without values, malformed numerics) instead of a reimplementation.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/cli.hpp"

namespace dnsbs::cli {

struct Options {
  std::string command;
  std::string scenario = "jp";
  double scale = 0.15;
  std::uint64_t seed = 1;
  std::string log_path;
  std::string out_path;
  std::string csv_path;
  std::string metrics_out;
  std::string metrics_format;       ///< "", "json" or "prom"; "" = sniff by suffix
  std::string trace_out;            ///< Chrome trace JSON destination (see below)
  std::uint64_t min_queriers = 20;
  std::uint64_t top = 20;

  // serve
  std::string bind = "127.0.0.1";
  std::uint16_t udp_port = 0;       ///< 0 = ephemeral
  bool tcp = false;                 ///< also listen for DNS-over-TCP intake
  std::uint16_t tcp_port = 0;       ///< 0 = ephemeral
  std::uint16_t status_port = 0;    ///< 0 = ephemeral
  bool stamped = false;             ///< replay framing: [secs][querier] prefix
  std::uint64_t queue_capacity = 65536;
  std::int64_t window_secs = 86400;
  std::int64_t hop_secs = 0;        ///< 0 = tumbling (hop == window)
  std::string checkpoint_path;
  bool restore = false;             ///< load --checkpoint FILE at startup
  std::int64_t checkpoint_every_secs = 0;  ///< stream-time cadence, 0 = manual
  std::string windows_out;
  std::string ready_file;
  std::uint64_t history_cap = 256;  ///< per-window telemetry ring (0 = off)
  /// Async window pipeline: close/train/export on the job system instead
  /// of inline on the drive thread.  Output is byte-identical either way;
  /// "off" is the debugging fallback that keeps everything single-threaded.
  bool async_windows = true;
  std::uint64_t job_threads = 2;    ///< job-system workers (serve)

  // sendlog / ctl
  std::string to;                   ///< "host:port" target
  std::string ctl_cmd = "stats";    ///< stats|checkpoint|flush|shutdown|ping

  // querier-cardinality state (analyze/stats/serve/export-state/merge)
  std::string querier_state = "exact";  ///< exact|sketch
  std::uint64_t sketch_threshold = 64;  ///< exact-to-sketch promotion size
  std::uint64_t sketch_precision = 12;  ///< HLL precision (registers = 2^p)

  // federation (export-state / merge)
  std::uint64_t shards = 1;          ///< export: total originator shards
  std::uint64_t shard_index = 0;     ///< export: this sensor's shard
  std::string state_out;             ///< export: state file destination
  std::vector<std::string> state_paths;  ///< merge: repeatable --state inputs
};

/// Parses argv[1..] into `opt`.  On failure returns false with a message
/// in `error`; a trailing flag with no value and a numeric flag that does
/// not fully parse are both hard errors (they used to be silently
/// ignored / truncated).
inline bool parse(int argc, char* const* argv, Options& opt, std::string& error) {
  if (argc < 2) {
    error = "missing command";
    return false;
  }
  opt.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    // Boolean flags take no value.
    if (flag == "--tcp") {
      opt.tcp = true;
      continue;
    }
    if (flag == "--stamped") {
      opt.stamped = true;
      continue;
    }
    if (flag == "--restore") {
      opt.restore = true;
      continue;
    }
    if (i + 1 >= argc) {
      error = "flag requires a value: " + flag;
      return false;
    }
    const std::string_view value = argv[++i];
    std::string why;
    bool ok = true;
    if (flag == "--scenario") {
      opt.scenario = value;
    } else if (flag == "--scale") {
      ok = util::parse_f64(value, opt.scale, &why);
    } else if (flag == "--seed") {
      ok = util::parse_u64(value, opt.seed, &why);
    } else if (flag == "--out") {
      opt.out_path = value;
    } else if (flag == "--log") {
      opt.log_path = value;
    } else if (flag == "--csv") {
      opt.csv_path = value;
    } else if (flag == "--metrics-out") {
      opt.metrics_out = value;
    } else if (flag == "--metrics-format") {
      opt.metrics_format = value;
      if (opt.metrics_format != "json" && opt.metrics_format != "prom") {
        error = "flag --metrics-format: want json or prom, got '" +
                opt.metrics_format + "'";
        return false;
      }
    } else if (flag == "--trace-out") {
      opt.trace_out = value;
    } else if (flag == "--history-cap") {
      ok = util::parse_u64(value, opt.history_cap, &why);
    } else if (flag == "--min-queriers") {
      ok = util::parse_u64(value, opt.min_queriers, &why);
    } else if (flag == "--top") {
      ok = util::parse_u64(value, opt.top, &why);
    } else if (flag == "--bind") {
      opt.bind = value;
    } else if (flag == "--udp-port") {
      ok = util::parse_u16(value, opt.udp_port, &why);
    } else if (flag == "--tcp-port") {
      ok = util::parse_u16(value, opt.tcp_port, &why);
      opt.tcp = ok || opt.tcp;  // naming a port implies the listener
    } else if (flag == "--status-port") {
      ok = util::parse_u16(value, opt.status_port, &why);
    } else if (flag == "--queue") {
      ok = util::parse_u64(value, opt.queue_capacity, &why);
    } else if (flag == "--window") {
      ok = util::parse_i64(value, opt.window_secs, &why);
    } else if (flag == "--hop") {
      ok = util::parse_i64(value, opt.hop_secs, &why);
    } else if (flag == "--checkpoint") {
      opt.checkpoint_path = value;
    } else if (flag == "--checkpoint-every") {
      ok = util::parse_i64(value, opt.checkpoint_every_secs, &why);
    } else if (flag == "--windows-out") {
      opt.windows_out = value;
    } else if (flag == "--async-windows") {
      if (value == "on") {
        opt.async_windows = true;
      } else if (value == "off") {
        opt.async_windows = false;
      } else {
        error = "flag --async-windows: want on or off, got '" + std::string(value) + "'";
        return false;
      }
    } else if (flag == "--job-threads") {
      ok = util::parse_u64(value, opt.job_threads, &why);
      if (ok && opt.job_threads > 64) {
        error = "flag --job-threads: want 0..64";
        return false;
      }
    } else if (flag == "--ready-file") {
      opt.ready_file = value;
    } else if (flag == "--to") {
      opt.to = value;
    } else if (flag == "--cmd") {
      opt.ctl_cmd = value;
    } else if (flag == "--querier-state") {
      opt.querier_state = value;
      if (opt.querier_state != "exact" && opt.querier_state != "sketch") {
        error = "flag --querier-state: want exact or sketch, got '" +
                opt.querier_state + "'";
        return false;
      }
    } else if (flag == "--sketch-threshold") {
      ok = util::parse_u64(value, opt.sketch_threshold, &why);
    } else if (flag == "--sketch-precision") {
      ok = util::parse_u64(value, opt.sketch_precision, &why);
      if (ok && (opt.sketch_precision < 4 || opt.sketch_precision > 16)) {
        error = "flag --sketch-precision: want 4..16";
        return false;
      }
    } else if (flag == "--shards") {
      ok = util::parse_u64(value, opt.shards, &why);
      if (ok && opt.shards == 0) {
        error = "flag --shards: want at least 1";
        return false;
      }
    } else if (flag == "--shard-index") {
      ok = util::parse_u64(value, opt.shard_index, &why);
    } else if (flag == "--state-out") {
      opt.state_out = value;
    } else if (flag == "--state") {
      opt.state_paths.emplace_back(value);
    } else {
      error = "unknown flag: " + flag;
      return false;
    }
    if (!ok) {
      error = "flag " + flag + ": " + why;
      return false;
    }
  }
  // A .prom suffix has always selected the Prometheus exposition format;
  // an explicit --metrics-format json that contradicts it is ambiguous
  // (which one did the operator mean?) and therefore a hard error.
  if (opt.metrics_format == "json" && opt.metrics_out.size() >= 5 &&
      opt.metrics_out.ends_with(".prom")) {
    error = "--metrics-format json conflicts with .prom suffix: " + opt.metrics_out;
    return false;
  }
  return true;
}

}  // namespace dnsbs::cli
