// dnsbs_cli option table and parser, split out of the binary so the test
// suite can run regression tests against the real parse() (trailing flags
// without values, malformed numerics) instead of a reimplementation.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/cli.hpp"

namespace dnsbs::cli {

struct Options {
  std::string command;
  std::string scenario = "jp";
  double scale = 0.15;
  std::uint64_t seed = 1;
  std::string log_path;
  std::string out_path;
  std::string csv_path;
  std::string metrics_out;
  std::uint64_t min_queriers = 20;
  std::uint64_t top = 20;

  // serve
  std::string bind = "127.0.0.1";
  std::uint16_t udp_port = 0;       ///< 0 = ephemeral
  bool tcp = false;                 ///< also listen for DNS-over-TCP intake
  std::uint16_t tcp_port = 0;       ///< 0 = ephemeral
  std::uint16_t status_port = 0;    ///< 0 = ephemeral
  bool stamped = false;             ///< replay framing: [secs][querier] prefix
  std::uint64_t queue_capacity = 65536;
  std::int64_t window_secs = 86400;
  std::int64_t hop_secs = 0;        ///< 0 = tumbling (hop == window)
  std::string checkpoint_path;
  bool restore = false;             ///< load --checkpoint FILE at startup
  std::int64_t checkpoint_every_secs = 0;  ///< stream-time cadence, 0 = manual
  std::string windows_out;
  std::string ready_file;

  // sendlog / ctl
  std::string to;                   ///< "host:port" target
  std::string ctl_cmd = "stats";    ///< stats|checkpoint|flush|shutdown|ping
};

/// Parses argv[1..] into `opt`.  On failure returns false with a message
/// in `error`; a trailing flag with no value and a numeric flag that does
/// not fully parse are both hard errors (they used to be silently
/// ignored / truncated).
inline bool parse(int argc, char* const* argv, Options& opt, std::string& error) {
  if (argc < 2) {
    error = "missing command";
    return false;
  }
  opt.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    // Boolean flags take no value.
    if (flag == "--tcp") {
      opt.tcp = true;
      continue;
    }
    if (flag == "--stamped") {
      opt.stamped = true;
      continue;
    }
    if (flag == "--restore") {
      opt.restore = true;
      continue;
    }
    if (i + 1 >= argc) {
      error = "flag requires a value: " + flag;
      return false;
    }
    const std::string_view value = argv[++i];
    std::string why;
    bool ok = true;
    if (flag == "--scenario") {
      opt.scenario = value;
    } else if (flag == "--scale") {
      ok = util::parse_f64(value, opt.scale, &why);
    } else if (flag == "--seed") {
      ok = util::parse_u64(value, opt.seed, &why);
    } else if (flag == "--out") {
      opt.out_path = value;
    } else if (flag == "--log") {
      opt.log_path = value;
    } else if (flag == "--csv") {
      opt.csv_path = value;
    } else if (flag == "--metrics-out") {
      opt.metrics_out = value;
    } else if (flag == "--min-queriers") {
      ok = util::parse_u64(value, opt.min_queriers, &why);
    } else if (flag == "--top") {
      ok = util::parse_u64(value, opt.top, &why);
    } else if (flag == "--bind") {
      opt.bind = value;
    } else if (flag == "--udp-port") {
      ok = util::parse_u16(value, opt.udp_port, &why);
    } else if (flag == "--tcp-port") {
      ok = util::parse_u16(value, opt.tcp_port, &why);
      opt.tcp = ok || opt.tcp;  // naming a port implies the listener
    } else if (flag == "--status-port") {
      ok = util::parse_u16(value, opt.status_port, &why);
    } else if (flag == "--queue") {
      ok = util::parse_u64(value, opt.queue_capacity, &why);
    } else if (flag == "--window") {
      ok = util::parse_i64(value, opt.window_secs, &why);
    } else if (flag == "--hop") {
      ok = util::parse_i64(value, opt.hop_secs, &why);
    } else if (flag == "--checkpoint") {
      opt.checkpoint_path = value;
    } else if (flag == "--checkpoint-every") {
      ok = util::parse_i64(value, opt.checkpoint_every_secs, &why);
    } else if (flag == "--windows-out") {
      opt.windows_out = value;
    } else if (flag == "--ready-file") {
      opt.ready_file = value;
    } else if (flag == "--to") {
      opt.to = value;
    } else if (flag == "--cmd") {
      opt.ctl_cmd = value;
    } else {
      error = "unknown flag: " + flag;
      return false;
    }
    if (!ok) {
      error = "flag " + flag + ": " + why;
      return false;
    }
  }
  return true;
}

}  // namespace dnsbs::cli
