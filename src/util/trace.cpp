#include "util/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

#include "util/log.hpp"

namespace dnsbs::util {

#if DNSBS_METRICS_ENABLED

namespace {

enum : std::uint8_t { kPhaseBegin = 0, kPhaseEnd = 1 };

struct TraceEvent {
  const char* name;  // string literal (span stage names); lives forever
  std::uint64_t ts_ns;
  std::uint8_t phase;
};

/// One ring per thread that ever traced.  Single writer (the owning
/// thread); readers synchronize through the release/acquire `count`.
/// Owned by shared_ptr from both the registry and the writer's
/// thread_local, so a ring survives its thread and its events stay
/// exportable.
struct TraceRing {
  explicit TraceRing(std::size_t capacity, std::uint32_t id, std::string label)
      : events(capacity), tid(id), thread_label(std::move(label)) {}
  std::vector<TraceEvent> events;
  std::atomic<std::uint32_t> count{0};
  std::uint32_t tid;
  std::string thread_label;
};

std::atomic<bool> g_enabled{false};
std::atomic<std::uint64_t> g_dropped{0};
std::atomic<std::size_t> g_capacity{kTraceRingDefaultCapacity};

std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

std::vector<std::shared_ptr<TraceRing>>& registry() {
  static std::vector<std::shared_ptr<TraceRing>> rings;
  return rings;
}

TraceRing& thread_ring() {
  thread_local std::shared_ptr<TraceRing> ring = [] {
    std::lock_guard<std::mutex> lock(registry_mutex());
    auto& rings = registry();
    auto r = std::make_shared<TraceRing>(g_capacity.load(std::memory_order_relaxed),
                                         static_cast<std::uint32_t>(rings.size() + 1),
                                         thread_name());
    rings.push_back(r);
    return r;
  }();
  return *ring;
}

bool ring_append(TraceRing& ring, const char* name, std::uint64_t ts_ns,
                 std::uint8_t phase) noexcept {
  const std::uint32_t n = ring.count.load(std::memory_order_relaxed);
  if (n >= ring.events.size()) {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  ring.events[n] = TraceEvent{name, ts_ns, phase};
  ring.count.store(n + 1, std::memory_order_release);
  return true;
}

void append_ts_us(std::string& out, std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03" PRIu64, ns / 1000, ns % 1000);
  out += buf;
}

void append_event(std::string& out, bool& first, const char* name, char phase,
                  std::uint32_t tid, std::uint64_t rel_ns) {
  out += first ? "\n" : ",\n";
  first = false;
  out += "{\"name\":\"";
  out += name;  // stage names are code literals: no JSON escaping needed
  out += "\",\"cat\":\"dnsbs\",\"ph\":\"";
  out += phase;
  out += "\",\"pid\":1,\"tid\":";
  out += std::to_string(tid);
  out += ",\"ts\":";
  append_ts_us(out, rel_ns);
  out += "}";
}

}  // namespace

bool trace_enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

void trace_start(std::size_t per_thread_capacity) {
  g_enabled.store(false, std::memory_order_relaxed);
  if (per_thread_capacity == 0) per_thread_capacity = 1;
  g_capacity.store(per_thread_capacity, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(registry_mutex());
    for (auto& ring : registry()) ring->count.store(0, std::memory_order_release);
  }
  g_dropped.store(0, std::memory_order_relaxed);
  g_enabled.store(true, std::memory_order_relaxed);
}

void trace_stop() noexcept { g_enabled.store(false, std::memory_order_relaxed); }

std::uint64_t trace_dropped() noexcept {
  return g_dropped.load(std::memory_order_relaxed);
}

std::size_t trace_event_count() {
  std::lock_guard<std::mutex> lock(registry_mutex());
  std::size_t total = 0;
  for (const auto& ring : registry()) {
    total += ring->count.load(std::memory_order_acquire);
  }
  return total;
}

bool detail::trace_record_begin(const char* name, std::uint64_t ts_ns) noexcept {
  return ring_append(thread_ring(), name, ts_ns, kPhaseBegin);
}

void detail::trace_record_end(const char* name, std::uint64_t ts_ns) noexcept {
  ring_append(thread_ring(), name, ts_ns, kPhaseEnd);
}

std::string trace_export_json() {
  // Copy the readable prefix of every ring under the registry lock;
  // per-ring `count` acquire pairs with the writer's release publish.
  struct RingCopy {
    std::uint32_t tid;
    std::string label;
    std::vector<TraceEvent> events;
  };
  std::vector<RingCopy> rings;
  {
    std::lock_guard<std::mutex> lock(registry_mutex());
    for (const auto& ring : registry()) {
      const std::uint32_t n = ring->count.load(std::memory_order_acquire);
      if (n == 0) continue;
      RingCopy copy;
      copy.tid = ring->tid;
      copy.label = ring->thread_label;
      copy.events.assign(ring->events.begin(), ring->events.begin() + n);
      rings.push_back(std::move(copy));
    }
  }

  std::uint64_t base_ns = ~std::uint64_t{0};
  for (const RingCopy& ring : rings) {
    for (const TraceEvent& e : ring.events) base_ns = std::min(base_ns, e.ts_ns);
  }
  if (rings.empty()) base_ns = 0;

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const RingCopy& ring : rings) {
    // Thread-name metadata event so Perfetto labels the track.
    out += first ? "\n" : ",\n";
    first = false;
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += std::to_string(ring.tid);
    out += ",\"args\":{\"name\":\"";
    for (const char c : ring.label) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += "\"}}";

    // Events are in thread order, so timestamps are already monotone.
    // Balance the stream structurally: a begin pushes, an end pops its
    // matching begin (orphan ends — begin dropped or pre-capture — are
    // skipped), and begins still open at export get a synthetic end at
    // the ring's final timestamp.
    std::vector<const TraceEvent*> open;
    std::uint64_t last_ns = base_ns;
    for (const TraceEvent& e : ring.events) {
      last_ns = std::max(last_ns, e.ts_ns);
      if (e.phase == kPhaseBegin) {
        open.push_back(&e);
        append_event(out, first, e.name, 'B', ring.tid, e.ts_ns - base_ns);
      } else if (!open.empty()) {
        append_event(out, first, open.back()->name, 'E', ring.tid, e.ts_ns - base_ns);
        open.pop_back();
      }
    }
    while (!open.empty()) {
      append_event(out, first, open.back()->name, 'E', ring.tid, last_ns - base_ns);
      open.pop_back();
    }
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

#else  // !DNSBS_METRICS_ENABLED

bool trace_enabled() noexcept { return false; }
void trace_start(std::size_t) {}
void trace_stop() noexcept {}
std::uint64_t trace_dropped() noexcept { return 0; }
std::size_t trace_event_count() { return 0; }
bool detail::trace_record_begin(const char*, std::uint64_t) noexcept { return false; }
void detail::trace_record_end(const char*, std::uint64_t) noexcept {}
std::string trace_export_json() {
  return "{\"traceEvents\":[\n],\"displayTimeUnit\":\"ms\"}\n";
}

#endif  // DNSBS_METRICS_ENABLED

}  // namespace dnsbs::util
