// Tabular output for the benchmark harness.  Every bench binary prints the
// rows/series of one paper table or figure; TableWriter renders aligned
// ASCII (human-readable) and optionally CSV for downstream plotting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

namespace dnsbs::util {

class TableWriter {
 public:
  explicit TableWriter(std::string title = {}) : title_(std::move(title)) {}

  /// Sets the header row; call before adding rows.
  TableWriter& columns(std::vector<std::string> names);

  /// Adds one row; must match the column count.
  TableWriter& row(std::vector<std::string> cells);

  /// Convenience for mixed cells built with util::format.
  TableWriter& rowf(std::initializer_list<std::string> cells) {
    return row(std::vector<std::string>(cells));
  }

  std::size_t row_count() const noexcept { return rows_.size(); }

  /// Renders an aligned ASCII table.
  std::string to_ascii() const;

  /// Renders RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  std::string to_csv() const;

  /// Prints the ASCII form to the stream with a trailing newline.
  void print(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` decimals ("0.785" style used in tables).
std::string fixed(double v, int digits = 2);

/// Formats counts with thousands separators for readability ("47,201").
std::string with_commas(std::uint64_t v);

}  // namespace dnsbs::util
