#include "util/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <mutex>
#include <utility>

namespace dnsbs::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

// The sink is cold state guarded by one mutex; the same mutex serializes
// sink invocations so capturing sinks need no locking of their own.
std::mutex g_sink_mutex;
LogSink g_sink;  // empty = stderr default

// The clock is swapped rarely (test setup) but read per line; its own
// mutex keeps reads off the sink's critical section.
std::mutex g_clock_mutex;
LogClock g_clock;  // empty = real system/steady clocks

thread_local std::string tls_thread_name;

/// Monotonic anchor: the steady reading when the process first logged
/// (static init), so mono stamps read as uptime.
std::chrono::steady_clock::time_point process_start() {
  static const auto start = std::chrono::steady_clock::now();
  return start;
}

LogTimestamps now_timestamps() {
  {
    std::lock_guard<std::mutex> lock(g_clock_mutex);
    if (g_clock) return g_clock();
  }
  LogTimestamps ts;
  ts.wall_unix_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::system_clock::now().time_since_epoch())
                        .count();
  ts.mono_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - process_start())
          .count());
  return ts;
}

/// "2015-05-18T09:30:00.123Z +12.345678s " — fixed-width, space-terminated.
void append_timestamps(std::string& line, const LogTimestamps& ts) {
  const std::int64_t ms_part =
      ts.wall_unix_ms >= 0 ? ts.wall_unix_ms % 1000 : (ts.wall_unix_ms % 1000 + 1000) % 1000;
  const auto secs = static_cast<std::time_t>((ts.wall_unix_ms - ms_part) / 1000);
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03lldZ +%llu.%06llus ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour, tm.tm_min,
                tm.tm_sec, static_cast<long long>(ms_part),
                static_cast<unsigned long long>(ts.mono_ns / 1000000000ULL),
                static_cast<unsigned long long>(ts.mono_ns % 1000000000ULL / 1000ULL));
  line += buf;
}

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

void set_thread_name(std::string name) { tls_thread_name = std::move(name); }

const std::string& thread_name() {
  if (tls_thread_name.empty()) {
    static std::atomic<unsigned> next{0};
    tls_thread_name = "t" + std::to_string(next.fetch_add(1, std::memory_order_relaxed));
  }
  return tls_thread_name;
}

void set_log_sink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  g_sink = std::move(sink);
}

void set_log_clock(LogClock clock) {
  std::lock_guard<std::mutex> lock(g_clock_mutex);
  g_clock = std::move(clock);
}

void log(LogLevel level, const std::string& tag, const std::string& message) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  const std::string& who = thread_name();
  const LogTimestamps ts = now_timestamps();
  std::string line;
  line.reserve(64 + who.size() + tag.size() + message.size());
  line += level_name(level);
  line += ' ';
  append_timestamps(line, ts);
  line += "[";
  line += who;
  line += "] [";
  line += tag;
  line += "] ";
  line += message;
  line += '\n';
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  if (g_sink) {
    g_sink(level, line);
  } else {
    std::fwrite(line.data(), 1, line.size(), stderr);
  }
}

}  // namespace dnsbs::util
