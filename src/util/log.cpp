#include "util/log.hpp"

#include <atomic>
#include <cstdio>

namespace dnsbs::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

void log(LogLevel level, const std::string& tag, const std::string& message) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  std::fprintf(stderr, "%s [%s] %s\n", level_name(level), tag.c_str(), message.c_str());
}

}  // namespace dnsbs::util
