#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <utility>

namespace dnsbs::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

// The sink is cold state guarded by one mutex; the same mutex serializes
// sink invocations so capturing sinks need no locking of their own.
std::mutex g_sink_mutex;
LogSink g_sink;  // empty = stderr default

thread_local std::string tls_thread_name;

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

void set_thread_name(std::string name) { tls_thread_name = std::move(name); }

const std::string& thread_name() {
  if (tls_thread_name.empty()) {
    static std::atomic<unsigned> next{0};
    tls_thread_name = "t" + std::to_string(next.fetch_add(1, std::memory_order_relaxed));
  }
  return tls_thread_name;
}

void set_log_sink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  g_sink = std::move(sink);
}

void log(LogLevel level, const std::string& tag, const std::string& message) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  const std::string& who = thread_name();
  std::string line;
  line.reserve(16 + who.size() + tag.size() + message.size());
  line += level_name(level);
  line += " [";
  line += who;
  line += "] [";
  line += tag;
  line += "] ";
  line += message;
  line += '\n';
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  if (g_sink) {
    g_sink(level, line);
  } else {
    std::fwrite(line.data(), 1, line.size(), stderr);
  }
}

}  // namespace dnsbs::util
