// Trace timelines: per-thread bounded ring buffers of span begin/end
// events, exported as Chrome `trace_event` JSON (load the file in Perfetto
// or chrome://tracing to see the daemon's threads on a wall-clock
// timeline).
//
// Relationship to the metrics registry (DESIGN.md "Telemetry plane"):
// DNSBS_SPAN keeps feeding duration histograms unconditionally; when a
// trace capture is active (trace_start()..trace_stop()) every span
// additionally appends one begin and one end event to its thread's ring.
// The events carry raw steady-clock timestamps, i.e. they are
// scheduling-shaped by construction — a trace is a diagnostic artifact,
// never part of the deterministic output surface.
//
// Hot-path cost when idle is one relaxed atomic load per span (the
// enabled flag), which is what keeps the <2% metrics-overhead budget
// intact with tracing compiled in.  When active, appends are lock-free:
// each ring has exactly one writer (its owning thread) and publishes via
// a release store of the count; rings that fill up drop new events (and
// count the drops) rather than wrap, so a capture is a prefix of the
// timeline, not a random slice.
//
// With -DDNSBS_METRICS=OFF there are no spans, so the trace layer
// compiles to the same no-op surface: captures succeed and export an
// empty (but valid) trace.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#ifndef DNSBS_METRICS_ENABLED
#define DNSBS_METRICS_ENABLED 1
#endif

namespace dnsbs::util {

/// Default per-thread ring capacity (events).  64Ki events * 24B ≈ 1.5MB
/// per traced thread — minutes of span activity at daemon rates.
inline constexpr std::size_t kTraceRingDefaultCapacity = std::size_t{1} << 16;

/// True while a capture is active.  One relaxed load; spans check this
/// before touching any ring.
bool trace_enabled() noexcept;

/// Starts a capture: clears every ring, zeroes the drop tally and flips
/// the enabled flag.  `per_thread_capacity` applies to rings created
/// after this call; existing rings keep their allocation (capacity is
/// fixed at ring birth so writers never race a resize).  Idempotent —
/// calling while already tracing just restarts the capture.
void trace_start(std::size_t per_thread_capacity = kTraceRingDefaultCapacity);

/// Stops the capture.  Buffered events stay readable until the next
/// trace_start(); spans already begun keep the right to append their
/// matching end event, so a stop mid-span still exports balanced.
void trace_stop() noexcept;

/// Events discarded because a ring was full (capture-wide, sched-shaped).
std::uint64_t trace_dropped() noexcept;

/// Buffered events across all rings (test/monitoring hook).
std::size_t trace_event_count();

/// Renders the buffered capture as Chrome trace_event JSON:
/// {"traceEvents":[...],"displayTimeUnit":"ms"}.  Guarantees Perfetto
/// validity regardless of drops or in-flight spans: per tid the B/E
/// events are balanced (orphan ends are skipped, still-open begins get a
/// synthetic end at the ring's last timestamp) and timestamps are
/// non-decreasing.  Timestamps are microseconds relative to the earliest
/// buffered event.
std::string trace_export_json();

namespace detail {
/// Appends a begin event; returns false when the ring was full (the span
/// then skips its end event, keeping the stream balanced).  `ts_ns` is
/// the span's own start stamp so histogram and trace agree.
bool trace_record_begin(const char* name, std::uint64_t ts_ns) noexcept;
/// Appends the matching end event.  Runs even if the capture stopped
/// between begin and end (the buffer is still owned by this thread).
void trace_record_end(const char* name, std::uint64_t ts_ns) noexcept;
}  // namespace detail

}  // namespace dnsbs::util
