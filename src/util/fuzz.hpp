// Deterministic fuzzing and fault-injection primitives.
//
// Two families, both fully seeded so every failure is replayable from a
// (seed, iteration) pair alone:
//
//  * ByteMutator — byte-level corruption of a wire buffer.  Generic
//    mutations (truncation, bit flips, byte rewrites, span splices) plus
//    two DNS-wire-shaped ones: planting a compression pointer (0xc0-
//    prefixed two-byte sequence) and inflating a big-endian 16-bit header
//    count.  The mutator itself knows nothing about the codec; the DNS
//    shaping is just in which byte patterns it likes to write, so the
//    type lives in util and the decode-side invariants live in tests/fuzz.
//
//  * Stream fault primitives — drop / duplicate / swap-adjacent over any
//    record vector, for ingest-level fault injection.  They are templates
//    with caller-supplied predicates because only the caller knows which
//    faults the pipeline's semantics promise to absorb (e.g. dropping a
//    record that deduplication would have suppressed anyway).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace dnsbs::util {

enum class MutationKind : std::uint8_t {
  kTruncate,        ///< cut the buffer to a shorter length
  kBitFlip,         ///< flip one bit of one byte
  kByteSet,         ///< overwrite one byte with a random value
  kPointerRewrite,  ///< plant a DNS compression pointer (0xc0|hi, lo)
  kCountInflate,    ///< overwrite a header count field with a huge value
  kSpanSplice,      ///< insert a copy of a random span at a random offset
};

const char* to_string(MutationKind k) noexcept;

/// One applied mutation, for replayable failure reports.
struct Mutation {
  MutationKind kind = MutationKind::kBitFlip;
  std::size_t offset = 0;  ///< where the buffer was touched (post-op for truncate)
};

/// Seeded wire-buffer mutator.  Identical seeds produce identical mutation
/// streams on every platform (xoshiro256**, no std distributions).
class ByteMutator {
 public:
  explicit ByteMutator(std::uint64_t seed) : rng_(seed) {}

  /// Applies one random mutation in place and reports what it did.
  /// Empty buffers only grow (splice); the result may be any length.
  Mutation mutate(std::vector<std::uint8_t>& buf);

  /// Applies `n` mutations in sequence; returns the trace for diagnostics.
  std::vector<Mutation> mutate_n(std::vector<std::uint8_t>& buf, std::size_t n);

 private:
  Rng rng_;
};

/// Renders a mutation trace as "kind@offset kind@offset ..." for test
/// failure messages.
std::string describe(const std::vector<Mutation>& trace);

// ---- stream fault injection ----

/// Duplicates each element with probability `p`, the copy immediately
/// following the original (a querier re-sending inside the dedup window).
template <typename T>
std::vector<T> duplicate_some(const std::vector<T>& in, double p, Rng& rng) {
  std::vector<T> out;
  out.reserve(in.size() * 2);
  for (const T& item : in) {
    out.push_back(item);
    if (rng.chance(p)) out.push_back(item);
  }
  return out;
}

/// Drops element i with probability `p` when `droppable(i)` holds (e.g.
/// records the pipeline would have suppressed anyway).
template <typename T, typename Pred>
std::vector<T> drop_if(const std::vector<T>& in, Pred droppable, double p, Rng& rng) {
  std::vector<T> out;
  out.reserve(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (droppable(i) && rng.chance(p)) continue;
    out.push_back(in[i]);
  }
  return out;
}

/// Swaps adjacent elements (i, i+1) with probability `p` when
/// `swappable(i)` holds; a swapped pair is not considered again, so swaps
/// never chain an element more than one position.
template <typename T, typename Pred>
std::vector<T> swap_adjacent_if(const std::vector<T>& in, Pred swappable, double p,
                                Rng& rng) {
  std::vector<T> out = in;
  for (std::size_t i = 0; i + 1 < out.size(); ++i) {
    if (swappable(i) && rng.chance(p)) {
      std::swap(out[i], out[i + 1]);
      ++i;  // do not re-swap the element we just moved
    }
  }
  return out;
}

}  // namespace dnsbs::util
