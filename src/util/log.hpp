// Minimal leveled logging.  The library itself stays quiet at Info by
// default; the simulator and benches raise verbosity when diagnosing.
#pragma once

#include <string>

namespace dnsbs::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Writes "LEVEL [tag] message" to stderr if enabled.
void log(LogLevel level, const std::string& tag, const std::string& message);

inline void log_debug(const std::string& tag, const std::string& msg) {
  log(LogLevel::kDebug, tag, msg);
}
inline void log_info(const std::string& tag, const std::string& msg) {
  log(LogLevel::kInfo, tag, msg);
}
inline void log_warn(const std::string& tag, const std::string& msg) {
  log(LogLevel::kWarn, tag, msg);
}
inline void log_error(const std::string& tag, const std::string& msg) {
  log(LogLevel::kError, tag, msg);
}

}  // namespace dnsbs::util
