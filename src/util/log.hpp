// Minimal leveled logging.  The library itself stays quiet at Info by
// default; the simulator and benches raise verbosity when diagnosing.
//
// Each message is composed into one string
// ("LEVEL 2015-05-18T09:30:00.123Z +12.345678s [thread] [tag] msg\n")
// on the calling thread — no printf-style varargs, no vsnprintf — and
// handed to the sink in a single call, so lines from concurrent workers
// never interleave mid-line.  The wall stamp (UTC, ms) correlates lines
// with external systems; the monotonic stamp (seconds since process
// start, µs) orders them robustly across clock steps.  Both come from an
// injectable clock so tests assert exact lines.  Worker threads are
// attributable: the pool names its workers (util::set_thread_name),
// unnamed threads get a stable "t<N>" id on first log.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace dnsbs::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Names the calling thread for log attribution ("worker-3").  Empty
/// restores the default "t<N>" id.
void set_thread_name(std::string name);

/// The calling thread's log name (assigned lazily for unnamed threads).
const std::string& thread_name();

/// Receives every fully formatted line (including the trailing newline)
/// that passes the level threshold.  Replaces the stderr default; tests
/// install a capturing sink.  Pass nullptr to restore stderr.  The sink is
/// invoked under a mutex, so it needs no synchronization of its own.
using LogSink = std::function<void(LogLevel, std::string_view line)>;
void set_log_sink(LogSink sink);

/// The pair of stamps every line carries.
struct LogTimestamps {
  std::int64_t wall_unix_ms = 0;  ///< Unix epoch milliseconds, UTC
  std::uint64_t mono_ns = 0;      ///< nanoseconds since process start
};

/// Replaces the timestamp source (tests install a fixed clock so composed
/// lines are byte-deterministic).  Pass nullptr to restore the real
/// system/steady clocks.  Invoked outside the sink mutex.
using LogClock = std::function<LogTimestamps()>;
void set_log_clock(LogClock clock);

/// Writes "LEVEL <wall>Z +<mono>s [thread] [tag] message" to the sink if
/// enabled.
void log(LogLevel level, const std::string& tag, const std::string& message);

inline void log_debug(const std::string& tag, const std::string& msg) {
  log(LogLevel::kDebug, tag, msg);
}
inline void log_info(const std::string& tag, const std::string& msg) {
  log(LogLevel::kInfo, tag, msg);
}
inline void log_warn(const std::string& tag, const std::string& msg) {
  log(LogLevel::kWarn, tag, msg);
}
inline void log_error(const std::string& tag, const std::string& msg) {
  log(LogLevel::kError, tag, msg);
}

}  // namespace dnsbs::util
