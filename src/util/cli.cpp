#include "util/cli.hpp"

#include <charconv>
#include <limits>

namespace dnsbs::util {

namespace {

template <typename T>
bool parse_full(std::string_view text, T& out, std::string* error) {
  T value{};
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec == std::errc::result_out_of_range) {
    if (error != nullptr) *error = "out of range: '" + std::string(text) + "'";
    return false;
  }
  if (ec != std::errc{} || text.empty()) {
    if (error != nullptr) *error = "not a number: '" + std::string(text) + "'";
    return false;
  }
  if (ptr != last) {
    if (error != nullptr) {
      *error = "trailing characters after number: '" + std::string(text) + "'";
    }
    return false;
  }
  out = value;
  return true;
}

}  // namespace

bool parse_u64(std::string_view text, std::uint64_t& out, std::string* error) {
  return parse_full(text, out, error);
}

bool parse_i64(std::string_view text, std::int64_t& out, std::string* error) {
  return parse_full(text, out, error);
}

bool parse_u16(std::string_view text, std::uint16_t& out, std::string* error) {
  std::uint64_t wide = 0;
  if (!parse_full(text, wide, error)) return false;
  if (wide > std::numeric_limits<std::uint16_t>::max()) {
    if (error != nullptr) *error = "out of range: '" + std::string(text) + "'";
    return false;
  }
  out = static_cast<std::uint16_t>(wide);
  return true;
}

bool parse_f64(std::string_view text, double& out, std::string* error) {
  return parse_full(text, out, error);
}

}  // namespace dnsbs::util
