#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace dnsbs::util {

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (const double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (const double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) noexcept { return std::sqrt(variance(xs)); }

double quantile(std::vector<double> xs, double q) noexcept {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  if (q <= 0.0) return xs.front();
  if (q >= 1.0) return xs.back();
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= xs.size()) return xs.back();
  return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

BoxStats box_stats(std::vector<double> xs) noexcept {
  BoxStats b;
  if (xs.empty()) return b;
  std::sort(xs.begin(), xs.end());
  const auto at = [&xs](double q) {
    const double pos = q * static_cast<double>(xs.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(lo);
    if (lo + 1 >= xs.size()) return xs.back();
    return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
  };
  b.min = xs.front();
  b.max = xs.back();
  b.p10 = at(0.10);
  b.p25 = at(0.25);
  b.p50 = at(0.50);
  b.p75 = at(0.75);
  b.p90 = at(0.90);
  b.n = xs.size();
  return b;
}

double shannon_entropy(std::span<const std::size_t> counts) noexcept {
  std::size_t total = 0;
  for (const std::size_t c : counts) total += c;
  if (total == 0) return 0.0;
  double h = 0.0;
  for (const std::size_t c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / static_cast<double>(total);
    h -= p * std::log2(p);
  }
  return h;
}

double normalized_entropy(std::span<const std::size_t> counts) noexcept {
  return normalized_entropy(counts.begin(), counts.end(),
                            [](std::size_t c) noexcept { return c; });
}

LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys) noexcept {
  LinearFit f;
  const std::size_t n = std::min(xs.size(), ys.size());
  if (n < 2) return f;
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  if (denom == 0.0) return f;
  f.slope = (dn * sxy - sx * sy) / denom;
  f.intercept = (sy - f.slope * sx) / dn;
  const double ss_tot = syy - sy * sy / dn;
  if (ss_tot > 0.0) {
    double ss_res = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double e = ys[i] - (f.intercept + f.slope * xs[i]);
      ss_res += e * e;
    }
    f.r2 = 1.0 - ss_res / ss_tot;
  }
  return f;
}

PowerLawFit power_law_fit(std::span<const double> xs, std::span<const double> ys) noexcept {
  std::vector<double> lx, ly;
  const std::size_t n = std::min(xs.size(), ys.size());
  lx.reserve(n);
  ly.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (xs[i] > 0.0 && ys[i] > 0.0) {
      lx.push_back(std::log(xs[i]));
      ly.push_back(std::log(ys[i]));
    }
  }
  const LinearFit f = linear_fit(lx, ly);
  PowerLawFit p;
  p.c = std::exp(f.intercept);
  p.alpha = f.slope;
  p.r2 = f.r2;
  return p;
}

std::vector<std::pair<double, double>> ccdf(std::vector<double> xs) {
  std::vector<std::pair<double, double>> out;
  if (xs.empty()) return out;
  std::sort(xs.begin(), xs.end());
  const double n = static_cast<double>(xs.size());
  for (std::size_t i = 0; i < xs.size();) {
    std::size_t j = i;
    while (j < xs.size() && xs[j] == xs[i]) ++j;
    out.emplace_back(xs[i], static_cast<double>(xs.size() - i) / n);
    i = j;
  }
  return out;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins == 0 ? 1 : bins)),
      counts_(bins == 0 ? 1 : bins, 0) {}

void Histogram::add(double x, std::size_t n) noexcept {
  std::size_t idx;
  if (x < lo_) {
    idx = 0;
  } else {
    const double offset = (x - lo_) / width_;
    idx = offset >= static_cast<double>(counts_.size())
              ? counts_.size() - 1
              : static_cast<std::size_t>(offset);
  }
  counts_[idx] += n;
  total_ += n;
}

}  // namespace dnsbs::util
