#include "util/rng.hpp"

#include <unordered_set>

namespace dnsbs::util {

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  // Lemire's method: multiply-shift with rejection of the biased low range.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  auto l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t t = (0 - bound) % bound;
    while (l < t) {
      x = next();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t Rng::poisson(double lambda) noexcept {
  if (lambda <= 0.0) return 0;
  if (lambda < 64.0) {
    // Knuth: multiply uniforms until product drops below exp(-lambda).
    const double limit = std::exp(-lambda);
    double product = uniform();
    std::uint64_t count = 0;
    while (product > limit) {
      product *= uniform();
      ++count;
    }
    return count;
  }
  // Normal approximation with continuity correction; adequate for rate
  // modelling at the event counts the simulator uses.
  const double v = normal(lambda, std::sqrt(lambda));
  return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) noexcept {
  std::vector<std::size_t> out;
  sample_indices_into(n, k, out);
  return out;
}

void Rng::sample_indices_into(std::size_t n, std::size_t k,
                              std::vector<std::size_t>& out) noexcept {
  out.clear();
  if (k >= n) {
    out.resize(n);
    for (std::size_t i = 0; i < n; ++i) out[i] = i;
    shuffle(out);
    return;
  }
  if (k * 3 >= n) {
    // Dense case: partial Fisher–Yates over an index vector.
    out.resize(n);
    for (std::size_t i = 0; i < n; ++i) out[i] = i;
    for (std::size_t i = 0; i < k; ++i) {
      std::swap(out[i], out[i + below(n - i)]);
    }
    out.resize(k);
    return;
  }
  // Sparse case: rejection sampling.  For small k a linear duplicate scan
  // over the picks so far beats a hash set by a wide margin (this runs
  // per tree node in CART's max_features subsampling); the generator is
  // consumed identically either way, so results match the set-based path.
  out.reserve(k);
  if (k <= 64) {
    while (out.size() < k) {
      const std::size_t idx = below(n);
      bool fresh = true;
      for (const std::size_t seen : out) {
        if (seen == idx) {
          fresh = false;
          break;
        }
      }
      if (fresh) out.push_back(idx);
    }
    return;
  }
  std::unordered_set<std::size_t> chosen;
  while (out.size() < k) {
    const std::size_t idx = below(n);
    if (chosen.insert(idx).second) out.push_back(idx);
  }
}

std::size_t weighted_pick(Rng& rng, std::span<const double> weights) noexcept {
  double total = 0.0;
  for (const double w : weights) total += w;
  double r = rng.uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.empty() ? 0 : weights.size() - 1;
}

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  cdf_.reserve(n);
  double acc = 0.0;
  for (std::size_t rank = 1; rank <= n; ++rank) {
    acc += 1.0 / std::pow(static_cast<double>(rank), s);
    cdf_.push_back(acc);
  }
  for (double& c : cdf_) c /= acc;
}

std::size_t ZipfSampler::sample(Rng& rng) const noexcept {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it == cdf_.end() ? cdf_.size() - 1 : it - cdf_.begin());
}

}  // namespace dnsbs::util
