// Small string utilities shared across the library.  DNS names and feature
// keyword matching are case-insensitive and dot-structured, so most helpers
// here deal with lowercase ASCII and '.'-separated labels.
#pragma once

#include <string>
#include <string_view>
#include <vector>
#include <cstdint>

namespace dnsbs::util {

/// Splits `s` on `sep`, keeping empty fields.  "a..b" -> {"a", "", "b"}.
std::vector<std::string_view> split(std::string_view s, char sep);

/// Joins parts with `sep`.
std::string join(const std::vector<std::string_view>& parts, char sep);
std::string join(const std::vector<std::string>& parts, char sep);

/// ASCII lowercase copy.
std::string to_lower(std::string_view s);

/// True if `s` contains `needle` (both assumed lowercase by callers that care).
bool contains(std::string_view s, std::string_view needle) noexcept;

bool starts_with(std::string_view s, std::string_view prefix) noexcept;
bool ends_with(std::string_view s, std::string_view suffix) noexcept;

/// Strips leading and trailing whitespace.
std::string_view trim(std::string_view s) noexcept;

/// True if every char is an ASCII digit (and s non-empty).
bool all_digits(std::string_view s) noexcept;

/// Parses a non-negative integer; returns false on any non-digit or overflow.
bool parse_u64(std::string_view s, std::uint64_t& out) noexcept;

/// printf-style formatting into std::string (type-checked by the compiler).
__attribute__((format(printf, 1, 2)))
std::string format(const char* fmt, ...);

}  // namespace dnsbs::util
