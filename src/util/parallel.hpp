// Deterministic parallel execution: a fixed-size worker pool plus
// parallel_for / parallel_map helpers with an ordered-result guarantee.
//
// The repo's determinism contract (DESIGN.md §6) requires that every
// experiment produce byte-identical output run-to-run and regardless of
// how many threads execute it.  The primitives here make that cheap to
// uphold:
//
//   * Work is split by *index*, with chunked static partitioning: slot s
//     of W processes the contiguous range [s*n/W, (s+1)*n/W).  No work
//     stealing, no completion-order dependence.
//   * parallel_map writes result i to out[i]; the returned vector is
//     ordered by input index no matter which thread computed what.
//   * Callers derive any per-item randomness from (seed, index), never
//     from shared sequential RNG state.
//
// Nesting: parallel_for / parallel_map called from inside a parallel
// region degrade to serial inline execution (so e.g. a parallel
// cross-validation rep can call RandomForest::fit, which is itself
// parallel-capable, without oversubscription or deadlock).  Direct
// recursive use of ThreadPool::for_each_index from one of its own
// workers is a programming error and throws std::logic_error.
//
// Thread count resolution order: explicit argument > set_thread_count()
// override > DNSBS_THREADS environment variable > hardware concurrency.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <span>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/metrics.hpp"

namespace dnsbs::util {

/// Effective thread count for parallel sections: the set_thread_count()
/// override if present, else DNSBS_THREADS, else hardware concurrency.
/// Always >= 1.
std::size_t configured_thread_count() noexcept;

/// Programmatic override (benches, tests).  0 restores the default
/// (DNSBS_THREADS / hardware concurrency) resolution.
void set_thread_count(std::size_t n) noexcept;

/// True while the calling thread is executing inside a parallel region
/// (either a pool worker or the caller thread running its own share).
bool in_parallel_region() noexcept;

/// Fixed-size worker pool.  One job runs at a time; the submitting thread
/// participates as slot 0, so a pool of size W uses W-1 workers.
class ThreadPool {
 public:
  /// threads == 0 resolves to configured_thread_count().  The pool keeps
  /// threads-1 workers (the caller is the remaining slot).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution slots (workers + the submitting caller).
  std::size_t size() const noexcept { return workers_.size() + 1; }

  /// Runs fn(i) for every i in [0, n), splitting the index space into
  /// min(use_threads, size()) contiguous static chunks (use_threads == 0
  /// means all slots).  Blocks until every chunk has finished.  If chunks
  /// threw, the exception from the lowest-indexed chunk is rethrown.
  /// Throws std::logic_error when called from one of this pool's own
  /// workers (the job would deadlock waiting for its own slot).
  void for_each_index(std::size_t n, const std::function<void(std::size_t)>& fn,
                      std::size_t use_threads = 0);

  /// Process-wide pool, lazily created.  Sized generously (at least 4
  /// slots even on small machines) so thread-count sweeps and the
  /// serial-vs-parallel determinism tests work everywhere; individual
  /// jobs restrict themselves via the use_threads argument.
  static ThreadPool& shared();

 private:
  struct Slot {
    std::exception_ptr error;
  };

  void worker_loop(std::size_t slot);
  void run_slot(std::size_t slot);

  // Current job (guarded by mutex_).
  std::size_t job_n_ = 0;
  std::size_t job_slots_ = 0;
  const std::function<void(std::size_t)>* job_fn_ = nullptr;
  std::uint64_t generation_ = 0;
  std::uint64_t submit_ns_ = 0;  // job submission time (queue-wait telemetry)
  std::size_t pending_ = 0;
  bool stop_ = false;

  std::vector<Slot> slots_;
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  std::mutex submit_mutex_;
};

namespace detail {

/// Serial fallback shared by the helpers.
template <typename Fn>
void serial_for(std::size_t n, Fn&& fn) {
  for (std::size_t i = 0; i < n; ++i) fn(i);
}

std::size_t resolve_threads(std::size_t requested) noexcept;

/// Telemetry for one parallel_for call (n items, pooled or inline).  The
/// threadpool layer is scheduler-shaped by nature — whether a call takes
/// the pooled or inline path can depend on DNSBS_THREADS — so its series
/// are registered sched and sit outside the determinism contract.
void note_parallel(std::size_t n, bool pooled) noexcept;

}  // namespace detail

/// Runs fn(i) for i in [0, n) across up to `threads` slots of the shared
/// pool (0 = configured).  Executes serially inline when only one thread
/// is effective, when n < 2, or when already inside a parallel region.
/// fn must be safe to call concurrently for distinct indices.
template <typename Fn>
void parallel_for(std::size_t n, Fn&& fn, std::size_t threads = 0) {
  const std::size_t use = detail::resolve_threads(threads);
  if (use <= 1 || n < 2 || in_parallel_region()) {
    detail::note_parallel(n, false);
    detail::serial_for(n, fn);
    return;
  }
  detail::note_parallel(n, true);
  const std::function<void(std::size_t)> wrapped = std::ref(fn);
  ThreadPool::shared().for_each_index(n, wrapped, use);
}

/// Ordered map over the index space: returns {fn(0), fn(1), ..., fn(n-1)}
/// with out[i] computed from index i regardless of thread assignment.
/// R must be default-constructible and movable.
template <typename Fn>
auto parallel_map(std::size_t n, Fn&& fn, std::size_t threads = 0)
    -> std::vector<std::decay_t<std::invoke_result_t<Fn&, std::size_t>>> {
  using R = std::decay_t<std::invoke_result_t<Fn&, std::size_t>>;
  std::vector<R> out(n);
  parallel_for(
      n, [&](std::size_t i) { out[i] = fn(i); }, threads);
  return out;
}

/// Ordered map over a span of items: out[i] = fn(items[i]).
template <typename T, typename Fn>
auto parallel_map(std::span<const T> items, Fn&& fn, std::size_t threads = 0)
    -> std::vector<std::decay_t<std::invoke_result_t<Fn&, const T&>>> {
  return parallel_map(
      items.size(), [&](std::size_t i) { return fn(items[i]); }, threads);
}

}  // namespace dnsbs::util
