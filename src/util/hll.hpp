// Header-only mergeable cardinality sketches (HyperLogLog) for the
// bounded-memory federation path.
//
// Exact per-originator querier sets grow linearly with footprint; a
// flood-sized originator (paper §III-B "interesting" tail, Fachkha-style
// amplification victims) can carry hundreds of thousands of unique
// queriers.  HllSketch bounds that state at 2^precision bytes while
// keeping the one property federation needs: merge_from() is an
// elementwise register max, so merging is commutative, associative and
// idempotent — N sensors can sketch disjoint (or overlapping) slices of
// the stream and a coordinator folds them in any order to the same
// registers a single sensor would have produced.
//
// Determinism contract (same spirit as flat_hash.hpp): hashing is the
// SplitMix64 finalizer from flat_detail::mix64 with no per-process salt,
// the register file is a pure function of the *set* of keys ever added,
// and estimate() is a pure function of the register file.  Two runs — or
// two shards merged in any order — that saw the same key set report the
// same estimate.
//
// Representation: a sketch starts sparse (sorted vector of packed
// (index, rank) entries, 4 bytes each) and densifies into the flat
// 2^precision register array once the sparse form stops being smaller.
// The representation is a pure function of the operation sequence, and
// serialization captures it verbatim, so checkpoint round-trips are
// byte-identical and restored sketches evolve exactly like uninterrupted
// ones.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/binio.hpp"
#include "util/flat_hash.hpp"

namespace dnsbs::util {

class HllSketch {
 public:
  static constexpr std::uint8_t kMinPrecision = 4;
  static constexpr std::uint8_t kMaxPrecision = 16;
  static constexpr std::uint8_t kDefaultPrecision = 12;  ///< ~1.6% std error

  explicit HllSketch(std::uint8_t precision = kDefaultPrecision)
      : precision_(clamp_precision(precision)) {}

  std::uint8_t precision() const noexcept { return precision_; }
  std::size_t register_count() const noexcept { return std::size_t{1} << precision_; }
  bool dense() const noexcept { return !regs_.empty(); }
  bool empty() const noexcept { return regs_.empty() && sparse_.empty(); }

  /// Adds a raw 64-bit key (mixed through SplitMix64, matching the flat
  /// containers' hashing).  Adding the same key again is a no-op.
  void add(std::uint64_t key) { add_hash(flat_detail::mix64(key)); }

  /// Adds a pre-mixed 64-bit hash.
  void add_hash(std::uint64_t h) {
    const std::uint32_t idx = static_cast<std::uint32_t>(h >> (64 - precision_));
    const std::uint64_t rest = h << precision_;
    const std::uint8_t rho =
        rest == 0 ? static_cast<std::uint8_t>(65 - precision_)
                  : static_cast<std::uint8_t>(std::countl_zero(rest) + 1);
    set_register(idx, rho);
  }

  /// Elementwise register max.  Commutative, associative, idempotent.
  /// Requires matching precision; returns false (and leaves this sketch
  /// untouched) on a mismatch.
  bool merge_from(const HllSketch& other) {
    if (other.precision_ != precision_) return false;
    if (other.empty()) return true;
    if (dense() || other.dense()) {
      if (!dense()) densify();
      if (other.dense()) {
        for (std::size_t i = 0; i < regs_.size(); ++i) {
          regs_[i] = std::max(regs_[i], other.regs_[i]);
        }
      } else {
        for (const std::uint32_t packed : other.sparse_) {
          const std::size_t idx = packed >> 8;
          regs_[idx] = std::max(regs_[idx], static_cast<std::uint8_t>(packed & 0xffu));
        }
      }
    } else {
      // Two sorted sparse lists: linear merge, max rank on a shared index.
      std::vector<std::uint32_t> merged;
      merged.reserve(sparse_.size() + other.sparse_.size());
      std::size_t a = 0, b = 0;
      while (a < sparse_.size() && b < other.sparse_.size()) {
        const std::uint32_t ia = sparse_[a] >> 8, ib = other.sparse_[b] >> 8;
        if (ia < ib) {
          merged.push_back(sparse_[a++]);
        } else if (ib < ia) {
          merged.push_back(other.sparse_[b++]);
        } else {
          merged.push_back(std::max(sparse_[a++], other.sparse_[b++]));
        }
      }
      merged.insert(merged.end(), sparse_.begin() + static_cast<std::ptrdiff_t>(a),
                    sparse_.end());
      merged.insert(merged.end(), other.sparse_.begin() + static_cast<std::ptrdiff_t>(b),
                    other.sparse_.end());
      sparse_ = std::move(merged);
      if (sparse_.size() >= densify_threshold()) densify();
    }
    cache_valid_ = false;
    return true;
  }

  /// Cardinality estimate (cached; recomputed after any mutation).  A pure
  /// function of the register file — identical for any add/merge order
  /// that produced the same key set.
  double estimate() const {
    if (!cache_valid_) {
      cached_estimate_ = compute_estimate();
      cache_valid_ = true;
    }
    return cached_estimate_;
  }
  std::uint64_t estimate_u64() const {
    return static_cast<std::uint64_t>(std::llround(estimate()));
  }

  /// Bytes of register state currently held (sparse entries or the dense
  /// array) — the footprint the sketch-mode RSS gate is about.
  std::size_t memory_bytes() const noexcept {
    return dense() ? regs_.size() : sparse_.size() * sizeof(std::uint32_t);
  }

  /// Serializes the representation verbatim (form byte + payload), so a
  /// restored sketch is byte-identical on the next save and evolves
  /// exactly like the uninterrupted one.
  void save(BinaryWriter& out) const {
    out.u8(precision_);
    out.u8(dense() ? 1 : 0);
    if (dense()) {
      out.bytes(regs_.data(), regs_.size());
    } else {
      out.u64(sparse_.size());
      for (const std::uint32_t packed : sparse_) out.u32(packed);
    }
  }

  bool load(BinaryReader& in) {
    const std::uint8_t p = in.u8();
    const std::uint8_t form = in.u8();
    if (!in.ok() || p < kMinPrecision || p > kMaxPrecision || form > 1) return false;
    precision_ = p;
    regs_.clear();
    sparse_.clear();
    cache_valid_ = false;
    const std::uint8_t max_rho = static_cast<std::uint8_t>(65 - precision_);
    if (form == 1) {
      regs_.resize(register_count());
      if (!in.bytes(regs_.data(), regs_.size())) return false;
      for (const std::uint8_t r : regs_) {
        if (r > max_rho) return false;
      }
    } else {
      const std::uint64_t n = in.u64();
      if (!in.ok() || n >= densify_threshold()) return false;
      sparse_.reserve(static_cast<std::size_t>(n));
      std::uint32_t prev_idx = 0;
      for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint32_t packed = in.u32();
        const std::uint32_t idx = packed >> 8;
        const std::uint8_t rho = static_cast<std::uint8_t>(packed & 0xffu);
        if (!in.ok() || idx >= register_count() || rho == 0 || rho > max_rho ||
            (i != 0 && idx <= prev_idx)) {
          return false;
        }
        sparse_.push_back(packed);
        prev_idx = idx;
      }
    }
    return in.ok();
  }

 private:
  static std::uint8_t clamp_precision(std::uint8_t p) noexcept {
    return p < kMinPrecision ? kMinPrecision : (p > kMaxPrecision ? kMaxPrecision : p);
  }

  /// Sparse entries are 4 bytes each; switch to the flat array once the
  /// sparse form would match its size.
  std::size_t densify_threshold() const noexcept { return register_count() / 4; }

  void set_register(std::uint32_t idx, std::uint8_t rho) {
    if (dense()) {
      if (rho > regs_[idx]) {
        regs_[idx] = rho;
        cache_valid_ = false;
      }
      return;
    }
    const std::uint32_t packed = (idx << 8) | rho;
    auto it = std::lower_bound(sparse_.begin(), sparse_.end(), std::uint32_t{idx << 8});
    if (it != sparse_.end() && (*it >> 8) == idx) {
      if (packed > *it) {
        *it = packed;
        cache_valid_ = false;
      }
      return;
    }
    sparse_.insert(it, packed);
    cache_valid_ = false;
    if (sparse_.size() >= densify_threshold()) densify();
  }

  void densify() {
    regs_.assign(register_count(), 0);
    for (const std::uint32_t packed : sparse_) {
      regs_[packed >> 8] = static_cast<std::uint8_t>(packed & 0xffu);
    }
    sparse_.clear();
    sparse_.shrink_to_fit();
  }

  static double alpha_m(std::size_t m) noexcept {
    switch (m) {
      case 16: return 0.673;
      case 32: return 0.697;
      case 64: return 0.709;
      default: return 0.7213 / (1.0 + 1.079 / static_cast<double>(m));
    }
  }

  double compute_estimate() const {
    const std::size_t m = register_count();
    double sum = 0.0;
    std::size_t zeros = 0;
    // Canonical accumulation order: register index 0..m-1 for both forms,
    // so the estimate never depends on which representation holds the
    // registers.
    const auto accumulate = [&](std::uint8_t reg) {
      if (reg == 0) {
        ++zeros;
        sum += 1.0;
      } else {
        sum += std::ldexp(1.0, -static_cast<int>(reg));
      }
    };
    if (dense()) {
      for (const std::uint8_t r : regs_) accumulate(r);
    } else {
      std::size_t next = 0;
      for (const std::uint32_t packed : sparse_) {
        const std::size_t idx = packed >> 8;
        for (; next < idx; ++next) accumulate(0);
        accumulate(static_cast<std::uint8_t>(packed & 0xffu));
        next = idx + 1;
      }
      for (; next < m; ++next) accumulate(0);
    }
    const double md = static_cast<double>(m);
    const double raw = alpha_m(m) * md * md / sum;
    if (raw <= 2.5 * md && zeros != 0) {
      // Linear counting: far more accurate while most registers are zero.
      return md * std::log(md / static_cast<double>(zeros));
    }
    // 64-bit hashes: the classic 32-bit large-range correction never
    // applies at these cardinalities.
    return raw;
  }

  std::uint8_t precision_;
  /// Sparse form: sorted by register index, packed (index << 8) | rank.
  std::vector<std::uint32_t> sparse_;
  /// Dense form: 2^precision ranks; non-empty once densified.
  std::vector<std::uint8_t> regs_;
  mutable double cached_estimate_ = 0.0;
  mutable bool cache_valid_ = false;
};

/// Exact-until-threshold cardinality estimator: small sets stay an exact
/// FlatSet (count() is exact, serialization slot-exact, downstream
/// consumers byte-identical to a sketch-free build), and only sets that
/// outgrow `promote_threshold` pay for HLL registers.  Promotion folds
/// every exact key into the sketch, so the register file — and therefore
/// the estimate — is a pure function of the key set, independent of when
/// promotion happened or in which merge order keys arrived.
class CardinalityEstimator {
 public:
  explicit CardinalityEstimator(std::uint32_t promote_threshold = 1024,
                                std::uint8_t precision = HllSketch::kDefaultPrecision)
      : sketch_(precision), threshold_(promote_threshold) {}

  std::uint32_t promote_threshold() const noexcept { return threshold_; }
  std::uint8_t precision() const noexcept { return sketch_.precision(); }
  bool promoted() const noexcept { return promoted_; }

  void add(std::uint64_t key) {
    if (!promoted_) {
      if (exact_.insert(key) && exact_.size() > threshold_) promote();
      return;
    }
    sketch_.add(key);
  }

  /// Exact size before promotion, sketch estimate after.
  std::uint64_t count() const {
    return promoted_ ? sketch_.estimate_u64() : exact_.size();
  }

  /// Requires matching knobs (the federation path configures every sensor
  /// identically); returns false on a mismatch.
  bool merge_from(const CardinalityEstimator& other) {
    if (threshold_ != other.threshold_ || precision() != other.precision()) return false;
    if (other.promoted_) {
      if (!promoted_) promote();
      return sketch_.merge_from(other.sketch_);
    }
    for (const std::uint64_t key : other.exact_) add(key);
    return true;
  }

  std::size_t memory_bytes() const noexcept {
    return exact_.capacity() * sizeof(std::uint64_t) * 2 + sketch_.memory_bytes();
  }

  /// Slot-exact below the threshold (the exact set's layout is
  /// load-bearing for determinism, like every flat container checkpoint),
  /// representation-exact above it.
  void save(BinaryWriter& out) const {
    out.u32(threshold_);
    out.u8(promoted_ ? 1 : 0);
    if (promoted_) {
      sketch_.save(out);
    } else {
      out.u8(sketch_.precision());
      out.u64(exact_.capacity());
      out.u64(exact_.size());
      exact_.for_each_slot([&out](std::size_t slot, std::uint64_t key) {
        out.u64(slot);
        out.u64(key);
      });
    }
  }

  bool load(BinaryReader& in) {
    const std::uint32_t threshold = in.u32();
    const std::uint8_t was_promoted = in.u8();
    if (!in.ok() || threshold != threshold_ || was_promoted > 1) return false;
    exact_.clear();
    promoted_ = was_promoted != 0;
    if (promoted_) {
      const std::uint8_t want = precision();
      if (!sketch_.load(in) || sketch_.precision() != want) return false;
      return true;
    }
    const std::uint8_t p = in.u8();
    if (!in.ok() || p != precision()) return false;
    sketch_ = HllSketch(p);
    const std::uint64_t cap = in.u64();
    const std::uint64_t n = in.u64();
    if (!in.ok() || n > cap || !exact_.restore_layout(cap)) return false;
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t slot = in.u64();
      const std::uint64_t key = in.u64();
      if (!in.ok() || !exact_.place(slot, key)) return false;
    }
    return in.ok();
  }

 private:
  void promote() {
    for (const std::uint64_t key : exact_) sketch_.add(key);
    exact_ = FlatSet<std::uint64_t>{};  // clear() keeps capacity; release it
    promoted_ = true;
  }

  FlatSet<std::uint64_t> exact_;
  HllSketch sketch_;
  std::uint32_t threshold_;
  bool promoted_ = false;
};

}  // namespace dnsbs::util
