// Process-wide metrics: named counters, gauges and log-scale histograms
// plus scoped spans, feeding one registry every pipeline layer reports to.
//
// Design constraints (DESIGN.md "Observability"):
//
//   * Hot-path writes are lock-free: counters are sharded relaxed atomics
//     (each thread owns a cache-line-padded shard slot), histograms bump
//     one relaxed atomic bucket.  Registration and snapshots take a mutex
//     but happen per stage / per window, never per record.
//   * The determinism contract extends to telemetry: a counter or gauge
//     registered without the `sched` flag must read byte-identical for any
//     DNSBS_THREADS setting on the same input.  Scheduling-shaped series
//     (thread-pool dispatches, per-shard prune cadence) are registered
//     with `sched = true` and excluded from MetricsSnapshot::
//     deterministic_view(); histograms record durations and are always
//     excluded.
//   * Naming scheme: `dnsbs.<layer>.<name>` (layers: parse, capture,
//     dedup, aggregate, cache, threadpool, sensor, features, ml,
//     pipeline); spans land under `dnsbs.span.<path>` with '/'-joined
//     nesting.  Duration histograms end in `_ns`.
//   * `cmake -DDNSBS_METRICS=OFF` defines DNSBS_METRICS_ENABLED=0 and
//     compiles every write to a no-op (empty classes, `((void)0)` span
//     macro); the snapshot/serialization surface stays available and
//     returns an empty snapshot, so callers need no #ifdefs.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#ifndef DNSBS_METRICS_ENABLED
#define DNSBS_METRICS_ENABLED 1
#endif

namespace dnsbs::util {

class BinaryReader;
class BinaryWriter;

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// Log-scale (power-of-two) histogram layout, shared by every histogram so
/// snapshots merge and serialize uniformly.  Bucket 0 holds the value 0;
/// bucket i >= 1 holds values v with bit_width(v) == i, i.e. the range
/// [2^(i-1), 2^i - 1]; the last bucket absorbs everything wider.
inline constexpr std::size_t kHistogramBuckets = 44;

constexpr std::size_t histogram_bucket_index(std::uint64_t v) noexcept {
  const std::size_t w = static_cast<std::size_t>(std::bit_width(v));
  return w < kHistogramBuckets ? w : kHistogramBuckets - 1;
}

/// Inclusive upper bound of bucket `i` (UINT64_MAX for the overflow
/// bucket).  histogram_bucket_index(histogram_bucket_upper(i)) == i.
constexpr std::uint64_t histogram_bucket_upper(std::size_t i) noexcept {
  if (i == 0) return 0;
  if (i >= kHistogramBuckets - 1) return ~std::uint64_t{0};
  return (std::uint64_t{1} << i) - 1;
}

/// Monotonic nanoseconds for duration measurements (0 when compiled out).
std::uint64_t metrics_now_ns() noexcept;

namespace detail {
/// Round-robin shard assignment, one slot per thread (cold: fires once per
/// thread per process).
std::size_t next_shard_slot() noexcept;

inline std::size_t shard_slot() noexcept {
#if DNSBS_METRICS_ENABLED
  thread_local const std::size_t slot = next_shard_slot();
  return slot;
#else
  return 0;
#endif
}
}  // namespace detail

class MetricCounter {
 public:
#if DNSBS_METRICS_ENABLED
  void add(std::uint64_t n) noexcept {
    shards_[detail::shard_slot() & (kShards - 1)].v.fetch_add(n,
                                                              std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }
  void reset() noexcept {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }
#else
  void add(std::uint64_t) noexcept {}
  std::uint64_t value() const noexcept { return 0; }
  void reset() noexcept {}
#endif
  void inc() noexcept { add(1); }

#if DNSBS_METRICS_ENABLED
 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  static constexpr std::size_t kShards = 16;
  static_assert((kShards & (kShards - 1)) == 0, "shard masking needs a power of two");
  std::array<Shard, kShards> shards_{};
#endif
};

class MetricGauge {
 public:
#if DNSBS_METRICS_ENABLED
  void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) noexcept { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const noexcept { return v_.load(std::memory_order_relaxed); }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }
#else
  void set(std::int64_t) noexcept {}
  void add(std::int64_t) noexcept {}
  std::int64_t value() const noexcept { return 0; }
  void reset() noexcept {}
#endif

#if DNSBS_METRICS_ENABLED
 private:
  std::atomic<std::int64_t> v_{0};
#endif
};

class MetricHistogram {
 public:
#if DNSBS_METRICS_ENABLED
  void record(std::uint64_t v) noexcept {
    buckets_[histogram_bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }
  std::uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(std::size_t i) const noexcept {
    return i < kHistogramBuckets ? buckets_[i].load(std::memory_order_relaxed) : 0;
  }
  void reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }
#else
  void record(std::uint64_t) noexcept {}
  std::uint64_t count() const noexcept { return 0; }
  std::uint64_t sum() const noexcept { return 0; }
  std::uint64_t bucket(std::size_t) const noexcept { return 0; }
  void reset() noexcept {}
#endif

#if DNSBS_METRICS_ENABLED
 private:
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
#endif
};

/// Registry lookups.  The returned reference is valid for the process
/// lifetime (metrics are never deregistered; reset() zeroes in place), so
/// hot call sites cache it once:
///   namespace { util::MetricCounter& g_lines = util::metrics_counter("dnsbs.parse.lines"); }
/// `sched = true` marks a series whose value legitimately depends on the
/// thread count / scheduling; it is excluded from deterministic_view().
/// Registering the same name twice returns the same object (the flags of
/// the first registration win).
MetricCounter& metrics_counter(std::string_view name, bool sched = false);
MetricGauge& metrics_gauge(std::string_view name, bool sched = false);
MetricHistogram& metrics_histogram(std::string_view name);

/// One exported metric, as captured by metrics_snapshot().
struct MetricValue {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  bool sched = false;
  std::uint64_t count = 0;                  ///< counter value / histogram samples
  std::int64_t gauge = 0;                   ///< gauge value
  std::uint64_t sum = 0;                    ///< histogram sum of recorded values
  std::vector<std::uint64_t> buckets;       ///< histogram bucket counts (sparse-free)

  bool operator==(const MetricValue&) const = default;
};

/// A point-in-time copy of the whole registry, ordered by name (the
/// registry keys are kept sorted, so ordering is deterministic and stable
/// across runs that register the same series).
struct MetricsSnapshot {
  std::vector<MetricValue> values;

  const MetricValue* find(std::string_view name) const noexcept;
  /// MetricCounter value or gauge value by name; 0 when absent.
  std::int64_t scalar(std::string_view name) const noexcept;

  /// Counters and gauges only, minus sched-flagged series: exactly the
  /// values the determinism contract covers (byte-identical across
  /// DNSBS_THREADS).  Histograms record durations and are dropped.
  MetricsSnapshot deterministic_view() const;

  /// after - before on counters and histograms (clamped at 0 so a reset
  /// between snapshots degrades gracefully); gauges take `after`.  Series
  /// only present in `after` pass through unchanged.
  static MetricsSnapshot delta(const MetricsSnapshot& before, const MetricsSnapshot& after);

  /// {"metrics":[{"name":...,"kind":"counter","sched":false,"value":N}, ...]}
  /// Histograms serialize count/sum plus sparse [upper_bound, count] pairs.
  std::string to_json() const;

  /// Prometheus text exposition format; '.'/'/' in names map to '_',
  /// histograms emit cumulative le-labelled buckets plus _sum/_count.
  std::string to_prometheus() const;

  /// Binary round-trip for checkpoint files.  Counters and gauges only:
  /// histograms record wall-clock durations, which are outside the
  /// determinism contract and meaningless to resurrect in a new process.
  void save(BinaryWriter& out) const;
  bool load(BinaryReader& in);
};

/// Snapshot of every registered metric.
MetricsSnapshot metrics_snapshot();

/// Zeroes every registered metric in place (handles stay valid).  Test and
/// bench isolation; never called on the hot path.
void metrics_reset();

/// Resets the registry, then re-applies every counter and gauge from
/// `snap` (registering series the process hasn't touched yet, preserving
/// their sched flags).  Checkpoint restore: a restarted daemon loads the
/// snapshot taken at checkpoint time so subsequent window deltas match the
/// uninterrupted run.  Histogram series in `snap` are skipped.  No-op when
/// compiled with -DDNSBS_METRICS=OFF.
void metrics_restore(const MetricsSnapshot& snap);

/// RAII span: measures wall time from construction to destruction and
/// records it (in nanoseconds) into the histogram
/// `dnsbs.span.<outer>/<inner>/...` named by the thread's span stack, so
/// nested spans read as a hierarchical wall-time trace in the snapshot.
/// Span stacks are per-thread; a span opened on a pool worker roots its
/// own trace.  While a trace capture is active (util/trace.hpp) each span
/// also appends begin/end events to its thread's trace ring.  Frames past
/// the depth cap record nothing and are tallied in the sched counter
/// `dnsbs.span.dropped`.  Use through DNSBS_SPAN below.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* stage) noexcept;
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

#if DNSBS_METRICS_ENABLED
 private:
  std::uint64_t start_ns_;
  const char* stage_;
  bool traced_;
#endif
};

#if DNSBS_METRICS_ENABLED
#define DNSBS_SPAN_CAT2(a, b) a##b
#define DNSBS_SPAN_CAT(a, b) DNSBS_SPAN_CAT2(a, b)
#define DNSBS_SPAN(stage) \
  ::dnsbs::util::ScopedSpan DNSBS_SPAN_CAT(dnsbs_span_, __LINE__)(stage)
#else
#define DNSBS_SPAN(stage) ((void)0)
#endif

}  // namespace dnsbs::util
