#include "util/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>

#include "util/binio.hpp"
#include "util/trace.hpp"

namespace dnsbs::util {

std::size_t detail::next_shard_slot() noexcept {
  static std::atomic<std::size_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t metrics_now_ns() noexcept {
#if DNSBS_METRICS_ENABLED
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#else
  return 0;
#endif
}

#if DNSBS_METRICS_ENABLED

namespace {

struct Entry {
  MetricKind kind;
  bool sched = false;
  // One of these is set, matching `kind`.  unique_ptr keeps addresses
  // stable across map rehash/rebalance so cached references never dangle.
  std::unique_ptr<MetricCounter> counter;
  std::unique_ptr<MetricGauge> gauge;
  std::unique_ptr<MetricHistogram> histogram;
};

/// The process-wide registry.  std::map keeps names sorted, which makes
/// snapshot ordering deterministic without a per-snapshot sort.
class Registry {
 public:
  static Registry& instance() {
    static Registry r;
    return r;
  }

  MetricCounter& counter(std::string_view name, bool sched) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(name);
    if (it == entries_.end()) {
      Entry e{MetricKind::kCounter, sched, std::make_unique<MetricCounter>(), nullptr, nullptr};
      it = entries_.emplace(std::string(name), std::move(e)).first;
    }
    return *it->second.counter;
  }

  MetricGauge& gauge(std::string_view name, bool sched) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(name);
    if (it == entries_.end()) {
      Entry e{MetricKind::kGauge, sched, nullptr, std::make_unique<MetricGauge>(), nullptr};
      it = entries_.emplace(std::string(name), std::move(e)).first;
    }
    return *it->second.gauge;
  }

  MetricHistogram& histogram(std::string_view name) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(name);
    if (it == entries_.end()) {
      Entry e{MetricKind::kHistogram, false, nullptr, nullptr,
              std::make_unique<MetricHistogram>()};
      it = entries_.emplace(std::string(name), std::move(e)).first;
    }
    return *it->second.histogram;
  }

  MetricsSnapshot snapshot() const {
    MetricsSnapshot snap;
    std::lock_guard<std::mutex> lock(mutex_);
    snap.values.reserve(entries_.size());
    for (const auto& [name, entry] : entries_) {
      MetricValue v;
      v.name = name;
      v.kind = entry.kind;
      v.sched = entry.sched;
      switch (entry.kind) {
        case MetricKind::kCounter:
          v.count = entry.counter->value();
          break;
        case MetricKind::kGauge:
          v.gauge = entry.gauge->value();
          break;
        case MetricKind::kHistogram: {
          v.count = entry.histogram->count();
          v.sum = entry.histogram->sum();
          v.buckets.resize(kHistogramBuckets);
          for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
            v.buckets[i] = entry.histogram->bucket(i);
          }
          break;
        }
      }
      snap.values.push_back(std::move(v));
    }
    return snap;
  }

  void reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [name, entry] : entries_) {
      if (entry.counter) entry.counter->reset();
      if (entry.gauge) entry.gauge->reset();
      if (entry.histogram) entry.histogram->reset();
    }
  }

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Entry, std::less<>> entries_;
};

/// Per-thread span stack; spans opened on a worker root their own trace.
constexpr std::size_t kMaxSpanDepth = 16;
thread_local const char* tls_span_stack[kMaxSpanDepth];
thread_local std::size_t tls_span_depth = 0;

/// Frames nested past kMaxSpanDepth (they record no histogram and no
/// trace events).  Which thread overruns depends on work distribution, so
/// the tally is sched-shaped.
MetricCounter& span_dropped_counter() {
  static MetricCounter& c = metrics_counter("dnsbs.span.dropped", /*sched=*/true);
  return c;
}

}  // namespace

MetricCounter& metrics_counter(std::string_view name, bool sched) {
  return Registry::instance().counter(name, sched);
}

MetricGauge& metrics_gauge(std::string_view name, bool sched) {
  return Registry::instance().gauge(name, sched);
}

MetricHistogram& metrics_histogram(std::string_view name) {
  return Registry::instance().histogram(name);
}

MetricsSnapshot metrics_snapshot() { return Registry::instance().snapshot(); }

void metrics_reset() { Registry::instance().reset(); }

void metrics_restore(const MetricsSnapshot& snap) {
  Registry::instance().reset();
  for (const MetricValue& v : snap.values) {
    switch (v.kind) {
      case MetricKind::kCounter: {
        MetricCounter& c = Registry::instance().counter(v.name, v.sched);
        c.reset();
        if (v.count != 0) c.add(v.count);
        break;
      }
      case MetricKind::kGauge:
        Registry::instance().gauge(v.name, v.sched).set(v.gauge);
        break;
      case MetricKind::kHistogram:
        break;  // durations: not restorable, not part of the contract
    }
  }
}

ScopedSpan::ScopedSpan(const char* stage) noexcept
    : start_ns_(metrics_now_ns()), stage_(stage), traced_(false) {
  if (tls_span_depth < kMaxSpanDepth) {
    tls_span_stack[tls_span_depth] = stage;
  } else {
    span_dropped_counter().inc();
  }
  ++tls_span_depth;  // depth still tracks overflowed frames (they record nothing)
  if (tls_span_depth <= kMaxSpanDepth && trace_enabled()) {
    traced_ = detail::trace_record_begin(stage, start_ns_);
  }
}

ScopedSpan::~ScopedSpan() {
  const std::uint64_t end_ns = metrics_now_ns();
  // End the trace event even if the capture stopped mid-span: the begin
  // was recorded, so the stream stays balanced.
  if (traced_) detail::trace_record_end(stage_, end_ns);
  --tls_span_depth;
  if (tls_span_depth >= kMaxSpanDepth) return;  // overflowed frame: dropped
  std::string path = "dnsbs.span.";
  for (std::size_t i = 0; i <= tls_span_depth; ++i) {
    if (i != 0) path += '/';
    path += tls_span_stack[i];
  }
  metrics_histogram(path).record(end_ns - start_ns_);
}

#else  // !DNSBS_METRICS_ENABLED

namespace {
// Single dummies: every lookup returns the same no-op object, so call
// sites keep their cached-reference pattern with zero storage cost.
MetricCounter g_noop_counter;
MetricGauge g_noop_gauge;
MetricHistogram g_noop_histogram;
}  // namespace

MetricCounter& metrics_counter(std::string_view, bool) { return g_noop_counter; }
MetricGauge& metrics_gauge(std::string_view, bool) { return g_noop_gauge; }
MetricHistogram& metrics_histogram(std::string_view) { return g_noop_histogram; }
MetricsSnapshot metrics_snapshot() { return {}; }
void metrics_reset() {}
void metrics_restore(const MetricsSnapshot&) {}

ScopedSpan::ScopedSpan(const char*) noexcept {}
ScopedSpan::~ScopedSpan() = default;

#endif  // DNSBS_METRICS_ENABLED

// ---- snapshot helpers & serializers (always compiled) -------------------

const MetricValue* MetricsSnapshot::find(std::string_view name) const noexcept {
  const auto it = std::lower_bound(
      values.begin(), values.end(), name,
      [](const MetricValue& v, std::string_view n) { return v.name < n; });
  if (it == values.end() || it->name != name) return nullptr;
  return &*it;
}

std::int64_t MetricsSnapshot::scalar(std::string_view name) const noexcept {
  const MetricValue* v = find(name);
  if (v == nullptr) return 0;
  if (v->kind == MetricKind::kGauge) return v->gauge;
  return static_cast<std::int64_t>(v->count);
}

MetricsSnapshot MetricsSnapshot::deterministic_view() const {
  MetricsSnapshot out;
  for (const MetricValue& v : values) {
    if (v.kind == MetricKind::kHistogram || v.sched) continue;
    out.values.push_back(v);
  }
  return out;
}

MetricsSnapshot MetricsSnapshot::delta(const MetricsSnapshot& before,
                                       const MetricsSnapshot& after) {
  MetricsSnapshot out;
  out.values.reserve(after.values.size());
  for (const MetricValue& a : after.values) {
    MetricValue d = a;
    if (const MetricValue* b = before.find(a.name)) {
      switch (a.kind) {
        case MetricKind::kCounter:
          d.count = a.count >= b->count ? a.count - b->count : 0;
          break;
        case MetricKind::kGauge:
          break;  // gauges are levels, not flows: keep `after`
        case MetricKind::kHistogram:
          d.count = a.count >= b->count ? a.count - b->count : 0;
          d.sum = a.sum >= b->sum ? a.sum - b->sum : 0;
          for (std::size_t i = 0; i < d.buckets.size() && i < b->buckets.size(); ++i) {
            d.buckets[i] = a.buckets[i] >= b->buckets[i] ? a.buckets[i] - b->buckets[i] : 0;
          }
          break;
      }
    }
    out.values.push_back(std::move(d));
  }
  return out;
}

namespace {

const char* kind_name(MetricKind k) noexcept {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

/// Prometheus metric names allow [a-zA-Z0-9_:]; everything else maps to '_'.
std::string prometheus_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

void append_u64(std::string& out, std::uint64_t v) { out += std::to_string(v); }

}  // namespace

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\n  \"metrics\": [";
  bool first = true;
  for (const MetricValue& v : values) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": \"";
    out += v.name;  // names are code literals: no JSON escaping needed
    out += "\", \"kind\": \"";
    out += kind_name(v.kind);
    out += "\"";
    if (v.sched) out += ", \"sched\": true";
    switch (v.kind) {
      case MetricKind::kCounter:
        out += ", \"value\": ";
        append_u64(out, v.count);
        break;
      case MetricKind::kGauge:
        out += ", \"value\": ";
        out += std::to_string(v.gauge);
        break;
      case MetricKind::kHistogram: {
        out += ", \"count\": ";
        append_u64(out, v.count);
        out += ", \"sum\": ";
        append_u64(out, v.sum);
        out += ", \"buckets\": [";
        bool bfirst = true;
        for (std::size_t i = 0; i < v.buckets.size(); ++i) {
          if (v.buckets[i] == 0) continue;
          if (!bfirst) out += ", ";
          bfirst = false;
          out += "[";
          append_u64(out, histogram_bucket_upper(i));
          out += ", ";
          append_u64(out, v.buckets[i]);
          out += "]";
        }
        out += "]";
        break;
      }
    }
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

void MetricsSnapshot::save(BinaryWriter& out) const {
  std::uint64_t n = 0;
  for (const MetricValue& v : values) {
    if (v.kind != MetricKind::kHistogram) ++n;
  }
  out.u64(n);
  for (const MetricValue& v : values) {
    if (v.kind == MetricKind::kHistogram) continue;
    out.str(v.name);
    out.u8(static_cast<std::uint8_t>(v.kind));
    out.u8(v.sched ? 1 : 0);
    if (v.kind == MetricKind::kCounter) {
      out.u64(v.count);
    } else {
      out.i64(v.gauge);
    }
  }
}

bool MetricsSnapshot::load(BinaryReader& in) {
  values.clear();
  const std::uint64_t n = in.u64();
  if (!in.ok()) return false;
  values.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    MetricValue v;
    v.name = in.str();
    const std::uint8_t kind = in.u8();
    v.sched = in.u8() != 0;
    if (kind == static_cast<std::uint8_t>(MetricKind::kCounter)) {
      v.kind = MetricKind::kCounter;
      v.count = in.u64();
    } else if (kind == static_cast<std::uint8_t>(MetricKind::kGauge)) {
      v.kind = MetricKind::kGauge;
      v.gauge = in.i64();
    } else {
      in.fail();
    }
    if (!in.ok()) return false;
    values.push_back(std::move(v));
  }
  return true;
}

std::string MetricsSnapshot::to_prometheus() const {
  std::string out;
  for (const MetricValue& v : values) {
    const std::string name = prometheus_name(v.name);
    out += "# TYPE " + name + " " + kind_name(v.kind) + "\n";
    // Scheduling-shaped series carry a machine-readable marker so scrape
    // consumers (the OBS gate's determinism diff) can strip them the same
    // way deterministic_view() does.
    if (v.sched) out += "# SCHED " + name + "\n";
    switch (v.kind) {
      case MetricKind::kCounter:
        out += name + " ";
        append_u64(out, v.count);
        out += "\n";
        break;
      case MetricKind::kGauge:
        out += name + " " + std::to_string(v.gauge) + "\n";
        break;
      case MetricKind::kHistogram: {
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < v.buckets.size(); ++i) {
          if (v.buckets[i] == 0) continue;
          cumulative += v.buckets[i];
          out += name + "_bucket{le=\"";
          append_u64(out, histogram_bucket_upper(i));
          out += "\"} ";
          append_u64(out, cumulative);
          out += "\n";
        }
        out += name + "_bucket{le=\"+Inf\"} ";
        append_u64(out, v.count);
        out += "\n";
        out += name + "_sum ";
        append_u64(out, v.sum);
        out += "\n";
        out += name + "_count ";
        append_u64(out, v.count);
        out += "\n";
        break;
      }
    }
  }
  return out;
}

}  // namespace dnsbs::util
