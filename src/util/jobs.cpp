#include "util/jobs.hpp"

#include <stdexcept>
#include <utility>

#include "util/metrics.hpp"
#include "util/strings.hpp"

namespace dnsbs::util {

JobSystem::JobSystem(JobSystemConfig config) : config_(std::move(config)) {
  workers_.reserve(config_.threads);
  for (std::size_t i = 0; i < config_.threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

JobSystem::~JobSystem() {
  for (QueueId q = 0; q < queues_.size(); ++q) {
    try {
      drain(q);
    } catch (...) {
      // A queue error still pending at destruction has no drain left to
      // surface through; destruction must not throw.
    }
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

JobSystem::QueueId JobSystem::queue(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (QueueId q = 0; q < queues_.size(); ++q) {
    if (queues_[q].name == name) return q;
  }
  Queue& created = queues_.emplace_back();
  created.name = std::string(name);
  if (!config_.metric_prefix.empty()) {
    const std::string base = config_.metric_prefix + "." + created.name;
    created.queued_metric = &metrics_counter(base + ".queued", /*sched=*/true);
    created.completed_metric = &metrics_counter(base + ".completed", /*sched=*/true);
    created.peak_metric = &metrics_gauge(base + ".queue_depth_peak", /*sched=*/true);
  }
  return queues_.size() - 1;
}

void JobSystem::submit(QueueId q, std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Queue& queue = queues_.at(q);
    queue.jobs.push_back(std::move(job));
    ++queue.submitted;
    const std::size_t depth = queue.jobs.size() + (queue.running ? 1 : 0);
    if (depth > queue.depth_peak) {
      queue.depth_peak = depth;
      if (queue.peak_metric) {
        queue.peak_metric->set(static_cast<std::int64_t>(depth));
      }
    }
    if (queue.queued_metric) queue.queued_metric->inc();
  }
  work_cv_.notify_one();
}

void JobSystem::run_one(std::unique_lock<std::mutex>& lock, QueueId q) {
  Queue& queue = queues_[q];
  std::function<void()> job = std::move(queue.jobs.front());
  queue.jobs.pop_front();
  queue.running = true;
  lock.unlock();
  std::exception_ptr error;
  try {
    job();
  } catch (...) {
    error = std::current_exception();
  }
  lock.lock();
  queue.running = false;
  ++queue.completed;
  if (queue.completed_metric) queue.completed_metric->inc();
  if (error && !queue.error) queue.error = error;
  lock.unlock();
  // Finishing a job makes this queue runnable again (its next job may be
  // waiting) and unblocks drainers.
  done_cv_.notify_all();
  work_cv_.notify_one();
  lock.lock();
}

void JobSystem::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    // Round-robin scan for a runnable queue so one busy queue cannot
    // starve the others.
    QueueId found = queues_.size();
    const std::size_t n = queues_.size();
    for (std::size_t i = 0; i < n; ++i) {
      const QueueId q = (rr_next_ + i) % n;
      if (!queues_[q].running && !queues_[q].jobs.empty()) {
        found = q;
        rr_next_ = (q + 1) % n;
        break;
      }
    }
    if (found < queues_.size()) {
      run_one(lock, found);
      continue;
    }
    if (stopping_) return;
    work_cv_.wait(lock);
  }
}

void JobSystem::drain(QueueId q) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (q >= queues_.size()) {
    throw std::out_of_range(format("JobSystem::drain: no queue %zu", q));
  }
  for (;;) {
    Queue& queue = queues_[q];
    if (!queue.jobs.empty() && !queue.running) {
      // Help: execute the queue inline instead of waiting for a worker.
      run_one(lock, q);
      continue;
    }
    if (queue.jobs.empty() && !queue.running) break;
    done_cv_.wait(lock);
  }
  if (queues_[q].error) {
    std::exception_ptr error = std::exchange(queues_[q].error, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void JobSystem::drain_all() {
  std::size_t n;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    n = queues_.size();
  }
  for (QueueId q = 0; q < n; ++q) drain(q);
}

std::vector<JobSystem::QueueStats> JobSystem::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<QueueStats> out;
  out.reserve(queues_.size());
  for (const Queue& queue : queues_) {
    QueueStats s;
    s.name = queue.name;
    s.depth = queue.jobs.size();
    s.running = queue.running;
    s.submitted = queue.submitted;
    s.completed = queue.completed;
    s.depth_peak = queue.depth_peak;
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace dnsbs::util
