#include "util/fuzz.hpp"

#include <string>

namespace dnsbs::util {

const char* to_string(MutationKind k) noexcept {
  switch (k) {
    case MutationKind::kTruncate: return "truncate";
    case MutationKind::kBitFlip: return "bitflip";
    case MutationKind::kByteSet: return "byteset";
    case MutationKind::kPointerRewrite: return "ptr";
    case MutationKind::kCountInflate: return "count";
    case MutationKind::kSpanSplice: return "splice";
  }
  return "mutation?";
}

Mutation ByteMutator::mutate(std::vector<std::uint8_t>& buf) {
  // Empty buffers admit only growth.
  const MutationKind kind = buf.empty()
                                ? MutationKind::kSpanSplice
                                : static_cast<MutationKind>(rng_.below(6));
  Mutation m{kind, 0};
  switch (kind) {
    case MutationKind::kTruncate: {
      buf.resize(rng_.below(buf.size() + 1));
      m.offset = buf.size();
      break;
    }
    case MutationKind::kBitFlip: {
      m.offset = rng_.below(buf.size());
      buf[m.offset] ^= static_cast<std::uint8_t>(1u << rng_.below(8));
      break;
    }
    case MutationKind::kByteSet: {
      m.offset = rng_.below(buf.size());
      buf[m.offset] = static_cast<std::uint8_t>(rng_.below(256));
      break;
    }
    case MutationKind::kPointerRewrite: {
      // Plant a compression pointer somewhere: 0xc0|hi, lo.  Half the
      // time the target is a small offset (plausibly inside the header or
      // question), otherwise anywhere in the 14-bit range — forward
      // pointers, self pointers, and pointer chains all fall out.
      m.offset = rng_.below(buf.size());
      const std::size_t target =
          rng_.chance(0.5) ? rng_.below(64) : rng_.below(0x4000);
      buf[m.offset] = static_cast<std::uint8_t>(0xc0 | (target >> 8));
      if (m.offset + 1 < buf.size()) {
        buf[m.offset + 1] = static_cast<std::uint8_t>(target & 0xff);
      }
      break;
    }
    case MutationKind::kCountInflate: {
      // The four section counts sit at header offsets 4/6/8/10.  Write a
      // large big-endian count so decode loops see far more records than
      // the body holds.
      const std::size_t field = 4 + 2 * rng_.below(4);
      m.offset = field;
      const std::uint16_t count = static_cast<std::uint16_t>(0xff00 | rng_.below(256));
      if (field < buf.size()) buf[field] = static_cast<std::uint8_t>(count >> 8);
      if (field + 1 < buf.size()) buf[field + 1] = static_cast<std::uint8_t>(count);
      break;
    }
    case MutationKind::kSpanSplice: {
      // Re-insert a copy of an existing span (or a fresh random run when
      // the buffer is empty) at a random position; duplicated records and
      // repeated name fragments come from here.
      const std::size_t span = 1 + rng_.below(16);
      std::vector<std::uint8_t> copy(span);
      if (buf.empty()) {
        for (auto& b : copy) b = static_cast<std::uint8_t>(rng_.below(256));
      } else {
        const std::size_t from = rng_.below(buf.size());
        for (std::size_t i = 0; i < span; ++i) copy[i] = buf[(from + i) % buf.size()];
      }
      m.offset = rng_.below(buf.size() + 1);
      buf.insert(buf.begin() + static_cast<std::ptrdiff_t>(m.offset), copy.begin(),
                 copy.end());
      break;
    }
  }
  return m;
}

std::vector<Mutation> ByteMutator::mutate_n(std::vector<std::uint8_t>& buf,
                                            std::size_t n) {
  std::vector<Mutation> trace;
  trace.reserve(n);
  for (std::size_t i = 0; i < n; ++i) trace.push_back(mutate(buf));
  return trace;
}

std::string describe(const std::vector<Mutation>& trace) {
  std::string out;
  for (const Mutation& m : trace) {
    if (!out.empty()) out.push_back(' ');
    out.append(to_string(m.kind));
    out.push_back('@');
    out.append(std::to_string(m.offset));
  }
  return out;
}

}  // namespace dnsbs::util
