#include "util/table.hpp"

#include <algorithm>
#include <cassert>
#include <ostream>

#include "util/strings.hpp"

namespace dnsbs::util {

TableWriter& TableWriter::columns(std::vector<std::string> names) {
  header_ = std::move(names);
  return *this;
}

TableWriter& TableWriter::row(std::vector<std::string> cells) {
  assert(header_.empty() || cells.size() == header_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string TableWriter::to_ascii() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  const auto widen = [&widths](const std::vector<std::string>& cells) {
    if (widths.size() < cells.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  std::string out;
  if (!title_.empty()) {
    out += "== " + title_ + " ==\n";
  }
  const auto emit = [&out, &widths](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) out += "  ";
      out += cells[i];
      out.append(widths[i] - cells[i].size(), ' ');
    }
    out += '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < widths.size(); ++i) total += widths[i] + (i ? 2 : 0);
    out.append(total, '-');
    out += '\n';
  }
  for (const auto& r : rows_) emit(r);
  return out;
}

std::string TableWriter::to_csv() const {
  const auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string quoted = "\"";
    for (const char c : cell) {
      if (c == '"') quoted += '"';
      quoted += c;
    }
    quoted += '"';
    return quoted;
  };
  std::string out;
  const auto emit = [&out, &escape](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) out += ',';
      out += escape(cells[i]);
    }
    out += '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
  return out;
}

void TableWriter::print(std::ostream& os) const { os << to_ascii() << '\n'; }

std::string fixed(double v, int digits) { return format("%.*f", digits, v); }

std::string with_commas(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  const std::size_t n = digits.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0 && (n - i) % 3 == 0) out += ',';
    out += digits[i];
  }
  return out;
}

}  // namespace dnsbs::util
