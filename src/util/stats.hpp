// Descriptive statistics used by the feature extractors and the benchmark
// harness: moments, quantiles, Shannon entropy, histograms, and the
// log-log linear fit used to reproduce the paper's Figure 4 power law.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <unordered_map>
#include <vector>

namespace dnsbs::util {

double mean(std::span<const double> xs) noexcept;
double variance(std::span<const double> xs) noexcept;  // population variance
double stddev(std::span<const double> xs) noexcept;

/// Linear-interpolated quantile; q in [0, 1].  Sorts a copy.
double quantile(std::vector<double> xs, double q) noexcept;

/// Five-number summary plus 10th/90th percentiles, as used by the paper's
/// footprint box plots (Figure 12, whiskers at 10%/90%).
struct BoxStats {
  double p10 = 0, p25 = 0, p50 = 0, p75 = 0, p90 = 0;
  double min = 0, max = 0;
  std::size_t n = 0;
};
BoxStats box_stats(std::vector<double> xs) noexcept;

/// Shannon entropy (bits) of a discrete distribution given by counts.
/// Zero counts are ignored.  Empty input yields 0.
double shannon_entropy(std::span<const std::size_t> counts) noexcept;

/// Entropy normalized by log2(k) where k = number of non-zero bins, so the
/// result is in [0, 1]; 1 means uniform spread.  Matches the paper's use of
/// entropy as a spatial-diversity score.
double normalized_entropy(std::span<const std::size_t> counts) noexcept;

/// Count-iterator form of normalized_entropy: streams the bucket counts
/// straight out of any container (e.g. a FlatMap of bucket -> count) via
/// `proj(*it)`, with no intermediate count-vector copy.  The pass order
/// (non-zero bins, then total, then entropy) mirrors the span overload
/// exactly, so both forms produce bit-identical results over the same
/// count sequence.
template <typename It, typename Proj>
double normalized_entropy(It first, It last, Proj proj) noexcept {
  std::size_t nonzero = 0;
  for (It it = first; it != last; ++it) {
    if (static_cast<std::size_t>(proj(*it)) > 0) ++nonzero;
  }
  if (nonzero < 2) return 0.0;
  std::size_t total = 0;
  for (It it = first; it != last; ++it) total += static_cast<std::size_t>(proj(*it));
  if (total == 0) return 0.0;
  double h = 0.0;
  for (It it = first; it != last; ++it) {
    const std::size_t c = static_cast<std::size_t>(proj(*it));
    if (c == 0) continue;
    const double p = static_cast<double>(c) / static_cast<double>(total);
    h -= p * std::log2(p);
  }
  return h / std::log2(static_cast<double>(nonzero));
}

/// Counts occurrences of arbitrary keys, then exposes the count vector.
template <typename Key>
class Counter {
 public:
  void add(const Key& k, std::size_t n = 1) { counts_[k] += n; }

  std::size_t distinct() const noexcept { return counts_.size(); }

  std::size_t total() const noexcept {
    std::size_t t = 0;
    for (const auto& [k, v] : counts_) t += v;
    return t;
  }

  std::vector<std::size_t> values() const {
    std::vector<std::size_t> out;
    out.reserve(counts_.size());
    for (const auto& [k, v] : counts_) out.push_back(v);
    return out;
  }

  const std::unordered_map<Key, std::size_t>& map() const noexcept { return counts_; }

 private:
  std::unordered_map<Key, std::size_t> counts_;
};

/// Least-squares fit y = a + b*x.  Returns {a, b}.
struct LinearFit {
  double intercept = 0;
  double slope = 0;
  double r2 = 0;
};
LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys) noexcept;

/// Power-law fit y = c * x^alpha via regression in log-log space.
/// Only positive (x, y) pairs participate.  Reproduces the "power of 0.71"
/// fit of Figure 4.
struct PowerLawFit {
  double c = 0;      ///< multiplicative constant
  double alpha = 0;  ///< exponent
  double r2 = 0;     ///< goodness of fit in log-log space
};
PowerLawFit power_law_fit(std::span<const double> xs, std::span<const double> ys) noexcept;

/// Complementary-CDF points (x, fraction >= x) of a sample, for log-log
/// footprint plots (Figure 9).
std::vector<std::pair<double, double>> ccdf(std::vector<double> xs);

/// Fixed-width histogram over [lo, hi) with `bins` buckets; out-of-range
/// values clamp to the first/last bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, std::size_t n = 1) noexcept;
  std::size_t bucket_count() const noexcept { return counts_.size(); }
  std::size_t count(std::size_t bucket) const noexcept { return counts_[bucket]; }
  double bucket_low(std::size_t bucket) const noexcept { return lo_ + width_ * static_cast<double>(bucket); }
  std::size_t total() const noexcept { return total_; }

 private:
  double lo_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace dnsbs::util
