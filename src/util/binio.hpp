// Little-endian binary stream IO for checkpoint files.
//
// The streaming daemon serializes sensor state (dedup window, aggregates,
// feature cache) so a restart resumes with byte-identical subsequent
// windows.  Fixed little-endian layout keeps checkpoint files portable
// between builds; doubles round-trip through std::bit_cast so feature rows
// restore bit-exactly.  Readers never throw on truncated input — every
// read reports success through ok() and returns a zero value once the
// stream has failed, so load paths can validate once at the end.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

namespace dnsbs::util {

class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.put(static_cast<char>(v)); }
  void u16(std::uint16_t v) { le(v, 2); }
  void u32(std::uint32_t v) { le(v, 4); }
  void u64(std::uint64_t v) { le(v, 8); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  void str(const std::string& s) {
    u64(s.size());
    out_.write(s.data(), static_cast<std::streamsize>(s.size()));
  }
  void bytes(const void* data, std::size_t n) {
    out_.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
  }

  bool ok() const { return static_cast<bool>(out_); }

 private:
  void le(std::uint64_t v, int width) {
    char buf[8];
    for (int i = 0; i < width; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    out_.write(buf, width);
  }
  std::ostream& out_;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::istream& in) : in_(in) {}

  std::uint8_t u8() {
    const int c = in_.get();
    if (c == std::istream::traits_type::eof()) {
      failed_ = true;
      return 0;
    }
    return static_cast<std::uint8_t>(c);
  }
  std::uint16_t u16() { return static_cast<std::uint16_t>(le(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(le(4)); }
  std::uint64_t u64() { return le(8); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }

  std::string str() {
    const std::uint64_t n = u64();
    if (failed_ || n > kMaxBlob) {
      failed_ = true;
      return {};
    }
    std::string s(static_cast<std::size_t>(n), '\0');
    in_.read(s.data(), static_cast<std::streamsize>(n));
    if (in_.gcount() != static_cast<std::streamsize>(n)) failed_ = true;
    return s;
  }
  bool bytes(void* data, std::size_t n) {
    in_.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
    if (in_.gcount() != static_cast<std::streamsize>(n)) failed_ = true;
    return !failed_;
  }

  bool ok() const { return !failed_ && static_cast<bool>(in_); }
  /// Marks the stream failed from a semantic check (bad magic, impossible
  /// count); subsequent reads return zero.
  void fail() { failed_ = true; }

 private:
  /// Upper bound on any single length prefix; a corrupt length must not
  /// turn into a multi-gigabyte allocation.
  static constexpr std::uint64_t kMaxBlob = 1ull << 32;

  std::uint64_t le(int width) {
    char buf[8];
    in_.read(buf, width);
    if (in_.gcount() != width) {
      failed_ = true;
      return 0;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < width; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(buf[i])) << (8 * i);
    }
    return v;
  }

  std::istream& in_;
  bool failed_ = false;
};

}  // namespace dnsbs::util
