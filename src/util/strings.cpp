#include "util/strings.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace dnsbs::util {

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string_view>& parts, char sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out.push_back(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, char sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out.push_back(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool contains(std::string_view s, std::string_view needle) noexcept {
  return s.find(needle) != std::string_view::npos;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) noexcept {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string_view trim(std::string_view s) noexcept {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool all_digits(std::string_view s) noexcept {
  if (s.empty()) return false;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

bool parse_u64(std::string_view s, std::uint64_t& out) noexcept {
  if (!all_digits(s)) return false;
  std::uint64_t value = 0;
  for (const char c : s) {
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;
    value = value * 10 + digit;
  }
  out = value;
  return true;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

}  // namespace dnsbs::util
