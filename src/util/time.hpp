// Simulated time.  The traffic engine runs on a virtual clock measured in
// seconds since a scenario epoch; these types give that clock structure
// (minutes/hours/days/weeks) and printable calendar-ish formatting without
// dragging in timezone machinery.
#pragma once

#include <cstdint>
#include <compare>
#include <string>

namespace dnsbs::util {

/// Seconds of virtual time since the scenario epoch.
/// A thin strong-typedef over int64 so durations and instants don't mix
/// freely with raw integers in interfaces.
class SimTime {
 public:
  constexpr SimTime() noexcept = default;
  explicit constexpr SimTime(std::int64_t seconds) noexcept : secs_(seconds) {}

  static constexpr SimTime seconds(std::int64_t s) noexcept { return SimTime(s); }
  static constexpr SimTime minutes(std::int64_t m) noexcept { return SimTime(m * 60); }
  static constexpr SimTime hours(std::int64_t h) noexcept { return SimTime(h * 3600); }
  static constexpr SimTime days(std::int64_t d) noexcept { return SimTime(d * 86400); }
  static constexpr SimTime weeks(std::int64_t w) noexcept { return SimTime(w * 604800); }

  constexpr std::int64_t secs() const noexcept { return secs_; }
  constexpr double secs_f() const noexcept { return static_cast<double>(secs_); }
  constexpr std::int64_t minute_index() const noexcept { return secs_ / 60; }
  constexpr std::int64_t ten_minute_index() const noexcept { return secs_ / 600; }
  constexpr std::int64_t hour_index() const noexcept { return secs_ / 3600; }
  constexpr std::int64_t day_index() const noexcept { return secs_ / 86400; }
  constexpr std::int64_t week_index() const noexcept { return secs_ / 604800; }

  /// Hour of (virtual) day in [0, 24); used by diurnal activity models.
  constexpr double hour_of_day() const noexcept {
    const std::int64_t s = ((secs_ % 86400) + 86400) % 86400;
    return static_cast<double>(s) / 3600.0;
  }

  constexpr auto operator<=>(const SimTime&) const noexcept = default;

  constexpr SimTime operator+(SimTime d) const noexcept { return SimTime(secs_ + d.secs_); }
  constexpr SimTime operator-(SimTime d) const noexcept { return SimTime(secs_ - d.secs_); }
  constexpr SimTime& operator+=(SimTime d) noexcept {
    secs_ += d.secs_;
    return *this;
  }

  /// "d3 07:15:02"-style rendering for logs and bench output.
  std::string to_string() const;

 private:
  std::int64_t secs_ = 0;
};

}  // namespace dnsbs::util
