// Deterministic random number generation for the simulator and ML substrate.
//
// All stochastic components of dnsbs take an explicit seed so that every
// experiment is reproducible run-to-run and machine-to-machine.  We provide
// our own engine (xoshiro256**) rather than std::mt19937 because the standard
// distributions are not guaranteed to produce identical streams across
// standard-library implementations; everything here is fully specified.
#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>
#include <algorithm>
#include <cmath>
#include <span>

namespace dnsbs::util {

/// SplitMix64: used to seed the main engine and to derive independent
/// sub-streams from a master seed (seed + stream-id hashing).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit PRNG (Blackman & Vigna).
/// Satisfies the C++ UniformRandomBitGenerator requirements.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x5eedc0ffee150defULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  /// Derives an independent stream: same master seed + distinct stream id
  /// yields a statistically independent generator.
  static Rng stream(std::uint64_t seed, std::uint64_t stream_id) noexcept {
    SplitMix64 sm(seed ^ (0x9e3779b97f4a7c15ULL * (stream_id + 1)));
    return Rng(sm.next());
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  std::uint64_t operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  /// Uses Lemire's nearly-divisionless method for unbiased results.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

  /// Bernoulli trial.
  bool chance(double p) noexcept { return uniform() < p; }

  /// Exponentially distributed variate with the given rate (1/mean).
  double exponential(double rate) noexcept {
    return -std::log1p(-uniform()) / rate;
  }

  /// Standard normal via Box–Muller (single value, no caching: determinism
  /// over micro-efficiency).
  double normal() noexcept {
    double u1 = 0.0;
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  double normal(double mean, double stddev) noexcept { return mean + stddev * normal(); }

  /// Poisson variate (Knuth for small lambda, normal approximation above 64).
  std::uint64_t poisson(double lambda) noexcept;

  /// Geometric number of failures before first success; p in (0, 1].
  std::uint64_t geometric(double p) noexcept {
    if (p >= 1.0) return 0;
    return static_cast<std::uint64_t>(std::log1p(-uniform()) / std::log1p(-p));
  }

  /// Pareto (power-law) variate with scale xm > 0 and shape alpha > 0.
  /// Heavy-tailed: used for footprint and activity size distributions.
  double pareto(double xm, double alpha) noexcept {
    double u = 0.0;
    while (u <= 0.0) u = uniform();
    return xm / std::pow(u, 1.0 / alpha);
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::swap(items[i - 1], items[below(i)]);
    }
  }

  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    shuffle(std::span<T>(items));
  }

  /// Picks one element uniformly. Container must be non-empty.
  template <typename T>
  const T& pick(const std::vector<T>& items) noexcept {
    return items[below(items.size())];
  }

  /// Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k) noexcept;

  /// Allocation-friendly variant: writes the sample into `out` (cleared
  /// first, capacity reused).  Consumes the generator identically to
  /// sample_indices, so the two are interchangeable mid-stream.
  void sample_indices_into(std::size_t n, std::size_t k,
                           std::vector<std::size_t>& out) noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

/// Samples an index from a discrete weight vector (weights >= 0, sum > 0).
std::size_t weighted_pick(Rng& rng, std::span<const double> weights) noexcept;

/// Zipf sampler over ranks 1..n with exponent s, using precomputed CDF.
/// Models heavy-tailed popularity (e.g., which targets a mailing list hits).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);

  /// Returns a rank in [0, n).
  std::size_t sample(Rng& rng) const noexcept;

  std::size_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace dnsbs::util
