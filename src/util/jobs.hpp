// Named job queues over a small dedicated worker pool.
//
// The PR 1 ThreadPool is fork-join: one data-parallel job at a time, the
// submitting thread participates, and for_each_index blocks until every
// chunk ran.  That shape fits kernels (feature extraction, forest fits)
// but not pipelines: a streaming daemon wants to *hand off* a closed
// window and keep assigning records while extraction, training and export
// proceed elsewhere.  JobSystem provides that handoff: named FIFO queues
// share a pool of workers, each queue executes at most one job at a time
// (per-queue serial order — the property the windowed pipeline's
// determinism argument rests on), and different queues run concurrently.
//
// Barriers: drain(q) returns once every job submitted to q has finished;
// drain_all() quiesces the whole system.  A drainer *helps*: while the
// target queue has runnable jobs it executes them inline, so drain makes
// progress even with zero workers (threads = 0 turns the system into a
// deferred-execution queue run entirely at drain points) and a job may
// drain a *different* queue from inside a worker without deadlock.
//
// Errors: the first exception a queue's job throws is captured and
// rethrown by the next drain of that queue (later jobs still run — jobs
// on one queue are expected to be independent failures-wise, mirroring
// std::future semantics per job chain).
//
// Observability: with a non-empty metric_prefix each queue exports
//   <prefix>.<queue>.queued        jobs submitted        (counter, sched)
//   <prefix>.<queue>.completed     jobs finished         (counter, sched)
//   <prefix>.<queue>.queue_depth_peak  high-water depth  (gauge,   sched)
// All sched-flagged: queue depths depend on scheduling, never on the
// record stream, so the deterministic view stays byte-identical whatever
// the worker count.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace dnsbs::util {

class MetricCounter;
class MetricGauge;

struct JobSystemConfig {
  /// Worker threads; 0 = no workers, jobs run inline at drain barriers.
  std::size_t threads = 2;
  /// Per-queue metric series prefix (e.g. "dnsbs.serve.jobs"); empty
  /// disables metric export.
  std::string metric_prefix;
};

class JobSystem {
 public:
  using QueueId = std::size_t;

  explicit JobSystem(JobSystemConfig config = {});
  /// Drains every queue (swallowing captured errors — they surfaced, or
  /// were owed to, an earlier drain), then joins the workers.
  ~JobSystem();

  JobSystem(const JobSystem&) = delete;
  JobSystem& operator=(const JobSystem&) = delete;

  /// Registers (or finds) the queue named `name`; idempotent.
  QueueId queue(std::string_view name);

  /// Appends a job to the queue.  FIFO per queue; at most one job of a
  /// queue runs at any moment, so submission order is execution order.
  void submit(QueueId q, std::function<void()> job);

  /// Blocks until every job submitted to `q` so far has completed,
  /// helping inline while the queue is runnable.  Rethrows (and clears)
  /// the queue's first captured exception.  Must not be called from
  /// inside a job of the same queue.
  void drain(QueueId q);

  /// drain() over every queue, in registration order.
  void drain_all();

  struct QueueStats {
    std::string name;
    std::size_t depth = 0;        ///< queued jobs not yet started
    bool running = false;         ///< a job of this queue is executing now
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::size_t depth_peak = 0;   ///< high-water (depth + running) at submit
  };
  std::vector<QueueStats> stats() const;

  std::size_t threads() const noexcept { return workers_.size(); }

 private:
  struct Queue {
    std::string name;
    std::deque<std::function<void()>> jobs;
    bool running = false;
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::size_t depth_peak = 0;
    std::exception_ptr error;
    MetricCounter* queued_metric = nullptr;
    MetricCounter* completed_metric = nullptr;
    MetricGauge* peak_metric = nullptr;
  };

  /// Pops and runs the front job of queues_[q].  Precondition (under
  /// `lock`): the queue is runnable.  Releases the lock around the job.
  void run_one(std::unique_lock<std::mutex>& lock, QueueId q);
  void worker_loop();

  JobSystemConfig config_;
  mutable std::mutex mutex_;
  std::condition_variable work_cv_;  ///< workers: a queue became runnable
  std::condition_variable done_cv_;  ///< drainers: a job finished
  std::deque<Queue> queues_;         ///< deque: stable refs across queue()
  std::size_t rr_next_ = 0;          ///< round-robin fairness cursor
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace dnsbs::util
