#include "util/time.hpp"

#include "util/strings.hpp"

namespace dnsbs::util {

std::string SimTime::to_string() const {
  const std::int64_t day = day_index();
  const std::int64_t s = ((secs_ % 86400) + 86400) % 86400;
  return format("d%lld %02lld:%02lld:%02lld", static_cast<long long>(day),
                static_cast<long long>(s / 3600), static_cast<long long>((s / 60) % 60),
                static_cast<long long>(s % 60));
}

}  // namespace dnsbs::util
