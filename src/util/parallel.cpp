#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "util/log.hpp"
#include "util/metrics.hpp"

namespace dnsbs::util {
namespace {

// Scheduler-shaped telemetry (sched: excluded from the determinism
// contract).  jobs/tasks count every parallel_for, pooled or inline;
// dispatches counts only jobs that actually reached the worker pool.
MetricCounter& g_jobs = metrics_counter("dnsbs.threadpool.jobs", /*sched=*/true);
MetricCounter& g_tasks = metrics_counter("dnsbs.threadpool.tasks", /*sched=*/true);
MetricCounter& g_dispatches = metrics_counter("dnsbs.threadpool.pool_dispatches", /*sched=*/true);
MetricHistogram& g_queue_wait = metrics_histogram("dnsbs.threadpool.queue_wait_ns");
MetricHistogram& g_busy = metrics_histogram("dnsbs.threadpool.busy_ns");

thread_local bool tls_in_parallel_region = false;
thread_local const ThreadPool* tls_worker_pool = nullptr;

/// RAII for the in-parallel-region flag (exception-safe restore).
struct RegionGuard {
  RegionGuard() : prev(tls_in_parallel_region) { tls_in_parallel_region = true; }
  ~RegionGuard() { tls_in_parallel_region = prev; }
  bool prev;
};

/// Marks the calling thread as currently executing a job of `pool`, so a
/// nested for_each_index on the same pool is rejected instead of
/// deadlocking on the submit lock (the caller thread is slot 0 of the
/// running job).
struct PoolMarkGuard {
  explicit PoolMarkGuard(const ThreadPool* pool) : prev(tls_worker_pool) {
    tls_worker_pool = pool;
  }
  ~PoolMarkGuard() { tls_worker_pool = prev; }
  const ThreadPool* prev;
};

std::size_t env_thread_count() noexcept {
  if (const char* env = std::getenv("DNSBS_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v > 0) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::atomic<std::size_t> g_thread_override{0};

}  // namespace

std::size_t configured_thread_count() noexcept {
  const std::size_t override = g_thread_override.load(std::memory_order_relaxed);
  if (override != 0) return override;
  static const std::size_t from_env = env_thread_count();
  return from_env;
}

void set_thread_count(std::size_t n) noexcept {
  g_thread_override.store(n, std::memory_order_relaxed);
}

bool in_parallel_region() noexcept { return tls_in_parallel_region; }

std::size_t detail::resolve_threads(std::size_t requested) noexcept {
  return requested != 0 ? requested : configured_thread_count();
}

void detail::note_parallel(std::size_t n, bool pooled) noexcept {
  g_jobs.inc();
  g_tasks.add(n);
  if (pooled) g_dispatches.inc();
}

ThreadPool::ThreadPool(std::size_t threads) {
  std::size_t n = threads != 0 ? threads : configured_thread_count();
  if (n == 0) n = 1;
  slots_.resize(n);
  workers_.reserve(n - 1);
  for (std::size_t s = 1; s < n; ++s) {
    workers_.emplace_back([this, s] { worker_loop(s); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_slot(std::size_t slot) {
  // Static chunking: slot s owns [s*n/W, (s+1)*n/W).  Slots >= job_slots_
  // own nothing (a job may use fewer slots than the pool has).
  const std::size_t n = job_n_;
  const std::size_t w = job_slots_;
  if (slot >= w) return;
  const std::size_t begin = slot * n / w;
  const std::size_t end = (slot + 1) * n / w;
  if (begin >= end) return;
  const std::uint64_t t0 = metrics_now_ns();
  try {
    RegionGuard region;
    PoolMarkGuard mark(this);
    for (std::size_t i = begin; i < end; ++i) (*job_fn_)(i);
  } catch (...) {
    slots_[slot].error = std::current_exception();
  }
  g_busy.record(metrics_now_ns() - t0);
}

void ThreadPool::worker_loop(std::size_t slot) {
  tls_worker_pool = this;
  set_thread_name("worker-" + std::to_string(slot));
  std::uint64_t seen = 0;
  for (;;) {
    std::uint64_t submitted_ns = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      submitted_ns = submit_ns_;
    }
    // Time from job submission to this worker picking it up: the queue
    // wait operators watch for oversubscription.
    g_queue_wait.record(metrics_now_ns() - submitted_ns);
    run_slot(slot);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--pending_ == 0) done_.notify_all();
    }
  }
}

void ThreadPool::for_each_index(std::size_t n,
                                const std::function<void(std::size_t)>& fn,
                                std::size_t use_threads) {
  if (n == 0) return;
  if (tls_worker_pool == this) {
    throw std::logic_error(
        "ThreadPool::for_each_index called from one of the pool's own workers");
  }
  std::size_t w = use_threads == 0 ? size() : std::min(use_threads, size());
  w = std::min(w, n);
  if (w <= 1 || workers_.empty()) {
    RegionGuard guard;
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // One job at a time; concurrent submitters queue here.
  std::lock_guard<std::mutex> submit(submit_mutex_);
  for (auto& s : slots_) s.error = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_n_ = n;
    job_slots_ = w;
    job_fn_ = &fn;
    pending_ = workers_.size();
    submit_ns_ = metrics_now_ns();
    ++generation_;
  }
  wake_.notify_all();
  run_slot(0);  // the caller is slot 0
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [&] { return pending_ == 0; });
    job_fn_ = nullptr;
  }
  for (const auto& s : slots_) {
    if (s.error) std::rethrow_exception(s.error);
  }
}

ThreadPool& ThreadPool::shared() {
  // At least 4 slots even on 1-2 core machines: thread-count sweeps and
  // the serial-vs-parallel determinism tests need real multithreading
  // everywhere; parallel_for limits the slots a job actually uses.
  static ThreadPool pool(std::max<std::size_t>(4, configured_thread_count()));
  return pool;
}

}  // namespace dnsbs::util
