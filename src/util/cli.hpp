// Strict numeric parsing for command-line flags.
//
// The CLI used to run flag values through std::atof / std::strtoull, which
// silently turn "abc" into 0 and "12x" into 12.  These helpers wrap
// std::from_chars with full-consumption validation: the whole token must
// parse, or the call fails with a message naming the offending text.  The
// out-parameter is untouched on failure, so defaults survive.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace dnsbs::util {

/// Each parser returns true and writes `out` iff `text` is entirely a
/// valid number of the target type; otherwise `*error` (when non-null)
/// receives a human-readable reason and `out` is left unchanged.
bool parse_u64(std::string_view text, std::uint64_t& out, std::string* error = nullptr);
bool parse_i64(std::string_view text, std::int64_t& out, std::string* error = nullptr);
bool parse_u16(std::string_view text, std::uint16_t& out, std::string* error = nullptr);
bool parse_f64(std::string_view text, double& out, std::string* error = nullptr);

}  // namespace dnsbs::util
