// Header-only open-addressing hash containers for the hot ingest path.
//
// The sensor's inner loops (dedup window, per-originator querier
// histograms, period sets) used to run on node-based std::unordered_map:
// one heap allocation and a pointer chase per insert.  FlatMap/FlatSet
// store entries inline in a power-of-two slot array with linear probing,
// so inserts are allocation-free until growth and lookups touch one cache
// line in the common case.
//
// Determinism contract (DESIGN.md "Performance: data layout & caching"):
// the slot layout — and therefore iteration order — is a pure function of
// the sequence of insert/erase/reserve operations and the hash function.
// There is no per-process salt.  Two runs (or two threads' shards) that
// perform the same operation sequence iterate in the same order, which is
// what lets floating-point reductions over these containers stay
// byte-identical between serial and sharded execution.  Iteration order is
// NOT sorted and not insertion order; output paths that need a canonical
// order use for_each_sorted() / sorted_keys() below.
//
// Deletion uses the classic linear-probing backward-shift algorithm
// (no tombstones), so erase-heavy workloads (the dedup window prune) do
// not degrade probe lengths over time.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

namespace dnsbs::util {

namespace flat_detail {

/// SplitMix64 finalizer: turns any 64-bit value (including the identity
/// std::hash of integral keys) into a well-avalanched index.  This is the
/// same mix net::IPv4Addr's std::hash uses, so address keys get mixed
/// twice — harmless, and keys without a strong hash stay safe.
inline std::uint64_t mix64(std::uint64_t z) noexcept {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline std::size_t next_pow2(std::size_t n) noexcept {
  std::size_t c = 1;
  while (c < n) c <<= 1;
  return c;
}

}  // namespace flat_detail

/// Open-addressing hash map: power-of-two capacity, SplitMix64-mixed
/// hashing, linear probing, backward-shift deletion.  Values must be
/// default-constructible and movable (move-only values are fine).  Grows
/// at 3/4 load.
///
/// MinCap is the capacity of the first allocation (power of two >= 2).
/// The default 16 suits interval-wide tables; per-originator maps — where
/// millions of instances hold a handful of entries each — shrink their
/// floor to keep the light-originator footprint down.
///
/// Iterators are invalidated by any insert or erase.  find() returns a
/// pointer to the slot's std::pair<K, V> (nullptr when absent), which
/// doubles as the "iterator" for the try_emplace result.
template <typename K, typename V, typename Hash = std::hash<K>, std::size_t MinCap = 16>
class FlatMap {
  static_assert(MinCap >= 2 && (MinCap & (MinCap - 1)) == 0,
                "MinCap must be a power of two >= 2");

 public:
  using value_type = std::pair<K, V>;

  FlatMap() = default;

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  /// Pre-sizes so `expected` entries fit without growth.
  void reserve(std::size_t expected) {
    if (expected == 0) return;
    const std::size_t want = flat_detail::next_pow2(expected + expected / 2 + 1);
    if (want > slots_.size()) rehash(want);
  }

  void clear() noexcept {
    slots_.clear();
    used_.clear();
    size_ = 0;
  }

  V& operator[](const K& key) { return try_emplace(key).first->second; }

  /// Inserts (key, V(args...)) if absent; returns {slot, inserted}.
  /// Arguments are only consumed when an insert actually happens.
  template <typename KeyArg, typename... Args>
  std::pair<value_type*, bool> try_emplace(KeyArg&& key, Args&&... args) {
    grow_if_needed();
    std::size_t i = home(key);
    while (used_[i]) {
      if (slots_[i].first == key) return {&slots_[i], false};
      i = (i + 1) & mask();
    }
    slots_[i].first = K(std::forward<KeyArg>(key));
    slots_[i].second = V(std::forward<Args>(args)...);
    used_[i] = 1;
    ++size_;
    return {&slots_[i], true};
  }

  value_type* find(const K& key) noexcept {
    const std::size_t i = find_index(key);
    return i == npos ? nullptr : &slots_[i];
  }
  const value_type* find(const K& key) const noexcept {
    const std::size_t i = find_index(key);
    return i == npos ? nullptr : &slots_[i];
  }

  bool contains(const K& key) const noexcept { return find_index(key) != npos; }

  const V& at(const K& key) const {
    const std::size_t i = find_index(key);
    if (i == npos) throw std::out_of_range("FlatMap::at: key not found");
    return slots_[i].second;
  }
  V& at(const K& key) {
    const std::size_t i = find_index(key);
    if (i == npos) throw std::out_of_range("FlatMap::at: key not found");
    return slots_[i].second;
  }

  /// Backward-shift deletion: closes the probe gap instead of leaving a
  /// tombstone, so heavy prune cycles don't inflate probe lengths.
  bool erase(const K& key) noexcept {
    std::size_t i = find_index(key);
    if (i == npos) return false;
    used_[i] = 0;
    slots_[i] = value_type{};
    --size_;
    std::size_t j = i;
    while (true) {
      j = (j + 1) & mask();
      if (!used_[j]) break;
      const std::size_t h = home(slots_[j].first);
      // Entry at j may move into the gap at i iff its home precedes the
      // gap in cyclic probe order: (j - h) mod cap >= (j - i) mod cap.
      if (((j - h) & mask()) >= ((j - i) & mask())) {
        slots_[i] = std::move(slots_[j]);
        used_[i] = 1;
        used_[j] = 0;
        slots_[j] = value_type{};
        i = j;
      }
    }
    return true;
  }

  /// Moves every entry of `other` into this map; on key collision,
  /// combine(existing_value, moved_incoming_value) decides the outcome.
  /// `other` is left empty.
  template <typename Combine>
  void merge_from(FlatMap&& other, Combine&& combine) {
    reserve(size_ + other.size_);
    for (auto& kv : other) {
      auto [slot, inserted] = try_emplace(std::move(kv.first), std::move(kv.second));
      if (!inserted) combine(slot->second, std::move(kv.second));
    }
    other.clear();
  }

  /// merge_from keeping the existing value on collision.
  void merge_from(FlatMap&& other) {
    merge_from(std::move(other), [](V&, V&&) {});
  }

  template <bool Const>
  class Iter {
   public:
    using Parent = std::conditional_t<Const, const FlatMap, FlatMap>;
    using reference = std::conditional_t<Const, const value_type&, value_type&>;
    using pointer = std::conditional_t<Const, const value_type*, value_type*>;

    Iter(Parent* m, std::size_t i) : m_(m), i_(i) { skip(); }

    reference operator*() const { return m_->slots_[i_]; }
    pointer operator->() const { return &m_->slots_[i_]; }
    Iter& operator++() {
      ++i_;
      skip();
      return *this;
    }
    bool operator==(const Iter& o) const { return i_ == o.i_; }
    bool operator!=(const Iter& o) const { return i_ != o.i_; }

   private:
    void skip() {
      while (i_ < m_->slots_.size() && !m_->used_[i_]) ++i_;
    }
    Parent* m_;
    std::size_t i_;
  };

  using iterator = Iter<false>;
  using const_iterator = Iter<true>;

  iterator begin() noexcept { return iterator(this, 0); }
  iterator end() noexcept { return iterator(this, slots_.size()); }
  const_iterator begin() const noexcept { return const_iterator(this, 0); }
  const_iterator end() const noexcept { return const_iterator(this, slots_.size()); }

  /// Slots currently allocated (diagnostic; 0 before the first insert).
  std::size_t capacity() const noexcept { return slots_.size(); }

  // --- slot-exact checkpointing -------------------------------------------
  //
  // The determinism contract makes iteration order load-bearing: FP
  // reductions over these containers are byte-identical only because the
  // slot layout is.  Re-inserting entries in iteration order does NOT
  // reproduce the layout (probe chains that wrapped past slot 0 re-insert
  // without the earlier collisions that displaced them), so checkpoints
  // serialize the physical slot array and restore it verbatim.

  /// Visits every occupied slot as fn(slot_index, key, value), in slot
  /// order.
  template <typename Fn>
  void for_each_slot(Fn&& fn) const {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (used_[i]) fn(i, slots_[i].first, slots_[i].second);
    }
  }

  /// Re-allocates the slot array at exactly `cap` (0 or a power of two
  /// >= 16), empty.  Returns false on an invalid capacity.
  bool restore_layout(std::size_t cap) {
    // Any power-of-two capacity is reachable (reserve() can produce tables
    // smaller than the growth path's 16-slot floor), so only reject
    // non-power-of-two garbage.
    if (cap != 0 && (cap & (cap - 1)) != 0) return false;
    slots_.clear();
    slots_.resize(cap);
    used_.assign(cap, 0);
    size_ = 0;
    return true;
  }

  /// Places an entry into slot `i` of a restore_layout()ed map.  The caller
  /// replays slots captured by for_each_slot on an identical container, so
  /// no probing happens here.  Returns false on an out-of-range or occupied
  /// slot.
  template <typename VArg>
  bool place(std::size_t i, const K& key, VArg&& value) {
    if (i >= slots_.size() || used_[i]) return false;
    slots_[i].first = key;
    slots_[i].second = V(std::forward<VArg>(value));
    used_[i] = 1;
    ++size_;
    return true;
  }

 private:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  std::size_t mask() const noexcept { return slots_.size() - 1; }

  std::size_t home(const K& key) const noexcept {
    return static_cast<std::size_t>(flat_detail::mix64(
               static_cast<std::uint64_t>(Hash{}(key)))) &
           mask();
  }

  std::size_t find_index(const K& key) const noexcept {
    if (slots_.empty()) return npos;
    std::size_t i = home(key);
    while (used_[i]) {
      if (slots_[i].first == key) return i;
      i = (i + 1) & mask();
    }
    return npos;
  }

  void grow_if_needed() {
    if (slots_.empty()) {
      rehash(MinCap);
    } else if ((size_ + 1) * 4 > slots_.size() * 3) {
      rehash(slots_.size() * 2);
    }
  }

  void rehash(std::size_t new_cap) {
    std::vector<value_type> old_slots = std::move(slots_);
    std::vector<std::uint8_t> old_used = std::move(used_);
    slots_.clear();
    slots_.resize(new_cap);
    used_.assign(new_cap, 0);
    for (std::size_t s = 0; s < old_slots.size(); ++s) {
      if (!old_used[s]) continue;
      std::size_t i = home(old_slots[s].first);
      while (used_[i]) i = (i + 1) & mask();
      slots_[i] = std::move(old_slots[s]);
      used_[i] = 1;
    }
  }

  std::vector<value_type> slots_;
  std::vector<std::uint8_t> used_;
  std::size_t size_ = 0;
};

/// Open-addressing hash set with the same layout/determinism properties
/// as FlatMap.
template <typename K, typename Hash = std::hash<K>, std::size_t MinCap = 16>
class FlatSet {
  struct Empty {};

 public:
  std::size_t size() const noexcept { return map_.size(); }
  bool empty() const noexcept { return map_.empty(); }
  void reserve(std::size_t expected) { map_.reserve(expected); }
  void clear() noexcept { map_.clear(); }

  /// True if the key was newly inserted.
  bool insert(const K& key) { return map_.try_emplace(key).second; }

  template <typename It>
  void insert(It first, It last) {
    for (; first != last; ++first) insert(*first);
  }

  bool contains(const K& key) const noexcept { return map_.contains(key); }
  bool erase(const K& key) noexcept { return map_.erase(key); }

  void merge_from(FlatSet&& other) { map_.merge_from(std::move(other.map_)); }

  std::size_t capacity() const noexcept { return map_.capacity(); }

  /// Slot-exact checkpointing (see FlatMap): fn(slot_index, key).
  template <typename Fn>
  void for_each_slot(Fn&& fn) const {
    map_.for_each_slot([&fn](std::size_t i, const K& key, const Empty&) { fn(i, key); });
  }
  bool restore_layout(std::size_t cap) { return map_.restore_layout(cap); }
  bool place(std::size_t i, const K& key) { return map_.place(i, key, Empty{}); }

  class const_iterator {
   public:
    using Inner = typename FlatMap<K, Empty, Hash, MinCap>::const_iterator;
    explicit const_iterator(Inner it) : it_(it) {}
    const K& operator*() const { return it_->first; }
    const_iterator& operator++() {
      ++it_;
      return *this;
    }
    bool operator==(const const_iterator& o) const { return it_ == o.it_; }
    bool operator!=(const const_iterator& o) const { return it_ != o.it_; }

   private:
    Inner it_;
  };

  const_iterator begin() const noexcept { return const_iterator(map_.begin()); }
  const_iterator end() const noexcept { return const_iterator(map_.end()); }

 private:
  FlatMap<K, Empty, Hash, MinCap> map_;
};

/// Deterministic ordered iteration for output paths: visits (key, value)
/// in ascending key order regardless of slot layout.
template <typename K, typename V, typename H, std::size_t M, typename Fn>
void for_each_sorted(const FlatMap<K, V, H, M>& map, Fn&& fn) {
  std::vector<const typename FlatMap<K, V, H, M>::value_type*> entries;
  entries.reserve(map.size());
  for (const auto& kv : map) entries.push_back(&kv);
  std::sort(entries.begin(), entries.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  for (const auto* kv : entries) fn(kv->first, kv->second);
}

/// Keys of a FlatSet in ascending order.
template <typename K, typename H, std::size_t M>
std::vector<K> sorted_keys(const FlatSet<K, H, M>& set) {
  std::vector<K> keys;
  keys.reserve(set.size());
  for (const K& k : set) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace dnsbs::util
