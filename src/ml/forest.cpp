#include "ml/forest.hpp"

#include <cassert>
#include <cmath>
#include <numeric>

#include "util/metrics.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace dnsbs::ml {

namespace {
// Model-shape series are deterministic: trees derive from (seed, index)
// alone, so fits/trees/predictions are functions of the inputs regardless
// of how tree training is scheduled.
util::MetricCounter& g_fits = util::metrics_counter("dnsbs.ml.forest_fits");
util::MetricCounter& g_trees = util::metrics_counter("dnsbs.ml.trees_trained");
util::MetricCounter& g_predictions = util::metrics_counter("dnsbs.ml.predictions");
}  // namespace

std::size_t majority_vote(std::span<const std::size_t> votes) noexcept {
  std::size_t best = 0;
  for (std::size_t k = 1; k < votes.size(); ++k) {
    // Strict > keeps ties on the lower class index: deterministic and
    // consistent with the paper's majority-vote description (§III-D).
    if (votes[k] > votes[best]) best = k;
  }
  return best;
}

void RandomForest::fit(const Dataset& train) {
  std::vector<std::size_t> all(train.size());
  std::iota(all.begin(), all.end(), 0);
  fit_indices(train, all);
}

void RandomForest::fit_indices(const Dataset& data, std::span<const std::size_t> indices) {
  DNSBS_SPAN("ml.fit");
  g_fits.inc();
  trees_.clear();
  class_count_ = data.class_count();
  feature_count_ = data.feature_count();
  if (indices.empty() || config_.n_trees == 0) return;
  const std::size_t max_features =
      config_.max_features != 0
          ? config_.max_features
          : std::max<std::size_t>(
                1, static_cast<std::size_t>(
                       std::sqrt(static_cast<double>(data.feature_count()))));

  // For the balanced bootstrap: index examples by class (shared, read-only
  // across the per-tree workers).
  std::vector<std::vector<std::size_t>> by_class;
  if (config_.balanced_bootstrap) {
    by_class.resize(data.class_count());
    for (const std::size_t i : indices) {
      by_class[data.label(i)].push_back(i);
    }
    std::erase_if(by_class, [](const auto& members) { return members.empty(); });
  }

  // One presort of the whole dataset, shared read-only by every tree:
  // sorting each feature column happens once per fit instead of per node
  // per tree (DESIGN.md "ML training fast path").
  const Presort presort(data);

  // Each tree derives both its bootstrap stream and its split seed from
  // (config seed, tree index) alone, so trees are independent work items
  // and the forest is byte-identical however they are scheduled.
  trees_ = util::parallel_map(config_.n_trees, [&](std::size_t t) {
    CartConfig cc;
    cc.max_depth = config_.max_depth;
    cc.min_samples_leaf = config_.min_samples_leaf;
    cc.max_features = max_features;
    cc.seed = util::SplitMix64(config_.seed ^ (t * 0x9e3779b97f4a7c15ULL + 1)).next();
    CartTree tree(cc);
    // Bootstrap: |indices| draws with replacement (optionally
    // class-balanced), recorded as per-row multiplicities.
    util::Rng boot_rng = util::Rng::stream(config_.seed, 0xb007 + t);
    std::vector<std::uint32_t> weights(data.size(), 0);
    if (config_.balanced_bootstrap && !by_class.empty()) {
      for (std::size_t k = 0; k < indices.size(); ++k) {
        const auto& members = by_class[boot_rng.below(by_class.size())];
        ++weights[members[boot_rng.below(members.size())]];
      }
    } else {
      for (std::size_t k = 0; k < indices.size(); ++k) {
        ++weights[indices[boot_rng.below(indices.size())]];
      }
    }
    tree.fit_weights(data, presort, weights);
    return tree;
  });
  g_trees.add(trees_.size());
}

std::size_t RandomForest::predict(std::span<const double> features) const {
  return predict_with_confidence(features).first;
}

std::pair<std::size_t, double> RandomForest::predict_with_confidence(
    std::span<const double> features) const {
  g_predictions.inc();
  if (trees_.empty()) return {0, 0.0};
  std::vector<std::size_t> votes(class_count_ == 0 ? 1 : class_count_, 0);
  for (const auto& tree : trees_) {
    const std::size_t y = tree.predict(features);
    // A tree predicting a class the forest was not trained on means the
    // model is corrupted (stale trees_ vs class_count_); fail loudly in
    // debug builds instead of silently dropping the vote.
    assert(y < votes.size() && "RandomForest: tree vote outside class range");
    if (y < votes.size()) ++votes[y];
  }
  const std::size_t winner = majority_vote(votes);
  // Vote fraction for the winning class — deterministic (the vote tally
  // is a pure function of the model and the row), so it can feed
  // deterministic telemetry like the per-window confidence histogram.
  return {winner, static_cast<double>(votes[winner]) / static_cast<double>(trees_.size())};
}

std::vector<std::size_t> RandomForest::predict_all(const Dataset& data) const {
  DNSBS_SPAN("ml.predict_all");
  return util::parallel_map(data.size(),
                            [&](std::size_t i) { return predict(data.row(i)); });
}

std::vector<std::size_t> RandomForest::predict_indices(
    const Dataset& data, std::span<const std::size_t> indices) const {
  DNSBS_SPAN("ml.predict_all");
  return util::parallel_map(indices.size(),
                            [&](std::size_t k) { return predict(data.row(indices[k])); });
}

std::vector<double> RandomForest::gini_importance() const {
  std::vector<double> total(feature_count_, 0.0);
  for (const auto& tree : trees_) {
    const auto& imp = tree.gini_importance();
    for (std::size_t f = 0; f < total.size() && f < imp.size(); ++f) total[f] += imp[f];
  }
  double sum = 0.0;
  for (const double v : total) sum += v;
  if (sum > 0.0) {
    for (double& v : total) v = 100.0 * v / sum;
  }
  return total;
}

}  // namespace dnsbs::ml
