#include "ml/forest.hpp"

#include <cmath>

#include "util/rng.hpp"

namespace dnsbs::ml {

void RandomForest::fit(const Dataset& train) {
  trees_.clear();
  class_count_ = train.class_count();
  feature_count_ = train.feature_count();
  const std::size_t max_features =
      config_.max_features != 0
          ? config_.max_features
          : std::max<std::size_t>(
                1, static_cast<std::size_t>(
                       std::sqrt(static_cast<double>(train.feature_count()))));

  // For the balanced bootstrap: index examples by class.
  std::vector<std::vector<std::size_t>> by_class;
  if (config_.balanced_bootstrap) {
    by_class.resize(train.class_count());
    for (std::size_t i = 0; i < train.size(); ++i) {
      by_class[train.label(i)].push_back(i);
    }
    std::erase_if(by_class, [](const auto& members) { return members.empty(); });
  }

  util::Rng boot_rng = util::Rng::stream(config_.seed, 0xb007);
  trees_.reserve(config_.n_trees);
  std::vector<std::size_t> sample(train.size());
  for (std::size_t t = 0; t < config_.n_trees; ++t) {
    CartConfig cc;
    cc.max_depth = config_.max_depth;
    cc.min_samples_leaf = config_.min_samples_leaf;
    cc.max_features = max_features;
    cc.seed = util::SplitMix64(config_.seed ^ (t * 0x9e3779b97f4a7c15ULL + 1)).next();
    CartTree tree(cc);
    // Bootstrap: n draws with replacement (optionally class-balanced).
    if (config_.balanced_bootstrap && !by_class.empty()) {
      for (auto& s : sample) {
        const auto& members = by_class[boot_rng.below(by_class.size())];
        s = members[boot_rng.below(members.size())];
      }
    } else {
      for (auto& s : sample) s = boot_rng.below(train.size());
    }
    tree.fit_indices(train, sample);
    trees_.push_back(std::move(tree));
  }
}

std::size_t RandomForest::predict(std::span<const double> features) const {
  if (trees_.empty()) return 0;
  std::vector<std::size_t> votes(class_count_ == 0 ? 1 : class_count_, 0);
  for (const auto& tree : trees_) {
    const std::size_t y = tree.predict(features);
    if (y < votes.size()) ++votes[y];
  }
  std::size_t best = 0;
  for (std::size_t k = 1; k < votes.size(); ++k) {
    if (votes[k] > votes[best]) best = k;
  }
  return best;
}

std::vector<double> RandomForest::gini_importance() const {
  std::vector<double> total(feature_count_, 0.0);
  for (const auto& tree : trees_) {
    const auto& imp = tree.gini_importance();
    for (std::size_t f = 0; f < total.size() && f < imp.size(); ++f) total[f] += imp[f];
  }
  double sum = 0.0;
  for (const double v : total) sum += v;
  if (sum > 0.0) {
    for (double& v : total) v = 100.0 * v / sum;
  }
  return total;
}

}  // namespace dnsbs::ml
