// Kernel support-vector machine: RBF kernel, SMO solver, one-vs-one
// multi-class voting — the third classifier of the paper's comparison
// (Scholkopf & Smola 2001).  Features are standardized internally since
// the dynamic features live on very different scales than the static
// fraction features.
//
// Training fast path (DESIGN.md "ML training fast path"): kernel rows are
// produced by a bounded LRU cache instead of an eagerly materialized
// n x n matrix, SMO keeps an active (nonzero-alpha) index set plus a
// version-stamped decision-value cache so converged passes cost O(1) per
// example, and all rows are scaled once into one contiguous buffer.  The
// optimization trajectory is bit-identical to the uncached solver
// (tests/ml_perf_test.cpp pins alphas against a naive oracle).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "ml/classifier.hpp"

namespace dnsbs::ml {

struct SvmConfig {
  double C = 10.0;        ///< soft-margin penalty
  double gamma = 0.0;     ///< RBF width; 0 = 1/feature_count after scaling
  double tol = 1e-3;      ///< KKT violation tolerance
  std::size_t max_passes = 5;   ///< SMO passes without change before stop
  std::size_t max_iterations = 2000;  ///< hard cap per binary problem
  /// Kernel-row LRU capacity per binary subproblem, in rows (each row is
  /// n doubles).  0 = cache every row (equivalent to the full matrix,
  /// computed lazily).  Capacity never changes the result, only memory
  /// and recompute churn.
  std::size_t kernel_cache_rows = 512;
  std::uint64_t seed = 1;
};

/// Column-wise standardization (zero mean, unit variance).
class StandardScaler {
 public:
  void fit(const Dataset& data);
  /// Fits on the rows named by `indices` (the fold path): identical sums
  /// to fitting on data.subset(indices).
  void fit(const Dataset& data, std::span<const std::size_t> indices);

  /// Scales one row.  The row width must match the fitted feature count;
  /// a mismatched row is a caller bug and throws std::invalid_argument
  /// (it used to be silently truncated to a half-scaled vector).
  std::vector<double> transform(std::span<const double> row) const;
  /// Allocation-free variant: writes the scaled row into `out`
  /// (out.size() == row.size() == fitted feature count).
  void transform_into(std::span<const double> row, std::span<double> out) const;

  bool fitted() const noexcept { return !means_.empty(); }
  std::size_t feature_count() const noexcept { return means_.size(); }

 private:
  std::vector<double> means_;
  std::vector<double> inv_stds_;
};

class KernelSvm final : public Classifier {
 public:
  explicit KernelSvm(SvmConfig config = {}) : config_(config) {}

  void fit(const Dataset& train) override;
  /// Trains on the rows named by `indices` without copying them out —
  /// byte-identical to fit(data.subset(indices)) (the crossval fast path).
  void fit_indices(const Dataset& data, std::span<const std::size_t> indices) override;
  std::size_t predict(std::span<const double> features) const override;
  /// Batched prediction: scales every row once into one contiguous buffer,
  /// then votes rows in parallel (results ordered by row).
  std::vector<std::size_t> predict_all(const Dataset& data) const override;
  std::vector<std::size_t> predict_indices(
      const Dataset& data, std::span<const std::size_t> indices) const override;
  std::string name() const override { return "SVM"; }

  std::size_t support_vector_count() const noexcept;

 private:
  /// One binary one-vs-one sub-problem: classes (pos, neg), dual weights
  /// over its support vectors, and bias.  Support rows are stored in one
  /// contiguous buffer (row k at [k*dim, (k+1)*dim)).
  struct BinaryModel {
    std::size_t class_pos = 0;
    std::size_t class_neg = 0;
    std::vector<double> support;  ///< scaled rows, flat, support_count x dim
    std::vector<double> alpha_y;  ///< alpha_i * y_i per support row
    double bias = 0.0;
  };

  double decision(const BinaryModel& m, std::span<const double> scaled) const;
  /// One-vs-one vote over an already-scaled row.
  std::size_t vote(std::span<const double> scaled) const;

  SvmConfig config_;
  StandardScaler scaler_;
  std::vector<BinaryModel> models_;
  std::size_t class_count_ = 0;
  std::size_t dim_ = 0;  ///< feature count of the fitted model
  double gamma_ = 1.0;
};

}  // namespace dnsbs::ml
