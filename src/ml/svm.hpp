// Kernel support-vector machine: RBF kernel, SMO solver, one-vs-one
// multi-class voting — the third classifier of the paper's comparison
// (Scholkopf & Smola 2001).  Features are standardized internally since
// the dynamic features live on very different scales than the static
// fraction features.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "ml/classifier.hpp"

namespace dnsbs::ml {

struct SvmConfig {
  double C = 10.0;        ///< soft-margin penalty
  double gamma = 0.0;     ///< RBF width; 0 = 1/feature_count after scaling
  double tol = 1e-3;      ///< KKT violation tolerance
  std::size_t max_passes = 5;   ///< SMO passes without change before stop
  std::size_t max_iterations = 2000;  ///< hard cap per binary problem
  std::uint64_t seed = 1;
};

/// Column-wise standardization (zero mean, unit variance).
class StandardScaler {
 public:
  void fit(const Dataset& data);
  std::vector<double> transform(std::span<const double> row) const;
  bool fitted() const noexcept { return !means_.empty(); }

 private:
  std::vector<double> means_;
  std::vector<double> inv_stds_;
};

class KernelSvm final : public Classifier {
 public:
  explicit KernelSvm(SvmConfig config = {}) : config_(config) {}

  void fit(const Dataset& train) override;
  std::size_t predict(std::span<const double> features) const override;
  std::string name() const override { return "SVM"; }

  std::size_t support_vector_count() const noexcept;

 private:
  /// One binary one-vs-one sub-problem: classes (pos, neg), dual weights
  /// over its support vectors, and bias.
  struct BinaryModel {
    std::size_t class_pos = 0;
    std::size_t class_neg = 0;
    std::vector<std::vector<double>> support;  ///< scaled feature rows
    std::vector<double> alpha_y;               ///< alpha_i * y_i
    double bias = 0.0;
  };

  double decision(const BinaryModel& m, std::span<const double> scaled) const;

  SvmConfig config_;
  StandardScaler scaler_;
  std::vector<BinaryModel> models_;
  std::size_t class_count_ = 0;
  double gamma_ = 1.0;
};

}  // namespace dnsbs::ml
