// Repeated random-split cross-validation, the paper's §IV-C protocol:
// "pick a random 60% of the labeled ground-truth for training, then test on
// the remaining 40% ... repeat this process 50 times".  Also provides the
// 10-run majority-vote wrapper the paper applies to the randomized
// algorithms (RF, SVM).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>

#include "ml/classifier.hpp"
#include "ml/metrics.hpp"

namespace dnsbs::ml {

struct CrossValConfig {
  double train_fraction = 0.6;
  std::size_t repetitions = 50;
  std::uint64_t seed = 42;
};

/// Builds a fresh (seeded) model for one repetition.
using ModelFactory = std::function<std::unique_ptr<Classifier>(std::uint64_t seed)>;

/// Runs the repeated-split protocol and summarizes the four metrics.
MetricSummary cross_validate(const Dataset& data, const ModelFactory& factory,
                             const CrossValConfig& config = {});

/// Trains `votes` independently-seeded copies and majority-votes their
/// predictions (ties break toward the lower class index).  Used for the
/// non-deterministic algorithms per §III-D.
class VotingClassifier final : public Classifier {
 public:
  VotingClassifier(ModelFactory factory, std::size_t votes, std::uint64_t seed);

  void fit(const Dataset& train) override;
  /// Forwards the index span to every member's fit_indices, so a voting
  /// ensemble in a cross-validation fold trains copy-free too.
  void fit_indices(const Dataset& data, std::span<const std::size_t> indices) override;
  std::size_t predict(std::span<const double> features) const override;
  std::vector<std::size_t> predict_all(const Dataset& data) const override;
  std::vector<std::size_t> predict_indices(
      const Dataset& data, std::span<const std::size_t> indices) const override;
  std::string name() const override;

 private:
  ModelFactory factory_;
  std::size_t votes_;
  std::uint64_t seed_;
  std::vector<std::unique_ptr<Classifier>> members_;
  std::size_t class_count_ = 0;
};

}  // namespace dnsbs::ml
