// Labeled dataset container for the classification stage.
//
// A row is one originator's feature vector (static keyword fractions +
// dynamic diversity measures); the label is one of the paper's application
// classes.  The container owns the feature/class name tables so models can
// report importances and confusions by name.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace dnsbs::ml {

class Dataset {
 public:
  Dataset() = default;
  Dataset(std::vector<std::string> feature_names, std::vector<std::string> class_names)
      : feature_names_(std::move(feature_names)), class_names_(std::move(class_names)) {}

  /// Adds one labeled example.  `features.size()` must equal
  /// feature_count(); `label` must be < class_count().
  void add(std::vector<double> features, std::size_t label);

  std::size_t size() const noexcept { return labels_.size(); }
  bool empty() const noexcept { return labels_.empty(); }
  std::size_t feature_count() const noexcept { return feature_names_.size(); }
  std::size_t class_count() const noexcept { return class_names_.size(); }

  std::span<const double> row(std::size_t i) const noexcept {
    return {rows_.data() + i * feature_count(), feature_count()};
  }
  std::size_t label(std::size_t i) const noexcept { return labels_[i]; }

  const std::vector<std::string>& feature_names() const noexcept { return feature_names_; }
  const std::vector<std::string>& class_names() const noexcept { return class_names_; }

  /// Number of examples per class.
  std::vector<std::size_t> class_counts() const;

  /// New dataset containing the given rows (same schema).
  Dataset subset(std::span<const std::size_t> indices) const;

  /// Stratified split: within every class, ~train_fraction of rows go to
  /// the first index vector, the rest to the second.  Order is randomized.
  /// Mirrors the paper's repeated 60%/40% cross-validation splits (§IV-C).
  std::pair<std::vector<std::size_t>, std::vector<std::size_t>> stratified_split(
      util::Rng& rng, double train_fraction) const;

  /// Projects onto a subset of feature columns (for the static-only /
  /// dynamic-only ablation); indices must be valid columns.
  Dataset with_features(std::span<const std::size_t> feature_indices) const;

 private:
  std::vector<std::string> feature_names_;
  std::vector<std::string> class_names_;
  std::vector<double> rows_;  // row-major, size == size()*feature_count()
  std::vector<std::size_t> labels_;
};

}  // namespace dnsbs::ml
