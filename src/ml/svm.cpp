#include "ml/svm.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/metrics.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace dnsbs::ml {

namespace {
// SMO training is seed-deterministic; fit/predict totals are functions of
// the call sequence alone.  The kernel-cache series are deterministic too:
// the hit/miss sequence is a pure function of the SMO trajectory, which
// depends only on (data, config, seed), never on scheduling.
util::MetricCounter& g_svm_fits = util::metrics_counter("dnsbs.ml.svm_fits");
util::MetricCounter& g_svm_predictions = util::metrics_counter("dnsbs.ml.svm_predictions");
util::MetricCounter& g_kernel_hits =
    util::metrics_counter("dnsbs.ml.svm_kernel_cache_hits");
util::MetricCounter& g_kernel_misses =
    util::metrics_counter("dnsbs.ml.svm_kernel_cache_misses");
}  // namespace

void StandardScaler::fit(const Dataset& data) {
  const std::size_t f = data.feature_count();
  means_.assign(f, 0.0);
  inv_stds_.assign(f, 1.0);
  if (data.empty()) return;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto row = data.row(i);
    for (std::size_t j = 0; j < f; ++j) means_[j] += row[j];
  }
  for (double& m : means_) m /= static_cast<double>(data.size());
  std::vector<double> var(f, 0.0);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto row = data.row(i);
    for (std::size_t j = 0; j < f; ++j) {
      const double d = row[j] - means_[j];
      var[j] += d * d;
    }
  }
  for (std::size_t j = 0; j < f; ++j) {
    const double sd = std::sqrt(var[j] / static_cast<double>(data.size()));
    inv_stds_[j] = sd > 1e-12 ? 1.0 / sd : 1.0;
  }
}

void StandardScaler::fit(const Dataset& data, std::span<const std::size_t> indices) {
  const std::size_t f = data.feature_count();
  means_.assign(f, 0.0);
  inv_stds_.assign(f, 1.0);
  if (indices.empty()) return;
  for (const std::size_t i : indices) {
    const auto row = data.row(i);
    for (std::size_t j = 0; j < f; ++j) means_[j] += row[j];
  }
  for (double& m : means_) m /= static_cast<double>(indices.size());
  std::vector<double> var(f, 0.0);
  for (const std::size_t i : indices) {
    const auto row = data.row(i);
    for (std::size_t j = 0; j < f; ++j) {
      const double d = row[j] - means_[j];
      var[j] += d * d;
    }
  }
  for (std::size_t j = 0; j < f; ++j) {
    const double sd = std::sqrt(var[j] / static_cast<double>(indices.size()));
    inv_stds_[j] = sd > 1e-12 ? 1.0 / sd : 1.0;
  }
}

void StandardScaler::transform_into(std::span<const double> row,
                                    std::span<double> out) const {
  if (row.size() != means_.size() || out.size() != means_.size()) {
    throw std::invalid_argument("StandardScaler::transform: feature count mismatch");
  }
  for (std::size_t j = 0; j < row.size(); ++j) {
    out[j] = (row[j] - means_[j]) * inv_stds_[j];
  }
}

std::vector<double> StandardScaler::transform(std::span<const double> row) const {
  std::vector<double> out(row.size());
  transform_into(row, out);
  return out;
}

namespace {

double rbf(std::span<const double> a, std::span<const double> b, double gamma) noexcept {
  double d2 = 0.0;
  for (std::size_t j = 0; j < a.size(); ++j) {
    const double d = a[j] - b[j];
    d2 += d * d;
  }
  return std::exp(-gamma * d2);
}

/// Bounded LRU cache over rows of the implicit kernel matrix of one
/// binary subproblem.  Row i holds K(i, t) for all t; rows are computed
/// on first touch and evicted least-recently-used, so memory stays at
/// capacity x n doubles however big the subproblem.  Because kernel
/// values are pure functions of the data, capacity changes recompute
/// churn but never results.
class KernelRowCache {
 public:
  KernelRowCache(std::span<const double> x, std::size_t n, std::size_t dim, double gamma,
                 std::size_t capacity)
      : x_(x),
        n_(n),
        dim_(dim),
        gamma_(gamma),
        cap_(std::max<std::size_t>(1, capacity == 0 ? n : std::min(capacity, n))) {
    store_.resize(cap_ * n_);
    slot_of_.assign(n_, -1);
    owner_.assign(cap_, 0);
    tick_of_.assign(cap_, 0);
  }

  std::span<const double> row(std::size_t i) {
    ++tick_;
    const std::int32_t cached = slot_of_[i];
    if (cached >= 0) {
      ++hits_;
      tick_of_[static_cast<std::size_t>(cached)] = tick_;
      return {store_.data() + static_cast<std::size_t>(cached) * n_, n_};
    }
    ++misses_;
    std::size_t slot;
    if (used_ < cap_) {
      slot = used_++;
    } else {
      // Evict the least-recently-used slot (deterministic: ticks are a
      // pure function of the access sequence).
      slot = 0;
      for (std::size_t s = 1; s < cap_; ++s) {
        if (tick_of_[s] < tick_of_[slot]) slot = s;
      }
      slot_of_[owner_[slot]] = -1;
    }
    owner_[slot] = i;
    slot_of_[i] = static_cast<std::int32_t>(slot);
    tick_of_[slot] = tick_;
    double* out = store_.data() + slot * n_;
    const std::span<const double> xi{x_.data() + i * dim_, dim_};
    for (std::size_t t = 0; t < n_; ++t) {
      out[t] = rbf(xi, {x_.data() + t * dim_, dim_}, gamma_);
    }
    return {out, n_};
  }

  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }

 private:
  std::span<const double> x_;  ///< subproblem rows, flat, n x dim
  std::size_t n_;
  std::size_t dim_;
  double gamma_;
  std::size_t cap_;
  std::size_t used_ = 0;
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::vector<double> store_;          ///< cap_ rows of n_ kernel values
  std::vector<std::int32_t> slot_of_;  ///< row -> slot, -1 when absent
  std::vector<std::size_t> owner_;     ///< slot -> row
  std::vector<std::uint64_t> tick_of_;
};

/// Simplified SMO (Platt 1998 as condensed in the CS229 notes): optimizes
/// the dual over pairs of multipliers with a randomized second choice.
///
/// The fast path keeps the exact trajectory of the textbook formulation:
///   * decision values f(i) sum only over the active (nonzero-alpha) set,
///     ascending — bit-identical to the full scan that skips zero terms;
///   * f values are memoized under a version stamp bumped on every
///     successful update, so the convergence-confirming passes (max_passes
///     full sweeps with no change) reuse instead of recompute;
///   * kernel entries come from the LRU row cache above.
struct SmoResult {
  std::vector<double> alpha;
  double bias = 0.0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
};

SmoResult solve_smo(std::span<const double> x, std::size_t n, std::size_t dim,
                    const std::vector<int>& y, const SvmConfig& cfg, double gamma,
                    util::Rng& rng) {
  SmoResult res;
  res.alpha.assign(n, 0.0);
  if (n < 2) return res;

  KernelRowCache cache(x, n, dim, gamma, cfg.kernel_cache_rows);
  // Diagonal entries, computed once up front (every update step needs
  // K(i,i) and K(j,j)).
  std::vector<double> diag(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::span<const double> xi{x.data() + i * dim, dim};
    diag[i] = rbf(xi, xi, gamma);
  }

  std::vector<std::size_t> active;  // indices with alpha != 0, ascending
  std::vector<double> fval(n, 0.0);
  std::vector<std::uint64_t> fstamp(n, 0);
  std::uint64_t version = 1;

  const auto f = [&](std::size_t i) {
    if (fstamp[i] == version) return fval[i];
    double s = res.bias;
    if (!active.empty()) {
      const auto Ki = cache.row(i);
      for (const std::size_t t : active) s += res.alpha[t] * y[t] * Ki[t];
    }
    fval[i] = s;
    fstamp[i] = version;
    return s;
  };
  const auto sync_active = [&](std::size_t i) {
    const auto it = std::lower_bound(active.begin(), active.end(), i);
    const bool present = it != active.end() && *it == i;
    if (res.alpha[i] != 0.0) {
      if (!present) active.insert(it, i);
    } else if (present) {
      active.erase(it);
    }
  };

  std::size_t passes = 0;
  std::size_t iterations = 0;
  while (passes < cfg.max_passes && iterations < cfg.max_iterations) {
    ++iterations;
    std::size_t changed = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const double Ei = f(i) - y[i];
      const bool violates = (y[i] * Ei < -cfg.tol && res.alpha[i] < cfg.C) ||
                            (y[i] * Ei > cfg.tol && res.alpha[i] > 0.0);
      if (!violates) continue;
      std::size_t j = rng.below(n - 1);
      if (j >= i) ++j;
      const double Ej = f(j) - y[j];
      const double ai_old = res.alpha[i];
      const double aj_old = res.alpha[j];
      double lo, hi;
      if (y[i] != y[j]) {
        lo = std::max(0.0, aj_old - ai_old);
        hi = std::min(cfg.C, cfg.C + aj_old - ai_old);
      } else {
        lo = std::max(0.0, ai_old + aj_old - cfg.C);
        hi = std::min(cfg.C, ai_old + aj_old);
      }
      if (lo >= hi) continue;
      const double Kij = cache.row(i)[j];
      const double Kii = diag[i];
      const double Kjj = diag[j];
      const double eta = 2.0 * Kij - Kii - Kjj;
      if (eta >= 0.0) continue;
      double aj = aj_old - y[j] * (Ei - Ej) / eta;
      aj = std::clamp(aj, lo, hi);
      if (std::abs(aj - aj_old) < 1e-5) continue;
      const double ai = ai_old + y[i] * y[j] * (aj_old - aj);
      res.alpha[i] = ai;
      res.alpha[j] = aj;
      sync_active(i);
      sync_active(j);
      const double b1 = res.bias - Ei - y[i] * (ai - ai_old) * Kii -
                        y[j] * (aj - aj_old) * Kij;
      const double b2 = res.bias - Ej - y[i] * (ai - ai_old) * Kij -
                        y[j] * (aj - aj_old) * Kjj;
      if (ai > 0.0 && ai < cfg.C) {
        res.bias = b1;
      } else if (aj > 0.0 && aj < cfg.C) {
        res.bias = b2;
      } else {
        res.bias = (b1 + b2) / 2.0;
      }
      ++version;  // alphas/bias moved: cached decision values are stale
      ++changed;
    }
    passes = changed == 0 ? passes + 1 : 0;
  }
  res.cache_hits = cache.hits();
  res.cache_misses = cache.misses();
  return res;
}

}  // namespace

void KernelSvm::fit(const Dataset& train) {
  std::vector<std::size_t> all(train.size());
  std::iota(all.begin(), all.end(), 0);
  fit_indices(train, all);
}

void KernelSvm::fit_indices(const Dataset& data, std::span<const std::size_t> indices) {
  DNSBS_SPAN("ml.svm_fit");
  g_svm_fits.inc();
  models_.clear();
  class_count_ = data.class_count();
  dim_ = data.feature_count();
  scaler_.fit(data, indices);
  gamma_ = config_.gamma > 0.0
               ? config_.gamma
               : 1.0 / static_cast<double>(std::max<std::size_t>(1, dim_));

  // Scale the selected rows once into one contiguous buffer (position k
  // holds row indices[k]), grouped by class.
  const std::size_t dim = dim_;
  std::vector<double> scaled(indices.size() * dim);
  std::vector<std::vector<std::size_t>> by_class(class_count_);
  for (std::size_t k = 0; k < indices.size(); ++k) {
    scaler_.transform_into(data.row(indices[k]), {scaled.data() + k * dim, dim});
    by_class[data.label(indices[k])].push_back(k);
  }

  util::Rng rng(config_.seed);
  std::uint64_t hits = 0, misses = 0;
  std::vector<double> xsub;  // subproblem rows, reused across class pairs
  std::vector<int> y;
  // One-vs-one: a binary machine per unordered class pair that has data.
  for (std::size_t a = 0; a < class_count_; ++a) {
    for (std::size_t b = a + 1; b < class_count_; ++b) {
      if (by_class[a].empty() || by_class[b].empty()) continue;
      const std::size_t nsub = by_class[a].size() + by_class[b].size();
      xsub.resize(nsub * dim);
      y.clear();
      y.reserve(nsub);
      std::size_t at = 0;
      for (const std::size_t k : by_class[a]) {
        std::copy_n(scaled.data() + k * dim, dim, xsub.data() + at * dim);
        y.push_back(+1);
        ++at;
      }
      for (const std::size_t k : by_class[b]) {
        std::copy_n(scaled.data() + k * dim, dim, xsub.data() + at * dim);
        y.push_back(-1);
        ++at;
      }
      const SmoResult sol = solve_smo(xsub, nsub, dim, y, config_, gamma_, rng);
      hits += sol.cache_hits;
      misses += sol.cache_misses;
      BinaryModel m;
      m.class_pos = a;
      m.class_neg = b;
      m.bias = sol.bias;
      for (std::size_t i = 0; i < nsub; ++i) {
        if (sol.alpha[i] > 1e-9) {
          m.support.insert(m.support.end(), xsub.data() + i * dim,
                           xsub.data() + (i + 1) * dim);
          m.alpha_y.push_back(sol.alpha[i] * y[i]);
        }
      }
      models_.push_back(std::move(m));
    }
  }
  g_kernel_hits.add(hits);
  g_kernel_misses.add(misses);
}

double KernelSvm::decision(const BinaryModel& m, std::span<const double> scaled) const {
  double s = m.bias;
  for (std::size_t i = 0; i < m.alpha_y.size(); ++i) {
    s += m.alpha_y[i] * rbf({m.support.data() + i * dim_, dim_}, scaled, gamma_);
  }
  return s;
}

std::size_t KernelSvm::vote(std::span<const double> scaled) const {
  std::vector<std::size_t> votes(class_count_, 0);
  for (const auto& m : models_) {
    ++votes[decision(m, scaled) >= 0.0 ? m.class_pos : m.class_neg];
  }
  std::size_t best = 0;
  for (std::size_t k = 1; k < votes.size(); ++k) {
    if (votes[k] > votes[best]) best = k;
  }
  return best;
}

std::size_t KernelSvm::predict(std::span<const double> features) const {
  g_svm_predictions.inc();
  if (models_.empty()) return 0;
  // Per-thread scratch: single predictions stay allocation-free after the
  // first call on each thread (predict may run concurrently under
  // parallel_map, so the buffer cannot be a plain member).
  thread_local std::vector<double> scratch;
  scratch.resize(dim_);
  scaler_.transform_into(features, scratch);
  return vote(scratch);
}

std::vector<std::size_t> KernelSvm::predict_all(const Dataset& data) const {
  DNSBS_SPAN("ml.svm_predict_all");
  g_svm_predictions.add(data.size());
  if (models_.empty()) return std::vector<std::size_t>(data.size(), 0);
  const std::size_t dim = dim_;
  std::vector<double> scaled(data.size() * dim);
  for (std::size_t i = 0; i < data.size(); ++i) {
    scaler_.transform_into(data.row(i), {scaled.data() + i * dim, dim});
  }
  return util::parallel_map(data.size(), [&](std::size_t i) {
    return vote({scaled.data() + i * dim, dim});
  });
}

std::vector<std::size_t> KernelSvm::predict_indices(
    const Dataset& data, std::span<const std::size_t> indices) const {
  DNSBS_SPAN("ml.svm_predict_all");
  g_svm_predictions.add(indices.size());
  if (models_.empty()) return std::vector<std::size_t>(indices.size(), 0);
  const std::size_t dim = dim_;
  std::vector<double> scaled(indices.size() * dim);
  for (std::size_t k = 0; k < indices.size(); ++k) {
    scaler_.transform_into(data.row(indices[k]), {scaled.data() + k * dim, dim});
  }
  return util::parallel_map(indices.size(), [&](std::size_t k) {
    return vote({scaled.data() + k * dim, dim});
  });
}

std::size_t KernelSvm::support_vector_count() const noexcept {
  std::size_t n = 0;
  for (const auto& m : models_) n += m.alpha_y.size();
  return n;
}

}  // namespace dnsbs::ml
