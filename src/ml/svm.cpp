#include "ml/svm.hpp"

#include <algorithm>
#include <cmath>

#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace dnsbs::ml {

namespace {
// SMO training is seed-deterministic; fit/predict totals are functions of
// the call sequence alone.
util::MetricCounter& g_svm_fits = util::metrics_counter("dnsbs.ml.svm_fits");
util::MetricCounter& g_svm_predictions = util::metrics_counter("dnsbs.ml.svm_predictions");
}  // namespace

void StandardScaler::fit(const Dataset& data) {
  const std::size_t f = data.feature_count();
  means_.assign(f, 0.0);
  inv_stds_.assign(f, 1.0);
  if (data.empty()) return;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto row = data.row(i);
    for (std::size_t j = 0; j < f; ++j) means_[j] += row[j];
  }
  for (double& m : means_) m /= static_cast<double>(data.size());
  std::vector<double> var(f, 0.0);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto row = data.row(i);
    for (std::size_t j = 0; j < f; ++j) {
      const double d = row[j] - means_[j];
      var[j] += d * d;
    }
  }
  for (std::size_t j = 0; j < f; ++j) {
    const double sd = std::sqrt(var[j] / static_cast<double>(data.size()));
    inv_stds_[j] = sd > 1e-12 ? 1.0 / sd : 1.0;
  }
}

std::vector<double> StandardScaler::transform(std::span<const double> row) const {
  std::vector<double> out(row.size());
  for (std::size_t j = 0; j < row.size() && j < means_.size(); ++j) {
    out[j] = (row[j] - means_[j]) * inv_stds_[j];
  }
  return out;
}

namespace {

double rbf(std::span<const double> a, std::span<const double> b, double gamma) noexcept {
  double d2 = 0.0;
  for (std::size_t j = 0; j < a.size(); ++j) {
    const double d = a[j] - b[j];
    d2 += d * d;
  }
  return std::exp(-gamma * d2);
}

/// Simplified SMO (Platt 1998 as condensed in the CS229 notes): optimizes
/// the dual over pairs of multipliers with a randomized second choice.
struct SmoResult {
  std::vector<double> alpha;
  double bias = 0.0;
};

SmoResult solve_smo(const std::vector<std::vector<double>>& x, const std::vector<int>& y,
                    const SvmConfig& cfg, double gamma, util::Rng& rng) {
  const std::size_t n = x.size();
  SmoResult res;
  res.alpha.assign(n, 0.0);
  if (n < 2) return res;

  // Precompute the kernel matrix: ground-truth sets are hundreds of rows,
  // so O(n^2) memory is the right trade for SMO's repeated accesses.
  std::vector<double> K(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double k = rbf(x[i], x[j], gamma);
      K[i * n + j] = k;
      K[j * n + i] = k;
    }
  }
  const auto f = [&](std::size_t i) {
    double s = res.bias;
    for (std::size_t t = 0; t < n; ++t) {
      if (res.alpha[t] != 0.0) s += res.alpha[t] * y[t] * K[t * n + i];
    }
    return s;
  };

  std::size_t passes = 0;
  std::size_t iterations = 0;
  while (passes < cfg.max_passes && iterations < cfg.max_iterations) {
    ++iterations;
    std::size_t changed = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const double Ei = f(i) - y[i];
      const bool violates = (y[i] * Ei < -cfg.tol && res.alpha[i] < cfg.C) ||
                            (y[i] * Ei > cfg.tol && res.alpha[i] > 0.0);
      if (!violates) continue;
      std::size_t j = rng.below(n - 1);
      if (j >= i) ++j;
      const double Ej = f(j) - y[j];
      const double ai_old = res.alpha[i];
      const double aj_old = res.alpha[j];
      double lo, hi;
      if (y[i] != y[j]) {
        lo = std::max(0.0, aj_old - ai_old);
        hi = std::min(cfg.C, cfg.C + aj_old - ai_old);
      } else {
        lo = std::max(0.0, ai_old + aj_old - cfg.C);
        hi = std::min(cfg.C, ai_old + aj_old);
      }
      if (lo >= hi) continue;
      const double eta = 2.0 * K[i * n + j] - K[i * n + i] - K[j * n + j];
      if (eta >= 0.0) continue;
      double aj = aj_old - y[j] * (Ei - Ej) / eta;
      aj = std::clamp(aj, lo, hi);
      if (std::abs(aj - aj_old) < 1e-5) continue;
      const double ai = ai_old + y[i] * y[j] * (aj_old - aj);
      res.alpha[i] = ai;
      res.alpha[j] = aj;
      const double b1 = res.bias - Ei - y[i] * (ai - ai_old) * K[i * n + i] -
                        y[j] * (aj - aj_old) * K[i * n + j];
      const double b2 = res.bias - Ej - y[i] * (ai - ai_old) * K[i * n + j] -
                        y[j] * (aj - aj_old) * K[j * n + j];
      if (ai > 0.0 && ai < cfg.C) {
        res.bias = b1;
      } else if (aj > 0.0 && aj < cfg.C) {
        res.bias = b2;
      } else {
        res.bias = (b1 + b2) / 2.0;
      }
      ++changed;
    }
    passes = changed == 0 ? passes + 1 : 0;
  }
  return res;
}

}  // namespace

void KernelSvm::fit(const Dataset& train) {
  DNSBS_SPAN("ml.svm_fit");
  g_svm_fits.inc();
  models_.clear();
  class_count_ = train.class_count();
  scaler_.fit(train);
  gamma_ = config_.gamma > 0.0
               ? config_.gamma
               : 1.0 / static_cast<double>(std::max<std::size_t>(1, train.feature_count()));

  // Scale all rows once, grouped by class.
  std::vector<std::vector<std::size_t>> by_class(class_count_);
  std::vector<std::vector<double>> scaled(train.size());
  for (std::size_t i = 0; i < train.size(); ++i) {
    scaled[i] = scaler_.transform(train.row(i));
    by_class[train.label(i)].push_back(i);
  }

  util::Rng rng(config_.seed);
  // One-vs-one: a binary machine per unordered class pair that has data.
  for (std::size_t a = 0; a < class_count_; ++a) {
    for (std::size_t b = a + 1; b < class_count_; ++b) {
      if (by_class[a].empty() || by_class[b].empty()) continue;
      std::vector<std::vector<double>> x;
      std::vector<int> y;
      x.reserve(by_class[a].size() + by_class[b].size());
      for (const std::size_t i : by_class[a]) {
        x.push_back(scaled[i]);
        y.push_back(+1);
      }
      for (const std::size_t i : by_class[b]) {
        x.push_back(scaled[i]);
        y.push_back(-1);
      }
      const SmoResult sol = solve_smo(x, y, config_, gamma_, rng);
      BinaryModel m;
      m.class_pos = a;
      m.class_neg = b;
      m.bias = sol.bias;
      for (std::size_t i = 0; i < x.size(); ++i) {
        if (sol.alpha[i] > 1e-9) {
          m.support.push_back(std::move(x[i]));
          m.alpha_y.push_back(sol.alpha[i] * y[i]);
        }
      }
      models_.push_back(std::move(m));
    }
  }
}

double KernelSvm::decision(const BinaryModel& m, std::span<const double> scaled) const {
  double s = m.bias;
  for (std::size_t i = 0; i < m.support.size(); ++i) {
    s += m.alpha_y[i] * rbf(m.support[i], scaled, gamma_);
  }
  return s;
}

std::size_t KernelSvm::predict(std::span<const double> features) const {
  g_svm_predictions.inc();
  if (models_.empty()) return 0;
  const std::vector<double> scaled = scaler_.transform(features);
  std::vector<std::size_t> votes(class_count_, 0);
  for (const auto& m : models_) {
    ++votes[decision(m, scaled) >= 0.0 ? m.class_pos : m.class_neg];
  }
  std::size_t best = 0;
  for (std::size_t k = 1; k < votes.size(); ++k) {
    if (votes[k] > votes[best]) best = k;
  }
  return best;
}

std::size_t KernelSvm::support_vector_count() const noexcept {
  std::size_t n = 0;
  for (const auto& m : models_) n += m.support.size();
  return n;
}

}  // namespace dnsbs::ml
