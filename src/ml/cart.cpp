#include "ml/cart.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "util/metrics.hpp"
#include "util/parallel.hpp"

namespace dnsbs::ml {

namespace {

// Per-tree shape telemetry: deterministic (trees derive from their config
// seed alone), bumped once per fit — never inside the recursive build.
util::MetricCounter& g_cart_fits = util::metrics_counter("dnsbs.ml.cart_fits");
util::MetricCounter& g_cart_nodes = util::metrics_counter("dnsbs.ml.cart_nodes");
// Candidate split positions (distinct-value boundaries) evaluated across
// the whole fit; a pure function of (data, seed, config), so non-sched.
util::MetricCounter& g_split_candidates =
    util::metrics_counter("dnsbs.ml.split_candidates");

double gini_from_counts(std::span<const std::size_t> counts, std::size_t total) noexcept {
  if (total == 0) return 0.0;
  double sum_sq = 0.0;
  for (const std::size_t c : counts) {
    const double p = static_cast<double>(c) / static_cast<double>(total);
    sum_sq += p * p;
  }
  return 1.0 - sum_sq;
}

std::uint32_t majority(std::span<const std::size_t> counts) noexcept {
  std::size_t best = 0;
  for (std::size_t k = 1; k < counts.size(); ++k) {
    if (counts[k] > counts[best]) best = k;
  }
  return static_cast<std::uint32_t>(best);
}

}  // namespace

Presort::Presort(const Dataset& data)
    : rows_(data.size()), features_(data.feature_count()) {
  order_.resize(rows_ * features_);
  // Columns are independent; sorting them in parallel is deterministic
  // (each column's layout depends only on its own values).  Degrades to
  // the serial loop inside an outer parallel region (e.g. crossval reps).
  util::parallel_for(features_, [&](std::size_t f) {
    std::uint32_t* col = order_.data() + f * rows_;
    std::iota(col, col + rows_, std::uint32_t{0});
    // Gather the column once so the sort compares contiguous doubles
    // instead of striding through the row-major dataset.
    std::vector<double> vals(rows_);
    for (std::size_t r = 0; r < rows_; ++r) vals[r] = data.row(r)[f];
    std::sort(col, col + rows_, [&](std::uint32_t a, std::uint32_t b) {
      return vals[a] < vals[b] || (vals[a] == vals[b] && a < b);
    });
  });
}

void CartTree::fit(const Dataset& train) {
  std::vector<std::size_t> all(train.size());
  std::iota(all.begin(), all.end(), 0);
  fit_indices(train, all);
}

void CartTree::fit_indices(const Dataset& train, std::span<const std::size_t> indices) {
  std::vector<std::uint32_t> weights(train.size(), 0);
  for (const std::size_t i : indices) {
    assert(i < train.size());
    ++weights[i];
  }
  const Presort presort(train);
  fit_weights(train, presort, weights);
}

void CartTree::fit_weights(const Dataset& train, const Presort& presort,
                           std::span<const std::uint32_t> weights) {
  assert(weights.size() == train.size());
  assert(presort.rows() == train.size() && presort.features() == train.feature_count());
  nodes_.clear();
  depth_ = 0;
  class_count_ = train.class_count();
  importance_.assign(train.feature_count(), 0.0);
  util::Rng rng(config_.seed);

  // Rows present in this fit (weight > 0).
  std::size_t present = 0;
  for (std::size_t r = 0; r < weights.size(); ++r) {
    if (weights[r] > 0) ++present;
  }
  if (present == 0) {
    nodes_.push_back(Node{});  // degenerate leaf predicting class 0
    g_cart_fits.inc();
    g_cart_nodes.add(nodes_.size());
    return;
  }

  const std::size_t d = train.feature_count();
  if (d == 0) {
    // No features to split on: the tree is one majority leaf.
    std::vector<std::size_t> counts(class_count_, 0);
    for (std::size_t r = 0; r < weights.size(); ++r) {
      if (weights[r] > 0) counts[train.label(r)] += weights[r];
    }
    Node leaf;
    leaf.label = majority(counts);
    nodes_.push_back(leaf);
    g_cart_fits.inc();
    g_cart_nodes.add(nodes_.size());
    return;
  }

  // Root columns: each feature's presorted order filtered to present
  // rows.  The filter preserves sort order, so every node's segment stays
  // value-sorted as the recursion partitions it.
  std::vector<std::uint32_t> cols(d * present);
  for (std::size_t f = 0; f < d; ++f) {
    const auto src = presort.column(f);
    std::uint32_t* out = cols.data() + f * present;
    for (const std::uint32_t r : src) {
      if (weights[r] > 0) *out++ = r;
    }
  }

  std::vector<std::uint8_t> side(train.size(), 0);
  std::vector<std::uint32_t> scratch(present);
  BuildContext ctx{train, weights, cols, present, side, scratch, rng};
  build(ctx, 0, present, 0);
  g_cart_fits.inc();
  g_cart_nodes.add(nodes_.size());
  g_split_candidates.add(ctx.candidates);
}

std::uint32_t CartTree::build(BuildContext& ctx, std::size_t begin, std::size_t end,
                              std::size_t depth) {
  depth_ = std::max(depth_, depth);
  const Dataset& train = ctx.train;
  const std::size_t stride = ctx.stride;

  // Weighted class counts of the node (all columns hold the same row set;
  // column 0's segment is as good as any).
  std::vector<std::size_t>& counts = ctx.counts;
  counts.assign(class_count_, 0);
  std::size_t n = 0;
  for (std::size_t i = begin; i < end; ++i) {
    const std::uint32_t r = ctx.cols[i];
    const std::size_t w = ctx.weights[r];
    counts[train.label(r)] += w;
    n += w;
  }
  const double node_gini = gini_from_counts(counts, n);

  const auto make_leaf = [&]() {
    Node leaf;
    leaf.feature = -1;
    leaf.label = majority(counts);
    nodes_.push_back(leaf);
    return static_cast<std::uint32_t>(nodes_.size() - 1);
  };

  if (node_gini == 0.0 || n < config_.min_samples_split || depth >= config_.max_depth) {
    return make_leaf();
  }

  // Candidate features: all, or a random subset of max_features.
  const std::size_t f_total = train.feature_count();
  std::vector<std::size_t>& features = ctx.features;
  if (config_.max_features == 0 || config_.max_features >= f_total) {
    features.resize(f_total);
    std::iota(features.begin(), features.end(), 0);
  } else {
    ctx.rng.sample_indices_into(f_total, config_.max_features, features);
  }

  struct Best {
    double decrease = 0.0;
    std::size_t feature = 0;
    double threshold = 0.0;
  } best;

  std::vector<std::size_t>& left_counts = ctx.left_counts;
  left_counts.resize(class_count_);

  for (const std::size_t f : features) {
    const std::uint32_t* seg = ctx.cols.data() + f * stride;
    // Constant feature across the node: no split position exists.
    if (train.row(seg[begin])[f] == train.row(seg[end - 1])[f]) continue;

    std::fill(left_counts.begin(), left_counts.end(), 0);
    std::size_t n_left = 0;
    // Sweep split positions between consecutive distinct values: the
    // segment is value-sorted, so a position's left side is a prefix.
    double v = train.row(seg[begin])[f];
    for (std::size_t i = begin; i + 1 < end; ++i) {
      const std::uint32_t r = seg[i];
      const std::size_t w = ctx.weights[r];
      left_counts[train.label(r)] += w;
      n_left += w;
      const double v_next = train.row(seg[i + 1])[f];
      if (v == v_next) continue;
      ++ctx.candidates;
      const double v_here = v;
      v = v_next;
      const std::size_t n_right = n - n_left;
      if (n_left < config_.min_samples_leaf || n_right < config_.min_samples_leaf) continue;

      double left_sq = 0.0, right_sq = 0.0;
      for (std::size_t k = 0; k < class_count_; ++k) {
        const double cl = static_cast<double>(left_counts[k]);
        const double cr = static_cast<double>(counts[k] - left_counts[k]);
        left_sq += cl * cl;
        right_sq += cr * cr;
      }
      const double gini_left = 1.0 - left_sq / (static_cast<double>(n_left) * n_left);
      const double gini_right = 1.0 - right_sq / (static_cast<double>(n_right) * n_right);
      const double weighted =
          (static_cast<double>(n_left) * gini_left + static_cast<double>(n_right) * gini_right) /
          static_cast<double>(n);
      const double decrease = node_gini - weighted;
      if (decrease > best.decrease) {
        // The midpoint of two adjacent doubles can round up to v_next,
        // which would send every row left in the partition below (and
        // recurse forever on the unchanged segment).  Fall back to the
        // left value: v_here still goes left, v_next right, and predict's
        // `x <= threshold` stays consistent with the training partition.
        double threshold = (v_here + v_next) / 2.0;
        if (threshold >= v_next) threshold = v_here;
        best = Best{decrease, f, threshold};
      }
    }
  }

  if (best.decrease <= 1e-12) return make_leaf();

  // Mark each row's side once (the winning feature's segment is sorted,
  // so the comparison only flips once), then stable-partition every
  // feature's segment so children inherit value-sorted segments.
  const std::uint32_t* win = ctx.cols.data() + best.feature * stride;
  std::size_t left_rows = 0;
  for (std::size_t i = begin; i < end; ++i) {
    const std::uint32_t r = win[i];
    const bool goes_left = train.row(r)[best.feature] <= best.threshold;
    ctx.side[r] = goes_left ? 1 : 0;
    left_rows += goes_left ? 1 : 0;
  }
  const std::size_t mid = begin + left_rows;
  assert(mid > begin && mid < end);
  if (mid == begin || mid == end) return make_leaf();  // e.g. NaN features

  // Branchless two-way stable partition: left rows compact in place
  // (writes trail reads, so in-place is safe), right rows spill to scratch
  // and are copied back behind them.  The side bits are near-random per
  // row, so the unconditional-store form avoids a mispredicted branch per
  // element — this loop touches every column at every node and dominates
  // the fit once sorting is gone.
  const std::uint8_t* side = ctx.side.data();
  std::uint32_t* scratch = ctx.scratch.data();
  for (std::size_t f = 0; f < f_total; ++f) {
    std::uint32_t* seg = ctx.cols.data() + f * stride;
    std::size_t out = begin;
    std::size_t spill = 0;
    for (std::size_t i = begin; i < end; ++i) {
      const std::uint32_t r = seg[i];
      const std::uint8_t s = side[r];
      seg[out] = r;
      scratch[spill] = r;
      out += s;
      spill += static_cast<std::size_t>(1) - s;
    }
    std::copy(scratch, scratch + spill, seg + out);
  }

  importance_[best.feature] += static_cast<double>(n) * best.decrease;

  const std::uint32_t self = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(Node{});  // reserve slot; children append after
  nodes_[self].feature = static_cast<std::int32_t>(best.feature);
  nodes_[self].threshold = best.threshold;
  const std::uint32_t left = build(ctx, begin, mid, depth + 1);
  const std::uint32_t right = build(ctx, mid, end, depth + 1);
  nodes_[self].left = left;
  nodes_[self].right = right;
  return self;
}

std::size_t CartTree::predict(std::span<const double> features) const {
  if (nodes_.empty()) return 0;
  std::uint32_t at = 0;
  while (nodes_[at].feature >= 0) {
    const Node& node = nodes_[at];
    at = features[static_cast<std::size_t>(node.feature)] <= node.threshold ? node.left
                                                                            : node.right;
  }
  return nodes_[at].label;
}

}  // namespace dnsbs::ml
