#include "ml/cart.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "util/metrics.hpp"

namespace dnsbs::ml {

namespace {

// Per-tree shape telemetry: deterministic (trees derive from their config
// seed alone), bumped once per fit — never inside the recursive build.
util::MetricCounter& g_cart_fits = util::metrics_counter("dnsbs.ml.cart_fits");
util::MetricCounter& g_cart_nodes = util::metrics_counter("dnsbs.ml.cart_nodes");

double gini_from_counts(std::span<const std::size_t> counts, std::size_t total) noexcept {
  if (total == 0) return 0.0;
  double sum_sq = 0.0;
  for (const std::size_t c : counts) {
    const double p = static_cast<double>(c) / static_cast<double>(total);
    sum_sq += p * p;
  }
  return 1.0 - sum_sq;
}

std::uint32_t majority(std::span<const std::size_t> counts) noexcept {
  std::size_t best = 0;
  for (std::size_t k = 1; k < counts.size(); ++k) {
    if (counts[k] > counts[best]) best = k;
  }
  return static_cast<std::uint32_t>(best);
}

}  // namespace

void CartTree::fit(const Dataset& train) {
  std::vector<std::size_t> all(train.size());
  std::iota(all.begin(), all.end(), 0);
  fit_indices(train, all);
}

void CartTree::fit_indices(const Dataset& train, std::span<const std::size_t> indices) {
  nodes_.clear();
  depth_ = 0;
  class_count_ = train.class_count();
  importance_.assign(train.feature_count(), 0.0);
  util::Rng rng(config_.seed);
  std::vector<std::size_t> rows(indices.begin(), indices.end());
  if (rows.empty()) {
    nodes_.push_back(Node{});  // degenerate leaf predicting class 0
    g_cart_fits.inc();
    g_cart_nodes.add(nodes_.size());
    return;
  }
  build(train, rows, 0, rows.size(), 0, rng);
  g_cart_fits.inc();
  g_cart_nodes.add(nodes_.size());
}

std::uint32_t CartTree::build(const Dataset& train, std::vector<std::size_t>& rows,
                              std::size_t begin, std::size_t end, std::size_t depth,
                              util::Rng& rng) {
  depth_ = std::max(depth_, depth);
  const std::size_t n = end - begin;

  std::vector<std::size_t> counts(class_count_, 0);
  for (std::size_t i = begin; i < end; ++i) ++counts[train.label(rows[i])];
  const double node_gini = gini_from_counts(counts, n);

  const auto make_leaf = [&]() {
    Node leaf;
    leaf.feature = -1;
    leaf.label = majority(counts);
    nodes_.push_back(leaf);
    return static_cast<std::uint32_t>(nodes_.size() - 1);
  };

  if (node_gini == 0.0 || n < config_.min_samples_split || depth >= config_.max_depth) {
    return make_leaf();
  }

  // Candidate features: all, or a random subset of max_features.
  const std::size_t f_total = train.feature_count();
  std::vector<std::size_t> features;
  if (config_.max_features == 0 || config_.max_features >= f_total) {
    features.resize(f_total);
    std::iota(features.begin(), features.end(), 0);
  } else {
    features = rng.sample_indices(f_total, config_.max_features);
  }

  struct Best {
    double decrease = 0.0;
    std::size_t feature = 0;
    double threshold = 0.0;
  } best;

  // Scratch: (value, label) pairs sorted per candidate feature.
  std::vector<std::pair<double, std::size_t>> sorted;
  sorted.reserve(n);
  std::vector<std::size_t> left_counts(class_count_);

  for (const std::size_t f : features) {
    sorted.clear();
    for (std::size_t i = begin; i < end; ++i) {
      sorted.emplace_back(train.row(rows[i])[f], train.label(rows[i]));
    }
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    if (sorted.front().first == sorted.back().first) continue;  // constant feature

    std::fill(left_counts.begin(), left_counts.end(), 0);
    std::size_t n_left = 0;
    // Sweep split positions between consecutive distinct values.
    for (std::size_t i = 0; i + 1 < n; ++i) {
      ++left_counts[sorted[i].second];
      ++n_left;
      if (sorted[i].first == sorted[i + 1].first) continue;
      const std::size_t n_right = n - n_left;
      if (n_left < config_.min_samples_leaf || n_right < config_.min_samples_leaf) continue;

      double left_sq = 0.0, right_sq = 0.0;
      for (std::size_t k = 0; k < class_count_; ++k) {
        const double cl = static_cast<double>(left_counts[k]);
        const double cr = static_cast<double>(counts[k] - left_counts[k]);
        left_sq += cl * cl;
        right_sq += cr * cr;
      }
      const double gini_left = 1.0 - left_sq / (static_cast<double>(n_left) * n_left);
      const double gini_right = 1.0 - right_sq / (static_cast<double>(n_right) * n_right);
      const double weighted =
          (static_cast<double>(n_left) * gini_left + static_cast<double>(n_right) * gini_right) /
          static_cast<double>(n);
      const double decrease = node_gini - weighted;
      if (decrease > best.decrease) {
        best = Best{decrease, f, (sorted[i].first + sorted[i + 1].first) / 2.0};
      }
    }
  }

  if (best.decrease <= 1e-12) return make_leaf();

  // Partition rows in place around the chosen threshold.
  const auto mid_it =
      std::partition(rows.begin() + static_cast<std::ptrdiff_t>(begin),
                     rows.begin() + static_cast<std::ptrdiff_t>(end), [&](std::size_t r) {
                       return train.row(r)[best.feature] <= best.threshold;
                     });
  const std::size_t mid = static_cast<std::size_t>(mid_it - rows.begin());
  assert(mid > begin && mid < end);

  importance_[best.feature] += static_cast<double>(n) * best.decrease;

  const std::uint32_t self = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(Node{});  // reserve slot; children append after
  nodes_[self].feature = static_cast<std::int32_t>(best.feature);
  nodes_[self].threshold = best.threshold;
  const std::uint32_t left = build(train, rows, begin, mid, depth + 1, rng);
  const std::uint32_t right = build(train, rows, mid, end, depth + 1, rng);
  nodes_[self].left = left;
  nodes_[self].right = right;
  return self;
}

std::size_t CartTree::predict(std::span<const double> features) const {
  if (nodes_.empty()) return 0;
  std::uint32_t at = 0;
  while (nodes_[at].feature >= 0) {
    const Node& node = nodes_[at];
    at = features[static_cast<std::size_t>(node.feature)] <= node.threshold ? node.left
                                                                            : node.right;
  }
  return nodes_[at].label;
}

}  // namespace dnsbs::ml
