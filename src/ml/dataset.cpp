#include "ml/dataset.hpp"

#include <cassert>
#include <stdexcept>

namespace dnsbs::ml {

void Dataset::add(std::vector<double> features, std::size_t label) {
  if (features.size() != feature_count()) {
    throw std::invalid_argument("Dataset::add: feature count mismatch");
  }
  if (label >= class_count()) {
    throw std::invalid_argument("Dataset::add: label out of range");
  }
  rows_.insert(rows_.end(), features.begin(), features.end());
  labels_.push_back(label);
}

std::vector<std::size_t> Dataset::class_counts() const {
  std::vector<std::size_t> counts(class_count(), 0);
  for (const std::size_t y : labels_) ++counts[y];
  return counts;
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  Dataset out(feature_names_, class_names_);
  for (const std::size_t i : indices) {
    assert(i < size());
    const auto r = row(i);
    out.rows_.insert(out.rows_.end(), r.begin(), r.end());
    out.labels_.push_back(labels_[i]);
  }
  return out;
}

std::pair<std::vector<std::size_t>, std::vector<std::size_t>> Dataset::stratified_split(
    util::Rng& rng, double train_fraction) const {
  std::vector<std::vector<std::size_t>> by_class(class_count());
  for (std::size_t i = 0; i < size(); ++i) by_class[labels_[i]].push_back(i);

  std::vector<std::size_t> train, test;
  for (auto& members : by_class) {
    rng.shuffle(members);
    // Round per-class train counts so small classes still contribute at
    // least one example to each side when they can.
    std::size_t n_train =
        static_cast<std::size_t>(train_fraction * static_cast<double>(members.size()) + 0.5);
    if (members.size() >= 2) {
      if (n_train == 0) n_train = 1;
      if (n_train == members.size()) n_train = members.size() - 1;
    }
    for (std::size_t k = 0; k < members.size(); ++k) {
      (k < n_train ? train : test).push_back(members[k]);
    }
  }
  rng.shuffle(train);
  rng.shuffle(test);
  return {std::move(train), std::move(test)};
}

Dataset Dataset::with_features(std::span<const std::size_t> feature_indices) const {
  std::vector<std::string> names;
  names.reserve(feature_indices.size());
  for (const std::size_t f : feature_indices) {
    assert(f < feature_count());
    names.push_back(feature_names_[f]);
  }
  Dataset out(std::move(names), class_names_);
  for (std::size_t i = 0; i < size(); ++i) {
    const auto r = row(i);
    std::vector<double> projected;
    projected.reserve(feature_indices.size());
    for (const std::size_t f : feature_indices) projected.push_back(r[f]);
    out.add(std::move(projected), labels_[i]);
  }
  return out;
}

}  // namespace dnsbs::ml
