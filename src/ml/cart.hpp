// CART decision tree (Breiman et al. 1984), one of the paper's three
// classifiers and the base learner of the Random Forest.
//
// Binary tree, Gini-impurity splitting, exhaustive threshold search over
// midpoints of sorted feature values.  Supports per-node feature
// subsampling (max_features) so the forest can decorrelate trees, and
// accumulates per-feature Gini importance — the quantity behind the
// paper's Table IV "top discriminative features".
//
// Training fast path (DESIGN.md "ML training fast path"): instead of
// re-sorting every candidate feature at every node, the per-feature
// sorted row orders are computed once (`Presort`) and threaded through
// the recursion by stable partitioning, so each level of the tree costs
// O(d·n) instead of O(d·n log n).  Bootstrap samples are expressed as
// per-row multiplicity weights over the shared presort, which is what
// lets a Random Forest reuse one Presort across all of its trees.  The
// split search is exactly equivalent to the per-node-sort formulation
// (same thresholds, same trees; tests/ml_perf_test.cpp pins this against
// a naive oracle).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "ml/classifier.hpp"
#include "util/rng.hpp"

namespace dnsbs::ml {

/// Per-feature sorted row orders of a dataset: column f lists the row
/// indices of `data` sorted ascending by feature f's value (ties by row
/// index, so the layout is deterministic).  Computed once — O(d·n log n)
/// — and shared read-only across any number of tree fits on the same
/// dataset (the Random Forest builds one per fit for all its trees).
class Presort {
 public:
  Presort() = default;
  explicit Presort(const Dataset& data);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t features() const noexcept { return features_; }

  /// Row indices of the dataset sorted by feature f (ascending value).
  std::span<const std::uint32_t> column(std::size_t f) const noexcept {
    return {order_.data() + f * rows_, rows_};
  }

 private:
  std::size_t rows_ = 0;
  std::size_t features_ = 0;
  std::vector<std::uint32_t> order_;  // features_ columns of rows_ entries
};

struct CartConfig {
  std::size_t max_depth = 24;
  std::size_t min_samples_split = 2;
  std::size_t min_samples_leaf = 1;
  /// Features examined per node: 0 = all (plain CART); forests pass
  /// ~sqrt(feature_count).
  std::size_t max_features = 0;
  std::uint64_t seed = 1;
};

class CartTree final : public Classifier {
 public:
  explicit CartTree(CartConfig config = {}) : config_(config) {}

  void fit(const Dataset& train) override;
  std::size_t predict(std::span<const double> features) const override;
  std::string name() const override { return "CART"; }

  /// Fits on a bootstrap sample given by row indices (duplicates allowed);
  /// used by the Random Forest and the cross-validation fold path.
  void fit_indices(const Dataset& train, std::span<const std::size_t> indices) override;

  /// Fits on the multiset of rows where `weights[r]` is row r's
  /// multiplicity (0 = absent), reusing a caller-owned Presort of `train`.
  /// This is the forest's per-tree entry point: one shared Presort, one
  /// cheap weight vector per bootstrap.  weights.size() must equal
  /// train.size() and presort must have been built from `train`.
  void fit_weights(const Dataset& train, const Presort& presort,
                   std::span<const std::uint32_t> weights);

  /// Total Gini-impurity decrease attributed to each feature, weighted by
  /// node sample counts; unnormalized.
  const std::vector<double>& gini_importance() const noexcept { return importance_; }

  std::size_t node_count() const noexcept { return nodes_.size(); }
  std::size_t depth() const noexcept { return depth_; }

  struct Node {
    // Interior: feature/threshold, children indices.  Leaf: label.
    std::int32_t feature = -1;  // -1 marks a leaf
    double threshold = 0.0;
    std::uint32_t left = 0;
    std::uint32_t right = 0;
    std::uint32_t label = 0;
  };

  /// Read-only view of the tree in build (preorder) layout.  Exists so the
  /// equivalence tests can compare the presorted builder node-for-node
  /// against a per-node-sort oracle; not part of the prediction API.
  std::span<const Node> tree_nodes() const noexcept { return nodes_; }

 private:
  /// Per-fit working state for the presorted recursion: the partitionable
  /// per-feature column segments plus shared scratch.
  struct BuildContext {
    const Dataset& train;
    std::span<const std::uint32_t> weights;  ///< row multiplicities
    std::vector<std::uint32_t>& cols;        ///< features() columns, stride rows
    std::size_t stride = 0;                  ///< rows present at the root
    std::vector<std::uint8_t>& side;         ///< per dataset-row split side
    std::vector<std::uint32_t>& scratch;     ///< partition spill buffer
    util::Rng& rng;
    std::uint64_t candidates = 0;  ///< split positions evaluated (telemetry)
    // Per-node scratch, hoisted out of the recursion.  Both are fully
    // recomputed at node entry and never read after the recursive calls,
    // so one buffer per fit is safe.
    std::vector<std::size_t> counts;       ///< node class counts
    std::vector<std::size_t> left_counts;  ///< sweep prefix class counts
    std::vector<std::size_t> features;     ///< candidate feature subset
  };

  std::uint32_t build(BuildContext& ctx, std::size_t begin, std::size_t end,
                      std::size_t depth);

  CartConfig config_;
  std::vector<Node> nodes_;
  std::vector<double> importance_;
  std::size_t depth_ = 0;
  std::size_t class_count_ = 0;
};

}  // namespace dnsbs::ml
