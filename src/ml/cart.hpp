// CART decision tree (Breiman et al. 1984), one of the paper's three
// classifiers and the base learner of the Random Forest.
//
// Binary tree, Gini-impurity splitting, exhaustive threshold search over
// midpoints of sorted feature values.  Supports per-node feature
// subsampling (max_features) so the forest can decorrelate trees, and
// accumulates per-feature Gini importance — the quantity behind the
// paper's Table IV "top discriminative features".
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "ml/classifier.hpp"
#include "util/rng.hpp"

namespace dnsbs::ml {

struct CartConfig {
  std::size_t max_depth = 24;
  std::size_t min_samples_split = 2;
  std::size_t min_samples_leaf = 1;
  /// Features examined per node: 0 = all (plain CART); forests pass
  /// ~sqrt(feature_count).
  std::size_t max_features = 0;
  std::uint64_t seed = 1;
};

class CartTree final : public Classifier {
 public:
  explicit CartTree(CartConfig config = {}) : config_(config) {}

  void fit(const Dataset& train) override;
  std::size_t predict(std::span<const double> features) const override;
  std::string name() const override { return "CART"; }

  /// Fits on a bootstrap sample given by row indices (duplicates allowed);
  /// used by the Random Forest.
  void fit_indices(const Dataset& train, std::span<const std::size_t> indices);

  /// Total Gini-impurity decrease attributed to each feature, weighted by
  /// node sample counts; unnormalized.
  const std::vector<double>& gini_importance() const noexcept { return importance_; }

  std::size_t node_count() const noexcept { return nodes_.size(); }
  std::size_t depth() const noexcept { return depth_; }

 private:
  struct Node {
    // Interior: feature/threshold, children indices.  Leaf: label.
    std::int32_t feature = -1;  // -1 marks a leaf
    double threshold = 0.0;
    std::uint32_t left = 0;
    std::uint32_t right = 0;
    std::uint32_t label = 0;
  };

  std::uint32_t build(const Dataset& train, std::vector<std::size_t>& rows, std::size_t begin,
                      std::size_t end, std::size_t depth, util::Rng& rng);

  CartConfig config_;
  std::vector<Node> nodes_;
  std::vector<double> importance_;
  std::size_t depth_ = 0;
  std::size_t class_count_ = 0;
};

}  // namespace dnsbs::ml
