// Common classifier interface so the validation harness (crossval) and the
// training-over-time strategies can drive CART, Random Forest, and SVM
// interchangeably, as the paper's §IV-C comparison does.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ml/dataset.hpp"

namespace dnsbs::ml {

class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Trains on the full dataset.  Implementations must be re-trainable:
  /// a second fit() discards the first model.
  virtual void fit(const Dataset& train) = 0;

  /// Trains on the rows named by `indices` (duplicates allowed), exactly
  /// as if fit() had been given `data.subset(indices)`.  The default does
  /// just that; CART/RF/SVM override with zero-copy index-span paths so
  /// cross-validation folds stop duplicating the dataset per repetition.
  virtual void fit_indices(const Dataset& data, std::span<const std::size_t> indices) {
    fit(data.subset(indices));
  }

  /// Predicts the class index for one feature row.
  virtual std::size_t predict(std::span<const double> features) const = 0;

  /// Human-readable algorithm name ("CART", "RF", "SVM").
  virtual std::string name() const = 0;

  /// Predicts a batch, ordered by row.  The default is the serial loop;
  /// models whose predict() is safe to call concurrently (RF) override
  /// this with a data-parallel version.
  virtual std::vector<std::size_t> predict_all(const Dataset& data) const {
    std::vector<std::size_t> out;
    out.reserve(data.size());
    for (std::size_t i = 0; i < data.size(); ++i) out.push_back(predict(data.row(i)));
    return out;
  }

  /// Predicts the rows named by `indices`: out[k] corresponds to
  /// data.row(indices[k]).  Fold evaluation without a test-set copy.
  virtual std::vector<std::size_t> predict_indices(
      const Dataset& data, std::span<const std::size_t> indices) const {
    std::vector<std::size_t> out;
    out.reserve(indices.size());
    for (const std::size_t i : indices) out.push_back(predict(data.row(i)));
    return out;
  }
};

/// Factory signature used by the cross-validation harness: a fresh model
/// per repetition, seeded per run (RF and SVM are randomized; the paper
/// re-runs them and majority-votes).
using ClassifierFactory = std::unique_ptr<Classifier> (*)(std::uint64_t seed);

}  // namespace dnsbs::ml
