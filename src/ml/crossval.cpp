#include "ml/crossval.hpp"

#include <vector>

#include "util/rng.hpp"

namespace dnsbs::ml {

MetricSummary cross_validate(const Dataset& data, const ModelFactory& factory,
                             const CrossValConfig& config) {
  util::Rng rng(config.seed);
  std::vector<Metrics> runs;
  runs.reserve(config.repetitions);
  for (std::size_t rep = 0; rep < config.repetitions; ++rep) {
    const auto [train_idx, test_idx] = data.stratified_split(rng, config.train_fraction);
    const Dataset train = data.subset(train_idx);
    const Dataset test = data.subset(test_idx);
    if (train.empty() || test.empty()) continue;

    auto model = factory(config.seed * 1000003ULL + rep);
    model->fit(train);

    ConfusionMatrix cm(data.class_count());
    for (std::size_t i = 0; i < test.size(); ++i) {
      cm.add(test.label(i), model->predict(test.row(i)));
    }
    runs.push_back(compute_metrics(cm));
  }
  return summarize(runs);
}

VotingClassifier::VotingClassifier(ModelFactory factory, std::size_t votes, std::uint64_t seed)
    : factory_(std::move(factory)), votes_(votes == 0 ? 1 : votes), seed_(seed) {}

void VotingClassifier::fit(const Dataset& train) {
  members_.clear();
  class_count_ = train.class_count();
  for (std::size_t v = 0; v < votes_; ++v) {
    auto member = factory_(seed_ ^ (0x9e3779b97f4a7c15ULL * (v + 1)));
    member->fit(train);
    members_.push_back(std::move(member));
  }
}

std::size_t VotingClassifier::predict(std::span<const double> features) const {
  std::vector<std::size_t> tally(class_count_ == 0 ? 1 : class_count_, 0);
  for (const auto& member : members_) {
    const std::size_t y = member->predict(features);
    if (y < tally.size()) ++tally[y];
  }
  std::size_t best = 0;
  for (std::size_t k = 1; k < tally.size(); ++k) {
    if (tally[k] > tally[best]) best = k;
  }
  return best;
}

std::string VotingClassifier::name() const {
  return members_.empty() ? "Voting" : "Voting(" + members_.front()->name() + ")";
}

}  // namespace dnsbs::ml
