#include "ml/crossval.hpp"

#include <optional>
#include <vector>

#include "ml/forest.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace dnsbs::ml {

MetricSummary cross_validate(const Dataset& data, const ModelFactory& factory,
                             const CrossValConfig& config) {
  // Every repetition derives its split RNG and model seed from
  // (config.seed, rep) alone, so reps are independent work items and the
  // summary is byte-identical for any thread count.
  const auto per_rep = util::parallel_map(
      config.repetitions, [&](std::size_t rep) -> std::optional<Metrics> {
        util::Rng rng = util::Rng::stream(config.seed, 0xc5a1 + rep);
        const auto [train_idx, test_idx] =
            data.stratified_split(rng, config.train_fraction);
        if (train_idx.empty() || test_idx.empty()) return std::nullopt;

        // Folds are index spans over the shared dataset — no per-rep
        // train/test copies (fit_indices/predict_indices are pinned
        // byte-identical to fitting on a subset() copy).
        auto model = factory(config.seed * 1000003ULL + rep);
        model->fit_indices(data, train_idx);

        ConfusionMatrix cm(data.class_count());
        const auto predicted = model->predict_indices(data, test_idx);
        for (std::size_t k = 0; k < test_idx.size(); ++k) {
          cm.add(data.label(test_idx[k]), predicted[k]);
        }
        return compute_metrics(cm);
      });

  std::vector<Metrics> runs;
  runs.reserve(per_rep.size());
  for (const auto& m : per_rep) {
    if (m) runs.push_back(*m);
  }
  return summarize(runs);
}

VotingClassifier::VotingClassifier(ModelFactory factory, std::size_t votes, std::uint64_t seed)
    : factory_(std::move(factory)), votes_(votes == 0 ? 1 : votes), seed_(seed) {}

void VotingClassifier::fit(const Dataset& train) {
  class_count_ = train.class_count();
  // Members are seeded independently, so they train as parallel work items.
  members_ = util::parallel_map(votes_, [&](std::size_t v) {
    auto member = factory_(seed_ ^ (0x9e3779b97f4a7c15ULL * (v + 1)));
    member->fit(train);
    return member;
  });
}

void VotingClassifier::fit_indices(const Dataset& data,
                                   std::span<const std::size_t> indices) {
  class_count_ = data.class_count();
  members_ = util::parallel_map(votes_, [&](std::size_t v) {
    auto member = factory_(seed_ ^ (0x9e3779b97f4a7c15ULL * (v + 1)));
    member->fit_indices(data, indices);
    return member;
  });
}

std::size_t VotingClassifier::predict(std::span<const double> features) const {
  std::vector<std::size_t> tally(class_count_ == 0 ? 1 : class_count_, 0);
  for (const auto& member : members_) {
    const std::size_t y = member->predict(features);
    if (y < tally.size()) ++tally[y];
  }
  return majority_vote(tally);
}

std::vector<std::size_t> VotingClassifier::predict_all(const Dataset& data) const {
  return util::parallel_map(data.size(),
                            [&](std::size_t i) { return predict(data.row(i)); });
}

std::vector<std::size_t> VotingClassifier::predict_indices(
    const Dataset& data, std::span<const std::size_t> indices) const {
  return util::parallel_map(
      indices.size(), [&](std::size_t k) { return predict(data.row(indices[k])); });
}

std::string VotingClassifier::name() const {
  return members_.empty() ? "Voting" : "Voting(" + members_.front()->name() + ")";
}

}  // namespace dnsbs::ml
