// Classification metrics matching the paper's §IV-C definitions:
// accuracy ((tp+tn)/all), precision (tp/(tp+fp)), recall (tp/(tp+fn)), and
// F1 (2tp/(2tp+fp+fn)), computed per class in one-vs-rest fashion and
// macro-averaged over classes that actually occur.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace dnsbs::ml {

/// Row = true class, column = predicted class.
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::size_t classes) : n_(classes), cells_(classes * classes, 0) {}

  void add(std::size_t truth, std::size_t predicted) noexcept {
    if (truth < n_ && predicted < n_) ++cells_[truth * n_ + predicted];
  }

  std::size_t at(std::size_t truth, std::size_t predicted) const noexcept {
    return cells_[truth * n_ + predicted];
  }

  std::size_t classes() const noexcept { return n_; }
  std::size_t total() const noexcept;
  std::size_t correct() const noexcept;

  std::size_t true_positives(std::size_t k) const noexcept { return at(k, k); }
  std::size_t false_positives(std::size_t k) const noexcept;
  std::size_t false_negatives(std::size_t k) const noexcept;
  /// Occurrences of class k in the truth column.
  std::size_t support(std::size_t k) const noexcept;

  /// Renders with class names (for bench output / debugging).
  std::string to_string(std::span<const std::string> class_names) const;

 private:
  std::size_t n_;
  std::vector<std::size_t> cells_;
};

struct Metrics {
  double accuracy = 0.0;
  double precision = 0.0;  ///< macro over classes with support or predictions
  double recall = 0.0;
  double f1 = 0.0;
};

/// Computes the paper's four metrics from a confusion matrix.
Metrics compute_metrics(const ConfusionMatrix& cm) noexcept;

/// Builds a confusion matrix from parallel truth/prediction vectors.
ConfusionMatrix confusion(std::span<const std::size_t> truth,
                          std::span<const std::size_t> predicted, std::size_t classes);

/// Mean and standard deviation over repeated evaluation runs; this is the
/// "mean (stddev in smaller type)" layout of the paper's Table III.
struct MetricSummary {
  Metrics mean;
  Metrics stddev;
  std::size_t runs = 0;
};
MetricSummary summarize(std::span<const Metrics> runs) noexcept;

}  // namespace dnsbs::ml
