#include "ml/metrics.hpp"

#include <cmath>

#include "util/strings.hpp"

namespace dnsbs::ml {

std::size_t ConfusionMatrix::total() const noexcept {
  std::size_t t = 0;
  for (const std::size_t c : cells_) t += c;
  return t;
}

std::size_t ConfusionMatrix::correct() const noexcept {
  std::size_t t = 0;
  for (std::size_t k = 0; k < n_; ++k) t += at(k, k);
  return t;
}

std::size_t ConfusionMatrix::false_positives(std::size_t k) const noexcept {
  std::size_t fp = 0;
  for (std::size_t r = 0; r < n_; ++r) {
    if (r != k) fp += at(r, k);
  }
  return fp;
}

std::size_t ConfusionMatrix::false_negatives(std::size_t k) const noexcept {
  std::size_t fn = 0;
  for (std::size_t c = 0; c < n_; ++c) {
    if (c != k) fn += at(k, c);
  }
  return fn;
}

std::size_t ConfusionMatrix::support(std::size_t k) const noexcept {
  std::size_t s = 0;
  for (std::size_t c = 0; c < n_; ++c) s += at(k, c);
  return s;
}

std::string ConfusionMatrix::to_string(std::span<const std::string> class_names) const {
  std::string out = "truth\\pred";
  for (std::size_t c = 0; c < n_; ++c) {
    out += util::format("  %10s", c < class_names.size() ? class_names[c].c_str() : "?");
  }
  out += '\n';
  for (std::size_t r = 0; r < n_; ++r) {
    out += util::format("%-10s", r < class_names.size() ? class_names[r].c_str() : "?");
    for (std::size_t c = 0; c < n_; ++c) {
      out += util::format("  %10zu", at(r, c));
    }
    out += '\n';
  }
  return out;
}

Metrics compute_metrics(const ConfusionMatrix& cm) noexcept {
  Metrics m;
  const std::size_t total = cm.total();
  if (total == 0) return m;
  m.accuracy = static_cast<double>(cm.correct()) / static_cast<double>(total);

  double prec_sum = 0.0, rec_sum = 0.0, f1_sum = 0.0;
  std::size_t active = 0;
  for (std::size_t k = 0; k < cm.classes(); ++k) {
    const std::size_t tp = cm.true_positives(k);
    const std::size_t fp = cm.false_positives(k);
    const std::size_t fn = cm.false_negatives(k);
    if (tp + fp + fn == 0) continue;  // class absent from truth and predictions
    ++active;
    if (tp + fp > 0) prec_sum += static_cast<double>(tp) / static_cast<double>(tp + fp);
    if (tp + fn > 0) rec_sum += static_cast<double>(tp) / static_cast<double>(tp + fn);
    if (2 * tp + fp + fn > 0) {
      f1_sum += 2.0 * static_cast<double>(tp) / static_cast<double>(2 * tp + fp + fn);
    }
  }
  if (active > 0) {
    m.precision = prec_sum / static_cast<double>(active);
    m.recall = rec_sum / static_cast<double>(active);
    m.f1 = f1_sum / static_cast<double>(active);
  }
  return m;
}

ConfusionMatrix confusion(std::span<const std::size_t> truth,
                          std::span<const std::size_t> predicted, std::size_t classes) {
  ConfusionMatrix cm(classes);
  const std::size_t n = std::min(truth.size(), predicted.size());
  for (std::size_t i = 0; i < n; ++i) cm.add(truth[i], predicted[i]);
  return cm;
}

MetricSummary summarize(std::span<const Metrics> runs) noexcept {
  MetricSummary s;
  s.runs = runs.size();
  if (runs.empty()) return s;
  const double n = static_cast<double>(runs.size());
  for (const auto& r : runs) {
    s.mean.accuracy += r.accuracy;
    s.mean.precision += r.precision;
    s.mean.recall += r.recall;
    s.mean.f1 += r.f1;
  }
  s.mean.accuracy /= n;
  s.mean.precision /= n;
  s.mean.recall /= n;
  s.mean.f1 /= n;
  for (const auto& r : runs) {
    s.stddev.accuracy += (r.accuracy - s.mean.accuracy) * (r.accuracy - s.mean.accuracy);
    s.stddev.precision += (r.precision - s.mean.precision) * (r.precision - s.mean.precision);
    s.stddev.recall += (r.recall - s.mean.recall) * (r.recall - s.mean.recall);
    s.stddev.f1 += (r.f1 - s.mean.f1) * (r.f1 - s.mean.f1);
  }
  s.stddev.accuracy = std::sqrt(s.stddev.accuracy / n);
  s.stddev.precision = std::sqrt(s.stddev.precision / n);
  s.stddev.recall = std::sqrt(s.stddev.recall / n);
  s.stddev.f1 = std::sqrt(s.stddev.f1 / n);
  return s;
}

}  // namespace dnsbs::ml
