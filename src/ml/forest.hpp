// Random Forest (Breiman 2001): bagged CART trees with per-node feature
// subsampling.  The paper's best-performing classifier (Table III) and the
// source of the Gini feature importances in Table IV.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "ml/cart.hpp"
#include "ml/classifier.hpp"

namespace dnsbs::ml {

/// Index of the winning class in a tally; ties break toward the lower
/// class index (deterministic, matches the paper's §III-D majority vote).
/// Shared by RandomForest and VotingClassifier so both tie-break the same
/// way.
std::size_t majority_vote(std::span<const std::size_t> votes) noexcept;

struct ForestConfig {
  std::size_t n_trees = 100;
  std::size_t max_depth = 24;
  std::size_t min_samples_leaf = 1;
  /// 0 = floor(sqrt(feature_count)), the standard default.
  std::size_t max_features = 0;
  /// Class-balanced bootstrap: each draw picks a class uniformly among
  /// populated classes, then an example within it.  Lifts macro-averaged
  /// metrics when the labeled set is as skewed as backscatter ground
  /// truth is (hundreds of spam vs a handful of update examples).
  bool balanced_bootstrap = false;
  std::uint64_t seed = 1;
};

class RandomForest final : public Classifier {
 public:
  explicit RandomForest(ForestConfig config = {}) : config_(config) {}

  /// Trains the per-tree bootstraps concurrently: every tree derives its
  /// bootstrap stream and split seed from (seed, tree index), so the
  /// resulting forest is byte-identical for any thread count.  All trees
  /// share one Presort of the dataset; each bootstrap is a per-row
  /// multiplicity weight vector over that shared layout.
  void fit(const Dataset& train) override;
  /// Trains on the rows named by `indices` without copying them out —
  /// byte-identical to fit(data.subset(indices)) (the crossval fast path).
  void fit_indices(const Dataset& data, std::span<const std::size_t> indices) override;
  std::size_t predict(std::span<const double> features) const override;
  /// predict() plus the winning class's vote fraction (votes / trees) —
  /// the forest's native confidence signal.  Deterministic for a given
  /// model + row; {0, 0.0} before any fit.
  std::pair<std::size_t, double> predict_with_confidence(
      std::span<const double> features) const;
  /// Batched prediction: rows are voted in parallel, results ordered by row.
  std::vector<std::size_t> predict_all(const Dataset& data) const override;
  std::vector<std::size_t> predict_indices(
      const Dataset& data, std::span<const std::size_t> indices) const override;
  std::string name() const override { return "RF"; }

  /// Mean of per-tree Gini importances, normalized to sum to 100 (so the
  /// values read like the paper's Table IV Gini column).
  std::vector<double> gini_importance() const;

  std::size_t tree_count() const noexcept { return trees_.size(); }

 private:
  ForestConfig config_;
  std::vector<CartTree> trees_;
  std::size_t class_count_ = 0;
  std::size_t feature_count_ = 0;
};

}  // namespace dnsbs::ml
