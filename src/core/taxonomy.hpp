// The paper's two taxonomies.
//
// AppClass: the twelve application classes an *originator* is classified
// into (§III-D).  QuerierCategory: the static-feature categories a
// *querier's* reverse domain name is matched against (§III-C).  Keeping
// both as enums (not strings) makes feature vectors and confusion matrices
// cheap and typo-proof.
#pragma once

#include <array>
#include <cstddef>
#include <optional>
#include <string_view>

namespace dnsbs::core {

/// Originator application classes (paper §III-D).
enum class AppClass : std::uint8_t {
  kAdTracker = 0,
  kCdn,
  kCloud,
  kCrawler,
  kDns,
  kMail,
  kNtp,
  kP2p,
  kPush,
  kScan,
  kSpam,
  kUpdate,
};
inline constexpr std::size_t kAppClassCount = 12;

/// All classes, in enum order (index == enum value).
const std::array<AppClass, kAppClassCount>& all_app_classes() noexcept;

std::string_view to_string(AppClass c) noexcept;
std::optional<AppClass> app_class_from_string(std::string_view s) noexcept;

/// True for the classes the paper treats as malicious (§V: scan, spam);
/// everything else is benign or indeterminate.
constexpr bool is_malicious(AppClass c) noexcept {
  return c == AppClass::kScan || c == AppClass::kSpam;
}

/// Querier static-feature categories (paper §III-C).  The last three are
/// not keyword-driven: other = no keyword matched, unreach = querier could
/// not be resolved, nxdomain = querier has no reverse name.
enum class QuerierCategory : std::uint8_t {
  kHome = 0,
  kMail,
  kNs,
  kFw,
  kAntispam,
  kWww,
  kNtp,
  kCdn,
  kAws,
  kMs,
  kGoogle,
  kOther,
  kUnreach,
  kNxDomain,
};
inline constexpr std::size_t kQuerierCategoryCount = 14;

std::string_view to_string(QuerierCategory c) noexcept;

}  // namespace dnsbs::core
