// Columnar + incremental feature extraction (the fast path behind
// Sensor::extract_features).
//
// Two compounding ideas close the gap between ingest throughput and
// feature throughput:
//
//   * Columnar layout.  A grow-only interner assigns every querier a dense
//     id and resolves its AS, country, /24, /8 and reverse-name category
//     exactly once — across *all* extract calls, not once per interval.
//     Each originator's querier histogram is flattened into two parallel
//     arrays (querier ids, query counts), so the entropy / unique-AS /
//     unique-CC loops become branch-light streaming passes over dense
//     integer columns with epoch-stamped scratch buffers instead of
//     per-originator FlatMap/FlatSet churn.
//
//   * Incremental recomputation.  Every OriginatorAggregate carries a
//     mod_count stamp (total records folded in, identical across thread
//     counts).  The engine remembers the stamp it last extracted each
//     originator at; an unchanged stamp plus unchanged interval-wide
//     normalizers (total periods, AS count, country count) means the
//     cached FeatureVector row is still exact and is returned as-is.
//     When only the normalizers move, rows recompute from the cached
//     columns without re-walking the aggregate's flat-map.
//
// Invalidation rules (proven byte-identical to full recompute by the
// features-perf oracle tests):
//
//   reuse row      same interval token, same mod_count, same normalizers
//   reuse columns  same flattened (qid, count) sequence + totals — checked
//                  by direct comparison when the stamp can't vouch for it
//                  (different interval token, i.e. another Sensor sharing
//                  the cache)
//   recompute      anything else; recompute reads only the columns
//
// The cache may be shared across Sensors (analysis::WindowedPipeline does
// this for consecutive windows) under one assumption: the resolver and
// AS/geo databases are stable for the lifetime of the cache, because
// querier identities are resolved once on first sight.  Disable sharing
// (WindowedPipelineConfig::carry_forward = false) when reverse names
// drift between windows.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/aggregate.hpp"
#include "core/feature_vector.hpp"

namespace dnsbs::util {
class BinaryReader;
class BinaryWriter;
}  // namespace dnsbs::util

namespace dnsbs::core {

/// Process-long columnar state: the querier interner plus the per
/// originator row cache.  Not thread-safe; one extraction runs at a time
/// (the engine parallelizes internally over frozen state).
class FeatureExtractionCache {
 public:
  static constexpr std::uint32_t kNoId = 0xffffffffu;

  /// Cached extraction state for one originator.
  struct RowEntry {
    std::uint64_t interval_token = 0;  ///< 0 = never filled
    std::uint64_t mod_count = 0;
    std::uint64_t total_queries = 0;
    std::uint64_t period_count = 0;
    /// Unique-querier cardinality (aggregate's unique_queriers() at
    /// flatten time).  Equals qids.size() in exact mode; in sketch mode a
    /// promoted originator's sketch estimate, while qids/counts hold only
    /// the frozen sample.
    std::uint64_t footprint = 0;
    /// Normalizer snapshot the cached row was computed under.
    std::uint64_t norm_periods = 0;
    std::uint32_t norm_as = 0;
    std::uint32_t norm_cc = 0;
    /// Flattened querier histogram in aggregate flat-map order.
    std::vector<std::uint32_t> qids;
    std::vector<std::uint32_t> counts;
    FeatureVector row;
  };

  /// Serial number handed to each FeatureEngine so row entries can tell
  /// "my engine wrote this" (stamp is trustworthy) from "some other
  /// engine/interval wrote this" (columns must be compared).
  std::uint64_t next_interval_token() noexcept { return ++interval_serial_; }

  // --- interner: read side (valid for ids < querier_count()) ---
  std::size_t querier_count() const noexcept { return category_.size(); }
  std::uint32_t id_of(net::IPv4Addr querier) const noexcept {
    const auto* slot = qid_.find(querier);
    return slot ? slot->second : kNoId;
  }
  std::uint32_t as_id(std::uint32_t qid) const noexcept { return as_id_[qid]; }
  std::uint32_t cc_id(std::uint32_t qid) const noexcept { return cc_id_[qid]; }
  std::uint32_t s24_id(std::uint32_t qid) const noexcept { return s24_id_[qid]; }
  std::uint8_t s8(std::uint32_t qid) const noexcept { return s8_[qid]; }
  QuerierCategory category(std::uint32_t qid) const noexcept { return category_[qid]; }

  /// Dense-id universe sizes (for scratch-buffer sizing).  AS/CC ids start
  /// at 1 — 0 means "no mapping" — so buffers need count()+1 slots.
  std::size_t s24_count() const noexcept { return s24_ids_.size(); }
  std::size_t as_count() const noexcept { return as_ids_.size(); }
  std::size_t cc_count() const noexcept { return cc_ids_.size(); }

  /// Interns one resolved querier, assigning the next dense id.  Must be
  /// called in a deterministic order (the engine commits pending queriers
  /// serially, in first-seen order).
  std::uint32_t intern(net::IPv4Addr querier, std::optional<netdb::Asn> asn,
                       std::optional<netdb::CountryCode> cc, QuerierCategory category);

  util::FlatMap<net::IPv4Addr, RowEntry>& rows() noexcept { return rows_; }

  /// Checkpoint round-trip.  The interner maps and the row cache serialize
  /// slot-exactly; doubles travel as raw bit patterns, so a restored cache
  /// reproduces every reuse/recompute decision — and every cached row —
  /// bit-for-bit.  load() replaces the cache's entire state and returns
  /// false on a corrupt stream (state is then unspecified; discard it).
  void save(util::BinaryWriter& out) const;
  bool load(util::BinaryReader& in);

 private:
  util::FlatMap<net::IPv4Addr, std::uint32_t> qid_;
  // Columns indexed by querier id.
  std::vector<std::uint32_t> as_id_;   ///< dense AS id, 0 = no AS mapping
  std::vector<std::uint32_t> cc_id_;   ///< dense country id, 0 = no mapping
  std::vector<std::uint32_t> s24_id_;  ///< dense /24 id (from 0)
  std::vector<std::uint8_t> s8_;       ///< raw top octet
  std::vector<QuerierCategory> category_;
  // Dense-id assignment maps.
  util::FlatMap<netdb::Asn, std::uint32_t> as_ids_;
  util::FlatMap<std::uint16_t, std::uint32_t> cc_ids_;  ///< keyed by packed CC
  util::FlatMap<std::uint32_t, std::uint32_t> s24_ids_;
  util::FlatMap<net::IPv4Addr, RowEntry> rows_;
  std::uint64_t interval_serial_ = 0;
};

/// Per-extraction tallies (deterministic: pure functions of the input
/// stream and extract-call sequence, not of thread count).
struct FeatureExtractionStats {
  std::uint64_t rows_reused = 0;
  std::uint64_t rows_recomputed = 0;
  std::uint64_t dirty_originators = 0;
  std::uint64_t queriers_interned = 0;
};

/// Extraction driver for one Sensor (one measurement interval).  Holds the
/// interval-local state: which aggregates have been scanned at which
/// stamp, the interval-wide AS/CC normalizer sets, and the per-worker
/// epoch scratch buffers.
class FeatureEngine {
 public:
  FeatureEngine(const netdb::AsDb& as_db, const netdb::GeoDb& geo_db,
                const QuerierResolver& resolver,
                std::shared_ptr<FeatureExtractionCache> cache);

  /// Extracts feature rows for `interesting` (footprint-sorted aggregates
  /// of `interval`), reusing cached rows where the invalidation rules
  /// allow.  Byte-identical to a full recompute and to any thread count.
  std::vector<FeatureVector> extract(const OriginatorAggregator& interval,
                                     std::span<const OriginatorAggregate* const> interesting,
                                     std::size_t threads, FeatureExtractionStats* stats);

  /// Interval-wide normalizers after the last extract() (test hooks).
  std::size_t interval_as_count() const noexcept { return as_norm_; }
  std::size_t interval_cc_count() const noexcept { return cc_norm_; }

 private:
  /// Epoch-stamped scratch for one worker slot: bucket membership is
  /// detected by comparing a per-bucket stamp against the current row's
  /// epoch, so buffers are reused across rows without clearing.
  struct Scratch {
    std::vector<std::uint64_t> stamp24, stamp8, stamp_as, stamp_cc;
    std::vector<std::uint32_t> pos24, pos8;
    std::vector<std::size_t> counts24, counts8;  ///< first-touch bucket order
    std::uint64_t epoch = 0;

    void ensure(std::size_t s24_n, std::size_t as_n, std::size_t cc_n);
  };

  FeatureVector compute_row(const FeatureExtractionCache::RowEntry& entry,
                            net::IPv4Addr originator, Scratch& scratch) const;

  const netdb::AsDb& as_db_;
  const netdb::GeoDb& geo_db_;
  const QuerierResolver& resolver_;
  std::shared_ptr<FeatureExtractionCache> cache_;
  std::uint64_t token_;
  /// Interval normalizer state, grown monotonically as aggregates dirty.
  std::vector<std::uint8_t> as_seen_, cc_seen_;  ///< indexed by dense id
  std::size_t as_norm_ = 0, cc_norm_ = 0;
  std::uint64_t periods_norm_ = 0;
  /// mod_count each aggregate was last scanned at (normalizer pass).
  util::FlatMap<net::IPv4Addr, std::uint64_t> scanned_;
  std::vector<Scratch> scratch_;
};

}  // namespace dnsbs::core
