#include "core/static_features.hpp"

#include <cctype>
#include <vector>

#include "util/strings.hpp"

namespace dnsbs::core {

namespace {

struct KeywordRule {
  QuerierCategory category;
  std::vector<std::string_view> keywords;
  bool prefix_only;  ///< keyword must start the label (send*), else substring
};

/// Rules in paper order; within a label the first matching rule wins.
const std::vector<KeywordRule>& keyword_rules() {
  static const std::vector<KeywordRule> kRules = {
      // The paper lists "pop" under both home and mail; here it appears only
      // under home (pop = point-of-presence, an access-network term).  Under
      // first-match-wins a second "pop" entry in the mail rule would be dead
      // code: the home rule always claims the label first.
      {QuerierCategory::kHome,
       {"ap", "cable", "cpe", "customer", "dsl", "dynamic", "fiber", "flets", "home", "host",
        "ip", "net", "pool", "pop", "retail", "user"},
       false},
      {QuerierCategory::kMail,
       {"mail", "mx", "smtp", "post", "correo", "poczta", "send", "lists", "newsletter",
        "zimbra", "mta", "imap"},
       false},
      {QuerierCategory::kNs, {"cns", "dns", "ns", "cache", "resolv", "name"}, false},
      {QuerierCategory::kFw, {"firewall", "wall", "fw"}, false},
      {QuerierCategory::kAntispam, {"ironport", "spam"}, false},
      {QuerierCategory::kWww, {"www"}, false},
      {QuerierCategory::kNtp, {"ntp"}, false},
  };
  return kRules;
}

/// Provider suffixes (matched against any label, mirroring "suffix of
/// Akamai, Edgecast, ..." — provider names appear as registrable-domain
/// labels).
const std::vector<std::pair<QuerierCategory, std::string_view>>& provider_labels() {
  static const std::vector<std::pair<QuerierCategory, std::string_view>> kProviders = {
      {QuerierCategory::kCdn, "akamai"},        {QuerierCategory::kCdn, "akamaitech"},
      {QuerierCategory::kCdn, "edgecast"},      {QuerierCategory::kCdn, "cdnetworks"},
      {QuerierCategory::kCdn, "llnw"},          {QuerierCategory::kCdn, "llnwd"},
      {QuerierCategory::kAws, "amazonaws"},     {QuerierCategory::kMs, "azure"},
      {QuerierCategory::kMs, "cloudapp"},       {QuerierCategory::kMs, "microsoft"},
      {QuerierCategory::kGoogle, "google"},     {QuerierCategory::kGoogle, "googlebot"},
      {QuerierCategory::kGoogle, "1e100"},
  };
  return kProviders;
}

/// True if `label` matches `keyword` as a name component: the keyword
/// appears at a position where it is delimited by non-alphabetic characters
/// (digits, '-', '_', start/end).  "home1-2-3-4" matches "home";
/// "chromecast" does not match "home"; "mail-ns" matches "mail" and "ns".
bool component_match(std::string_view label, std::string_view keyword) {
  std::size_t pos = 0;
  while ((pos = label.find(keyword, pos)) != std::string_view::npos) {
    const bool left_ok =
        pos == 0 || !(std::isalpha(static_cast<unsigned char>(label[pos - 1])));
    const std::size_t end = pos + keyword.size();
    const bool right_ok =
        end == label.size() || !(std::isalpha(static_cast<unsigned char>(label[end])));
    if (left_ok && right_ok) return true;
    ++pos;
  }
  return false;
}

bool prefix_match(std::string_view label, std::string_view keyword) {
  return util::starts_with(label, keyword);
}

std::optional<QuerierCategory> classify_label(std::string_view label) {
  for (const auto& rule : keyword_rules()) {
    for (const auto keyword : rule.keywords) {
      const bool hit = (keyword == "send") ? prefix_match(label, keyword)
                                           : component_match(label, keyword);
      if (hit) return rule.category;
    }
  }
  for (const auto& [category, provider] : provider_labels()) {
    if (label == provider) return category;
  }
  return std::nullopt;
}

}  // namespace

QuerierCategory classify_querier_name(const dns::DnsName& name) {
  // Leftmost component is favored: scan labels host-side first and return
  // the first label that matches any rule.
  for (std::size_t i = 0; i < name.label_count(); ++i) {
    if (const auto category = classify_label(name.label(i))) return *category;
  }
  return QuerierCategory::kOther;
}

QuerierCategory classify_querier(const QuerierInfo& info) {
  switch (info.status) {
    case ResolveStatus::kNxDomain: return QuerierCategory::kNxDomain;
    case ResolveStatus::kUnreachable: return QuerierCategory::kUnreach;
    case ResolveStatus::kOk: return classify_querier_name(info.name);
  }
  return QuerierCategory::kOther;
}

std::array<std::string_view, kQuerierCategoryCount> static_feature_names() noexcept {
  std::array<std::string_view, kQuerierCategoryCount> names{};
  for (std::size_t i = 0; i < kQuerierCategoryCount; ++i) {
    names[i] = to_string(static_cast<QuerierCategory>(i));
  }
  return names;
}

}  // namespace dnsbs::core
