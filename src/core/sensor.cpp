#include "core/sensor.hpp"

namespace dnsbs::core {

Sensor::Sensor(SensorConfig config, const netdb::AsDb& as_db, const netdb::GeoDb& geo_db,
               const QuerierResolver& resolver)
    : config_(config),
      as_db_(as_db),
      geo_db_(geo_db),
      resolver_(resolver),
      dedup_(config.dedup_window),
      aggregator_(config.persistence_period) {}

void Sensor::ingest(const dns::QueryRecord& record) {
  if (dedup_.admit(record)) aggregator_.add(record);
}

std::vector<FeatureVector> Sensor::extract_features() const {
  const auto interesting =
      aggregator_.select_interesting(config_.min_queriers, config_.top_n);
  const DynamicFeatureExtractor dyn(as_db_, geo_db_, aggregator_);

  std::vector<FeatureVector> out;
  out.reserve(interesting.size());
  for (const OriginatorAggregate* agg : interesting) {
    FeatureVector fv;
    fv.originator = agg->originator;
    fv.footprint = agg->unique_queriers();
    fv.statics = compute_static_features(*agg, resolver_);
    fv.dynamics = dyn.extract(*agg);
    out.push_back(std::move(fv));
  }
  return out;
}

std::vector<ClassifiedOriginator> classify_all(std::span<const FeatureVector> features,
                                               const ml::Classifier& model) {
  std::vector<ClassifiedOriginator> out;
  out.reserve(features.size());
  for (const auto& fv : features) {
    ClassifiedOriginator c;
    c.features = fv;
    c.predicted = static_cast<AppClass>(model.predict(fv.row()));
    out.push_back(std::move(c));
  }
  return out;
}

}  // namespace dnsbs::core
