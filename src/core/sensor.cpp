#include "core/sensor.hpp"

#include <algorithm>

#include "util/metrics.hpp"
#include "util/parallel.hpp"

namespace dnsbs::core {
namespace {

/// Below this batch size the shard bookkeeping costs more than it saves.
constexpr std::size_t kMinShardedBatch = 4096;

// Deterministic series: record/admit/suppress totals, selected rows and
// batched cache-lookup counts are functions of the input alone.  Whether a
// batch took the sharded path depends on DNSBS_THREADS, so sharded_batches
// is sched.  Gauges are set at publish points from the sensor's own state,
// which the sharded-ingest contract keeps byte-identical to serial.
util::MetricCounter& g_records = util::metrics_counter("dnsbs.sensor.records");
util::MetricCounter& g_batches = util::metrics_counter("dnsbs.sensor.batches");
util::MetricCounter& g_sharded =
    util::metrics_counter("dnsbs.sensor.sharded_batches", /*sched=*/true);
util::MetricCounter& g_interesting = util::metrics_counter("dnsbs.sensor.interesting");
util::MetricCounter& g_admitted = util::metrics_counter("dnsbs.dedup.admitted");
util::MetricCounter& g_suppressed = util::metrics_counter("dnsbs.dedup.suppressed");
util::MetricCounter& g_feature_rows = util::metrics_counter("dnsbs.features.rows");
util::MetricCounter& g_querier_lookups = util::metrics_counter("dnsbs.cache.querier.lookups");
util::MetricCounter& g_predictions = util::metrics_counter("dnsbs.sensor.classified");
util::MetricGauge& g_live_keys = util::metrics_gauge("dnsbs.dedup.live_keys");
util::MetricGauge& g_originators = util::metrics_gauge("dnsbs.aggregate.originators");
util::MetricGauge& g_periods = util::metrics_gauge("dnsbs.aggregate.periods");

}  // namespace

Sensor::Sensor(SensorConfig config, const netdb::AsDb& as_db, const netdb::GeoDb& geo_db,
               const QuerierResolver& resolver)
    : config_(config),
      as_db_(as_db),
      geo_db_(geo_db),
      resolver_(resolver),
      dedup_(config.dedup_window),
      aggregator_(config.persistence_period) {}

void Sensor::ingest(const dns::QueryRecord& record) {
  if (dedup_.admit(record)) aggregator_.add(record);
}

void Sensor::publish_metrics() const {
  g_admitted.add(dedup_.admitted() - published_admitted_);
  g_suppressed.add(dedup_.suppressed() - published_suppressed_);
  g_records.add((dedup_.admitted() - published_admitted_) +
                (dedup_.suppressed() - published_suppressed_));
  published_admitted_ = dedup_.admitted();
  published_suppressed_ = dedup_.suppressed();
  g_live_keys.set(static_cast<std::int64_t>(dedup_.state_size()));
  g_originators.set(static_cast<std::int64_t>(aggregator_.originator_count()));
  g_periods.set(static_cast<std::int64_t>(aggregator_.total_periods()));
}

util::MetricsSnapshot Sensor::snapshot_metrics() const {
  publish_metrics();
  return util::metrics_snapshot();
}

void Sensor::ingest_all(std::span<const dns::QueryRecord> records) {
  DNSBS_SPAN("sensor.ingest");
  g_batches.inc();
  const std::size_t threads =
      config_.threads != 0 ? config_.threads : util::configured_thread_count();
  // Sharding assumes no pre-existing window state (a pair first seen via
  // ingest() must keep suppressing sharded records), so only a fresh
  // sensor takes the parallel path.
  const bool fresh = dedup_.state_size() == 0 && aggregator_.originator_count() == 0;
  if (threads <= 1 || records.size() < kMinShardedBatch || !fresh ||
      util::in_parallel_region()) {
    aggregator_.reserve(records.size() / 8);
    for (const auto& r : records) ingest(r);
    publish_metrics();
    return;
  }
  g_sharded.inc();

  // Partition record indices by originator shard.  All records of one
  // originator (hence of one dedup pair) land in one shard, in their
  // original relative order, so per-shard dedup decisions match serial.
  const std::size_t shards = threads;
  const std::hash<net::IPv4Addr> hasher;
  std::vector<std::vector<std::uint32_t>> buckets(shards);
  for (auto& b : buckets) b.reserve(records.size() / shards + 16);
  for (std::size_t i = 0; i < records.size(); ++i) {
    buckets[hasher(records[i].originator) % shards].push_back(
        static_cast<std::uint32_t>(i));
  }

  struct Shard {
    Deduplicator dedup;
    OriginatorAggregator agg;
    Shard(util::SimTime window, util::SimTime period) : dedup(window), agg(period) {}
  };
  std::vector<Shard> shard_state;
  shard_state.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    shard_state.emplace_back(config_.dedup_window, config_.persistence_period);
  }

  // Shards see only a subsequence of the clock, so each one finishes by
  // pruning up to the batch's final time; the merged dedup state then
  // retains exactly the entries a serial pass would (records are assumed
  // time-ordered, as dedup semantics already require).
  util::SimTime batch_end{};
  for (const auto& r : records) batch_end = std::max(batch_end, r.time);

  util::parallel_for(
      shards,
      [&](std::size_t s) {
        Shard& shard = shard_state[s];
        shard.agg.reserve(buckets[s].size() / 8);
        for (const std::uint32_t idx : buckets[s]) {
          const dns::QueryRecord& r = records[idx];
          if (shard.dedup.admit(r)) shard.agg.add(r);
        }
        shard.dedup.catch_up_prune(batch_end);
      },
      threads);

  // Ordered merge (shard 0..W-1) back into the sensor's own state, so
  // later ingest() calls continue from the same window state as serial.
  for (Shard& shard : shard_state) {
    dedup_.merge_from(std::move(shard.dedup));
    aggregator_.merge_from(std::move(shard.agg));
  }
  publish_metrics();
}

std::vector<FeatureVector> Sensor::extract_features() const {
  DNSBS_SPAN("sensor.extract");
  const auto interesting =
      aggregator_.select_interesting(config_.min_queriers, config_.top_n);
  g_interesting.add(interesting.size());
  g_feature_rows.add(interesting.size());
  // The querier cache serves one lookup per (originator, querier)
  // membership; published as the batched sum of footprints instead of a
  // per-lookup bump in the row loop.
  std::uint64_t lookups = 0;
  for (const OriginatorAggregate* agg : interesting) lookups += agg->unique_queriers();
  g_querier_lookups.add(lookups);
  const DynamicFeatureExtractor dyn(as_db_, geo_db_, aggregator_);

  // Per-interval memoization: each unique querier is resolved and
  // keyword-classified exactly once, not once per footprint membership.
  QuerierClassificationCache cache(resolver_);
  cache.build(interesting, config_.threads);

  // Per-originator extraction is pure (cache and databases are read-only
  // after build), so rows compute in parallel; ordering follows the
  // footprint-sorted `interesting` list either way.
  return util::parallel_map(
      interesting.size(),
      [&](std::size_t i) {
        const OriginatorAggregate* agg = interesting[i];
        FeatureVector fv;
        fv.originator = agg->originator;
        fv.footprint = agg->unique_queriers();
        fv.statics = compute_static_features(*agg, cache);
        fv.dynamics = dyn.extract(*agg);
        return fv;
      },
      config_.threads);
}

std::vector<ClassifiedOriginator> classify_all(std::span<const FeatureVector> features,
                                               const ml::Classifier& model) {
  DNSBS_SPAN("sensor.classify");
  g_predictions.add(features.size());
  // Classifier::predict is const and stateless across calls, so rows
  // classify in parallel with row-ordered results.
  return util::parallel_map(features.size(), [&](std::size_t i) {
    ClassifiedOriginator c;
    c.features = features[i];
    c.predicted = static_cast<AppClass>(model.predict(features[i].row()));
    return c;
  });
}

}  // namespace dnsbs::core
