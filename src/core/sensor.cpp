#include "core/sensor.hpp"

#include <algorithm>

#include "util/binio.hpp"
#include "util/metrics.hpp"
#include "util/parallel.hpp"

namespace dnsbs::core {
namespace {

/// Below this batch size the shard bookkeeping costs more than it saves.
constexpr std::size_t kMinShardedBatch = 4096;

// Deterministic series: record/admit/suppress totals, selected rows and
// batched cache-lookup counts are functions of the input alone.  Whether a
// batch took the sharded path depends on DNSBS_THREADS, so sharded_batches
// is sched.  Gauges are set at publish points from the sensor's own state,
// which the sharded-ingest contract keeps byte-identical to serial.
util::MetricCounter& g_records = util::metrics_counter("dnsbs.sensor.records");
util::MetricCounter& g_batches = util::metrics_counter("dnsbs.sensor.batches");
util::MetricCounter& g_sharded =
    util::metrics_counter("dnsbs.sensor.sharded_batches", /*sched=*/true);
util::MetricCounter& g_interesting = util::metrics_counter("dnsbs.sensor.interesting");
util::MetricCounter& g_admitted = util::metrics_counter("dnsbs.dedup.admitted");
util::MetricCounter& g_suppressed = util::metrics_counter("dnsbs.dedup.suppressed");
util::MetricCounter& g_feature_rows = util::metrics_counter("dnsbs.features.rows");
// Incremental-extraction telemetry: reused/recomputed partition the
// extracted rows, dirty_originators counts aggregates rescanned by the
// engine's stamp check, interner.queriers counts first-sight resolutions.
// All are pure functions of the input stream and extract-call sequence —
// deterministic across DNSBS_THREADS.  extract_ns is wall-clock timing
// (histograms sit outside the deterministic view by construction).
util::MetricCounter& g_rows_reused = util::metrics_counter("dnsbs.features.rows_reused");
util::MetricCounter& g_rows_recomputed =
    util::metrics_counter("dnsbs.features.rows_recomputed");
util::MetricCounter& g_dirty_originators =
    util::metrics_counter("dnsbs.features.dirty_originators");
util::MetricCounter& g_interned = util::metrics_counter("dnsbs.cache.interner.queriers");
util::MetricHistogram& g_extract_ns = util::metrics_histogram("dnsbs.features.extract_ns");
util::MetricCounter& g_predictions = util::metrics_counter("dnsbs.sensor.classified");
util::MetricGauge& g_live_keys = util::metrics_gauge("dnsbs.dedup.live_keys");
util::MetricGauge& g_originators = util::metrics_gauge("dnsbs.aggregate.originators");
util::MetricGauge& g_periods = util::metrics_gauge("dnsbs.aggregate.periods");
// Register bytes across all promoted originators (0 in exact mode).  Set
// at publish points from aggregator state, which the sharded-ingest
// contract keeps byte-identical to serial — deterministic.
util::MetricGauge& g_sketch_bytes = util::metrics_gauge("dnsbs.aggregate.sketch_bytes");

}  // namespace

Sensor::Sensor(SensorConfig config, const netdb::AsDb& as_db, const netdb::GeoDb& geo_db,
               const QuerierResolver& resolver)
    : config_(config),
      as_db_(as_db),
      geo_db_(geo_db),
      resolver_(resolver),
      dedup_(config.dedup_window),
      aggregator_(config.persistence_period, config.sketch_config()) {}

void Sensor::ingest(const dns::QueryRecord& record) {
  if (dedup_.admit(record)) aggregator_.add(record);
}

void Sensor::publish_metrics() const {
  g_admitted.add(dedup_.admitted() - published_admitted_);
  g_suppressed.add(dedup_.suppressed() - published_suppressed_);
  g_records.add((dedup_.admitted() - published_admitted_) +
                (dedup_.suppressed() - published_suppressed_));
  published_admitted_ = dedup_.admitted();
  published_suppressed_ = dedup_.suppressed();
  g_live_keys.set(static_cast<std::int64_t>(dedup_.state_size()));
  g_originators.set(static_cast<std::int64_t>(aggregator_.originator_count()));
  g_periods.set(static_cast<std::int64_t>(aggregator_.total_periods()));
  if (config_.querier_state == QuerierStateMode::kSketch) {
    g_sketch_bytes.set(static_cast<std::int64_t>(aggregator_.sketch_bytes()));
  }
}

util::MetricsSnapshot Sensor::snapshot_metrics() const {
  publish_metrics();
  return util::metrics_snapshot();
}

void Sensor::ingest_all(std::span<const dns::QueryRecord> records) {
  DNSBS_SPAN("sensor.ingest");
  g_batches.inc();
  const std::size_t threads =
      config_.threads != 0 ? config_.threads : util::configured_thread_count();
  // Sharding assumes no pre-existing window state (a pair first seen via
  // ingest() must keep suppressing sharded records), so only a fresh
  // sensor takes the parallel path.
  const bool fresh = dedup_.state_size() == 0 && aggregator_.originator_count() == 0;
  if (threads <= 1 || records.size() < kMinShardedBatch || !fresh ||
      util::in_parallel_region()) {
    aggregator_.reserve(records.size() / 8);
    for (const auto& r : records) ingest(r);
    publish_metrics();
    return;
  }
  g_sharded.inc();

  // Partition record indices by originator shard.  All records of one
  // originator (hence of one dedup pair) land in one shard, in their
  // original relative order, so per-shard dedup decisions match serial.
  const std::size_t shards = threads;
  const std::hash<net::IPv4Addr> hasher;
  std::vector<std::vector<std::uint32_t>> buckets(shards);
  for (auto& b : buckets) b.reserve(records.size() / shards + 16);
  for (std::size_t i = 0; i < records.size(); ++i) {
    buckets[hasher(records[i].originator) % shards].push_back(
        static_cast<std::uint32_t>(i));
  }

  struct Shard {
    Deduplicator dedup;
    OriginatorAggregator agg;
    Shard(util::SimTime window, util::SimTime period, QuerierSketchConfig sketch)
        : dedup(window), agg(period, sketch) {}
  };
  std::vector<Shard> shard_state;
  shard_state.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    shard_state.emplace_back(config_.dedup_window, config_.persistence_period,
                             config_.sketch_config());
  }

  // Shards see only a subsequence of the clock, so each one finishes by
  // pruning up to the batch's final time; the merged dedup state then
  // retains exactly the entries a serial pass would (records are assumed
  // time-ordered, as dedup semantics already require).
  util::SimTime batch_end{};
  for (const auto& r : records) batch_end = std::max(batch_end, r.time);

  util::parallel_for(
      shards,
      [&](std::size_t s) {
        Shard& shard = shard_state[s];
        shard.agg.reserve(buckets[s].size() / 8);
        for (const std::uint32_t idx : buckets[s]) {
          const dns::QueryRecord& r = records[idx];
          if (shard.dedup.admit(r)) shard.agg.add(r);
        }
        shard.dedup.catch_up_prune(batch_end);
      },
      threads);

  // Ordered merge (shard 0..W-1) back into the sensor's own state, so
  // later ingest() calls continue from the same window state as serial.
  for (Shard& shard : shard_state) {
    dedup_.merge_from(std::move(shard.dedup));
    aggregator_.merge_from(std::move(shard.agg));
  }
  publish_metrics();
}

void Sensor::save_state(util::BinaryWriter& out) const {
  // Pin the published watermarks first: after a restore the registry holds
  // whatever the snapshot (taken alongside this state) says, so the
  // restored sensor must consider exactly the serialized tallies already
  // published.
  publish_metrics();
  dedup_.save(out);
  aggregator_.save(out);
}

bool Sensor::load_state(util::BinaryReader& in) {
  if (!dedup_.load(in) || !aggregator_.load(in)) return false;
  // The uninterrupted process already published these counts; the registry
  // snapshot restores them separately.  Re-publishing would double-count.
  published_admitted_ = dedup_.admitted();
  published_suppressed_ = dedup_.suppressed();
  // Row cache and engine refer to pre-restore state; rebuild lazily.
  engine_.reset();
  cached_rows_.clear();
  rows_cached_ = false;
  rows_at_mutation_ = 0;
  return true;
}

void Sensor::merge_from(Sensor&& other) {
  dedup_.merge_from(std::move(other.dedup_));
  aggregator_.merge_from(std::move(other.aggregator_));
  // The merged tallies split into "already published" (by either sensor's
  // own publish points) and "pending"; summing the watermarks keeps every
  // record published to the registry exactly once.
  published_admitted_ += other.published_admitted_;
  published_suppressed_ += other.published_suppressed_;
  other.published_admitted_ = 0;
  other.published_suppressed_ = 0;
  cached_rows_.clear();
  rows_cached_ = false;
  rows_at_mutation_ = 0;
}

bool Sensor::merge_state(util::BinaryReader& in) {
  Sensor scratch(config_, as_db_, geo_db_, resolver_);
  if (!scratch.load_state(in)) return false;
  // The exporting process's registry is not ours: count every imported
  // tally as unpublished so this process's counters cover the full merged
  // stream exactly once.
  scratch.published_admitted_ = 0;
  scratch.published_suppressed_ = 0;
  merge_from(std::move(scratch));
  return true;
}

void Sensor::set_feature_cache(std::shared_ptr<FeatureExtractionCache> cache) {
  feature_cache_ = std::move(cache);
  engine_.reset();
  rows_cached_ = false;
}

std::vector<FeatureVector> Sensor::extract_features() const {
  DNSBS_SPAN("sensor.extract");
  const std::uint64_t t0 = util::metrics_now_ns();
  // Fast path: nothing was ingested since the last extraction, so the
  // previous rows are exact (selection, normalizers and every aggregate
  // are pure functions of the admitted record stream).
  if (rows_cached_ && aggregator_.mutation_count() == rows_at_mutation_) {
    g_interesting.add(cached_rows_.size());
    g_feature_rows.add(cached_rows_.size());
    g_rows_reused.add(cached_rows_.size());
    g_extract_ns.record(util::metrics_now_ns() - t0);
    return cached_rows_;
  }
  const auto interesting =
      aggregator_.select_interesting(config_.min_queriers, config_.top_n);
  g_interesting.add(interesting.size());
  g_feature_rows.add(interesting.size());

  if (!engine_) {
    if (!feature_cache_) feature_cache_ = std::make_shared<FeatureExtractionCache>();
    engine_ = std::make_unique<FeatureEngine>(as_db_, geo_db_, resolver_, feature_cache_);
  }
  FeatureExtractionStats stats;
  cached_rows_ = engine_->extract(aggregator_, interesting, config_.threads, &stats);
  rows_cached_ = true;
  rows_at_mutation_ = aggregator_.mutation_count();
  g_rows_reused.add(stats.rows_reused);
  g_rows_recomputed.add(stats.rows_recomputed);
  g_dirty_originators.add(stats.dirty_originators);
  g_interned.add(stats.queriers_interned);
  g_extract_ns.record(util::metrics_now_ns() - t0);
  return cached_rows_;
}

std::vector<ClassifiedOriginator> classify_all(std::span<const FeatureVector> features,
                                               const ml::Classifier& model) {
  DNSBS_SPAN("sensor.classify");
  g_predictions.add(features.size());
  // Classifier::predict is const and stateless across calls, so rows
  // classify in parallel with row-ordered results.
  return util::parallel_map(features.size(), [&](std::size_t i) {
    ClassifiedOriginator c;
    c.features = features[i];
    c.predicted = static_cast<AppClass>(model.predict(features[i].row()));
    return c;
  });
}

}  // namespace dnsbs::core
